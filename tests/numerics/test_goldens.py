"""Golden error-curve digests, pinned per Tensor Core generation.

Each digest hashes the *raw simulated result bytes* of every point on an
error-vs-K curve (fixed seed, shapes, distribution), exactly the way the
cycle goldens pin the timing engine: any change to HMMA arithmetic, the
accumulation order, kernel-family selection, or operand generation shows
up as a digest mismatch here before it shows up as a silently different
accuracy story.

Generation coverage: SM70 (V100) has only the FP16-accumulate HMMA.884
form; SM75 (RTX 2070) adds FP32 accumulate; SM80 (A100) widens the HMMA
k-step to 16, which *changes the rounding schedule* -- fewer roundings
per dot product -- so its FP16 bits legitimately differ from Turing's.
Volta and Turing share w_k=8, so their result bits must be identical
and only the device label separates their curve digests.
"""

import pytest

from repro.arch import DEVICES
from repro.numerics import error_curve

KS = (32, 64, 128, 256)
SEED = 7

#: (device, accumulate, distribution) -> pinned curve digest.
GOLDEN_DIGESTS = {
    ("V100", "f16", "positive"):
        "791ac5609a7a5754d2ae0a130eee330447f9fa2083242b135eec3d2295730b61",
    ("V100", "f16", "uniform"):
        "7b9e9bb4da6af87a646e67cc04d9f29924d9a15c3018bc840c9635f9acc63264",
    ("RTX2070", "f16", "positive"):
        "ff326f9f0c179753e92343b838aa474a0b8ccbc6e16e652639b5f59051d760cf",
    ("RTX2070", "f32", "positive"):
        "52b442e6da1c06bab7d6e3c91ed2e0e00466a6a4ac8acb5fb896f13eac9fec6f",
    ("A100", "f16", "positive"):
        "238992c68f7c5a846e3b420f4eba7a2073fda60a0bf19eac79539a7683c321da",
    ("A100", "f32", "positive"):
        "1c68192c479fc0a4fdf9cb8a885d3bafbd7b2b2ca32b4a9b09dc55135b0c2bf5",
}


def _curve(device, accumulate, distribution):
    return error_curve(DEVICES[device], ks=KS, accumulate=accumulate,
                       distribution=distribution, seed=SEED)


@pytest.mark.parametrize("device,accumulate,distribution",
                         sorted(GOLDEN_DIGESTS),
                         ids=["-".join(key) for key in
                              sorted(GOLDEN_DIGESTS)])
def test_curve_digest_pinned(device, accumulate, distribution):
    curve = _curve(device, accumulate, distribution)
    assert curve.model_exact  # simulator == formal HMMA model, bitwise
    assert curve.digest() == GOLDEN_DIGESTS[
        (device, accumulate, distribution)]


def test_volta_and_turing_bits_identical():
    """w_k=8 on both SM70 and SM75: the accumulation order is the same,
    so every sample's result bytes (hence digest) must match."""
    volta = _curve("V100", "f16", "positive")
    turing = _curve("RTX2070", "f16", "positive")
    assert [s.digest for s in volta.samples] == \
        [s.digest for s in turing.samples]


def test_ampere_bits_differ_from_turing():
    """w_k=16 halves the number of f16 roundings per dot product: Ampere's
    FP16-accumulate bits must NOT match Turing's (same seed, same shapes).
    A silent match would mean the generation's HMMA k-step stopped
    reaching the arithmetic."""
    ampere = _curve("A100", "f16", "positive")
    turing = _curve("RTX2070", "f16", "positive")
    assert [s.digest for s in ampere.samples] != \
        [s.digest for s in turing.samples]
    assert all(s.w_k == 16 for s in ampere.samples)
    assert all(s.w_k == 8 for s in turing.samples)


def test_f16_error_grows_f32_flat_at_pinned_points():
    """The Markidis shape at the golden operating points: SM70's f16 error
    grows with K; SM80's f32 error stays at the FP32-epsilon scale."""
    volta = _curve("V100", "f16", "positive")
    errs = [s.max_rel_err for s in volta.samples]
    assert errs == sorted(errs) and errs[-1] > 2 * errs[0]
    ampere = _curve("A100", "f32", "positive")
    assert all(s.max_rel_err < 1e-5 for s in ampere.samples)
