"""Tests for the mixed-precision numerics harness."""

import numpy as np
import pytest

from repro.arch import DEVICES
from repro.arch.turing import RTX2070
from repro.numerics import (
    DISTRIBUTIONS,
    error_chart,
    error_curve,
    format_curve,
    format_curves,
    format_verdict,
    markidis_verdict,
    measure_point,
    supports,
)


class TestMeasurePoint:
    def test_point_is_model_exact(self):
        sample = measure_point(RTX2070, k=64)
        assert sample.model_exact
        assert sample.w_k == 8
        assert 0 < sample.max_rel_err < 1
        assert 0 < sample.mean_rel_err <= sample.max_rel_err

    def test_f32_accumulate_is_near_exact(self):
        sample = measure_point(RTX2070, k=256, accumulate="f32",
                               distribution="positive")
        assert sample.model_exact
        assert sample.max_rel_err < 1e-5

    def test_digest_depends_on_seed_and_k(self):
        base = measure_point(RTX2070, k=64, seed=0)
        assert measure_point(RTX2070, k=64, seed=1).digest != base.digest
        assert measure_point(RTX2070, k=128, seed=0).digest != base.digest
        again = measure_point(RTX2070, k=64, seed=0)
        assert again.digest == base.digest

    def test_volta_rejects_f32_accumulate(self):
        assert not supports(DEVICES["V100"], "f32")
        with pytest.raises(ValueError, match="no f32-accumulate"):
            measure_point(DEVICES["V100"], k=32, accumulate="f32")

    def test_every_distribution_runs(self):
        for name in DISTRIBUTIONS:
            sample = measure_point(RTX2070, k=32, distribution=name)
            assert sample.model_exact, name


class TestErrorCurve:
    def test_f16_error_grows_with_k(self):
        curve = error_curve(RTX2070, ks=(32, 128, 512),
                            distribution="positive")
        errs = [s.max_rel_err for s in curve.samples]
        assert errs == sorted(errs)
        assert curve.growth > 2
        assert curve.model_exact

    def test_f32_error_stays_flat(self):
        curve = error_curve(RTX2070, ks=(32, 128, 512), accumulate="f32",
                            distribution="positive")
        assert all(s.max_rel_err < 1e-5 for s in curve.samples)

    def test_markidis_verdict_reproduced_on_turing(self):
        ks = (32, 64, 128, 256, 512)
        f16 = error_curve(RTX2070, ks=ks, distribution="positive")
        f32 = error_curve(RTX2070, ks=ks, accumulate="f32",
                          distribution="positive")
        verdict = markidis_verdict(f16, f32)
        assert verdict.reproduced
        assert "REPRODUCED" in format_verdict(verdict)

    def test_markidis_verdict_volta_f16_only(self):
        f16 = error_curve(DEVICES["V100"], ks=(32, 128, 512),
                          distribution="positive")
        verdict = markidis_verdict(f16, None)
        assert verdict.reproduced
        assert np.isnan(verdict.f32_worst)
        assert "unsupported" in verdict.describe()

    def test_report_rendering(self):
        ks = (32, 64)
        f16 = error_curve(RTX2070, ks=ks)
        f32 = error_curve(RTX2070, ks=ks, accumulate="f32")
        assert "max rel err" in format_curve(f16)
        table = format_curves([f16, f32])
        assert "f16/uniform" in table and "f32/uniform" in table
        chart = error_chart([f16, f32])
        assert "log10(err)" in chart

    def test_ampere_uses_wider_k_step(self):
        curve = error_curve(DEVICES["A100"], ks=(32, 64))
        assert all(s.w_k == 16 for s in curve.samples)
        assert curve.model_exact
