"""Tests for convolution as implicit GEMM (im2col lowering)."""

import numpy as np
import pytest

from repro.arch import DEVICES
from repro.workloads import (
    ConvSpec,
    conv2d,
    conv2d_reference,
    im2col,
    weights_matrix,
)

SPEC = ConvSpec(n=1, h=8, w=8, c_in=32, c_out=64, pad=1)


def _xw(spec, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, (spec.n, spec.h, spec.w,
                            spec.c_in)).astype(np.float16)
    w = rng.uniform(-0.5, 0.5, (spec.r, spec.s, spec.c_in,
                                spec.c_out)).astype(np.float16)
    return x, w


def _direct_conv(x, w, spec):
    """Brute-force float64 convolution: the layout ground truth."""
    out = np.zeros((spec.n, spec.out_h, spec.out_w, spec.c_out))
    xp = np.pad(x.astype(np.float64),
                ((0, 0), (spec.pad, spec.pad), (spec.pad, spec.pad), (0, 0)))
    for oh in range(spec.out_h):
        for ow in range(spec.out_w):
            patch = xp[:, oh * spec.stride : oh * spec.stride + spec.r,
                       ow * spec.stride : ow * spec.stride + spec.s, :]
            out[:, oh, ow, :] = np.tensordot(
                patch, w.astype(np.float64), axes=([1, 2, 3], [0, 1, 2]))
    return out


class TestShapeMapper:
    def test_gemm_shape(self):
        assert SPEC.gemm_shape == (64, 64, 288)
        assert SPEC.out_h == SPEC.out_w == 8

    def test_strided_output_shape(self):
        spec = ConvSpec(n=2, h=16, w=16, c_in=32, c_out=64, pad=1, stride=2)
        assert spec.out_h == spec.out_w == 8
        assert spec.gemm_shape == (2 * 8 * 8, 64, 288)

    def test_pointwise_is_a_reshape(self):
        spec = ConvSpec(n=1, h=8, w=8, c_in=64, c_out=128, r=1, s=1)
        x, _ = _xw(spec)
        np.testing.assert_array_equal(im2col(x, spec), x.reshape(64, 64))

    def test_im2col_matches_direct_convolution(self):
        x, w = _xw(SPEC)
        lowered = im2col(x, SPEC).astype(np.float64) @ \
            weights_matrix(w, SPEC).astype(np.float64)
        direct = _direct_conv(x, w, SPEC)
        np.testing.assert_allclose(
            lowered.reshape(direct.shape), direct, rtol=1e-12)

    def test_bad_shapes_rejected(self):
        x, w = _xw(SPEC)
        with pytest.raises(ValueError, match="NHWC"):
            im2col(x[:, :, :, :8], SPEC)
        with pytest.raises(ValueError, match="RSCK"):
            weights_matrix(w[:, :1], SPEC)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            ConvSpec(n=0, h=8, w=8, c_in=32, c_out=64)
        with pytest.raises(ValueError, match="does not fit"):
            ConvSpec(n=1, h=2, w=2, c_in=32, c_out=64)  # 3x3 on 2x2, pad 0

    def test_describe_mentions_gemm(self):
        assert "GEMM 64x64x288" in SPEC.describe()


class TestSimulatedConv:
    def test_conv2d_matches_oracle_bitwise(self):
        x, w = _xw(SPEC)
        run = conv2d(x, w, SPEC, return_run=True)
        out = run.c.reshape(SPEC.n, SPEC.out_h, SPEC.out_w, SPEC.c_out)
        oracle = conv2d_reference(x, w, SPEC, w_k=run.config.w_k)
        np.testing.assert_array_equal(out, oracle)

    def test_conv2d_returns_nhwc(self):
        x, w = _xw(SPEC)
        out = conv2d(x, w, SPEC)
        assert out.shape == (1, 8, 8, 64)
        assert out.dtype == np.float16

    def test_strided_conv_on_ampere(self):
        spec = ConvSpec(n=2, h=16, w=16, c_in=32, c_out=64, pad=1, stride=2)
        x, w = _xw(spec, seed=3)
        run = conv2d(x, w, spec, device=DEVICES["A100"], return_run=True)
        out = run.c.reshape(spec.n, spec.out_h, spec.out_w, spec.c_out)
        oracle = conv2d_reference(x, w, spec, w_k=run.config.w_k)
        np.testing.assert_array_equal(out, oracle)
        assert run.config.w_k == 16  # Ampere's HMMA.16816 k-step
