"""Tests for strided-batched GEMM through Device.launch."""

import numpy as np
import pytest

from repro.arch import DEVICES
from repro.arch.turing import RTX2070
from repro.core import hgemm
from repro.workloads import (
    hgemm_strided_batched,
    hgemm_strided_batched_reference,
)


def _rand(shape, seed):
    return np.random.default_rng(seed).uniform(-1, 1, shape).astype(
        np.float16)


class TestStridedBatched:
    def test_batched_matches_oracle_bitwise(self):
        a = _rand((3, 64, 32), 0)
        b = _rand((3, 32, 64), 1)
        run = hgemm_strided_batched(a, b, return_run=True)
        oracle = hgemm_strided_batched_reference(a, b, w_k=run.config.w_k)
        np.testing.assert_array_equal(run.c, oracle)
        assert run.launches == 3
        assert len(run.per_entry) == 3

    def test_each_entry_matches_single_hgemm(self):
        """The batch must be *exactly* a loop of single launches: same
        kernel, same bits per entry."""
        a = _rand((2, 64, 32), 2)
        b = _rand((2, 32, 64), 3)
        c = hgemm_strided_batched(a, b)
        for i in range(2):
            np.testing.assert_array_equal(c[i], np.asarray(hgemm(a[i], b[i])))

    def test_shared_b_broadcasts_with_stride_zero(self):
        a = _rand((4, 64, 32), 4)
        b = _rand((32, 64), 5)           # one weight matrix, stride 0
        c = hgemm_strided_batched(a, b)
        assert c.shape == (4, 64, 64)
        for i in range(4):
            np.testing.assert_array_equal(c[i], np.asarray(hgemm(a[i], b)))

    def test_shared_a_broadcasts_with_stride_zero(self):
        a = _rand((64, 128), 6)          # one input, stride 0 (LSTM gates)
        b = _rand((4, 128, 64), 7)
        run = hgemm_strided_batched(a, b, return_run=True)
        oracle = hgemm_strided_batched_reference(a, b, w_k=run.config.w_k)
        np.testing.assert_array_equal(run.c, oracle)

    def test_stats_aggregate_over_batch(self):
        a = _rand((2, 64, 32), 8)
        b = _rand((2, 32, 64), 9)
        run = hgemm_strided_batched(a, b, return_run=True)
        single = hgemm(a[0], b[0], return_run=True)
        assert run.instructions == 2 * single.stats.instructions_retired
        assert run.mma == 2 * single.stats.opcode_counts["HMMA"]
        assert run.ctas == 2 * single.stats.ctas_run

    def test_two_2d_operands_rejected(self):
        with pytest.raises(ValueError, match="at least one operand"):
            hgemm_strided_batched(_rand((64, 32), 0), _rand((32, 64), 1))

    def test_batch_mismatch_rejected(self):
        with pytest.raises(ValueError, match="batch"):
            hgemm_strided_batched(_rand((2, 64, 32), 0),
                                  _rand((3, 32, 64), 1))

    def test_k_mismatch_rejected(self):
        with pytest.raises(ValueError, match="incompatible"):
            hgemm_strided_batched(_rand((2, 64, 32), 0),
                                  _rand((2, 64, 64), 1))

    def test_array_protocol(self):
        a = _rand((2, 64, 32), 10)
        b = _rand((2, 32, 64), 11)
        run = hgemm_strided_batched(a, b, return_run=True)
        np.testing.assert_array_equal(np.asarray(run), run.c)

    @pytest.mark.parametrize("device", ["V100", "A100"])
    def test_other_generations(self, device):
        spec = DEVICES[device]
        a = _rand((2, 64, 32), 12)
        b = _rand((32, 64), 13)
        run = hgemm_strided_batched(a, b, spec=spec, return_run=True)
        oracle = hgemm_strided_batched_reference(a, b, w_k=run.config.w_k)
        np.testing.assert_array_equal(run.c, oracle)

    def test_f32_accumulate(self):
        a = _rand((2, 64, 32), 14)
        b = _rand((2, 32, 64), 15)
        run = hgemm_strided_batched(a, b, accumulate="f32", return_run=True,
                                    spec=RTX2070)
        assert run.c.dtype == np.float32
        oracle = hgemm_strided_batched_reference(a, b, w_k=run.config.w_k,
                                                 accumulate="f32")
        np.testing.assert_array_equal(run.c, oracle)
