"""Tests for the workload suite registry, runner, and estimates."""

import pytest

from repro.arch import DEVICES
from repro.arch.turing import RTX2070
from repro.workloads import (
    SUITES,
    GemmShape,
    Workload,
    get_suite,
    run_suite,
    suite_names,
)
from repro.workloads.suite import estimate_suite, format_estimates


class TestRegistry:
    def test_expected_suites_present(self):
        assert {"layers", "bert", "resnet", "lstm", "smoke"} <= set(SUITES)
        assert suite_names() == sorted(SUITES)

    def test_get_suite_by_name_and_passthrough(self):
        suite = get_suite("bert")
        assert get_suite(suite) is suite
        with pytest.raises(KeyError, match="unknown workload suite"):
            get_suite("nope")

    def test_every_sim_shape_tiles_on_every_generation(self):
        """Registry invariant: sim-scale GEMM dims must tile on all four
        devices -- m, n multiples of 64 and k a multiple of 32 (Ampere's
        b_k after arch adaptation)."""
        for suite in SUITES.values():
            for problem in suite.problems("sim"):
                assert problem.m % 64 == 0, problem
                assert problem.n % 64 == 0, problem
                assert problem.k % 32 == 0, problem

    def test_smoke_covers_every_kind(self):
        kinds = {w.kind for w in get_suite("smoke").workloads}
        assert kinds == {"gemm", "batched", "conv", "attention"}

    def test_workload_validates_kind(self):
        with pytest.raises(ValueError, match="kind"):
            Workload("x", "matmul", sim=None, full=None)

    def test_problems_rejects_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            get_suite("smoke").workloads[0].problems("huge")

    def test_gemm_shape_describe_and_flops(self):
        shape = GemmShape("g", 64, 64, 32, count=4)
        assert shape.describe() == "4 x 64x64x32"
        assert shape.flops == 4 * 2 * 64 * 64 * 32


class TestRunSuite:
    def test_smoke_suite_bit_exact(self):
        result = run_suite("smoke", spec=RTX2070)
        assert result.passed, result.summary()
        assert len(result.results) == 4
        assert result.instructions > 0
        assert "PASS" in result.summary()

    @pytest.mark.parametrize("device", sorted(DEVICES))
    def test_smoke_suite_every_device(self, device):
        result = run_suite("smoke", spec=DEVICES[device])
        assert result.passed, result.summary()

    def test_failure_is_reported_not_raised(self):
        """A workload whose shapes cannot tile must produce a failed row
        with the error message, not crash the whole suite."""
        from repro.workloads.suite import WorkloadSuite

        bad = WorkloadSuite(
            name="bad", description="untileable",
            workloads=(Workload("tiny", "gemm",
                                sim=GemmShape("tiny", 16, 16, 16),
                                full=GemmShape("tiny", 16, 16, 16)),))
        result = run_suite(bad, spec=RTX2070)
        assert not result.passed
        assert "FAIL" in result.summary()
        assert result.results[0].message

    def test_seed_changes_operands_not_verdict(self):
        a = run_suite("smoke", spec=RTX2070, seed=0)
        b = run_suite("smoke", spec=RTX2070, seed=1)
        assert a.passed and b.passed


class TestEstimates:
    def test_estimate_full_scale_layers(self):
        rows = estimate_suite("layers", RTX2070)
        assert len(rows) == len(get_suite("layers").problems("full"))
        for problem, label, est, base in rows:
            assert label in ("256x256", "128x128")
            assert est.tflops > 0
            assert base.tflops > 0
        table = format_estimates(rows, RTX2070)
        assert "speedup" in table and "TFLOPS" in table

    def test_estimate_without_baseline(self):
        rows = estimate_suite("lstm", RTX2070, baseline=False)
        assert all(base is None for _, _, _, base in rows)
        assert "speedup" not in format_estimates(rows, RTX2070)


class TestAnalysisSuite:
    def test_sweep_suite_shares_model(self):
        from repro.analysis import PerformanceModel, sweep_suite

        pm = PerformanceModel(RTX2070)
        rows = sweep_suite("lstm", RTX2070, model=pm)
        assert len(rows) == 1
        assert rows[0][2].tflops > 0

    def test_autotune_suite_dedupes_shapes(self):
        from repro.analysis import (
            autotune_suite,
            format_suite_tuning,
        )

        # bert's sim scale repeats the 64x256x64-style shapes less than
        # its problem list length once deduped.
        rows = autotune_suite("bert", RTX2070, scale="sim", finalists=1)
        shapes = [(p.m, p.n, p.k) for p, _ in rows]
        assert len(shapes) == len(set(shapes))
        problems = get_suite("bert").problems("sim")
        assert len(rows) < len(problems)
        for _, result in rows:
            assert result.best_tflops > 0
        assert "best configuration" in format_suite_tuning(rows, RTX2070)
