"""Tests for attention-shaped GEMM problems."""

import numpy as np
import pytest

from repro.arch import DEVICES
from repro.workloads import (
    AttentionSpec,
    attention_head,
    attention_head_reference,
)


def _qkv(seq=64, d_head=64, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.uniform(-1, 1, (seq, d_head)).astype(np.float16)
            for _ in range(3)]


class TestAttentionSpec:
    def test_gemm_problems_shapes(self):
        spec = AttentionSpec(seq=512, d_model=1024, n_heads=16)
        assert spec.d_head == 64
        problems = dict(
            (name, (m, n, k, count))
            for name, m, n, k, count in spec.gemm_problems())
        assert problems["scores Q@K^T"] == (512, 512, 64, 16)
        assert problems["output P@V"] == (512, 64, 512, 16)
        assert problems["QKV projection"] == (512, 3072, 1024, 1)

    def test_indivisible_heads_rejected(self):
        with pytest.raises(ValueError, match="not divisible"):
            AttentionSpec(seq=64, d_model=100, n_heads=3)


class TestAttentionHead:
    def test_head_matches_oracle_bitwise(self):
        q, k, v = _qkv()
        out, stats = attention_head(q, k, v)
        oracle = attention_head_reference(q, k, v)
        np.testing.assert_array_equal(out, oracle)
        assert stats["launches"] == 2
        assert stats["mma"] > 0

    def test_output_rows_are_convex_combinations(self):
        """Softmax rows sum to ~1, so each output row must lie within the
        value matrix's column-wise range (up to fp16 rounding)."""
        q, k, v = _qkv(seed=1)
        out, _ = attention_head(q, k, v)
        v64 = v.astype(np.float64)
        lo, hi = v64.min(axis=0) - 1e-2, v64.max(axis=0) + 1e-2
        assert (out.astype(np.float64) >= lo).all()
        assert (out.astype(np.float64) <= hi).all()

    def test_shape_mismatch_rejected(self):
        q, k, v = _qkv()
        with pytest.raises(ValueError, match="Q/K/V"):
            attention_head(q, k[:32], v)

    @pytest.mark.parametrize("device", ["V100", "A100"])
    def test_other_generations(self, device):
        q, k, v = _qkv(seed=2)
        spec = DEVICES[device]
        out, _ = attention_head(q, k, v, device=spec)
        oracle = attention_head_reference(q, k, v, device=spec)
        np.testing.assert_array_equal(out, oracle)
