"""Tests for the SASS pointer-chase benchmark (Mei & Chu methodology)."""

import pytest

from repro.arch import RTX2070
from repro.bench import detect_l1_capacity, pointer_chase


class TestPointerChase:
    def test_small_footprint_fast(self):
        result = pointer_chase(RTX2070, 8 << 10)
        assert result.cycles_per_hop < 40  # L1-resident

    def test_large_footprint_slow(self):
        result = pointer_chase(RTX2070, 64 << 10)
        assert result.cycles_per_hop > 100  # beyond L1

    def test_latency_monotone_in_footprint(self):
        lat = [pointer_chase(RTX2070, fp << 10).cycles_per_hop
               for fp in (8, 32, 64)]
        assert lat[0] <= lat[1] <= lat[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            pointer_chase(RTX2070, 8 << 10, stride_bytes=3)
        with pytest.raises(ValueError):
            pointer_chase(RTX2070, 1000, stride_bytes=128)

    def test_result_fields(self):
        result = pointer_chase(RTX2070, 16 << 10, hops_per_loop=32, loops=2)
        assert result.hops == 64
        assert result.footprint_bytes == 16 << 10


class TestL1Detection:
    def test_detects_modelled_capacity(self):
        assert detect_l1_capacity(RTX2070) == 32 << 10

    def test_custom_candidates(self):
        got = detect_l1_capacity(RTX2070, candidates=[16 << 10, 32 << 10,
                                                      48 << 10])
        assert got == 32 << 10
