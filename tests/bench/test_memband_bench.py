"""Tests for the DRAM/L2 bandwidth benchmarks (paper Table II)."""

import pytest

from repro.arch import RTX2070, T4
from repro.bench import measure_dram_bandwidth, measure_l2_bandwidth


class TestDram:
    def test_rtx2070_matches_table2(self):
        result = measure_dram_bandwidth(RTX2070)
        assert result.level == "dram"
        assert result.gbps == pytest.approx(380.0, rel=0.03)

    def test_t4_matches_table2(self):
        assert measure_dram_bandwidth(T4).gbps == pytest.approx(238.0, rel=0.03)

    def test_below_marketing_peak(self):
        # Measured is 85% / 75% of the theoretical peak (Section V-A).
        for spec in (RTX2070, T4):
            got = measure_dram_bandwidth(spec).gbps
            assert got < spec.dram_peak_gbps

    def test_traffic_actually_hit_dram(self):
        result = measure_dram_bandwidth(RTX2070)
        assert result.bytes_moved > 1 << 20


class TestL2:
    def test_rtx2070_matches_table2(self):
        assert measure_l2_bandwidth(RTX2070).gbps == pytest.approx(750.0, rel=0.05)

    def test_t4_matches_table2(self):
        assert measure_l2_bandwidth(T4).gbps == pytest.approx(910.0, rel=0.05)

    def test_l2_faster_than_dram(self):
        for spec in (RTX2070, T4):
            assert measure_l2_bandwidth(spec).gbps > measure_dram_bandwidth(spec).gbps

    def test_t4_inversion(self):
        # The paper's notable observation: T4 has *less* DRAM but *more* L2
        # bandwidth than the RTX 2070.
        assert measure_dram_bandwidth(T4).gbps < measure_dram_bandwidth(RTX2070).gbps
        assert measure_l2_bandwidth(T4).gbps > measure_l2_bandwidth(RTX2070).gbps
