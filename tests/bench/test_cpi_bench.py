"""Tests for the CPI microbenchmarks: measured values must reproduce the
paper's Tables I, III, IV and V."""

import pytest

from repro.arch import RTX2070, T4
from repro.bench import (
    measure_hmma_cpi,
    measure_ldg_cpi,
    measure_lds_cpi,
    measure_sts_cpi,
    smem_throughput_bytes_per_cycle,
)


class TestTable1Hmma:
    def test_cpi_close_to_measured_8_06(self):
        result = measure_hmma_cpi(RTX2070)
        assert result.cpi == pytest.approx(8.06, abs=0.1)

    def test_cpi_above_theoretical(self):
        # Loop overhead pushes the measurement above the 8.00 theory.
        result = measure_hmma_cpi(RTX2070)
        assert result.cpi > 8.0

    def test_same_on_t4(self):
        # Paper Section IV-C: metrics identical on RTX2070 and T4.
        assert measure_hmma_cpi(T4).cpi == pytest.approx(
            measure_hmma_cpi(RTX2070).cpi, abs=0.02
        )


class TestTable4SharedCpi:
    @pytest.mark.parametrize("width,expected", [(32, 2.11), (64, 4.00), (128, 8.00)])
    def test_lds(self, width, expected):
        result = measure_lds_cpi(RTX2070, width)
        assert result.cpi == pytest.approx(expected, abs=0.1)

    @pytest.mark.parametrize("width,expected", [(32, 4.06), (64, 6.00), (128, 10.00)])
    def test_sts(self, width, expected):
        result = measure_sts_cpi(RTX2070, width)
        assert result.cpi == pytest.approx(expected, abs=0.1)

    def test_conflicted_stride_multiplies_cpi(self):
        free = measure_lds_cpi(RTX2070, 32)
        conflicted = measure_lds_cpi(RTX2070, 32, conflict_stride=128)
        assert conflicted.cpi / free.cpi == pytest.approx(32, rel=0.05)


class TestTable5Throughput:
    def test_lds_throughput(self):
        # Paper Table V: 60.66 / 64.00 / 64.00 bytes/cycle.
        expected = {32: 60.66, 64: 64.0, 128: 64.0}
        for width, value in expected.items():
            result = measure_lds_cpi(RTX2070, width)
            got = smem_throughput_bytes_per_cycle(result, width)
            assert got == pytest.approx(value, rel=0.03)

    def test_sts_throughput_ordering(self):
        # "STS.128 has 20% higher throughput than STS.64 and 62.4% higher
        # than STS.32."
        t = {w: smem_throughput_bytes_per_cycle(measure_sts_cpi(RTX2070, w), w)
             for w in (32, 64, 128)}
        assert t[128] / t[64] == pytest.approx(1.20, abs=0.03)
        assert t[128] / t[32] == pytest.approx(1.624, abs=0.05)

    def test_lds_wide_reaches_theoretical_peak(self):
        # LDS.64/.128 hit the 64 B/cycle bank-array peak.
        for width in (64, 128):
            got = smem_throughput_bytes_per_cycle(
                measure_lds_cpi(RTX2070, width), width)
            assert got == pytest.approx(64.0, rel=0.01)


class TestTable3LdgCpi:
    @pytest.mark.parametrize("width,expected", [(32, 4.04), (64, 4.04), (128, 8.00)])
    def test_l1(self, width, expected):
        result = measure_ldg_cpi(RTX2070, width, level="l1")
        assert result.cpi == pytest.approx(expected, abs=0.1)

    @pytest.mark.parametrize("width,expected", [(32, 4.19), (64, 8.38), (128, 15.95)])
    def test_l2(self, width, expected):
        result = measure_ldg_cpi(RTX2070, width, level="l2")
        assert result.cpi == pytest.approx(expected, abs=0.1)

    def test_ldg128_l2_throughput_edge(self):
        # "LDG.128 has 5.1% higher throughput than the other two."
        r64 = measure_ldg_cpi(RTX2070, 64, level="l2")
        r128 = measure_ldg_cpi(RTX2070, 128, level="l2")
        ratio = (512 / r128.cpi) / (256 / r64.cpi)
        assert ratio == pytest.approx(1.051, abs=0.01)

    def test_bad_level(self):
        with pytest.raises(ValueError):
            measure_ldg_cpi(RTX2070, 32, level="l3")
