"""Tests for the HMMA latency probe (paper Table I)."""

import pytest

from repro.arch import RTX2070, T4
from repro.bench import measure_hmma_latency, probe_hmma_half


class TestProbe:
    def test_first_half_boundary(self):
        assert not probe_hmma_half(RTX2070, 9, half=0)
        assert probe_hmma_half(RTX2070, 10, half=0)

    def test_second_half_boundary(self):
        assert not probe_hmma_half(RTX2070, 13, half=1)
        assert probe_hmma_half(RTX2070, 14, half=1)

    def test_bad_half(self):
        with pytest.raises(ValueError):
            probe_hmma_half(RTX2070, 10, half=2)

    def test_different_seeds_agree(self):
        for seed in (1, 2, 3):
            assert probe_hmma_half(RTX2070, 10, half=0, seed=seed)
            assert not probe_hmma_half(RTX2070, 9, half=0, seed=seed)


class TestMeasurement:
    def test_table1_latencies(self):
        result = measure_hmma_latency(RTX2070)
        assert result.first_half == 10
        assert result.second_half == 14

    def test_same_on_t4(self):
        result = measure_hmma_latency(T4)
        assert (result.first_half, result.second_half) == (10, 14)

    def test_probe_budget(self):
        # The bisection should stop as soon as each half reads correct.
        result = measure_hmma_latency(RTX2070)
        assert result.probes == 10 + 14
