"""Tests for the analytical blocking model (paper Eqs. 3-6, Table VI)."""

import pytest

from repro.arch import RTX2070, T4
from repro.core import KernelConfig, cublas_like, ours
from repro.core.blocking import (
    TABLE6_CONFIGS,
    choose_blocking,
    hmma_cycles_per_iteration,
    ldg_sts_cycles_per_iteration,
    lds_cycles_per_iteration,
    min_hmma_between_sts,
    pipe_cycles,
    table6_rows,
)


def cfg(bm, bn, bk, wm, wn, wk=8):
    return KernelConfig(b_m=bm, b_n=bn, b_k=bk, w_m=wm, w_n=wn, w_k=wk)


class TestTable6Reproduction:
    """Pin the exact Table VI values (computed with measured CPIs)."""

    EXPECTED = {
        ((128, 128, 32), (64, 64, 8)): (1031, 1370),
        ((128, 128, 32), (128, 64, 8)): (1031, 1235),
        ((256, 128, 32), (64, 64, 8)): (2063, 2325),
        ((256, 128, 32), (128, 64, 8)): (2063, 2055),
        ((256, 256, 32), (64, 64, 8)): (4126, 3821),
        ((256, 256, 32), (128, 64, 8)): (4126, 3281),
    }

    @pytest.mark.parametrize("cta,warp", TABLE6_CONFIGS)
    def test_row_matches_paper(self, cta, warp):
        config = cfg(*cta, *warp)
        cycles = pipe_cycles(config, RTX2070)
        hmma_exp, mem_exp = self.EXPECTED[(cta, warp)]
        assert cycles.hmma == pytest.approx(hmma_exp, abs=1.0)
        assert cycles.memory_io == pytest.approx(mem_exp, abs=1.0)

    def test_table6_rows_cover_all_configs(self):
        rows = table6_rows(RTX2070)
        assert len(rows) == 6
        assert {(r[0], r[1]) for r in rows} == set(TABLE6_CONFIGS)

    def test_bound_classification_matches_paper(self):
        # 128x128 is memory-bound in both warp tilings; 256x128 flips with
        # the warp tile; 256x256 is compute-bound in both.
        assert not pipe_cycles(cfg(128, 128, 32, 64, 64), RTX2070).compute_bound
        assert not pipe_cycles(cfg(128, 128, 32, 128, 64), RTX2070).compute_bound
        assert not pipe_cycles(cfg(256, 128, 32, 64, 64), RTX2070).compute_bound
        assert pipe_cycles(cfg(256, 128, 32, 128, 64), RTX2070).compute_bound
        assert pipe_cycles(cfg(256, 256, 32, 64, 64), RTX2070).compute_bound
        assert pipe_cycles(cfg(256, 256, 32, 128, 64), RTX2070).compute_bound


class TestEquationTerms:
    def test_eq3_scales_with_volume(self):
        base = hmma_cycles_per_iteration(cfg(128, 128, 32, 64, 64), RTX2070)
        doubled = hmma_cycles_per_iteration(cfg(256, 128, 32, 64, 64), RTX2070)
        assert doubled == pytest.approx(2 * base)

    def test_eq4_scales_with_tile_perimeter(self):
        small = ldg_sts_cycles_per_iteration(cfg(128, 128, 32, 64, 64), RTX2070)
        large = ldg_sts_cycles_per_iteration(cfg(256, 256, 32, 64, 64), RTX2070)
        assert large == pytest.approx(2 * small)

    def test_eq5_depends_on_warp_tile(self):
        # Larger warp tiles load fewer fragments per FLOP.
        coarse = lds_cycles_per_iteration(cfg(256, 256, 32, 128, 64), RTX2070)
        fine = lds_cycles_per_iteration(cfg(256, 256, 32, 64, 64), RTX2070)
        assert coarse < fine

    def test_eq5_value_for_ours(self):
        # 8 warps x 24 fragments x 4 slices x 2.11 CPI = 1620.5 cycles.
        val = lds_cycles_per_iteration(cfg(256, 256, 32, 128, 64), RTX2070)
        assert val == pytest.approx(1620.5, abs=0.5)

    def test_same_on_t4(self):
        # CPIs are identical on both devices (paper Section IV-C).
        for cta, warp in TABLE6_CONFIGS:
            assert pipe_cycles(cfg(*cta, *warp), RTX2070) == \
                pipe_cycles(cfg(*cta, *warp), T4)


class TestEq6Interleave:
    def test_sts128_needs_5_hmmas(self):
        # Paper Section VI-C: ceil(4 * 10 / 8.06)... with CPI_HMMA = 8:
        # ceil(40/8) = 5.
        assert min_hmma_between_sts(RTX2070) == 5

    def test_narrower_sts_needs_fewer(self):
        assert min_hmma_between_sts(RTX2070, width=32) <= \
            min_hmma_between_sts(RTX2070, width=128)

    def test_ours_preset_uses_eq6_value(self):
        assert ours().sts_interleave == min_hmma_between_sts(RTX2070)

    def test_cublas_preset_below_eq6(self):
        # The paper's point: cuBLAS's 2 is "not enough".
        assert cublas_like().sts_interleave < min_hmma_between_sts(RTX2070)


class TestChooseBlocking:
    def test_picks_the_papers_choice(self):
        best = choose_blocking(RTX2070)
        assert best.cta_tile == (256, 256, 32)
        assert best.warp_tile == (128, 64, 8)

    def test_same_choice_on_t4(self):
        best = choose_blocking(T4)
        assert best.cta_tile == (256, 256, 32)

    def test_margin_too_high_raises(self):
        with pytest.raises(ValueError, match="compute-bound"):
            choose_blocking(RTX2070, margin=10.0)

    def test_restricted_candidates(self):
        best = choose_blocking(
            RTX2070,
            candidates=(((256, 128, 32), (128, 64, 8)),
                        ((256, 128, 32), (64, 64, 8))),
        )
        assert best.warp_tile == (128, 64, 8)
