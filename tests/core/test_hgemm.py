"""Tests for the public HGEMM API, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ConfigError, KernelConfig, hgemm, hgemm_reference
from repro.core.hgemm import HgemmRun, _shrink_to_fit
from repro.core.config import cublas_like, ours


def rand(shape, seed):
    return np.random.default_rng(seed).uniform(-2, 2, shape).astype(np.float16)


class TestHgemmApi:
    def test_basic(self):
        a, b = rand((64, 32), 0), rand((32, 64), 1)
        c = hgemm(a, b)
        assert c.shape == (64, 64)
        assert c.dtype == np.float16
        np.testing.assert_array_equal(c, hgemm_reference(a, b))

    def test_cublas_kernel_same_result(self):
        # Both kernels accumulate per 8-wide k-slice: identical numerics.
        a, b = rand((128, 64), 2), rand((64, 128), 3)
        np.testing.assert_array_equal(
            hgemm(a, b, kernel="ours"), hgemm(a, b, kernel="cublas")
        )

    def test_explicit_config(self):
        cfg = KernelConfig(b_m=64, b_n=64, b_k=16, w_m=32, w_n=32, w_k=8)
        a, b = rand((64, 16), 4), rand((16, 64), 5)
        np.testing.assert_array_equal(hgemm(a, b, kernel=cfg),
                                      hgemm_reference(a, b))

    def test_float32_inputs_are_converted(self):
        a = np.ones((64, 16), np.float32)
        b = np.ones((16, 64), np.float32)
        c = hgemm(a, b)
        assert np.all(c == 16.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="incompatible"):
            hgemm(np.zeros((64, 32), np.float16), np.zeros((16, 64), np.float16))

    def test_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            hgemm(np.zeros((64, 16), np.float16),
                  np.zeros((16, 64), np.float16), kernel="magma")

    def test_unsupported_dims(self):
        with pytest.raises(ConfigError, match="multiples"):
            hgemm(np.zeros((100, 64), np.float16), np.zeros((64, 64), np.float16))

    def test_return_run(self):
        a, b = rand((64, 16), 6), rand((16, 64), 7)
        run = hgemm(a, b, return_run=True)
        assert isinstance(run, HgemmRun)
        assert run.stats.opcode_counts["HMMA"] > 0
        np.testing.assert_array_equal(np.asarray(run), run.c)

    def test_rectangular_shapes(self):
        # The paper's rectangular series: [2W x W x W] etc.
        a, b = rand((128, 64), 8), rand((64, 64), 9)
        np.testing.assert_array_equal(hgemm(a, b), hgemm_reference(a, b))


class TestShrinkToFit:
    def test_full_size_untouched(self):
        cfg = _shrink_to_fit(ours(), 1024, 1024, 1024)
        assert cfg.cta_tile == (256, 256, 32)

    def test_shrinks_m(self):
        cfg = _shrink_to_fit(ours(), 128, 256, 64)
        assert cfg.b_m == 128
        assert 128 % cfg.b_m == 0

    def test_shrinks_all(self):
        cfg = _shrink_to_fit(ours(), 64, 64, 16)
        assert cfg.cta_tile == (64, 64, 16)
        assert cfg.w_m <= 64 and cfg.w_n <= 64

    def test_swizzle_dropped_when_bk_changes(self):
        cfg = _shrink_to_fit(cublas_like(), 128, 128, 32)
        assert not cfg.smem_swizzle

    def test_infeasible_raises(self):
        with pytest.raises(ConfigError):
            _shrink_to_fit(ours(), 50, 64, 16)


class TestReference:
    def test_reference_matches_float32_for_short_k(self):
        # With k == w_k there is a single accumulation step: the chained
        # reference equals a plain f32 matmul rounded once.
        a, b = rand((16, 8), 10), rand((8, 16), 11)
        expected = (a.astype(np.float32) @ b.astype(np.float32)).astype(np.float16)
        np.testing.assert_array_equal(hgemm_reference(a, b), expected)

    def test_reference_differs_from_naive_for_long_k(self):
        # FP16 accumulator rounding is visible over many slices.
        a = np.full((16, 512), 0.1, np.float16)
        b = np.full((512, 16), 0.1, np.float16)
        chained = hgemm_reference(a, b)
        naive = (a.astype(np.float32) @ b.astype(np.float32)).astype(np.float16)
        assert not np.array_equal(chained, naive)


class TestHgemmProperties:
    @settings(max_examples=8, deadline=None)
    @given(
        m=st.sampled_from([64, 128]),
        n=st.sampled_from([64, 128]),
        k=st.sampled_from([16, 32, 48]),
        seed=st.integers(0, 1000),
    )
    def test_matches_reference(self, m, n, k, seed):
        a, b = rand((m, k), seed), rand((k, n), seed + 1)
        np.testing.assert_array_equal(hgemm(a, b), hgemm_reference(a, b))

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_zero_b_gives_zero(self, seed):
        a = rand((64, 16), seed)
        b = np.zeros((16, 64), np.float16)
        assert np.all(hgemm(a, b) == 0.0)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_identity_b(self, seed):
        a = rand((64, 64), seed)
        np.testing.assert_array_equal(hgemm(a, np.eye(64, dtype=np.float16)), a)

    @settings(max_examples=5, deadline=None)
    @given(scale=st.sampled_from([0.25, 0.5, 2.0, 4.0]), seed=st.integers(0, 100))
    def test_scaling_linearity(self, scale, seed):
        # Exact power-of-two scaling commutes with FP16 rounding.
        a = rand((64, 16), seed)
        b = rand((16, 64), seed + 1)
        np.testing.assert_array_equal(
            hgemm(a * np.float16(scale), b),
            hgemm_reference(a * np.float16(scale), b),
        )
