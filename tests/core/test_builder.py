"""Tests for the HGEMM kernel generator (structure + functional runs)."""

import numpy as np
import pytest

from repro.core import ConfigError, KernelConfig, cublas_like, ours
from repro.core.builder import HgemmProblem, RegisterPlan, build_hgemm
from repro.sim import FunctionalSimulator, GlobalMemory

TINY = KernelConfig(b_m=64, b_n=64, b_k=16, w_m=32, w_n=32, w_k=8, name="tiny")


def run_functional(config, m, n, k, seed=0):
    a_addr, b_addr, c_addr = 0, 8 << 20, 16 << 20
    program = build_hgemm(config, HgemmProblem(m, n, k, a_addr, b_addr, c_addr))
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, (m, k)).astype(np.float16)
    b = rng.uniform(-1, 1, (k, n)).astype(np.float16)
    memory = GlobalMemory(32 << 20)
    memory.write_array(a_addr, a)
    memory.write_array(b_addr, np.ascontiguousarray(b.T))
    FunctionalSimulator().run(program, memory, grid_dim=config.grid_dim(m, n))
    c = memory.read_array(c_addr, np.float16, m * n).reshape(m, n)
    return a, b, c


def chained_reference(a, b, w_k=8):
    acc = np.zeros((a.shape[0], b.shape[1]), np.float16)
    for s in range(0, a.shape[1], w_k):
        acc = (a[:, s:s + w_k].astype(np.float32)
               @ b[s:s + w_k].astype(np.float32)
               + acc.astype(np.float32)).astype(np.float16)
    return acc


class TestProblem:
    def test_validation_multiples(self):
        with pytest.raises(ConfigError, match="multiple"):
            HgemmProblem(100, 256, 32).validate(ours())

    def test_validation_alignment(self):
        with pytest.raises(ConfigError, match="aligned"):
            HgemmProblem(256, 256, 32, a_addr=4).validate(ours())

    def test_flops(self):
        assert HgemmProblem(256, 256, 32).flops == 2 * 256 * 256 * 32


class TestRegisterPlan:
    def test_ours_plan_fits(self):
        plan = RegisterPlan.for_config(ours(), 256)
        assert plan.n_acc == 128
        assert plan.a_frag_per_buf == 16
        assert plan.b_frag_per_buf == 8
        assert plan.n_ldg_a == plan.n_ldg_b == 4
        assert plan.top <= 255

    def test_cublas_plan_fits(self):
        plan = RegisterPlan.for_config(cublas_like(), 128)
        assert plan.n_acc == 64
        assert plan.n_ldg_a == plan.n_ldg_b == 8
        assert plan.top <= 255

    def test_no_register_overlap(self):
        plan = RegisterPlan.for_config(ours(), 256)
        ranges = [
            range(plan.acc, plan.acc + plan.n_acc),
            range(plan.a_frag, plan.a_frag + 2 * plan.a_frag_per_buf),
            range(plan.b_frag, plan.b_frag + 2 * plan.b_frag_per_buf),
            range(plan.stage_a, plan.stage_a + 4 * plan.n_ldg_a),
            range(plan.stage_b, plan.stage_b + 4 * plan.n_ldg_b),
            range(plan.ldg_base_a, plan.ldg_base_a + plan.n_ldg_a),
            range(plan.ldg_base_b, plan.ldg_base_b + plan.n_ldg_b),
        ]
        seen = set()
        for rng_ in ranges:
            for reg in rng_:
                # LDG bases may live in the freed prologue scratch R11..R28;
                # everything else sits above R31.
                assert reg >= 11
                assert reg not in seen
                seen.add(reg)

    def test_ldg_bases_avoid_live_scratch(self):
        # Bases reuse R11..R28 but must never touch the persistent address
        # registers R1..R10 or the prologue's live sources R29..R31.
        for cfg in (ours(), cublas_like()):
            plan = RegisterPlan.for_config(cfg, cfg.threads_per_cta)
            if plan.ldg_base_a < 32:
                assert plan.ldg_base_a >= 11
                assert plan.ldg_base_b + plan.n_ldg_b - 1 <= 28

    def test_too_small_tile_rejected(self):
        with pytest.raises(ConfigError, match="at least one LDG"):
            RegisterPlan.for_config(TINY, 512)


class TestProgramStructure:
    def test_instruction_counts_ours(self):
        program = build_hgemm(ours(), HgemmProblem(256, 256, 64, 0, 1 << 22, 1 << 23))
        # Per iteration: 256 HMMAs per warp-program.
        assert program.count_opcode("HMMA") == 256
        # 8 LDG.128 per thread per tile (4 A + 4 B) + bases advance.
        assert program.count_opcode("LDG") == 16  # fill batch + loop batch
        assert program.count_opcode("STS") == 16
        # 2 barriers in the loop + 1 in the pipeline fill.
        assert program.count_opcode("BAR") == 3
        assert program.count_opcode("EXIT") == 1

    def test_lds_counts_match_eq5(self):
        # Eq. (5): (w_m/8 + w_n/8) fragments per slice per warp.
        program = build_hgemm(ours(), HgemmProblem(256, 256, 64, 0, 1 << 22, 1 << 23))
        cfg = ours()
        per_slice = cfg.w_m // 8 + cfg.w_n // 8
        slices = cfg.b_k // cfg.w_k
        # One full slice-set per iteration (pipeline-fill head + in-loop
        # tail + slices 1..S-1 + next-tile head) plus the fill's head again.
        head = 2 * 1 + cfg.w_n // 8  # split A op + all B ops
        assert program.count_opcode("LDS") == per_slice * slices + head

    def test_sts_interleave_distance(self):
        """The emitted STS stream honours the config's interleave knob."""
        for interleave in (2, 5):
            program = build_hgemm(
                ours(sts_interleave=interleave),
                HgemmProblem(256, 256, 64, 0, 1 << 22, 1 << 23),
            )
            ops = [inst.opcode for inst in program]
            start = program.labels["KLOOP"]
            sts_positions = [i for i, op in enumerate(ops) if op == "STS" and i > start]
            gaps = []
            for a, b in zip(sts_positions, sts_positions[1:]):
                gaps.append(sum(1 for op in ops[a + 1 : b] if op == "HMMA"))
            assert gaps, "no STS pairs found in the main loop"
            assert min(gaps) >= interleave - 1
            assert max(g for g in gaps) <= interleave + 1

    def test_metadata(self):
        program = build_hgemm(ours(), HgemmProblem(256, 256, 32, 0, 1 << 22, 1 << 23))
        assert program.meta.block_dim == 256
        assert program.meta.smem_bytes == 40 * 1024
        assert program.meta.num_regs <= 255

    def test_odd_slice_count_rejected(self):
        cfg = KernelConfig(b_m=64, b_n=64, b_k=24, w_m=32, w_n=32, w_k=8)
        with pytest.raises(ConfigError, match="even"):
            build_hgemm(cfg, HgemmProblem(64, 64, 24))

    def test_ldg_spread_across_slices(self):
        """Prefetch LDGs must not bunch into slice 0 (MIO oversubscription)."""
        program = build_hgemm(ours(), HgemmProblem(256, 256, 64, 0, 1 << 22, 1 << 23))
        ops = [inst.opcode for inst in program]
        start = program.labels["KLOOP"]
        hmma_seen = 0
        ldg_hmma_index = []
        for op in ops[start:]:
            if op == "HMMA":
                hmma_seen += 1
            elif op == "LDG":
                ldg_hmma_index.append(hmma_seen)
        # 8 LDGs spread over slices 0..2 (HMMA indices 0..192).
        assert len(ldg_hmma_index) == 8
        assert max(ldg_hmma_index) > 64  # beyond slice 0


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("m,n,k", [(64, 64, 32), (128, 64, 48),
                                       (64, 128, 64), (192, 64, 32)])
    def test_tiny_config_bit_exact(self, m, n, k):
        a, b, c = run_functional(TINY, m, n, k)
        np.testing.assert_array_equal(c, chained_reference(a, b))

    def test_ours_bit_exact(self):
        a, b, c = run_functional(ours(), 256, 256, 96)
        np.testing.assert_array_equal(c, chained_reference(a, b))

    def test_cublas_bit_exact(self):
        a, b, c = run_functional(cublas_like(), 128, 256, 128)
        np.testing.assert_array_equal(c, chained_reference(a, b))

    def test_no_prefetch_variant_bit_exact(self):
        a, b, c = run_functional(TINY.with_(prefetch=False), 64, 64, 64)
        np.testing.assert_array_equal(c, chained_reference(a, b))

    def test_naive_layout_bit_exact(self):
        # Fig. 5's slow layout must still be *correct*.
        a, b, c = run_functional(TINY.with_(smem_pad_halves=0), 64, 64, 48)
        np.testing.assert_array_equal(c, chained_reference(a, b))

    def test_sts2_variant_bit_exact(self):
        a, b, c = run_functional(TINY.with_(sts_interleave=2), 64, 64, 32)
        np.testing.assert_array_equal(c, chained_reference(a, b))

    def test_single_iteration(self):
        a, b, c = run_functional(TINY, 64, 64, 16)
        np.testing.assert_array_equal(c, chained_reference(a, b))

    def test_grid_of_ctas(self):
        a, b, c = run_functional(TINY, 192, 128, 32)
        np.testing.assert_array_equal(c, chained_reference(a, b))
