"""Tests for kernel configurations."""

import pytest

from repro.arch import RTX2070
from repro.core import ConfigError, KernelConfig, cublas_like, ours


class TestPresets:
    def test_ours_matches_table7(self):
        cfg = ours()
        assert cfg.cta_tile == (256, 256, 32)
        assert cfg.warp_tile == (128, 64, 8)
        assert cfg.num_warps == 8
        assert cfg.threads_per_cta == 256
        assert cfg.sts_interleave == 5
        assert cfg.smem_pad_halves == 8
        assert cfg.prefetch

    def test_cublas_matches_table7(self):
        cfg = cublas_like()
        assert cfg.cta_tile == (128, 128, 64)
        assert cfg.warp_tile == (64, 64, 8)
        assert cfg.smem_bytes == 32 * 1024  # "cuBLAS only uses 32KB"
        assert cfg.sts_interleave == 2
        assert cfg.smem_swizzle
        assert cfg.smem_pad_halves == 0

    def test_ours_smem_within_sm(self):
        # 40 KB with full-row padding; paper's every-other-row padding gives
        # 36 KB -- the deviation is documented in DESIGN.md.
        assert ours().smem_bytes == 40 * 1024
        assert ours().smem_bytes <= RTX2070.smem_per_sm_bytes

    def test_preset_overrides(self):
        cfg = ours(sts_interleave=2)
        assert cfg.sts_interleave == 2
        assert cfg.cta_tile == (256, 256, 32)


class TestValidation:
    def test_warp_tile_must_divide_cta_tile(self):
        with pytest.raises(ConfigError, match="divide"):
            KernelConfig(b_m=256, b_n=256, b_k=32, w_m=96, w_n=64, w_k=8)

    def test_warp_tile_must_fit_hmma_granularity(self):
        with pytest.raises(ConfigError, match="8x8x8"):
            KernelConfig(b_m=64, b_n=64, b_k=32, w_m=4, w_n=64, w_k=8)

    def test_warp_tile_must_fit_arch_shape(self):
        from repro.arch import RTX2070

        cfg = KernelConfig(b_m=64, b_n=64, b_k=32, w_m=8, w_n=64, w_k=8)
        with pytest.raises(ConfigError, match="16x8x8"):
            cfg.validate_against(RTX2070)

    def test_sts_interleave_positive(self):
        with pytest.raises(ConfigError):
            ours(sts_interleave=0)

    def test_padding_granularity(self):
        with pytest.raises(ConfigError, match="multiple of 8"):
            ours(smem_pad_halves=4)

    def test_swizzle_excludes_padding(self):
        with pytest.raises(ConfigError, match="swizzl"):
            cublas_like(smem_pad_halves=8)

    def test_swizzle_requires_bk64(self):
        with pytest.raises(ConfigError, match="b_k = 64"):
            cublas_like(b_k=32)

    def test_unknown_order(self):
        with pytest.raises(ConfigError):
            ours(cta_order="diagonal")


class TestGeometry:
    def test_grid_dim(self):
        assert ours().grid_dim(512, 768) == (3, 2)
        assert ours().grid_dim(256, 256) == (1, 1)

    def test_grid_dim_rounds_up(self):
        assert ours().grid_dim(257, 256) == (1, 2)

    def test_compute_intensity_paper_values(self):
        # Section VI-A-2: intensity = b_m*b_n/(b_m+b_n).
        assert ours().compute_intensity == 128.0
        assert cublas_like().compute_intensity == 64.0

    def test_smem_row_stride(self):
        assert ours().smem_row_halves == 40
        assert cublas_like().smem_row_halves == 64

    def test_accumulator_registers(self):
        # 128x64 warp tile: 128 registers of C fragments per thread.
        assert ours().accumulator_regs == 128
        assert cublas_like().accumulator_regs == 64


class TestFeasibility:
    def test_presets_fit_rtx2070(self):
        ours().validate_against(RTX2070)
        cublas_like().validate_against(RTX2070)

    def test_512x256_blocking_infeasible(self):
        # Paper Section VI-A: 512x256 occupies the whole register file.
        cfg = KernelConfig(b_m=512, b_n=256, b_k=32, w_m=128, w_n=64, w_k=8)
        with pytest.raises(ConfigError, match="register"):
            cfg.validate_against(RTX2070)

    def test_128x128_warp_tile_infeasible(self):
        # Paper Section VI-A: a 128x128 warp tile needs > 256 regs/thread.
        cfg = KernelConfig(b_m=256, b_n=256, b_k=32, w_m=128, w_n=128, w_k=8)
        with pytest.raises(ConfigError, match="register"):
            cfg.validate_against(RTX2070)

    def test_bk64_unpadded_fills_smem(self):
        # Paper: b_k = 64 at 256x256 occupies all 64 KB, leaving no padding.
        cfg = KernelConfig(b_m=256, b_n=256, b_k=64, w_m=128, w_n=64, w_k=8,
                           smem_pad_halves=0)
        assert cfg.smem_bytes == 64 * 1024
        cfg.validate_against(RTX2070)
        with pytest.raises(ConfigError, match="shared memory"):
            cfg.with_(smem_pad_halves=8).validate_against(RTX2070)

    def test_describe_mentions_key_knobs(self):
        text = ours().describe()
        assert "256x256x32" in text
        assert "STS interleave 5" in text


class TestArchGates:
    """validate_against enforces the generation's MMA contract."""

    def test_f32_accumulate_needs_hardware_support(self):
        from repro.arch.turing import V100

        cfg = ours(accum_f32=True)
        with pytest.raises(ConfigError, match="FP32-accumulate"):
            cfg.validate_against(V100)

    def test_int8_needs_imma(self):
        from repro.arch.turing import V100
        from repro.core.config import ours_int8

        with pytest.raises(ConfigError, match="IMMA"):
            ours_int8().validate_against(V100)

    def test_wk_must_match_generation(self):
        from repro.arch.turing import A100

        with pytest.raises(ConfigError, match="adapt_for_arch"):
            ours().validate_against(A100)  # w_k=8 on a k=16 generation

    def test_swizzle_chunk_invariant(self):
        # The XOR swizzle requires one k-slice == one 16-byte chunk.
        with pytest.raises(ConfigError, match="16-byte"):
            KernelConfig(b_m=128, b_n=128, b_k=64, w_m=64, w_n=64, w_k=16,
                         smem_pad_halves=0, smem_swizzle=True)


class TestAdaptForArch:
    def test_noop_on_native_generation(self):
        from repro.arch.family import SM70, SM75
        from repro.core.config import adapt_for_arch

        cfg = ours()
        assert adapt_for_arch(cfg, SM75) is cfg
        assert adapt_for_arch(cfg, SM70) is cfg

    def test_sm80_raises_wk_and_halves_wm(self):
        from repro.arch.family import SM80
        from repro.core.config import adapt_for_arch

        cfg = adapt_for_arch(ours(), SM80)
        assert cfg.w_k == 16
        assert cfg.w_m == 64  # 4-register A fragments: 128 rows too greedy

    def test_sm80_swizzle_falls_back_to_padding(self):
        from repro.arch.family import SM80
        from repro.arch.turing import A100
        from repro.core.config import adapt_for_arch

        cfg = adapt_for_arch(cublas_like(), SM80)
        assert cfg.w_k == 16
        assert not cfg.smem_swizzle
        assert cfg.smem_pad_halves == 8
        cfg.validate_against(A100)

    def test_int8_configs_untouched(self):
        from repro.arch.family import SM80
        from repro.core.config import adapt_for_arch, ours_int8

        assert adapt_for_arch(ours_int8(), SM80) == ours_int8()
