"""Golden structural tests: the generated kernels' instruction anatomy.

These pin the *shape* of the generated programs (counts per opcode and
per pipeline segment) so schedule regressions show up as structured diffs
rather than only as cycle changes.
"""

from repro.core import KernelConfig, cublas_like, ours, ours_f32, ours_int8
from repro.core.builder import HgemmProblem, build_hgemm


def opcode_histogram(program):
    out = {}
    for inst in program:
        out[inst.opcode] = out.get(inst.opcode, 0) + 1
    return out


def build(config, iters=2):
    return build_hgemm(config, HgemmProblem(
        config.b_m, config.b_n, iters * config.b_k, 0, 1 << 24, 1 << 25))


class TestOursAnatomy:
    def test_histogram(self):
        hist = opcode_histogram(build(ours()))
        # One iteration's worth per opcode (the loop body is emitted once).
        assert hist["HMMA"] == 256       # 64 per slice x 4 slices
        assert hist["LDG"] == 16         # fill batch + loop batch (8 each)
        assert hist["STS"] == 16
        assert hist["STG"] == 128        # 64 acc pairs x 2 halves
        assert hist["BAR"] == 3
        assert hist["EXIT"] == 1
        assert hist["BRA"] == 1

    def test_every_lds_has_write_barrier(self):
        from repro.isa import NO_BARRIER
        for inst in build(ours()):
            if inst.opcode == "LDS":
                assert inst.ctrl.write_bar != NO_BARRIER

    def test_every_ldg_in_loop_is_predicated(self):
        program = build(ours())
        start = program.labels["KLOOP"]
        for inst in list(program)[start:]:
            if inst.opcode == "LDG":
                assert inst.pred is not None

    def test_hmma_waits_exist_per_slice(self):
        program = build(ours())
        waits = [i for i in program
                 if i.opcode == "HMMA" and i.ctrl.wait_mask]
        # 4 slice-entry waits + slice-0 deferred-A wait, for the loop body.
        assert len(waits) >= 5


class TestVariantAnatomy:
    def test_f32_kernel_uses_f32_hmma(self):
        program = build(ours_f32())
        mods = {i.mods for i in program if i.opcode == "HMMA"}
        assert mods == {("1688", "F32")}

    def test_int8_kernel_uses_imma(self):
        program = build(ours_int8())
        hist = opcode_histogram(program)
        assert "IMMA" in hist and "HMMA" not in hist
        # 256x128 / 64x64 warps: 8 warps... per-warp ops: (64/8)x(64/8) = 64
        # per slice x 4 slices.
        assert hist["IMMA"] == 256
        # s32 epilogue: one STG.64 per 8x8 op = 64 stores.
        assert hist["STG"] == 64

    def test_cublas_kernel_has_swizzle_bases(self):
        program = build(cublas_like())
        # Swizzle mode precomputes per-slice bases with LOP3.XOR.
        xors = [i for i in program
                if i.opcode == "LOP3" and "XOR" in i.mods]
        assert len(xors) >= cublas_like().b_k // cublas_like().w_k

    def test_scaled_epilogue_has_hfma2(self):
        cfg = KernelConfig(b_m=64, b_n=64, b_k=16, w_m=32, w_n=32, w_k=8)
        program = build_hgemm(cfg, HgemmProblem(
            64, 64, 32, 0, 1 << 20, 1 << 21, alpha=2.0, beta=1.0))
        hist = opcode_histogram(program)
        # Per acc pair: 2 alpha HFMA2 + 2 beta HFMA2; 8 pairs per warp.
        assert hist["HFMA2"] == 8 * 4
        # Beta reloads C: extra LDGs beyond the tile loads.
        plain = opcode_histogram(build_hgemm(cfg, HgemmProblem(
            64, 64, 32, 0, 1 << 20, 1 << 21)))
        assert hist["LDG"] > plain["LDG"]

    def test_no_prefetch_moves_ldgs_to_last_slice(self):
        cfg = KernelConfig(b_m=64, b_n=64, b_k=16, w_m=32, w_n=32, w_k=8,
                           prefetch=False)
        program = build_hgemm(cfg, HgemmProblem(64, 64, 32, 0, 1 << 20, 1 << 21))
        ops = [i.opcode for i in program]
        start = program.labels["KLOOP"]
        # Per warp program: (w_m/16)(w_n/8) HMMAs x slices.
        total_hmma = (32 // 16) * (32 // 8) * (16 // 8)
        # In-loop LDGs must appear only in the last slice (after at least
        # half the HMMAs).
        hmma_seen = 0
        for op in ops[start:]:
            if op == "HMMA":
                hmma_seen += 1
            elif op == "LDG":
                assert hmma_seen >= total_hmma // 2
