"""Tests for shared-memory tile layouts, including machine-checked
bank-conflict properties of all three layout modes."""

import numpy as np
import pytest

from repro.core import SmemPlan, TileLayout, cublas_like, ours
from repro.sim.shared import conflict_multiplier


class TestTileLayout:
    def test_padded_stride(self):
        t = TileLayout(rows=256, cols=32, pad_halves=8, base_bytes=0)
        assert t.row_stride_halves == 40
        assert t.size_bytes == 256 * 40 * 2

    def test_offsets_never_overlap(self):
        t = TileLayout(rows=64, cols=32, pad_halves=8, base_bytes=0)
        seen = set()
        for r in range(64):
            for c in range(32):
                off = t.offset_halves(r, c)
                assert off not in seen
                seen.add(off)

    def test_address_includes_base(self):
        t = TileLayout(rows=8, cols=32, pad_halves=0, base_bytes=4096)
        assert t.address(0, 0) == 4096
        assert t.address(1, 0) == 4096 + 64

    def test_out_of_range(self):
        t = TileLayout(rows=8, cols=32, pad_halves=0, base_bytes=0)
        with pytest.raises(IndexError):
            t.offset_halves(8, 0)
        with pytest.raises(IndexError):
            t.offset_halves(0, 32)

    def test_swizzle_validation(self):
        with pytest.raises(ValueError):
            TileLayout(rows=8, cols=32, pad_halves=0, base_bytes=0, swizzle=True)
        with pytest.raises(ValueError):
            TileLayout(rows=8, cols=64, pad_halves=8, base_bytes=0, swizzle=True)

    def test_swizzle_is_a_permutation_per_row(self):
        t = TileLayout(rows=16, cols=64, pad_halves=0, base_bytes=0, swizzle=True)
        for r in range(16):
            offsets = {t.offset_halves(r, c) for c in range(64)}
            assert offsets == set(range(r * 64, (r + 1) * 64))

    def test_swizzle_row0_identity(self):
        t = TileLayout(rows=8, cols=64, pad_halves=0, base_bytes=0, swizzle=True)
        assert [t.offset_halves(0, c) for c in range(64)] == list(range(64))


def lds32_fragment_addresses(layout: TileLayout, base_row: int, k_col: int):
    """Per-lane addresses of one LDS.32 fragment gather (the kernel's
    pattern: lane l reads row base_row + l//4, halves k_col + 2*(l%4))."""
    return np.array([
        layout.address(base_row + l // 4, k_col + 2 * (l % 4))
        for l in range(32)
    ])


def sts128_addresses(layout: TileLayout, base_row: int):
    """Per-lane addresses of one STS.128 tile store (4 lanes per row)."""
    cpr = layout.cols // 8
    return np.array([
        layout.address(base_row + l // cpr, (l % cpr) * 8) for l in range(32)
    ])


class TestConflictProperties:
    """The Fig. 5 claims, verified mechanically from addresses."""

    def test_padded_lds_conflict_free_all_rows_and_slices(self):
        t = TileLayout(rows=256, cols=32, pad_halves=8, base_bytes=0)
        for base_row in range(0, 256, 8):
            for k in range(0, 32, 8):
                addrs = lds32_fragment_addresses(t, base_row, k)
                assert conflict_multiplier(addrs, 4) == 1.0

    def test_naive_lds_is_4way_conflicted(self):
        t = TileLayout(rows=256, cols=32, pad_halves=0, base_bytes=0)
        addrs = lds32_fragment_addresses(t, 0, 0)
        assert conflict_multiplier(addrs, 4) == 4.0

    def test_swizzled_lds_conflict_free(self):
        t = TileLayout(rows=128, cols=64, pad_halves=0, base_bytes=0, swizzle=True)
        for base_row in range(0, 128, 8):
            for k in range(0, 64, 8):
                addrs = lds32_fragment_addresses(t, base_row, k)
                assert conflict_multiplier(addrs, 4) == 1.0

    def test_unswizzled_bk64_lds_is_8way(self):
        # This is why cuBLAS *must* swizzle its 32 KB layout.
        t = TileLayout(rows=128, cols=64, pad_halves=0, base_bytes=0)
        addrs = lds32_fragment_addresses(t, 0, 0)
        assert conflict_multiplier(addrs, 4) == 8.0

    @pytest.mark.parametrize("pad,swizzle,cols", [(8, False, 32), (0, False, 32),
                                                  (0, True, 64)])
    def test_sts128_conflict_free_in_all_layouts(self, pad, swizzle, cols):
        t = TileLayout(rows=256, cols=cols, pad_halves=pad, base_bytes=0,
                       swizzle=swizzle)
        rows_per_warp = 32 // (cols // 8)
        for base_row in range(0, 64, rows_per_warp):
            addrs = sts128_addresses(t, base_row)
            assert conflict_multiplier(addrs, 16) == 1.0


class TestSmemPlan:
    def test_ours_plan(self):
        plan = SmemPlan.for_config(ours())
        assert plan.a.rows == 256 and plan.a.cols == 32
        assert plan.b.base_bytes == plan.a.size_bytes
        assert plan.total_bytes == ours().smem_bytes == 40 * 1024

    def test_cublas_plan(self):
        plan = SmemPlan.for_config(cublas_like())
        assert plan.a.swizzle and plan.b.swizzle
        assert plan.total_bytes == 32 * 1024

    def test_tiles_do_not_overlap(self):
        plan = SmemPlan.for_config(ours())
        a_last = plan.a.address(255, 31)
        b_first = plan.b.address(0, 0)
        assert a_last + 2 <= b_first
