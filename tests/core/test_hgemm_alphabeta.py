"""Tests for the standard-form GEMM (alpha/beta) and batched wrappers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ConfigError, hgemm, hgemm_batched, hgemm_reference
from repro.core.builder import HgemmProblem
from repro.core.config import ours_f32


def rand(shape, seed):
    return np.random.default_rng(seed).uniform(-2, 2, shape).astype(np.float16)


class TestAlphaBeta:
    def test_alpha_scales(self):
        a, b = rand((64, 16), 0), rand((16, 64), 1)
        got = hgemm(a, b, alpha=2.0)
        np.testing.assert_array_equal(got, hgemm_reference(a, b, alpha=2.0))

    def test_beta_accumulates(self):
        a, b = rand((64, 16), 2), rand((16, 64), 3)
        c = rand((64, 64), 4)
        got = hgemm(a, b, beta=1.0, c=c)
        np.testing.assert_array_equal(
            got, hgemm_reference(a, b, beta=1.0, c=c))

    def test_both(self):
        a, b = rand((128, 32), 5), rand((32, 128), 6)
        c = rand((128, 128), 7)
        got = hgemm(a, b, alpha=0.5, beta=-1.5, c=c)
        np.testing.assert_array_equal(
            got, hgemm_reference(a, b, alpha=0.5, beta=-1.5, c=c))

    def test_alpha_zero(self):
        # alpha=0, beta=1 copies C through the epilogue scaling.
        a, b = rand((64, 16), 8), rand((16, 64), 9)
        c = rand((64, 64), 10)
        got = hgemm(a, b, alpha=0.0, beta=1.0, c=c)
        np.testing.assert_array_equal(
            got, hgemm_reference(a, b, alpha=0.0, beta=1.0, c=c))

    def test_beta_requires_c(self):
        with pytest.raises(ValueError, match="requires the input C"):
            hgemm(rand((64, 16), 0), rand((16, 64), 1), beta=1.0)

    def test_c_shape_checked(self):
        with pytest.raises(ValueError, match="C must be"):
            hgemm(rand((64, 16), 0), rand((16, 64), 1), beta=1.0,
                  c=np.zeros((8, 8), np.float16))

    def test_f32_path_rejects_scaling(self):
        prob = HgemmProblem(256, 128, 32, alpha=2.0)
        with pytest.raises(ConfigError, match="alpha/beta"):
            prob.validate(ours_f32())

    def test_cublas_kernel_scaling(self):
        a, b = rand((128, 64), 11), rand((64, 128), 12)
        c = rand((128, 128), 13)
        got = hgemm(a, b, kernel="cublas", alpha=2.0, beta=0.5, c=c)
        np.testing.assert_array_equal(
            got, hgemm_reference(a, b, alpha=2.0, beta=0.5, c=c))

    @settings(max_examples=6, deadline=None)
    @given(alpha=st.sampled_from([0.25, 1.0, 3.0]),
           beta=st.sampled_from([0.0, 1.0, -0.5]),
           seed=st.integers(0, 100))
    def test_property(self, alpha, beta, seed):
        a, b = rand((64, 16), seed), rand((16, 64), seed + 1)
        c = rand((64, 64), seed + 2) if beta else None
        got = hgemm(a, b, alpha=alpha, beta=beta, c=c)
        np.testing.assert_array_equal(
            got, hgemm_reference(a, b, alpha=alpha, beta=beta, c=c))


class TestBatched:
    def test_matches_per_matrix(self):
        rng = np.random.default_rng(0)
        a = rng.uniform(-1, 1, (3, 64, 16)).astype(np.float16)
        b = rng.uniform(-1, 1, (3, 16, 64)).astype(np.float16)
        got = hgemm_batched(a, b)
        assert got.shape == (3, 64, 64)
        for i in range(3):
            np.testing.assert_array_equal(got[i], hgemm_reference(a[i], b[i]))

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="batched"):
            hgemm_batched(np.zeros((64, 16), np.float16),
                          np.zeros((16, 64), np.float16))
        with pytest.raises(ValueError, match="batched"):
            hgemm_batched(np.zeros((2, 64, 16), np.float16),
                          np.zeros((3, 16, 64), np.float16))
