"""Tests for the FP32-accumulator HGEMM (paper Section VIII future work)."""

import numpy as np
import pytest

from repro.core import ConfigError, KernelConfig, hgemm, hgemm_reference, ours_f32
from repro.core.builder import RegisterPlan
from repro.arch import RTX2070


def rand(shape, seed):
    return np.random.default_rng(seed).uniform(-2, 2, shape).astype(np.float16)


class TestConfig:
    def test_preset(self):
        cfg = ours_f32()
        assert cfg.accum_f32
        assert cfg.cta_tile == (256, 128, 32)
        assert cfg.warp_tile == (64, 64, 8)
        assert cfg.c_element_bytes == 4

    def test_accumulators_doubled(self):
        assert ours_f32().accumulator_regs == 128  # 64x64/64 * 2

    def test_fits_the_device(self):
        ours_f32().validate_against(RTX2070)
        plan = RegisterPlan.for_config(ours_f32(), 256)
        assert plan.n_acc == 128
        assert plan.top <= 255

    def test_paper_warp_tile_infeasible_with_f32(self):
        # The paper's 128x64 warp tile needs 256 FP32 accumulator registers
        # alone: impossible, which is why .F16 was the paper's focus.
        cfg = KernelConfig(b_m=256, b_n=128, b_k=32, w_m=128, w_n=64, w_k=8,
                           smem_pad_halves=8, accum_f32=True)
        with pytest.raises(ConfigError):
            cfg.validate_against(RTX2070)

    def test_256x256_infeasible_with_f32(self):
        cfg = KernelConfig(b_m=256, b_n=256, b_k=32, w_m=64, w_n=64, w_k=8,
                           smem_pad_halves=8, accum_f32=True)
        with pytest.raises(ConfigError, match="register"):
            cfg.validate_against(RTX2070)


class TestCorrectness:
    @pytest.mark.parametrize("m,n,k", [(64, 64, 32), (128, 128, 64),
                                       (256, 128, 96)])
    def test_bit_exact_vs_reference(self, m, n, k):
        a, b = rand((m, k), m + n), rand((k, n), k)
        c = hgemm(a, b, accumulate="f32")
        assert c.dtype == np.float32
        np.testing.assert_array_equal(
            c, hgemm_reference(a, b, accumulate="f32"))

    def test_explicit_config(self):
        cfg = KernelConfig(b_m=64, b_n=64, b_k=16, w_m=32, w_n=32, w_k=8,
                           accum_f32=True)
        a, b = rand((64, 16), 1), rand((16, 64), 2)
        c = hgemm(a, b, kernel=cfg, accumulate="f32")
        np.testing.assert_array_equal(
            c, hgemm_reference(a, b, accumulate="f32"))

    def test_f32_request_needs_f32_config(self):
        cfg = KernelConfig(b_m=64, b_n=64, b_k=16, w_m=32, w_n=32, w_k=8)
        with pytest.raises(ValueError, match="accum_f32"):
            hgemm(rand((64, 16), 0), rand((16, 64), 1), kernel=cfg,
                  accumulate="f32")

    def test_baseline_has_no_f32_variant(self):
        with pytest.raises(ValueError, match="FP16"):
            hgemm(rand((128, 64), 0), rand((64, 128), 1), kernel="cublas",
                  accumulate="f32")

    def test_bad_accumulate_value(self):
        with pytest.raises(ValueError, match="f16.*f32"):
            hgemm(rand((64, 16), 0), rand((16, 64), 1), accumulate="f64")


class TestAccuracy:
    def test_f32_beats_f16_on_long_k(self):
        # The point of FP32 accumulation: long reductions stop losing bits.
        rng = np.random.default_rng(3)
        a = rng.uniform(0, 1, (64, 1024)).astype(np.float16)
        b = rng.uniform(0, 1, (1024, 64)).astype(np.float16)
        exact = a.astype(np.float64) @ b.astype(np.float64)
        err16 = np.abs(hgemm(a, b).astype(np.float64) - exact).max()
        err32 = np.abs(hgemm(a, b, accumulate="f32").astype(np.float64)
                       - exact).max()
        assert err32 < err16 / 100

    def test_f32_short_k_equals_float32_matmul(self):
        a, b = rand((64, 16), 5), rand((16, 64), 6)
        c = hgemm(a, b, accumulate="f32")
        # Same value up to FP32 association-order rounding.
        f32 = a.astype(np.float32) @ b.astype(np.float32)
        np.testing.assert_allclose(c, f32, rtol=1e-4, atol=1e-5)
