"""Tests for CPI-guided instruction interleaving."""

import pytest

from repro.arch import RTX2070
from repro.core.scheduler import InterleaveScheduler, spacing_for


class TestSpacingFor:
    def test_sts128_is_5(self):
        # Eq. (6): ceil(4 * 10.0 / 8.0) = 5 (the paper's headline value).
        assert spacing_for(RTX2070, "sts", 128) == 5

    def test_lds32_is_2(self):
        assert spacing_for(RTX2070, "lds", 32) == 2

    def test_ldg128_is_8(self):
        assert spacing_for(RTX2070, "ldg", 128) == 8

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            spacing_for(RTX2070, "frob")

    def test_minimum_is_one(self):
        assert spacing_for(RTX2070, "lds", 32) >= 1


def mem_emitters(out, names):
    return [lambda n=n: out.append(n) for n in names]


def run_stream(sched, out, n_hmma):
    """Run the scheduler; HMMAs and queued ops record into *out*."""
    leftover = sched.run([lambda i=i: out.append(f"H{i}")
                          for i in range(n_hmma)])
    return out, leftover


class TestInterleaveScheduler:
    def test_fixed_spacing_positions(self):
        out = []
        sched = InterleaveScheduler()
        sched.add(mem_emitters(out, ["M0", "M1", "M2"]), fixed=True, spacing=5)
        stream, leftover = run_stream(sched, out, 16)
        assert leftover == 0
        # M0 before H0, M1 before H5, M2 before H10.
        assert stream.index("M0") == 0
        assert stream.index("M1") == stream.index("H5") - 1
        assert stream.index("M2") == stream.index("H10") - 1

    def test_flexible_spread_in_window(self):
        out = []
        sched = InterleaveScheduler(window_frac=0.5)
        sched.add(mem_emitters(out, [f"M{k}" for k in range(4)]))
        stream, leftover = run_stream(sched, out, 16)
        assert leftover == 0
        # All memory ops land in the first ~half of the stream.
        last_mem = max(i for i, s in enumerate(stream) if s.startswith("M"))
        assert last_mem < len(stream) * 0.6

    def test_flexible_preserves_relative_order(self):
        out = []
        sched = InterleaveScheduler()
        sched.add(mem_emitters(out, list(range(6))))
        stream, _ = run_stream(sched, out, 32)
        mems = [s for s in stream if isinstance(s, int)]
        assert mems == sorted(mems)

    def test_oversubscription_spills_to_tail(self):
        out = []
        sched = InterleaveScheduler()
        sched.add(mem_emitters(out, [f"M{k}" for k in range(4)]),
                  fixed=True, spacing=10)
        stream, leftover = run_stream(sched, out, 8)
        # M0 due 0; M1 due 10, M2 due 20, M3 due 30 all past the stream end.
        assert leftover == 3
        assert stream[-3:] == ["M1", "M2", "M3"]

    def test_run_clears_state(self):
        out = []
        sched = InterleaveScheduler()
        sched.add(mem_emitters(out, ["A", "B", "C"]))
        run_stream(sched, out, 4)
        assert not sched.flexible and not sched.fixed
        out2, leftover = run_stream(sched, [], 4)
        assert leftover == 0
        assert out2 == [f"H{i}" for i in range(4)]

    def test_empty_queue_passthrough(self):
        stream, leftover = run_stream(InterleaveScheduler(), [], 5)
        assert stream == [f"H{i}" for i in range(5)]
        assert leftover == 0

    def test_mixed_fixed_and_flexible(self):
        out = []
        sched = InterleaveScheduler()
        sched.add(mem_emitters(out, ["F0", "F1"]), fixed=True, spacing=8)
        sched.add(mem_emitters(out, ["X0", "X1"]))
        stream, leftover = run_stream(sched, out, 16)
        assert leftover == 0
        assert set(stream) >= {"F0", "F1", "X0", "X1"}
        assert stream.index("F1") == stream.index("H8") - 1
