"""Tests for the INT8 IGEMM kernel (paper Section VIII future work)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import RTX2070
from repro.core import KernelConfig, igemm, igemm_reference, ours_int8
from repro.core.builder import RegisterPlan
from repro.core.config import ConfigError


def rand8(shape, seed):
    return np.random.default_rng(seed).integers(-128, 128, shape,
                                                dtype=np.int8)


class TestConfig:
    def test_preset(self):
        cfg = ours_int8()
        assert cfg.ab_dtype == "s8"
        assert cfg.cta_tile == (256, 128, 64)
        assert cfg.warp_tile == (64, 64, 16)
        assert cfg.ab_element_bytes == 1
        assert cfg.c_element_bytes == 4

    def test_same_smem_stride_as_fp16(self):
        # 64 int8 + 16 pad = 80-byte rows: the proven conflict-free stride.
        assert ours_int8().smem_row_bytes == 80
        assert ours_int8().smem_bytes == (256 + 128) * 80

    def test_registers_fit(self):
        plan = RegisterPlan.for_config(ours_int8(), 256)
        assert plan.n_acc == 128  # 64 8x8 ops x 2 s32 regs
        assert plan.top <= 255

    def test_validation(self):
        with pytest.raises(ConfigError, match="multiples of 16"):
            KernelConfig(b_m=64, b_n=64, b_k=32, w_m=32, w_n=32, w_k=8,
                         ab_dtype="s8")
        with pytest.raises(ConfigError, match="s32"):
            KernelConfig(b_m=64, b_n=64, b_k=32, w_m=32, w_n=32, w_k=16,
                         ab_dtype="s8", accum_f32=True)

    def test_feasible_on_device(self):
        ours_int8().validate_against(RTX2070)


class TestCorrectness:
    @pytest.mark.parametrize("m,n,k", [(64, 64, 32), (256, 128, 64),
                                       (128, 128, 96), (64, 256, 128)])
    def test_bit_exact(self, m, n, k):
        a, b = rand8((m, k), m + k), rand8((k, n), n)
        c = igemm(a, b)
        assert c.dtype == np.int32
        np.testing.assert_array_equal(c, igemm_reference(a, b))

    def test_extreme_values(self):
        # -128 * -128 summed over long k: large but exact s32 values.
        a = np.full((64, 128), -128, np.int8)
        b = np.full((128, 64), -128, np.int8)
        c = igemm(a, b)
        assert np.all(c == 128 * 128 * 128)

    def test_explicit_config(self):
        cfg = KernelConfig(b_m=64, b_n=64, b_k=32, w_m=32, w_n=32, w_k=16,
                           ab_dtype="s8", name="tiny-int8")
        a, b = rand8((64, 32), 0), rand8((32, 64), 1)
        np.testing.assert_array_equal(igemm(a, b, kernel=cfg),
                                      igemm_reference(a, b))

    def test_non_int8_config_rejected(self):
        from repro.core import ours
        with pytest.raises(ValueError, match="int8"):
            igemm(rand8((64, 32), 0), rand8((32, 64), 1), kernel=ours())

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="incompatible"):
            igemm(rand8((64, 32), 0), rand8((16, 64), 1))

    def test_indivisible_raises(self):
        with pytest.raises(ConfigError, match="multiples"):
            igemm(rand8((100, 32), 0), rand8((32, 64), 1))

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_random_property(self, seed):
        a, b = rand8((64, 64), seed), rand8((64, 64), seed + 1)
        np.testing.assert_array_equal(igemm(a, b), igemm_reference(a, b))


class TestPerformanceCharacter:
    def test_int8_more_throughput_but_dram_bound(self):
        # The whole point of INT8 tensor ops -- and the paper's thesis
        # taken further: at 2x the compute rate, even the RTX 2070's DRAM
        # becomes the binding constraint.
        from repro.analysis import PerformanceModel
        from repro.core import ours

        pm = PerformanceModel(RTX2070)
        f16 = pm.estimate(ours(), 8192, 8192, 8192)
        s8 = pm.estimate(ours_int8(), 8192, 8192, 8192)
        assert s8.tflops > 1.2 * f16.tflops  # TOPS > TFLOPS
        assert s8.bound == "dram"
