"""Tests for the kernel verification harness."""

from repro.core import KernelConfig, verify_kernel
from repro.core.verify import DEFAULT_SHAPES

TINY = KernelConfig(b_m=64, b_n=64, b_k=16, w_m=32, w_n=32, w_k=8,
                    name="tiny")
TINY_INT8 = KernelConfig(b_m=64, b_n=64, b_k=32, w_m=32, w_n=32, w_k=16,
                         ab_dtype="s8", name="tiny-int8")


class TestVerifyKernel:
    def test_tiny_passes_everything(self):
        report = verify_kernel(TINY, seeds=(0,))
        assert report.passed
        assert len(report.cases) == len(DEFAULT_SHAPES)
        assert "PASS" in report.summary()

    def test_skips_untileable_shapes(self):
        big = KernelConfig(b_m=128, b_n=128, b_k=32, w_m=64, w_n=64, w_k=8,
                           name="big")
        report = verify_kernel(big, seeds=(0,))
        assert report.passed
        # Only the 128x128 shapes from the default grid qualify.
        assert all(c.m % 128 == 0 and c.n % 128 == 0 for c in report.cases)
        assert 0 < len(report.cases) < len(DEFAULT_SHAPES)

    def test_int8_kernel_verifies(self):
        report = verify_kernel(TINY_INT8, shapes=((64, 64, 32), (128, 64, 64)),
                               seeds=(0, 1))
        assert report.passed
        assert len(report.cases) == 4

    def test_f32_kernel_verifies(self):
        cfg = KernelConfig(b_m=64, b_n=64, b_k=16, w_m=32, w_n=32, w_k=8,
                           accum_f32=True, name="tiny-f32")
        report = verify_kernel(cfg, shapes=((64, 64, 32),), seeds=(0,))
        assert report.passed

    def test_broken_kernel_reports_failure(self):
        # A kernel that explodes must be caught and reported, not crash
        # the harness.
        cfg = TINY.with_(name="sabotaged")
        # Monkeypatch hgemm to blow up for this config name.
        import repro.core.verify as verify_mod
        original = verify_mod.hgemm

        def exploding(*args, **kwargs):
            raise RuntimeError("injected failure")

        verify_mod.hgemm = exploding
        try:
            report = verify_kernel(cfg, shapes=((64, 64, 16),), seeds=(0,))
        finally:
            verify_mod.hgemm = original
        assert not report.passed
        assert "injected failure" in report.failures[0].message
        assert "FAIL" in report.summary()

    def test_multiple_seeds(self):
        report = verify_kernel(TINY, shapes=((64, 64, 16),), seeds=(0, 1, 2))
        assert len(report.cases) == 3
        assert {c.seed for c in report.cases} == {0, 1, 2}
