"""Tests for device specs: structure-derived peaks must match the paper."""

import pytest

from repro.arch import DEVICES, GpuSpec, MemoryCpiTable, RTX2070, T4, get_device


class TestMemoryCpiTable:
    def test_lookup(self):
        table = MemoryCpiTable(2.11, 4.0, 8.0)
        assert table.cpi(32) == 2.11
        assert table.cpi(64) == 4.0
        assert table.cpi(128) == 8.0

    def test_bad_width(self):
        with pytest.raises(ValueError, match=r"supported widths: \[32, 64, 128\]"):
            MemoryCpiTable(1, 2, 4).cpi(256)

    def test_bytes_per_cycle_matches_table5(self):
        # Paper Table V: LDS 60.66 / 64.00 / 64.00 bytes/cycle.
        lds = RTX2070.lds_cpi
        assert lds.bytes_per_cycle(32) == pytest.approx(60.66, abs=0.01)
        assert lds.bytes_per_cycle(64) == pytest.approx(64.0)
        assert lds.bytes_per_cycle(128) == pytest.approx(64.0)
        # STS 31.53 / 42.67 / 51.20 bytes/cycle.
        sts = RTX2070.sts_cpi
        assert sts.bytes_per_cycle(32) == pytest.approx(31.53, abs=0.01)
        assert sts.bytes_per_cycle(64) == pytest.approx(42.67, abs=0.01)
        assert sts.bytes_per_cycle(128) == pytest.approx(51.20, abs=0.01)


class TestDeviceStructure:
    @pytest.mark.parametrize("spec", [RTX2070, T4])
    def test_turing_sm_structure(self, spec):
        assert spec.processing_blocks_per_sm == 4
        assert spec.tensor_cores_per_sm == 8
        assert spec.warp_schedulers_per_sm == 4
        assert spec.registers_per_sm == 65536
        assert spec.smem_per_sm_bytes == 65536
        assert spec.smem_banks == 32

    def test_rtx2070_tensor_peak_from_structure(self):
        # 36 SMs x 8 TC x 64 FMA x 2 flop x 1.62 GHz = 59.7 TFLOPS (Table II).
        assert RTX2070.tensor_peak_tflops == pytest.approx(59.7, rel=0.01)
        assert RTX2070.tensor_tflops == pytest.approx(RTX2070.tensor_peak_tflops, rel=0.01)

    def test_t4_tensor_peak_from_structure(self):
        assert T4.tensor_peak_tflops == pytest.approx(65.0, rel=0.01)

    @pytest.mark.parametrize("spec", [RTX2070, T4])
    def test_fp16_units_are_quarter_of_tensor(self, spec):
        # Paper Section I: "Tensor Cores offer 4x higher FLOPS than FP16 units".
        assert spec.fp16_peak_tflops == pytest.approx(spec.tensor_peak_tflops / 4)

    def test_table2_bandwidths(self):
        assert RTX2070.dram_peak_gbps == 448.0
        assert RTX2070.dram_measured_gbps == 380.0
        assert RTX2070.l2_measured_gbps == 750.0
        assert T4.dram_peak_gbps == 320.0
        assert T4.dram_measured_gbps == 238.0
        assert T4.l2_measured_gbps == 910.0

    def test_measured_dram_fraction_of_peak(self):
        # Paper Section V-A: 85% of peak on RTX2070, 75% on T4.
        assert RTX2070.dram_measured_gbps / RTX2070.dram_peak_gbps == pytest.approx(0.85, abs=0.01)
        assert T4.dram_measured_gbps / T4.dram_peak_gbps == pytest.approx(0.75, abs=0.01)

    @pytest.mark.parametrize("spec", [RTX2070, T4])
    def test_hmma_timing_constants(self, spec):
        # Paper Table I / Section IV-C (same on both devices).
        assert spec.hmma_cpi == 8.0
        assert spec.hmma_latency_first_half == 10
        assert spec.hmma_latency_second_half == 14

    @pytest.mark.parametrize("spec", [RTX2070, T4])
    def test_imma_runs_at_double_rate(self, spec):
        # Turing whitepaper: INT8 tensor path is 2x the FP16 rate.
        assert spec.imma_cpi == spec.hmma_cpi / 2

    @pytest.mark.parametrize("spec", [RTX2070, T4])
    def test_mio_queue_depth(self, spec):
        assert spec.mio_queue_depth == 16

    def test_cycle_time_conversion_roundtrip(self):
        cycles = 12345.0
        assert RTX2070.seconds_to_cycles(RTX2070.cycles_to_seconds(cycles)) == pytest.approx(cycles)

    def test_validation(self):
        with pytest.raises(ValueError):
            GpuSpec(name="bad", num_sms=0, clock_ghz=1.0)
        with pytest.raises(ValueError):
            GpuSpec(name="bad", num_sms=1, clock_ghz=-1.0)


class TestLdgCpi:
    def test_l1_table3(self):
        assert RTX2070.ldg_cpi(32, hit_l1=True) == 4.04
        assert RTX2070.ldg_cpi(64, hit_l1=True) == 4.04
        assert RTX2070.ldg_cpi(128, hit_l1=True) == 8.00

    def test_l2_table3(self):
        assert RTX2070.ldg_cpi(32) == 4.19
        assert RTX2070.ldg_cpi(64) == 8.38
        assert RTX2070.ldg_cpi(128) == 15.95

    def test_ldg128_l2_throughput_edge(self):
        # Paper: "LDG.128 has 5.1% higher throughput than the other two".
        t128 = RTX2070.ldg_l2_cpi.bytes_per_cycle(128)
        t64 = RTX2070.ldg_l2_cpi.bytes_per_cycle(64)
        assert t128 / t64 == pytest.approx(1.051, abs=0.002)


class TestOccupancy:
    def test_our_kernel_one_cta(self):
        # Ours (Table VII): 256 threads, 36 KB smem, ~224 regs/thread -> 1 CTA/SM.
        assert RTX2070.ctas_per_sm(regs_per_thread=224, smem_per_cta=36 * 1024,
                                   threads_per_cta=256) == 1

    def test_cublas_kernel_two_ctas(self):
        # cuBLAS (Table VII): 32 KB smem, 128 regs -> 2 CTAs/SM.
        assert RTX2070.ctas_per_sm(regs_per_thread=128, smem_per_cta=32 * 1024,
                                   threads_per_cta=256) == 2

    def test_register_limit_binds(self):
        # 255 regs x 1024 threads would exceed 64K registers: 0 CTAs fit.
        assert RTX2070.ctas_per_sm(255, 0, 1024) == 0

    def test_too_many_regs_raises(self):
        with pytest.raises(ValueError, match="hardware limit"):
            RTX2070.ctas_per_sm(257, 0, 32)

    def test_warp_limit(self):
        # 32-thread CTAs with tiny footprints are capped by the HW CTA limit.
        assert RTX2070.ctas_per_sm(16, 0, 32) == 16


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert get_device("rtx2070") is RTX2070
        assert get_device("T4") is T4

    def test_unknown_device(self):
        with pytest.raises(KeyError, match="unknown device"):
            get_device("H100")

    def test_registry_contents(self):
        assert set(DEVICES) == {"RTX2070", "T4", "V100", "A100"}
