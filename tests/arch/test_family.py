"""Tests for the Tensor Core architecture-family registry."""

import dataclasses

import pytest

from repro.arch.family import (
    GENERATIONS,
    SM70,
    SM75,
    SM80,
    ArchSpec,
    get_generation,
)
from repro.arch.turing import A100, RTX2070, T4, V100


class TestRegistry:
    def test_contents(self):
        assert set(GENERATIONS) == {"volta", "turing", "ampere"}
        assert GENERATIONS["volta"] is SM70
        assert GENERATIONS["turing"] is SM75
        assert GENERATIONS["ampere"] is SM80

    @pytest.mark.parametrize("token,expected", [
        ("volta", SM70), ("sm70", SM70), ("70", SM70), (70, SM70),
        ("Turing", SM75), ("SM75", SM75), (75, SM75),
        ("ampere", SM80), ("sm80", SM80), ("80", SM80),
    ])
    def test_lookup_aliases(self, token, expected):
        assert get_generation(token) is expected

    def test_unknown_generation(self):
        with pytest.raises(KeyError, match="unknown architecture"):
            get_generation("hopper")

    def test_specs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SM75.hmma_k = 16


class TestFragmentTiling:
    """A warp's 64 fp16 slots per register must exactly cover each tile."""

    @pytest.mark.parametrize("arch", [SM70, SM75, SM80],
                             ids=lambda a: a.name)
    def test_fragments_tile(self, arch):
        assert arch.a_regs * 64 == arch.hmma_m * arch.hmma_k
        assert arch.b_regs * 64 == arch.hmma_k * arch.hmma_n
        assert arch.c_regs_f16 * 64 == arch.hmma_m * arch.hmma_n
        if arch.supports_f32_accum:
            assert arch.c_regs_f32 * 32 == arch.hmma_m * arch.hmma_n

    def test_bad_tiling_rejected(self):
        with pytest.raises(ValueError, match="A fragment does not tile"):
            dataclasses.replace(SM75, a_regs=3)

    @pytest.mark.parametrize("arch,shape,mods", [
        (SM70, (8, 8, 8), "884"),
        (SM75, (16, 8, 8), "1688"),
        (SM80, (16, 8, 16), "16816"),
    ], ids=lambda v: v if isinstance(v, str) else getattr(v, "name", None))
    def test_shapes(self, arch, shape, mods):
        assert arch.hmma_shape == shape
        assert arch.hmma_mods == mods
        m, n, k = shape
        assert arch.flops_per_hmma == 2 * m * n * k


class TestStructuralPeaks:
    """Device tensor peaks must emerge from registry structure, not be
    restated: SMs x TCs/SM x FMA/TC/cycle x 2 x clock."""

    @pytest.mark.parametrize("spec", [RTX2070, T4, V100, A100],
                             ids=lambda s: s.name)
    def test_peak_matches_datasheet(self, spec):
        assert spec.tensor_peak_tflops == pytest.approx(
            spec.tensor_tflops, rel=0.01)

    def test_volta_and_ampere_values(self):
        # 80 SMs x 8 TC x 64 FMA x 2 x 1.53 GHz
        assert V100.tensor_peak_tflops == pytest.approx(125.3, abs=0.1)
        # 108 SMs x 4 TC x 256 FMA x 2 x 1.41 GHz
        assert A100.tensor_peak_tflops == pytest.approx(311.9, abs=0.2)

    def test_feature_flags(self):
        assert not SM70.supports_f32_accum and not SM70.supports_imma
        assert SM75.supports_f32_accum and SM75.supports_imma
        assert SM80.supports_f32_accum and SM80.supports_imma


class TestDeviceArchWiring:
    def test_devices_carry_their_generation(self):
        assert RTX2070.arch is SM75
        assert T4.arch is SM75
        assert V100.arch is SM70
        assert A100.arch is SM80

    def test_arch_spec_is_plain_data(self):
        # serve round-trips rebuild ArchSpec from asdict(); every field
        # must survive the dict trip.
        rebuilt = ArchSpec(**dataclasses.asdict(SM80))
        assert rebuilt == SM80
