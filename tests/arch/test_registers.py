"""Tests for the warp register/predicate files."""

import numpy as np
import pytest

from repro.arch import PredicateFile, RegisterFile, WARP_LANES
from repro.isa.operands import PT_INDEX, RZ_INDEX


class TestRegisterFile:
    def test_initial_zero(self):
        rf = RegisterFile()
        assert np.all(rf.read(0) == 0)
        assert np.all(rf.read(254) == 0)

    def test_write_read(self):
        rf = RegisterFile()
        rf.write(5, np.arange(WARP_LANES, dtype=np.uint32))
        np.testing.assert_array_equal(rf.read(5), np.arange(32))

    def test_broadcast_scalar(self):
        rf = RegisterFile()
        rf.write(3, np.uint32(7))
        assert np.all(rf.read(3) == 7)

    def test_rz_reads_zero_and_ignores_writes(self):
        rf = RegisterFile()
        rf.write(RZ_INDEX, np.full(WARP_LANES, 99, np.uint32))
        assert np.all(rf.read(RZ_INDEX) == 0)

    def test_masked_write(self):
        rf = RegisterFile()
        mask = np.zeros(WARP_LANES, bool)
        mask[::2] = True
        rf.write(1, np.full(WARP_LANES, 5, np.uint32), mask=mask)
        vals = rf.read(1)
        assert np.all(vals[::2] == 5)
        assert np.all(vals[1::2] == 0)

    def test_masked_scalar_write(self):
        rf = RegisterFile()
        mask = np.zeros(WARP_LANES, bool)
        mask[3] = True
        rf.write(1, np.uint32(9), mask=mask)
        assert rf.read(1)[3] == 9
        assert rf.read(1)[4] == 0

    def test_group_roundtrip(self):
        rf = RegisterFile()
        block = np.arange(4 * WARP_LANES, dtype=np.uint32).reshape(4, WARP_LANES)
        rf.write_group(8, block)
        np.testing.assert_array_equal(rf.read_group(8, 4), block)

    def test_group_overrun_raises(self):
        rf = RegisterFile()
        with pytest.raises(ValueError, match="overruns"):
            rf.write_group(253, np.zeros((4, WARP_LANES), np.uint32))

    def test_group_at_rz_raises(self):
        rf = RegisterFile()
        with pytest.raises(ValueError):
            rf.read_group(RZ_INDEX, 1)

    def test_masked_group_write(self):
        rf = RegisterFile()
        block = np.ones((2, WARP_LANES), np.uint32)
        mask = np.zeros(WARP_LANES, bool)
        mask[:16] = True
        rf.write_group(10, block, mask=mask)
        assert np.all(rf.read(10)[:16] == 1)
        assert np.all(rf.read(10)[16:] == 0)

    def test_signed_view(self):
        rf = RegisterFile()
        rf.write(2, np.full(WARP_LANES, 0xFFFFFFFF, np.uint32))
        assert np.all(rf.signed(2) == -1)
        rf.write(2, np.full(WARP_LANES, 0x7FFFFFFF, np.uint32))
        assert np.all(rf.signed(2) == 2**31 - 1)


class TestPredicateFile:
    def test_pt_is_true(self):
        pf = PredicateFile()
        assert np.all(pf.read(PT_INDEX))
        assert not np.any(pf.read(PT_INDEX, negated=True))

    def test_pt_write_ignored(self):
        pf = PredicateFile()
        pf.write(PT_INDEX, np.zeros(WARP_LANES, bool))
        assert np.all(pf.read(PT_INDEX))

    def test_write_read_negated(self):
        pf = PredicateFile()
        vals = np.zeros(WARP_LANES, bool)
        vals[:4] = True
        pf.write(0, vals)
        np.testing.assert_array_equal(pf.read(0), vals)
        np.testing.assert_array_equal(pf.read(0, negated=True), ~vals)

    def test_initial_false(self):
        pf = PredicateFile()
        for i in range(7):
            assert not np.any(pf.read(i))

    def test_masked_write(self):
        pf = PredicateFile()
        mask = np.zeros(WARP_LANES, bool)
        mask[5] = True
        pf.write(1, np.ones(WARP_LANES, bool), mask=mask)
        assert pf.read(1)[5]
        assert not pf.read(1)[6]
