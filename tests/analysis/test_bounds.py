"""Tests for bottleneck attribution."""

import pytest

from repro.analysis import PerformanceModel, explain, sweep_transitions
from repro.arch import RTX2070, T4
from repro.core import cublas_like, ours


@pytest.fixture(scope="module")
def pm2070():
    return PerformanceModel(RTX2070)


@pytest.fixture(scope="module")
def pm_t4():
    return PerformanceModel(T4)


class TestExplain:
    def test_breakdown_consistent_with_estimate(self, pm2070):
        est = pm2070.estimate(ours(), 8192, 8192, 8192)
        bd = explain(est)
        assert bd.bound == est.bound
        times = {"compute": bd.compute_us, "dram": bd.dram_us, "l2": bd.l2_us}
        assert max(times, key=times.get) == bd.bound

    def test_headroom_in_unit_interval(self, pm2070):
        for w in (2048, 8192, 16384):
            bd = explain(pm2070.estimate(ours(), w, w, w))
            assert 0.0 <= bd.headroom <= 1.0

    def test_verdict_text(self, pm_t4):
        bd = explain(pm_t4.estimate(ours(), 13312, 13312, 13312))
        text = bd.verdict()
        assert "dram-bound" in text
        assert "headroom" in text

    def test_cliff_widens_dram_gap(self, pm2070):
        before = explain(pm2070.estimate(cublas_like(), 11776, 11776, 11776,
                                         baseline_quirks=True))
        after = explain(pm2070.estimate(cublas_like(), 12032, 12032, 12032,
                                        baseline_quirks=True))
        assert after.dram_us > 1.4 * before.dram_us


class TestSweepTransitions:
    def test_t4_transitions_compute_then_dram(self, pm_t4):
        sizes = [2048, 4096, 8192, 12288, 16384]
        segments = sweep_transitions(pm_t4, ours(), sizes)
        assert segments[0][2] == "compute"
        assert segments[-1][2] == "dram"

    def test_segments_cover_sweep(self, pm2070):
        sizes = [2048, 8192, 16384]
        segments = sweep_transitions(pm2070, ours(), sizes)
        assert segments[0][0] == 2048
        assert segments[-1][1] == 16384

    def test_single_bound_collapses_to_one_segment(self, pm2070):
        sizes = [8192, 12288, 16384]
        segments = sweep_transitions(pm2070, ours(), sizes)
        assert len(segments) == 1
