"""Tests for the occupancy model (paper Table VII)."""

from repro.analysis import occupancy, table7
from repro.arch import RTX2070, T4
from repro.core import cublas_like, ours


class TestTable7:
    def test_ours_one_cta_per_sm(self):
        report = occupancy(ours(), RTX2070)
        assert report.ctas_per_sm == 1
        assert report.warps_per_sm == 8

    def test_cublas_two_ctas_per_sm(self):
        report = occupancy(cublas_like(), RTX2070)
        assert report.ctas_per_sm == 2
        assert report.warps_per_sm == 8

    def test_both_reach_8_warps(self):
        # Table VII's punchline: both kernels run 8 active warps/SM; ours
        # spends the budget on blocking size instead of CTA count.
        assert occupancy(ours(), RTX2070).warps_per_sm == \
            occupancy(cublas_like(), RTX2070).warps_per_sm == 8

    def test_same_on_t4(self):
        assert occupancy(ours(), T4).ctas_per_sm == 1
        assert occupancy(cublas_like(), T4).ctas_per_sm == 2

    def test_limiting_resources_reported(self):
        report = occupancy(ours(), RTX2070)
        assert report.limiting_resource in report.limits
        assert report.limits[report.limiting_resource] == report.ctas_per_sm

    def test_register_override(self):
        # Forcing a tiny register count moves the limit to shared memory.
        report = occupancy(ours(), RTX2070, regs_per_thread=32)
        assert report.limiting_resource == "smem"

    def test_table7_rows(self):
        rows = table7(ours(), cublas_like(), RTX2070)
        assert len(rows) == 2
        by_name = {r["kernel"]: r for r in rows}
        assert by_name["ours"]["cta_tile"] == (256, 256, 32)
        assert by_name["ours"]["ctas_per_sm"] == 1
        assert by_name["cublas-like"]["smem_per_cta_kb"] == 32.0
        assert by_name["cublas-like"]["ctas_per_sm"] == 2
