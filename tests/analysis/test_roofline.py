"""Tests for the roofline model (paper Fig. 3)."""

import pytest

from repro.analysis import Roofline
from repro.arch import RTX2070, T4
from repro.core import cublas_like, ours


class TestRoofline:
    def test_memory_roof_linear(self):
        r = Roofline(RTX2070)
        assert r.memory_roof_tflops(10) == pytest.approx(3.8)
        assert r.memory_roof_tflops(20) == pytest.approx(7.6)

    def test_attainable_caps_at_peak(self):
        r = Roofline(RTX2070)
        assert r.attainable(10_000) == pytest.approx(RTX2070.tensor_peak_tflops)
        assert r.attainable(10_000, use_tensor_cores=False) == pytest.approx(
            RTX2070.fp16_peak_tflops)

    def test_negative_intensity(self):
        with pytest.raises(ValueError):
            Roofline(RTX2070).memory_roof_tflops(-1)

    def test_ridge_points(self):
        # RTX2070 tensor ridge: 59.7e3 / 380 = ~157 FLOP/B.
        r = Roofline(RTX2070)
        assert r.ridge_intensity() == pytest.approx(157, rel=0.02)
        # FP16 units need only a quarter of the intensity.
        assert r.ridge_intensity(use_tensor_cores=False) == pytest.approx(
            r.ridge_intensity() / 4)


class TestPaperReadings:
    """The qualitative claims the paper draws from Fig. 3."""

    def test_128_tile_suffices_for_fp16_units(self):
        # "When using FP16 units, (128x128) is good enough."
        point = Roofline(RTX2070).evaluate_blocking(cublas_like())
        assert not point.memory_bound_fp16

    def test_128_tile_starves_tensor_cores(self):
        # "But for Tensor Cores, (128x128) makes DRAM a new bottleneck."
        point = Roofline(RTX2070).evaluate_blocking(cublas_like())
        assert point.memory_bound_tensor

    def test_256_tile_still_dram_bound_on_t4(self):
        # Even 256x256 (intensity 128) is below T4's ridge: "the
        # performance can still be bound by DRAM bandwidth".
        point = Roofline(T4).evaluate_blocking(ours())
        assert point.memory_bound_tensor

    def test_256_tile_close_to_roof_on_rtx2070(self):
        point = Roofline(RTX2070).evaluate_blocking(ours())
        # Intensity 128 vs ridge 157: attainable = 48.6 of 59.7 peak.
        assert point.tensor_tflops == pytest.approx(48.6, rel=0.02)

    def test_series_shape(self):
        pts = Roofline(RTX2070).series([1, 10, 100, 1000])
        assert [p.intensity for p in pts] == [1, 10, 100, 1000]
        assert pts[0].tensor_tflops < pts[-1].tensor_tflops
