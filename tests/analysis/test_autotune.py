"""Tests for the autotuner (paper Section VIII future work)."""

import pytest

from repro.analysis import PerformanceModel, autotune, candidate_space
from repro.arch import RTX2070


@pytest.fixture(scope="module")
def pm2070():
    return PerformanceModel(RTX2070)


class TestCandidateSpace:
    def test_nonempty_and_valid(self):
        space = candidate_space(RTX2070)
        assert len(space) >= 12
        names = [c.name for c in space]
        assert len(set(names)) == len(names)

    def test_contains_the_papers_kernel(self):
        space = candidate_space(RTX2070)
        assert any(c.cta_tile == (256, 256, 32) and c.warp_tile == (128, 64, 8)
                   for c in space)

    def test_contains_the_baselines_layout(self):
        space = candidate_space(RTX2070)
        assert any(c.smem_swizzle and c.b_k == 64 for c in space)

    def test_f32_space(self):
        space = candidate_space(RTX2070, accum_f32=True)
        assert space
        assert all(c.accum_f32 for c in space)


class TestAutotune:
    def test_picks_a_big_tile_kernel_on_rtx2070(self, pm2070):
        # The winner is a large-tile 128x64-warp kernel in the paper's
        # family; our model rates 256x128 (2 CTAs/SM) a whisker above the
        # paper's 256x256 on the compute-bound RTX 2070 -- both are within
        # a few percent (see EXPERIMENTS.md).
        result = autotune(RTX2070, 8192, 8192, 8192, model=pm2070)
        assert result.best.warp_tile == (128, 64, 8)
        assert result.best.b_m == 256
        assert result.best_tflops > 50
        # The paper's exact kernel is a simulated finalist within 5%.
        paper = next(c for c in result.candidates
                     if c.config.cta_tile == (256, 256, 32)
                     and c.config.warp_tile == (128, 64, 8))
        assert paper.simulated_tflops is not None
        assert paper.simulated_tflops > 0.95 * result.best_tflops

    def test_ranking_recorded(self, pm2070):
        result = autotune(RTX2070, 8192, 8192, 8192, model=pm2070)
        simulated = [c for c in result.candidates
                     if c.simulated_tflops is not None]
        rejected = [c for c in result.candidates if c.rejected]
        assert len(simulated) >= 3
        assert rejected, "register-infeasible configs must be recorded"
        assert "register" in rejected[0].rejected

    def test_summary_text(self, pm2070):
        result = autotune(RTX2070, 8192, 8192, 8192, model=pm2070)
        text = result.summary()
        assert "best:" in text
        assert "simulated" in text

    def test_indivisible_problem_filters_tiles(self, pm2070):
        # 192 is divisible by 64 but not by 256: big-tile configs drop out.
        result = autotune(RTX2070, 192, 192, 64, model=pm2070)
        assert result.best.b_m <= 192
        assert 192 % result.best.b_m == 0

    def test_impossible_problem_raises(self, pm2070):
        with pytest.raises(ValueError, match="no feasible"):
            autotune(RTX2070, 100, 100, 100, model=pm2070)

    def test_shared_model_reuses_profiles(self, pm2070):
        before = len(pm2070._profiles)
        autotune(RTX2070, 4096, 4096, 4096, model=pm2070)
        after = len(pm2070._profiles)
        autotune(RTX2070, 12288, 12288, 12288, model=pm2070)
        assert len(pm2070._profiles) == after  # nothing new simulated
        assert after >= before
