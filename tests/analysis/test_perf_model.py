"""Tests for the device-level performance model (drives Figs. 4-9).

The model's SM profiles come from real timing-simulator runs, so this
module is the slowest test file; profiles are cached per model instance
and the module shares models through fixtures.
"""

import pytest

from repro.analysis import PerfOptions, PerformanceModel
from repro.arch import RTX2070, T4
from repro.core import cublas_like, ours


@pytest.fixture(scope="module")
def pm2070():
    return PerformanceModel(RTX2070)


@pytest.fixture(scope="module")
def pm_t4():
    return PerformanceModel(T4)


class TestSmProfile:
    def test_ours_profile_near_table6(self, pm2070):
        profile = pm2070.sm_profile(ours())
        # Table VI: 4126 HMMA-bound cycles/iteration; the generated
        # schedule lands within ~10% of that analytic floor.
        assert profile.marginal_cycles == pytest.approx(4126, rel=0.10)
        assert profile.fixed_cycles > 0
        assert profile.ctas_per_sm == 1

    def test_cublas_profile_near_memory_floor(self, pm2070):
        profile = pm2070.sm_profile(cublas_like())
        # Memory-IO bound: 2741 cycles per CTA-iteration (Eq. 4+5 with
        # b_k = 64), two CTAs resident.
        assert profile.ctas_per_sm == 2
        per_cta = profile.marginal_cycles / 2
        assert per_cta == pytest.approx(2741, rel=0.10)

    def test_profiles_cached(self, pm2070):
        p1 = pm2070.sm_profile(ours())
        p2 = pm2070.sm_profile(ours())
        assert p1 is p2


class TestWaveWindow:
    def test_row_order_fills_columns_first(self):
        rows, cols = PerformanceModel.wave_window(ours(), 64, 64, 36)
        assert (rows, cols) == (1, 36)

    def test_row_order_wraps(self):
        rows, cols = PerformanceModel.wave_window(ours(), 8, 64, 36)
        assert cols == 8
        assert rows == 5  # ceil(36/8)

    def test_supertile_window_square_ish(self):
        cfg = ours(cta_order="supertile", supertile_width=8)
        rows, cols = PerformanceModel.wave_window(cfg, 64, 64, 36)
        assert cols == 8
        assert rows == 5
        # Much better reuse shape than (1, 36).

    def test_window_capped_by_grid(self):
        rows, cols = PerformanceModel.wave_window(ours(), 2, 2, 36)
        assert rows <= 2 and cols <= 2

    def test_empty(self):
        assert PerformanceModel.wave_window(ours(), 4, 4, 0) == (0, 0)


class TestEstimates:
    def test_ours_plateau_near_paper_rtx2070(self, pm2070):
        est = pm2070.estimate(ours(), 8192, 8192, 8192)
        # Paper Fig. 6: ours sustains ~55-60 TFLOPS at large sizes.
        assert 48 <= est.tflops <= 60
        assert est.bound == "compute"

    def test_ours_dram_bound_on_t4(self, pm_t4):
        est = pm_t4.estimate(ours(), 13312, 13312, 13312)
        # Paper Fig. 7 / Section VII-C: T4 is DRAM-bound around 50 TFLOPS.
        assert est.bound == "dram"
        assert 42 <= est.tflops <= 52

    def test_cublas_cliff_at_12032(self, pm2070):
        before = pm2070.estimate(cublas_like(), 11776, 11776, 11776,
                                 baseline_quirks=True)
        after = pm2070.estimate(cublas_like(), 12032, 12032, 12032,
                                baseline_quirks=True)
        assert not before.cliff_active
        assert after.cliff_active
        assert after.tflops < 0.75 * before.tflops  # the sharp drop

    def test_no_cliff_without_quirks(self, pm2070):
        est = pm2070.estimate(cublas_like(), 12032, 12032, 12032)
        assert not est.cliff_active

    def test_no_cliff_on_t4(self, pm_t4):
        # Paper Fig. 7 shows no sharp drop on T4.
        est = pm_t4.estimate(cublas_like(), 12032, 12032, 12032,
                             baseline_quirks=True)
        assert not est.cliff_active

    def test_small_matrices_underutilize(self, pm2070):
        small = pm2070.estimate(ours(), 1024, 1024, 1024)
        large = pm2070.estimate(ours(), 8192, 8192, 8192)
        assert small.tflops < 0.6 * large.tflops

    def test_ours_beats_cublas_at_large_sizes(self, pm2070):
        o = pm2070.estimate(ours(), 16128, 16128, 16128)
        c = pm2070.estimate(cublas_like(), 16128, 16128, 16128,
                            baseline_quirks=True)
        assert o.tflops / c.tflops > 1.8  # paper: up to 2.7x

    def test_seconds_positive_and_consistent(self, pm2070):
        est = pm2070.estimate(ours(), 4096, 4096, 4096)
        flops = 2 * 4096 ** 3
        assert est.seconds > 0
        assert est.tflops == pytest.approx(flops / est.seconds / 1e12)

    def test_sweep_shapes(self, pm2070):
        ests = pm2070.sweep(ours(), [1024, 2048], shape=(2, 1, 1))
        assert [(e.m, e.n, e.k) for e in ests] == [(2048, 1024, 1024),
                                                   (4096, 2048, 2048)]


class TestOptions:
    def test_zero_reuse_hurts(self, pm2070):
        no_reuse = PerformanceModel(RTX2070, PerfOptions(l2_reuse_eta=0.0))
        no_reuse._profiles = pm2070._profiles  # reuse cached sim runs
        base = pm2070.estimate(ours(), 8192, 8192, 8192)
        worse = no_reuse.estimate(ours(), 8192, 8192, 8192)
        assert worse.tflops < base.tflops

    def test_drift_reduces_reuse(self, pm2070):
        eta_short = pm2070._reuse_efficiency(iters=64)
        eta_long = pm2070._reuse_efficiency(iters=4096)
        assert eta_long < eta_short

    def test_infeasible_config_raises(self, pm2070):
        cfg = ours(smem_pad_halves=64)  # 64 KB + padding won't fit
        with pytest.raises(Exception):
            pm2070.estimate(cfg, 4096, 4096, 4096)
