"""Cross-module integration tests: the full stack end to end."""

import numpy as np
import pytest

from repro.arch import RTX2070, T4
from repro.core import KernelConfig, hgemm, hgemm_reference, ours
from repro.core.blocking import pipe_cycles
from repro.core.builder import HgemmProblem, build_hgemm
from repro.isa import assemble, disassemble, encode_program
from repro.sim import FunctionalSimulator, GlobalMemory, TimingSimulator

TINY = KernelConfig(b_m=64, b_n=64, b_k=16, w_m=32, w_n=32, w_k=8)


class TestToolchainLoop:
    """build -> encode -> disassemble -> reassemble -> execute."""

    def test_hgemm_through_binary(self):
        m, n, k = 64, 128, 48
        prob = HgemmProblem(m, n, k, 0, 1 << 20, 1 << 21)
        original = build_hgemm(TINY, prob)
        recovered = assemble(disassemble(encode_program(original),
                                         original.meta))

        rng = np.random.default_rng(0)
        a = rng.uniform(-1, 1, (m, k)).astype(np.float16)
        b = rng.uniform(-1, 1, (k, n)).astype(np.float16)

        results = []
        for program in (original, recovered):
            gm = GlobalMemory(4 << 20)
            gm.write_array(0, a)
            gm.write_array(1 << 20, np.ascontiguousarray(b.T))
            FunctionalSimulator().run(program, gm,
                                      grid_dim=TINY.grid_dim(m, n))
            results.append(gm.read_array(1 << 21, np.float16, m * n))
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(
            results[0].reshape(m, n), hgemm_reference(a, b))


class TestModelVsSimulator:
    """The analytic pipe model and the cycle simulator must agree on who
    the bottleneck is and roughly how many cycles an iteration takes."""

    def _marginal(self, config, ctas):
        cycles = {}
        for iters in (2, 6):
            prob = HgemmProblem(config.b_m, config.b_n, iters * config.b_k,
                                0, 4 << 20, 8 << 20)
            program = build_hgemm(config, prob)
            memory = GlobalMemory(16 << 20)
            sim = TimingSimulator(RTX2070)
            cycles[iters] = sim.run(program, memory, num_ctas=ctas).cycles
        return (cycles[6] - cycles[2]) / 4

    def test_ours_simulated_near_analytic_bound(self):
        config = ours()
        analytic = pipe_cycles(config, RTX2070)
        bound = max(analytic.hmma, analytic.memory_io)
        simulated = self._marginal(config, ctas=1)
        # The generated schedule lands within 3-12% of the Table VI bound
        # (the gap is real pipeline overhead: barriers, fragment waits).
        assert bound <= simulated <= 1.15 * bound

    def test_compute_bound_config_tracks_hmma_term(self):
        config = ours()
        analytic = pipe_cycles(config, RTX2070)
        assert analytic.compute_bound
        simulated = self._marginal(config, ctas=1)
        assert abs(simulated - analytic.hmma) / analytic.hmma < 0.15


class TestDeviceParity:
    def test_hgemm_identical_on_both_devices(self):
        # Functional results are device-independent (same ISA semantics).
        rng = np.random.default_rng(1)
        a = rng.uniform(-1, 1, (64, 32)).astype(np.float16)
        b = rng.uniform(-1, 1, (32, 64)).astype(np.float16)
        np.testing.assert_array_equal(
            hgemm(a, b, spec=RTX2070), hgemm(a, b, spec=T4))


class TestMicrobenchmarksMatchArchConstants:
    """The whole measurement stack (assembler -> simulator -> clock reads)
    must return the constants the arch spec encodes -- closing the
    calibration loop."""

    def test_hmma_cpi(self):
        from repro.bench import measure_hmma_cpi
        measured = measure_hmma_cpi(RTX2070).cpi
        assert measured == pytest.approx(RTX2070.hmma_cpi, abs=0.1)

    def test_lds_tables(self):
        from repro.bench import measure_lds_cpi
        for width in (32, 64, 128):
            measured = measure_lds_cpi(RTX2070, width).cpi
            assert measured == pytest.approx(RTX2070.lds_cpi.cpi(width),
                                             abs=0.1)

    def test_dram_bandwidth(self):
        from repro.bench import measure_dram_bandwidth
        measured = measure_dram_bandwidth(RTX2070).gbps
        assert measured == pytest.approx(RTX2070.dram_measured_gbps, rel=0.03)


class TestConflictModelConsistency:
    """The layout module's conflict claims and the timing simulator's
    actual stalls must tell the same story."""

    def test_naive_layout_slower_in_simulation(self):
        def marginal(config):
            cycles = {}
            for iters in (2, 4):
                prob = HgemmProblem(config.b_m, config.b_n,
                                    iters * config.b_k, 0, 1 << 22, 1 << 23)
                program = build_hgemm(config, prob)
                sim = TimingSimulator(RTX2070)
                cycles[iters] = sim.run(program, GlobalMemory(16 << 20)).cycles
            return (cycles[4] - cycles[2]) / 2

        padded = marginal(TINY)
        naive = marginal(TINY.with_(smem_pad_halves=0))
        assert naive > 1.3 * padded  # 4-way LDS conflicts must show up
