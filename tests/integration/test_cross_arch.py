"""Cross-generation pinning: one simulator, three Tensor Core families.

Every engine family must agree *per generation* -- the functional engines
(lockstep / gridlock / predecoded / reference) bit-for-bit on the GEMM
result, and the timing engines (event / reference) cycle-for-cycle -- on
a Volta (V100, HMMA.884), a Turing (RTX2070, HMMA.1688) and an Ampere
(A100, HMMA.16816) device.  Golden digests freeze the V100 and A100
results the same way ``test_golden_cycles.py`` freezes Turing.
"""

import hashlib

import numpy as np
import pytest

from repro.arch.turing import A100, RTX2070, V100
from repro.core import hgemm, hgemm_reference
from repro.core.builder import HgemmProblem, build_hgemm
from repro.core.config import adapt_for_arch, cublas_like
from repro.core.hgemm import _resolve_config
from repro.sim.functional import ENGINES as FUNC_ENGINES
from repro.sim.memory import GlobalMemory
from repro.sim.timing import ENGINES as TIMING_ENGINES
from repro.sim.timing import TimingSimulator

DEVICES = {"V100": V100, "RTX2070": RTX2070, "A100": A100}


def rand(shape, seed):
    return np.random.default_rng(seed).uniform(-2, 2, shape).astype(np.float16)


def _digest(arr):
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()[:16]


class TestFunctionalEnginesPerGeneration:
    """All functional engines produce one bit-exact result per device, and
    that result matches the per-``w_k`` rounding oracle."""

    M, N, K = 64, 64, 64

    @pytest.mark.parametrize("device", sorted(DEVICES))
    def test_engines_bit_identical(self, device):
        spec = DEVICES[device]
        a, b = rand((self.M, self.K), 0), rand((self.K, self.N), 1)
        runs = {engine: hgemm(a, b, kernel="ours", spec=spec,
                              engine=engine, return_run=True)
                for engine in FUNC_ENGINES}
        first = runs[FUNC_ENGINES[0]]
        want = hgemm_reference(a, b, w_k=first.config.w_k)
        # The warp k-step follows the generation's native HMMA shape.
        assert first.config.w_k == spec.arch.hmma_k
        for engine, run in runs.items():
            assert run.config == first.config, engine
            np.testing.assert_array_equal(run.c, want, err_msg=engine)

    def test_generations_round_differently(self):
        # w_k=16 on Ampere means ONE rounding per 16-deep k-step where
        # Volta/Turing round every 8: the same problem gives different
        # (both correct) bits, which is why goldens are per-generation.
        a, b = rand((64, 512), 2), rand((512, 64), 3)
        c_turing = hgemm(a, b, kernel="ours", spec=RTX2070)
        c_ampere = hgemm(a, b, kernel="ours", spec=A100)
        np.testing.assert_array_equal(
            c_turing, hgemm_reference(a, b, w_k=8))
        np.testing.assert_array_equal(
            c_ampere, hgemm_reference(a, b, w_k=16))
        assert not np.array_equal(c_turing, c_ampere)


#: device -> digest of the 128x128x64 "ours"-preset result matrix.
FUNC_GOLDEN = {
    "V100": "9580e46e4fc98dd4",
    "A100": "d81589c9d15d72aa",
}


@pytest.mark.parametrize("device", sorted(FUNC_GOLDEN))
def test_functional_golden_digest(device):
    spec = DEVICES[device]
    a, b = rand((128, 64), 20), rand((64, 128), 21)
    c = hgemm(a, b, kernel="ours", spec=spec)
    np.testing.assert_array_equal(
        c, hgemm_reference(a, b, w_k=spec.arch.hmma_k))
    assert _digest(c) == FUNC_GOLDEN[device]


# --------------------------------------------------------------- timing

def _timing_run(spec, engine):
    config = adapt_for_arch(cublas_like(), spec.arch)
    problem = HgemmProblem(m=config.b_m, n=config.b_n, k=2 * config.b_k,
                           a_addr=0, b_addr=4 << 20, c_addr=8 << 20)
    program = build_hgemm(config, problem, spec)
    return TimingSimulator(spec, engine=engine).run(
        program, GlobalMemory(16 << 20), num_ctas=2)


#: device -> pinned (cycles, instructions) for the adapted cublas-like
#: config at k = 2 * b_k, 2 CTAs -- both timing engines must reproduce it.
TIMING_GOLDEN = {
    "V100": (15570, 13336),
    "A100": (13913, 7040),
}


@pytest.mark.parametrize("device", sorted(TIMING_GOLDEN))
def test_timing_engines_cycle_identical(device):
    spec = DEVICES[device]
    results = {engine: _timing_run(spec, engine)
               for engine in TIMING_ENGINES}
    ref = results["reference"]
    for engine, result in results.items():
        assert result == ref, engine
    cycles, instructions = TIMING_GOLDEN[device]
    assert ref.cycles == cycles
    assert ref.instructions == instructions
    assert ref.opcode_counts["HMMA"] > 0


@pytest.mark.parametrize("device", sorted(TIMING_GOLDEN))
def test_timing_memory_matches_functional(device):
    """The timing engine's memory image equals the functional engines'.

    Regression guard for the phantom-iteration class of bug: an
    under-stalled loop-counter decrement let fast-HMMA generations read
    the stale counter and run one extra k-iteration -- consistently
    across both timing engines, so only a cross-family comparison like
    this one (or the pinned cycle counts above) can see it.
    """
    from repro.sim.functional import FunctionalSimulator

    spec = DEVICES[device]
    config = adapt_for_arch(cublas_like(), spec.arch)
    k = 2 * config.b_k
    problem = HgemmProblem(m=config.b_m, n=config.b_n, k=k,
                           a_addr=0, b_addr=4 << 20, c_addr=8 << 20)
    program = build_hgemm(config, problem, spec)
    mem_t = GlobalMemory(16 << 20)
    mem_f = GlobalMemory(16 << 20)
    a = rand((config.b_m, k), 31)
    b = rand((k, config.b_n), 32)
    for mem in (mem_t, mem_f):
        mem.write_array(0, a.ravel())
        mem.write_array(4 << 20, b.ravel())
    TimingSimulator(spec, engine="event").run(program, mem_t, num_ctas=1)
    FunctionalSimulator(engine="lockstep").run(program, mem_f,
                                               grid_dim=(1, 1))
    assert np.array_equal(mem_t._words, mem_f._words)


def test_resolved_presets_differ_by_generation():
    """The same preset resolves to generation-appropriate blocking."""
    cfgs = {name: _resolve_config("ours", 256, 256, 64, spec=spec)
            for name, spec in DEVICES.items()}
    assert cfgs["V100"].w_k == 8 and cfgs["RTX2070"].w_k == 8
    assert cfgs["A100"].w_k == 16
    # SM80's 4-register A fragments force the warp tile down to 64 rows.
    assert cfgs["A100"].w_m <= 64
