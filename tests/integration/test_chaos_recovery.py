"""Integration: the robustness stack recovers end-to-end under chaos.

Each scenario injects a deterministic fault (``REPRO_CHAOS``) into a real
analysis workload -- a parallel SM-profile sweep, a size sweep, a cache
read -- and asserts the recovered results are **bit-identical** to a
fault-free serial run.  Recovery that changes numbers is not recovery.
"""

import numpy as np
import pytest

from repro.analysis import PerformanceModel
from repro.arch import RTX2070
from repro.core.config import cublas_like, ours
from repro.core.hgemm import hgemm, hgemm_reference
from repro.perf.cache import PROFILE_CACHE, ResultCache, content_key
from repro.perf.stats import STATS
from repro.robust import chaos, guard


@pytest.fixture(autouse=True)
def clean(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    monkeypatch.delenv("REPRO_GUARD", raising=False)
    # The process-wide memory layer would satisfy lookups from earlier
    # tests and mask the disk behaviour these scenarios target.
    PROFILE_CACHE.clear()
    guard.reset()
    chaos.reset()
    yield
    PROFILE_CACHE.clear()
    guard.reset()
    chaos.reset()


@pytest.fixture
def fault_free(monkeypatch, tmp_path):
    """Serial, chaos-free baseline numbers for one profile + sweep."""
    pm = PerformanceModel(RTX2070)
    profile = pm.profile_many([cublas_like()])[0]
    sweep = [e.tflops for e in pm.sweep(cublas_like(), [2048, 4096])]
    return profile, sweep


class TestWorkerCrashRecovery:
    def test_profile_many_recovers_bit_identical(self, monkeypatch,
                                                 fault_free):
        want_profile, _ = fault_free
        monkeypatch.setenv("REPRO_CHAOS", "crash_task:0")
        monkeypatch.setenv("REPRO_NO_CACHE", "1")  # force real re-simulation
        chaos.reset()
        STATS.reset()
        pm = PerformanceModel(RTX2070)
        got = pm.profile_many([ours(), cublas_like()], max_workers=2)
        monkeypatch.delenv("REPRO_NO_CACHE")
        baseline = PerformanceModel(RTX2070)
        want = baseline.profile_many([ours(), cublas_like()])
        assert got == want
        assert got[1] == want_profile

    def test_sweep_recovers_bit_identical(self, monkeypatch, fault_free):
        _, want_sweep = fault_free
        monkeypatch.setenv("REPRO_CHAOS", "crash_task:1")
        chaos.reset()
        pm = PerformanceModel(RTX2070)
        pm.profile_many([cublas_like()])
        got = [e.tflops for e in pm.sweep(cublas_like(), [2048, 4096],
                                          max_workers=2)]
        assert got == want_sweep


class TestCacheCorruptionRecovery:
    def test_corrupted_store_is_resimulated_not_served(self, monkeypatch,
                                                       tmp_path, fault_free):
        want_profile, _ = fault_free
        # Corrupt the first disk entry this process writes; the next cold
        # read must quarantine it and re-simulate to the same numbers.
        # A private disk dir: fault_free's entries (memory and disk) must
        # not satisfy the lookups this scenario wants to hit cold.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "corrupt"))
        PROFILE_CACHE.clear()
        # Stores go (run-leg, run-leg, profile); corrupt the profile-level
        # entry, the one a fresh model reads first.
        monkeypatch.setenv("REPRO_CHAOS", "corrupt_entry:2")
        chaos.reset()
        PerformanceModel(RTX2070).profile_many([cublas_like()])
        monkeypatch.delenv("REPRO_CHAOS")
        PROFILE_CACHE.clear()  # drop the memory layer, keep disk
        STATS.reset()
        got = PerformanceModel(RTX2070).profile_many([cublas_like()])[0]
        assert got == want_profile
        assert STATS.counters.get("cache.integrity_fails", 0) >= 1

    def test_quarantined_entry_not_rescanned(self, monkeypatch, tmp_path):
        store = ResultCache(subdir="it")
        key = content_key(b"chaos-it")
        monkeypatch.setenv("REPRO_CHAOS", "corrupt_entry:0")
        chaos.reset()
        store.put(key, {"cycles": 5})
        monkeypatch.delenv("REPRO_CHAOS")
        store.clear()  # memory layer only
        assert store.get(key) is None
        assert store.quarantined_entries() == 1
        # A clean rewrite works again.
        store.put(key, {"cycles": 5})
        store.clear()
        assert store.get(key) == {"cycles": 5}


class TestGuardedEndToEnd:
    def test_guarded_hgemm_with_flip_still_exact(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD", "full")
        monkeypatch.setenv("REPRO_CHAOS", "flip_output:1")
        chaos.reset()
        STATS.reset()
        rng = np.random.default_rng(11)
        a = rng.uniform(-1, 1, (128, 32)).astype(np.float16)
        b = rng.uniform(-1, 1, (32, 128)).astype(np.float16)
        out = hgemm(a, b)
        assert np.array_equal(out, hgemm_reference(a, b))
        assert STATS.counters.get("guard.divergences") == 1
        # Subsequent launches run on the degraded rung and stay exact.
        out2 = hgemm(a, b)
        assert np.array_equal(out2, hgemm_reference(a, b))
