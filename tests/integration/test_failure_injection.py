"""Failure injection: break the kernel's scheduling contracts and verify
the simulator catches it.

The paper's whole methodology rests on timing being *semantically load-
bearing* at the SASS level: too few stall cycles or a missing scoreboard
wait silently produces wrong numbers on real silicon.  These tests prove
our timing simulator reproduces that property -- each injected violation
corrupts the result (or trips a simulator check), and the uncorrupted
program stays bit-exact.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.arch import RTX2070
from repro.core import KernelConfig
from repro.core.builder import HgemmProblem, build_hgemm
from repro.isa import NO_BARRIER, assemble
from repro.sim import GlobalMemory, TimingSimulator
from repro.sim.exec_units import ExecError

TINY = KernelConfig(b_m=64, b_n=64, b_k=16, w_m=32, w_n=32, w_k=8)
M, N, K = 64, 64, 32


def run_timed(program, a, b):
    memory = GlobalMemory(4 << 20)
    memory.write_array(0, a)
    memory.write_array(1 << 20, np.ascontiguousarray(b.T))
    TimingSimulator(RTX2070).run(program, memory, num_ctas=1)
    return memory.read_array(1 << 21, np.float16, M * N).reshape(M, N)


def reference(a, b):
    acc = np.zeros((M, N), np.float16)
    for s in range(0, K, 8):
        acc = (a[:, s:s + 8].astype(np.float32)
               @ b[s:s + 8].astype(np.float32)
               + acc.astype(np.float32)).astype(np.float16)
    return acc


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(0)
    a = rng.uniform(-1, 1, (M, K)).astype(np.float16)
    b = rng.uniform(-1, 1, (K, N)).astype(np.float16)
    return a, b


@pytest.fixture(scope="module")
def clean_program():
    return build_hgemm(TINY, HgemmProblem(M, N, K, 0, 1 << 20, 1 << 21))


class TestBaseline:
    def test_clean_program_correct_under_timing(self, clean_program, operands):
        a, b = operands
        np.testing.assert_array_equal(run_timed(clean_program, a, b),
                                      reference(a, b))


def mutate(program, predicate, transform):
    """Copy the program with `transform` applied to instructions matching
    `predicate` (first match only)."""
    instructions = list(program.instructions)
    for index, inst in enumerate(instructions):
        if predicate(inst):
            instructions[index] = transform(inst)
            break
    else:
        raise AssertionError("no instruction matched the mutation target")
    clone = type(program)(instructions=instructions, meta=program.meta,
                          labels=dict(program.labels))
    return clone


class TestInjectedViolations:
    def test_dropped_fragment_wait_corrupts_result(self, clean_program,
                                                   operands):
        # Remove the scoreboard wait on the first HMMA after the fragment
        # loads: it now reads stale fragments.
        a, b = operands
        broken = mutate(
            clean_program,
            lambda i: i.opcode == "HMMA" and i.ctrl.wait_mask,
            lambda i: i.with_ctrl(replace(i.ctrl, wait_mask=0)),
        )
        got = run_timed(broken, a, b)
        assert not np.array_equal(got, reference(a, b))

    def test_dropped_sts_wait_corrupts_result(self, clean_program, operands):
        # The STS that waits on the LDG barrier now stores whatever junk is
        # in the staging registers.
        a, b = operands
        broken = mutate(
            clean_program,
            lambda i: i.opcode == "STS" and i.ctrl.wait_mask,
            lambda i: i.with_ctrl(replace(i.ctrl, wait_mask=0)),
        )
        got = run_timed(broken, a, b)
        assert not np.array_equal(got, reference(a, b))

    def test_dropped_ldg_writebar_corrupts_result(self, clean_program,
                                                  operands):
        # The LDG no longer signals completion; the STS's wait becomes a
        # no-op for it and consumes stale data.
        a, b = operands
        broken = mutate(
            clean_program,
            lambda i: i.opcode == "LDG" and i.ctrl.write_bar != NO_BARRIER,
            lambda i: i.with_ctrl(replace(i.ctrl, write_bar=NO_BARRIER)),
        )
        got = run_timed(broken, a, b)
        assert not np.array_equal(got, reference(a, b))

    def test_missing_barrier_detected_or_corrupts(self, clean_program,
                                                  operands):
        # Replace the mid-iteration BAR.SYNC with a NOP: warps race on the
        # shared tile.  With four warps the functional interleaving still
        # often *happens* to work, so accept either corruption or a clean
        # pass -- but the deadlock detector must never fire.
        from repro.isa import Instruction

        a, b = operands
        broken = mutate(
            clean_program,
            lambda i: i.opcode == "BAR",
            lambda i: Instruction("NOP", ctrl=i.ctrl),
        )
        run_timed(broken, a, b)  # must not raise


class TestLatencyContract:
    def test_understalled_hmma_consumer_reads_stale(self):
        # The Table-I contract, straight from assembly: reading D 9 cycles
        # after issue yields the old register value.
        src = """
        .block 32
          MOV32I R0, 0x3C003C00 {stall=1}
          MOV32I R4, 0 {stall=1}
          MOV32I R5, 0 {stall=6}
          HMMA.1688.F16 R4, R0, R0, R4 {stall=9}
          MOV R30, R4 {stall=6}
          NOP {stall=15}
          S2R R1, SR_TID.X {stall=6}
          IMAD R2, R1, 4, 0x100 {stall=6}
          STG.E.32 [R2], R30 {stall=4}
          EXIT
        """
        memory = GlobalMemory(1 << 16)
        TimingSimulator(RTX2070).run(assemble(src), memory)
        out = memory.read_array(0x100, np.uint32, 32)
        assert np.all(out == 0)  # stale pre-HMMA zeros

    def test_divergent_branch_rejected(self):
        src = """
        .block 32
          S2R R1, SR_TID.X {stall=6}
          ISETP.LT.AND P0, PT, R1, 16, PT {stall=6}
        L:
          @P0 BRA L {stall=5}
          EXIT
        """
        with pytest.raises(ExecError, match="divergent"):
            TimingSimulator(RTX2070).run(assemble(src), GlobalMemory(1 << 16))
