"""Unit tests for parallel_map and the parallel model entry points.

The supervisor half uses :mod:`repro.robust.chaos` to inject worker
crashes and hangs deterministically; recovered runs must be bit-identical
to a fault-free serial run.
"""

import pytest

from repro.perf.parallel import default_workers, parallel_map
from repro.perf.stats import STATS
from repro.robust import chaos


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


@pytest.fixture
def chaos_env(monkeypatch):
    """Set REPRO_CHAOS for one test; counters reset around it."""

    def _set(spec):
        monkeypatch.setenv("REPRO_CHAOS", spec)
        chaos.reset()

    yield _set
    chaos.reset()


def test_serial_by_default():
    assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]
    assert parallel_map(_square, [1, 2, 3], max_workers=1) == [1, 4, 9]


def test_single_item_stays_serial():
    assert parallel_map(_square, [5], max_workers=8) == [25]


def test_empty_input():
    assert parallel_map(_square, [], max_workers=4) == []


def test_parallel_preserves_order():
    items = list(range(12))
    assert parallel_map(_square, items, max_workers=2) == [x * x for x in items]


def test_auto_workers():
    assert default_workers() >= 1
    assert parallel_map(_square, [1, 2], max_workers=0) == [1, 4]


def test_worker_exception_propagates():
    with pytest.raises(ValueError, match="boom"):
        parallel_map(_boom, [1, 2], max_workers=2)


class TestSupervisor:
    """Crash/timeout recovery and the serial last rung."""

    def test_crash_recovers_bit_identical(self, chaos_env):
        chaos_env("crash_task:1")
        STATS.reset()
        items = list(range(8))
        got = parallel_map(_square, items, max_workers=2, timeout=60,
                           backoff=0.05)
        assert got == [_square(x) for x in items]  # == fault-free serial
        assert STATS.counters.get("par.crashes") == 1
        assert STATS.counters.get("par.retries") == 1
        assert STATS.counters.get("par.pool_rebuilds", 0) >= 1

    def test_timeout_recovers_bit_identical(self, chaos_env):
        chaos_env("delay_task:0,delay_seconds:5")
        STATS.reset()
        items = list(range(4))
        got = parallel_map(_square, items, max_workers=2, timeout=0.5,
                           backoff=0.05)
        assert got == [_square(x) for x in items]
        assert STATS.counters.get("par.timeouts") == 1
        assert STATS.counters.get("par.retries") == 1

    def test_persistent_crash_falls_back_to_serial(self, chaos_env):
        chaos_env("crash_task_always:2")
        STATS.reset()
        items = list(range(5))
        # Every worker attempt at task 2 dies; the serial last rung (which
        # never consults worker-crash directives) must complete it.
        got = parallel_map(_square, items, max_workers=2, timeout=60,
                           retries=1, backoff=0.05)
        assert got == [_square(x) for x in items]
        assert STATS.counters.get("par.serial_fallbacks") == 1
        assert STATS.counters.get("par.crashes") == 2  # initial + 1 retry

    def test_exception_still_propagates_under_chaos(self, chaos_env):
        chaos_env("crash_task:0")
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_boom, [1, 2, 3], max_workers=2, timeout=60,
                         backoff=0.05)

    def test_salvages_completed_results_after_crash(self, chaos_env):
        # The crash hits task 3's first attempt only; tasks finished by the
        # surviving worker are kept, nothing recomputed comes back wrong.
        chaos_env("crash_task:3")
        items = list(range(10))
        got = parallel_map(_square, items, max_workers=3, timeout=60,
                           backoff=0.05)
        assert got == [_square(x) for x in items]


class TestModelParallelism:
    """profile_many / sweep across processes match the serial results."""

    @pytest.fixture(scope="class")
    def pm(self, tmp_path_factory):
        from repro.analysis import PerformanceModel
        from repro.arch import RTX2070
        return PerformanceModel(RTX2070)

    def test_profile_many_matches_serial(self, pm, monkeypatch, tmp_path):
        from repro.analysis import PerformanceModel
        from repro.core.config import cublas_like

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        configs = [cublas_like()]
        parallel_pm = PerformanceModel(pm.spec)
        got = parallel_pm.profile_many(configs, max_workers=2)
        want = pm.profile_many(configs)
        assert got == want
        # Identity caching inside the instance still holds.
        assert parallel_pm.sm_profile(configs[0]) is got[0]

    def test_sweep_parallel_matches_serial(self, pm):
        from repro.core.config import cublas_like

        sizes = [2048, 4096, 8192]
        serial = pm.sweep(cublas_like(), sizes)
        par = pm.sweep(cublas_like(), sizes, max_workers=2)
        assert [e.tflops for e in serial] == [e.tflops for e in par]
        assert [e.bound for e in serial] == [e.bound for e in par]


def _square_counting(x):
    STATS.count("test.par_marks")
    return x * x


class TestWorkerStatsRepatriation:
    """Workers ship their STATS deltas home with each result."""

    def test_worker_counters_reach_parent(self):
        before = STATS.counters.get("test.par_marks", 0)
        out = parallel_map(_square_counting, [1, 2, 3], max_workers=2,
                           timeout=60)
        assert out == [1, 4, 9]
        gained = STATS.counters.get("test.par_marks", 0) - before
        assert gained == 3

    def test_worker_counters_land_in_active_scope(self):
        """The chain behind per-request serve attribution: a scoped
        request fans out to processes and still gets charged."""
        with STATS.scoped() as scope:
            parallel_map(_square_counting, [1, 2], max_workers=2,
                         timeout=60)
        assert scope.snapshot()["counters"].get("test.par_marks") == 2
