"""Unit tests for parallel_map and the parallel model entry points."""

import pytest

from repro.perf.parallel import default_workers, parallel_map


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


def test_serial_by_default():
    assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]
    assert parallel_map(_square, [1, 2, 3], max_workers=1) == [1, 4, 9]


def test_single_item_stays_serial():
    assert parallel_map(_square, [5], max_workers=8) == [25]


def test_empty_input():
    assert parallel_map(_square, [], max_workers=4) == []


def test_parallel_preserves_order():
    items = list(range(12))
    assert parallel_map(_square, items, max_workers=2) == [x * x for x in items]


def test_auto_workers():
    assert default_workers() >= 1
    assert parallel_map(_square, [1, 2], max_workers=0) == [1, 4]


def test_worker_exception_propagates():
    with pytest.raises(ValueError, match="boom"):
        parallel_map(_boom, [1, 2], max_workers=2)


class TestModelParallelism:
    """profile_many / sweep across processes match the serial results."""

    @pytest.fixture(scope="class")
    def pm(self, tmp_path_factory):
        from repro.analysis import PerformanceModel
        from repro.arch import RTX2070
        return PerformanceModel(RTX2070)

    def test_profile_many_matches_serial(self, pm, monkeypatch, tmp_path):
        from repro.analysis import PerformanceModel
        from repro.core.config import cublas_like

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        configs = [cublas_like()]
        parallel_pm = PerformanceModel(pm.spec)
        got = parallel_pm.profile_many(configs, max_workers=2)
        want = pm.profile_many(configs)
        assert got == want
        # Identity caching inside the instance still holds.
        assert parallel_pm.sm_profile(configs[0]) is got[0]

    def test_sweep_parallel_matches_serial(self, pm):
        from repro.core.config import cublas_like

        sizes = [2048, 4096, 8192]
        serial = pm.sweep(cublas_like(), sizes)
        par = pm.sweep(cublas_like(), sizes, max_workers=2)
        assert [e.tflops for e in serial] == [e.tflops for e in par]
        assert [e.bound for e in serial] == [e.bound for e in par]
