"""Unit tests for the perf counter/timer facility."""

from repro.perf.stats import PerfStats


def test_counters_accumulate():
    s = PerfStats()
    s.count("sim.runs")
    s.count("sim.runs")
    s.count("sim.cycles", 500)
    assert s.counters["sim.runs"] == 2
    assert s.counters["sim.cycles"] == 500


def test_timer_context_accumulates():
    s = PerfStats()
    with s.timer("wall"):
        pass
    with s.timer("wall"):
        pass
    assert s.timers["wall"] >= 0.0


def test_rate_guards_division_by_zero():
    s = PerfStats()
    assert s.rate("sim.cycles", "sim.wall") == 0.0
    s.count("sim.cycles", 100)
    s.add_time("sim.wall", 2.0)
    assert s.rate("sim.cycles", "sim.wall") == 50.0


def test_reset_and_snapshot():
    s = PerfStats()
    s.count("a")
    s.add_time("t", 1.0)
    snap = s.snapshot()
    assert snap == {"counters": {"a": 1}, "timers": {"t": 1.0}}
    s.reset()
    assert s.counters == {} and s.timers == {}
    assert snap["counters"] == {"a": 1}  # snapshot is a copy


def test_report_mentions_cycles_per_sec():
    s = PerfStats()
    assert "no activity" in s.report()
    s.count("sim.cycles", 1000)
    s.add_time("sim.wall", 0.5)
    report = s.report()
    assert "sim.cycles" in report
    assert "sim.cycles_per_sec" in report


def test_simulator_populates_global_stats():
    from repro.arch import RTX2070
    from repro.core.builder import HgemmProblem, build_hgemm
    from repro.core.config import cublas_like
    from repro.perf.stats import STATS
    from repro.sim.memory import GlobalMemory
    from repro.sim.timing import TimingSimulator

    config = cublas_like()
    problem = HgemmProblem(m=config.b_m, n=config.b_n, k=config.b_k,
                           a_addr=0, b_addr=4 << 20, c_addr=8 << 20)
    program = build_hgemm(config, problem, RTX2070)
    before = STATS.snapshot()["counters"]
    result = TimingSimulator(RTX2070).run(program, GlobalMemory(16 << 20),
                                          num_ctas=1)
    after = STATS.snapshot()["counters"]
    assert after.get("sim.runs", 0) == before.get("sim.runs", 0) + 1
    delta = after.get("sim.cycles", 0) - before.get("sim.cycles", 0)
    assert delta == result.cycles


class TestScopedStats:
    """Per-request attribution: thread-local scopes filled incrementally."""

    def test_scope_captures_only_inside(self):
        s = PerfStats()
        s.count("sim.runs")
        with s.scoped() as scope:
            s.count("sim.runs")
            s.count("sim.cycles", 40)
            s.add_time("sim.wall", 0.5)
        s.count("sim.runs")
        snap = scope.snapshot()
        assert snap["counters"] == {"sim.runs": 1, "sim.cycles": 40}
        assert snap["timers"] == {"sim.wall": 0.5}
        assert s.counters["sim.runs"] == 3  # globals unaffected

    def test_nested_scopes_both_observe(self):
        s = PerfStats()
        with s.scoped() as outer:
            s.count("a")
            with s.scoped() as inner:
                s.count("a")
        assert outer.snapshot()["counters"]["a"] == 2
        assert inner.snapshot()["counters"]["a"] == 1

    def test_scopes_are_thread_local(self):
        import threading

        s = PerfStats()
        other = {}

        def worker():
            with s.scoped() as scope:
                s.count("w")
            other["snap"] = scope.snapshot()

        with s.scoped() as mine:
            t = threading.Thread(target=worker)
            t.start()
            t.join(timeout=10)
            s.count("m")
        assert other["snap"]["counters"] == {"w": 1}
        assert mine.snapshot()["counters"] == {"m": 1}

    def test_merge_lands_in_active_scope(self):
        """Worker-process deltas merged by the supervisor must be charged
        to the request scope that triggered the fan-out."""
        s = PerfStats()
        with s.scoped() as scope:
            s.merge({"counters": {"sim.runs": 2, "sim.cycles": 100},
                     "timers": {"sim.wall": 1.5}})
        snap = scope.snapshot()
        assert snap["counters"] == {"sim.runs": 2, "sim.cycles": 100}
        assert snap["timers"] == {"sim.wall": 1.5}
        assert s.counters["sim.cycles"] == 100

    def test_delta_since_snapshot(self):
        s = PerfStats()
        s.count("a", 5)
        before = s.snapshot()
        s.count("a", 2)
        s.count("b")
        s.add_time("t", 0.25)
        delta = s.delta(before)
        assert delta["counters"] == {"a": 2, "b": 1}
        assert delta["timers"] == {"t": 0.25}

    def test_reset_clears_globals_not_scope_contract(self):
        s = PerfStats()
        s.count("a")
        s.reset()
        assert s.counters == {}
