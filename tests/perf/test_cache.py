"""Unit tests for the content-addressed result cache."""

import json

import pytest

from repro.arch import RTX2070, T4
from repro.core.config import cublas_like, ours
from repro.perf.cache import (
    SIM_VERSION, ResultCache, cache_dir, cache_enabled, content_key,
)


@pytest.fixture
def cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    return ResultCache(subdir="test")


class TestContentKey:
    def test_deterministic(self):
        assert content_key(b"x", 1, "y") == content_key(b"x", 1, "y")

    def test_distinct_inputs_distinct_keys(self):
        assert content_key(b"abc") != content_key(b"abd")
        assert content_key(RTX2070) != content_key(T4)
        assert content_key(ours()) != content_key(cublas_like())

    def test_length_framing_prevents_concatenation_collisions(self):
        assert content_key(b"ab", b"c") != content_key(b"a", b"bc")
        assert content_key(b"ab") != content_key(b"a", b"b")

    def test_version_tag_changes_key(self):
        base = content_key(b"run", SIM_VERSION, RTX2070)
        assert content_key(b"run", SIM_VERSION + "x", RTX2070) != base

    def test_dataclasses_hash_by_value(self):
        assert content_key(ours()) == content_key(ours())


class TestResultCache:
    def test_miss_then_hit(self, cache):
        key = content_key(b"k1")
        assert cache.get(key) is None
        cache.put(key, {"cycles": 123})
        assert cache.get(key) == {"cycles": 123}

    def test_disk_round_trip(self, cache, tmp_path):
        key = content_key(b"k2")
        cache.put(key, {"cycles": 7})
        fresh = ResultCache(subdir="test")  # empty memory layer
        assert fresh.get(key) == {"cycles": 7}
        assert cache.disk_entries() == 1

    def test_corrupt_disk_entry_is_a_miss(self, cache, tmp_path):
        key = content_key(b"k3")
        cache.put(key, {"cycles": 9})
        path = tmp_path / "test" / f"{key}.json"
        path.write_text("{not json", encoding="utf-8")
        fresh = ResultCache(subdir="test")
        assert fresh.get(key) is None
        assert not path.exists()  # corrupt file dropped

    def test_clear(self, cache):
        key = content_key(b"k4")
        cache.put(key, {"v": 1})
        cache.clear()
        # Memory gone, disk still there.
        assert cache.disk_entries() == 1
        assert cache.get(key) == {"v": 1}
        cache.clear(disk=True)
        assert cache.disk_entries() == 0

    def test_values_json_stable(self, cache, tmp_path):
        key = content_key(b"k5")
        cache.put(key, {"marginal_cycles": 4375.0, "ctas_per_sm": 1})
        raw = json.loads((tmp_path / "test" / f"{key}.json").read_text())
        assert raw == {"marginal_cycles": 4375.0, "ctas_per_sm": 1}


class TestEnvironmentSwitches:
    def test_no_cache_disables_everything(self, cache, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert not cache_enabled()
        key = content_key(b"k6")
        cache.put(key, {"v": 1})
        assert cache.get(key) is None
        assert cache.disk_entries() == 0

    def test_cache_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert cache_dir() == tmp_path / "elsewhere"
