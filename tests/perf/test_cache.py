"""Unit tests for the content-addressed result cache.

Covers the integrity layer exhaustively: every corruption class
(truncated JSON, valid-JSON-wrong-schema, checksum mismatch, stale
``SIM_VERSION``) must read as a miss, quarantine the file, and never
surface a stale value; plus the hygiene pieces (store-error accounting,
``*.tmp`` sweeping, size-bounded LRU eviction).
"""

import json
import os
import time

import pytest

from repro.arch import RTX2070, T4
from repro.core.config import cublas_like, ours
from repro.perf.cache import (
    SCHEMA_VERSION, SIM_VERSION, ResultCache, cache_dir, cache_enabled,
    cache_max_bytes, content_key,
)
from repro.perf.stats import STATS


@pytest.fixture
def cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
    return ResultCache(subdir="test")


def _entry_path(tmp_path, key):
    return tmp_path / "test" / f"{key}.json"


class TestContentKey:
    def test_deterministic(self):
        assert content_key(b"x", 1, "y") == content_key(b"x", 1, "y")

    def test_distinct_inputs_distinct_keys(self):
        assert content_key(b"abc") != content_key(b"abd")
        assert content_key(RTX2070) != content_key(T4)
        assert content_key(ours()) != content_key(cublas_like())

    def test_length_framing_prevents_concatenation_collisions(self):
        assert content_key(b"ab", b"c") != content_key(b"a", b"bc")
        assert content_key(b"ab") != content_key(b"a", b"b")

    def test_version_tag_changes_key(self):
        base = content_key(b"run", SIM_VERSION, RTX2070)
        assert content_key(b"run", SIM_VERSION + "x", RTX2070) != base

    def test_dataclasses_hash_by_value(self):
        assert content_key(ours()) == content_key(ours())


class TestResultCache:
    def test_miss_then_hit(self, cache):
        key = content_key(b"k1")
        assert cache.get(key) is None
        cache.put(key, {"cycles": 123})
        assert cache.get(key) == {"cycles": 123}

    def test_disk_round_trip(self, cache, tmp_path):
        key = content_key(b"k2")
        cache.put(key, {"cycles": 7})
        fresh = ResultCache(subdir="test")  # empty memory layer
        assert fresh.get(key) == {"cycles": 7}
        assert cache.disk_entries() == 1

    def test_clear(self, cache):
        key = content_key(b"k4")
        cache.put(key, {"v": 1})
        cache.clear()
        # Memory gone, disk still there.
        assert cache.disk_entries() == 1
        assert cache.get(key) == {"v": 1}
        cache.clear(disk=True)
        assert cache.disk_entries() == 0

    def test_values_json_stable(self, cache, tmp_path):
        key = content_key(b"k5")
        cache.put(key, {"marginal_cycles": 4375.0, "ctas_per_sm": 1})
        raw = json.loads(_entry_path(tmp_path, key).read_text())
        assert raw["payload"] == {"marginal_cycles": 4375.0,
                                  "ctas_per_sm": 1}
        assert raw["schema"] == SCHEMA_VERSION
        assert raw["sim_version"] == SIM_VERSION
        assert len(raw["sha256"]) == 64

    def test_stores_counted_only_on_success(self, cache, monkeypatch,
                                            tmp_path):
        STATS.reset()
        cache.put(content_key(b"ok"), {"v": 1})
        assert STATS.counters.get("cache.stores") == 1
        assert "cache.store_errors" not in STATS.counters
        # Point the disk layer at a path that cannot be a directory.
        blocker = tmp_path / "blocked"
        blocker.write_text("a file, not a directory")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(blocker))
        cache.put(content_key(b"fails"), {"v": 2})
        assert STATS.counters.get("cache.stores") == 1  # unchanged
        assert STATS.counters.get("cache.store_errors") == 1
        # The memory layer still serves the value.
        assert cache.get(content_key(b"fails")) == {"v": 2}


class TestIntegrity:
    """Every corruption class: miss + quarantine + counted, never served."""

    def _put_and_corrupt(self, cache, tmp_path, mangle):
        key = content_key(b"corrupt-me")
        cache.put(key, {"cycles": 9})
        path = _entry_path(tmp_path, key)
        envelope = json.loads(path.read_text())
        mangle(path, envelope)
        return key, path

    def _assert_quarantined_miss(self, tmp_path, key, path):
        STATS.reset()
        fresh = ResultCache(subdir="test")
        assert fresh.get(key) is None
        assert not path.exists()
        assert (tmp_path / "test" / "quarantine" / path.name).exists()
        assert STATS.counters.get("cache.integrity_fails") == 1
        # And the quarantined file is never picked back up.
        assert fresh.get(key) is None
        assert fresh.quarantined_entries() == 1

    def test_truncated_json(self, cache, tmp_path):
        def mangle(path, envelope):
            raw = path.read_text()
            path.write_text(raw[: len(raw) // 2], encoding="utf-8")

        key, path = self._put_and_corrupt(cache, tmp_path, mangle)
        self._assert_quarantined_miss(tmp_path, key, path)

    def test_valid_json_wrong_schema(self, cache, tmp_path):
        def mangle(path, envelope):
            envelope["schema"] = SCHEMA_VERSION + 1
            path.write_text(json.dumps(envelope), encoding="utf-8")

        key, path = self._put_and_corrupt(cache, tmp_path, mangle)
        self._assert_quarantined_miss(tmp_path, key, path)

    def test_pre_envelope_bare_payload(self, cache, tmp_path):
        def mangle(path, envelope):
            path.write_text(json.dumps(envelope["payload"]),
                            encoding="utf-8")

        key, path = self._put_and_corrupt(cache, tmp_path, mangle)
        self._assert_quarantined_miss(tmp_path, key, path)

    def test_checksum_mismatch(self, cache, tmp_path):
        def mangle(path, envelope):
            envelope["payload"]["cycles"] = 10_000  # silent bit-rot
            path.write_text(json.dumps(envelope), encoding="utf-8")

        key, path = self._put_and_corrupt(cache, tmp_path, mangle)
        self._assert_quarantined_miss(tmp_path, key, path)

    def test_stale_sim_version(self, cache, tmp_path):
        def mangle(path, envelope):
            envelope["sim_version"] = "timing-v0"
            path.write_text(json.dumps(envelope), encoding="utf-8")

        key, path = self._put_and_corrupt(cache, tmp_path, mangle)
        self._assert_quarantined_miss(tmp_path, key, path)

    def test_unparseable_garbage(self, cache, tmp_path):
        key = content_key(b"k3")
        cache.put(key, {"cycles": 9})
        path = _entry_path(tmp_path, key)
        path.write_text("{not json", encoding="utf-8")
        fresh = ResultCache(subdir="test")
        assert fresh.get(key) is None
        assert not path.exists()  # corrupt file moved out of circulation


class TestHygiene:
    def test_clear_removes_tmp_and_quarantine(self, cache, tmp_path):
        key = content_key(b"k7")
        cache.put(key, {"v": 1})
        root = tmp_path / "test"
        (root / "orphan.tmp").write_text("interrupted write")
        path = _entry_path(tmp_path, key)
        path.write_text("{broken", encoding="utf-8")
        fresh = ResultCache(subdir="test")
        assert fresh.get(key) is None  # quarantines the broken entry
        cache.clear(disk=True)
        assert list(root.glob("*.tmp")) == []
        assert list(root.glob("*.json")) == []
        assert list((root / "quarantine").glob("*.json")) == []

    def test_evict_sweeps_stale_tmp(self, cache, tmp_path):
        cache.put(content_key(b"k8"), {"v": 1})
        root = tmp_path / "test"
        stale = root / "stale.tmp"
        stale.write_text("old interrupted write")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        fresh_tmp = root / "fresh.tmp"
        fresh_tmp.write_text("live write in flight")
        cache.evict(max_bytes=None)
        assert not stale.exists()
        assert fresh_tmp.exists()  # a live put's tmp file is left alone

    def test_lru_eviction_drops_oldest_first(self, cache, tmp_path,
                                             monkeypatch):
        STATS.reset()
        keys = [content_key(b"evict", i) for i in range(4)]
        for i, key in enumerate(keys):
            cache.put(key, {"v": i, "pad": "x" * 200})
        # Back-date entries 0 and 1; touch 2 and 3 as most recent.
        now = time.time()
        for age, key in zip((4000, 3000, 20, 10), keys):
            path = _entry_path(tmp_path, key)
            os.utime(path, (now - age, now - age))
        entry_size = _entry_path(tmp_path, keys[0]).stat().st_size
        evicted = cache.evict(max_bytes=entry_size * 2)
        assert evicted == 2
        assert STATS.counters.get("cache.evictions") == 2
        survivors = {p.name for p in (tmp_path / "test").glob("*.json")}
        assert survivors == {f"{keys[2]}.json", f"{keys[3]}.json"}

    def test_put_honours_max_mb_env(self, cache, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "0.0005")  # ~524 bytes
        assert cache_max_bytes() == 524
        for i in range(5):
            cache.put(content_key(b"auto", i), {"v": i, "pad": "x" * 200})
        assert cache.disk_bytes() <= 524

    def test_disk_hit_refreshes_lru_position(self, cache, tmp_path):
        key_old = content_key(b"old")
        key_hot = content_key(b"hot")
        cache.put(key_hot, {"v": 1, "pad": "x" * 200})
        cache.put(key_old, {"v": 2, "pad": "x" * 200})
        now = time.time()
        os.utime(_entry_path(tmp_path, key_hot), (now - 5000, now - 5000))
        os.utime(_entry_path(tmp_path, key_old), (now - 1000, now - 1000))
        fresh = ResultCache(subdir="test")
        assert fresh.get(key_hot) is not None  # touches mtime
        entry_size = _entry_path(tmp_path, key_hot).stat().st_size
        cache.evict(max_bytes=entry_size)
        survivors = {p.name for p in (tmp_path / "test").glob("*.json")}
        assert survivors == {f"{key_hot}.json"}


class TestEnvironmentSwitches:
    def test_no_cache_disables_everything(self, cache, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert not cache_enabled()
        key = content_key(b"k6")
        cache.put(key, {"v": 1})
        assert cache.get(key) is None
        assert cache.disk_entries() == 0

    def test_cache_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert cache_dir() == tmp_path / "elsewhere"
