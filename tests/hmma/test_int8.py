"""Tests for the IMMA.8816 int8 Tensor Core semantics (future work)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hmma import int8 as i8


def rand_a(seed):
    return np.random.default_rng(seed).integers(-128, 128, (8, 16),
                                                dtype=np.int8)


def rand_b(seed):
    return np.random.default_rng(seed).integers(-128, 128, (16, 8),
                                                dtype=np.int8)


class TestFragments:
    def test_a_roundtrip(self):
        a = rand_a(0)
        words = i8.int8_matrix_to_fragment_a(a)
        assert words.shape == (32,) and words.dtype == np.uint32
        np.testing.assert_array_equal(i8.fragment_a_to_int8_matrix(words), a)

    def test_b_roundtrip(self):
        b = rand_b(1)
        words = i8.int8_matrix_to_fragment_b(b)
        np.testing.assert_array_equal(i8.fragment_b_to_int8_matrix(words), b)

    def test_s32_roundtrip(self):
        c = np.random.default_rng(2).integers(-2**31, 2**31, (8, 8),
                                              dtype=np.int64).astype(np.int32)
        regs = i8.s32_matrix_to_fragments(c)
        assert regs.shape == (2, 32)
        np.testing.assert_array_equal(i8.fragments_to_s32_matrix(regs), c)

    def test_a_lane_ownership(self):
        # Lane 4r+p holds A[r, 4p..4p+3]: check one specific lane.
        a = np.zeros((8, 16), np.int8)
        a[3, 8:12] = [1, 2, 3, 4]
        words = i8.int8_matrix_to_fragment_a(a)
        lane = 4 * 3 + 2  # row 3, byte group 2
        packed = int(words[lane])
        assert [(packed >> (8 * i)) & 0xFF for i in range(4)] == [1, 2, 3, 4]
        assert all(words[l] == 0 for l in range(32) if l != lane)

    def test_b_lane_ownership(self):
        # Lane q+4c holds B[4q..4q+3, c].
        b = np.zeros((16, 8), np.int8)
        b[4:8, 5] = [9, 8, 7, 6]
        words = i8.int8_matrix_to_fragment_b(b)
        lane = 1 + 4 * 5
        packed = int(words[lane])
        assert [(packed >> (8 * i)) & 0xFF for i in range(4)] == [9, 8, 7, 6]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            i8.int8_matrix_to_fragment_a(np.zeros((16, 8), np.int8))
        with pytest.raises(ValueError):
            i8.fragments_to_s32_matrix(np.zeros((3, 32), np.uint32))


class TestImma:
    def _run(self, a, b, c):
        return i8.fragments_to_s32_matrix(i8.imma_8816(
            i8.int8_matrix_to_fragment_a(a),
            i8.int8_matrix_to_fragment_b(b),
            i8.s32_matrix_to_fragments(c),
        ))

    def test_matches_integer_reference(self):
        a, b = rand_a(3), rand_b(4)
        c = np.random.default_rng(5).integers(-1000, 1000, (8, 8),
                                              dtype=np.int32)
        expected = (a.astype(np.int64) @ b.astype(np.int64) + c).astype(np.int32)
        np.testing.assert_array_equal(self._run(a, b, c), expected)

    def test_exact_at_extremes(self):
        # All -128 * -128 * 16 = 262144 per element: exact in s32.
        a = np.full((8, 16), -128, np.int8)
        b = np.full((16, 8), -128, np.int8)
        d = self._run(a, b, np.zeros((8, 8), np.int32))
        assert np.all(d == 128 * 128 * 16)

    def test_wraparound_accumulate(self):
        a = np.zeros((8, 16), np.int8)
        a[0, 0] = 1
        b = np.zeros((16, 8), np.int8)
        b[0, 0] = 1
        c = np.full((8, 8), np.int32(2**31 - 1))
        d = self._run(a, b, c)
        assert d[0, 0] == np.int32(-2**31)  # INT_MAX + 1 wraps

    @settings(max_examples=25)
    @given(st.integers(0, 10_000))
    def test_random_property(self, seed):
        a, b = rand_a(seed), rand_b(seed + 1)
        c = np.zeros((8, 8), np.int32)
        expected = (a.astype(np.int64) @ b.astype(np.int64)).astype(np.int32)
        np.testing.assert_array_equal(self._run(a, b, c), expected)

    def test_ops_constant(self):
        assert i8.IMMA_8816_OPS == 2048


class TestImmaInSimulator:
    def test_executes_in_program(self):
        import numpy as np
        from repro.isa import ProgramBuilder, Reg
        from repro.sim import FunctionalSimulator, GlobalMemory

        rng = np.random.default_rng(7)
        a = rng.integers(-4, 4, (8, 16), dtype=np.int8)
        bm = rng.integers(-4, 4, (16, 8), dtype=np.int8)

        b = ProgramBuilder(name="imma", block_dim=32)
        b.s2r(2, "SR_TID.X", stall=6)
        b.imad(3, Reg(2), 4, 0, stall=6)
        b.ldg(8, 3, offset=0x1000, width=32, stall=2, wb=0)   # A
        b.ldg(10, 3, offset=0x1100, width=32, stall=2, wb=1)  # B
        b.mov(4, Reg(255), stall=1)
        b.mov(5, Reg(255), stall=2, wait=(0, 1))
        b.imma_8816(4, 8, 10, 4, stall=4)
        b.nop(stall=15)
        b.stg(3, 4, offset=0x2000, width=32, stall=4)
        b.stg(3, 5, offset=0x2080, width=32, stall=4)
        b.exit()

        gm = GlobalMemory(1 << 20)
        gm.write_array(0x1000, i8.int8_matrix_to_fragment_a(a))
        gm.write_array(0x1100, i8.int8_matrix_to_fragment_b(bm))
        FunctionalSimulator().run(b.build(), gm)

        regs = np.stack([gm.read_array(0x2000, np.uint32, 32),
                         gm.read_array(0x2080, np.uint32, 32)])
        got = i8.fragments_to_s32_matrix(regs)
        expected = (a.astype(np.int64) @ bm.astype(np.int64)).astype(np.int32)
        np.testing.assert_array_equal(got, expected)

    def test_cpi_is_4(self):
        from repro.arch import RTX2070
        from repro.bench import measure_imma_cpi

        result = measure_imma_cpi(RTX2070)
        assert result.cpi == pytest.approx(4.0, abs=0.1)

    def test_double_throughput_vs_hmma(self):
        from repro.arch import RTX2070
        from repro.bench import measure_hmma_cpi, measure_imma_cpi

        hmma = measure_hmma_cpi(RTX2070, per_loop=64, loops=4)
        imma = measure_imma_cpi(RTX2070, per_loop=64, loops=4)
        # Same 2048 ops per instruction at half the cycles: 2x the TOPS.
        assert hmma.cpi / imma.cpi == pytest.approx(2.0, rel=0.03)
