"""Per-generation HMMA semantics: 884 (SM70) and 16816 (SM80).

The 1688 path (SM75, the source paper's generation) is covered by
``test_mma.py``; this file pins the other two generations the same way --
per-warp kernels against the matrix-level oracles, the stacked batch
kernels against per-warp loops, and golden digests that freeze the exact
bit patterns the functional engines produce.
"""

import hashlib

import numpy as np
import pytest

from repro.hmma import (
    COL_MAJOR,
    ROW_MAJOR,
    fragment_to_matrix,
    fragments_f32_to_matrix16x8,
    fragments_to_matrix16x8,
    matrix16x8_to_fragments,
    matrix16x8_to_fragments_f32,
    matrix_to_fragment,
    mma,
)

# Random uint32 fragments routinely decode to fp16 NaN/Inf; the kernels
# propagate them identically everywhere, so the IEEE warnings are noise.
pytestmark = pytest.mark.filterwarnings(
    "ignore:invalid value encountered:RuntimeWarning",
    "ignore:overflow encountered:RuntimeWarning",
)


def rand_half(shape, seed):
    rng = np.random.default_rng(seed)
    return rng.uniform(-2, 2, size=shape).astype(np.float16)


def _digest(arr):
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()[:16]


class TestHmma16816:
    def _run_f16(self, a, b, c):
        a_regs = np.concatenate(
            [matrix16x8_to_fragments(a[:, :8]),
             matrix16x8_to_fragments(a[:, 8:])])
        b_regs = np.stack([matrix_to_fragment(b[:8], COL_MAJOR),
                           matrix_to_fragment(b[8:], COL_MAJOR)])
        d = mma.hmma_16816_f16(a_regs, b_regs, matrix16x8_to_fragments(c))
        return fragments_to_matrix16x8(d)

    def test_matches_reference(self):
        a = rand_half((16, 16), 1)
        b = rand_half((16, 8), 2)
        c = rand_half((16, 8), 3)
        np.testing.assert_array_equal(
            self._run_f16(a, b, c), mma.mma_16x8x16(a, b, c, accumulate_f32=False))

    def test_single_rounding_per_instruction(self):
        # One 16816 rounds ONCE over k=16; two chained 1688 steps round
        # twice.  With products straddling the f16 ulp they must differ --
        # this is exactly the hgemm_reference(w_k=...) distinction.
        a = rand_half((16, 16), 40)
        b = rand_half((16, 8), 41)
        c = rand_half((16, 8), 42)
        one = mma.mma_16x8x16(a, b, c, accumulate_f32=False)
        lo = mma.mma_16x8x8(a[:, :8], b[:8], c, accumulate_f32=False)
        two = mma.mma_16x8x8(a[:, 8:], b[8:], lo, accumulate_f32=False)
        exact = (a.astype(np.float32) @ b.astype(np.float32)
                 + c.astype(np.float32)).astype(np.float16)
        np.testing.assert_array_equal(one, exact)
        assert not np.array_equal(one, two)

    def test_f32_matches_reference(self):
        a = rand_half((16, 16), 4)
        b = rand_half((16, 8), 5)
        c = np.random.default_rng(6).normal(size=(16, 8)).astype(np.float32)
        a_regs = np.concatenate(
            [matrix16x8_to_fragments(a[:, :8]),
             matrix16x8_to_fragments(a[:, 8:])])
        b_regs = np.stack([matrix_to_fragment(b[:8], COL_MAJOR),
                           matrix_to_fragment(b[8:], COL_MAJOR)])
        d = mma.hmma_16816_f32(a_regs, b_regs, matrix16x8_to_fragments_f32(c))
        got = fragments_f32_to_matrix16x8(d)
        expected = a.astype(np.float32) @ b.astype(np.float32) + c
        np.testing.assert_array_equal(got, expected)

    def test_reference_shape_check(self):
        with pytest.raises(ValueError):
            mma.mma_16x8x16(np.zeros((16, 8)), np.zeros((16, 8)),
                            np.zeros((16, 8)), False)


def _rand_regs(shape, seed):
    return np.random.default_rng(seed).integers(
        0, 1 << 32, shape, dtype=np.uint32)


class TestBatchKernelsMatchPerWarp:
    """The engines' vectorised batch kernels vs per-warp scalar loops."""

    G, NW = 5, 3
    L = NW * 32

    def test_884(self):
        a = _rand_regs((self.G, self.L), 10)
        b = _rand_regs((self.G, self.L), 11)
        c = _rand_regs((self.G, self.L), 12)
        got = mma.hmma_884_f16_batch(a, b, c)
        for i in range(self.G):
            for w in range(self.NW):
                lanes = slice(32 * w, 32 * (w + 1))
                np.testing.assert_array_equal(
                    got[i][lanes],
                    mma.hmma_884_f16(a[i][lanes], b[i][lanes], c[i][lanes]))

    @pytest.mark.parametrize("f32", [False, True], ids=["f16", "f32"])
    def test_16816(self, f32):
        a = _rand_regs((self.G, 4, self.L), 13)
        b = _rand_regs((self.G, 2, self.L), 14)
        c = _rand_regs((self.G, 4 if f32 else 2, self.L), 15)
        batch = mma.hmma_16816_f32_batch if f32 else mma.hmma_16816_f16_batch
        warp = mma.hmma_16816_f32 if f32 else mma.hmma_16816_f16
        got = batch(a, b, c)
        for i in range(self.G):
            for w in range(self.NW):
                lanes = slice(32 * w, 32 * (w + 1))
                np.testing.assert_array_equal(
                    got[i][:, lanes],
                    warp(a[i][:, lanes], b[i][:, lanes], c[i][:, lanes]))


class TestGoldenDigests:
    """Pinned bit patterns per generation.

    These freeze the exact fp16/fp32 rounding the functional engines
    produce for each generation's native HMMA -- any change to fragment
    tables, accumulation order, or rounding shows up here before it
    silently shifts every simulated GEMM result.
    """

    def _operands(self):
        rng = np.random.default_rng(2026)
        g, L = 5, 96
        a884 = rng.integers(0, 1 << 32, (g, L), dtype=np.uint32)
        b884 = rng.integers(0, 1 << 32, (g, L), dtype=np.uint32)
        c884 = rng.integers(0, 1 << 32, (g, L), dtype=np.uint32)
        a4 = rng.integers(0, 1 << 32, (g, 4, L), dtype=np.uint32)
        b2 = rng.integers(0, 1 << 32, (g, 2, L), dtype=np.uint32)
        c2 = rng.integers(0, 1 << 32, (g, 2, L), dtype=np.uint32)
        c4 = rng.integers(0, 1 << 32, (g, 4, L), dtype=np.uint32)
        return a884, b884, c884, a4, b2, c2, c4

    def test_sm70_884(self):
        a, b, c, *_ = self._operands()
        assert _digest(mma.hmma_884_f16_batch(a, b, c)) == "02a3bcaf963cf6f5"

    def test_sm75_1688(self):
        _, _, _, a4, b2, c2, _ = self._operands()
        got = mma.hmma_1688_f16_batch(a4[:, :2], b2[:, 0], c2)
        assert _digest(got) == "ca23627da355fa6a"

    def test_sm80_16816_f16(self):
        _, _, _, a4, b2, c2, _ = self._operands()
        got = mma.hmma_16816_f16_batch(a4, b2, c2)
        assert _digest(got) == "df8cb18ec902e903"

    def test_sm80_16816_f32(self):
        _, _, _, a4, b2, _, c4 = self._operands()
        got = mma.hmma_16816_f32_batch(a4, b2, c4)
        assert _digest(got) == "fc43badb9244f3a1"


class TestCrossGenerationConsistency:
    def test_two_884_equal_one_1688_row_pair(self):
        a = rand_half((16, 8), 20)
        b = rand_half((8, 8), 21)
        c = rand_half((16, 8), 22)
        d1688 = mma.mma_16x8x8(a, b, c, accumulate_f32=False)
        for half in range(2):
            rows = slice(8 * half, 8 * half + 8)
            d884 = fragment_to_matrix(
                mma.hmma_884_f16(
                    matrix_to_fragment(a[rows], ROW_MAJOR),
                    matrix_to_fragment(b, COL_MAJOR),
                    matrix_to_fragment(c[rows], ROW_MAJOR)),
                ROW_MAJOR)
            np.testing.assert_array_equal(d1688[rows], d884)

    def test_16816_f32_close_to_two_chained_1688_f32(self):
        # FP32 accumulation is not associative, so the native k=16 reduction
        # and two chained k=8 steps may differ in the last ulp -- but only
        # there.  (This is why cross-generation FP32 GEMMs agree to rounding
        # while FP16-accumulate results need the per-w_k oracle.)
        a = rand_half((16, 16), 30)
        b = rand_half((16, 8), 31)
        c = np.random.default_rng(32).normal(size=(16, 8)).astype(np.float32)
        one = mma.mma_16x8x16(a, b, c, accumulate_f32=True)
        lo = mma.mma_16x8x8(a[:, :8], b[:8], c, accumulate_f32=True)
        two = mma.mma_16x8x8(a[:, 8:], b[8:], lo, accumulate_f32=True)
        np.testing.assert_allclose(one, two, rtol=1e-5)
