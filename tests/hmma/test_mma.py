"""Tests for the functional HMMA semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hmma import (
    COL_MAJOR,
    ROW_MAJOR,
    fragment_to_matrix,
    fragments_f32_to_matrix16x8,
    fragments_to_matrix16x8,
    matrix16x8_to_fragments,
    matrix16x8_to_fragments_f32,
    matrix_to_fragment,
    mma,
)


def rand_half(shape, seed):
    rng = np.random.default_rng(seed)
    return rng.uniform(-2, 2, size=shape).astype(np.float16)


class TestMatrixReference:
    def test_identity_b(self):
        a = rand_half((16, 8), 0)
        c = np.zeros((16, 8), np.float16)
        d = mma.mma_16x8x8(a, np.eye(8, dtype=np.float16), c, accumulate_f32=False)
        np.testing.assert_array_equal(d, a)

    def test_accumulation(self):
        a = np.ones((16, 8), np.float16)
        b = np.ones((8, 8), np.float16)
        c = np.full((16, 8), 2.0, np.float16)
        d = mma.mma_16x8x8(a, b, c, accumulate_f32=False)
        assert np.all(d == 10.0)  # 8 + 2

    def test_f32_keeps_precision(self):
        # 2048 + 1 is exactly representable in f32 but not f16.
        a = np.zeros((16, 8), np.float16)
        a[:, 0] = 1.0
        b = np.zeros((8, 8), np.float16)
        b[0, 0] = 1.0
        c = np.full((16, 8), 2048.0, np.float32)
        d32 = mma.mma_16x8x8(a, b, c, accumulate_f32=True)
        assert d32[0, 0] == 2049.0
        d16 = mma.mma_16x8x8(a, b, c.astype(np.float16), accumulate_f32=False)
        assert d16[0, 0] == 2048.0  # rounded back to f16

    def test_shape_check(self):
        with pytest.raises(ValueError):
            mma.mma_16x8x8(
                np.zeros((8, 8)), np.zeros((8, 8)), np.zeros((16, 8)), False
            )


class TestHmma1688F16:
    def _run(self, a, b, c):
        d_regs = mma.hmma_1688_f16(
            matrix16x8_to_fragments(a),
            matrix_to_fragment(b, COL_MAJOR),
            matrix16x8_to_fragments(c),
        )
        return fragments_to_matrix16x8(d_regs)

    def test_matches_reference(self):
        a = rand_half((16, 8), 1)
        b = rand_half((8, 8), 2)
        c = rand_half((16, 8), 3)
        np.testing.assert_array_equal(
            self._run(a, b, c), mma.mma_16x8x8(a, b, c, accumulate_f32=False)
        )

    def test_zero_inputs(self):
        z16 = np.zeros((16, 8), np.float16)
        z8 = np.zeros((8, 8), np.float16)
        assert np.all(self._run(z16, z8, z16) == 0)

    def test_b_is_consumed_column_major(self):
        # If B were (incorrectly) gathered row-major the result would be A @ B^T.
        a = np.zeros((16, 8), np.float16)
        a[0, 0] = 1.0
        b = np.zeros((8, 8), np.float16)
        b[0, 3] = 5.0  # row 0, col 3
        d = self._run(a, b, np.zeros((16, 8), np.float16))
        assert d[0, 3] == 5.0
        assert d[3, 0] == 0.0

    @settings(max_examples=25)
    @given(st.integers(0, 10_000))
    def test_random_matches_numpy_f32_rounded(self, seed):
        a = rand_half((16, 8), seed)
        b = rand_half((8, 8), seed + 1)
        c = rand_half((16, 8), seed + 2)
        expected = (
            a.astype(np.float32) @ b.astype(np.float32) + c.astype(np.float32)
        ).astype(np.float16)
        np.testing.assert_array_equal(self._run(a, b, c), expected)


class TestHmma1688F32:
    def test_matches_reference(self):
        a = rand_half((16, 8), 4)
        b = rand_half((8, 8), 5)
        rng = np.random.default_rng(6)
        c = rng.normal(size=(16, 8)).astype(np.float32)
        d_regs = mma.hmma_1688_f32(
            matrix16x8_to_fragments(a),
            matrix_to_fragment(b, COL_MAJOR),
            matrix16x8_to_fragments_f32(c),
        )
        got = fragments_f32_to_matrix16x8(d_regs)
        expected = a.astype(np.float32) @ b.astype(np.float32) + c
        np.testing.assert_allclose(got, expected, rtol=0, atol=0)

    def test_higher_accuracy_than_f16_chain(self):
        # Accumulating 0.0009765625 (2^-10) onto 64.0: f16 ulp at 64 is 1/16,
        # so an f16 accumulator drops it; f32 keeps it.
        a = np.zeros((16, 8), np.float16)
        a[0, 0] = 1.0
        b = np.zeros((8, 8), np.float16)
        b[0, 0] = np.float16(2**-10)
        c32 = np.full((16, 8), 64.0, np.float32)
        d_regs = mma.hmma_1688_f32(
            matrix16x8_to_fragments(a),
            matrix_to_fragment(b, COL_MAJOR),
            matrix16x8_to_fragments_f32(c32),
        )
        got = fragments_f32_to_matrix16x8(d_regs)
        assert got[0, 0] > 64.0


class TestHmma884:
    def test_matches_reference(self):
        a = rand_half((8, 8), 7)
        b = rand_half((8, 8), 8)
        c = rand_half((8, 8), 9)
        d_reg = mma.hmma_884_f16(
            matrix_to_fragment(a, ROW_MAJOR),
            matrix_to_fragment(b, COL_MAJOR),
            matrix_to_fragment(c, ROW_MAJOR),
        )
        got = fragment_to_matrix(d_reg, ROW_MAJOR)
        expected = (
            a.astype(np.float32) @ b.astype(np.float32) + c.astype(np.float32)
        ).astype(np.float16)
        np.testing.assert_array_equal(got, expected)

    def test_two_884_equal_one_1688(self):
        # HMMA.1688 on [A_top; A_bottom] equals two independent 884s.
        a = rand_half((16, 8), 10)
        b = rand_half((8, 8), 11)
        c = rand_half((16, 8), 12)
        d1688 = fragments_to_matrix16x8(
            mma.hmma_1688_f16(
                matrix16x8_to_fragments(a),
                matrix_to_fragment(b, COL_MAJOR),
                matrix16x8_to_fragments(c),
            )
        )
        for half in range(2):
            d884 = fragment_to_matrix(
                mma.hmma_884_f16(
                    matrix_to_fragment(a[8 * half : 8 * half + 8], ROW_MAJOR),
                    matrix_to_fragment(b, COL_MAJOR),
                    matrix_to_fragment(c[8 * half : 8 * half + 8], ROW_MAJOR),
                ),
                ROW_MAJOR,
            )
            np.testing.assert_array_equal(d1688[8 * half : 8 * half + 8], d884)


class TestFlopAccounting:
    def test_hmma_flops_constant(self):
        assert mma.HMMA_1688_FLOPS == 2048
