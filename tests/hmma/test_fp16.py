"""Unit tests for half-precision helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hmma import fp16


class TestAsHalf:
    def test_converts_float64(self):
        out = fp16.as_half([1.0, 2.5, -3.25])
        assert out.dtype == np.float16
        np.testing.assert_array_equal(out, np.array([1.0, 2.5, -3.25], np.float16))

    def test_passthrough_no_copy(self):
        src = np.ones(8, dtype=np.float16)
        out = fp16.as_half(src)
        assert out is src

    def test_rounds_to_nearest_even(self):
        # 2048 + 1 is not representable in fp16 (ulp at 2048 is 2) -> rounds to 2048.
        assert float(fp16.as_half([2049.0])[0]) == 2048.0
        assert float(fp16.as_half([2051.0])[0]) == 2052.0

    def test_overflow_to_inf(self):
        assert np.isinf(fp16.as_half([1e6])[0])


class TestBitCasts:
    def test_known_patterns(self):
        assert int(fp16.half_bits([1.0])[0]) == 0x3C00
        assert int(fp16.half_bits([-2.0])[0]) == 0xC000
        assert int(fp16.half_bits([0.0])[0]) == 0x0000

    def test_roundtrip(self):
        bits = np.arange(0, 0x7C00, 97, dtype=np.uint16)  # finite positives
        vals = fp16.bits_to_half(bits)
        np.testing.assert_array_equal(fp16.half_bits(vals), bits)


class TestPackHalf2:
    def test_pack_order(self):
        word = fp16.pack_half2([1.0], [-2.0])
        assert int(word[0]) == (0xC000 << 16) | 0x3C00

    def test_unpack_roundtrip(self):
        lo = np.array([0.5, 1.5, -7.0], np.float16)
        hi = np.array([2.0, -0.125, 64.0], np.float16)
        got_lo, got_hi = fp16.unpack_half2(fp16.pack_half2(lo, hi))
        np.testing.assert_array_equal(got_lo, lo)
        np.testing.assert_array_equal(got_hi, hi)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="matching shapes"):
            fp16.pack_half2(np.zeros(3, np.float16), np.zeros(4, np.float16))

    @given(
        st.lists(
            st.floats(min_value=-1000, max_value=1000, width=16),
            min_size=1,
            max_size=64,
        )
    )
    def test_pack_unpack_property(self, values):
        arr = np.array(values, dtype=np.float16)
        lo, hi = fp16.unpack_half2(fp16.pack_half2(arr, arr[::-1].copy()))
        np.testing.assert_array_equal(lo, arr)
        np.testing.assert_array_equal(hi, arr[::-1])


class TestUlpDistance:
    def test_zero_for_equal(self):
        vals = np.array([0.0, 1.0, -3.5], np.float16)
        assert np.all(fp16.ulp_distance(vals, vals) == 0)

    def test_adjacent_values(self):
        one = np.float16(1.0)
        next_up = np.nextafter(one, np.float16(2.0), dtype=np.float16)
        assert int(fp16.ulp_distance([one], [next_up])[0]) == 1

    def test_across_zero(self):
        tiny = fp16.bits_to_half(np.array([1], np.uint16))  # smallest subnormal
        neg_tiny = -tiny
        assert int(fp16.ulp_distance(tiny, neg_tiny)[0]) == 2

    def test_symmetry(self):
        a = np.array([1.5], np.float16)
        b = np.array([1.75], np.float16)
        assert fp16.ulp_distance(a, b) == fp16.ulp_distance(b, a)


class TestGemmFlops:
    def test_standard_convention(self):
        assert fp16.gemm_flops(16, 8, 8) == 2048

    def test_zero_dim(self):
        assert fp16.gemm_flops(0, 128, 128) == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            fp16.gemm_flops(-1, 2, 3)

    def test_paper_square(self):
        # 16384^3 square GEMM ~ 8.8 TFLOP, the largest point in Fig. 6.
        assert fp16.gemm_flops(16384, 16384, 16384) == 2 * 16384**3
