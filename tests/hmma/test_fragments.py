"""Unit + property tests for the Fig. 1 / Fig. 2 fragment layouts."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hmma import fragments as fr


def random_half(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(-4, 4, size=shape).astype(np.float16)


class TestLaneOfElement:
    def test_row_major_matches_fig1_left(self):
        # Fig. 1 (left): row r holds lanes 4r..4r+3, two elements per lane.
        assert fr.lane_of_element(0, 0, fr.ROW_MAJOR) == (0, 0)
        assert fr.lane_of_element(0, 1, fr.ROW_MAJOR) == (0, 1)
        assert fr.lane_of_element(0, 7, fr.ROW_MAJOR) == (3, 1)
        assert fr.lane_of_element(1, 0, fr.ROW_MAJOR) == (4, 0)
        assert fr.lane_of_element(7, 6, fr.ROW_MAJOR) == (31, 0)
        assert fr.lane_of_element(7, 7, fr.ROW_MAJOR) == (31, 1)

    def test_col_major_matches_fig1_right(self):
        # Fig. 1 (right): column c holds lanes 4c..4c+3, two row-elements per lane.
        assert fr.lane_of_element(0, 0, fr.COL_MAJOR) == (0, 0)
        assert fr.lane_of_element(1, 0, fr.COL_MAJOR) == (0, 1)
        assert fr.lane_of_element(2, 0, fr.COL_MAJOR) == (1, 0)
        assert fr.lane_of_element(0, 1, fr.COL_MAJOR) == (4, 0)
        assert fr.lane_of_element(6, 7, fr.COL_MAJOR) == (31, 0)
        assert fr.lane_of_element(7, 7, fr.COL_MAJOR) == (31, 1)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            fr.lane_of_element(8, 0, fr.ROW_MAJOR)
        with pytest.raises(ValueError):
            fr.lane_of_element(0, -1, fr.COL_MAJOR)

    def test_bad_order_raises(self):
        with pytest.raises(ValueError, match="order"):
            fr.lane_of_element(0, 0, "diagonal")


class TestElementsOfLane:
    @pytest.mark.parametrize("order", [fr.ROW_MAJOR, fr.COL_MAJOR])
    def test_inverse_of_lane_of_element(self, order):
        for lane in range(fr.WARP_SIZE):
            (lo, hi) = fr.elements_of_lane(lane, order)
            assert fr.lane_of_element(*lo, order) == (lane, 0)
            assert fr.lane_of_element(*hi, order) == (lane, 1)

    @pytest.mark.parametrize("order", [fr.ROW_MAJOR, fr.COL_MAJOR])
    def test_every_element_owned_exactly_once(self, order):
        seen = set()
        for lane in range(fr.WARP_SIZE):
            for rc in fr.elements_of_lane(lane, order):
                assert rc not in seen
                seen.add(rc)
        assert len(seen) == 64

    def test_bad_lane_raises(self):
        with pytest.raises(ValueError):
            fr.elements_of_lane(32, fr.ROW_MAJOR)


class TestLaneMap:
    def test_row_major_grid(self):
        layout = fr.lane_map(fr.ROW_MAJOR)
        expected_first_row = [0, 0, 1, 1, 2, 2, 3, 3]
        assert list(layout.lanes[0]) == expected_first_row
        assert list(layout.halves[0]) == [0, 1] * 4

    def test_col_major_grid(self):
        layout = fr.lane_map(fr.COL_MAJOR)
        expected_first_col = [0, 0, 1, 1, 2, 2, 3, 3]
        assert list(layout.lanes[:, 0]) == expected_first_col
        assert list(layout.halves[:, 0]) == [0, 1] * 4

    def test_render_row_major_matches_paper(self):
        text = fr.lane_map(fr.ROW_MAJOR).render()
        rows = [line.split() for line in text.splitlines()]
        assert rows[0] == ["0", "1", "2", "3"]
        assert rows[-1] == ["28", "29", "30", "31"]

    def test_render_col_major_matches_paper(self):
        text = fr.lane_map(fr.COL_MAJOR).render()
        rows = [line.split() for line in text.splitlines()]
        assert rows[0] == ["0", "4", "8", "12", "16", "20", "24", "28"]
        assert rows[-1] == ["3", "7", "11", "15", "19", "23", "27", "31"]


class TestFragmentRoundTrip:
    @pytest.mark.parametrize("order", [fr.ROW_MAJOR, fr.COL_MAJOR])
    def test_roundtrip_identity(self, order):
        mat = random_half((8, 8), seed=7)
        words = fr.matrix_to_fragment(mat, order)
        assert words.shape == (32,)
        assert words.dtype == np.uint32
        np.testing.assert_array_equal(fr.fragment_to_matrix(words, order), mat)

    def test_row_and_col_give_different_scatter(self):
        mat = np.arange(64, dtype=np.float16).reshape(8, 8)
        row_words = fr.matrix_to_fragment(mat, fr.ROW_MAJOR)
        col_words = fr.matrix_to_fragment(mat, fr.COL_MAJOR)
        assert not np.array_equal(row_words, col_words)

    def test_cross_order_transposes(self):
        # Scattering M row-major then gathering col-major yields M^T.
        mat = random_half((8, 8), seed=3)
        words = fr.matrix_to_fragment(mat, fr.ROW_MAJOR)
        got = fr.fragment_to_matrix(words, fr.COL_MAJOR)
        np.testing.assert_array_equal(got, mat.T)

    def test_wrong_shape_raises(self):
        with pytest.raises(ValueError):
            fr.matrix_to_fragment(np.zeros((4, 4), np.float16), fr.ROW_MAJOR)
        with pytest.raises(ValueError):
            fr.fragment_to_matrix(np.zeros(31, np.uint32), fr.ROW_MAJOR)

    @settings(max_examples=30)
    @given(st.integers(0, 2**31 - 1), st.sampled_from([fr.ROW_MAJOR, fr.COL_MAJOR]))
    def test_roundtrip_property(self, seed, order):
        mat = random_half((8, 8), seed=seed)
        got = fr.fragment_to_matrix(fr.matrix_to_fragment(mat, order), order)
        np.testing.assert_array_equal(got, mat)


class Test16x8Fragments:
    def test_roundtrip(self):
        mat = random_half((16, 8), seed=11)
        regs = fr.matrix16x8_to_fragments(mat)
        assert regs.shape == (2, 32)
        np.testing.assert_array_equal(fr.fragments_to_matrix16x8(regs), mat)

    def test_register_split_top_bottom(self):
        mat = np.zeros((16, 8), np.float16)
        mat[:8] = 1.0
        regs = fr.matrix16x8_to_fragments(mat)
        top = fr.fragment_to_matrix(regs[0], fr.ROW_MAJOR)
        bottom = fr.fragment_to_matrix(regs[1], fr.ROW_MAJOR)
        assert np.all(top == 1.0)
        assert np.all(bottom == 0.0)

    def test_wrong_shape_raises(self):
        with pytest.raises(ValueError):
            fr.matrix16x8_to_fragments(np.zeros((8, 8), np.float16))
        with pytest.raises(ValueError):
            fr.fragments_to_matrix16x8(np.zeros((3, 32), np.uint32))


class TestF32Fragments:
    def test_roundtrip(self):
        rng = np.random.default_rng(5)
        mat = rng.normal(size=(16, 8)).astype(np.float32)
        regs = fr.matrix16x8_to_fragments_f32(mat)
        assert regs.shape == (4, 32)
        np.testing.assert_array_equal(fr.fragments_f32_to_matrix16x8(regs), mat)

    def test_register_pair_promotion(self):
        # Element (0, 0) lives in the low half of .F16 reg 0 => .F32 reg 0;
        # element (0, 1) in the high half => .F32 reg 1; both in lane 0.
        mat = np.zeros((16, 8), np.float32)
        mat[0, 0] = 2.0
        mat[0, 1] = 3.0
        regs = fr.matrix16x8_to_fragments_f32(mat)
        assert regs[0, 0].view(np.float32) == np.float32(2.0)
        assert regs[1, 0].view(np.float32) == np.float32(3.0)

    def test_wrong_shape_raises(self):
        with pytest.raises(ValueError):
            fr.matrix16x8_to_fragments_f32(np.zeros((16, 16), np.float32))
        with pytest.raises(ValueError):
            fr.fragments_f32_to_matrix16x8(np.zeros((2, 32), np.uint32))


class TestOperandLayouts:
    def test_fig2_operand_table(self):
        layouts = fr.hmma_operand_layouts()
        assert layouts["D"] == ((16, 8), fr.ROW_MAJOR, 2)
        assert layouts["A"] == ((16, 8), fr.ROW_MAJOR, 2)
        assert layouts["B"] == ((8, 8), fr.COL_MAJOR, 1)
        assert layouts["C"] == ((16, 8), fr.ROW_MAJOR, 2)

    def test_total_register_budget(self):
        # One HMMA.1688.F16 touches 2 + 2 + 1 + 2 = 7 warp registers.
        layouts = fr.hmma_operand_layouts()
        assert sum(regs for _, _, regs in layouts.values()) == 7
