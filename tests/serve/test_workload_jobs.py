"""The workloads/numerics serve job kinds: execution, keys, JSON safety."""

import json

import pytest

from repro.serve.jobs import JOB_KINDS, cacheable, job_key, run_job


class TestWorkloadsJob:
    def test_registered_and_cacheable(self):
        assert "workloads" in JOB_KINDS
        assert cacheable("workloads", {"suite": "smoke"})

    def test_runs_smoke_suite(self):
        result = run_job("workloads", {"suite": "smoke",
                                       "spec": {"device": "RTX2070"}})
        assert result["passed"] is True
        assert result["suite"] == "smoke"
        assert result["device"] == "RTX2070"
        assert len(result["results"]) == 4
        assert all(r["exact"] for r in result["results"])
        json.dumps(result)  # the daemon ships this over JSON

    def test_key_separates_suite_and_device(self):
        base = job_key("workloads", {"suite": "smoke",
                                     "spec": {"device": "RTX2070"}})
        assert job_key("workloads", {"suite": "lstm",
                                     "spec": {"device": "RTX2070"}}) != base
        assert job_key("workloads", {"suite": "smoke",
                                     "spec": {"device": "T4"}}) != base
        assert job_key("workloads", {"suite": "smoke",
                                     "spec": {"device": "RTX2070"}}) == base

    def test_unknown_suite_raises(self):
        with pytest.raises(KeyError, match="unknown workload suite"):
            run_job("workloads", {"suite": "nope"})


class TestNumericsJob:
    def test_runs_and_is_json_safe(self):
        result = run_job("numerics", {"spec": {"device": "RTX2070"},
                                      "ks": [32, 64, 128, 256]})
        assert result["reproduced"] is True
        assert result["f16_digest"] and result["f32_digest"]
        assert "REPRODUCED" in result["summary"]
        # f16 + f32 curves, one sample per K each.
        assert len(result["samples"]) == 8
        json.dumps(result)

    def test_volta_has_no_f32_curve(self):
        result = run_job("numerics", {"spec": {"device": "V100"},
                                      "ks": [32, 64, 128, 256]})
        assert result["reproduced"] is True
        assert result["f32_digest"] is None
        assert len(result["samples"]) == 4

    def test_key_depends_on_ks_and_distribution(self):
        base = job_key("numerics", {"spec": {"device": "RTX2070"},
                                    "ks": [32, 64]})
        assert job_key("numerics", {"spec": {"device": "RTX2070"},
                                    "ks": [32, 128]}) != base
        assert job_key("numerics", {"spec": {"device": "RTX2070"},
                                    "ks": [32, 64],
                                    "distribution": "normal"}) != base
