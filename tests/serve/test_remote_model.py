"""PerformanceModel's remote (daemon-backed) profile path."""

import pytest

from repro.analysis import PerformanceModel
from repro.arch import RTX2070
from repro.core import cublas_like, ours
from repro.serve import ServeDaemon


@pytest.fixture()
def scratch_env(tmp_path, monkeypatch):
    from repro.perf.cache import PROFILE_CACHE

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    # The singleton's memory layer outlives the scratch dir; drop it so
    # profile lookups really exercise the remote/disk paths under test.
    PROFILE_CACHE._memory.clear()
    return tmp_path


@pytest.fixture()
def daemon(scratch_env):
    d = ServeDaemon(str(scratch_env / "model.sock"), workers=2)
    d.start()
    yield d
    d.stop()


def test_remote_profile_matches_local(daemon):
    remote_pm = PerformanceModel(RTX2070, remote=daemon.socket_path)
    remote_profile = remote_pm.sm_profile(ours())
    assert daemon.queue.executed == 1  # it really went through the daemon
    local_profile = PerformanceModel(RTX2070).sm_profile(ours())
    assert remote_profile == local_profile
    # Estimates built on the remote profile match local ones bit for bit.
    remote_est = remote_pm.estimate(ours(), 2048, 2048, 2048)
    local_est = PerformanceModel(RTX2070).estimate(ours(), 2048, 2048, 2048)
    assert remote_est == local_est


def test_profile_many_batches_through_daemon(daemon):
    pm = PerformanceModel(RTX2070, remote=daemon.socket_path)
    profiles = pm.profile_many([ours(), cublas_like()])
    assert len(profiles) == 2
    assert daemon.queue.executed == 2
    reference = PerformanceModel(RTX2070)
    assert profiles == reference.profile_many([ours(), cublas_like()])


def test_unreachable_daemon_degrades_in_process(scratch_env, capsys):
    pm = PerformanceModel(RTX2070,
                          remote=str(scratch_env / "nowhere.sock"))
    profile = pm.sm_profile(ours())
    assert pm.remote is None  # degraded for the model's lifetime
    assert "warning" in capsys.readouterr().err
    assert profile == PerformanceModel(RTX2070).sm_profile(ours())


def test_autotune_accepts_remote(daemon):
    from repro.analysis import autotune

    result = autotune(RTX2070, 1024, 1024, 1024,
                      remote=daemon.socket_path)
    local = autotune(RTX2070, 1024, 1024, 1024)
    assert daemon.queue.executed >= 1
    assert result.best == local.best
    assert result.best_tflops == local.best_tflops
