"""CLI-level service smoke test: the exact sequence the CI leg runs.

Start a real background daemon via ``repro serve``, fire a batch of 8
duplicate submissions at it, and require: >= 7 coalesced, one execution,
results identical to an in-process run, clean stop with the socket gone.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.serve import ServeClient, daemon_available


def _cli_env(tmp_path):
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CACHE_DIR"] = str(tmp_path)
    env.pop("REPRO_NO_CACHE", None)
    env.pop("REPRO_CHAOS", None)
    return env


def _cli(env, *argv, timeout=120):
    return subprocess.run([sys.executable, "-m", "repro", *argv],
                          capture_output=True, text=True, env=env,
                          timeout=timeout)


def test_service_smoke(tmp_path):
    env = _cli_env(tmp_path)
    sock = str(tmp_path / "smoke.sock")

    started = _cli(env, "serve", "start", "--socket", sock, "--workers", "2")
    assert started.returncode == 0, started.stderr
    assert daemon_available(sock)
    try:
        payload = {"m": 64, "n": 64, "k": 32, "kernel": "ours", "seed": 0}
        with ServeClient(sock, tenant="smoke") as client:
            views = client.batch_submit(
                [{"kind": "hgemm", "payload": payload}] * 8)
            finals = [client.wait(v["job_id"], timeout=300) for v in views]
            stats = client.stats()

        assert sum(v["coalesced"] for v in views) >= 7
        assert stats["executed"] == 1
        assert stats["coalesced"] >= 7
        assert all(v["state"] == "done" for v in finals)
        assert all(v["result"]["exact"] for v in finals)
        assert len({v["result"]["c_sha256"] for v in finals}) == 1

        # The daemon-computed digest must match an in-process run's.
        import numpy as np

        from repro.core import hgemm
        from repro.perf.cache import content_key

        rng = np.random.default_rng(payload["seed"])
        a = rng.uniform(-1, 1, (64, 32)).astype(np.float16)
        b = rng.uniform(-1, 1, (32, 64)).astype(np.float16)
        local = hgemm(a, b, kernel="ours")
        local_sha = content_key(np.ascontiguousarray(local).tobytes())
        assert finals[0]["result"]["c_sha256"] == local_sha

        status = _cli(env, "serve", "status", "--socket", sock)
        assert status.returncode == 0 and "protocol 1" in status.stdout
    finally:
        stopped = _cli(env, "serve", "stop", "--socket", sock)
    assert stopped.returncode == 0, stopped.stderr
    deadline = time.time() + 10
    while os.path.exists(sock) and time.time() < deadline:
        time.sleep(0.05)
    assert not os.path.exists(sock), "daemon left its socket behind"
    assert not daemon_available(sock)
