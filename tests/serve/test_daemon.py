"""End-to-end tests of the in-process daemon: correctness, coalescing,
per-request stats, cache hits, disconnect survival, fault injection."""

import socket
import threading

import numpy as np
import pytest

from repro.serve import (
    JobFailed,
    ServeClient,
    ServeDaemon,
    ServeError,
    ServeUnavailable,
    daemon_available,
)
from repro.serve.protocol import decode_payload, recv_frame, send_frame


@pytest.fixture()
def scratch_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    return tmp_path


@pytest.fixture()
def daemon(scratch_env):
    d = ServeDaemon(str(scratch_env / "test.sock"), workers=2)
    d.start()
    yield d
    d.stop()


def _hgemm_payload(**over):
    payload = {"m": 64, "n": 64, "k": 16, "kernel": "ours", "seed": 3}
    payload.update(over)
    return payload


class TestBasics:
    def test_ping_and_availability(self, daemon):
        assert daemon_available(daemon.socket_path)
        with ServeClient(daemon.socket_path) as client:
            info = client.ping()
        assert info["ok"] and info["protocol"] == 1

    def test_unreachable_socket_raises(self, scratch_env):
        with pytest.raises(ServeUnavailable):
            with ServeClient(str(scratch_env / "nothing.sock")) as c:
                c.ping()
        assert not daemon_available(str(scratch_env / "nothing.sock"))

    def test_unknown_kind_is_bad_request(self, daemon):
        with ServeClient(daemon.socket_path) as client:
            with pytest.raises(ServeError) as err:
                client.submit("no-such-kind")
        assert err.value.code == "bad_request"

    def test_job_failure_reported_not_fatal(self, daemon):
        with ServeClient(daemon.socket_path) as client:
            # m not tileable by the kernel -> daemon-side ValueError.
            with pytest.raises(JobFailed):
                client.run("hgemm", _hgemm_payload(m=7))
            # The daemon survives and still serves.
            assert client.ping()["ok"]

    def test_result_matches_inprocess_run(self, daemon):
        from repro.core import hgemm

        payload = _hgemm_payload(return_c=True)
        with ServeClient(daemon.socket_path) as client:
            view = client.run("hgemm", payload)
        served = decode_payload(view["result"]["c"])
        rng = np.random.default_rng(payload["seed"])
        a = rng.uniform(-1, 1, (64, 16)).astype(np.float16)
        b = rng.uniform(-1, 1, (16, 64)).astype(np.float16)
        assert view["result"]["exact"] is True
        assert np.array_equal(served, hgemm(a, b, kernel="ours"))


class TestCoalescing:
    def test_batch_duplicates_execute_once(self, daemon):
        jobs = [{"kind": "hgemm", "payload": _hgemm_payload()}] * 4
        with ServeClient(daemon.socket_path) as client:
            views = client.batch_submit(jobs)
            assert [v["coalesced"] for v in views] == [False, True, True,
                                                       True]
            finals = [client.wait(v["job_id"]) for v in views]
        assert {v["job_id"] for v in finals} == {finals[0]["job_id"]}
        assert all(v["state"] == "done" for v in finals)
        assert daemon.queue.executed == 1
        shas = {v["result"]["c_sha256"] for v in finals}
        assert len(shas) == 1

    def test_noop_twins_share_one_sleep(self, daemon):
        # noop is uncacheable, so dedup can only come from coalescing.
        payload = {"sleep_s": 0.4, "value": 7}
        with ServeClient(daemon.socket_path) as client:
            views = client.batch_submit(
                [{"kind": "noop", "payload": payload}] * 3)
            done = client.wait(views[0]["job_id"])
        assert sum(v["coalesced"] for v in views) == 2
        assert done["waiters"] == 3
        assert done["result"] == {"value": 7}

    def test_cache_hit_on_resubmit(self, daemon):
        payload = _hgemm_payload()
        with ServeClient(daemon.socket_path) as client:
            first = client.run("hgemm", payload)
            again = client.submit("hgemm", payload)
        assert first["cached"] is False
        assert again["cached"] is True and again["state"] == "done"
        assert again["result"]["c_sha256"] == first["result"]["c_sha256"]
        assert daemon.queue.executed == 1  # the resubmit never ran

    def test_return_c_jobs_are_not_cached(self, daemon):
        payload = _hgemm_payload(return_c=True)
        with ServeClient(daemon.socket_path) as client:
            first = client.run("hgemm", payload)
            again = client.run("hgemm", payload)
        assert first["cached"] is False and again["cached"] is False
        assert daemon.queue.executed == 2


class TestStatsAttribution:
    def test_response_carries_scoped_counters(self, daemon):
        with ServeClient(daemon.socket_path) as client:
            view = client.run("hgemm", _hgemm_payload())
        counters = view["stats"]["counters"]
        assert counters.get("func.runs", 0) >= 1
        assert counters.get("func.instructions", 0) > 0
        assert view["result"]["instructions"] <= counters["func.instructions"]

    def test_concurrent_jobs_attribute_separately(self, daemon):
        """Two different jobs running at once must not bleed counters."""
        payloads = [_hgemm_payload(seed=1), _hgemm_payload(seed=2, k=32)]
        views = [None, None]

        def run(slot):
            with ServeClient(daemon.socket_path) as client:
                views[slot] = client.run("hgemm", payloads[slot])

        threads = [threading.Thread(target=run, args=(i,)) for i in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        for view in views:
            counters = view["stats"]["counters"]
            # Each job is charged exactly its own retired instructions --
            # with cross-thread bleed this would be the sum of both jobs.
            assert counters["func.instructions"] == \
                view["result"]["instructions"]
        assert (views[0]["result"]["instructions"]
                != views[1]["result"]["instructions"])

    def test_tenant_aggregation(self, daemon):
        with ServeClient(daemon.socket_path, tenant="acme") as client:
            client.run("hgemm", _hgemm_payload())
            stats = client.stats()
        acme = stats["tenants"]["acme"]
        assert acme["jobs"] == 1
        assert acme["counters"].get("func.runs", 0) >= 1


class TestRobustness:
    def test_client_disconnect_mid_wait_job_completes(self, daemon):
        """A vanished waiter must not kill or orphan its job."""
        payload = _hgemm_payload(seed=9)
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.connect(daemon.socket_path)
        send_frame(raw, {"op": "submit", "kind": "hgemm",
                         "payload": payload, "tenant": "quitter"})
        view = recv_frame(raw)
        assert view["ok"]
        send_frame(raw, {"op": "wait", "job_id": view["job_id"]})
        raw.close()  # hang up while the job runs

        with ServeClient(daemon.socket_path) as client:
            final = client.wait(view["job_id"], timeout=120)
            assert final["state"] == "done"
            # ...and the result was cached for the next tenant.
            again = client.submit("hgemm", payload)
        assert again["cached"] is True

    def test_worker_crash_chaos_is_salvaged(self, daemon, monkeypatch):
        """A supervised worker crash inside a job retries transparently:
        the job still completes, identically, with the crash on its own
        stats record."""
        from repro.core import hgemm

        monkeypatch.setenv("REPRO_CHAOS", "crash_task:0")
        # m=512 -> two CTAs (the builder grows tiles up to 256), so the
        # launch really fans out to worker processes.
        payload = _hgemm_payload(seed=5, m=512, return_c=True, jobs=2)
        with ServeClient(daemon.socket_path) as client:
            view = client.run("hgemm", payload, timeout=300)
        assert view["state"] == "done"
        counters = view["stats"]["counters"]
        assert counters.get("par.crashes", 0) >= 1
        assert counters.get("par.retries", 0) >= 1
        monkeypatch.delenv("REPRO_CHAOS")
        rng = np.random.default_rng(payload["seed"])
        a = rng.uniform(-1, 1, (512, 16)).astype(np.float16)
        b = rng.uniform(-1, 1, (16, 64)).astype(np.float16)
        assert np.array_equal(decode_payload(view["result"]["c"]),
                              hgemm(a, b, kernel="ours"))

    def test_delay_chaos_does_not_change_results(self, daemon, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "delay_task:0,delay_seconds:0.3")
        payload = _hgemm_payload(seed=6, m=512, jobs=2)
        with ServeClient(daemon.socket_path) as client:
            slow = client.run("hgemm", payload, timeout=300)
        monkeypatch.delenv("REPRO_CHAOS")
        with ServeClient(daemon.socket_path) as client:
            # Same key: must be answered from cache, proving the delayed
            # run produced the canonical result.
            again = client.submit("hgemm", payload)
        assert again["cached"] is True
        assert again["result"]["c_sha256"] == slow["result"]["c_sha256"]

    def test_queue_full_is_reported(self, scratch_env):
        import time

        d = ServeDaemon(str(scratch_env / "tiny.sock"), workers=1,
                        queue_max=1)
        d.start()
        try:
            with ServeClient(d.socket_path) as client:
                first = client.submit("noop", {"sleep_s": 1.0, "value": 1})
                # Wait until the worker claims it so it stops counting
                # against the queued-depth bound.
                deadline = time.time() + 5
                while (client.poll(first["job_id"])["state"] != "running"
                       and time.time() < deadline):
                    time.sleep(0.01)
                client.submit("noop", {"sleep_s": 1.0, "value": 2})
                with pytest.raises(ServeError) as err:
                    client.submit("noop", {"sleep_s": 1.0, "value": 3})
            assert err.value.code == "queue_full"
        finally:
            d.stop()

    def test_stop_fails_queued_jobs_and_removes_socket(self, scratch_env):
        import os

        d = ServeDaemon(str(scratch_env / "stop.sock"), workers=1)
        d.start()
        with ServeClient(d.socket_path) as client:
            client.submit("noop", {"sleep_s": 0.5, "value": 0})  # running
            queued = client.submit("noop", {"sleep_s": 0.0, "value": 1})
        d.stop()
        assert not os.path.exists(d.socket_path)
        job = d.queue.get(queued["job_id"])
        assert job.state in ("failed", "done")
        if job.state == "failed":
            assert "stopping" in job.error
