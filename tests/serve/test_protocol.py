"""Unit tests for the serve wire protocol (framing + payload codec)."""

import socket

import numpy as np
import pytest

from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    SPOOL_LIMIT_BYTES,
    decode_payload,
    encode_payload,
    recv_frame,
    send_frame,
)


@pytest.fixture()
def pair():
    a, b = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_round_trip(self, pair):
        a, b = pair
        send_frame(a, {"op": "ping", "n": 3})
        assert recv_frame(b) == {"op": "ping", "n": 3}

    def test_several_frames_in_order(self, pair):
        a, b = pair
        for i in range(5):
            send_frame(a, {"i": i})
        assert [recv_frame(b)["i"] for _ in range(5)] == list(range(5))

    def test_clean_eof_returns_none(self, pair):
        a, b = pair
        a.close()
        assert recv_frame(b) is None

    def test_mid_frame_eof_raises(self, pair):
        a, b = pair
        a.sendall((1000).to_bytes(4, "big") + b'{"tru')
        a.close()
        with pytest.raises(ProtocolError):
            recv_frame(b)

    def test_oversize_frame_rejected(self, pair):
        a, b = pair
        a.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(ProtocolError):
            recv_frame(b)

    def test_garbage_json_raises(self, pair):
        a, b = pair
        body = b"not json at all"
        a.sendall(len(body).to_bytes(4, "big") + body)
        with pytest.raises(ProtocolError):
            recv_frame(b)


class TestPayloadCodec:
    def test_plain_json_passthrough(self):
        obj = {"a": 1, "b": [1.5, "x", None], "c": {"d": True}}
        assert decode_payload(encode_payload(obj)) == obj

    def test_ndarray_inline_round_trip(self):
        arr = np.arange(24, dtype=np.float16).reshape(4, 6)
        out = decode_payload(encode_payload(arr))
        assert out.dtype == arr.dtype
        assert np.array_equal(out, arr)

    def test_ndarray_nested_in_dict(self):
        arr = np.arange(6, dtype=np.int8)
        out = decode_payload(encode_payload({"deep": {"c": arr}}))
        assert np.array_equal(out["deep"]["c"], arr)

    def test_bytes_round_trip(self):
        blob = bytes(range(256))
        assert decode_payload(encode_payload({"b": blob}))["b"] == blob

    def test_large_array_spools_to_file(self, tmp_path):
        arr = np.zeros(SPOOL_LIMIT_BYTES // 2 + 16, dtype=np.uint16)
        arr[-1] = 7
        enc = encode_payload(arr, spool_dir=str(tmp_path))
        assert "__ndfile__" in enc
        spooled = list(tmp_path.iterdir())
        assert len(spooled) == 1
        out = decode_payload(enc)
        assert np.array_equal(out, arr)
        # One-shot: the spool file is consumed by decoding.
        assert not list(tmp_path.iterdir())

    def test_scalars_decay_to_python(self):
        enc = encode_payload({"x": np.int64(3), "y": np.float32(1.5)})
        assert decode_payload(enc) == {"x": 3, "y": 1.5}
