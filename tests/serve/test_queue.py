"""Unit tests for the coalescing priority queue."""

import threading

import pytest

from repro.perf.stats import STATS
from repro.serve.queue import JobQueue, QueueFull, UnknownJob


def _submit(q, key, **kw):
    return q.submit("noop", key, {}, **kw)


class TestAdmission:
    def test_new_job_is_queued_and_inflight(self):
        q = JobQueue()
        job, outcome = _submit(q, "k1")
        assert outcome == "new"
        assert job.state == "queued"
        assert q.depth() == 1
        assert q.inflight() == 1

    def test_priority_order_then_fifo(self):
        q = JobQueue()
        low, _ = _submit(q, "low", priority=0)
        hi1, _ = _submit(q, "hi1", priority=5)
        hi2, _ = _submit(q, "hi2", priority=5)
        assert q.next_job(timeout=0) is hi1
        assert q.next_job(timeout=0) is hi2
        assert q.next_job(timeout=0) is low

    def test_bounded_depth_raises_queue_full(self):
        q = JobQueue(max_depth=2)
        _submit(q, "a")
        _submit(q, "b")
        with pytest.raises(QueueFull):
            _submit(q, "c")

    def test_running_jobs_do_not_count_against_depth(self):
        q = JobQueue(max_depth=1)
        _submit(q, "a")
        assert q.next_job(timeout=0).key == "a"  # claimed -> depth frees
        _submit(q, "b")  # must not raise

    def test_timeout_returns_none(self):
        q = JobQueue()
        assert q.next_job(timeout=0) is None


class TestCoalescing:
    def test_twin_attaches_and_counts(self):
        q = JobQueue()
        before = STATS.counters.get("serve.coalesced", 0)
        first, _ = _submit(q, "k")
        twin, outcome = _submit(q, "k")
        assert outcome == "coalesced"
        assert twin is first
        assert first.waiters == 2
        assert q.depth() == 1  # one queued job, not two
        assert STATS.counters.get("serve.coalesced", 0) == before + 1

    def test_coalesces_onto_running_job(self):
        q = JobQueue()
        first, _ = _submit(q, "k")
        assert q.next_job(timeout=0) is first
        twin, outcome = _submit(q, "k")
        assert outcome == "coalesced" and twin is first

    def test_completed_key_admits_a_fresh_job(self):
        q = JobQueue()
        first, _ = _submit(q, "k")
        q.next_job(timeout=0)
        q.complete(first, {"v": 1})
        again, outcome = _submit(q, "k")
        assert outcome == "new"
        assert again is not first

    def test_waiter_observes_complete_result_at_wakeup(self):
        """done.set() must be ordered after result/stats publication."""
        q = JobQueue()
        job, _ = _submit(q, "k")
        q.next_job(timeout=0)
        seen = {}

        def waiter():
            job.done.wait(10)
            seen["state"] = job.state
            seen["result"] = job.result
            seen["stats"] = job.stats

        t = threading.Thread(target=waiter)
        t.start()
        q.complete(job, {"v": 42}, {"counters": {"sim.runs": 1}})
        t.join(timeout=10)
        assert seen == {"state": "done", "result": {"v": 42},
                        "stats": {"counters": {"sim.runs": 1}}}


class TestLifecycle:
    def test_fail_publishes_error_and_counts(self):
        q = JobQueue()
        job, _ = _submit(q, "k")
        q.next_job(timeout=0)
        q.fail(job, "boom")
        assert job.state == "failed"
        assert job.done.is_set()
        assert q.failed == 1
        assert job.public()["error"] == "boom"
        assert q.inflight() == 0

    def test_record_cached_is_born_done(self):
        q = JobQueue()
        job = q.record_cached("noop", "k", {}, {"v": 9})
        assert job.state == "done" and job.cached
        assert job.done.is_set()
        assert q.inflight() == 0  # never coalescable: it never ran
        assert q.get(job.id).public()["result"] == {"v": 9}

    def test_unknown_job_raises(self):
        q = JobQueue()
        with pytest.raises(UnknownJob):
            q.get("job-999")

    def test_done_ring_retention_bounded(self, monkeypatch):
        import repro.serve.queue as queue_mod

        monkeypatch.setattr(queue_mod, "_DONE_RETENTION", 3)
        q = JobQueue()
        ids = []
        for i in range(5):
            job, _ = _submit(q, f"k{i}")
            q.next_job(timeout=0)
            q.complete(job, {})
            ids.append(job.id)
        with pytest.raises(UnknownJob):
            q.get(ids[0])  # oldest forgotten
        assert q.get(ids[-1]).state == "done"

    def test_public_hides_result_until_done(self):
        q = JobQueue()
        job, _ = _submit(q, "k")
        view = job.public()
        assert "result" not in view and "error" not in view
        assert view["state"] == "queued"
