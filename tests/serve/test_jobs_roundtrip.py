"""Dataclass round-trips across the serve JSON protocol.

GpuSpec / KernelConfig dicts feed the coalescing keys, so a lossy trip
would split cache identities between client and daemon.  Registry devices
travel by *name* (stable across recalibrations); custom specs travel as
full dicts and must rebuild their nested ``MemoryCpiTable`` and
``ArchSpec`` values.
"""

import dataclasses
import json

import pytest

from repro.arch.family import SM70
from repro.arch.turing import A100, RTX2070, T4, V100
from repro.core.config import ours
from repro.serve.jobs import (
    config_from_dict,
    config_to_dict,
    spec_from_dict,
    spec_to_dict,
)


class TestSpecRoundTrip:
    @pytest.mark.parametrize("spec", [RTX2070, T4, V100, A100],
                             ids=lambda s: s.name)
    def test_registry_device_travels_by_name(self, spec):
        data = spec_to_dict(spec)
        assert data == {"device": spec.name}
        json.dumps(data)  # must be JSON-serialisable
        assert spec_from_dict(data) == spec

    def test_unknown_device_is_a_clear_error(self):
        with pytest.raises(ValueError, match="unknown device 'H100'"):
            spec_from_dict({"device": "H100"})

    def test_unknown_device_error_lists_known(self):
        with pytest.raises(ValueError, match="A100.*RTX2070.*T4.*V100"):
            spec_from_dict({"device": "GTX480"})

    def test_custom_spec_travels_as_full_dict(self):
        custom = dataclasses.replace(V100, name="V100-underclocked",
                                     clock_ghz=1.2)
        data = spec_to_dict(custom)
        assert "device" not in data
        assert data["arch"]["name"] == "volta"
        rebuilt = spec_from_dict(json.loads(json.dumps(data)))
        assert rebuilt == custom
        assert rebuilt.arch == SM70
        # Nested tables must come back as real dataclasses, not dicts.
        assert rebuilt.lds_cpi.cpi(64) == custom.lds_cpi.cpi(64)

    def test_renamed_registry_spec_is_not_collapsed(self):
        # A custom spec that merely *shares* a registry name but differs
        # in content must not be silently replaced by the registry entry.
        tweaked = dataclasses.replace(RTX2070, num_sms=20)
        data = spec_to_dict(tweaked)
        assert "device" not in data
        assert spec_from_dict(data) == tweaked


class TestConfigRoundTrip:
    def test_config_survives_json(self):
        cfg = ours()
        rebuilt = config_from_dict(json.loads(json.dumps(config_to_dict(cfg))))
        assert rebuilt == cfg
