"""Tests for the repro.robust guard-rail stack."""
