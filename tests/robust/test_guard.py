"""Divergence-watchdog tests.

The centrepiece is the watchdog demo: a chaos-injected bit flip plays the
role of a fast-engine bug, and the guard must catch it, write a reproducer
bundle, degrade the engine ladder, and *still complete the run with the
correct numbers* (asserted against the NumPy oracle / the reference
engine's own output).
"""

import json

import numpy as np
import pytest

from repro.arch import RTX2070
from repro.core.builder import HgemmProblem, build_hgemm
from repro.core.config import ours
from repro.core.hgemm import hgemm, hgemm_reference
from repro.perf.stats import STATS
from repro.robust import chaos, guard
from repro.sim.memory import GlobalMemory
from repro.sim.timing import TimingSimulator


@pytest.fixture(autouse=True)
def clean(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    monkeypatch.delenv("REPRO_GUARD", raising=False)
    monkeypatch.delenv("REPRO_GUARD_BUDGET", raising=False)
    guard.reset()
    chaos.reset()
    STATS.reset()
    yield
    guard.reset()
    chaos.reset()


def _operands(seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((64, 16), dtype=np.float32).astype(np.float16)
    b = rng.standard_normal((16, 64), dtype=np.float32).astype(np.float16)
    return a, b


def _timing_run():
    config = ours()
    problem = HgemmProblem(m=config.b_m, n=config.b_n, k=32,
                           a_addr=0, b_addr=4 << 20, c_addr=8 << 20)
    program = build_hgemm(config, problem, RTX2070)
    return TimingSimulator(RTX2070).run(program, GlobalMemory(16 << 20),
                                        num_ctas=1)


class TestModeResolution:
    def test_default_off(self):
        assert guard.guard_mode() == "off"

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD", "sample")
        assert guard.guard_mode() == "sample"
        assert guard.guard_mode("full") == "full"  # override wins
        assert guard.guard_mode("off") == "off"

    def test_invalid_mode_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD", "sometimes")
        with pytest.raises(ValueError, match="guard mode"):
            guard.guard_mode()


class TestLadders:
    def test_monotone_functional_degradation(self):
        assert guard.effective_func_engine("gridlock") == "gridlock"
        guard._degrade("functional", "gridlock")
        assert guard.effective_func_engine("gridlock") == "lockstep"
        # Requests already below the floor are unchanged.
        assert guard.effective_func_engine("reference") == "reference"
        guard._degrade("functional", "lockstep")
        guard._degrade("functional", "predecoded")
        assert guard.effective_func_engine("gridlock") == "reference"
        # The ladder never resets upward on its own.
        guard._degrade("functional", "gridlock")
        assert guard.effective_func_engine("lockstep") == "reference"

    def test_timing_two_rung_degradation(self):
        assert guard.ff_allowed()
        assert guard.effective_timing_engine("event") == "event"
        guard._degrade("timing", "event")
        assert not guard.ff_allowed()
        assert guard.effective_timing_engine("event") == "event"
        guard._degrade("timing", "event")
        assert guard.effective_timing_engine("event") == "reference"


class TestBudgetSampler:
    def test_full_always_checks(self):
        assert guard._decide("full", run_wall=100.0)

    def test_sample_checks_until_budget_spent(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD_BUDGET", "0.05")
        # A fresh process cannot yet afford a reference re-run (estimated
        # at ~4x the run wall, against a 5% budget): no check.
        assert not guard._decide("sample", run_wall=1.0)
        # Enough accumulated fast wall buys the first check.
        guard._state["total_wall"] = 100.0
        assert guard._decide("sample", run_wall=1.0)
        # Once checks have eaten the budget, sampling stops...
        guard._state["guard_wall"] = 10.0
        assert not guard._decide("sample", run_wall=1.0)
        # ...and frees up again as cheap fast runs accumulate.
        guard._state["total_wall"] = 1000.0
        assert guard._decide("sample", run_wall=1.0)


class TestFunctionalWatchdog:
    def test_divergence_healed_bundle_written_ladder_degraded(
            self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_GUARD", "full")
        monkeypatch.setenv("REPRO_CHAOS", "flip_output:1")
        a, b = _operands()
        out = hgemm(a, b)
        # 1. The run completed with the *correct* numbers.
        assert np.array_equal(out, hgemm_reference(a, b))
        # 2. The watchdog saw and counted the divergence.
        assert STATS.counters.get("guard.checks") == 1
        assert STATS.counters.get("guard.divergences") == 1
        assert STATS.counters.get("guard.degraded") == 1
        # 3. The process degraded one rung (default lockstep -> predecoded).
        report = guard.degradation_report()
        assert report["func_engine_floor"] == "predecoded"
        assert report["bundles_written"] == 1
        # 4. A replayable reproducer bundle exists.
        bundles = list((tmp_path / "divergence").iterdir())
        assert len(bundles) == 1
        bundle = bundles[0]
        assert bundle.name.startswith("functional-")
        meta = json.loads((bundle / "meta.json").read_text())
        assert meta["kind"] == "functional"
        assert meta["digests"]["memory_fast"] != meta["digests"]["memory_reference"]
        assert (bundle / "program.bin").stat().st_size > 0
        pre = np.load(bundle / "memory_pre.npz")["words"]
        assert pre.dtype == np.uint32 and pre.size > 0

    def test_clean_run_checks_without_degrading(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD", "full")
        a, b = _operands(1)
        out = hgemm(a, b)
        assert np.array_equal(out, hgemm_reference(a, b))
        assert STATS.counters.get("guard.checks") == 1
        assert "guard.divergences" not in STATS.counters
        assert guard.degradation_report()["func_engine_floor"] == "gridlock"

    def test_guard_off_param_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD", "full")
        a, b = _operands(2)
        hgemm(a, b, guard="off")
        assert "guard.checks" not in STATS.counters

    def test_degraded_engine_actually_used(self, monkeypatch):
        # After a full functional degradation the floor is the reference
        # engine; runs still work and are no longer guarded (guarding the
        # ground truth would be circular).
        monkeypatch.setenv("REPRO_GUARD", "full")
        for rung in ("gridlock", "lockstep", "predecoded"):
            guard._degrade("functional", rung)
        a, b = _operands(3)
        out = hgemm(a, b)
        assert np.array_equal(out, hgemm_reference(a, b))
        assert "guard.checks" not in STATS.counters


class TestTimingWatchdog:
    def test_two_divergences_walk_both_rungs(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_GUARD", "full")
        monkeypatch.setenv("REPRO_CHAOS", "flip_output:2")
        r1 = _timing_run()
        assert guard.degradation_report()["timing_fast_forward"] \
            == "off (degraded)"
        r2 = _timing_run()
        assert guard.degradation_report()["timing_engine_floor"] \
            == "reference"
        # Healed results: both divergent runs report the reference numbers.
        r3 = _timing_run()  # now on the reference floor, unguarded
        assert r1 == r2 == r3
        assert STATS.counters.get("guard.divergences") == 2
        bundles = sorted(p.name for p in (tmp_path / "divergence").iterdir())
        assert len(bundles) == 2
        assert all(name.startswith("timing-") for name in bundles)

    def test_clean_timing_run_passes(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD", "full")
        r = _timing_run()
        assert r.cycles > 0
        assert STATS.counters.get("guard.checks") == 1
        assert "guard.divergences" not in STATS.counters
        assert guard.ff_allowed()
