"""Unit tests for the deterministic fault-injection layer."""

import numpy as np
import pytest

from repro.robust import chaos


@pytest.fixture(autouse=True)
def clean(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    chaos.reset()
    yield
    chaos.reset()


class TestParsing:
    def test_inactive_by_default(self):
        assert not chaos.active()
        assert chaos.directives() == {}

    def test_parses_directive_list(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS",
                           "crash_task:2, delay_task:1 ,delay_seconds:0.2")
        assert chaos.active()
        assert chaos.directives() == {
            "crash_task": "2", "delay_task": "1", "delay_seconds": "0.2"}

    def test_reparses_env_every_call(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "crash_task:1")
        assert chaos.directives() == {"crash_task": "1"}
        monkeypatch.setenv("REPRO_CHAOS", "flip_output:3")
        assert chaos.directives() == {"flip_output": "3"}

    def test_garbage_values_never_match(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "crash_task:banana")
        assert not chaos.should_crash(0, 0)


class TestCrashPredicate:
    def test_crash_task_first_attempt_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "crash_task:3")
        assert chaos.should_crash(3, 0)
        assert not chaos.should_crash(3, 1)  # retry runs clean
        assert not chaos.should_crash(2, 0)  # other tasks untouched

    def test_crash_task_always_every_attempt(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "crash_task_always:3")
        assert chaos.should_crash(3, 0)
        assert chaos.should_crash(3, 5)
        assert not chaos.should_crash(4, 0)


class TestCorruptEntry:
    def test_targets_kth_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "corrupt_entry:1")
        paths = []
        for i in range(3):
            p = tmp_path / f"entry{i}.json"
            p.write_text('{"payload": 1}')
            paths.append(p)
        fired = [chaos.maybe_corrupt_entry(p) for p in paths]
        assert fired == [False, True, False]
        assert paths[1].read_bytes().startswith(b"\x00CHAOS\x00")
        assert paths[0].read_text() == '{"payload": 1}'

    def test_inactive_without_directive(self, tmp_path):
        p = tmp_path / "entry.json"
        p.write_text("{}")
        assert not chaos.maybe_corrupt_entry(p)
        assert p.read_text() == "{}"


class TestFlipOutput:
    def test_fires_at_most_count_times(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "flip_output:2")
        words = np.zeros(96, dtype=np.uint32)
        assert chaos.maybe_flip_output(words)
        assert chaos.maybe_flip_output(words)
        assert not chaos.maybe_flip_output(words)  # budget exhausted
        assert words[32] == 0  # flipped twice: back to zero
        words2 = np.zeros(96, dtype=np.uint32)
        chaos.reset()
        assert chaos.maybe_flip_output(words2)
        assert words2[32] == 1

    def test_noop_without_directive(self):
        words = np.zeros(8, dtype=np.uint32)
        assert not chaos.maybe_flip_output(words)
        assert not words.any()
