"""Tests for the reporting helpers."""

from repro.report import ascii_chart, format_comparison, format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbbb"], [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, 2 rows
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        text = format_table(["x"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [(3.14159,)])
        assert "3.14" in text
        assert "3.14159" not in text

    def test_mixed_types(self):
        text = format_table(["a", "b"], [("x", 1.5), (2, "y")])
        assert "1.50" in text and "x" in text and "y" in text


class TestFormatComparison:
    def test_delta_computed(self):
        line = format_comparison("metric", 100.0, 95.0)
        assert "-5.0%" in line
        assert "paper=" in line and "measured=" in line

    def test_positive_delta_signed(self):
        assert "+10.0%" in format_comparison("m", 100.0, 110.0)

    def test_zero_paper_value(self):
        line = format_comparison("m", 0, 5)
        assert "paper=0" in line

    def test_unit_appended(self):
        line = format_comparison("bw", 380.0, 379.7, unit=" GB/s")
        assert "GB/s" in line


class TestFormatSeries:
    def test_columns(self):
        text = format_series([1, 2], {"a": [10, 20], "b": [30, 40]},
                             x_label="W")
        lines = text.splitlines()
        assert lines[0].split("|")[0].strip() == "W"
        assert "10" in text and "40" in text


class TestAsciiChart:
    def test_basic_shape(self):
        text = ascii_chart([0, 1, 2], {"s": [0.0, 1.0, 2.0]},
                           width=20, height=5)
        lines = text.splitlines()
        assert len(lines) == 5 + 3  # grid + axis + x-labels + legend
        assert "*" in text
        assert "s" in lines[-1]

    def test_empty(self):
        assert ascii_chart([], {}) == "(empty)"

    def test_two_series_distinct_marks(self):
        text = ascii_chart([0, 1], {"a": [1, 2], "b": [2, 1]},
                           width=10, height=4)
        assert "*" in text and "o" in text

    def test_y_label_in_legend(self):
        text = ascii_chart([0, 1], {"a": [1, 2]}, y_label="TFLOPS")
        assert "TFLOPS" in text
