"""Smoke tests: the example scripts must run to their final OK.

The heavyweight examples (full sweeps, autotuning) are exercised through
their library entry points elsewhere; here we run the quick ones end to
end as a user would.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "write_sass_by_hand.py",
    "choose_blocking.py",
    # A thin wrapper over repro.workloads: the suite runs functionally at
    # sim scale plus performance-model estimates, so it stays fast.
    "deep_learning_layers.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "OK" in proc.stdout


def test_examples_all_present():
    expected = {
        "quickstart.py", "demystify_tensor_core.py",
        "microbenchmark_memory.py", "choose_blocking.py",
        "deep_learning_layers.py", "write_sass_by_hand.py",
        "autotune_kernel.py",
    }
    assert expected <= {p.name for p in EXAMPLES.glob("*.py")}
