"""Exhaustive/property coverage of the binary encoding across the ISA.

Every opcode, every modifier set in the canonical tables, and randomized
operand/control combinations must survive the 128-bit round trip.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import (
    ControlInfo,
    Imm,
    Instruction,
    MemRef,
    MOD_TABLES,
    OPCODES,
    PT,
    Pred,
    Reg,
    decode_instruction,
    encode_instruction,
)

#: Operand templates per opcode: (dests, srcs) builders.
def _operands_for(opcode, reg):
    def r(i):
        return Reg((reg + i) % 255)

    mem = MemRef(r(1), (reg % 1000) * 4)
    table = {
        "NOP": ((), ()),
        "EXIT": ((), ()),
        "BAR": ((), ()),
        "MOV": ((r(0),), (r(1),)),
        "MOV32I": ((r(0),), (Imm(reg * 7919 % (2**32)),)),
        "IADD3": ((r(0),), (r(1), r(2), r(3))),
        "IMAD": ((r(0),), (r(1), r(2), r(3))),
        "SHF": ((r(0),), (r(1), r(2))),
        "LOP3": ((r(0),), (r(1), r(2))),
        "ISETP": ((Pred(reg % 7), PT), (r(1), r(2), PT)),
        "SEL": ((r(0),), (r(1), r(2), Pred(reg % 7))),
        "S2R": ((r(0),), ()),       # special source added separately
        "CS2R": ((r(0),), ()),
        "HMMA": ((r(0),), (r(2), r(6), r(4))),
        "IMMA": ((r(0),), (r(2), r(6), r(4))),
        "HFMA2": ((r(0),), (r(1), r(2), r(3))),
        "LDG": ((r(0),), (mem,)),
        "STG": ((), (mem, r(2))),
        "LDS": ((r(0),), (mem,)),
        "STS": ((), (mem, r(2))),
        "BRA": ((), ()),
    }
    return table[opcode]


def roundtrip_equal(inst):
    got = decode_instruction(encode_instruction(inst))
    assert got.opcode == inst.opcode
    assert got.mods == inst.mods
    assert got.dests == inst.dests
    assert got.pred == inst.pred
    assert got.ctrl == inst.ctrl
    assert len(got.srcs) == len(inst.srcs)
    for a, b in zip(got.srcs, inst.srcs):
        if isinstance(b, Imm):
            assert isinstance(a, Imm) and a.unsigned == b.unsigned
        else:
            assert a == b
    if inst.target_index is not None:
        assert got.target_index == inst.target_index


class TestEveryOpcodeAndModifier:
    @pytest.mark.parametrize("opcode", sorted(OPCODES))
    def test_all_canonical_modifier_sets(self, opcode):
        from repro.isa.operands import SpecialReg

        for mods in MOD_TABLES[opcode]:
            dests, srcs = _operands_for(opcode, reg=40)
            kwargs = {}
            if opcode in ("S2R", "CS2R"):
                srcs = (SpecialReg("SR_TID.X"),)
            if opcode == "BRA":
                kwargs["target"] = "X"
                kwargs["target_index"] = 5
            inst = Instruction(opcode, dests=dests, srcs=srcs, mods=mods,
                               **kwargs)
            roundtrip_equal(inst)


class TestRandomizedControlAndGuards:
    @settings(max_examples=120)
    @given(
        opcode=st.sampled_from(sorted(OPCODES)),
        reg=st.integers(0, 250),
        stall=st.integers(0, 15),
        wait=st.integers(0, 63),
        wb=st.sampled_from([0, 1, 5, 7]),
        guard=st.one_of(st.none(),
                        st.builds(Pred, st.integers(0, 7), st.booleans())),
    )
    def test_roundtrip(self, opcode, reg, stall, wait, wb, guard):
        from repro.isa.operands import SpecialReg

        dests, srcs = _operands_for(opcode, reg)
        kwargs = {}
        if opcode in ("S2R", "CS2R"):
            srcs = (SpecialReg("SR_CLOCKLO"),)
        if opcode == "BRA":
            kwargs["target"] = "L"
            kwargs["target_index"] = reg
        inst = Instruction(
            opcode, dests=dests, srcs=srcs,
            mods=MOD_TABLES[opcode][reg % len(MOD_TABLES[opcode])],
            pred=guard,
            ctrl=ControlInfo(stall=stall, wait_mask=wait, write_bar=wb),
            **kwargs,
        )
        roundtrip_equal(inst)
