"""Tests for operand types."""

import pytest

from repro.isa import Imm, MemRef, PT, Pred, Reg, RZ, SpecialReg
from repro.isa.operands import PT_INDEX, RZ_INDEX


class TestReg:
    def test_str(self):
        assert str(Reg(0)) == "R0"
        assert str(Reg(254)) == "R254"
        assert str(RZ) == "RZ"

    def test_rz_flag(self):
        assert RZ.is_rz
        assert not Reg(0).is_rz
        assert RZ.index == RZ_INDEX

    def test_offset(self):
        assert Reg(8).offset(3) == Reg(11)

    def test_offset_of_rz_stays_rz(self):
        assert RZ.offset(2) is RZ

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            Reg(256)
        with pytest.raises(ValueError):
            Reg(-1)

    def test_hashable_equality(self):
        assert Reg(5) == Reg(5)
        assert len({Reg(5), Reg(5), Reg(6)}) == 2


class TestPred:
    def test_str(self):
        assert str(Pred(0)) == "P0"
        assert str(Pred(2, negated=True)) == "!P2"
        assert str(PT) == "PT"

    def test_pt(self):
        assert PT.is_pt
        assert PT.index == PT_INDEX

    def test_negate(self):
        assert Pred(1).negate() == Pred(1, negated=True)
        assert Pred(1).negate().negate() == Pred(1)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            Pred(8)


class TestImm:
    def test_unsigned_of_negative(self):
        assert Imm(-1).unsigned == 0xFFFFFFFF
        assert Imm(-2**31).unsigned == 0x80000000

    def test_range_check(self):
        Imm(2**32 - 1)
        with pytest.raises(ValueError):
            Imm(2**32)
        with pytest.raises(ValueError):
            Imm(-(2**31) - 1)

    def test_str_small_decimal(self):
        assert str(Imm(4)) == "4"
        assert str(Imm(255)) == "0xff"


class TestMemRef:
    def test_str(self):
        assert str(MemRef(Reg(4))) == "[R4]"
        assert str(MemRef(Reg(4), 0x80)) == "[R4+0x80]"
        assert str(MemRef(Reg(4), -8)) == "[R4-0x8]"

    def test_offset_range(self):
        MemRef(Reg(0), 2**23 - 1)
        with pytest.raises(ValueError):
            MemRef(Reg(0), 2**23)


class TestSpecialReg:
    def test_known_names(self):
        assert SpecialReg("SR_TID.X").code == 0
        assert SpecialReg("SR_CLOCKLO").code == 7

    def test_roundtrip_code(self):
        for name in ("SR_TID.X", "SR_CTAID.Y", "SR_LANEID", "SR_CLOCKLO"):
            sr = SpecialReg(name)
            assert SpecialReg.from_code(sr.code) == sr

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            SpecialReg("SR_BOGUS")
