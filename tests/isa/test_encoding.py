"""Round-trip tests for the 128-bit binary encoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import (
    ControlInfo,
    EncodingError,
    Imm,
    Instruction,
    MemRef,
    MOD_TABLES,
    PT,
    Pred,
    Reg,
    assemble,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
    INSTRUCTION_BYTES,
)


def roundtrip(inst: Instruction) -> Instruction:
    word = encode_instruction(inst)
    assert 0 <= word < (1 << 128)
    return decode_instruction(word)


class TestBasicRoundTrips:
    def test_nop(self):
        inst = Instruction("NOP")
        assert roundtrip(inst) == inst

    def test_hmma(self):
        inst = Instruction(
            "HMMA",
            dests=(Reg(0),),
            srcs=(Reg(2), Reg(6), Reg(4)),
            mods=("1688", "F16"),
            ctrl=ControlInfo(stall=8),
        )
        assert roundtrip(inst) == inst

    def test_predicated(self):
        inst = Instruction("NOP", pred=Pred(3, negated=True))
        assert roundtrip(inst) == inst

    def test_mov32i(self):
        inst = Instruction("MOV32I", dests=(Reg(1),), srcs=(Imm(0xDEADBEEF - 2**32),))
        got = roundtrip(inst)
        assert got.srcs[0].unsigned == 0xDEADBEEF

    def test_ldg_with_memref(self):
        inst = Instruction(
            "LDG",
            dests=(Reg(16),),
            srcs=(MemRef(Reg(2), 0x100),),
            mods=("E", "CG", "128"),
            ctrl=ControlInfo(stall=1, write_bar=2),
        )
        assert roundtrip(inst) == inst

    def test_negative_mem_offset(self):
        inst = Instruction(
            "LDS", dests=(Reg(0),), srcs=(MemRef(Reg(1), -64),), mods=()
        )
        assert roundtrip(inst) == inst

    def test_sts(self):
        inst = Instruction(
            "STS", srcs=(MemRef(Reg(20), 8), Reg(16)), mods=("128",)
        )
        assert roundtrip(inst) == inst

    def test_isetp(self):
        inst = Instruction(
            "ISETP",
            dests=(Pred(0), PT),
            srcs=(Reg(1), Reg(255), PT),
            mods=("GT", "AND"),
        )
        assert roundtrip(inst) == inst

    def test_branch_target_index(self):
        inst = Instruction("BRA", target="X", target_index=17)
        got = roundtrip(inst)
        assert got.target_index == 17


class TestEncodingErrors:
    def test_unresolved_branch(self):
        inst = Instruction("BRA", target="X")
        with pytest.raises(EncodingError, match="unresolved"):
            encode_instruction(inst)

    def test_two_wide_operands(self):
        inst = Instruction("IADD3", dests=(Reg(0),),
                           srcs=(Imm(1 << 20), Imm(2 << 20), Reg(3)))
        with pytest.raises(EncodingError, match="wide"):
            encode_instruction(inst)

    def test_small_second_immediate_uses_narrow_slot(self):
        # IMAD Rd, Ra, 4, 0x1000: the small multiplier rides the 8-bit
        # narrow slot, the large addend gets the wide field.
        inst = Instruction("IMAD", dests=(Reg(2),),
                           srcs=(Reg(1), Imm(4), Imm(0x1000)))
        got = roundtrip(inst)
        assert [s.value for s in got.srcs[1:]] == [4, 0x1000]

    def test_memref_beats_small_imm_for_wide_slot(self):
        inst = Instruction("LDS", dests=(Reg(0),),
                           srcs=(MemRef(Reg(1), 64),), mods=())
        assert roundtrip(inst) == inst

    def test_unknown_modifier_combo(self):
        inst = Instruction("LDG", dests=(Reg(0),), srcs=(MemRef(Reg(1)),), mods=("Z",))
        with pytest.raises(EncodingError, match="modifiers"):
            encode_instruction(inst)

    def test_bad_blob_length(self):
        with pytest.raises(EncodingError, match="multiple"):
            decode_program(b"\x00" * 7)


class TestProgramImage:
    SOURCE = """
    .kernel img
    LOOP:
      HMMA.1688.F16 R4, R8, R10, R4 {stall=8}
      LDG.E.64 R16, [R2+0x40] {wb=0}
      STS [R20], R16 {wait=0b1}
      IADD3 R1, R1, -1, RZ
      ISETP.NE.AND P0, PT, R1, RZ, PT
      @P0 BRA LOOP {stall=5}
      EXIT
    """

    def test_image_size(self):
        prog = assemble(self.SOURCE)
        blob = encode_program(prog)
        assert len(blob) == len(prog) * INSTRUCTION_BYTES

    def test_program_roundtrip(self):
        prog = assemble(self.SOURCE)
        decoded = decode_program(encode_program(prog))
        assert len(decoded) == len(prog)
        for orig, got in zip(prog, decoded):
            assert got.opcode == orig.opcode
            assert got.mods == orig.mods
            assert got.dests == orig.dests
            assert got.ctrl == orig.ctrl
            assert got.pred == orig.pred
            # Immediates normalise to unsigned 32-bit on decode.
            assert len(got.srcs) == len(orig.srcs)
            for a, b in zip(got.srcs, orig.srcs):
                if isinstance(b, Imm):
                    assert isinstance(a, Imm) and a.unsigned == b.unsigned
                else:
                    assert a == b
            if orig.target_index is not None:
                assert got.target_index == orig.target_index


_ALU_OPS = st.sampled_from(["MOV", "IADD3", "IMAD", "SEL"])


@st.composite
def alu_instructions(draw):
    opcode = draw(_ALU_OPS)
    n_srcs = {"MOV": 1, "IADD3": 3, "IMAD": 3, "SEL": 3}[opcode]
    srcs = []
    wide_allowed = True
    for i in range(n_srcs):
        if opcode == "SEL" and i == 2:
            srcs.append(Pred(draw(st.integers(0, 7))))
            continue
        if wide_allowed and draw(st.booleans()):
            srcs.append(Imm(draw(st.integers(-(2**31), 2**32 - 1))))
            wide_allowed = False
        else:
            srcs.append(Reg(draw(st.integers(0, 255))))
    mods = () if opcode != "IMAD" else draw(st.sampled_from(MOD_TABLES["IMAD"]))
    pred = None
    if draw(st.booleans()):
        pred = Pred(draw(st.integers(0, 7)), negated=draw(st.booleans()))
    ctrl = ControlInfo(
        stall=draw(st.integers(0, 15)),
        yield_flag=draw(st.booleans()),
        write_bar=draw(st.sampled_from([0, 3, 5, 7])),
        read_bar=draw(st.sampled_from([0, 2, 7])),
        wait_mask=draw(st.integers(0, 63)),
        reuse=draw(st.integers(0, 15)),
    )
    return Instruction(
        opcode, dests=(Reg(draw(st.integers(0, 255))),), srcs=tuple(srcs),
        mods=mods, pred=pred, ctrl=ctrl,
    )


class TestPropertyRoundTrip:
    @settings(max_examples=200)
    @given(alu_instructions())
    def test_alu_roundtrip(self, inst):
        got = roundtrip(inst)
        # Immediates normalise to their unsigned 32-bit value.
        assert got.opcode == inst.opcode
        assert got.dests == inst.dests
        assert got.pred == inst.pred
        assert got.ctrl == inst.ctrl
        assert len(got.srcs) == len(inst.srcs)
        for a, b in zip(got.srcs, inst.srcs):
            if isinstance(b, Imm):
                assert isinstance(a, Imm) and a.unsigned == b.unsigned
            else:
                assert a == b
