"""Tests for control-info fields and their 21-bit packing."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import ControlInfo, NO_BARRIER


class TestValidation:
    def test_defaults(self):
        ctrl = ControlInfo()
        assert ctrl.stall == 1
        assert ctrl.write_bar == NO_BARRIER
        assert ctrl.read_bar == NO_BARRIER
        assert ctrl.wait_mask == 0
        assert not ctrl.sets_barrier

    def test_stall_bounds(self):
        ControlInfo(stall=0)
        ControlInfo(stall=15)
        with pytest.raises(ValueError):
            ControlInfo(stall=16)
        with pytest.raises(ValueError):
            ControlInfo(stall=-1)

    def test_barrier_bounds(self):
        ControlInfo(write_bar=5)
        with pytest.raises(ValueError):
            ControlInfo(write_bar=6)
        ControlInfo(read_bar=NO_BARRIER)

    def test_wait_mask_bounds(self):
        ControlInfo(wait_mask=0b111111)
        with pytest.raises(ValueError):
            ControlInfo(wait_mask=64)

    def test_sets_barrier(self):
        assert ControlInfo(write_bar=0).sets_barrier
        assert ControlInfo(read_bar=3).sets_barrier


class TestHelpers:
    def test_waits_on(self):
        ctrl = ControlInfo(wait_mask=0b000101)
        assert ctrl.waits_on(0)
        assert not ctrl.waits_on(1)
        assert ctrl.waits_on(2)

    def test_with_wait_accumulates(self):
        ctrl = ControlInfo().with_wait(0).with_wait(3)
        assert ctrl.wait_mask == 0b001001

    def test_with_wait_rejects_bad_index(self):
        with pytest.raises(ValueError):
            ControlInfo().with_wait(6)

    def test_with_stall(self):
        assert ControlInfo(stall=1).with_stall(8).stall == 8

    def test_str_mentions_fields(self):
        text = str(ControlInfo(stall=4, write_bar=0, wait_mask=0b10))
        assert "stall=4" in text and "wb=0" in text and "wait" in text


class TestEncoding:
    def test_known_value(self):
        ctrl = ControlInfo(stall=8)
        # stall in low 4 bits; no-barrier indices (7) in both barrier fields.
        assert ctrl.encode() == 8 | (7 << 5) | (7 << 8)

    def test_decode_rejects_oversized(self):
        with pytest.raises(ValueError):
            ControlInfo.decode(1 << 21)

    @given(
        st.integers(0, 15),
        st.booleans(),
        st.sampled_from([0, 1, 2, 3, 4, 5, NO_BARRIER]),
        st.sampled_from([0, 1, 2, 3, 4, 5, NO_BARRIER]),
        st.integers(0, 63),
        st.integers(0, 15),
    )
    def test_roundtrip(self, stall, yf, wb, rb, wait, reuse):
        ctrl = ControlInfo(
            stall=stall,
            yield_flag=yf,
            write_bar=wb,
            read_bar=rb,
            wait_mask=wait,
            reuse=reuse,
        )
        assert ControlInfo.decode(ctrl.encode()) == ctrl
