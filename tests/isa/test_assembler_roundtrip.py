"""Property test: ``assemble(disassemble(p))`` is *p*, over random programs.

The per-instruction 128-bit encoding round-trip is covered exhaustively
elsewhere; this file closes the loop one level up, at the *text* layer:
a whole random program -- instructions, modifier sets, guard predicates,
control fields, and branch labels -- encoded to binary, disassembled to
SASS text, re-assembled, and re-encoded must produce the identical
binary image.  Equality at the binary level is the right invariant
because the text round trip is allowed to rename labels (``L0``,
``L1``, ...) and normalise immediates; the encoded bytes are what the
simulator executes.
"""

from hypothesis import given, settings, strategies as st

from repro.isa import (
    ControlInfo,
    Imm,
    Instruction,
    MemRef,
    MOD_TABLES,
    OPCODES,
    PT,
    Pred,
    Reg,
    assemble,
    disassemble,
    encode_program,
)
from repro.isa.operands import SpecialReg
from repro.isa.program import KernelMeta, Program

#: Operand templates per opcode (mirrors the encoding test's shapes).
def _operands_for(opcode: str, reg: int):
    def r(i):
        return Reg((reg + i) % 255)

    mem = MemRef(r(1), (reg % 1000) * 4)
    table = {
        "NOP": ((), ()),
        "EXIT": ((), ()),
        "BAR": ((), ()),
        "MOV": ((r(0),), (r(1),)),
        "MOV32I": ((r(0),), (Imm(reg * 7919 % (2**32)),)),
        "IADD3": ((r(0),), (r(1), r(2), r(3))),
        "IMAD": ((r(0),), (r(1), r(2), r(3))),
        "SHF": ((r(0),), (r(1), r(2))),
        "LOP3": ((r(0),), (r(1), r(2))),
        "ISETP": ((Pred(reg % 7), PT), (r(1), r(2), PT)),
        "SEL": ((r(0),), (r(1), r(2), Pred(reg % 7))),
        "S2R": ((r(0),), (SpecialReg("SR_TID.X"),)),
        "CS2R": ((r(0),), (SpecialReg("SR_CLOCKLO"),)),
        "HMMA": ((r(0),), (r(2), r(6), r(4))),
        "IMMA": ((r(0),), (r(2), r(6), r(4))),
        "HFMA2": ((r(0),), (r(1), r(2), r(3))),
        "LDG": ((r(0),), (mem,)),
        "STG": ((), (mem, r(2))),
        "LDS": ((r(0),), (mem,)),
        "STS": ((), (mem, r(2))),
        "BRA": ((), ()),
    }
    return table[opcode]


_CTRL = st.builds(
    ControlInfo,
    stall=st.integers(0, 15),
    yield_flag=st.booleans(),
    write_bar=st.sampled_from([7, 0, 3, 5]),   # 7 == NO_BARRIER
    read_bar=st.sampled_from([7, 1, 4]),
    wait_mask=st.integers(0, 63),
    reuse=st.integers(0, 15),
)

_GUARD = st.one_of(
    st.none(),
    st.builds(Pred, st.integers(0, 6), st.booleans()),
)

_INST_SEED = st.tuples(
    st.sampled_from(sorted(OPCODES)),
    st.integers(0, 250),       # operand register seed / mod selector
    _CTRL,
    _GUARD,
    st.integers(0, 1000),      # branch-target selector
)


def _build_program(seeds, meta: KernelMeta) -> Program:
    n = len(seeds)
    instructions = []
    for opcode, reg, ctrl, guard, tsel in seeds:
        dests, srcs = _operands_for(opcode, reg)
        mods = MOD_TABLES[opcode][reg % len(MOD_TABLES[opcode])]
        kwargs = {}
        if opcode == "BRA":
            # Any in-program index, including one past the end (the
            # branch-to-fallthrough form the disassembler must label).
            kwargs["target"] = "T"
            kwargs["target_index"] = tsel % (n + 1)
        instructions.append(Instruction(
            opcode, dests=dests, srcs=srcs, mods=mods, pred=guard,
            ctrl=ctrl, **kwargs))
    return Program(instructions=instructions, meta=meta)


@settings(max_examples=150, deadline=None)
@given(
    seeds=st.lists(_INST_SEED, min_size=1, max_size=12),
    regs=st.integers(1, 255),
    smem=st.sampled_from([0, 128, 4096, 49152]),
    block=st.sampled_from([32, 64, 128, 256]),
)
def test_random_program_roundtrips(seeds, regs, smem, block):
    meta = KernelMeta(name="prop", num_regs=regs, smem_bytes=smem,
                      block_dim=block)
    program = _build_program(seeds, meta)
    blob = encode_program(program)

    text = disassemble(blob, meta)
    again = assemble(text)

    assert encode_program(again) == blob
    assert again.meta == meta
    # And the text layer is a fixed point from here on: a second
    # disassemble/assemble pass reproduces the same listing exactly.
    assert disassemble(encode_program(again), again.meta) == text


@settings(max_examples=60, deadline=None)
@given(
    k=st.integers(1, 9),
    stall=st.integers(1, 15),
    guard=st.builds(Pred, st.integers(0, 6), st.booleans()),
)
def test_branchy_loop_roundtrips(k, stall, guard):
    """Backward predicated branches with labels survive the text loop."""
    source = f"""
.kernel loop_rt
.regs 16
.smem 0
.block 32
  MOV32I R0, {k}
  MOV32I R1, 0
LOOP:
  IADD3 R1, R1, 1, RZ
  ISETP.LT.AND P0, PT, R1, R0, PT {{stall={stall}}}
  @{guard} BRA LOOP
  EXIT
"""
    program = assemble(source)
    blob = encode_program(program)
    text = disassemble(blob, program.meta)
    assert encode_program(assemble(text)) == blob
