"""Tests for the text assembler."""

import pytest

from repro.isa import (
    AssemblyError,
    Imm,
    MemRef,
    Pred,
    Reg,
    SpecialReg,
    assemble,
    parse_control,
    parse_operand,
)


class TestParseOperand:
    def test_registers(self):
        assert parse_operand("R12") == Reg(12)
        assert parse_operand("RZ").is_rz

    def test_predicates(self):
        assert parse_operand("P3") == Pred(3)
        assert parse_operand("!P3") == Pred(3, negated=True)
        assert parse_operand("PT").is_pt
        assert parse_operand("!PT") == Pred(7, negated=True)

    def test_memrefs(self):
        assert parse_operand("[R4]") == MemRef(Reg(4), 0)
        assert parse_operand("[R4+0x80]") == MemRef(Reg(4), 0x80)
        assert parse_operand("[R4 - 8]") == MemRef(Reg(4), -8)
        assert parse_operand("[RZ+4]") == MemRef(Reg(255), 4)

    def test_immediates(self):
        assert parse_operand("42") == Imm(42)
        assert parse_operand("-1") == Imm(-1)
        assert parse_operand("0x100") == Imm(256)
        assert parse_operand("0b101") == Imm(5)

    def test_special(self):
        assert parse_operand("SR_TID.X") == SpecialReg("SR_TID.X")

    def test_garbage_raises(self):
        with pytest.raises(AssemblyError):
            parse_operand("Q7")


class TestParseControl:
    def test_full(self):
        ctrl = parse_control("stall=8, yield, wb=0, rb=1, wait=0b11, reuse=0x3")
        assert ctrl.stall == 8
        assert ctrl.yield_flag
        assert ctrl.write_bar == 0
        assert ctrl.read_bar == 1
        assert ctrl.wait_mask == 3
        assert ctrl.reuse == 3

    def test_empty(self):
        assert parse_control("").stall == 1

    def test_unknown_field(self):
        with pytest.raises(AssemblyError):
            parse_control("frobnicate=1")

    def test_bad_value(self):
        with pytest.raises(AssemblyError):
            parse_control("stall=abc")


SOURCE = """
.kernel demo
.regs 64
.smem 1024
.block 64

// prologue
START:
  S2R R0, SR_TID.X {stall=2, wb=0}
  MOV32I R1, 0x80
LOOP:
  HMMA.1688.F16 R4, R8, R10, R4 {stall=8}
  LDG.E.128 R16, [R2+0x100] {stall=1, wb=1}
  STS.128 [R20], R16 {wait=0b10, stall=2}
  IADD3 R1, R1, -1, RZ
  ISETP.GT.AND P0, PT, R1, RZ, PT {stall=4}
  @P0 BRA LOOP {stall=5}
  EXIT
"""


class TestAssemble:
    def test_metadata(self):
        prog = assemble(SOURCE)
        assert prog.meta.name == "demo"
        assert prog.meta.num_regs == 64
        assert prog.meta.smem_bytes == 1024
        assert prog.meta.block_dim == 64
        assert prog.meta.warps_per_cta == 2

    def test_labels_and_branch_resolution(self):
        prog = assemble(SOURCE)
        assert prog.labels == {"START": 0, "LOOP": 2}
        bra = prog[7]
        assert bra.opcode == "BRA"
        assert bra.target == "LOOP"
        assert bra.target_index == 2
        assert bra.pred == Pred(0)

    def test_instruction_fields(self):
        prog = assemble(SOURCE)
        hmma = prog[2]
        assert hmma.opcode == "HMMA"
        assert hmma.mods == ("1688", "F16")
        assert hmma.dests == (Reg(4),)
        assert hmma.srcs == (Reg(8), Reg(10), Reg(4))
        assert hmma.ctrl.stall == 8

        ldg = prog[3]
        assert ldg.width == 128
        assert ldg.num_data_regs == 4
        assert ldg.ctrl.write_bar == 1

        sts = prog[4]
        assert sts.dests == ()
        assert sts.srcs == (MemRef(Reg(20), 0), Reg(16))
        assert sts.ctrl.wait_mask == 0b10

    def test_isetp_two_dests(self):
        prog = assemble(SOURCE)
        isetp = prog[6]
        assert len(isetp.dests) == 2
        assert isetp.dests[0] == Pred(0)
        assert isetp.mods == ("GT", "AND")

    def test_count_opcode(self):
        prog = assemble(SOURCE)
        assert prog.count_opcode("HMMA") == 1
        assert prog.count_opcode("BRA") == 1
        assert prog.count_opcode("NOP") == 0

    def test_listing_roundtrips_labels(self):
        text = assemble(SOURCE).listing()
        assert "LOOP:" in text
        assert "HMMA.1688.F16" in text

    def test_undefined_label_raises(self):
        with pytest.raises(ValueError, match="undefined branch target"):
            assemble("BRA NOWHERE\nEXIT")

    def test_duplicate_label_raises(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            assemble("A:\nA:\nEXIT")

    def test_unknown_opcode_raises(self):
        with pytest.raises(AssemblyError, match="unknown opcode"):
            assemble("FROB R0, R1")

    def test_unknown_directive_raises(self):
        with pytest.raises(AssemblyError, match="unknown directive"):
            assemble(".banana 3")

    def test_line_number_in_error(self):
        with pytest.raises(AssemblyError, match="line 3"):
            assemble("NOP\nNOP\nFROB R0\n")

    def test_bra_needs_single_label(self):
        with pytest.raises(AssemblyError):
            assemble("BRA A, B\nA:\nB:\nEXIT")

    def test_comments_and_blank_lines_ignored(self):
        prog = assemble("# hi\n\n  // nothing\nNOP\n")
        assert len(prog) == 1

    def test_guard_must_be_predicate(self):
        with pytest.raises(AssemblyError, match="guard"):
            assemble("@R0 NOP")
