"""Tests for the disassembler: the toolchain's closing loop."""

import numpy as np

from repro.core import KernelConfig, ours
from repro.core.builder import HgemmProblem, build_hgemm
from repro.isa import (
    assemble,
    disassemble,
    disassemble_to_program,
    encode_program,
)
from repro.sim import FunctionalSimulator, GlobalMemory

SOURCE = """
.kernel demo
.regs 64
.smem 1024
.block 64
START:
  S2R R1, SR_TID.X {stall=6}
  MOV32I R2, 0x1234
LOOP:
  HMMA.1688.F16 R4, R8, R10, R4 {stall=8}
  LDG.E.64 R16, [R2+0x40] {wb=0}
  STS.128 [R20], R16 {wait=0b1, stall=2}
  IADD3 R1, R1, -1, RZ
  ISETP.NE.AND P0, PT, R1, RZ, PT {stall=6}
  @P0 BRA LOOP {stall=5}
  EXIT
"""


class TestTextRoundTrip:
    def test_reassembles(self):
        prog = assemble(SOURCE)
        text = disassemble(encode_program(prog), prog.meta)
        prog2 = assemble(text)
        assert len(prog2) == len(prog)
        assert prog2.meta.num_regs == prog.meta.num_regs
        assert prog2.meta.smem_bytes == prog.meta.smem_bytes

    def test_binary_fixed_point(self):
        # disassemble(encode(p)) must re-encode to the identical binary.
        prog = assemble(SOURCE)
        blob = encode_program(prog)
        blob2 = encode_program(assemble(disassemble(blob, prog.meta)))
        assert blob2 == blob

    def test_synthetic_labels_at_targets(self):
        prog = assemble(SOURCE)
        text = disassemble(encode_program(prog), prog.meta)
        assert "L0:" in text
        assert "BRA L0" in text

    def test_meta_directives_optional(self):
        prog = assemble("NOP\nEXIT")
        text = disassemble(encode_program(prog))
        assert ".kernel" not in text
        assert "NOP" in text

    def test_default_control_suppressed(self):
        prog = assemble("NOP\nEXIT")
        text = disassemble(encode_program(prog))
        assert "{stall=1}" not in text


class TestProgramRoundTrip:
    def test_executes_identically(self):
        src = """
        .block 32
          S2R R1, SR_TID.X {stall=6}
          IMAD R2, R1, 4, RZ {stall=6}
          MOV32I R3, 0
        LOOP:
          IADD3 R3, R3, R1, RZ
          IADD3 R4, R4, 1, RZ {stall=6}
          ISETP.LT.AND P0, PT, R4, 3, PT {stall=6}
          @P0 BRA LOOP {stall=5}
          STG.E.32 [R2], R3 {stall=4}
          EXIT
        """
        prog = assemble(src)
        prog2 = disassemble_to_program(encode_program(prog), prog.meta)

        out = []
        for p in (prog, prog2):
            gm = GlobalMemory(1024)
            FunctionalSimulator().run(p, gm)
            out.append(gm.read_array(0, np.uint32, 32))
        np.testing.assert_array_equal(out[0], out[1])
        assert np.all(out[0] == np.arange(32) * 3)


class TestGeneratedKernels:
    """The whole generated-kernel family must survive the binary loop."""

    def test_hgemm_kernels_encodable_and_fixed_point(self):
        tiny = KernelConfig(b_m=64, b_n=64, b_k=16, w_m=32, w_n=32, w_k=8)
        for cfg in (ours(), tiny):
            prog = build_hgemm(cfg, HgemmProblem(
                cfg.b_m, cfg.b_n, 2 * cfg.b_k, 0, 1 << 22, 1 << 23))
            blob = encode_program(prog)
            assert len(blob) == 16 * len(prog)
            text = disassemble(blob, prog.meta)
            blob2 = encode_program(assemble(text))
            assert blob2 == blob

    def test_decoded_hgemm_still_computes(self):
        cfg = KernelConfig(b_m=64, b_n=64, b_k=16, w_m=32, w_n=32, w_k=8)
        m, n, k = 64, 64, 32
        prob = HgemmProblem(m, n, k, 0, 1 << 20, 1 << 21)
        prog = build_hgemm(cfg, prob)
        prog2 = disassemble_to_program(encode_program(prog), prog.meta)

        rng = np.random.default_rng(0)
        a = rng.uniform(-1, 1, (m, k)).astype(np.float16)
        b = rng.uniform(-1, 1, (k, n)).astype(np.float16)
        gm = GlobalMemory(4 << 20)
        gm.write_array(0, a)
        gm.write_array(1 << 20, np.ascontiguousarray(b.T))
        FunctionalSimulator().run(prog2, gm, grid_dim=cfg.grid_dim(m, n))
        c = gm.read_array(1 << 21, np.float16, m * n).reshape(m, n)

        acc = np.zeros((m, n), np.float16)
        for s in range(0, k, 8):
            acc = (a[:, s:s + 8].astype(np.float32)
                   @ b[s:s + 8].astype(np.float32)
                   + acc.astype(np.float32)).astype(np.float16)
        np.testing.assert_array_equal(c, acc)
