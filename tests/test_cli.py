"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_hgemm_args(self):
        args = build_parser().parse_args(["hgemm", "64", "64", "32"])
        assert (args.m, args.n, args.k) == (64, 64, 32)
        assert args.kernel == "ours"

    def test_igemm_args(self):
        args = build_parser().parse_args(
            ["igemm", "128", "128", "32", "--seed", "3", "--jobs", "2"])
        assert (args.m, args.n, args.k) == (128, 128, 32)
        assert args.seed == 3
        assert args.jobs == 2

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_hgemm_ok(self, capsys):
        assert main(["hgemm", "64", "64", "32"]) == 0
        out = capsys.readouterr().out
        assert "bit-exact vs precision model: True" in out

    def test_hgemm_cublas_kernel(self, capsys):
        assert main(["hgemm", "128", "128", "64", "--kernel", "cublas"]) == 0
        assert "cublas-like" in capsys.readouterr().out

    def test_hgemm_f32(self, capsys):
        assert main(["hgemm", "64", "64", "32", "--accumulate", "f32"]) == 0
        assert "True" in capsys.readouterr().out

    def test_igemm_ok(self, capsys):
        assert main(["igemm", "128", "128", "32"]) == 0
        out = capsys.readouterr().out
        assert "IMMA" in out
        assert "bit-exact vs int8 oracle: True" in out

    def test_igemm_parallel(self, capsys):
        assert main(["igemm", "192", "128", "32", "--jobs", "2",
                     "--seed", "5"]) == 0
        assert "bit-exact vs int8 oracle: True" in capsys.readouterr().out

    def test_roofline(self, capsys):
        assert main(["roofline", "--device", "T4"]) == 0
        out = capsys.readouterr().out
        assert "Roofline on T4" in out
        assert "memory" in out

    def test_disasm(self, capsys):
        assert main(["disasm"]) == 0
        out = capsys.readouterr().out
        assert "HMMA.1688.F16" in out

    def test_disasm_small_problem_shrinks(self, capsys):
        assert main(["disasm", "--m", "64", "--n", "64", "--k", "32"]) == 0
        assert "HMMA" in capsys.readouterr().out

    def test_disasm_binary_roundtrip(self, capsys):
        assert main(["disasm", "--binary"]) == 0
        out = capsys.readouterr().out
        assert ".kernel" in out
        assert "HMMA.1688.F16" in out

    def test_verify_ours(self, capsys):
        assert main(["verify", "--kernel", "ours", "--seeds", "1"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_verify_int8(self, capsys):
        assert main(["verify", "--kernel", "int8", "--seeds", "1"]) == 0
        assert "bit-exact" in capsys.readouterr().out
