"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_hgemm_args(self):
        args = build_parser().parse_args(["hgemm", "64", "64", "32"])
        assert (args.m, args.n, args.k) == (64, 64, 32)
        assert args.kernel == "ours"

    def test_igemm_args(self):
        args = build_parser().parse_args(
            ["igemm", "128", "128", "32", "--seed", "3", "--jobs", "2"])
        assert (args.m, args.n, args.k) == (128, 128, 32)
        assert args.seed == 3
        assert args.jobs == 2

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_hgemm_ok(self, capsys):
        assert main(["hgemm", "64", "64", "32"]) == 0
        out = capsys.readouterr().out
        assert "bit-exact vs precision model: True" in out

    def test_hgemm_cublas_kernel(self, capsys):
        assert main(["hgemm", "128", "128", "64", "--kernel", "cublas"]) == 0
        assert "cublas-like" in capsys.readouterr().out

    def test_hgemm_f32(self, capsys):
        assert main(["hgemm", "64", "64", "32", "--accumulate", "f32"]) == 0
        assert "True" in capsys.readouterr().out

    def test_igemm_ok(self, capsys):
        assert main(["igemm", "128", "128", "32"]) == 0
        out = capsys.readouterr().out
        assert "IMMA" in out
        assert "bit-exact vs int8 oracle: True" in out

    def test_igemm_parallel(self, capsys):
        assert main(["igemm", "192", "128", "32", "--jobs", "2",
                     "--seed", "5"]) == 0
        assert "bit-exact vs int8 oracle: True" in capsys.readouterr().out

    def test_roofline(self, capsys):
        assert main(["roofline", "--device", "T4"]) == 0
        out = capsys.readouterr().out
        assert "Roofline on T4" in out
        assert "memory" in out

    def test_disasm(self, capsys):
        assert main(["disasm"]) == 0
        out = capsys.readouterr().out
        assert "HMMA.1688.F16" in out

    def test_disasm_small_problem_shrinks(self, capsys):
        assert main(["disasm", "--m", "64", "--n", "64", "--k", "32"]) == 0
        assert "HMMA" in capsys.readouterr().out

    def test_disasm_binary_roundtrip(self, capsys):
        assert main(["disasm", "--binary"]) == 0
        out = capsys.readouterr().out
        assert ".kernel" in out
        assert "HMMA.1688.F16" in out

    def test_verify_ours(self, capsys):
        assert main(["verify", "--kernel", "ours", "--seeds", "1"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_verify_int8(self, capsys):
        assert main(["verify", "--kernel", "int8", "--seeds", "1"]) == 0
        assert "bit-exact" in capsys.readouterr().out


class TestServeCli:
    def test_serve_parser(self):
        args = build_parser().parse_args(
            ["serve", "start", "--socket", "/tmp/x.sock", "--workers", "3",
             "--queue-max", "16", "--foreground"])
        assert args.command == "serve" and args.action == "start"
        assert args.socket == "/tmp/x.sock"
        assert args.workers == 3 and args.queue_max == 16
        assert args.foreground

    def test_remote_flag_optional_socket(self):
        args = build_parser().parse_args(["hgemm", "64", "64", "32",
                                          "--remote"])
        assert args.remote == ""  # empty string -> default socket
        args = build_parser().parse_args(["sweep", "--remote", "/tmp/s"])
        assert args.remote == "/tmp/s"
        args = build_parser().parse_args(["autotune", "64", "64", "32"])
        assert args.remote is None

    def test_serve_status_unreachable_fails(self, tmp_path, capsys):
        rc = main(["serve", "status",
                   "--socket", str(tmp_path / "none.sock")])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_remote_falls_back_in_process(self, tmp_path, capsys):
        """--remote with no daemon must still answer, in-process."""
        rc = main(["hgemm", "64", "64", "32",
                   "--remote", str(tmp_path / "none.sock")])
        assert rc == 0
        captured = capsys.readouterr()
        assert "running in-process" in captured.err
        assert "bit-exact vs precision model: True" in captured.out

    def test_remote_round_trip_against_daemon(self, tmp_path, monkeypatch,
                                              capsys):
        """Full thin-client path against an embedded daemon."""
        from repro.serve import ServeDaemon

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        daemon = ServeDaemon(str(tmp_path / "cli.sock"), workers=1)
        daemon.start()
        try:
            rc = main(["hgemm", "64", "64", "32",
                       "--remote", daemon.socket_path])
            out = capsys.readouterr().out
            assert rc == 0
            assert "bit-exact vs precision model: True" in out
            assert "served by daemon: executed" in out
            # Identical resubmission is answered from the shared cache.
            rc = main(["hgemm", "64", "64", "32",
                       "--remote", daemon.socket_path])
            out = capsys.readouterr().out
            assert rc == 0
            assert "served by daemon: cache hit" in out
        finally:
            daemon.stop()


class TestWorkloadsCommand:
    def test_list(self, capsys):
        assert main(["workloads", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("bert", "layers", "lstm", "resnet", "smoke"):
            assert name in out

    def test_run_smoke(self, capsys):
        assert main(["workloads", "run", "--suite", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "PASS: 4/4 workloads bit-exact" in out

    def test_run_on_volta(self, capsys):
        assert main(["workloads", "run", "--suite", "lstm",
                     "--device", "V100"]) == 0
        assert "V100" in capsys.readouterr().out

    def test_estimate(self, capsys):
        assert main(["workloads", "estimate", "--suite", "lstm"]) == 0
        out = capsys.readouterr().out
        assert "TFLOPS" in out and "speedup" in out

    def test_remote_run_against_daemon(self, tmp_path, monkeypatch, capsys):
        from repro.serve import ServeDaemon

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        daemon = ServeDaemon(str(tmp_path / "wl.sock"), workers=1)
        daemon.start()
        try:
            rc = main(["workloads", "run", "--suite", "smoke",
                       "--remote", daemon.socket_path])
            out = capsys.readouterr().out
            assert rc == 0
            assert "PASS: 4/4 workloads bit-exact" in out
            assert "served by daemon: executed" in out
            rc = main(["workloads", "run", "--suite", "smoke",
                       "--remote", daemon.socket_path])
            out = capsys.readouterr().out
            assert rc == 0
            assert "served by daemon: cache hit" in out
        finally:
            daemon.stop()


class TestNumericsCommand:
    def test_reproduces_markidis_shape(self, capsys):
        assert main(["numerics", "--ks", "32,64,128,256"]) == 0
        out = capsys.readouterr().out
        assert "Markidis et al. error shape: REPRODUCED" in out
        assert "f16/positive" in out and "f32/positive" in out
        assert "curve digests" in out

    def test_volta_f16_only(self, capsys):
        assert main(["numerics", "--device", "V100",
                     "--ks", "32,64,128,256"]) == 0
        out = capsys.readouterr().out
        assert "no f32-accumulate form" in out

    def test_remote_against_daemon(self, tmp_path, monkeypatch, capsys):
        from repro.serve import ServeDaemon

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        daemon = ServeDaemon(str(tmp_path / "num.sock"), workers=1)
        daemon.start()
        try:
            rc = main(["numerics", "--ks", "32,64,128,256",
                       "--remote", daemon.socket_path])
            out = capsys.readouterr().out
            assert rc == 0
            assert "served by daemon: executed" in out
        finally:
            daemon.stop()
