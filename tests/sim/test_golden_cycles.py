"""Golden-cycle regression: the timing simulator is pinned bit-exactly.

These values were captured from the seed simulator (pre-optimization).
The hot-path refactor and the result cache must be provably
behaviour-preserving: any change to `TimingResult.cycles` or to the
retired opcode mix for these configurations is a timing-model change and
must be deliberate (update the goldens *and* bump
`repro.perf.cache.SIM_VERSION` so stale disk entries are invalidated).

The runs here drive `TimingSimulator` directly -- the result cache sits
above it (in `PerformanceModel`), so these tests always exercise the real
cycle stepper regardless of cache state.
"""

import pytest

from repro.arch import RTX2070
from repro.core.builder import HgemmProblem, build_hgemm
from repro.core.config import cublas_like, ours
from repro.sim.memory import GlobalMemory
from repro.sim.timing import TimingSimulator

#: (config factory, k depth) -> (cycles, instructions, opcode counts).
GOLDEN = {
    ("ours", 32): (
        11051, 5864,
        {"BAR": 24, "BRA": 8, "EXIT": 8, "HMMA": 2048, "IADD3": 304,
         "IMAD": 144, "ISETP": 16, "LDG": 128, "LDS": 848, "LOP3": 40,
         "MOV": 1032, "MOV32I": 24, "NOP": 24, "S2R": 24, "SHF": 40,
         "STG": 1024, "STS": 128},
    ),
    ("ours", 64): (
        15353, 8912,
        {"BAR": 40, "BRA": 16, "EXIT": 8, "HMMA": 4096, "IADD3": 376,
         "IMAD": 144, "ISETP": 24, "LDG": 192, "LDS": 1616, "LOP3": 40,
         "MOV": 1032, "MOV32I": 24, "NOP": 24, "S2R": 24, "SHF": 40,
         "STG": 1024, "STS": 192},
    ),
    ("cublas-like", 64): (
        5516, 2860,
        {"BAR": 12, "BRA": 4, "EXIT": 4, "HMMA": 1024, "IADD3": 232,
         "IMAD": 136, "ISETP": 8, "LDG": 128, "LDS": 552, "LOP3": 60,
         "MOV": 260, "MOV32I": 12, "NOP": 12, "S2R": 12, "SHF": 20,
         "STG": 256, "STS": 128},
    ),
    ("cublas-like", 128): (
        8419, 4608,
        {"BAR": 20, "BRA": 8, "EXIT": 4, "HMMA": 2048, "IADD3": 300,
         "IMAD": 136, "ISETP": 12, "LDG": 192, "LDS": 1064, "LOP3": 60,
         "MOV": 260, "MOV32I": 12, "NOP": 12, "S2R": 12, "SHF": 20,
         "STG": 256, "STS": 192},
    ),
}

_CONFIGS = {"ours": ours, "cublas-like": cublas_like}


def _run(config, k):
    problem = HgemmProblem(m=config.b_m, n=config.b_n, k=k,
                           a_addr=0, b_addr=4 << 20, c_addr=8 << 20)
    program = build_hgemm(config, problem, RTX2070)
    return TimingSimulator(RTX2070).run(program, GlobalMemory(16 << 20),
                                        num_ctas=1)


@pytest.mark.parametrize("name,k", sorted(GOLDEN))
def test_golden_cycles(name, k):
    cycles, instructions, opcodes = GOLDEN[(name, k)]
    result = _run(_CONFIGS[name](), k)
    assert result.cycles == cycles
    assert result.instructions == instructions
    assert result.opcode_counts == opcodes


def test_golden_runs_are_deterministic():
    """Two fresh simulator instances agree cycle-for-cycle (the property
    the content-addressed cache depends on)."""
    config = cublas_like()
    first = _run(config, 64)
    second = _run(config, 64)
    assert first.cycles == second.cycles
    assert first.opcode_counts == second.opcode_counts
