"""Golden-cycle regression: the timing simulator is pinned bit-exactly.

These values were captured from the seed simulator (pre-optimization).
The hot-path refactor and the result cache must be provably
behaviour-preserving: any change to `TimingResult.cycles` or to the
retired opcode mix for these configurations is a timing-model change and
must be deliberate (update the goldens *and* bump
`repro.perf.cache.SIM_VERSION` so stale disk entries are invalidated).

The runs here drive `TimingSimulator` directly -- the result cache sits
above it (in `PerformanceModel`), so these tests always exercise the real
cycle stepper regardless of cache state.
"""

import pytest

from repro.arch import RTX2070
from repro.core.builder import HgemmProblem, build_hgemm
from repro.core.config import cublas_like, ours, ours_int8
from repro.sim.memory import GlobalMemory
from repro.sim.timing import ENGINES, TimingSimulator

#: (config factory, k depth) -> (cycles, instructions, opcode counts).
GOLDEN = {
    ("ours", 32): (
        11051, 5864,
        {"BAR": 24, "BRA": 8, "EXIT": 8, "HMMA": 2048, "IADD3": 304,
         "IMAD": 144, "ISETP": 16, "LDG": 128, "LDS": 848, "LOP3": 40,
         "MOV": 1032, "MOV32I": 24, "NOP": 24, "S2R": 24, "SHF": 40,
         "STG": 1024, "STS": 128},
    ),
    ("ours", 64): (
        15353, 8912,
        {"BAR": 40, "BRA": 16, "EXIT": 8, "HMMA": 4096, "IADD3": 376,
         "IMAD": 144, "ISETP": 24, "LDG": 192, "LDS": 1616, "LOP3": 40,
         "MOV": 1032, "MOV32I": 24, "NOP": 24, "S2R": 24, "SHF": 40,
         "STG": 1024, "STS": 192},
    ),
    ("cublas-like", 64): (
        5516, 2860,
        {"BAR": 12, "BRA": 4, "EXIT": 4, "HMMA": 1024, "IADD3": 232,
         "IMAD": 136, "ISETP": 8, "LDG": 128, "LDS": 552, "LOP3": 60,
         "MOV": 260, "MOV32I": 12, "NOP": 12, "S2R": 12, "SHF": 20,
         "STG": 256, "STS": 128},
    ),
    ("cublas-like", 128): (
        8419, 4608,
        {"BAR": 20, "BRA": 8, "EXIT": 4, "HMMA": 2048, "IADD3": 300,
         "IMAD": 136, "ISETP": 12, "LDG": 192, "LDS": 1064, "LOP3": 60,
         "MOV": 260, "MOV32I": 12, "NOP": 12, "S2R": 12, "SHF": 20,
         "STG": 256, "STS": 192},
    ),
}

_CONFIGS = {"ours": ours, "cublas-like": cublas_like}


def _run(config, k, engine=None):
    problem = HgemmProblem(m=config.b_m, n=config.b_n, k=k,
                           a_addr=0, b_addr=4 << 20, c_addr=8 << 20)
    program = build_hgemm(config, problem, RTX2070)
    return TimingSimulator(RTX2070, engine=engine).run(
        program, GlobalMemory(16 << 20), num_ctas=1)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name,k", sorted(GOLDEN))
def test_golden_cycles(name, k, engine):
    cycles, instructions, opcodes = GOLDEN[(name, k)]
    result = _run(_CONFIGS[name](), k, engine=engine)
    assert result.cycles == cycles
    assert result.instructions == instructions
    assert result.opcode_counts == opcodes


#: Figure-level per-engine goldens: total cycles and the CPIs of the five
#: most-issued opcodes, for one HGEMM and one IGEMM configuration.  Both
#: engines must reproduce these to the bit, so the numbers feeding the
#: paper's tables cannot drift silently with either code path.
CPI_GOLDEN = {
    "hgemm-ours-k64": (
        ours, 64, 15353, 8912,
        {"HMMA": 4096, "LDS": 1616, "MOV": 1032, "STG": 1024, "IADD3": 376},
    ),
    "igemm-ours_int8-k64": (
        ours_int8, 64, 8605, 4976,
        {"IMMA": 2048, "MOV": 1032, "LDS": 584, "STG": 512, "IADD3": 256},
    ),
}


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("case", sorted(CPI_GOLDEN))
def test_golden_top5_cpis(case, engine):
    factory, k, cycles, instructions, top5 = CPI_GOLDEN[case]
    result = _run(factory(), k, engine=engine)
    assert result.cycles == cycles
    assert result.instructions == instructions
    got_top5 = sorted(result.opcode_counts,
                      key=lambda o: (-result.opcode_counts[o], o))[:5]
    assert got_top5 == sorted(top5, key=lambda o: (-top5[o], o))
    for opcode, count in top5.items():
        assert result.opcode_counts[opcode] == count
        assert result.cpi_of(opcode) == cycles / count


def test_golden_runs_are_deterministic():
    """Two fresh simulator instances agree cycle-for-cycle (the property
    the content-addressed cache depends on)."""
    config = cublas_like()
    first = _run(config, 64)
    second = _run(config, 64)
    assert first.cycles == second.cycles
    assert first.opcode_counts == second.opcode_counts
