"""Tests for the cycle-level SM timing simulator.

These pin the paper's Table I behaviours: HMMA CPI ~8, D-half latencies of
10 and 14 cycles observable through under-stalled consumers, and memory-pipe
CPIs flowing through to issue timing.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import RTX2070
from repro.isa import ProgramBuilder, Reg, assemble
from repro.sim import GlobalMemory, TimingSimulator
from repro.sim.exec_units import ExecError
from repro.sim.timing import (
    TimingResult,
    _MioQueue,
    _TimedWarp,
    _VecMioQueue,
)


def run(program, mem_size=1 << 20, num_ctas=1):
    gm = GlobalMemory(mem_size)
    sim = TimingSimulator(RTX2070)
    result = sim.run(program, gm, num_ctas=num_ctas)
    return result, gm


def hmma_loop_program(n_hmma=64, iters=4):
    """A CPI microbenchmark loop: n_hmma HMMAs, loop control hidden."""
    b = ProgramBuilder(name="hmma_cpi", num_regs=32, block_dim=32)
    b.mov32i(1, iters, stall=2)
    b.cs2r_clock(20, stall=2)
    b.label("LOOP")
    for _ in range(n_hmma):
        b.hmma_1688(4, 8, 10, 4, stall=8)
    b.iadd3(1, Reg(1), -1, stall=6)
    b.isetp(b_pred(0), Reg(1), 0, cmp="GT", stall=6)
    b.bra("LOOP", pred=b_pred(0), stall=5)
    b.cs2r_clock(21, stall=2)
    # store both clocks
    b.s2r(2, "SR_TID.X", stall=6)
    b.imad(3, Reg(2), 4, 0, stall=6)
    b.stg(3, 20, width=32, stall=4)
    b.imad(3, Reg(2), 4, 128, stall=6)
    b.stg(3, 21, width=32, stall=4)
    b.exit()
    return b.build(), n_hmma * iters


def b_pred(i):
    from repro.isa import Pred

    return Pred(i)


class TestHmmaCpi:
    def test_cpi_close_to_8(self):
        prog, total = hmma_loop_program(n_hmma=64, iters=4)
        result, gm = run(prog)
        start = gm.read_array(0, np.uint32, 1)[0]
        stop = gm.read_array(128, np.uint32, 1)[0]
        cpi = (int(stop) - int(start)) / total
        # Paper Table I: theoretical 8.00, measured 8.06 (loop overhead).
        assert 8.0 <= cpi <= 8.6

    def test_pipe_busy_accounting(self):
        prog, total = hmma_loop_program(n_hmma=16, iters=2)
        result, _ = run(prog)
        assert result.opcode_counts["HMMA"] == 32
        assert result.pipe_busy["tensor"] == pytest.approx(32 * 8.0)

    def test_four_warps_share_schedulers_perfectly(self):
        # 4 warps -> one per scheduler -> each has its own tensor pipe:
        # aggregate HMMA throughput scales 4x (no interference).
        b = ProgramBuilder(name="par", block_dim=128)
        for _ in range(32):
            b.hmma_1688(4, 8, 10, 4, stall=8)
        b.exit()
        result, _ = run(b.build())
        # 32 HMMAs x 8 cycles, concurrent across 4 warps: ~256 cycles total.
        assert result.cycles <= 300
        assert result.opcode_counts["HMMA"] == 128

    def test_two_warps_same_scheduler_serialize(self):
        # 8 warps -> 2 per scheduler sharing one tensor pipe: ~2x cycles.
        b = ProgramBuilder(name="par8", block_dim=256)
        for _ in range(32):
            b.hmma_1688(4, 8, 10, 4, stall=8)
        b.exit()
        result, _ = run(b.build())
        assert 480 <= result.cycles <= 600  # ~2 x 256


class TestHmmaLatency:
    """Reproduce the paper's stall-varying latency probe (Table I)."""

    @staticmethod
    def _probe(stall_cycles, half):
        """HMMA writes D = R0,R1; a MOV snapshot taken exactly
        ``stall_cycles`` after the HMMA issue reads half ``half`` of D.

        Returns True iff the snapshot observed the HMMA result (not the
        stale pre-HMMA register value).  The MOV runs on the ALU pipe, so
        nothing else perturbs the issue offset -- this is the paper's
        "vary the stall cycles and check if the output result is correct"
        methodology verbatim.
        """
        from repro.hmma import (
            COL_MAJOR,
            matrix16x8_to_fragments,
            matrix_to_fragment,
        )

        b = ProgramBuilder(name="lat", block_dim=32)
        # Operand setup: load A, B fragments from global memory; D=C=0... but
        # preload D registers with a sentinel so staleness is observable.
        b.s2r(2, "SR_TID.X", stall=6)
        b.imad(3, Reg(2), 4, 0, stall=6)          # lane*4
        b.ldg(8, 3, offset=0x1000, width=32, stall=2, wb=0)    # A reg 0
        b.ldg(9, 3, offset=0x1080, width=32, stall=2, wb=1)    # A reg 1
        b.ldg(10, 3, offset=0x1100, width=32, stall=2, wb=2)   # B
        b.mov(4, Reg(255), stall=1)
        b.mov(5, Reg(255), stall=2)
        b.mov32i(0, 0xDEAD, stall=2)
        b.mov32i(1, 0xDEAD, stall=2, wait=(0, 1, 2))
        b.hmma_1688(0, 8, 10, 4, stall=max(1, min(15, stall_cycles)))
        b.mov(30, Reg(half), stall=6)             # the probe snapshot
        b.nop(stall=15)                           # drain all latencies
        b.stg(3, 30, offset=0x2000, width=32, stall=4)
        b.exit()

        gm = GlobalMemory(1 << 20)
        rng = np.random.default_rng(42)
        a = rng.uniform(-1, 1, (16, 8)).astype(np.float16)
        bmat = rng.uniform(-1, 1, (8, 8)).astype(np.float16)
        a_frags = matrix16x8_to_fragments(a)
        gm.write_array(0x1000, a_frags[0])
        gm.write_array(0x1080, a_frags[1])
        gm.write_array(0x1100, matrix_to_fragment(bmat, COL_MAJOR))

        TimingSimulator(RTX2070).run(b.build(), gm)

        expected = (a.astype(np.float32) @ bmat.astype(np.float32)).astype(np.float16)
        exp_frags = matrix16x8_to_fragments(expected)
        got = gm.read_array(0x2000, np.uint32, 32)
        if np.array_equal(got, exp_frags[half]):
            return True
        assert np.all(got == 0xDEAD), "snapshot is neither fresh nor stale"
        return False

    def test_first_half_latency_is_10(self):
        # Paper Table I: first half of D ready after 10 cycles.
        assert not self._probe(9, half=0)
        assert self._probe(10, half=0)

    def test_second_half_latency_is_14(self):
        # Paper Table I: second half of D ready after 14 cycles.
        assert not self._probe(13, half=1)
        assert self._probe(14, half=1)

    def test_second_half_stale_at_first_half_boundary(self):
        assert not self._probe(10, half=1)

    def test_both_halves_fresh_at_15(self):
        assert self._probe(15, half=0)
        assert self._probe(15, half=1)


class TestBackToBackAccumulation:
    def test_chained_hmma_forwarding(self):
        """K accumulating HMMAs at 8-cycle spacing still produce the right
        sum (intra-tensor-pipe forwarding), even though 8 < 10."""
        from repro.hmma import (
            COL_MAJOR,
            fragments_to_matrix16x8,
            matrix16x8_to_fragments,
            matrix_to_fragment,
        )

        b = ProgramBuilder(name="chain", block_dim=32)
        b.s2r(2, "SR_TID.X", stall=6)
        b.imad(3, Reg(2), 4, 0, stall=6)
        b.ldg(8, 3, offset=0x1000, width=32, stall=2, wb=0)
        b.ldg(9, 3, offset=0x1080, width=32, stall=2, wb=1)
        b.ldg(10, 3, offset=0x1100, width=32, stall=2, wb=2)
        b.mov(4, Reg(255), stall=1)
        b.mov(5, Reg(255), stall=2, wait=(0, 1, 2))
        for _ in range(4):  # D += A@B four times, accumulator = R4,R5
            b.hmma_1688(4, 8, 10, 4, stall=8)
        # Wait out the final HMMA's architectural latency before storing.
        b.nop(stall=15)
        b.stg(3, 4, offset=0x2000, width=32, stall=4)
        b.stg(3, 5, offset=0x2080, width=32, stall=4)
        b.exit()

        gm = GlobalMemory(1 << 20)
        rng = np.random.default_rng(3)
        a = rng.uniform(-1, 1, (16, 8)).astype(np.float16)
        bmat = rng.uniform(-1, 1, (8, 8)).astype(np.float16)
        frags = matrix16x8_to_fragments(a)
        gm.write_array(0x1000, frags[0])
        gm.write_array(0x1080, frags[1])
        gm.write_array(0x1100, matrix_to_fragment(bmat, COL_MAJOR))

        TimingSimulator(RTX2070).run(b.build(), gm)

        regs = np.stack([
            gm.read_array(0x2000, np.uint32, 32),
            gm.read_array(0x2080, np.uint32, 32),
        ])
        got = fragments_to_matrix16x8(regs)
        # Reference: 4 chained f16-rounded accumulations.
        acc = np.zeros((16, 8), np.float16)
        for _ in range(4):
            acc = (a.astype(np.float32) @ bmat.astype(np.float32)
                   + acc.astype(np.float32)).astype(np.float16)
        np.testing.assert_array_equal(got, acc)


class TestMemoryPipeTiming:
    def _sts_loop(self, width, n=128, warmup=32, conflict_free=True):
        # The MIO queue absorbs the first `depth` stores at 1/cycle; the
        # paper measures thousands of instructions so the drain rate (the
        # true CPI) dominates.  Warm the queue up before the first clock.
        b = ProgramBuilder(name="sts_cpi", block_dim=32,
                           smem_bytes=32 * 1024)
        b.s2r(2, "SR_TID.X", stall=6)
        stride = width // 8 if conflict_free else 128
        b.imad(3, Reg(2), stride, 0, stall=6)
        for _ in range(warmup):
            b.sts(3, 8, width=width, stall=1)
        b.cs2r_clock(20, stall=2)
        for _ in range(n):
            b.sts(3, 8, width=width, stall=1)
        b.cs2r_clock(21, stall=2)
        b.imad(4, Reg(2), 4, 0, stall=6)
        b.stg(4, 20, width=32, stall=4)
        b.stg(4, 21, offset=0x200, width=32, stall=4)
        b.exit()
        return b.build(), n

    def _measure(self, program, n):
        result, gm = run(program)
        start = int(gm.read_array(0, np.uint32, 1)[0])
        stop = int(gm.read_array(0x200, np.uint32, 1)[0])
        return (stop - start) / n

    def test_sts128_cpi(self):
        prog, n = self._sts_loop(128)
        cpi = self._measure(prog, n)
        assert cpi == pytest.approx(RTX2070.sts_cpi.cpi(128), abs=0.6)

    def test_sts32_cpi(self):
        prog, n = self._sts_loop(32)
        cpi = self._measure(prog, n)
        assert cpi == pytest.approx(RTX2070.sts_cpi.cpi(32), abs=0.6)

    def test_bank_conflicts_multiply_cost(self):
        free_prog, n = self._sts_loop(32, conflict_free=True)
        bad_prog, _ = self._sts_loop(32, conflict_free=False)
        free_cpi = self._measure(free_prog, n)
        bad_cpi = self._measure(bad_prog, n)
        # Stride-128B STS.32: all lanes in one bank -> 32-way conflict.
        assert bad_cpi / free_cpi == pytest.approx(32.0, rel=0.1)

    def test_lsu_pipe_is_shared_across_warps(self):
        # Two warps issuing STS concurrently share one memory-IO pipe:
        # total time ~ 2x one warp's.
        def build(block):
            b = ProgramBuilder(name="share", block_dim=block,
                               smem_bytes=32 * 1024)
            b.s2r(2, "SR_TID.X", stall=6)
            b.imad(3, Reg(2), 4, 0, stall=6)
            for _ in range(32):
                b.sts(3, 8, width=32, stall=1)
            b.exit()
            return b.build()

        r1, _ = run(build(32))
        r2, _ = run(build(64))
        assert r2.cycles >= 1.7 * r1.cycles - 40


class TestScoreboards:
    def test_unwaited_load_reads_stale(self):
        b = ProgramBuilder(name="stale", block_dim=32)
        b.s2r(2, "SR_TID.X", stall=6)
        b.imad(3, Reg(2), 4, 0, stall=6)
        b.mov32i(8, 123, stall=6)
        b.ldg(8, 3, offset=0x1000, width=32, stall=1, wb=0)
        b.stg(3, 8, offset=0x2000, width=32, stall=4)  # no wait -> stale 123
        b.exit()
        gm = GlobalMemory(1 << 20)
        gm.write_array(0x1000, np.full(32, 7, np.uint32))
        TimingSimulator(RTX2070).run(b.build(), gm)
        assert np.all(gm.read_array(0x2000, np.uint32, 32) == 123)

    def test_waited_load_reads_fresh(self):
        b = ProgramBuilder(name="fresh", block_dim=32)
        b.s2r(2, "SR_TID.X", stall=6)
        b.imad(3, Reg(2), 4, 0, stall=6)
        b.mov32i(8, 123, stall=6)
        b.ldg(8, 3, offset=0x1000, width=32, stall=1, wb=0)
        b.stg(3, 8, offset=0x2000, width=32, stall=4, wait=(0,))
        b.exit()
        gm = GlobalMemory(1 << 20)
        gm.write_array(0x1000, np.full(32, 7, np.uint32))
        TimingSimulator(RTX2070).run(b.build(), gm)
        assert np.all(gm.read_array(0x2000, np.uint32, 32) == 7)

    def test_wait_delays_issue(self):
        # The waiting store must issue after the DRAM round trip.
        b = ProgramBuilder(name="delay", block_dim=32)
        b.cs2r_clock(20, stall=2)
        b.s2r(2, "SR_TID.X", stall=6)
        b.imad(3, Reg(2), 4, 0, stall=6)
        b.ldg(8, 3, offset=0x1000, width=32, stall=1, wb=0)
        b.cs2r_clock(21, stall=2, wait=(0,))
        b.imad(4, Reg(2), 4, 0, stall=6)
        b.stg(4, 20, width=32, stall=4)
        b.stg(4, 21, offset=0x200, width=32, stall=4)
        b.exit()
        gm = GlobalMemory(1 << 20)
        TimingSimulator(RTX2070).run(b.build(), gm)
        start = int(gm.read_array(0, np.uint32, 1)[0])
        stop = int(gm.read_array(0x200, np.uint32, 1)[0])
        assert stop - start >= RTX2070.ldg_latency_cycles


class TestBarriersAndCompletion:
    def test_barrier_sync_cycles(self):
        # One warp spins 200 cycles; the other must wait at the barrier.
        src = """
        .block 64
        .smem 128
          S2R R1, SR_TID.X
          ISETP.LT.AND P0, PT, R1, 32, PT {stall=6}
          @!P0 BRA SKIP {stall=5}
          MOV32I R2, 20 {stall=6}
        SPIN:
          IADD3 R2, R2, -1, RZ {stall=6}
          ISETP.GT.AND P1, PT, R2, RZ, PT {stall=6}
          @P1 BRA SPIN {stall=5}
        SKIP:
          BAR.SYNC {stall=1}
          EXIT
        """
        result, _ = run(assemble(src))
        assert result.cycles > 200  # the spin dominates

    def test_all_warps_must_arrive(self):
        result, _ = run(assemble(".block 96\nBAR.SYNC\nEXIT"))
        assert result.cycles < 50

    def test_multi_cta_runs_independently(self):
        prog = assemble(".block 32\nNOP {stall=4}\nEXIT")
        result, _ = run(prog, num_ctas=3)
        assert result.cycles < 40


class TestTimingPrimitiveProperties:
    """Randomized-sequence properties of the issue-loop primitives.

    The event engine swaps `_MioQueue` for `_VecMioQueue` and replaces
    live scoreboard scans with cached `next_wait_release` expiries, so
    these pin exactly the contracts that substitution relies on: the two
    queues agree on every observable under any interleaving of pushes and
    queries, occupancy never exceeds the configured depth,
    `next_slot_free` is monotone as time advances, and `wait_satisfied`
    is equivalent to comparing the cycle against `next_wait_release`.
    """

    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_mio_queues_equivalent_and_bounded(self, data):
        depth = data.draw(st.integers(1, 6))
        ref = _MioQueue(depth)
        vec = _VecMioQueue(depth)
        cycle = 0
        prev_free = 0.0
        for _ in range(data.draw(st.integers(1, 60))):
            cycle += data.draw(st.integers(0, 6))
            assert ref.can_accept(cycle) == vec.can_accept(cycle)
            free = ref.next_slot_free(cycle)
            assert free == vec.next_slot_free(cycle)
            # A slot can never open in the past, and the opening time
            # never moves backwards as the clock advances.
            assert free >= cycle
            assert free >= prev_free
            prev_free = free
            if data.draw(st.booleans()) and ref.can_accept(cycle):
                occ = data.draw(st.floats(min_value=0.5, max_value=12.0))
                assert ref.push(cycle, occ) == vec.push(cycle, occ)
            # Push/retire never exceeds the queue depth.
            assert len(ref._done) <= depth
            assert len(vec._done) - vec._head <= depth

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_scoreboard_wait_release_consistency(self, seed):
        rng = np.random.default_rng(seed)
        warp = _TimedWarp(0, 0, (0, 0, 0), None, None)
        for _ in range(40):
            bar = int(rng.integers(0, 6))
            warp.scoreboards[bar] = max(
                warp.scoreboards[bar], int(rng.integers(0, 200))
            )
            mask = int(rng.integers(0, 64))
            release = warp.next_wait_release(mask)
            probes = {0, max(0, release - 1), release, release + 1,
                      int(rng.integers(0, 250))}
            for cycle in probes:
                assert warp.wait_satisfied(mask, cycle) == (release <= cycle)


class TestPipeUtilization:
    def _result(self, cycles):
        return TimingResult(
            cycles=cycles, instructions=5, opcode_counts={"NOP": 5},
            pipe_busy={"tensor": 80.0, "lsu": 30.0},
            issue_stall_reasons={}, traffic=None,
        )

    def test_per_scheduler_pipes_normalise_by_unit_count(self):
        r = self._result(100)
        assert r.pipe_utilization("tensor") == pytest.approx(80.0 / 400)
        assert r.pipe_utilization("lsu") == pytest.approx(30.0 / 100)

    def test_empty_pipe_query_returns_zero(self):
        r = self._result(100)
        assert r.pipe_utilization("fma") == 0.0
        assert r.pipe_utilization("no-such-pipe") == 0.0

    def test_zero_cycle_run_does_not_divide_by_zero(self):
        assert self._result(0).pipe_utilization("tensor") == 80.0


class TestErrors:
    def test_hang_detection(self):
        src = ".block 32\nLOOP:\nBRA LOOP {stall=5}\n"
        gm = GlobalMemory(64)
        with pytest.raises(RuntimeError, match="hung"):
            TimingSimulator(RTX2070).run(assemble(src), gm, max_cycles=10_000)

    def test_pc_overrun(self):
        src = ".block 32\nNOP\n"
        with pytest.raises(ExecError, match="missing EXIT"):
            TimingSimulator(RTX2070).run(assemble(src), GlobalMemory(64))
