"""Edge-case tests for the functional executors: wraparound, shift
masking, predicate interplay, and address arithmetic at the corners."""

import numpy as np
import pytest

from repro.arch import PredicateFile, RegisterFile
from repro.isa import assemble
from repro.sim.exec_units import execute
from repro.sim.memory import GlobalMemory
from repro.sim.shared import SharedMemory


class Ctx:
    def __init__(self):
        self.regs = RegisterFile()
        self.preds = PredicateFile()
        self.tid = np.arange(32, dtype=np.uint32)
        self.lane_ids = np.arange(32, dtype=np.uint32)
        self.ctaid = (0, 0, 0)
        self.global_mem = GlobalMemory(64 * 1024)
        self.shared_mem = SharedMemory(16 * 1024)

    def clock(self):
        return 0


def run1(ctx, line):
    prog = assemble(line + "\nEXIT")
    eff = execute(prog[0], ctx)
    for first, values, mask in eff.reg_writes:
        ctx.regs.write_group(first, values, mask=None if mask.all() else mask)
    for idx, values, mask in eff.pred_writes:
        ctx.preds.write(idx, values, mask=None if mask.all() else mask)
    return eff


class TestIntegerWraparound:
    def test_iadd3_unsigned_overflow(self):
        ctx = Ctx()
        ctx.regs.write(1, np.full(32, 0xFFFFFFFF, np.uint32))
        run1(ctx, "IADD3 R0, R1, 1, RZ")
        assert np.all(ctx.regs.read(0) == 0)

    def test_imad_wraps_modulo_32(self):
        ctx = Ctx()
        ctx.regs.write(1, np.full(32, 0x10000, np.uint32))
        ctx.regs.write(2, np.full(32, 0x10000, np.uint32))
        run1(ctx, "IMAD R0, R1, R2, 7")  # 2^32 + 7 mod 2^32
        assert np.all(ctx.regs.read(0) == 7)

    def test_imad_signed_operands(self):
        ctx = Ctx()
        ctx.regs.write(1, np.full(32, 0xFFFFFFFE, np.uint32))  # -2
        run1(ctx, "IMAD R0, R1, 3, RZ")                        # -6
        assert np.all(ctx.regs.read(0) == 0xFFFFFFFA)


class TestShiftMasking:
    def test_shift_amount_masked_to_5_bits(self):
        ctx = Ctx()
        ctx.regs.write(1, np.full(32, 0b1, np.uint32))
        run1(ctx, "SHF.L R0, R1, 33")  # 33 & 31 == 1
        assert np.all(ctx.regs.read(0) == 2)

    def test_logical_right_shift(self):
        ctx = Ctx()
        ctx.regs.write(1, np.full(32, 0x80000000, np.uint32))
        run1(ctx, "SHF.R R0, R1, 31")
        assert np.all(ctx.regs.read(0) == 1)  # logical, not arithmetic

    def test_shift_by_register(self):
        ctx = Ctx()
        ctx.regs.write(1, np.full(32, 4, np.uint32))
        ctx.regs.write(2, np.arange(32, dtype=np.uint32) % 3)
        run1(ctx, "SHF.L R0, R1, R2")
        expected = 4 << (np.arange(32) % 3)
        np.testing.assert_array_equal(ctx.regs.read(0), expected)


class TestPredicateCombinators:
    def test_isetp_and_combine_with_false(self):
        ctx = Ctx()
        ctx.regs.write(1, np.zeros(32, np.uint32))
        run1(ctx, "ISETP.EQ.AND P0, PT, R1, RZ, !PT")  # combine with false
        assert not np.any(ctx.preds.read(0))

    def test_isetp_negated_combine_pred(self):
        ctx = Ctx()
        vals = np.zeros(32, bool)
        vals[:16] = True
        ctx.preds.write(1, vals)
        ctx.regs.write(2, np.zeros(32, np.uint32))
        run1(ctx, "ISETP.EQ.AND P0, PT, R2, RZ, !P1")
        np.testing.assert_array_equal(ctx.preds.read(0), ~vals)

    def test_sel_with_negated_pred(self):
        ctx = Ctx()
        ctx.regs.write(1, np.full(32, 5, np.uint32))
        ctx.regs.write(2, np.full(32, 9, np.uint32))
        run1(ctx, "SEL R0, R1, R2, !PT")  # !PT = false -> picks b
        assert np.all(ctx.regs.read(0) == 9)


class TestMemoryEdges:
    def test_negative_memref_offset(self):
        ctx = Ctx()
        ctx.global_mem.write_array(0x100, np.arange(32, dtype=np.uint32))
        run1(ctx, "S2R R1, SR_TID.X")
        run1(ctx, "IMAD R2, R1, 4, 0x180")
        run1(ctx, "LDG.E.32 R3, [R2-0x80]")
        np.testing.assert_array_equal(ctx.regs.read(3), np.arange(32))

    def test_store_then_partial_overwrite(self):
        ctx = Ctx()
        run1(ctx, "S2R R1, SR_TID.X")
        run1(ctx, "IMAD R2, R1, 4, RZ")
        run1(ctx, "MOV32I R3, 0x11111111")
        run1(ctx, "STS [R2], R3")
        # Odd lanes overwrite with a different value.
        odd = np.zeros(32, bool)
        odd[1::2] = True
        ctx.preds.write(0, odd)
        run1(ctx, "MOV32I R4, 0x22222222")
        run1(ctx, "@P0 STS [R2], R4")
        run1(ctx, "LDS R5, [R2]")
        vals = ctx.regs.read(5)
        assert np.all(vals[0::2] == 0x11111111)
        assert np.all(vals[1::2] == 0x22222222)

    def test_widest_load_at_boundary(self):
        ctx = Ctx()
        size = ctx.shared_mem.size
        run1(ctx, "S2R R1, SR_TID.X")
        run1(ctx, "IMAD R2, R1, 16, RZ")
        base = size - 32 * 16
        run1(ctx, f"IADD3 R2, R2, {base}, RZ")
        run1(ctx, "LDS.128 R4, [R2]")  # exactly touches the last byte

    def test_one_past_boundary_faults(self):
        ctx = Ctx()
        size = ctx.shared_mem.size
        run1(ctx, "S2R R1, SR_TID.X")
        run1(ctx, "IMAD R2, R1, 16, RZ")
        run1(ctx, f"IADD3 R2, R2, {size - 32 * 16 + 16}, RZ")
        with pytest.raises(IndexError):
            run1(ctx, "LDS.128 R4, [R2]")
