"""Differential fuzz: the two timing engines are cycle-identical.

Mirrors ``tests/sim/test_uop_differential.py`` one layer up: where that
suite pins the *functional* engines to one semantics table, this one pins
the *timing* engines (``reference`` and ``event``) to one cycle-for-cycle
model.  Randomized programs covering every opcode class -- ALU, shifts,
logic, predicates, special registers, clock reads, HFMA2, all three MMA
forms, global/shared loads and stores at every width, barriers and loops --
with random stall counts, random scoreboard write/wait masks and random
yield flags run on both engines over both GpuSpecs, and the complete
:class:`~repro.sim.timing.TimingResult` must compare equal: total cycles,
instruction counts, per-opcode counts (hence ``cpi_of``), per-pipe busy
time (hence ``pipe_utilization``), stall-reason breakdowns and memory
traffic counters.  Final global-memory images must match bit-for-bit too,
which makes every CS2R.CLOCKLO snapshot a self-check: a one-cycle issue
divergence anywhere changes the stored clock values.

Because the event engine's block-status caches, issue plans and compiled
closures are all *derived* views of the reference semantics, any mismatch
here is a bug in the event engine's bookkeeping, not model ambiguity.
"""

import numpy as np
import pytest

from repro.arch import RTX2070, T4
from repro.isa import Pred, ProgramBuilder, Reg
from repro.sim.memory import GlobalMemory
from repro.sim.timing import TimingSimulator

# Random register garbage routinely decodes to fp16 NaN/Inf; both engines
# propagate them identically, so the IEEE warnings are noise.
pytestmark = pytest.mark.filterwarnings(
    "ignore:invalid value encountered:RuntimeWarning",
    "ignore:overflow encountered:RuntimeWarning",
)

GMEM_BYTES = 1 << 16

#: Opcodes every generated program is guaranteed to exercise.
EXPECTED_OPCODES = {
    "MOV", "MOV32I", "IADD3", "IMAD", "SHF", "LOP3", "ISETP", "SEL", "S2R",
    "CS2R", "HFMA2", "HMMA", "IMMA", "LDG", "STG", "LDS", "STS", "NOP",
    "BAR", "BRA", "EXIT",
}


def _random_program(seed):
    """One randomized multi-warp kernel: a short loop whose body interleaves
    every opcode class in shuffled order with random control fields, plus a
    straight MMA run (exercises the event engine's issue plans) and an
    STS burst (fills the MIO queue, exercising the MIO-full stall path)."""
    rng = np.random.default_rng(seed)
    block = int(rng.choice([32, 64, 128, 256]))
    b = ProgramBuilder(name=f"fuzz{seed}", num_regs=64, smem_bytes=8192,
                       block_dim=block)

    def ctrl(max_stall=8):
        kw = {"stall": int(rng.integers(1, max_stall + 1))}
        if rng.random() < 0.25:
            waits = np.flatnonzero(rng.random(6) < 0.3)
            if waits.size:
                kw["wait"] = tuple(int(x) for x in waits)
        if rng.random() < 0.15:
            kw["wb"] = int(rng.integers(0, 6))
        if rng.random() < 0.10:
            kw["rb"] = int(rng.integers(0, 6))
        if rng.random() < 0.10:
            kw["yield_flag"] = True
        return kw

    def rand_width():
        return int(rng.choice([32, 64, 128]))

    # Prologue: lane-strided, 16-byte-aligned addresses (valid for every
    # access width), a divergent predicate, and a uniform loop counter.
    b.s2r(2, "SR_TID.X", stall=6)
    b.imad(3, Reg(2), 16, 0x1000, stall=6)   # global address
    b.imad(4, Reg(2), 16, 0, stall=6)        # shared address
    b.isetp(Pred(1), Reg(2), 64, cmp="LT", stall=6)
    b.mov32i(1, int(rng.integers(2, 4)), stall=6)

    # The loop body: one emitter per opcode class, shuffled, each with
    # randomized control fields.  LDG writes a scoreboard a later LDS waits
    # on, so the variable-latency release path is always crossed.
    wb = int(rng.integers(0, 6))
    body = [
        lambda: b.mov(10, Reg(3), **ctrl()),
        lambda: b.mov(11, Reg(2), pred=Pred(1), **ctrl()),  # predicated
        lambda: b.mov32i(12, int(rng.integers(0, 1 << 31)), **ctrl()),
        lambda: b.iadd3(13, Reg(10), Reg(12), Reg(2), **ctrl()),
        lambda: b.imad(14, Reg(2), 3, 7, **ctrl()),
        lambda: b.shf_l(15, Reg(2), int(rng.integers(1, 8)), **ctrl()),
        lambda: b.shf_r(16, Reg(13), Reg(2), **ctrl()),
        lambda: b.lop3_and(17, Reg(13), Reg(14), **ctrl()),
        lambda: b.lop3_or(18, Reg(2), int(rng.integers(0, 256)), **ctrl()),
        lambda: b.lop3_xor(19, Reg(17), Reg(18), **ctrl()),
        lambda: b.isetp(Pred(2), Reg(13), Reg(14),
                        cmp=str(rng.choice(["LT", "GE", "NE"])), **ctrl()),
        lambda: b.sel(20, Reg(13), Reg(14), Pred(1), **ctrl()),
        lambda: b.s2r(21, str(rng.choice(["SR_LANEID", "SR_CTAID.X"])),
                      **ctrl()),
        lambda: b.cs2r_clock(22, **ctrl()),
        lambda: b.hfma2(23, Reg(13), Reg(14), Reg(17), **ctrl()),
        lambda: b.hmma_884(48, 8, 10, 48, **ctrl()),
        lambda: b.hmma_1688(44, 8, 10, 44, f32=True, **ctrl()),
        lambda: b.imma_8816(52, 8, 10, 52, **ctrl()),
        lambda: b.ldg(24, 3, offset=0, width=rand_width(), wb=wb,
                      **{k: v for k, v in ctrl().items() if k != "wb"}),
        lambda: b.ldg(28, 3, offset=64,
                      width=rand_width(), bypass_l1=True, **ctrl()),
        lambda: b.stg(3, 13, offset=0x2000, width=32, **ctrl()),
        lambda: b.lds(32, 4, offset=0, width=rand_width(),
                      wait=(wb,), stall=int(rng.integers(1, 9))),
        lambda: b.sts(4, 13, offset=0, width=rand_width(), **ctrl()),
        lambda: b.nop(**ctrl()),
    ]

    b.label("LOOP")
    rng.shuffle(body)
    for emit in body:
        emit()
    # Straight MMA run: batched by the event engine's issue plans.
    for _ in range(int(rng.integers(4, 9))):
        b.hmma_1688(40, 8, 10, 40, stall=8)
    # STS burst at stall=1: overruns the MIO queue depth.
    for _ in range(int(rng.integers(8, 14))):
        b.sts(4, 14, offset=4096, width=32, stall=1)
    b.bar_sync(stall=1)
    b.iadd3(1, Reg(1), -1, stall=6)
    b.isetp(Pred(0), Reg(1), 0, cmp="GT", stall=6)
    b.bra("LOOP", pred=Pred(0), stall=5)
    # Clock epilogue: stores the final cycle, so any issue-timing divergence
    # between engines becomes a memory-image mismatch.
    b.cs2r_clock(36, stall=2)
    b.stg(3, 36, offset=0x3000, width=32, stall=4)
    b.exit()
    return b.build(), 1 + seed % 2


def _run(spec, program, num_ctas, engine):
    gm = GlobalMemory(GMEM_BYTES)
    fill = np.random.default_rng(99)
    gm._words[:] = fill.integers(0, 1 << 32, GMEM_BYTES // 4, dtype=np.uint32)
    sim = TimingSimulator(spec, engine=engine)
    result = sim.run(program, gm, num_ctas=num_ctas)
    return result, gm


@pytest.mark.parametrize("spec", [RTX2070, T4], ids=["rtx2070", "t4"])
@pytest.mark.parametrize("seed", range(6))
def test_engines_bit_identical(spec, seed):
    program, num_ctas = _random_program(seed)
    ref, ref_gm = _run(spec, program, num_ctas, "reference")
    evt, evt_gm = _run(spec, program, num_ctas, "event")

    # The whole result object: cycles, instructions, opcode counts, pipe
    # busy totals, stall reasons, traffic counters.
    assert evt == ref

    # Derived views agree for every opcode and pipe the run touched (and
    # for pipes it did not).
    assert set(ref.opcode_counts) >= EXPECTED_OPCODES
    for opcode in ref.opcode_counts:
        assert evt.cpi_of(opcode) == ref.cpi_of(opcode)
    for pipe in ("tensor", "alu", "fma", "lsu", "xu-not-modelled"):
        assert evt.pipe_utilization(pipe) == ref.pipe_utilization(pipe)

    # Bit-identical memory images: every stored CS2R clock snapshot is an
    # issue-cycle witness.
    np.testing.assert_array_equal(evt_gm._words, ref_gm._words)


# ------------------------------------------------------- steady-state FF

def _steady_loop_program(seed, iters=48):
    """A uniform steady-state loop: every iteration issues the same slots
    with the same control fields, so the event engine's fast-forward layer
    can detect the period, verify one recorded iteration and replay the
    rest.  Loop-carried data (the counter feeds the ALU chain and the STS
    payload) keeps the replay honest: values change every iteration even
    though the schedule does not."""
    rng = np.random.default_rng(seed)
    block = int(rng.choice([32, 64]))
    b = ProgramBuilder(name=f"steady{seed}", num_regs=64, smem_bytes=8192,
                       block_dim=block)
    b.s2r(2, "SR_TID.X", stall=6)
    b.imad(4, Reg(2), 16, 0, stall=6)         # shared address
    b.imad(3, Reg(2), 16, 0x1000, stall=6)    # global address
    b.mov32i(1, iters, stall=6)
    width = int(rng.choice([32, 64, 128]))
    mma_run = int(rng.integers(3, 7))
    b.label("LOOP")
    b.iadd3(10, Reg(2), 5, Reg(1), stall=6)
    b.hfma2(23, Reg(10), Reg(2), Reg(10), stall=4)
    for _ in range(mma_run):
        b.hmma_1688(40, 8, 10, 40, stall=8)
    b.sts(4, 10, offset=0, width=width, stall=4)
    b.lds(32, 4, offset=0, width=width, wb=0, stall=6)
    b.bar_sync(stall=2)
    b.iadd3(1, Reg(1), -1, wait=(0,), stall=6)
    b.isetp(Pred(0), Reg(1), 0, cmp="GT", stall=6)
    b.bra("LOOP", pred=Pred(0), stall=5)
    b.cs2r_clock(36, stall=2)
    b.stg(3, 36, offset=0x3000, width=32, stall=4)
    b.exit()
    return b.build()


def _aperiodic_loop_program(iters=48):
    """A loop whose iteration *timing* never repeats within the detector's
    window: the LDS/STS address is ``tid * counter * 4``, so the bank
    -conflict multiplier follows gcd(counter, 32) -- a ruler sequence whose
    repeat length exceeds the maximum tracked period."""
    b = ProgramBuilder(name="aperiodic", num_regs=64, smem_bytes=8192,
                       block_dim=32)
    b.s2r(2, "SR_TID.X", stall=6)
    b.mov32i(1, iters, stall=6)
    b.imad(3, Reg(2), 16, 0x1000, stall=6)
    b.label("LOOP")
    b.imad(5, Reg(2), Reg(1), 0, stall=6)     # tid * counter
    b.shf_l(6, Reg(5), 2, stall=6)            # -> byte address
    b.lds(32, 6, offset=0, width=32, stall=6)
    b.sts(6, 2, offset=0, width=32, stall=4)
    b.iadd3(1, Reg(1), -1, stall=6)
    b.isetp(Pred(0), Reg(1), 0, cmp="GT", stall=6)
    b.bra("LOOP", pred=Pred(0), stall=5)
    b.cs2r_clock(36, stall=2)
    b.stg(3, 36, offset=0x3000, width=32, stall=4)
    b.exit()
    return b.build()


def _run_ff(spec, program, engine, ff, monkeypatch, num_ctas=1):
    from repro.perf import STATS

    monkeypatch.setenv("REPRO_TIMING_FF", "1" if ff else "0")
    STATS.counters.pop("sim.ff_periods", None)
    STATS.counters.pop("sim.ff_cycles", None)
    result, gm = _run(spec, program, num_ctas, engine)
    return (result, gm, STATS.counters.get("sim.ff_periods", 0),
            STATS.counters.get("sim.ff_cycles", 0))


@pytest.mark.parametrize("seed", range(4))
def test_fast_forward_periodic_bit_identical(seed, monkeypatch):
    """Fast-forward engages on a steady-state loop and stays bit-identical
    to both the reference engine and the exact event engine."""
    program = _steady_loop_program(seed)
    ref, ref_gm, _, _ = _run_ff(RTX2070, program, "reference", False,
                                monkeypatch)
    noff, noff_gm, noff_p, _ = _run_ff(RTX2070, program, "event", False,
                                       monkeypatch)
    ff, ff_gm, ff_p, ff_c = _run_ff(RTX2070, program, "event", True,
                                    monkeypatch)

    assert noff == ref and ff == ref
    np.testing.assert_array_equal(noff_gm._words, ref_gm._words)
    np.testing.assert_array_equal(ff_gm._words, ref_gm._words)
    # The disabled leg must never count, the enabled leg must engage.
    assert noff_p == 0
    assert ff_p > 0 and ff_c > 0


def test_fast_forward_skips_aperiodic_loop(monkeypatch):
    """No recurring period -> the detector must refuse (and stay exact)."""
    program = _aperiodic_loop_program()
    ref, ref_gm, _, _ = _run_ff(RTX2070, program, "reference", False,
                                monkeypatch)
    ff, ff_gm, ff_p, ff_c = _run_ff(RTX2070, program, "event", True,
                                    monkeypatch)
    assert ff == ref
    np.testing.assert_array_equal(ff_gm._words, ref_gm._words)
    assert ff_p == 0 and ff_c == 0


def test_default_engine_is_event(monkeypatch):
    monkeypatch.delenv("REPRO_TIMING_ENGINE", raising=False)
    assert TimingSimulator(RTX2070).engine == "event"
    monkeypatch.setenv("REPRO_TIMING_ENGINE", "reference")
    assert TimingSimulator(RTX2070).engine == "reference"
    monkeypatch.setenv("REPRO_TIMING_ENGINE", "bogus")
    with pytest.raises(ValueError, match="REPRO_TIMING_ENGINE"):
        TimingSimulator(RTX2070)
