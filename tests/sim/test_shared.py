"""Tests for banked shared memory and bank-conflict computation."""

import numpy as np
import pytest

from repro.sim.shared import (
    SharedMemory,
    bank_conflict_degree,
    conflict_multiplier,
)

ALL = np.ones(32, dtype=bool)


def lane_addresses(fn):
    return np.array([fn(l) for l in range(32)], dtype=np.int64)


class TestBankConflictDegree:
    def test_conflict_free_stride4(self):
        # Lane i -> word i: each bank gets exactly one word.
        addrs = lane_addresses(lambda l: 4 * l)
        assert bank_conflict_degree(addrs, 4) == 1

    def test_same_bank_stride128(self):
        # Lane i -> byte 128*i: every lane hits bank 0 -> 32-way conflict.
        addrs = lane_addresses(lambda l: 128 * l)
        assert bank_conflict_degree(addrs, 4) == 32

    def test_broadcast_is_free(self):
        # All lanes read the same word: hardware broadcasts.
        addrs = lane_addresses(lambda l: 64)
        assert bank_conflict_degree(addrs, 4) == 1

    def test_two_way_conflict(self):
        # Lane i -> word (i % 16) * 2: banks 0,2,..30 each get 1 distinct
        # word; 16 lanes duplicate the other 16 -> still 1 distinct word per
        # bank. Use (i%16)*2 + (i//16)*64 words to make 2 distinct per bank.
        addrs = lane_addresses(lambda l: 4 * ((l % 16) * 2 + (l // 16) * 64))
        assert bank_conflict_degree(addrs, 4) == 2

    def test_wide_access_conflict_free_baseline(self):
        # LDS.128 with lane i -> 16*i: words 4i..4i+3; 128 words over 32
        # banks = 4 per bank (the hardware's 4-phase baseline).
        addrs = lane_addresses(lambda l: 16 * l)
        assert bank_conflict_degree(addrs, 16) == 4

    def test_misaligned_raises(self):
        addrs = lane_addresses(lambda l: 4 * l + 2)
        with pytest.raises(ValueError, match="misaligned"):
            bank_conflict_degree(addrs, 4)

    def test_masked_lanes_ignored(self):
        addrs = lane_addresses(lambda l: 128 * l)  # nasty if all active
        mask = np.zeros(32, bool)
        mask[0] = True
        assert bank_conflict_degree(addrs, 4, mask) == 1

    def test_empty_mask(self):
        addrs = lane_addresses(lambda l: 4 * l)
        assert bank_conflict_degree(addrs, 4, np.zeros(32, bool)) == 0


class TestConflictMultiplier:
    def test_free_access_is_one(self):
        addrs = lane_addresses(lambda l: 4 * l)
        assert conflict_multiplier(addrs, 4) == 1.0

    def test_32way_is_32(self):
        addrs = lane_addresses(lambda l: 128 * l)
        assert conflict_multiplier(addrs, 4) == 32.0

    def test_wide_baseline_normalised(self):
        addrs = lane_addresses(lambda l: 16 * l)
        assert conflict_multiplier(addrs, 16) == 1.0

    def test_wide_conflicted(self):
        # LDS.128 with every lane on the same 16 bytes: 4 distinct words in
        # 4 banks -> degree 4 -> multiplier 1 (broadcast). Instead use lane
        # stride 128 bytes: lane words 32i..32i+3 -> banks 0..3 each get 32
        # distinct words -> degree 32, multiplier 8.
        addrs = lane_addresses(lambda l: 128 * l)
        assert conflict_multiplier(addrs, 16) == 8.0

    def test_padded_fragment_load_conflict_free(self):
        # The HGEMM fragment load: one LDS.32 gathers an 8x8 half fragment;
        # lane l reads 4 bytes at (row = l//4, half-col = 2*(l%4)).  With the
        # padded tile (stride 32 + 8 = 40 halves -> 80 bytes) the 8 rows land
        # on disjoint bank quadruples: conflict-free (paper Fig. 5, padded).
        addrs = lane_addresses(lambda l: 80 * (l // 4) + 4 * (l % 4))
        assert conflict_multiplier(addrs, 4) == 1.0

    def test_naive_fragment_load_4way_conflict(self):
        # Naive stride 32 halves (64 bytes): rows two apart revisit the same
        # banks -> 4-way conflict on the same load (paper Fig. 5, naive).
        addrs = lane_addresses(lambda l: 64 * (l // 4) + 4 * (l % 4))
        assert conflict_multiplier(addrs, 4) == 4.0

    def test_padded_tile_store_conflict_free(self):
        # STS.128 writing the A tile: 4 lanes cover one 64-byte row chunk.
        # Both strides are conflict-free for the store...
        padded = lane_addresses(lambda l: 80 * (l // 4) + 16 * (l % 4))
        assert conflict_multiplier(padded, 16) == 1.0

    def test_naive_tile_store_also_conflict_free(self):
        # ...so the whole Fig. 5 gap comes from the LDS side.
        naive = lane_addresses(lambda l: 64 * (l // 4) + 16 * (l % 4))
        assert conflict_multiplier(naive, 16) == 1.0


class TestSharedMemory:
    def test_roundtrip_32(self):
        sm = SharedMemory(4096)
        addrs = lane_addresses(lambda l: 4 * l)
        data = np.arange(32, dtype=np.uint32)[None, :]
        sm.store_warp(addrs, data, 4, ALL)
        out = sm.load_warp(addrs, 4, ALL)
        np.testing.assert_array_equal(out, data)

    def test_roundtrip_128(self):
        sm = SharedMemory(4096)
        addrs = lane_addresses(lambda l: 16 * l)
        data = np.arange(128, dtype=np.uint32).reshape(4, 32)
        sm.store_warp(addrs, data, 16, ALL)
        np.testing.assert_array_equal(sm.load_warp(addrs, 16, ALL), data)

    def test_masked_load_returns_zero(self):
        sm = SharedMemory(256)
        addrs = lane_addresses(lambda l: 4 * l)
        mask = np.zeros(32, bool)
        mask[1] = True
        sm.store_warp(addrs, np.full((1, 32), 7, np.uint32), 4, mask)
        out = sm.load_warp(addrs, 4, ALL)
        assert out[0, 1] == 7
        assert out[0, 0] == 0

    def test_out_of_bounds_raises(self):
        sm = SharedMemory(64)
        addrs = lane_addresses(lambda l: 4 * l)
        with pytest.raises(IndexError):
            sm.load_warp(addrs, 4, ALL)

    def test_misaligned_raises(self):
        sm = SharedMemory(4096)
        addrs = lane_addresses(lambda l: 8 * l + 4)
        with pytest.raises(ValueError, match="misaligned"):
            sm.load_warp(addrs, 8, ALL)

    def test_debug_read_array(self):
        sm = SharedMemory(128)
        addrs = lane_addresses(lambda l: 4 * l)
        sm.store_warp(addrs, np.arange(32, dtype=np.uint32)[None, :], 4, ALL)
        np.testing.assert_array_equal(
            sm.read_array(0, np.uint32, 8), np.arange(8, dtype=np.uint32)
        )

    def test_bad_size(self):
        with pytest.raises(ValueError):
            SharedMemory(13)

    def test_zero_size_allowed(self):
        SharedMemory(0)
