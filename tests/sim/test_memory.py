"""Tests for global memory and the L1/L2/DRAM service model."""

import numpy as np
import pytest

from repro.arch import RTX2070
from repro.sim.memory import GlobalMemory, MemorySubsystem

ALL = np.ones(32, dtype=bool)


def addrs(fn):
    return np.array([fn(l) for l in range(32)], dtype=np.int64)


class TestGlobalMemoryHost:
    def test_write_read_bytes(self):
        gm = GlobalMemory(1024)
        gm.write_bytes(16, b"\x01\x02\x03\x04" * 4)
        assert gm.read_bytes(16, 16) == b"\x01\x02\x03\x04" * 4

    def test_array_roundtrip(self):
        gm = GlobalMemory(4096)
        data = np.arange(100, dtype=np.float16)
        gm.write_array(128, data)
        np.testing.assert_array_equal(gm.read_array(128, np.float16, 100), data)

    def test_misaligned_host_access(self):
        gm = GlobalMemory(64)
        with pytest.raises(ValueError):
            gm.write_bytes(2, b"\x00" * 4)

    def test_out_of_bounds(self):
        gm = GlobalMemory(64)
        with pytest.raises(IndexError):
            gm.read_bytes(60, 8)

    def test_bad_size(self):
        with pytest.raises(ValueError):
            GlobalMemory(0)
        with pytest.raises(ValueError):
            GlobalMemory(10)


class TestGlobalMemoryWarp:
    def test_load_store_roundtrip_32(self):
        gm = GlobalMemory(1024)
        a = addrs(lambda l: 4 * l)
        data = np.arange(32, dtype=np.uint32)[None, :]
        gm.store_warp(a, data, 4, ALL)
        np.testing.assert_array_equal(gm.load_warp(a, 4, ALL), data)

    def test_load_store_roundtrip_128(self):
        gm = GlobalMemory(4096)
        a = addrs(lambda l: 16 * l)
        data = np.arange(128, dtype=np.uint32).reshape(4, 32)
        gm.store_warp(a, data, 16, ALL)
        np.testing.assert_array_equal(gm.load_warp(a, 16, ALL), data)

    def test_masked_lanes_untouched(self):
        gm = GlobalMemory(256)
        a = addrs(lambda l: 4 * l)
        mask = np.zeros(32, bool)
        mask[2] = True
        gm.store_warp(a, np.full((1, 32), 9, np.uint32), 4, mask)
        out = gm.load_warp(a, 4, ALL)
        assert out[0, 2] == 9 and out[0, 3] == 0

    def test_misaligned_raises(self):
        gm = GlobalMemory(256)
        a = addrs(lambda l: 8 * l + 4)
        with pytest.raises(ValueError, match="misaligned"):
            gm.load_warp(a, 8, ALL)

    def test_oob_raises(self):
        gm = GlobalMemory(64)
        a = addrs(lambda l: 16 * l)
        with pytest.raises(IndexError):
            gm.load_warp(a, 16, ALL)

    def test_inactive_oob_lane_ignored(self):
        gm = GlobalMemory(64)
        a = addrs(lambda l: 4 * l)  # lanes 16.. would be OOB
        a[16:] = 10**9
        mask = np.zeros(32, bool)
        mask[:16] = True
        gm.load_warp(a, 4, mask)  # must not raise


class TestMemorySubsystem:
    def test_cold_access_goes_to_dram(self):
        ms = MemorySubsystem(RTX2070)
        s = ms.access(0, addrs(lambda l: 4 * l), 4, ALL)
        assert s.level == "dram"
        assert ms.counters.dram_bytes > 0

    def test_repeat_access_hits_l1(self):
        ms = MemorySubsystem(RTX2070)
        a = addrs(lambda l: 4 * l)
        ms.access(0, a, 4, ALL)
        s = ms.access(1000, a, 4, ALL)
        assert s.level == "l1"
        assert ms.counters.l1_hit_bytes > 0

    def test_bypass_l1_hits_l2(self):
        # The paper's methodology: .CG bypasses L1, so repeats hit L2.
        ms = MemorySubsystem(RTX2070)
        a = addrs(lambda l: 4 * l)
        ms.access(0, a, 4, ALL, bypass_l1=True)
        s = ms.access(1000, a, 4, ALL, bypass_l1=True)
        assert s.level == "l2"

    def test_l1_capacity_eviction(self):
        # Stream > 32 KB through L1, then revisit the start: must miss L1.
        ms = MemorySubsystem(RTX2070, l1_bytes=4096)
        for i in range(64):  # 64 x 128B lines = 8 KB > 4 KB L1
            a = addrs(lambda l, i=i: i * 128 + 4 * l)
            ms.access(i, a, 4, ALL)
        s = ms.access(10_000, addrs(lambda l: 4 * l), 4, ALL)
        assert s.level in ("l2", "dram")

    def test_sector_counting(self):
        ms = MemorySubsystem(RTX2070)
        # 32 lanes x 4B contiguous = 128 bytes = 4 sectors of 32B.
        s = ms.access(0, addrs(lambda l: 4 * l), 4, ALL)
        assert s.sectors == 4
        # Strided: one 4B word per 32B sector -> 32 sectors.
        s2 = ms.access(0, addrs(lambda l: 32 * l + 4096), 4, ALL)
        assert s2.sectors == 32

    def test_bandwidth_serialisation(self):
        # Back-to-back big accesses must be spaced by bytes/bandwidth.
        ms = MemorySubsystem(RTX2070)
        a1 = ms.access(0, addrs(lambda l: 16 * l), 16, ALL)
        a2 = ms.access(0, addrs(lambda l: 4096 + 16 * l), 16, ALL)
        assert a2.ready_cycle > a1.ready_cycle

    def test_dram_rate_matches_measured_bandwidth(self):
        # Streaming N bytes cold should take ~ N / measured-BW seconds.
        ms = MemorySubsystem(RTX2070, bandwidth_share=1.0)
        total = 0
        last = None
        for i in range(256):
            a = addrs(lambda l, i=i: i * 512 + 16 * l)
            last = ms.access(0, a, 16, ALL)
            total += 512
        seconds = RTX2070.cycles_to_seconds(last.ready_cycle - RTX2070.ldg_latency_cycles)
        gbps = total / seconds / 1e9
        assert gbps == pytest.approx(RTX2070.dram_measured_gbps, rel=0.05)

    def test_store_counts_traffic(self):
        ms = MemorySubsystem(RTX2070)
        ms.access(0, addrs(lambda l: 4 * l), 4, ALL, is_store=True)
        assert ms.counters.store_bytes == 128

    def test_empty_mask_short_circuits(self):
        ms = MemorySubsystem(RTX2070)
        s = ms.access(5, addrs(lambda l: 4 * l), 4, np.zeros(32, bool))
        assert s.sectors == 0
        assert s.ready_cycle == 5

    def test_bad_share(self):
        with pytest.raises(ValueError):
            MemorySubsystem(RTX2070, bandwidth_share=0.0)
