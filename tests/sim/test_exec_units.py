"""Tests for the shared functional executors."""

import numpy as np
import pytest

from repro.arch import PredicateFile, RegisterFile
from repro.hmma import (
    COL_MAJOR,
    fragments_to_matrix16x8,
    matrix16x8_to_fragments,
    matrix_to_fragment,
)
from repro.isa import assemble
from repro.sim.exec_units import ExecError, execute
from repro.sim.memory import GlobalMemory
from repro.sim.shared import SharedMemory


class Ctx:
    """Minimal warp context for executor tests."""

    def __init__(self):
        self.regs = RegisterFile()
        self.preds = PredicateFile()
        self.tid = np.arange(32, dtype=np.uint32)
        self.lane_ids = np.arange(32, dtype=np.uint32)
        self.ctaid = (3, 1, 0)
        self.global_mem = GlobalMemory(64 * 1024)
        self.shared_mem = SharedMemory(16 * 1024)
        self._clock = 1234

    def clock(self):
        return self._clock


def run1(ctx, source):
    """Assemble a single instruction and execute it, applying writes."""
    prog = assemble(source + "\nEXIT")
    eff = execute(prog[0], ctx)
    for first, values, mask in eff.reg_writes:
        ctx.regs.write_group(first, values, mask=None if mask.all() else mask)
    for idx, values, mask in eff.pred_writes:
        ctx.preds.write(idx, values, mask=None if mask.all() else mask)
    return eff


class TestAlu:
    def test_mov32i(self):
        ctx = Ctx()
        run1(ctx, "MOV32I R1, 0x1234")
        assert np.all(ctx.regs.read(1) == 0x1234)

    def test_mov_reg(self):
        ctx = Ctx()
        ctx.regs.write(2, np.arange(32, dtype=np.uint32))
        run1(ctx, "MOV R3, R2")
        np.testing.assert_array_equal(ctx.regs.read(3), np.arange(32))

    def test_iadd3(self):
        ctx = Ctx()
        ctx.regs.write(1, np.full(32, 10, np.uint32))
        ctx.regs.write(2, np.full(32, 20, np.uint32))
        run1(ctx, "IADD3 R0, R1, R2, 5")
        assert np.all(ctx.regs.read(0) == 35)

    def test_iadd3_negative_imm_wraps(self):
        ctx = Ctx()
        run1(ctx, "IADD3 R0, RZ, -1, RZ")
        assert np.all(ctx.regs.read(0) == 0xFFFFFFFF)

    def test_imad(self):
        ctx = Ctx()
        ctx.regs.write(1, np.arange(32, dtype=np.uint32))
        ctx.regs.write(2, np.full(32, 3, np.uint32))
        ctx.regs.write(3, np.full(32, 7, np.uint32))
        run1(ctx, "IMAD R0, R1, R2, R3")
        np.testing.assert_array_equal(ctx.regs.read(0), np.arange(32) * 3 + 7)

    def test_shf(self):
        ctx = Ctx()
        ctx.regs.write(1, np.full(32, 0b1100, np.uint32))
        run1(ctx, "SHF.L R0, R1, 2")
        assert np.all(ctx.regs.read(0) == 0b110000)
        run1(ctx, "SHF.R R2, R1, 2")
        assert np.all(ctx.regs.read(2) == 0b11)

    def test_lop3(self):
        ctx = Ctx()
        ctx.regs.write(1, np.full(32, 0b1010, np.uint32))
        run1(ctx, "LOP3.AND R0, R1, 0b0110")
        assert np.all(ctx.regs.read(0) == 0b0010)
        run1(ctx, "LOP3.OR R0, R1, 0b0110")
        assert np.all(ctx.regs.read(0) == 0b1110)
        run1(ctx, "LOP3.XOR R0, R1, 0b0110")
        assert np.all(ctx.regs.read(0) == 0b1100)

    def test_isetp_lt(self):
        ctx = Ctx()
        ctx.regs.write(1, np.arange(32, dtype=np.uint32))
        run1(ctx, "ISETP.LT.AND P0, PT, R1, 16, PT")
        got = ctx.preds.read(0)
        np.testing.assert_array_equal(got, np.arange(32) < 16)

    def test_isetp_signed_compare(self):
        ctx = Ctx()
        ctx.regs.write(1, np.full(32, 0xFFFFFFFF, np.uint32))  # -1
        run1(ctx, "ISETP.LT.AND P0, PT, R1, RZ, PT")
        assert np.all(ctx.preds.read(0))  # -1 < 0 signed

    def test_sel(self):
        ctx = Ctx()
        vals = np.zeros(32, bool)
        vals[:8] = True
        ctx.preds.write(1, vals)
        ctx.regs.write(2, np.full(32, 5, np.uint32))
        ctx.regs.write(3, np.full(32, 9, np.uint32))
        run1(ctx, "SEL R0, R2, R3, P1")
        out = ctx.regs.read(0)
        assert np.all(out[:8] == 5) and np.all(out[8:] == 9)

    def test_s2r_tid(self):
        ctx = Ctx()
        run1(ctx, "S2R R0, SR_TID.X")
        np.testing.assert_array_equal(ctx.regs.read(0), np.arange(32))

    def test_s2r_ctaid(self):
        ctx = Ctx()
        run1(ctx, "S2R R0, SR_CTAID.X")
        assert np.all(ctx.regs.read(0) == 3)
        run1(ctx, "S2R R1, SR_CTAID.Y")
        assert np.all(ctx.regs.read(1) == 1)

    def test_cs2r_clock(self):
        ctx = Ctx()
        run1(ctx, "CS2R R0, SR_CLOCKLO")
        assert np.all(ctx.regs.read(0) == 1234)

    def test_hfma2_packed(self):
        from repro.hmma.fp16 import pack_half2, unpack_half2

        ctx = Ctx()
        a = np.full(32, 2.0, np.float16)
        b = np.full(32, 3.0, np.float16)
        c = np.full(32, 1.0, np.float16)
        ctx.regs.write(1, pack_half2(a, a * 2))
        ctx.regs.write(2, pack_half2(b, b))
        ctx.regs.write(3, pack_half2(c, c))
        run1(ctx, "HFMA2 R0, R1, R2, R3")
        lo, hi = unpack_half2(ctx.regs.read(0))
        assert np.all(lo == 7.0)   # 2*3+1
        assert np.all(hi == 13.0)  # 4*3+1


class TestPredication:
    def test_guarded_off_lane_write_suppressed(self):
        ctx = Ctx()
        vals = np.zeros(32, bool)
        vals[0] = True
        ctx.preds.write(0, vals)
        run1(ctx, "@P0 MOV32I R1, 42")
        out = ctx.regs.read(1)
        assert out[0] == 42 and np.all(out[1:] == 0)

    def test_fully_off_no_effects(self):
        ctx = Ctx()
        eff = run1(ctx, "@P0 MOV32I R1, 42")  # P0 all-false
        assert eff.reg_writes == []

    def test_negated_guard(self):
        ctx = Ctx()
        run1(ctx, "@!P0 MOV32I R1, 7")  # !false = all lanes
        assert np.all(ctx.regs.read(1) == 7)


class TestHmmaExec:
    def test_hmma_1688_f16(self):
        rng = np.random.default_rng(0)
        a = rng.uniform(-1, 1, (16, 8)).astype(np.float16)
        b = rng.uniform(-1, 1, (8, 8)).astype(np.float16)
        c = rng.uniform(-1, 1, (16, 8)).astype(np.float16)
        ctx = Ctx()
        ctx.regs.write_group(8, matrix16x8_to_fragments(a))
        ctx.regs.write(10, matrix_to_fragment(b, COL_MAJOR))
        ctx.regs.write_group(4, matrix16x8_to_fragments(c))
        run1(ctx, "HMMA.1688.F16 R0, R8, R10, R4")
        got = fragments_to_matrix16x8(ctx.regs.read_group(0, 2))
        expected = (a.astype(np.float32) @ b.astype(np.float32)
                    + c.astype(np.float32)).astype(np.float16)
        np.testing.assert_array_equal(got, expected)

    def test_hmma_rejects_lane_predication(self):
        ctx = Ctx()
        vals = np.zeros(32, bool)
        vals[0] = True
        ctx.preds.write(0, vals)
        prog = assemble("@P0 HMMA.1688.F16 R0, R8, R10, R4\nEXIT")
        with pytest.raises(ExecError, match="warp-wide"):
            execute(prog[0], ctx)

    def test_hmma_rejects_rz_operand(self):
        ctx = Ctx()
        prog = assemble("HMMA.1688.F16 R0, RZ, R10, R4\nEXIT")
        with pytest.raises(ExecError, match="general registers"):
            execute(prog[0], ctx)


class TestMemoryExec:
    def test_ldg_stg_roundtrip(self):
        ctx = Ctx()
        ctx.global_mem.write_array(0x100, np.arange(32, dtype=np.uint32))
        # R2 = 0x100 + 4*tid
        run1(ctx, "S2R R1, SR_TID.X")
        run1(ctx, "IMAD R2, R1, 4, 0x100")
        run1(ctx, "LDG.E.32 R3, [R2]")
        np.testing.assert_array_equal(ctx.regs.read(3), np.arange(32))
        run1(ctx, "IMAD R4, R1, 4, 0x200")
        run1(ctx, "STG.E.32 [R4], R3")
        np.testing.assert_array_equal(
            ctx.global_mem.read_array(0x200, np.uint32, 32), np.arange(32)
        )

    def test_ldg_width_mods(self):
        ctx = Ctx()
        data = np.arange(128, dtype=np.uint32)
        ctx.global_mem.write_array(0, data)
        run1(ctx, "S2R R1, SR_TID.X")
        run1(ctx, "IMAD R2, R1, 16, RZ")
        run1(ctx, "LDG.E.128 R4, [R2]")
        got = ctx.regs.read_group(4, 4)
        np.testing.assert_array_equal(got, data.reshape(32, 4).T)

    def test_lds_sts_roundtrip(self):
        ctx = Ctx()
        run1(ctx, "S2R R1, SR_TID.X")
        run1(ctx, "IMAD R2, R1, 4, RZ")
        run1(ctx, "MOV R3, R1")
        run1(ctx, "STS [R2], R3")
        run1(ctx, "LDS R5, [R2]")
        np.testing.assert_array_equal(ctx.regs.read(5), np.arange(32))

    def test_transaction_metadata(self):
        ctx = Ctx()
        run1(ctx, "S2R R1, SR_TID.X")
        run1(ctx, "IMAD R2, R1, 4, RZ")
        eff = run1(ctx, "LDG.E.CG.32 R3, [R2+0x40]")
        txn = eff.transaction
        assert txn.space == "global"
        assert txn.bypass_l1
        assert txn.width_bytes == 4
        np.testing.assert_array_equal(txn.addresses, np.arange(32) * 4 + 0x40)

    def test_masked_load_keeps_register(self):
        ctx = Ctx()
        ctx.regs.write(3, np.full(32, 77, np.uint32))
        vals = np.zeros(32, bool)
        vals[0] = True
        ctx.preds.write(0, vals)
        run1(ctx, "S2R R1, SR_TID.X")
        run1(ctx, "IMAD R2, R1, 4, RZ")
        run1(ctx, "@P0 LDG.E.32 R3, [R2]")
        out = ctx.regs.read(3)
        assert out[0] == 0  # loaded (memory is zeroed)
        assert np.all(out[1:] == 77)  # untouched lanes keep their value


class TestControlExec:
    def test_exit(self):
        ctx = Ctx()
        prog = assemble("EXIT")
        assert execute(prog[0], ctx).exited

    def test_bar(self):
        ctx = Ctx()
        prog = assemble("BAR.SYNC\nEXIT")
        assert execute(prog[0], ctx).barrier

    def test_bra_uniform_taken(self):
        ctx = Ctx()
        prog = assemble("L:\nBRA L")
        eff = execute(prog[0], ctx)
        assert eff.branch_target == 0

    def test_bra_not_taken(self):
        ctx = Ctx()
        prog = assemble("L:\n@P0 BRA L\nEXIT")  # P0 false everywhere
        eff = execute(prog[0], ctx)
        assert eff.branch_target is None

    def test_divergent_branch_rejected(self):
        ctx = Ctx()
        vals = np.zeros(32, bool)
        vals[0] = True
        ctx.preds.write(0, vals)
        prog = assemble("L:\n@P0 BRA L\nEXIT")
        with pytest.raises(ExecError, match="divergent"):
            execute(prog[0], ctx)
