"""Property-based tests on the simulator's micro-models.

These pin the mechanisms against independent brute-force references:
the bank-conflict calculator, the MIO queue's drain behaviour, and the
LRU line sets of the memory hierarchy.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import RTX2070
from repro.sim.memory import _LruLineSet
from repro.sim.shared import NUM_BANKS, bank_conflict_degree
from repro.sim.timing import _MioQueue


def brute_force_degree(addresses, width_bytes, mask):
    """Independent re-implementation of the bank-phase count."""
    words = set()
    for addr, active in zip(addresses, mask):
        if not active:
            continue
        for byte in range(0, width_bytes, 4):
            words.add((addr + byte) // 4)
    per_bank = {}
    for word in words:
        per_bank.setdefault(word % NUM_BANKS, set()).add(word)
    return max((len(v) for v in per_bank.values()), default=0)


class TestBankConflictProperty:
    @settings(max_examples=150)
    @given(
        seed=st.integers(0, 10**6),
        width=st.sampled_from([4, 8, 16]),
        mask_seed=st.integers(0, 10**6),
    )
    def test_matches_brute_force(self, seed, width, mask_seed):
        rng = np.random.default_rng(seed)
        addresses = rng.integers(0, 1024, 32, dtype=np.int64) * width
        mask = np.random.default_rng(mask_seed).random(32) < 0.8
        got = bank_conflict_degree(addresses, width, mask)
        assert got == brute_force_degree(addresses, width, mask)

    @settings(max_examples=50)
    @given(seed=st.integers(0, 10**6))
    def test_degree_bounds(self, seed):
        rng = np.random.default_rng(seed)
        addresses = rng.integers(0, 2048, 32, dtype=np.int64) * 4
        degree = bank_conflict_degree(addresses, 4, np.ones(32, bool))
        assert 1 <= degree <= 32

    def test_permutation_invariance(self):
        rng = np.random.default_rng(7)
        addresses = rng.integers(0, 256, 32, dtype=np.int64) * 4
        mask = np.ones(32, bool)
        base = bank_conflict_degree(addresses, 4, mask)
        for _ in range(5):
            perm = rng.permutation(32)
            assert bank_conflict_degree(addresses[perm], 4, mask) == base


class TestMioQueueProperties:
    def test_drain_rate_is_exact(self):
        # N entries of occupancy c drain in exactly N*c cycles.
        q = _MioQueue(depth=8)
        last = 0.0
        for i in range(100):
            last = q.push(0, 2.11)
        assert last == pytest.approx(100 * 2.11)

    def test_idle_queue_restarts_from_now(self):
        q = _MioQueue(depth=8)
        q.push(0, 4.0)           # drains at 4
        done = q.push(100, 4.0)  # queue idle: starts at 100
        assert done == pytest.approx(104.0)

    def test_capacity_gates_acceptance(self):
        q = _MioQueue(depth=4)
        for _ in range(4):
            q.push(0, 10.0)
        assert not q.can_accept(0)
        assert q.next_slot_free(0) == pytest.approx(10.0)
        assert q.can_accept(10)      # first entry drained at 10

    @settings(max_examples=50)
    @given(occupancies=st.lists(st.floats(min_value=0.5, max_value=20),
                                min_size=1, max_size=40))
    def test_fifo_completion_order(self, occupancies):
        q = _MioQueue(depth=1000)
        dones = [q.push(0, occ) for occ in occupancies]
        assert dones == sorted(dones)
        assert dones[-1] == pytest.approx(sum(occupancies))


class TestLruLineSet:
    def test_hit_after_insert(self):
        s = _LruLineSet(capacity_bytes=4 * 128, line_bytes=128)
        s.insert(1)
        assert s.lookup(1)

    def test_eviction_order(self):
        s = _LruLineSet(capacity_bytes=2 * 128, line_bytes=128)
        s.insert(1)
        s.insert(2)
        s.insert(3)          # evicts 1
        assert not s.lookup(1)
        assert s.lookup(2) and s.lookup(3)

    def test_lookup_refreshes_recency(self):
        s = _LruLineSet(capacity_bytes=2 * 128, line_bytes=128)
        s.insert(1)
        s.insert(2)
        s.lookup(1)          # 1 becomes most recent
        s.insert(3)          # evicts 2, not 1
        assert s.lookup(1)
        assert not s.lookup(2)

    def test_zero_capacity_never_hits(self):
        s = _LruLineSet(capacity_bytes=0, line_bytes=128)
        s.insert(1)
        assert not s.lookup(1)

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=200))
    def test_size_never_exceeds_capacity(self, lines):
        s = _LruLineSet(capacity_bytes=8 * 128, line_bytes=128)
        for line in lines:
            s.insert(line)
            assert len(s) <= 8


class TestTimingDeterminism:
    def test_repeat_runs_identical(self):
        from repro.core import ours
        from repro.core.builder import HgemmProblem, build_hgemm
        from repro.sim import GlobalMemory, TimingSimulator

        prob = HgemmProblem(256, 256, 64, 0, 4 << 20, 8 << 20)
        program = build_hgemm(ours(), prob)
        cycles = []
        for _ in range(2):
            sim = TimingSimulator(RTX2070)
            cycles.append(sim.run(program, GlobalMemory(16 << 20)).cycles)
        assert cycles[0] == cycles[1]
