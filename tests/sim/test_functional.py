"""Tests for the grid-level functional simulator."""

import numpy as np
import pytest

from repro.isa import assemble
from repro.sim import FunctionalSimulator, GlobalMemory, SimLimitError
from repro.sim.exec_units import ExecError

# Writes tid to out[tid] for a 64-thread CTA, one CTA.
STORE_TID = """
.kernel store_tid
.block 64
  S2R R1, SR_TID.X
  IMAD R2, R1, 4, RZ
  STG.E.32 [R2], R1
  EXIT
"""


class TestBasicKernels:
    def test_store_tid(self):
        gm = GlobalMemory(4096)
        sim = FunctionalSimulator()
        result = sim.run(assemble(STORE_TID), gm)
        np.testing.assert_array_equal(
            gm.read_array(0, np.uint32, 64), np.arange(64)
        )
        assert result.ctas_run == 1
        assert result.opcode_counts["STG"] == 2  # one per warp

    def test_grid_indexing(self):
        # Each CTA writes its ctaid.x at out[ctaid.x].
        src = """
        .block 32
          S2R R1, SR_CTAID.X
          IMAD R2, R1, 4, RZ
          STG.E.32 [R2], R1
          EXIT
        """
        gm = GlobalMemory(1024)
        result = FunctionalSimulator().run(assemble(src), gm, grid_dim=(5, 1))
        np.testing.assert_array_equal(gm.read_array(0, np.uint32, 5), np.arange(5))
        assert result.ctas_run == 5

    def test_2d_grid(self):
        src = """
        .block 32
          S2R R1, SR_CTAID.X
          S2R R2, SR_CTAID.Y
          IMAD R3, R2, 3, R1      // flat = y*3 + x
          IMAD R4, R3, 4, RZ
          STG.E.32 [R4], R3
          EXIT
        """
        gm = GlobalMemory(1024)
        FunctionalSimulator().run(assemble(src), gm, grid_dim=(3, 4))
        np.testing.assert_array_equal(gm.read_array(0, np.uint32, 12), np.arange(12))


class TestLoops:
    def test_counted_loop(self):
        # Sum 0..9 per lane, store lane sums.
        src = """
        .block 32
          MOV32I R1, 0        // i
          MOV32I R2, 0        // acc
        LOOP:
          IADD3 R2, R2, R1, RZ
          IADD3 R1, R1, 1, RZ
          ISETP.LT.AND P0, PT, R1, 10, PT
          @P0 BRA LOOP
          S2R R3, SR_TID.X
          IMAD R4, R3, 4, RZ
          STG.E.32 [R4], R2
          EXIT
        """
        gm = GlobalMemory(1024)
        FunctionalSimulator().run(assemble(src), gm)
        assert np.all(gm.read_array(0, np.uint32, 32) == 45)

    def test_runaway_loop_fuel(self):
        src = """
        .block 32
        LOOP:
          BRA LOOP
        """
        sim = FunctionalSimulator(max_instructions_per_warp=1000)
        with pytest.raises(SimLimitError, match="exceeded"):
            sim.run(assemble(src), GlobalMemory(64))


class TestBarriers:
    def test_inter_warp_communication(self):
        # Warp 0 writes shared[0..31]; after BAR, warp 1 reads it and stores.
        src = """
        .kernel xwarp
        .block 64
        .smem 256
          S2R R1, SR_TID.X
          ISETP.LT.AND P0, PT, R1, 32, PT    // P0: warp 0 lanes
          IMAD R2, R1, 4, RZ                 // tid*4
          IADD3 R3, R1, 100, RZ
          @P0 STS [R2], R3
          BAR.SYNC
          IADD3 R4, R2, -128, RZ             // warp1: (tid-32)*4
          @!P0 LDS R5, [R4]
          @!P0 STG.E.32 [R4], R5
          EXIT
        """
        gm = GlobalMemory(1024)
        FunctionalSimulator().run(assemble(src), gm)
        np.testing.assert_array_equal(
            gm.read_array(0, np.uint32, 32), np.arange(32) + 100
        )

    def test_multiple_barriers(self):
        # Two rounds of ping-pong through shared memory.
        src = """
        .block 64
        .smem 128
          S2R R1, SR_TID.X
          ISETP.LT.AND P0, PT, R1, 32, PT
          LOP3.AND R2, R1, 31
          IMAD R2, R2, 4, RZ                 // lane*4
          @P0 STS [R2], R1
          BAR.SYNC
          @!P0 LDS R3, [R2]
          @!P0 IADD3 R3, R3, 1, RZ
          @!P0 STS [R2], R3
          BAR.SYNC
          @P0 LDS R4, [R2]
          @P0 IMAD R5, R1, 4, RZ
          @P0 STG.E.32 [R5], R4
          EXIT
        """
        gm = GlobalMemory(1024)
        FunctionalSimulator().run(assemble(src), gm)
        np.testing.assert_array_equal(
            gm.read_array(0, np.uint32, 32), np.arange(32) + 1
        )


class TestGridLockstep:
    def test_cta_divergent_branch_destacks(self):
        # CTAs 0-1 take the @P0 branch, CTAs 2-3 fall through: grid-uniform
        # execution must refuse at the divergent BRA, de-stack to per-CTA
        # runs, and still produce memory bit-identical to the lockstep
        # engine.
        src = """
        .block 32
          S2R R1, SR_CTAID.X
          S2R R2, SR_TID.X
          IMAD R3, R1, 128, RZ
          IMAD R4, R2, 4, R3                 // &out[ctaid*32 + tid]
          ISETP.LT.AND P0, PT, R1, 2, PT     // P0: ctaid < 2
          @P0 BRA SMALL
          MOV32I R5, 777
          STG.E.32 [R4], R5
          EXIT
        SMALL:
          MOV32I R5, 111
          STG.E.32 [R4], R5
          EXIT
        """
        from repro.perf.stats import STATS

        program = assemble(src)
        results = {}
        for engine in ("lockstep", "gridlock"):
            gm = GlobalMemory(4096)
            STATS.counters.pop("func.grid_destacks", None)
            FunctionalSimulator(engine=engine).run(program, gm,
                                                   grid_dim=(4, 1))
            results[engine] = (gm.read_array(0, np.uint32, 128),
                               STATS.counters.get("func.grid_destacks", 0))
        want = np.repeat([111, 111, 777, 777], 32).astype(np.uint32)
        np.testing.assert_array_equal(results["gridlock"][0], want)
        np.testing.assert_array_equal(results["lockstep"][0],
                                      results["gridlock"][0])
        assert results["lockstep"][1] == 0
        assert results["gridlock"][1] >= 1

    def test_uniform_grid_stays_stacked(self):
        # Identical control flow in every CTA: the grid-lockstep engine
        # should never fall back, and memory must match lockstep exactly.
        src = """
        .block 32
          S2R R1, SR_CTAID.X
          S2R R2, SR_TID.X
          IMAD R3, R1, 128, RZ
          IMAD R4, R2, 4, R3
          IADD3 R5, R1, R2, RZ
          STG.E.32 [R4], R5
          EXIT
        """
        from repro.perf.stats import STATS

        program = assemble(src)
        images = {}
        for engine in ("lockstep", "gridlock"):
            gm = GlobalMemory(4096)
            STATS.counters.pop("func.grid_destacks", None)
            FunctionalSimulator(engine=engine).run(program, gm,
                                                   grid_dim=(6, 1))
            images[engine] = gm.read_array(0, np.uint32, 192)
            if engine == "gridlock":
                assert STATS.counters.get("func.grid_destacks", 0) == 0
        np.testing.assert_array_equal(images["lockstep"], images["gridlock"])


class TestErrors:
    def test_missing_exit(self):
        src = ".block 32\nNOP\n"
        with pytest.raises(ExecError, match="missing EXIT"):
            FunctionalSimulator().run(assemble(src), GlobalMemory(64))

    def test_instruction_counting(self):
        gm = GlobalMemory(4096)
        result = FunctionalSimulator().run(assemble(STORE_TID), gm)
        # 2 warps x 4 instructions.
        assert result.instructions_retired == 8
