"""Golden functional regression: every execution engine is pinned bit-exactly.

These values were captured from the seed interpreter (pre-predecode).
The decoded-op engine, the warp-lockstep engine, the window scheduler's
batched fast paths, and the CTA-parallel sharding must all be provably
behaviour-preserving: for every launch they must retire the same opcode mix
and produce the same C matrix to the bit.  Any change to a digest or count
here is a semantics change and must be deliberate.

The digests hash the raw float16 output bytes, so they also pin the HMMA
precision model (per-step FP16 accumulator rounding, BLAS product order).
The IGEMM goldens pin the ``IMMA.8816`` batched fast paths and the int8
epilogue the same way (raw int32 bytes, exact integer arithmetic).
"""

import hashlib

import numpy as np
import pytest

from repro.core import hgemm, igemm
from repro.sim import functional


#: (kernel, m, n, k) -> (sha256 of C bytes, instructions retired, CTAs,
#: full retired-opcode counts).
GOLDEN = {
    ("ours", 256, 256, 32): (
        "86f25e2f809d4b208422202515dfaf429eadd80e063c2aaa1e1b791eb94408fa",
        5864, 1,
        {"BAR": 24, "BRA": 8, "EXIT": 8, "HMMA": 2048, "IADD3": 304,
         "IMAD": 144, "ISETP": 16, "LDG": 128, "LDS": 848, "LOP3": 40,
         "MOV": 1032, "MOV32I": 24, "NOP": 24, "S2R": 24, "SHF": 40,
         "STG": 1024, "STS": 128},
    ),
    ("ours", 384, 256, 64): (
        "f33a21558fcbce865edadaabfc7133ccd727e25ede9820d6c893d8472c31209f",
        15408, 3,
        {"BAR": 120, "BRA": 48, "EXIT": 24, "HMMA": 6144, "IADD3": 840,
         "IMAD": 432, "ISETP": 72, "LDG": 432, "LDS": 3312, "LOP3": 120,
         "MOV": 1560, "MOV32I": 72, "NOP": 72, "S2R": 72, "SHF": 120,
         "STG": 1536, "STS": 432},
    ),
    ("cublas", 256, 256, 32): (
        "86f25e2f809d4b208422202515dfaf429eadd80e063c2aaa1e1b791eb94408fa",
        7056, 4,
        {"BAR": 48, "BRA": 16, "EXIT": 16, "HMMA": 2048, "IADD3": 544,
         "IMAD": 288, "ISETP": 32, "LDG": 256, "LDS": 1184, "LOP3": 80,
         "MOV": 1040, "MOV32I": 48, "NOP": 48, "S2R": 48, "SHF": 80,
         "STG": 1024, "STS": 256},
    ),
    ("cublas", 384, 256, 64): (
        "f33a21558fcbce865edadaabfc7133ccd727e25ede9820d6c893d8472c31209f",
        17160, 6,
        {"BAR": 72, "BRA": 24, "EXIT": 24, "HMMA": 6144, "IADD3": 1392,
         "IMAD": 816, "ISETP": 48, "LDG": 768, "LDS": 3312, "LOP3": 360,
         "MOV": 1560, "MOV32I": 72, "NOP": 72, "S2R": 72, "SHF": 120,
         "STG": 1536, "STS": 768},
    ),
}


#: (m, n, k) -> (sha256 of int32 C bytes, instructions retired, CTAs,
#: full retired-opcode counts) for the generated IMMA.8816 kernel.
GOLDEN_IGEMM = {
    (128, 128, 32): (
        "8eea040b3a29d65179a05df09a08992424714f4c51f038959c9646e283ce5ee4",
        1792, 1,
        {"BAR": 12, "BRA": 4, "EXIT": 4, "IADD3": 104, "IMAD": 72,
         "IMMA": 512, "ISETP": 8, "LDG": 32, "LDS": 164, "LOP3": 20,
         "MOV": 516, "MOV32I": 12, "NOP": 12, "S2R": 12, "SHF": 20,
         "STG": 256, "STS": 32},
    ),
    (192, 128, 64): (
        "b46cc9b641f98e5782aae9c447d6b2e950d39900756ffc89006799c5d546978e",
        3984, 3,
        {"BAR": 18, "BRA": 6, "EXIT": 6, "IADD3": 300, "IMAD": 108,
         "IMMA": 1536, "ISETP": 12, "LDG": 144, "LDS": 438, "LOP3": 30,
         "MOV": 774, "MOV32I": 18, "NOP": 18, "S2R": 18, "SHF": 30,
         "STG": 384, "STS": 144},
    ),
}


def _inputs(m, n, k):
    rng = np.random.default_rng(7)
    a = rng.uniform(-2, 2, (m, k)).astype(np.float16)
    b = rng.uniform(-2, 2, (k, n)).astype(np.float16)
    return a, b


def _int8_inputs(m, n, k):
    rng = np.random.default_rng(11)
    a = rng.integers(-128, 128, (m, k), dtype=np.int8)
    b = rng.integers(-128, 128, (k, n), dtype=np.int8)
    return a, b


def _digest(c) -> str:
    return hashlib.sha256(np.ascontiguousarray(c).tobytes()).hexdigest()


def _run(kernel, m, n, k, **kwargs):
    a, b = _inputs(m, n, k)
    return hgemm(a, b, kernel=kernel, return_run=True, **kwargs)


@pytest.mark.parametrize("engine", functional.ENGINES)
@pytest.mark.parametrize("kernel,m,n,k", sorted(GOLDEN))
def test_golden_functional(kernel, m, n, k, engine, monkeypatch):
    monkeypatch.setenv("REPRO_FUNC_ENGINE", engine)
    digest, retired, ctas, opcodes = GOLDEN[(kernel, m, n, k)]
    run = _run(kernel, m, n, k)
    assert _digest(run.c) == digest
    assert run.stats.instructions_retired == retired
    assert run.stats.ctas_run == ctas
    assert run.stats.opcode_counts == opcodes


@pytest.mark.parametrize("engine", functional.ENGINES)
@pytest.mark.parametrize("m,n,k", sorted(GOLDEN_IGEMM))
def test_golden_igemm(m, n, k, engine, monkeypatch):
    """IMMA.8816 kernels retire identically on every engine; the int32
    digests were captured from the reference interpreter."""
    monkeypatch.setenv("REPRO_FUNC_ENGINE", engine)
    digest, retired, ctas, opcodes = GOLDEN_IGEMM[(m, n, k)]
    a, b = _int8_inputs(m, n, k)
    run = igemm(a, b, return_run=True)
    assert _digest(run.c) == digest
    assert run.stats.instructions_retired == retired
    assert run.stats.ctas_run == ctas
    assert run.stats.opcode_counts == opcodes


def test_igemm_parallel_matches_serial():
    """CTA sharding is bit-identical for the int8 kernel too."""
    m, n, k = 192, 128, 64  # 3 CTAs -> real sharding
    digest, retired, ctas, opcodes = GOLDEN_IGEMM[(m, n, k)]
    a, b = _int8_inputs(m, n, k)
    run = igemm(a, b, return_run=True, max_workers=2)
    assert _digest(run.c) == digest
    assert run.stats.instructions_retired == retired
    assert run.stats.ctas_run == ctas
    assert run.stats.opcode_counts == opcodes


@pytest.mark.parametrize("kernel", ["ours", "cublas"])
def test_reference_engine_matches_goldens(kernel):
    """The seed interpreter (kept as ``engine='reference'``) still agrees
    with the pinned values -- the goldens are not self-referential."""
    from repro.core.builder import HgemmProblem, build_hgemm
    from repro.core.hgemm import _resolve_config
    from repro.sim.memory import GlobalMemory

    m, n, k = 256, 256, 32
    digest, retired, ctas, opcodes = GOLDEN[(kernel, m, n, k)]
    a, b = _inputs(m, n, k)
    sim = functional.FunctionalSimulator(engine="reference")
    config = _resolve_config(kernel, m, n, k)

    def aligned(nbytes):
        return (nbytes + 255) // 256 * 256

    b_addr = aligned(a.nbytes)
    c_addr = b_addr + aligned(b.nbytes)
    memory = GlobalMemory(c_addr + aligned(2 * m * n) + 256)
    memory.write_array(0, a)
    memory.write_array(b_addr, np.ascontiguousarray(b.T))
    program = build_hgemm(config, HgemmProblem(
        m=m, n=n, k=k, a_addr=0, b_addr=b_addr, c_addr=c_addr))
    stats = sim.run(program, memory, grid_dim=config.grid_dim(m, n))
    c = memory.read_array(c_addr, np.float16, m * n).reshape(m, n)
    assert _digest(c) == digest
    assert stats.instructions_retired == retired
    assert stats.ctas_run == ctas
    assert stats.opcode_counts == opcodes


def test_parallel_matches_serial():
    """CTA sharding over worker processes is bit-identical to serial."""
    kernel, m, n, k = "cublas", 384, 256, 64  # 6 CTAs -> real sharding
    digest, retired, ctas, opcodes = GOLDEN[(kernel, m, n, k)]
    run = _run(kernel, m, n, k, max_workers=2)
    assert _digest(run.c) == digest
    assert run.stats.instructions_retired == retired
    assert run.stats.ctas_run == ctas
    assert run.stats.opcode_counts == opcodes


def test_engine_env_override(monkeypatch):
    """``REPRO_FUNC_ENGINE=reference`` opts the whole stack out of the
    predecoded engine, with identical results."""
    monkeypatch.setenv("REPRO_FUNC_ENGINE", "reference")
    kernel, m, n, k = "ours", 256, 256, 32
    digest, retired, _, opcodes = GOLDEN[(kernel, m, n, k)]
    run = _run(kernel, m, n, k)
    assert _digest(run.c) == digest
    assert run.stats.instructions_retired == retired
    assert run.stats.opcode_counts == opcodes


def test_bad_engine_env_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_FUNC_ENGINE", "turbo")
    with pytest.raises(ValueError, match="REPRO_FUNC_ENGINE"):
        functional.FunctionalSimulator()
