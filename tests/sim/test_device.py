"""Tests for the Device front end."""

import numpy as np
import pytest

from repro.arch import RTX2070, T4
from repro.isa import assemble
from repro.sim import Device

STORE_TID = """
.block 64
  S2R R1, SR_TID.X
  IMAD R2, R1, 4, 0x100
  STG.E.32 [R2], R1
  EXIT
"""


class TestAllocation:
    def test_malloc_aligned_and_disjoint(self):
        dev = Device(RTX2070, memory_bytes=1 << 20)
        a = dev.malloc(100)
        b = dev.malloc(100)
        assert a % 256 == 0 and b % 256 == 0
        assert b >= a + 100
        assert a != 0  # address 0 stays unmapped

    def test_oom(self):
        dev = Device(RTX2070, memory_bytes=4096)
        with pytest.raises(MemoryError):
            dev.malloc(1 << 20)

    def test_bad_size(self):
        with pytest.raises(ValueError):
            Device(RTX2070, memory_bytes=4096).malloc(0)

    def test_malloc_array_roundtrip(self):
        dev = Device(RTX2070, memory_bytes=1 << 20)
        data = np.arange(100, dtype=np.float16)
        addr = dev.malloc_array(data)
        np.testing.assert_array_equal(
            dev.memcpy_dtoh(addr, np.float16, 100), data)


class TestLaunch:
    def test_functional_launch(self):
        dev = Device(RTX2070, memory_bytes=1 << 20)
        stats = dev.launch(assemble(STORE_TID))
        assert stats.ctas_run == 1
        np.testing.assert_array_equal(
            dev.memcpy_dtoh(0x100, np.uint32, 64), np.arange(64))

    def test_grid_launch(self):
        src = """
        .block 32
          S2R R1, SR_CTAID.X
          IMAD R2, R1, 4, 0x100
          STG.E.32 [R2], R1
          EXIT
        """
        dev = Device(RTX2070, memory_bytes=1 << 20)
        dev.launch(assemble(src), grid=(4, 1))
        np.testing.assert_array_equal(
            dev.memcpy_dtoh(0x100, np.uint32, 4), np.arange(4))

    def test_timed_launch(self):
        dev = Device(RTX2070, memory_bytes=1 << 20)
        timing = dev.launch_timed(assemble(STORE_TID))
        assert timing.cycles > 0
        assert timing.seconds == pytest.approx(
            RTX2070.cycles_to_seconds(timing.cycles))

    def test_timed_launch_device_clock(self):
        # The same cycle count converts through each device's own clock.
        prog = assemble(STORE_TID)
        t_fast = Device(RTX2070, memory_bytes=1 << 20).launch_timed(prog)
        t_slow = Device(T4, memory_bytes=1 << 20).launch_timed(prog)
        assert t_fast.seconds < t_slow.seconds or \
            t_fast.cycles != t_slow.cycles

    def test_bandwidth_share_default(self):
        dev = Device(RTX2070, memory_bytes=1 << 20)
        timing = dev.launch_timed(assemble(STORE_TID), bandwidth_share=1.0)
        assert timing.cycles > 0
