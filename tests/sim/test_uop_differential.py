"""Differential fuzz: one semantics table, three bit-identical engines.

For every opcode in the ISA, execute representative instruction forms
against randomized register files, predicate files and memory images on

* the reference adapter (:func:`repro.sim.exec_units.execute`),
* the 32-lane predecoded closure (:func:`repro.sim.decode.predecode`), and
* the stacked warp-lockstep closure (``predecode(program, lanes=W*32)``),

and require the complete post-state -- all 256 register rows, all 8
predicate rows, global memory, shared memory, and the control signal -- to
be bit-identical across engines for every warp.  Because all three compile
from the same ``SEMANTICS`` table, any divergence is a bug in the
compilation layers, not an ambiguity in the semantics.

Stacked closures are allowed exactly one alternative behaviour: returning
``DIVERGED`` *without mutating any state* (the lockstep engine then
re-runs the slot per warp), which this suite also verifies.
"""

import numpy as np
import pytest

from repro.isa import assemble
from repro.isa.instructions import OPCODES
from repro.sim.decode import BARRIER, DIVERGED, EXITED, predecode
from repro.sim.exec_units import execute
from repro.sim.functional import _CtaState, _WarpState
from repro.sim.memory import GlobalMemory
from repro.sim.shared import SharedMemory

# Random bit patterns routinely decode to float16 NaN/Inf; the kernels
# propagate them identically on every engine, so the IEEE warnings are noise.
pytestmark = pytest.mark.filterwarnings(
    "ignore:invalid value encountered:RuntimeWarning",
    "ignore:overflow encountered:RuntimeWarning",
)

N_WARPS = 3
LANES = N_WARPS * 32
GMEM_BYTES = 64 * 1024
SMEM_BYTES = 16 * 1024
CTAID = (2, 1, 0)


def _addresses(rng, lanes):
    """Distinct 16-byte-aligned lane addresses (safe for any access width,
    and scatter order cannot matter because no two lanes collide)."""
    return (rng.permutation(lanes).astype(np.uint32) * 16) + 0x100


def _addr_setup(reg):
    def setup(regs, rng):
        regs[reg] = _addresses(rng, regs.shape[1])
    return setup


#: opcode -> list of (source-of-first-instruction, extra-setup or None).
CASES = {
    "NOP": [("NOP", None)],
    "EXIT": [("EXIT", None)],
    "BAR": [("BAR.SYNC", None)],
    "BRA": [("L:\nBRA L", None)],
    "MOV": [("MOV R3, R2", None)],
    "MOV32I": [("MOV32I R1, 0xDEADBEEF", None)],
    "IADD3": [("IADD3 R0, R1, R2, R3", None),
              ("IADD3 R0, R1, -1, RZ", None)],
    "IMAD": [("IMAD R0, R1, R2, R3", None),
             ("IMAD R0, R1, 4, 0x100", None)],
    "SHF": [("SHF.L R0, R1, 2", None),
            ("SHF.R R0, R1, R2", None)],
    "LOP3": [("LOP3.AND R0, R1, R2", None),
             ("LOP3.OR R0, R1, 0b0110", None),
             ("LOP3.XOR R0, R1, R2", None)],
    "ISETP": [("ISETP.LT.AND P0, PT, R1, R2, PT", None),
              ("ISETP.GE.AND P0, PT, R1, 0x80, P1", None),
              ("ISETP.NE.AND P2, PT, R1, RZ, PT", None)],
    "SEL": [("SEL R0, R2, R3, P1", None),
            ("SEL R0, R2, R3, !P1", None)],
    "S2R": [("S2R R0, SR_TID.X", None),
            ("S2R R0, SR_LANEID", None),
            ("S2R R0, SR_CTAID.X", None)],
    "CS2R": [("CS2R R0, SR_CLOCKLO", None)],
    "HFMA2": [("HFMA2 R0, R1, R2, R3", None)],
    "HMMA": [("HMMA.1688.F16 R0, R8, R10, R4", None),
             ("HMMA.1688.F32 R0, R8, R10, R4", None),
             ("HMMA.884.F16 R0, R8, R10, R12", None),
             ("HMMA.16816.F16 R0, R8, R16, R4", None),
             ("HMMA.16816.F32 R0, R8, R16, R4", None)],
    "IMMA": [("IMMA.8816.S8.S8 R0, R8, R10, R4", None)],
    "LDG": [("LDG.E.32 R3, [R2]", _addr_setup(2)),
            ("LDG.E.CG.32 R3, [R2+0x40]", _addr_setup(2)),
            ("LDG.E.64 R4, [R2]", _addr_setup(2)),
            ("LDG.E.128 R4, [R2]", _addr_setup(2))],
    "STG": [("STG.E.32 [R2], R3", _addr_setup(2)),
            ("STG.E.128 [R2], R4", _addr_setup(2))],
    "LDS": [("LDS R5, [R2]", _addr_setup(2)),
            ("LDS.128 R4, [R2]", _addr_setup(2))],
    "STS": [("STS [R2], R3", _addr_setup(2)),
            ("STS.64 [R2], R6", _addr_setup(2))],
}

ALL_CASES = [(opcode, i, src, setup)
             for opcode, cases in sorted(CASES.items())
             for i, (src, setup) in enumerate(cases)]


def test_every_opcode_has_a_case():
    assert set(CASES) == set(OPCODES)


def _random_state(seed, setup):
    """One randomized CTA-wide machine state, shared by every engine."""
    rng = np.random.default_rng(seed)
    regs = rng.integers(0, 1 << 32, (256, LANES), dtype=np.uint32)
    regs[255] = 0  # RZ row must stay architecturally zero
    preds = rng.integers(0, 2, (8, LANES)).astype(bool)
    preds[7] = True  # PT
    gmem = rng.integers(0, 1 << 32, GMEM_BYTES // 4, dtype=np.uint32)
    smem = rng.integers(0, 1 << 32, SMEM_BYTES // 4, dtype=np.uint32)
    if setup is not None:
        setup(regs, rng)
    return regs, preds, gmem, smem


def _make_mems(gmem, smem):
    global_mem = GlobalMemory(GMEM_BYTES)
    global_mem._words[:] = gmem
    shared_mem = SharedMemory(SMEM_BYTES)
    shared_mem._words[:] = smem
    return global_mem, shared_mem


def _make_warp(w, regs, preds, global_mem, shared_mem):
    warp = _WarpState(w, CTAID, LANES, global_mem, shared_mem)
    cols = slice(w * 32, (w + 1) * 32)
    warp.regs._data[:] = regs[:, cols]
    warp.preds._data[:] = preds[:, cols]
    return warp


def _snapshot(ctx):
    return (ctx.regs._data.copy(), ctx.preds._data.copy())


def _run_reference(inst, warp):
    eff = execute(inst, warp)
    for first, values, mask in eff.reg_writes:
        warp.regs.write_group(first, values, mask=None if mask.all() else mask)
    for idx, values, mask in eff.pred_writes:
        warp.preds.write(idx, values, mask=None if mask.all() else mask)
    if eff.exited:
        return EXITED
    if eff.branch_target is not None:
        return eff.branch_target
    if eff.barrier:
        return BARRIER
    return None


@pytest.mark.parametrize("opcode,i,src,setup", ALL_CASES,
                         ids=[f"{o}-{i}" for o, i, _, _ in ALL_CASES])
@pytest.mark.parametrize("seed", [0, 1])
def test_differential(opcode, i, src, setup, seed):
    program = assemble(src + "\nEXIT")
    inst = program[0]
    assert inst.opcode == opcode
    regs, preds, gmem, smem = _random_state(seed * 1000 + hash(opcode) % 97,
                                            setup)

    # Reference adapter, warp by warp (memory shared across the CTA, as in
    # every engine).
    ref_gm, ref_sm = _make_mems(gmem, smem)
    ref_warps = [_make_warp(w, regs, preds, ref_gm, ref_sm)
                 for w in range(N_WARPS)]
    ref_signals = [_run_reference(inst, w) for w in ref_warps]
    ref_states = [_snapshot(w) for w in ref_warps]
    ref_mems = (ref_gm._words.copy(), ref_sm._words.copy())

    # 32-lane predecoded closure, warp by warp.
    decoded = predecode(program)
    dec_gm, dec_sm = _make_mems(gmem, smem)
    dec_warps = [_make_warp(w, regs, preds, dec_gm, dec_sm)
                 for w in range(N_WARPS)]
    dec_signals = [decoded.run_fns[0](w) for w in dec_warps]
    assert dec_signals == ref_signals
    for ref_state, warp in zip(ref_states, dec_warps):
        for ref_arr, got_arr in zip(ref_state, _snapshot(warp)):
            np.testing.assert_array_equal(got_arr, ref_arr)
    np.testing.assert_array_equal(dec_gm._words, ref_mems[0])
    np.testing.assert_array_equal(dec_sm._words, ref_mems[1])

    # Stacked warp-lockstep closure, all warps at once.
    stacked = predecode(program, lanes=LANES)
    cta_gm, cta_sm = _make_mems(gmem, smem)
    cta = _CtaState(N_WARPS, CTAID, LANES, cta_gm, cta_sm)
    cta.regs._data[:] = regs
    cta.preds._data[:] = preds
    signal = stacked.run_fns[0](cta)
    if signal == DIVERGED:
        # Allowed only as a pure refusal: nothing may have been mutated.
        np.testing.assert_array_equal(cta.regs._data, regs)
        np.testing.assert_array_equal(cta.preds._data, preds)
        np.testing.assert_array_equal(cta_gm._words, gmem)
        np.testing.assert_array_equal(cta_sm._words, smem)
        return
    assert all(sig == signal for sig in ref_signals)
    for w, ref_state in enumerate(ref_states):
        cols = slice(w * 32, (w + 1) * 32)
        got = (cta.regs._data[:, cols], cta.preds._data[:, cols])
        for ref_arr, got_arr in zip(ref_state, got):
            np.testing.assert_array_equal(got_arr, ref_arr)
    np.testing.assert_array_equal(cta_gm._words, ref_mems[0])
    np.testing.assert_array_equal(cta_sm._words, ref_mems[1])


# --------------------------------------------------------------------------
# Whole-program differential: branchy/looped assembler-text kernels.
#
# The per-instruction cases above can never catch divergence-handling bugs
# (de-stack/re-stack, branch bookkeeping, barrier resume inside loops):
# those only appear across *sequences* of instructions.  Each program here
# runs through the full FunctionalSimulator on every engine, and the final
# global memory plus retirement statistics must agree bit-for-bit.
# Predicates are warp-uniform (derived from tid>>5 or CTAID) -- warps
# disagree with each other, lanes within a warp never do, which is exactly
# the shape that forces the lockstep engine through its DIVERGED de-stack
# path while staying legal on every engine.

# Warp-dependent trip counts: warp w of CTA c loops (w + c + 1) times,
# accumulating tid each trip, then stores accum to a per-thread slot.
LOOP_TRIPS_BY_WARP = """
.kernel trips_by_warp
.regs 32
.block 96
  S2R R1, SR_TID.X
  S2R R7, SR_CTAID.X
  SHF.R R2, R1, 5
  IADD3 R2, R2, 1, RZ
  IADD3 R2, R2, R7, RZ
  MOV32I R3, 0
  MOV32I R4, 0
LOOP:
  IADD3 R4, R4, R1, RZ
  IADD3 R3, R3, 1, RZ
  ISETP.LT.AND P0, PT, R3, R2, PT
  @P0 BRA LOOP
  IMAD R5, R7, 96, R1
  IMAD R5, R5, 4, RZ
  STG.E.32 [R5], R4
  EXIT
"""

# Predicated forward branch: odd warps skip their store entirely.
PREDICATED_SKIP = """
.kernel predicated_skip
.regs 32
.block 96
  S2R R1, SR_TID.X
  S2R R7, SR_CTAID.X
  SHF.R R2, R1, 5
  LOP3.AND R3, R2, 1
  ISETP.NE.AND P1, PT, R3, RZ, PT
  IMAD R5, R7, 96, R1
  IMAD R5, R5, 4, RZ
  @P1 BRA SKIP
  IADD3 R6, R1, 0x101, RZ
  STG.E.32 [R5], R6
SKIP:
  EXIT
"""

# A k-loop with a predicated branch *inside* the body: even iterations
# accumulate, odd iterations jump over the add.  Trip count still differs
# per warp, so both branch directions interleave across the CTA.
BRANCH_IN_LOOP = """
.kernel branch_in_loop
.regs 32
.block 64
  S2R R1, SR_TID.X
  SHF.R R2, R1, 5
  IMAD R2, R2, 3, RZ
  IADD3 R2, R2, 2, RZ
  MOV32I R3, 0
  MOV32I R4, 0
LOOP:
  LOP3.AND R6, R3, 1
  ISETP.NE.AND P2, PT, R6, RZ, PT
  @P2 BRA ODD
  IADD3 R4, R4, R1, RZ
ODD:
  IADD3 R3, R3, 1, RZ
  ISETP.LT.AND P0, PT, R3, R2, PT
  @P0 BRA LOOP
  IMAD R5, R1, 4, RZ
  STG.E.32 [R5], R4
  EXIT
"""

# Uniform-trip loop with a barrier and a cross-warp shared-memory swap in
# the body: exercises barrier suspend/resume inside a loop on every engine.
BARRIER_LOOP = """
.kernel barrier_loop
.regs 32
.smem 1024
.block 64
  S2R R1, SR_TID.X
  MOV32I R3, 0
  MOV R4, R1
  IMAD R8, R1, 4, RZ
  LOP3.XOR R9, R1, 0x20
  IMAD R9, R9, 4, RZ
LOOP:
  STS [R8], R4
  BAR.SYNC
  LDS R10, [R9]
  BAR.SYNC
  IADD3 R4, R4, R10, RZ
  IADD3 R3, R3, 1, RZ
  ISETP.LT.AND P0, PT, R3, 3, PT
  @P0 BRA LOOP
  IMAD R5, R1, 4, RZ
  STG.E.32 [R5], R4
  EXIT
"""

BRANCHY_PROGRAMS = [
    ("trips_by_warp", LOOP_TRIPS_BY_WARP, (2, 1)),
    ("predicated_skip", PREDICATED_SKIP, (2, 2)),
    ("branch_in_loop", BRANCH_IN_LOOP, (3, 1)),
    ("barrier_loop", BARRIER_LOOP, (2, 1)),
]


class TestBranchyProgramDifferential:
    @pytest.mark.parametrize("name,src,grid",
                             [(n, s, g) for n, s, g in BRANCHY_PROGRAMS],
                             ids=[n for n, _, _ in BRANCHY_PROGRAMS])
    def test_engines_agree(self, name, src, grid):
        from repro.sim.functional import ENGINES, FunctionalSimulator

        program = assemble(src)
        outcomes = {}
        for engine in ENGINES:
            gm = GlobalMemory(GMEM_BYTES)
            result = FunctionalSimulator(engine=engine).run(
                program, gm, grid_dim=grid)
            outcomes[engine] = (gm._words.copy(),
                                result.instructions_retired,
                                dict(result.opcode_counts),
                                result.ctas_run)

        ref_mem, ref_retired, ref_counts, ref_ctas = outcomes["reference"]
        assert ref_counts.get("STG", 0) > 0  # the program actually ran
        for engine in ENGINES:
            mem, retired, counts, ctas = outcomes[engine]
            np.testing.assert_array_equal(mem, ref_mem, err_msg=engine)
            assert retired == ref_retired, engine
            assert counts == ref_counts, engine
            assert ctas == ref_ctas, engine

    def test_trip_counts_are_really_divergent(self):
        """The loop program's warps must retire different trip counts --
        otherwise the divergence path this class exists for is untested."""
        from repro.sim.functional import FunctionalSimulator

        gm = GlobalMemory(GMEM_BYTES)
        FunctionalSimulator(engine="reference").run(
            assemble(LOOP_TRIPS_BY_WARP), gm, grid_dim=(2, 1))
        out = gm.read_array(0, np.uint32, 192)
        # accum(tid) = tid * trips(warp, cta); lane 0 of each warp stores
        # tid = w*32, so warp trip counts are recoverable from lane 1.
        trips = [int(out[cta * 96 + w * 32 + 1]) // (w * 32 + 1)
                 for cta in range(2) for w in range(3)]
        assert trips == [1, 2, 3, 2, 3, 4]


def test_lockstep_never_destacks_on_uniform_hot_ops():
    """The hot fast-path opcodes must actually stack (no silent DIVERGED)."""
    hot = ["MOV R3, R2", "IADD3 R0, R1, R2, R3", "IMAD R0, R1, R2, R3",
           "HMMA.1688.F16 R0, R8, R10, R4", "IMMA.8816.S8.S8 R0, R8, R10, R4",
           "LDS R5, [R2]", "STS [R2], R3"]
    for src in hot:
        program = assemble(src + "\nEXIT")
        regs, preds, gmem, smem = _random_state(7, _addr_setup(2))
        stacked = predecode(program, lanes=LANES)
        global_mem, shared_mem = _make_mems(gmem, smem)
        cta = _CtaState(N_WARPS, CTAID, LANES, global_mem, shared_mem)
        cta.regs._data[:] = regs
        cta.preds._data[:] = preds
        assert stacked.run_fns[0](cta) != DIVERGED, src
