"""Plain-text table and series formatting shared by benchmarks and examples.

Everything the harness prints goes through these helpers so the regenerated
tables visually match across benchmarks (fixed-width columns, paper-value
deltas, ASCII series for figures).
"""

from __future__ import annotations

__all__ = ["format_table", "format_comparison", "format_series", "ascii_chart"]


def format_table(headers, rows, title: str = "") -> str:
    """Render *rows* (sequences) under *headers* with aligned columns."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(v) for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_comparison(name: str, paper, measured, unit: str = "") -> str:
    """One 'paper vs measured' line with the relative delta."""
    if isinstance(paper, (int, float)) and paper:
        delta = (measured - paper) / paper * 100
        return (f"{name:<42s} paper={_fmt(paper):>9s}{unit}  "
                f"measured={_fmt(measured):>9s}{unit}  ({delta:+.1f}%)")
    return f"{name:<42s} paper={paper}  measured={measured}"


def format_series(xs, series: dict, x_label: str = "W") -> str:
    """Tabulate one or more y-series against shared x values."""
    headers = [x_label] + list(series)
    rows = [[x] + [series[k][i] for k in series] for i, x in enumerate(xs)]
    return format_table(headers, rows)


def ascii_chart(xs, series: dict, width: int = 68, height: int = 16,
                y_label: str = "TFLOPS") -> str:
    """Tiny ASCII line chart -- enough to eyeball a figure's shape."""
    all_y = [y for ys in series.values() for y in ys]
    if not all_y:
        return "(empty)"
    y_min, y_max = 0.0, max(all_y) * 1.05 or 1.0
    grid = [[" "] * width for _ in range(height)]
    marks = "*o+x#@"
    for si, (name, ys) in enumerate(series.items()):
        mark = marks[si % len(marks)]
        for i, y in enumerate(ys):
            col = int(i / max(1, len(ys) - 1) * (width - 1))
            row = height - 1 - int((y - y_min) / (y_max - y_min) * (height - 1))
            row = min(height - 1, max(0, row))
            grid[row][col] = mark
    lines = [f"{y_max:7.1f} |" + "".join(grid[0])]
    for r in range(1, height):
        prefix = f"{'':7s} |" if r < height - 1 else f"{y_min:7.1f} |"
        lines.append(prefix + "".join(grid[r]))
    lines.append(" " * 8 + "+" + "-" * width)
    lines.append(" " * 9 + f"{xs[0]}  ...  {xs[-1]}")
    legend = "   ".join(f"{marks[i % len(marks)]} {name}"
                        for i, name in enumerate(series))
    lines.append(" " * 9 + legend + f"   (y: {y_label})")
    return "\n".join(lines)
