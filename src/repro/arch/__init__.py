"""Turing-class device descriptions and warp-level register state."""

from .registers import PredicateFile, RegisterFile, WARP_LANES
from .turing import DEVICES, GpuSpec, MemoryCpiTable, RTX2070, T4, get_device

__all__ = [
    "PredicateFile",
    "RegisterFile",
    "WARP_LANES",
    "DEVICES",
    "GpuSpec",
    "MemoryCpiTable",
    "RTX2070",
    "T4",
    "get_device",
]
