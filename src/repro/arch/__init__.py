"""Device descriptions (all Tensor Core generations) and register state."""

from .family import ArchSpec, GENERATIONS, SM70, SM75, SM80, get_generation
from .registers import PredicateFile, RegisterFile, WARP_LANES
from .turing import (
    A100,
    DEVICES,
    GpuSpec,
    MemoryCpiTable,
    RTX2070,
    T4,
    V100,
    get_device,
)

__all__ = [
    "PredicateFile",
    "RegisterFile",
    "WARP_LANES",
    "ArchSpec",
    "GENERATIONS",
    "SM70",
    "SM75",
    "SM80",
    "get_generation",
    "DEVICES",
    "GpuSpec",
    "MemoryCpiTable",
    "RTX2070",
    "T4",
    "V100",
    "A100",
    "get_device",
]
