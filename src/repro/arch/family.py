"""Tensor Core architecture family: one simulator, three generations.

The paper's analysis is written against Turing (SM75), whose native
half-precision MMA is ``HMMA.1688`` (a 16x8x8 matmul per warp-wide
instruction).  Volta (SM70) and Ampere (SM80) differ in exactly the
dimensions an :class:`ArchSpec` captures:

==========  =========  ==============  ==========================
generation  SM         HMMA shape      operand registers (A/B/C16)
==========  =========  ==============  ==========================
Volta       SM70       8x8x8 (.884)    1 / 1 / 1
Turing      SM75       16x8x8 (.1688)  2 / 1 / 2
Ampere      SM80       16x8x16 (.16816)  4 / 2 / 2
==========  =========  ==============  ==========================

Everything generational lives here -- the MMA shape, the per-operand
register footprint (which drives the kernel builder's register plan and
shared-memory fragment loads), the per-Tensor-Core FMA rate (which
drives the structural peak-TFLOPS computation), and feature flags (F32
accumulate, IMMA/int8).  Per-*device* numbers (SM counts, clocks,
bandwidths, measured CPIs) stay on :class:`repro.arch.turing.GpuSpec`,
which now carries one of these specs in its ``arch`` field.

Calibration sources (PAPERS.md):

* SM70 -- "Dissecting the NVIDIA Volta GPU Architecture via
  Microbenchmarking" (Citadel; companion of the Turing report cited by
  the source paper) for CPIs/latencies, and "Modeling Three Generations
  of Tensor Cores" for the ``.884`` fragment semantics.
* SM75 -- the source paper's own Tables I-V.
* SM80 -- "Demystifying the Nvidia Ampere Architecture through
  Microbenchmarking and Instruction-level Analysis" (Tables 4-5:
  tensor-op latencies/throughputs) and the A100 whitepaper structure
  (4 third-generation Tensor Cores/SM at 256 FP16 FMA/cycle each).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ArchSpec", "SM70", "SM75", "SM80", "GENERATIONS", "get_generation"]


@dataclass(frozen=True)
class ArchSpec:
    """One Tensor Core generation: the ISA-visible MMA contract.

    ``hmma_m/n/k`` is the per-instruction matmul shape (D[m,n] +=
    A[m,k] @ B[k,n]); ``a_regs``/``b_regs``/``c_regs_f16``/``c_regs_f32``
    are the per-thread register counts of each warp-wide operand
    fragment; ``fma_per_tc_cycle`` is the FP16 FMA rate of one Tensor
    Core, so structural peaks derive from the registry instead of
    hardcoded products.
    """

    name: str                 # "volta" / "turing" / "ampere"
    sm_version: int           # 70 / 75 / 80
    hmma_m: int
    hmma_n: int
    hmma_k: int
    hmma_mods: str            # SASS modifier token: "884" / "1688" / "16816"
    a_regs: int               # registers per thread holding the A fragment
    b_regs: int               # ... B fragment
    c_regs_f16: int           # ... C/D fragment with FP16 accumulate
    c_regs_f32: int           # ... with FP32 accumulate (0 = unsupported)
    fma_per_tc_cycle: int     # FP16 FMAs one Tensor Core retires per cycle
    supports_f32_accum: bool
    supports_imma: bool       # int8 IMMA.8816 path (SM75+)
    #: Measured HMMA CPI plugged into the paper's Eq. (3) pipe model
    #: (Turing: Table I's 8.06; others from the PAPERS.md calibrations).
    measured_hmma_cpi: float

    def __post_init__(self) -> None:
        # A warp's fragment registers must exactly cover the matrix tiles.
        if self.a_regs * 64 != self.hmma_m * self.hmma_k:
            raise ValueError(f"{self.name}: A fragment does not tile")
        if self.b_regs * 64 != self.hmma_k * self.hmma_n:
            raise ValueError(f"{self.name}: B fragment does not tile")
        if self.c_regs_f16 * 64 != self.hmma_m * self.hmma_n:
            raise ValueError(f"{self.name}: C fragment does not tile")
        if self.supports_f32_accum and self.c_regs_f32 * 32 != self.hmma_m * self.hmma_n:
            raise ValueError(f"{self.name}: C/f32 fragment does not tile")

    @property
    def hmma_shape(self) -> tuple:
        return (self.hmma_m, self.hmma_n, self.hmma_k)

    @property
    def flops_per_hmma(self) -> int:
        return 2 * self.hmma_m * self.hmma_n * self.hmma_k


#: Volta: first-generation Tensor Cores.  Our ``.884`` model is the
#: f16-accumulate warp-synchronous form (D[8,8] = A[8,8] @ B[8,8] + C);
#: one register per operand fragment, no IMMA, no F32 accumulate path in
#: this subset.
SM70 = ArchSpec(
    name="volta", sm_version=70,
    hmma_m=8, hmma_n=8, hmma_k=8, hmma_mods="884",
    a_regs=1, b_regs=1, c_regs_f16=1, c_regs_f32=0,
    fma_per_tc_cycle=64,
    supports_f32_accum=False, supports_imma=False,
    measured_hmma_cpi=4.03,
)

#: Turing: the source paper's generation (HMMA.1688, Tables I-V).
SM75 = ArchSpec(
    name="turing", sm_version=75,
    hmma_m=16, hmma_n=8, hmma_k=8, hmma_mods="1688",
    a_regs=2, b_regs=1, c_regs_f16=2, c_regs_f32=4,
    fma_per_tc_cycle=64,
    supports_f32_accum=True, supports_imma=True,
    measured_hmma_cpi=8.06,
)

#: Ampere: third-generation Tensor Cores -- one 256-FMA/cycle core per
#: processing block, native HMMA.16816 (k doubles to 16).
SM80 = ArchSpec(
    name="ampere", sm_version=80,
    hmma_m=16, hmma_n=8, hmma_k=16, hmma_mods="16816",
    a_regs=4, b_regs=2, c_regs_f16=2, c_regs_f32=4,
    fma_per_tc_cycle=256,
    supports_f32_accum=True, supports_imma=True,
    measured_hmma_cpi=8.06,
)

#: Generation registry, keyed by the lowercase family name.
GENERATIONS = {arch.name: arch for arch in (SM70, SM75, SM80)}


def get_generation(name: str) -> ArchSpec:
    """Look up a generation by name ("volta") or SM version ("sm70"/70)."""
    token = str(name).lower()
    for arch in GENERATIONS.values():
        if token in (arch.name, f"sm{arch.sm_version}", str(arch.sm_version)):
            return arch
    raise KeyError(f"unknown architecture {name!r}; known: {sorted(GENERATIONS)}")
