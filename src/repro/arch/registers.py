"""Warp register file and predicate file for the functional simulator.

A warp's general-purpose state is a (256, 32) uint32 array: 256 register
slots (R255 = RZ hardwired to zero) by 32 lanes.  This matches the paper's
"warp register" view (Section IV-A): an 8x8 half matrix is one register
index across all 32 lanes.

The arrays are NumPy-backed so fragment gather/scatter and the HMMA
executors operate on whole warp registers without per-lane Python loops.
"""

from __future__ import annotations

import numpy as np

from ..isa.operands import PT_INDEX, RZ_INDEX

__all__ = ["WARP_LANES", "RegisterFile", "PredicateFile"]

#: Lanes per warp.
WARP_LANES = 32


class RegisterFile:
    """Per-warp general purpose registers: 256 x *lanes* of uint32.

    ``lanes`` defaults to one warp (32); the lockstep engine stacks all of
    a CTA's warps into one file with ``lanes = n_warps * 32``.
    """

    NUM_REGS = 256

    def __init__(self, lanes: int = WARP_LANES) -> None:
        self._lanes = lanes
        self._data = np.zeros((self.NUM_REGS, lanes), dtype=np.uint32)

    def read(self, index: int) -> np.ndarray:
        """Value of register *index* across all lanes (always a copy-safe
        read: RZ returns fresh zeros)."""
        if index == RZ_INDEX:
            return np.zeros(self._lanes, dtype=np.uint32)
        return self._data[index]

    def write(self, index: int, values, mask=None) -> None:
        """Write *values* (broadcastable to 32 lanes) under an optional
        boolean lane *mask*.  Writes to RZ are discarded, as on hardware."""
        if index == RZ_INDEX:
            return
        vals = np.asarray(values, dtype=np.uint32)
        if mask is None:
            self._data[index] = vals
        else:
            lane_mask = np.asarray(mask, dtype=bool)
            self._data[index][lane_mask] = (
                vals[lane_mask] if vals.ndim else vals
            )

    def read_group(self, index: int, count: int) -> np.ndarray:
        """Registers ``index .. index+count-1`` as a (count, 32) array."""
        self._check_group(index, count)
        return self._data[index : index + count]

    def write_group(self, index: int, values, mask=None) -> None:
        """Write a (count, 32) block of registers."""
        vals = np.asarray(values, dtype=np.uint32)
        self._check_group(index, vals.shape[0])
        if mask is None:
            self._data[index : index + vals.shape[0]] = vals
        else:
            lane_mask = np.asarray(mask, dtype=bool)
            self._data[index : index + vals.shape[0], lane_mask] = vals[:, lane_mask]

    def _check_group(self, index: int, count: int) -> None:
        if index == RZ_INDEX:
            raise ValueError("register groups cannot start at RZ")
        if index + count > RZ_INDEX:
            raise ValueError(
                f"register group R{index}..R{index + count - 1} overruns the "
                f"register file (RZ is R{RZ_INDEX})"
            )

    def signed(self, index: int) -> np.ndarray:
        """Register value viewed as signed 32-bit integers."""
        return self.read(index).astype(np.int64) - (
            (self.read(index) >> np.uint32(31)).astype(np.int64) << 32
        )


class PredicateFile:
    """Per-warp predicate registers: 8 x *lanes* of bool (P7 = PT)."""

    NUM_PREDS = 8

    def __init__(self, lanes: int = WARP_LANES) -> None:
        self._data = np.zeros((self.NUM_PREDS, lanes), dtype=bool)
        self._data[PT_INDEX] = True

    def read(self, index: int, negated: bool = False) -> np.ndarray:
        vals = self._data[index]
        return ~vals if negated else vals.copy()

    def write(self, index: int, values, mask=None) -> None:
        """Write predicate *index*; writes to PT are discarded."""
        if index == PT_INDEX:
            return
        vals = np.asarray(values, dtype=bool)
        if mask is None:
            self._data[index] = vals
        else:
            lane_mask = np.asarray(mask, dtype=bool)
            self._data[index][lane_mask] = vals[lane_mask] if vals.ndim else vals
