"""Turing-class GPU device specifications.

All architectural constants used by the simulator and the analytical models
live here.  They come from two sources only:

1. Public Turing facts (SM counts, clocks, register file and shared memory
   sizes, warp scheduler structure) from the Turing whitepaper.
2. The paper's *microbenchmark* results (Tables I-V): instruction CPIs,
   measured DRAM/L2 bandwidths, HMMA latencies.

Nothing here is fitted to the paper's *evaluation* results (Figs. 4-9);
those must emerge from the mechanism.

CPI semantics (paper Section IV-C / V): a CPI value is the number of SM
cycles an instruction occupies its issue pipe, limiting back-to-back
throughput of that instruction class:

* HMMA occupies the **tensor pipe of one processing block** (4 blocks/SM,
  2 Tensor Cores each; a 16x8x8 HMMA is 16 4x4x4 MMAs / 2 TCs = 8 cycles).
* LDG/STG/LDS/STS all occupy the **single SM-wide memory-IO pipe**
  (Section VI-A: "LDG, STS and LDS instructions all occupy memory I/O
  pipe"), so their CPIs add.
* ALU/FMA ops occupy their scheduler's dispatch slot (CPI 2: 16-lane units
  serve a 32-lane warp in two passes).
"""

from __future__ import annotations

from dataclasses import dataclass

from .family import SM70, SM75, SM80, ArchSpec

__all__ = [
    "MemoryCpiTable", "GpuSpec", "RTX2070", "T4", "V100", "A100",
    "DEVICES", "get_device",
]


@dataclass(frozen=True)
class MemoryCpiTable:
    """CPI of one memory instruction class, keyed by access width in bits."""

    cpi32: float
    cpi64: float
    cpi128: float

    def cpi(self, width: int) -> float:
        table = {32: self.cpi32, 64: self.cpi64, 128: self.cpi128}
        try:
            return table[width]
        except KeyError:
            raise ValueError(
                f"unsupported memory width {width}; "
                f"supported widths: {sorted(table)}"
            ) from None

    def bytes_per_cycle(self, width: int, lanes: int = 32) -> float:
        """Warp-level throughput in bytes per cycle (paper Table V)."""
        return lanes * (width // 8) / self.cpi(width)


@dataclass(frozen=True)
class GpuSpec:
    """Complete description of one device (any registered generation)."""

    name: str
    num_sms: int
    clock_ghz: float
    #: Tensor Core generation (HMMA shape, fragment layout, feature flags).
    arch: ArchSpec = SM75
    # --- SM structure (Turing whitepaper) ---
    processing_blocks_per_sm: int = 4
    tensor_cores_per_block: int = 2
    max_warps_per_sm: int = 32
    registers_per_sm: int = 64 * 1024
    max_regs_per_thread: int = 256
    smem_per_sm_bytes: int = 64 * 1024
    smem_banks: int = 32
    smem_bank_bytes: int = 4
    max_ctas_per_sm: int = 16
    # --- memory system ---
    dram_peak_gbps: float = 0.0
    dram_measured_gbps: float = 0.0
    l2_measured_gbps: float = 0.0
    l2_bytes: int = 4 * 1024 * 1024
    l2_sector_bytes: int = 32
    # --- compute peaks ---
    tensor_tflops: float = 0.0
    fp16_tflops: float = 0.0
    # --- instruction timing (paper Tables I, III, IV; same on both GPUs) ---
    hmma_cpi: float = 8.0
    hmma_latency_first_half: int = 10
    hmma_latency_second_half: int = 14
    #: IMMA.8816 issues twice as fast: Turing's INT8 tensor path delivers
    #: 2x the FP16 rate (Turing whitepaper), so 8x8x16 MACs take 4 cycles
    #: per processing block.
    imma_cpi: float = 4.0
    ldg_l1_cpi: MemoryCpiTable = MemoryCpiTable(4.04, 4.04, 8.00)
    ldg_l2_cpi: MemoryCpiTable = MemoryCpiTable(4.19, 8.38, 15.95)
    lds_cpi: MemoryCpiTable = MemoryCpiTable(2.11, 4.00, 8.00)
    sts_cpi: MemoryCpiTable = MemoryCpiTable(4.06, 6.00, 10.00)
    stg_cpi: MemoryCpiTable = MemoryCpiTable(4.06, 8.38, 15.95)
    alu_cpi: float = 2.0
    fma_cpi: float = 2.0
    ldg_latency_cycles: int = 300
    lds_latency_cycles: int = 25
    #: Depth of the SM's memory-IO instruction queue (MIO): warps enqueue
    #: LDS/STS/LDG and keep issuing math until the queue fills; the queue
    #: drains at the instruction's CPI rate.
    mio_queue_depth: int = 16
    # --- launch / runtime model ---
    kernel_launch_overhead_us: float = 4.0

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError(f"num_sms must be positive, got {self.num_sms}")
        if self.clock_ghz <= 0:
            raise ValueError(f"clock_ghz must be positive, got {self.clock_ghz}")

    # ------------------------------------------------------------- derived

    @property
    def tensor_cores_per_sm(self) -> int:
        return self.processing_blocks_per_sm * self.tensor_cores_per_block

    @property
    def warp_schedulers_per_sm(self) -> int:
        # One scheduler per processing block on Turing.
        return self.processing_blocks_per_sm

    @property
    def tensor_peak_tflops(self) -> float:
        """Tensor peak from structure: TC/SM x FMA/TC/cycle x 2 flop x clock
        (the per-core FMA rate comes from the generation's :class:`ArchSpec`)."""
        flops_per_cycle = self.tensor_cores_per_sm * self.arch.fma_per_tc_cycle * 2
        return self.num_sms * flops_per_cycle * self.clock_ghz / 1e3

    @property
    def fp16_peak_tflops(self) -> float:
        """FP16-unit peak (Tensor Cores are 4x, paper Section I)."""
        return self.tensor_peak_tflops / 4.0

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.clock_ghz * 1e9)

    def seconds_to_cycles(self, seconds: float) -> float:
        return seconds * self.clock_ghz * 1e9

    def ldg_cpi(self, width: int, hit_l1: bool = False) -> float:
        table = self.ldg_l1_cpi if hit_l1 else self.ldg_l2_cpi
        return table.cpi(width)

    def occupancy_limits(self, regs_per_thread: int, smem_per_cta: int,
                         threads_per_cta: int) -> dict:
        """Resource-limited CTAs/SM (paper Table VII machinery)."""
        if regs_per_thread > self.max_regs_per_thread:
            raise ValueError(
                f"kernel needs {regs_per_thread} registers/thread; the "
                f"hardware limit is {self.max_regs_per_thread}"
            )
        limits = {
            "regs": self.registers_per_sm // max(1, regs_per_thread * threads_per_cta),
            "smem": (self.smem_per_sm_bytes // smem_per_cta) if smem_per_cta else self.max_ctas_per_sm,
            "warps": self.max_warps_per_sm // max(1, threads_per_cta // 32),
            "hw": self.max_ctas_per_sm,
        }
        return limits

    def ctas_per_sm(self, regs_per_thread: int, smem_per_cta: int,
                    threads_per_cta: int) -> int:
        return min(
            self.occupancy_limits(regs_per_thread, smem_per_cta, threads_per_cta).values()
        )


#: NVIDIA GeForce RTX 2070 (TU106).  36 SMs; 59.7 tensor TFLOPS at the
#: 1.62 GHz boost clock the paper's peak implies; GDDR6 448 GB/s.
RTX2070 = GpuSpec(
    name="RTX2070",
    num_sms=36,
    clock_ghz=1.62,
    dram_peak_gbps=448.0,
    dram_measured_gbps=380.0,
    l2_measured_gbps=750.0,
    l2_bytes=4 * 1024 * 1024,
    tensor_tflops=59.7,
    fp16_tflops=14.9,
)

#: NVIDIA Tesla T4 (TU104).  40 SMs; the paper locks clocks at 1590 MHz
#: giving the 65 tensor-TFLOPS peak; GDDR6 320 GB/s.
T4 = GpuSpec(
    name="T4",
    num_sms=40,
    clock_ghz=1.59,
    dram_peak_gbps=320.0,
    dram_measured_gbps=238.0,
    l2_measured_gbps=910.0,
    l2_bytes=4 * 1024 * 1024,
    tensor_tflops=65.0,
    fp16_tflops=16.3,
)

#: NVIDIA Tesla V100 (GV100, SXM2).  Volta/SM70: 80 SMs at the 1.53 GHz
#: boost clock -> 125.3 tensor TFLOPS from structure (80 x 8 TC x 64 FMA
#: x 2); HBM2 900 GB/s peak.  CPIs/latencies calibrated from the Citadel
#: Volta microbenchmark report (PAPERS.md): HMMA.884 issues at CPI ~4 per
#: processing block (same 256 FLOP/cycle/block as Turing), global loads
#: ~28% slower than Turing's L1, shared latency slightly lower.
V100 = GpuSpec(
    name="V100",
    num_sms=80,
    clock_ghz=1.53,
    arch=SM70,
    smem_per_sm_bytes=96 * 1024,
    max_ctas_per_sm=32,
    max_warps_per_sm=64,
    dram_peak_gbps=900.0,
    dram_measured_gbps=790.0,
    l2_measured_gbps=2155.0,
    l2_bytes=6 * 1024 * 1024,
    tensor_tflops=125.3,
    fp16_tflops=31.3,
    hmma_cpi=4.0,
    hmma_latency_first_half=8,
    hmma_latency_second_half=12,
    ldg_latency_cycles=375,
    lds_latency_cycles=19,
)

#: NVIDIA A100 (GA100, SXM4).  Ampere/SM80: 108 SMs at 1.41 GHz; one
#: third-generation Tensor Core per processing block at 256 FMA/cycle
#: -> 312 tensor TFLOPS from structure; HBM2e 1555 GB/s peak, 40 MB L2.
#: HMMA.16816 CPI 8 per block (4096 FLOP / 512 FLOP-per-cycle-per-block);
#: latencies from the Ampere microbenchmark paper (PAPERS.md, Tables 4-5).
A100 = GpuSpec(
    name="A100",
    num_sms=108,
    clock_ghz=1.41,
    arch=SM80,
    tensor_cores_per_block=1,
    smem_per_sm_bytes=164 * 1024,
    max_ctas_per_sm=32,
    max_warps_per_sm=64,
    dram_peak_gbps=1555.0,
    dram_measured_gbps=1370.0,
    l2_measured_gbps=4500.0,
    l2_bytes=40 * 1024 * 1024,
    tensor_tflops=311.9,
    fp16_tflops=78.0,
    hmma_cpi=8.0,
    hmma_latency_first_half=12,
    hmma_latency_second_half=16,
    imma_cpi=4.0,
    ldg_latency_cycles=290,
    lds_latency_cycles=23,
)

#: Registry of known devices.
DEVICES = {spec.name: spec for spec in (RTX2070, T4, V100, A100)}


def get_device(name: str) -> GpuSpec:
    """Look up a device spec by name (case-insensitive)."""
    for key, spec in DEVICES.items():
        if key.lower() == name.lower():
            return spec
    raise KeyError(f"unknown device {name!r}; known: {sorted(DEVICES)}")
