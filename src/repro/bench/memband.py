"""DRAM and L2 bandwidth benchmarks in GB/s (paper Table II, Section V-A).

Paper methodology: launch many blocks, each loading 512 KB with the L1
bypassed (``.CG``); distinct locations per block measure DRAM, the same
location measures L2.  We run one SM against its fair share of the device
bandwidth (``bandwidth_share = 1 / num_sms``) and scale back up -- every SM
streams the same way, so the device figure is the per-SM figure times the
SM count.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.turing import GpuSpec
from ..isa.builder import ProgramBuilder
from ..isa.operands import Pred, Reg
from ..sim.memory import GlobalMemory
from ..sim.timing import TimingSimulator

__all__ = ["BandwidthResult", "measure_dram_bandwidth", "measure_l2_bandwidth"]


@dataclass(frozen=True)
class BandwidthResult:
    """One bandwidth measurement."""

    level: str
    gbps: float
    bytes_moved: int
    cycles: int


def _stream_program(per_loop: int, loops: int, advance: bool,
                    block_dim: int = 256) -> "Program":
    """Each warp streams LDG.E.CG.128; `advance` walks fresh addresses
    (DRAM) or rewinds to the same footprint (L2)."""
    b = ProgramBuilder(name="membw", num_regs=40, block_dim=block_dim)
    b.s2r(2, "SR_TID.X", stall=6)
    b.imad(3, Reg(2), 16, 0, stall=6)          # base = tid * 16
    b.mov32i(1, loops, stall=6)
    b.label("LOOP")
    stride = block_dim * 16                     # bytes per whole-CTA burst
    b.iadd3(1, Reg(1), -1, stall=1)             # decrement early: its ALU
    for i in range(per_loop):                   # latency passes during the
        b.ldg(8, 3, offset=i * stride, width=128, bypass_l1=True, stall=1,
              wb=0)                             # load burst
    if advance:
        b.iadd3(3, Reg(3), per_loop * stride, stall=1)
    b.isetp(Pred(0), Reg(1), 0, cmp="GT", stall=6)
    b.bra("LOOP", pred=Pred(0), stall=5)
    b.nop(stall=6, wait=(0,))                   # drain the last loads
    b.exit()
    return b.build()


def _measure(spec: GpuSpec, advance: bool, per_loop: int,
             loops: int) -> BandwidthResult:
    block_dim = 256
    program = _stream_program(per_loop, loops, advance, block_dim)
    footprint = per_loop * block_dim * 16 * (loops if advance else 1)
    memory = GlobalMemory(max(1 << 20, footprint + (1 << 16)))
    sim = TimingSimulator(spec, bandwidth_share=1.0 / spec.num_sms)
    result = sim.run(program, memory)
    counters = result.traffic
    if advance:
        bytes_moved = counters.dram_bytes
        level = "dram"
    else:
        bytes_moved = counters.l2_hit_bytes
        level = "l2"
    seconds = spec.cycles_to_seconds(result.cycles)
    gbps = bytes_moved / seconds / 1e9 * spec.num_sms
    return BandwidthResult(level=level, gbps=gbps, bytes_moved=bytes_moved,
                           cycles=result.cycles)


def measure_dram_bandwidth(spec: GpuSpec, per_loop: int = 32,
                           loops: int = 24) -> BandwidthResult:
    """Stream distinct addresses, L1 bypassed: every access misses L2 and
    is served by DRAM (Table II, 'DRAM measured')."""
    return _measure(spec, advance=True, per_loop=per_loop, loops=loops)


def measure_l2_bandwidth(spec: GpuSpec, per_loop: int = 32,
                         loops: int = 24) -> BandwidthResult:
    """Re-stream one footprint, L1 bypassed: after the first pass every
    access hits L2 (Table II, 'L2 measured')."""
    return _measure(spec, advance=False, per_loop=per_loop, loops=loops)
