"""SASS-level CPI microbenchmarks (paper Tables I, III, IV, V).

Methodology, exactly as Section IV-C / V-A describe it:

* issue a long sequence of the instruction under test, reconstructed as a
  loop small enough for the instruction cache;
* read the clock register (``CS2R SR_CLOCKLO``) before and after;
* CPI = elapsed cycles / instruction count.

This is "only possible at SASS level": a C++ compiler would delete a load
whose result is unused.  Our assembler has no such opinion.

The measured value includes the loop's residual overhead, which is why the
paper reports 8.06 for HMMA against a theoretical 8.00.  The MIO queue also
has a fill transient, so memory-op loops take a warm-up pass before the
first clock read (the paper's "thousands of instructions" amortise the same
transient).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.turing import GpuSpec
from ..isa.builder import ProgramBuilder
from ..isa.operands import Pred, Reg
from ..sim.memory import GlobalMemory
from ..sim.timing import TimingSimulator

__all__ = [
    "CpiResult",
    "measure_hmma_cpi",
    "measure_lds_cpi",
    "measure_sts_cpi",
    "measure_ldg_cpi",
    "smem_throughput_bytes_per_cycle",
]

#: Where the two clock snapshots land in global memory.
_CLOCK0_ADDR = 0x100
_CLOCK1_ADDR = 0x200


@dataclass(frozen=True)
class CpiResult:
    """Outcome of one CPI measurement."""

    instruction: str
    cpi: float
    instructions: int
    cycles: int

    def throughput_bytes_per_cycle(self, bytes_per_instruction: int) -> float:
        return bytes_per_instruction / self.cpi


def _finish(b: ProgramBuilder) -> None:
    """Store both clock snapshots (R20, R21) and exit."""
    b.s2r(2, "SR_TID.X", stall=6)
    b.imad(3, Reg(2), 4, _CLOCK0_ADDR, stall=6)
    b.stg(3, 20, width=32, stall=4)
    b.imad(3, Reg(2), 4, _CLOCK1_ADDR, stall=6)
    b.stg(3, 21, width=32, stall=4)
    b.exit()


def _run(program, spec: GpuSpec, instructions: int, name: str,
         mem_bytes: int = 1 << 22) -> CpiResult:
    memory = GlobalMemory(mem_bytes)
    sim = TimingSimulator(spec)
    sim.run(program, memory)
    start = int(memory.read_array(_CLOCK0_ADDR, np.uint32, 1)[0])
    stop = int(memory.read_array(_CLOCK1_ADDR, np.uint32, 1)[0])
    cycles = stop - start
    return CpiResult(instruction=name, cpi=cycles / instructions,
                     instructions=instructions, cycles=cycles)


def _tensor_cpi_loop(spec: GpuSpec, emit, stall: int, per_loop: int,
                     loops: int, name: str) -> CpiResult:
    """Shared loop harness for tensor-pipe CPI measurements."""
    b = ProgramBuilder(name="tensor_cpi", num_regs=32, block_dim=32)
    b.mov32i(1, loops, stall=6)
    b.cs2r_clock(20, stall=2)
    b.label("LOOP")
    # Hide the loop bookkeeping in the tensor pipe's shadow: these ALU ops
    # issue while the tensor pipe is still draining.  The ISETP sits at
    # the loop's end so the decrement's ALU latency has long passed.
    emit(b, 1)
    b.iadd3(1, Reg(1), -1, stall=1)
    for _ in range(per_loop - 1):
        emit(b, stall)
    b.isetp(Pred(0), Reg(1), 0, cmp="GT", stall=1)
    b.bra("LOOP", pred=Pred(0), stall=5)
    b.cs2r_clock(21, stall=2)
    _finish(b)
    return _run(b.build(), spec, per_loop * loops, name)


def measure_hmma_cpi(spec: GpuSpec, per_loop: int = 128,
                     loops: int = 16) -> CpiResult:
    """CPI of ``HMMA.1688.F16`` (paper Table I: theoretical 8.00,
    measured 8.06 from loop overhead)."""
    return _tensor_cpi_loop(
        spec, lambda b, s: b.hmma_1688(4, 8, 10, 4, stall=s), 8,
        per_loop, loops, "HMMA.1688.F16")


def measure_imma_cpi(spec: GpuSpec, per_loop: int = 128,
                     loops: int = 16) -> CpiResult:
    """CPI of ``IMMA.8816.S8.S8`` -- the integer future-work measurement.

    Turing's INT8 tensor path runs at twice the FP16 rate: expected CPI 4.
    """
    return _tensor_cpi_loop(
        spec, lambda b, s: b.imma_8816(4, 8, 10, 4, stall=min(s, 4)), 4,
        per_loop, loops, "IMMA.8816.S8.S8")


def _smem_loop(spec: GpuSpec, opcode: str, width: int, per_loop: int,
               loops: int, warmup: int, conflict_stride: int = None) -> CpiResult:
    """Shared-memory CPI loop (LDS or STS) with conflict-free addressing."""
    name = f"{opcode}.{width}" if width != 32 else opcode
    b = ProgramBuilder(name=f"{opcode.lower()}_cpi", num_regs=32,
                       block_dim=32, smem_bytes=32 * 1024)
    b.s2r(2, "SR_TID.X", stall=6)
    stride = conflict_stride if conflict_stride is not None else width // 8
    b.imad(3, Reg(2), stride, 0, stall=6)
    b.mov32i(1, loops, stall=6)

    def access():
        if opcode == "LDS":
            b.lds(8, 3, width=width, stall=1)
        else:
            b.sts(3, 8, width=width, stall=1)

    for _ in range(warmup):
        access()
    b.cs2r_clock(20, stall=2)
    b.label("LOOP")
    access()
    b.iadd3(1, Reg(1), -1, stall=1)
    for _ in range(per_loop - 1):
        access()
    b.isetp(Pred(0), Reg(1), 0, cmp="GT", stall=1)
    b.bra("LOOP", pred=Pred(0), stall=5)
    b.cs2r_clock(21, stall=2)
    _finish(b)
    return _run(b.build(), spec, per_loop * loops, name)


def measure_lds_cpi(spec: GpuSpec, width: int = 32, per_loop: int = 128,
                    loops: int = 8, warmup: int = 48,
                    conflict_stride: int = None) -> CpiResult:
    """CPI of bank-conflict-free LDS (Table IV row 1).

    ``conflict_stride`` overrides the per-lane byte stride to provoke
    conflicts on purpose (e.g. 128 puts every lane in one bank).
    """
    return _smem_loop(spec, "LDS", width, per_loop, loops, warmup,
                      conflict_stride)


def measure_sts_cpi(spec: GpuSpec, width: int = 32, per_loop: int = 128,
                    loops: int = 8, warmup: int = 48,
                    conflict_stride: int = None) -> CpiResult:
    """CPI of bank-conflict-free STS (Table IV row 2)."""
    return _smem_loop(spec, "STS", width, per_loop, loops, warmup,
                      conflict_stride)


def measure_ldg_cpi(spec: GpuSpec, width: int = 32, level: str = "l2",
                    per_loop: int = 128, loops: int = 8,
                    warmup: int = 48) -> CpiResult:
    """CPI of LDG with data resident in L1 or L2 (Table III).

    The paper pins the level by cache hints: repeated access to the same
    footprint keeps data in L1; ``.CG`` (bypass L1) keeps it in L2.
    """
    if level not in ("l1", "l2"):
        raise ValueError(f"level must be 'l1' or 'l2', got {level!r}")
    bypass = level == "l2"
    b = ProgramBuilder(name="ldg_cpi", num_regs=32, block_dim=32)
    b.s2r(2, "SR_TID.X", stall=6)
    b.imad(3, Reg(2), width // 8, 0x10000, stall=6)
    b.mov32i(1, loops, stall=6)
    for _ in range(warmup):
        b.ldg(8, 3, width=width, bypass_l1=bypass, stall=1)
    b.cs2r_clock(20, stall=2)
    b.label("LOOP")
    b.ldg(8, 3, width=width, bypass_l1=bypass, stall=1)
    b.iadd3(1, Reg(1), -1, stall=1)
    for _ in range(per_loop - 1):
        b.ldg(8, 3, width=width, bypass_l1=bypass, stall=1)
    b.isetp(Pred(0), Reg(1), 0, cmp="GT", stall=1)
    b.bra("LOOP", pred=Pred(0), stall=5)
    b.cs2r_clock(21, stall=2)
    _finish(b)
    name = f"LDG.{width} ({level.upper()})"
    return _run(b.build(), spec, per_loop * loops, name)


def smem_throughput_bytes_per_cycle(result: CpiResult, width: int,
                                    lanes: int = 32) -> float:
    """Convert a shared-memory CPI into Table V's bytes/cycle."""
    return lanes * (width // 8) / result.cpi
