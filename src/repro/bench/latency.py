"""HMMA result-latency probe (paper Table I, Section IV-C).

"We measure the latency of HMMA.1688.F16 by varying the stall cycles and
check if the output result is correct."  The probe issues one HMMA with a
known input, snapshots half of its destination after exactly N stall
cycles (via an ALU ``MOV``, which cannot be perturbed by the memory pipe),
and compares the snapshot against the known product.  The latency of a half
is the smallest N whose snapshot is correct.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.turing import GpuSpec
from ..hmma import (
    COL_MAJOR,
    matrix16x8_to_fragments,
    matrix_to_fragment,
)
from ..isa.builder import ProgramBuilder
from ..isa.operands import Reg
from ..sim.memory import GlobalMemory
from ..sim.timing import TimingSimulator

__all__ = ["LatencyResult", "probe_hmma_half", "measure_hmma_latency"]

_A_ADDR, _B_ADDR, _OUT_ADDR = 0x1000, 0x1100, 0x2000
_SENTINEL = 0xDEAD


@dataclass(frozen=True)
class LatencyResult:
    """Measured result latencies of HMMA.1688.F16 (cycles from issue)."""

    first_half: int
    second_half: int
    probes: int


def _build_probe(stall: int, half: int) -> "Program":
    b = ProgramBuilder(name="hmma_latency", num_regs=48, block_dim=32)
    b.mov32i(0, _SENTINEL, stall=1)           # stale sentinel in D, landed
    b.mov32i(1, _SENTINEL, stall=1)           # long before the HMMA issues
    b.mov(4, Reg(255), stall=1)               # C = 0
    b.mov(5, Reg(255), stall=1)
    b.s2r(2, "SR_TID.X", stall=6)
    b.imad(3, Reg(2), 4, 0, stall=6)
    b.ldg(8, 3, offset=_A_ADDR, width=32, stall=2, wb=0)
    b.ldg(9, 3, offset=_A_ADDR + 0x80, width=32, stall=2, wb=1)
    b.ldg(10, 3, offset=_B_ADDR, width=32, stall=2, wb=2)
    b.nop(stall=6, wait=(0, 1, 2))            # operands resident
    b.hmma_1688(0, 8, 10, 4, stall=max(1, min(15, stall)))
    b.mov(30, Reg(half), stall=6)             # the timed snapshot
    b.nop(stall=15)                           # drain remaining latencies
    b.stg(3, 30, offset=_OUT_ADDR, width=32, stall=4)
    b.exit()
    return b.build()


def probe_hmma_half(spec: GpuSpec, stall: int, half: int,
                    seed: int = 42) -> bool:
    """True iff D's *half* reads back correct after *stall* cycles."""
    if half not in (0, 1):
        raise ValueError("half must be 0 (R0) or 1 (R1)")
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, (16, 8)).astype(np.float16)
    bmat = rng.uniform(-1, 1, (8, 8)).astype(np.float16)

    memory = GlobalMemory(1 << 20)
    frags = matrix16x8_to_fragments(a)
    memory.write_array(_A_ADDR, frags[0])
    memory.write_array(_A_ADDR + 0x80, frags[1])
    memory.write_array(_B_ADDR, matrix_to_fragment(bmat, COL_MAJOR))

    TimingSimulator(spec).run(_build_probe(stall, half), memory)

    expected = (a.astype(np.float32) @ bmat.astype(np.float32)).astype(np.float16)
    exp_frags = matrix16x8_to_fragments(expected)
    got = memory.read_array(_OUT_ADDR, np.uint32, 32)
    if np.array_equal(got, exp_frags[half]):
        return True
    if not np.all(got == _SENTINEL):
        raise RuntimeError(
            "latency probe read a torn value: neither the sentinel nor the "
            "HMMA result"
        )
    return False


def measure_hmma_latency(spec: GpuSpec, max_stall: int = 15) -> LatencyResult:
    """Bisect the two half-latencies of ``HMMA.1688.F16`` (Table I)."""
    latencies = []
    probes = 0
    for half in (0, 1):
        found = None
        for stall in range(1, max_stall + 1):
            probes += 1
            if probe_hmma_half(spec, stall, half):
                found = stall
                break
        if found is None:
            raise RuntimeError(
                f"HMMA half {half} still stale after {max_stall} stall cycles"
            )
        latencies.append(found)
    return LatencyResult(first_half=latencies[0], second_half=latencies[1],
                         probes=probes)
