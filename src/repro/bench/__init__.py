"""SASS-level microbenchmarks reproducing the paper's Tables I-V."""

from .cpi import (
    CpiResult,
    measure_hmma_cpi,
    measure_imma_cpi,
    measure_ldg_cpi,
    measure_lds_cpi,
    measure_sts_cpi,
    smem_throughput_bytes_per_cycle,
)
from .latency import LatencyResult, measure_hmma_latency, probe_hmma_half
from .memband import (
    BandwidthResult,
    measure_dram_bandwidth,
    measure_l2_bandwidth,
)
from .pchase import ChaseResult, detect_l1_capacity, pointer_chase

__all__ = [
    "CpiResult",
    "measure_hmma_cpi",
    "measure_imma_cpi",
    "measure_ldg_cpi",
    "measure_lds_cpi",
    "measure_sts_cpi",
    "smem_throughput_bytes_per_cycle",
    "LatencyResult",
    "measure_hmma_latency",
    "probe_hmma_half",
    "BandwidthResult",
    "measure_dram_bandwidth",
    "measure_l2_bandwidth",
    "ChaseResult",
    "detect_l1_capacity",
    "pointer_chase",
]
