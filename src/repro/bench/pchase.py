"""Fine-grained pointer chase (Mei & Chu [12], implemented in SASS).

A dependent load chain -- ``LDG R2, [R2]`` -- serialises on the memory
latency, so average cycles per hop reveal which level served the chain.
Sweeping the footprint exposes capacity boundaries as latency jumps, the
classic way to detect cache sizes without documentation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.turing import GpuSpec
from ..isa.builder import ProgramBuilder
from ..isa.operands import Pred, Reg
from ..sim.memory import GlobalMemory
from ..sim.timing import TimingSimulator

__all__ = ["ChaseResult", "pointer_chase", "detect_l1_capacity"]

_OUT_ADDR = 0x100
_RING_BASE = 0x10000


@dataclass(frozen=True)
class ChaseResult:
    """Average per-hop latency of one pointer-chase run."""

    footprint_bytes: int
    stride_bytes: int
    hops: int
    cycles_per_hop: float


def _chase_program(hops_per_loop: int, loops: int, warm_hops: int) -> "Program":
    b = ProgramBuilder(name="pchase", num_regs=16, block_dim=32)
    b.mov32i(2, _RING_BASE, stall=6)
    b.mov32i(1, loops, stall=6)
    # Walk the whole ring once so every line is cached (the paper's
    # first-pass warm-up) before the timed traversal starts.
    for _ in range(warm_hops):
        b.ldg(2, 2, width=32, stall=1, wb=0)
        b.nop(stall=1, wait=(0,))
    b.cs2r_clock(20, stall=2)
    b.label("LOOP")
    for _ in range(hops_per_loop):
        b.ldg(2, 2, width=32, stall=1, wb=0)
        b.nop(stall=1, wait=(0,))
    b.iadd3(1, Reg(1), -1, stall=6)
    b.isetp(Pred(0), Reg(1), 0, cmp="GT", stall=6)
    b.bra("LOOP", pred=Pred(0), stall=5)
    b.cs2r_clock(21, stall=2)
    b.s2r(2, "SR_TID.X", stall=6)
    b.imad(3, Reg(2), 4, _OUT_ADDR, stall=6)
    b.stg(3, 20, width=32, stall=4)
    b.imad(3, Reg(2), 4, _OUT_ADDR + 0x80, stall=6)
    b.stg(3, 21, width=32, stall=4)
    b.exit()
    return b.build()


def pointer_chase(spec: GpuSpec, footprint_bytes: int, stride_bytes: int = 128,
                  hops_per_loop: int = 64, loops: int = 4) -> ChaseResult:
    """Chase a ring of pointers covering *footprint_bytes*."""
    if stride_bytes % 4 or footprint_bytes % stride_bytes:
        raise ValueError("stride must be word-aligned and divide the footprint")
    n_slots = footprint_bytes // stride_bytes
    ring = np.zeros(footprint_bytes // 4, dtype=np.uint32)
    for i in range(n_slots):
        nxt = ((i + 1) % n_slots) * stride_bytes + _RING_BASE
        ring[i * stride_bytes // 4] = nxt

    memory = GlobalMemory(_RING_BASE + footprint_bytes + (1 << 16))
    memory.write_array(_RING_BASE, ring)
    program = _chase_program(hops_per_loop, loops, warm_hops=n_slots)
    TimingSimulator(spec).run(program, memory)

    start = int(memory.read_array(_OUT_ADDR, np.uint32, 1)[0])
    stop = int(memory.read_array(_OUT_ADDR + 0x80, np.uint32, 1)[0])
    hops = hops_per_loop * loops
    return ChaseResult(
        footprint_bytes=footprint_bytes,
        stride_bytes=stride_bytes,
        hops=hops,
        cycles_per_hop=(stop - start) / hops,
    )


def detect_l1_capacity(spec: GpuSpec, candidates=None) -> int:
    """Locate the L1 capacity as the first footprint whose chase latency
    jumps past the in-L1 plateau (Mei & Chu's method)."""
    if candidates is None:
        candidates = [8 << 10, 16 << 10, 24 << 10, 32 << 10,
                      48 << 10, 64 << 10, 96 << 10]
    results = [pointer_chase(spec, fp) for fp in candidates]
    base = results[0].cycles_per_hop
    for prev, res in zip(candidates, results[1:]):
        if res.cycles_per_hop > 1.5 * base:
            return prev
    return candidates[-1]
