"""Turing-class GPU simulator: functional + cycle-level timing substrate."""

from .exec_units import Effects, ExecError, MemTransaction, execute
from .functional import FunctionalResult, FunctionalSimulator, SimLimitError
from .gpu import Device, LaunchTiming
from .memory import AccessSummary, GlobalMemory, MemorySubsystem
from .shared import SharedMemory, bank_conflict_degree, conflict_multiplier
from .timing import ALU_LATENCY, TimingResult, TimingSimulator

__all__ = [
    "Effects",
    "ExecError",
    "MemTransaction",
    "execute",
    "FunctionalResult",
    "FunctionalSimulator",
    "SimLimitError",
    "Device",
    "LaunchTiming",
    "AccessSummary",
    "GlobalMemory",
    "MemorySubsystem",
    "SharedMemory",
    "bank_conflict_degree",
    "conflict_multiplier",
    "ALU_LATENCY",
    "TimingResult",
    "TimingSimulator",
]
