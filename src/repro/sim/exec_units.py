"""Functional semantics of every opcode, shared by both simulators.

``execute(inst, ctx)`` evaluates one instruction against a warp context and
returns an :class:`Effects` record describing *what would change*:

* register / predicate writes (the caller decides *when* to apply them --
  immediately in the functional simulator, after the instruction's latency
  in the timing simulator, which is how under-stalled code reads stale
  values, the paper's latency-probing methodology);
* an optional memory transaction descriptor (the timing simulator prices
  bank conflicts and DRAM/L2 service from the actual lane addresses);
* control outcomes (branch target, barrier arrival, warp exit).

The context must provide: ``regs`` / ``preds`` (register files), ``tid``
(per-lane x-index within the CTA), ``ctaid`` (3-tuple), ``lane_ids``,
``global_mem``, ``shared_mem``, and ``clock()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arch.registers import WARP_LANES
from ..hmma import mma as mma_ops
from ..isa.instructions import Instruction
from ..isa.operands import Imm, MemRef, Pred, Reg, SpecialReg

__all__ = ["Effects", "MemTransaction", "ExecError", "execute"]


class ExecError(RuntimeError):
    """Raised when an instruction cannot be executed (simulated fault)."""


@dataclass
class MemTransaction:
    """Descriptor of one warp-level memory access (for timing)."""

    space: str                  # "global" or "shared"
    addresses: np.ndarray       # (32,) byte addresses
    width_bytes: int
    is_store: bool
    mask: np.ndarray            # active lanes
    bypass_l1: bool = False


@dataclass
class Effects:
    """Outcome of executing one instruction."""

    reg_writes: list = field(default_factory=list)    # (first_reg, (n,32) array, mask)
    pred_writes: list = field(default_factory=list)   # (index, (32,) bool, mask)
    transaction: MemTransaction = None
    branch_target: int = None
    exited: bool = False
    barrier: bool = False


def _as_uint32(values) -> np.ndarray:
    return np.asarray(values, dtype=np.uint64).astype(np.uint32)


def _src_value(ctx, operand) -> np.ndarray:
    """Evaluate a scalar-ish source operand to (32,) uint32."""
    if isinstance(operand, Reg):
        return ctx.regs.read(operand.index).copy()
    if isinstance(operand, Imm):
        return np.full(WARP_LANES, operand.unsigned, dtype=np.uint32)
    if isinstance(operand, SpecialReg):
        return _special_value(ctx, operand)
    raise ExecError(f"operand {operand!r} is not a value source")


def _signed(values: np.ndarray) -> np.ndarray:
    return values.astype(np.int64) - ((values >> np.uint32(31)).astype(np.int64) << 32)


def _special_value(ctx, operand: SpecialReg) -> np.ndarray:
    name = operand.name
    if name == "SR_TID.X":
        return _as_uint32(ctx.tid)
    if name in ("SR_TID.Y", "SR_TID.Z"):
        return np.zeros(WARP_LANES, dtype=np.uint32)
    if name == "SR_CTAID.X":
        return np.full(WARP_LANES, ctx.ctaid[0], dtype=np.uint32)
    if name == "SR_CTAID.Y":
        return np.full(WARP_LANES, ctx.ctaid[1], dtype=np.uint32)
    if name == "SR_CTAID.Z":
        return np.full(WARP_LANES, ctx.ctaid[2], dtype=np.uint32)
    if name == "SR_LANEID":
        return _as_uint32(ctx.lane_ids)
    if name == "SR_CLOCKLO":
        return np.full(WARP_LANES, ctx.clock() & 0xFFFFFFFF, dtype=np.uint32)
    if name == "SR_CLOCKHI":
        return np.full(WARP_LANES, (ctx.clock() >> 32) & 0xFFFFFFFF, dtype=np.uint32)
    if name == "SRZ":
        return np.zeros(WARP_LANES, dtype=np.uint32)
    raise ExecError(f"unhandled special register {name}")


# Shared all-lanes-on mask for unpredicated instructions (the common case);
# read-only so no consumer can mutate it in place.
_FULL_MASK = np.ones(WARP_LANES, dtype=bool)
_FULL_MASK.setflags(write=False)


def _guard_mask(ctx, inst: Instruction) -> np.ndarray:
    if inst.pred is None:
        return _FULL_MASK
    return ctx.preds.read(inst.pred.index, negated=inst.pred.negated)


# --------------------------------------------------------------------- ALU

def _exec_mov(ctx, inst, mask, eff):
    eff.reg_writes.append((inst.dests[0].index, _src_value(ctx, inst.srcs[0])[None, :], mask))


def _exec_iadd3(ctx, inst, mask, eff):
    total = sum(_signed(_src_value(ctx, s)) for s in inst.srcs)
    eff.reg_writes.append((inst.dests[0].index, _as_uint32(total & 0xFFFFFFFF)[None, :], mask))


def _exec_imad(ctx, inst, mask, eff):
    a, b, c = (_signed(_src_value(ctx, s)) for s in inst.srcs)
    result = (a * b + c) & 0xFFFFFFFF
    eff.reg_writes.append((inst.dests[0].index, _as_uint32(result)[None, :], mask))


def _exec_shf(ctx, inst, mask, eff):
    value = _src_value(ctx, inst.srcs[0])
    amount = _src_value(ctx, inst.srcs[1]) & np.uint32(31)
    if "L" in inst.mods:
        result = (value.astype(np.uint64) << amount.astype(np.uint64)) & 0xFFFFFFFF
    elif "R" in inst.mods:
        result = value.astype(np.uint64) >> amount.astype(np.uint64)
    else:
        raise ExecError(f"SHF needs .L or .R: {inst}")
    eff.reg_writes.append((inst.dests[0].index, _as_uint32(result)[None, :], mask))


def _exec_lop3(ctx, inst, mask, eff):
    a = _src_value(ctx, inst.srcs[0])
    b = _src_value(ctx, inst.srcs[1])
    if "AND" in inst.mods:
        result = a & b
    elif "OR" in inst.mods:
        result = a | b
    elif "XOR" in inst.mods:
        result = a ^ b
    else:
        raise ExecError(f"LOP3 needs .AND/.OR/.XOR: {inst}")
    eff.reg_writes.append((inst.dests[0].index, result[None, :], mask))


_CMPS = {
    "LT": np.less, "LE": np.less_equal, "GT": np.greater,
    "GE": np.greater_equal, "EQ": np.equal, "NE": np.not_equal,
}


def _exec_isetp(ctx, inst, mask, eff):
    cmp_name = inst.mods[0] if inst.mods else None
    if cmp_name not in _CMPS:
        raise ExecError(f"ISETP comparison missing or unknown: {inst}")
    a = _signed(_src_value(ctx, inst.srcs[0]))
    b = _signed(_src_value(ctx, inst.srcs[1]))
    combine = inst.srcs[2]
    if not isinstance(combine, Pred):
        raise ExecError(f"ISETP third source must be a predicate: {inst}")
    base = ctx.preds.read(combine.index, negated=combine.negated)
    result = _CMPS[cmp_name](a, b) & base
    eff.pred_writes.append((inst.dests[0].index, result, mask))


def _exec_sel(ctx, inst, mask, eff):
    a = _src_value(ctx, inst.srcs[0])
    b = _src_value(ctx, inst.srcs[1])
    pred = inst.srcs[2]
    if not isinstance(pred, Pred):
        raise ExecError(f"SEL third source must be a predicate: {inst}")
    choose = ctx.preds.read(pred.index, negated=pred.negated)
    eff.reg_writes.append((inst.dests[0].index, np.where(choose, a, b)[None, :], mask))


def _exec_s2r(ctx, inst, mask, eff):
    eff.reg_writes.append((inst.dests[0].index, _src_value(ctx, inst.srcs[0])[None, :], mask))


def _exec_hfma2(ctx, inst, mask, eff):
    from ..hmma.fp16 import pack_half2, unpack_half2

    a_lo, a_hi = unpack_half2(ctx.regs.read(inst.srcs[0].index))
    b_lo, b_hi = unpack_half2(ctx.regs.read(inst.srcs[1].index))
    c_lo, c_hi = unpack_half2(ctx.regs.read(inst.srcs[2].index))
    d_lo = (a_lo.astype(np.float32) * b_lo.astype(np.float32)
            + c_lo.astype(np.float32)).astype(np.float16)
    d_hi = (a_hi.astype(np.float32) * b_hi.astype(np.float32)
            + c_hi.astype(np.float32)).astype(np.float16)
    eff.reg_writes.append((inst.dests[0].index, pack_half2(d_lo, d_hi)[None, :], mask))


# ------------------------------------------------------------- Tensor Core

def _hmma_operand_regs(inst) -> tuple:
    for op in (inst.dests[0], *inst.srcs):
        if not isinstance(op, Reg) or op.is_rz:
            raise ExecError(f"HMMA operands must be general registers: {inst}")
    return inst.dests[0].index, inst.srcs[0].index, inst.srcs[1].index, inst.srcs[2].index


def _exec_imma(ctx, inst, mask, eff):
    if not np.all(mask):
        raise ExecError("IMMA cannot be lane-predicated; it is a warp-wide op")
    from ..hmma.int8 import imma_8816

    d, a, b, c = _hmma_operand_regs(inst)
    if "8816" not in inst.mods:
        raise ExecError(f"unknown IMMA shape: {inst}")
    result = imma_8816(ctx.regs.read(a), ctx.regs.read(b),
                       ctx.regs.read_group(c, 2))
    eff.reg_writes.append((d, result, mask))


def _exec_hmma(ctx, inst, mask, eff):
    if not np.all(mask):
        raise ExecError("HMMA cannot be lane-predicated; it is a warp-wide op")
    d, a, b, c = _hmma_operand_regs(inst)
    if "1688" in inst.mods:
        a_regs = ctx.regs.read_group(a, 2)
        b_reg = ctx.regs.read(b)
        if "F32" in inst.mods:
            c_regs = ctx.regs.read_group(c, 4)
            result = mma_ops.hmma_1688_f32(a_regs, b_reg, c_regs)
        else:
            c_regs = ctx.regs.read_group(c, 2)
            result = mma_ops.hmma_1688_f16(a_regs, b_reg, c_regs)
        eff.reg_writes.append((d, result, mask))
    elif "884" in inst.mods:
        result = mma_ops.hmma_884_f16(
            ctx.regs.read(a), ctx.regs.read(b), ctx.regs.read(c)
        )
        eff.reg_writes.append((d, result[None, :], mask))
    else:
        raise ExecError(f"unknown HMMA shape: {inst}")


# ----------------------------------------------------------------- memory

def _mem_addresses(ctx, memref: MemRef) -> np.ndarray:
    base = ctx.regs.read(memref.base.index).astype(np.int64)
    return base + memref.offset


def _exec_load(ctx, inst, mask, eff, space: str):
    memref = inst.srcs[0]
    if not isinstance(memref, MemRef):
        raise ExecError(f"load source must be a memory reference: {inst}")
    addresses = _mem_addresses(ctx, memref)
    width = inst.width // 8
    memory = ctx.global_mem if space == "global" else ctx.shared_mem
    data = memory.load_warp(addresses, width, mask)
    eff.reg_writes.append((inst.dests[0].index, data, mask))
    eff.transaction = MemTransaction(
        space=space, addresses=addresses, width_bytes=width,
        is_store=False, mask=mask, bypass_l1="CG" in inst.mods,
    )


def _exec_store(ctx, inst, mask, eff, space: str):
    memref, src = inst.srcs
    if not isinstance(memref, MemRef) or not isinstance(src, Reg):
        raise ExecError(f"store operands must be ([mem], reg): {inst}")
    addresses = _mem_addresses(ctx, memref)
    width = inst.width // 8
    data = ctx.regs.read_group(src.index, width // 4)
    memory = ctx.global_mem if space == "global" else ctx.shared_mem
    memory.store_warp(addresses, data, width, mask)
    eff.transaction = MemTransaction(
        space=space, addresses=addresses, width_bytes=width,
        is_store=True, mask=mask,
    )


# ----------------------------------------------------------------- control

def _exec_bra(ctx, inst, mask, eff):
    taken = bool(mask.any())
    if taken and not mask.all():
        raise ExecError(
            "divergent branch: this subset requires warp-uniform branch "
            f"predicates ({int(mask.sum())}/32 lanes taken)"
        )
    if taken:
        eff.branch_target = inst.target_index


_HANDLERS = {
    "NOP": lambda ctx, inst, mask, eff: None,
    "MOV": _exec_mov,
    "MOV32I": _exec_mov,
    "IADD3": _exec_iadd3,
    "IMAD": _exec_imad,
    "SHF": _exec_shf,
    "LOP3": _exec_lop3,
    "ISETP": _exec_isetp,
    "SEL": _exec_sel,
    "S2R": _exec_s2r,
    "CS2R": _exec_s2r,
    "HFMA2": _exec_hfma2,
    "HMMA": _exec_hmma,
    "IMMA": _exec_imma,
    "LDG": lambda ctx, inst, mask, eff: _exec_load(ctx, inst, mask, eff, "global"),
    "STG": lambda ctx, inst, mask, eff: _exec_store(ctx, inst, mask, eff, "global"),
    "LDS": lambda ctx, inst, mask, eff: _exec_load(ctx, inst, mask, eff, "shared"),
    "STS": lambda ctx, inst, mask, eff: _exec_store(ctx, inst, mask, eff, "shared"),
    "BRA": _exec_bra,
}


def execute(inst: Instruction, ctx) -> Effects:
    """Execute *inst* against warp context *ctx*; see module docstring."""
    eff = Effects()
    mask = _guard_mask(ctx, inst)

    if inst.opcode == "EXIT":
        eff.exited = bool(mask.all())
        return eff
    if inst.opcode == "BAR":
        eff.barrier = True
        return eff

    if not mask.any() and inst.opcode != "BRA":
        return eff  # fully predicated off

    handler = _HANDLERS.get(inst.opcode)
    if handler is None:
        raise ExecError(f"no executor for opcode {inst.opcode}")
    handler(ctx, inst, mask, eff)
    return eff
