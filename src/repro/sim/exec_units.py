"""Reference executor: a thin adapter over the µop semantics table.

``execute(inst, ctx)`` evaluates one instruction against a warp context and
returns an :class:`Effects` record describing *what would change*:

* register / predicate writes (the caller decides *when* to apply them --
  immediately in the functional simulator, after the instruction's latency
  in the timing simulator, which is how under-stalled code reads stale
  values, the paper's latency-probing methodology);
* an optional memory transaction descriptor (the timing simulator prices
  bank conflicts and DRAM/L2 service from the actual lane addresses);
* control outcomes (branch target, barrier arrival, warp exit).

The per-opcode behaviour itself lives in :mod:`repro.sim.uop`
(``SEMANTICS``): this module only evaluates the decoded operand
descriptors against the context, runs the lane kernel, and packages the
result.  The batched engines in :mod:`repro.sim.decode` compile the same
descriptors, so there is exactly one definition of each opcode.

The context must provide: ``regs`` / ``preds`` (register files), ``tid``
(per-lane x-index within the CTA), ``ctaid`` (3-tuple), ``lane_ids``,
``global_mem``, ``shared_mem``, and ``clock()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arch.registers import WARP_LANES
from ..isa.instructions import Instruction, OPCODES
from .uop import ExecError, decode_uop, special_value

__all__ = ["Effects", "MemTransaction", "ExecError", "execute"]


@dataclass
class MemTransaction:
    """Descriptor of one warp-level memory access (for timing)."""

    space: str                  # "global" or "shared"
    addresses: np.ndarray       # (32,) byte addresses
    width_bytes: int
    is_store: bool
    mask: np.ndarray            # active lanes
    bypass_l1: bool = False


@dataclass
class Effects:
    """Outcome of executing one instruction."""

    reg_writes: list = field(default_factory=list)    # (first_reg, (n,32) array, mask)
    pred_writes: list = field(default_factory=list)   # (index, (32,) bool, mask)
    transaction: MemTransaction = None
    branch_target: int = None
    exited: bool = False
    barrier: bool = False


# Shared all-lanes-on mask for unpredicated instructions (the common case);
# read-only so no consumer can mutate it in place.
_FULL_MASK = np.ones(WARP_LANES, dtype=bool)
_FULL_MASK.setflags(write=False)


def _guard_mask(ctx, inst: Instruction) -> np.ndarray:
    if inst.pred is None:
        return _FULL_MASK
    return ctx.preds.read(inst.pred.index, negated=inst.pred.negated)


def _read_source(ctx, desc) -> np.ndarray:
    """Evaluate one µop source descriptor to a fresh (32,) / (n, 32) array.

    Register reads copy so deferred writes (timing simulator) never alias
    live register-file rows; register *groups* stay live views because MMA
    kernels consume them immediately and produce fresh outputs.
    """
    kind = desc[0]
    if kind == "reg":
        return ctx.regs.read(desc[1]).copy()
    if kind == "reg_i32":
        return ctx.regs.read(desc[1]).copy().view(np.int32)
    if kind == "regs":
        return ctx.regs.read_group(desc[1], desc[2])
    if kind == "imm":
        return np.full(WARP_LANES, desc[1], dtype=np.uint32)
    if kind == "imm_i32":
        return np.full(WARP_LANES, desc[1], dtype=np.uint32).view(np.int32)
    if kind == "pred":
        return ctx.preds.read(desc[1], negated=desc[2])
    value = special_value(ctx, desc[1])         # ("sr", name) / ("sr_i32", name)
    return value.view(np.int32) if kind == "sr_i32" else value


def _mem_addresses(ctx, mem) -> np.ndarray:
    return ctx.regs.read(mem.base_index).astype(np.int64) + mem.offset


def execute(inst: Instruction, ctx) -> Effects:
    """Execute *inst* against warp context *ctx*; see module docstring."""
    eff = Effects()
    mask = _guard_mask(ctx, inst)
    opcode = inst.opcode

    if opcode == "EXIT":
        eff.exited = bool(mask.all())
        return eff
    if opcode == "BAR":
        eff.barrier = True
        return eff

    if not mask.any() and opcode != "BRA":
        return eff  # fully predicated off

    if OPCODES[opcode].warp_wide and not mask.all():
        raise ExecError(f"{opcode} cannot be lane-predicated; it is a warp-wide op")

    uop = decode_uop(inst)
    kind = uop.kind

    if kind == "alu":
        values = [_read_source(ctx, desc) for desc in uop.srcs]
        out = uop.kernel(*values) if uop.kernel is not None else values[0]
        dest = uop.dest
        if dest[0] == "pred":
            eff.pred_writes.append((dest[1], out, mask))
        else:
            eff.reg_writes.append(
                (dest[1], out if out.ndim == 2 else out[None, :], mask))
        return eff

    if kind == "load":
        mem = uop.mem
        addresses = _mem_addresses(ctx, mem)
        memory = ctx.global_mem if mem.space == "global" else ctx.shared_mem
        data = memory.load_warp(addresses, mem.width, mask)
        eff.reg_writes.append((uop.dest[1], data, mask))
        eff.transaction = MemTransaction(
            space=mem.space, addresses=addresses, width_bytes=mem.width,
            is_store=False, mask=mask, bypass_l1=mem.bypass_l1,
        )
        return eff

    if kind == "store":
        mem = uop.mem
        addresses = _mem_addresses(ctx, mem)
        data = ctx.regs.read_group(mem.reg, mem.words)
        memory = ctx.global_mem if mem.space == "global" else ctx.shared_mem
        memory.store_warp(addresses, data, mem.width, mask)
        eff.transaction = MemTransaction(
            space=mem.space, addresses=addresses, width_bytes=mem.width,
            is_store=True, mask=mask,
        )
        return eff

    if kind == "bra":
        taken = bool(mask.any())
        if taken and not mask.all():
            raise ExecError(
                "divergent branch: this subset requires warp-uniform branch "
                f"predicates ({int(mask.sum())}/32 lanes taken)"
            )
        if taken:
            eff.branch_target = uop.target
        return eff

    return eff  # NOP
