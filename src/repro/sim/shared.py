"""Banked shared memory: functional store + bank-conflict timing.

Turing shared memory has 32 banks of 4 bytes; a warp access serialises into
as many phases as the most-contended bank needs.  The conflict *multiplier*
computed here scales the baseline LDS/STS CPI (paper Table IV, which is
defined for conflict-free patterns).  Broadcasts (several lanes reading the
same word) do not conflict.

This module is what makes the paper's Fig. 5 ablation mechanistic: the naive
``A[256][32]`` layout produces multi-way conflicts on the HGEMM's LDS/STS
patterns while the padded layout (``offset = row*32 + row%2*8 + col``) is
conflict-free -- both facts are *computed from the addresses*, not asserted.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SharedMemory", "StackedSharedMemory", "bank_conflict_degree",
           "conflict_multiplier"]

#: Turing shared memory geometry.
NUM_BANKS = 32
BANK_BYTES = 4


def bank_conflict_degree(addresses: np.ndarray, width_bytes: int,
                         mask: np.ndarray = None) -> int:
    """Serialisation phases needed by one warp-wide shared access.

    Args:
        addresses: (32,) byte addresses, one per lane.
        width_bytes: 4, 8 or 16 (LDS/STS .32/.64/.128).
        mask: active-lane mask; inactive lanes make no requests.

    Returns:
        The number of bank phases, i.e. ``max_b |distinct words in bank b|``
        over the whole access.  A conflict-free access of width ``w`` needs
        ``32 * (w/4) / 32 = w/4`` phases (that baseline is already priced
        into the CPI tables).
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if mask is None:
        mask = np.ones(addresses.shape, dtype=bool)
    active = addresses[mask]
    if active.size == 0:
        return 0
    if np.any(active % width_bytes):
        bad = int(active[active % width_bytes != 0][0])
        raise ValueError(f"misaligned {width_bytes}-byte shared access at {bad:#x}")
    words_per_lane = width_bytes // BANK_BYTES
    words = (
        active[:, None] // BANK_BYTES
        + np.arange(words_per_lane, dtype=np.int64)[None, :]
    ).ravel()
    distinct = np.unique(words)
    banks = distinct % NUM_BANKS
    return int(np.bincount(banks, minlength=NUM_BANKS).max())


def conflict_multiplier(addresses: np.ndarray, width_bytes: int,
                        mask: np.ndarray = None) -> float:
    """How much slower this access is than the conflict-free baseline.

    Wide accesses are issued by the hardware in ``width/4`` wavefronts, so a
    conflict-free .128 access already takes 4 phases; the multiplier is the
    measured phase count over that baseline, floored at 1.
    """
    degree = bank_conflict_degree(addresses, width_bytes, mask)
    baseline = width_bytes // BANK_BYTES
    return max(1.0, degree / baseline)


class SharedMemory:
    """Per-CTA shared memory with vectorised warp access."""

    def __init__(self, size_bytes: int):
        if size_bytes < 0 or size_bytes % 4:
            raise ValueError(f"size must be a non-negative multiple of 4, got {size_bytes}")
        self.size = size_bytes
        self._words = np.zeros(max(1, size_bytes // 4), dtype=np.uint32)

    def load_warp(self, addresses: np.ndarray, width_bytes: int,
                  mask: np.ndarray) -> np.ndarray:
        idx = self._word_indices(addresses, width_bytes, mask)
        if mask is None:
            return self._words[idx]
        out = np.zeros((width_bytes // 4, addresses.shape[0]), dtype=np.uint32)
        out[:, mask] = self._words[idx[:, mask]]
        return out

    def store_warp(self, addresses: np.ndarray, data: np.ndarray,
                   width_bytes: int, mask: np.ndarray) -> None:
        idx = self._word_indices(addresses, width_bytes, mask)
        if mask is None:
            self._words[idx] = data
            return
        self._words[idx[:, mask]] = data[:, mask]

    def load_warp_batch(self, addresses: np.ndarray, width_bytes: int) -> np.ndarray:
        """Gather for a fused (unpredicated) run: (g, 32) -> (g, words, 32)."""
        idx = self._batch_indices(addresses, width_bytes)
        return self._words[idx]

    def store_warp_batch(self, addresses: np.ndarray, data: np.ndarray,
                         width_bytes: int) -> None:
        """Scatter for a fused run; duplicate indices resolve in C order, so
        later run members win -- same as sequential stores."""
        idx = self._batch_indices(addresses, width_bytes)
        self._words[idx] = data

    def _batch_indices(self, addresses: np.ndarray, width_bytes: int) -> np.ndarray:
        misaligned = addresses % width_bytes != 0
        if misaligned.any():
            bad = int(addresses[misaligned][0])
            raise ValueError(
                f"misaligned {width_bytes}-byte shared access at {bad:#x}"
            )
        per_row_max = addresses.max(axis=1)
        per_row_min = addresses.min(axis=1)
        oob = (per_row_min < 0) | (per_row_max + width_bytes > self.size)
        if oob.any():
            row = int(np.argmax(oob))
            lo, hi = int(per_row_min[row]), int(per_row_max[row])
            raise IndexError(
                f"shared access outside the {self.size}-byte allocation: "
                f"[{lo:#x}, {hi + width_bytes:#x})"
            )
        words = width_bytes // 4
        return (addresses[:, None, :] // 4
                + np.arange(words, dtype=np.int64)[None, :, None])

    def read_array(self, addr: int, dtype, count: int) -> np.ndarray:
        """Debug view of shared contents (not a hardware operation)."""
        nbytes = np.dtype(dtype).itemsize * count
        if addr % 4 or addr + nbytes > self.size:
            raise IndexError("bad shared read range")
        return self._words[addr // 4 : (addr + nbytes) // 4].view(dtype)[:count].copy()

    def _word_indices(self, addresses: np.ndarray, width_bytes: int,
                      mask: np.ndarray) -> np.ndarray:
        active = addresses if mask is None else addresses[mask]
        if active.size:
            if np.any(active % width_bytes):
                bad = int(active[active % width_bytes != 0][0])
                raise ValueError(
                    f"misaligned {width_bytes}-byte shared access at {bad:#x}"
                )
            if int(active.min()) < 0 or int(active.max()) + width_bytes > self.size:
                raise IndexError(
                    f"shared access outside the {self.size}-byte allocation: "
                    f"[{int(active.min()):#x}, {int(active.max()) + width_bytes:#x})"
                )
        words = width_bytes // 4
        base = (addresses // 4).astype(np.int64)
        if mask is not None:
            base = np.where(mask, base, 0)
        return base[None, :] + np.arange(words, dtype=np.int64)[:, None]


class StackedSharedMemory:
    """All per-CTA shared segments of a grid-stacked run as one array.

    The grid-lockstep functional engine stacks ``n_ctas * lanes_per_cta``
    lanes into a single state; each lane still addresses *its own CTA's*
    shared segment with CTA-relative byte addresses.  This class backs those
    accesses with a flat ``(n_ctas * seg_words,)`` word array plus a constant
    per-lane word offset (``cta_index * seg_words``), so every warp-level
    entry point of :class:`SharedMemory` keeps its exact semantics -- same
    alignment/bounds error messages (bounds are *per segment*), same
    C-order scatter resolution -- while a grid-wide LDS/STS stays one NumPy
    gather/scatter.

    ``segment(c)`` exposes CTA *c*'s words for the de-stack path, which
    copies them into a plain :class:`SharedMemory` of identical shape.
    """

    def __init__(self, size_bytes: int, n_ctas: int, lanes_per_cta: int):
        if size_bytes < 0 or size_bytes % 4:
            raise ValueError(
                f"size must be a non-negative multiple of 4, got {size_bytes}")
        if n_ctas < 1 or lanes_per_cta < 1:
            raise ValueError("need at least one CTA and one lane per CTA")
        self.size = size_bytes  # per-CTA segment size: bounds semantics
        self.n_ctas = n_ctas
        self.seg_words = max(1, size_bytes // 4)
        self._segments = np.zeros((n_ctas, self.seg_words), dtype=np.uint32)
        self._words = self._segments.reshape(-1)
        self._lane_base = np.repeat(
            np.arange(n_ctas, dtype=np.int64) * self.seg_words, lanes_per_cta)

    def segment(self, cta_index: int) -> np.ndarray:
        """CTA ``cta_index``'s own words (a view, for de-stack copies)."""
        return self._segments[cta_index]

    def load_warp(self, addresses: np.ndarray, width_bytes: int,
                  mask: np.ndarray) -> np.ndarray:
        idx = self._word_indices(addresses, width_bytes, mask)
        if mask is None:
            return self._words[idx]
        out = np.zeros((width_bytes // 4, addresses.shape[0]), dtype=np.uint32)
        out[:, mask] = self._words[idx[:, mask]]
        return out

    def store_warp(self, addresses: np.ndarray, data: np.ndarray,
                   width_bytes: int, mask: np.ndarray) -> None:
        idx = self._word_indices(addresses, width_bytes, mask)
        if mask is None:
            self._words[idx] = data
            return
        self._words[idx[:, mask]] = data[:, mask]

    def load_warp_batch(self, addresses: np.ndarray, width_bytes: int) -> np.ndarray:
        idx = self._batch_indices(addresses, width_bytes)
        return self._words[idx]

    def store_warp_batch(self, addresses: np.ndarray, data: np.ndarray,
                         width_bytes: int) -> None:
        idx = self._batch_indices(addresses, width_bytes)
        self._words[idx] = data

    def _word_indices(self, addresses: np.ndarray, width_bytes: int,
                      mask: np.ndarray) -> np.ndarray:
        active = addresses if mask is None else addresses[mask]
        if active.size:
            if np.any(active % width_bytes):
                bad = int(active[active % width_bytes != 0][0])
                raise ValueError(
                    f"misaligned {width_bytes}-byte shared access at {bad:#x}"
                )
            if int(active.min()) < 0 or int(active.max()) + width_bytes > self.size:
                raise IndexError(
                    f"shared access outside the {self.size}-byte allocation: "
                    f"[{int(active.min()):#x}, {int(active.max()) + width_bytes:#x})"
                )
        words = width_bytes // 4
        base = (addresses // 4).astype(np.int64)
        if mask is not None:
            base = np.where(mask, base, 0)
        base = base + self._lane_base
        return base[None, :] + np.arange(words, dtype=np.int64)[:, None]

    def _batch_indices(self, addresses: np.ndarray, width_bytes: int) -> np.ndarray:
        misaligned = addresses % width_bytes != 0
        if misaligned.any():
            bad = int(addresses[misaligned][0])
            raise ValueError(
                f"misaligned {width_bytes}-byte shared access at {bad:#x}"
            )
        per_row_max = addresses.max(axis=1)
        per_row_min = addresses.min(axis=1)
        oob = (per_row_min < 0) | (per_row_max + width_bytes > self.size)
        if oob.any():
            row = int(np.argmax(oob))
            lo, hi = int(per_row_min[row]), int(per_row_max[row])
            raise IndexError(
                f"shared access outside the {self.size}-byte allocation: "
                f"[{lo:#x}, {hi + width_bytes:#x})"
            )
        words = width_bytes // 4
        return (addresses[:, None, :] // 4
                + np.arange(words, dtype=np.int64)[None, :, None]
                + self._lane_base[None, None, :])
