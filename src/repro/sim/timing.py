"""Cycle-level timing simulator of one Turing SM.

Models exactly the mechanisms the paper measures and then exploits:

* **4 warp schedulers** (one per processing block), each issuing at most one
  instruction per cycle from its resident warps (loose round-robin).
* **Pipes with occupancy**: each HMMA occupies its processing block's tensor
  pipe for ``hmma_cpi`` (8) cycles; every LDG/STG/LDS/STS occupies the
  single SM-wide memory-IO pipe for its CPI (Tables III/IV), scaled by the
  measured shared-memory **bank-conflict multiplier** of its actual lane
  addresses; ALU/FMA ops occupy their scheduler's dispatch path.
* **Fixed-latency results via stall counts**: HMMA writes the first half of
  D 10 cycles after issue and the second half 14 cycles after (Table I);
  ALU results land after ``ALU_LATENCY``.  Results are *deferred register
  writes* -- an under-stalled consumer reads the stale value, which is
  precisely how the paper probes latency ("varying the stall cycles and
  check if the output result is correct").
* **Variable latency via scoreboards**: loads release their write barrier
  when data arrives (L1/L2/DRAM service times from
  :class:`~repro.sim.memory.MemorySubsystem`); instructions waiting on a
  scoreboard do not issue until it clears.

The simulator is also a full functional interpreter (it uses the same
executors), so timing experiments can verify results, and correctness
experiments can read clocks.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..arch.registers import PredicateFile, RegisterFile, WARP_LANES
from ..arch.turing import GpuSpec
from ..isa.control import NO_BARRIER
from ..isa.instructions import Pipe
from ..isa.program import Program
from ..perf.stats import STATS
from .exec_units import ExecError, execute
from .memory import GlobalMemory, MemorySubsystem
from .shared import SharedMemory, conflict_multiplier

__all__ = ["TimingSimulator", "TimingResult", "ALU_LATENCY"]

#: Cycles from issue to result for short ALU/FMA operations.
ALU_LATENCY = 5

#: Simulation fuel: cycles after which we declare the kernel hung.
DEFAULT_MAX_CYCLES = 30_000_000


class _MioQueue:
    """The SM's memory-IO instruction queue.

    Warps deposit LDS/STS/LDG/STG here and continue issuing math; the queue
    drains serially at each instruction's CPI (so a long sequence measures
    exactly the Table III/IV CPIs, the paper's methodology).  Only when the
    queue is full does the issuing warp stall -- which is precisely how an
    under-spaced STS schedule (Fig. 4's "STS2") ends up starving the tensor
    pipes."""

    def __init__(self, depth: int):
        self.depth = depth
        self.drain_free = 0.0       # when the drain port frees up
        self._done = deque()        # completion times of queued entries

    def can_accept(self, cycle: int) -> bool:
        self._retire(cycle)
        return len(self._done) < self.depth

    def next_slot_free(self, cycle: int) -> float:
        """Earliest cycle a full queue opens a slot."""
        self._retire(cycle)
        if len(self._done) < self.depth:
            return cycle
        return self._done[0]

    def push(self, cycle: int, occupancy: float) -> float:
        """Enqueue one access; returns its drain-completion time."""
        start = max(self.drain_free, float(cycle))
        done = start + occupancy
        self.drain_free = done
        self._done.append(done)
        return done

    def _retire(self, cycle: int) -> None:
        done = self._done
        while done and done[0] <= cycle:
            done.popleft()


class _TimedWarp:
    """Per-warp microarchitectural state."""

    __slots__ = (
        "warp_id", "cta_slot", "ctaid", "lane_ids", "tid", "regs", "preds",
        "global_mem", "shared_mem", "pc", "next_issue", "exited",
        "at_barrier", "scoreboards", "pending_writes",
        "pending_tensor_writes", "retired", "_clock_now",
    )

    def __init__(self, warp_id, cta_slot, ctaid, global_mem, shared_mem):
        self.warp_id = warp_id
        self.cta_slot = cta_slot
        self.ctaid = ctaid
        self.lane_ids = np.arange(WARP_LANES, dtype=np.uint32)
        local = warp_id * WARP_LANES + self.lane_ids
        self.tid = local.astype(np.uint32)
        self.regs = RegisterFile()
        self.preds = PredicateFile()
        self.global_mem = global_mem
        self.shared_mem = shared_mem
        self.pc = 0
        self.next_issue = 0
        self.exited = False
        self.at_barrier = False
        self.scoreboards = [0] * 6       # release cycle per barrier index
        self.pending_writes = []         # (apply_cycle, first_reg, values, mask)
        self.pending_tensor_writes = []  # same shape; forwardable inside the pipe
        self.retired = 0
        self._clock_now = 0

    def clock(self) -> int:
        return self._clock_now

    def apply_due_writes(self, cycle: int) -> None:
        if self.pending_writes:
            self.pending_writes = self._drain_due(self.pending_writes, cycle)
        if self.pending_tensor_writes:
            self.pending_tensor_writes = self._drain_due(
                self.pending_tensor_writes, cycle
            )

    def _drain_due(self, queue: list, cycle: int) -> list:
        remaining = []
        write_group = self.regs.write_group
        for item in queue:
            if item[0] <= cycle:
                _, first_reg, values, mask = item
                write_group(first_reg, values,
                            mask=None if mask.all() else mask)
            else:
                remaining.append(item)
        return remaining

    def forward_tensor_writes(self) -> None:
        """Apply not-yet-due tensor results early (intra-pipe forwarding):
        back-to-back accumulating HMMAs see each other's results at the
        8-cycle issue interval even though non-tensor consumers must wait
        the architectural 10/14 cycles."""
        self.pending_tensor_writes.sort(key=lambda item: item[0])
        for _, first_reg, values, mask in self.pending_tensor_writes:
            self.regs.write_group(first_reg, values,
                                  mask=None if mask.all() else mask)
        self.pending_tensor_writes = []

    def flush_writes(self) -> None:
        combined = self.pending_writes + self.pending_tensor_writes
        combined.sort(key=lambda item: item[0])
        for _, first_reg, values, mask in combined:
            self.regs.write_group(first_reg, values,
                                  mask=None if mask.all() else mask)
        self.pending_writes = []
        self.pending_tensor_writes = []

    def wait_satisfied(self, wait_mask: int, cycle: int) -> bool:
        if not wait_mask:
            return True
        for b in range(6):
            if wait_mask & (1 << b) and self.scoreboards[b] > cycle:
                return False
        return True

    def next_wait_release(self, wait_mask: int) -> int:
        return max(
            (self.scoreboards[b] for b in range(6) if wait_mask & (1 << b)),
            default=0,
        )


class _DecodedInst:
    """Static per-instruction facts, predecoded once per :meth:`run`.

    The issue loop runs once per scheduler per simulated cycle; chasing
    ``inst.info.is_memory`` / ``inst.ctrl.wait_mask`` attribute chains and
    re-deriving memory CPIs there dominated simulation time.  Everything
    that does not depend on dynamic state is flattened here.
    """

    __slots__ = (
        "inst", "opcode", "pipe_class", "is_memory", "is_mma", "is_tensor",
        "occupancy", "issue_stall", "wait_mask", "write_bar", "read_bar",
        "mem_shared", "mem_store", "mem_cpi", "mem_cpi_l2",
    )

    def __init__(self, inst, spec: GpuSpec):
        info = inst.info
        ctrl = inst.ctrl
        self.inst = inst
        self.opcode = inst.opcode
        self.is_memory = info.is_memory
        self.is_mma = info.warp_wide
        self.is_tensor = info.pipe == Pipe.TENSOR
        self.wait_mask = ctrl.wait_mask
        self.write_bar = ctrl.write_bar
        self.read_bar = ctrl.read_bar
        self.issue_stall = max(1, ctrl.stall)

        # Execution-pipe class for the issue-port busy check (memory ops
        # go through the MIO queue instead; branches/barriers need none).
        if info.is_memory or info.pipe in (Pipe.BRANCH, Pipe.BARRIER):
            self.pipe_class = None
        else:
            self.pipe_class = info.pipe

        # Issue-port occupancy of non-memory instructions.
        if inst.opcode == "HMMA":
            self.occupancy = spec.hmma_cpi
        elif inst.opcode == "IMMA":
            self.occupancy = spec.imma_cpi
        elif info.pipe == Pipe.ALU:
            self.occupancy = spec.alu_cpi
        elif info.pipe == Pipe.FMA:
            self.occupancy = spec.fma_cpi
        else:
            self.occupancy = 0.0

        # MIO drain-port CPIs (Tables III/IV); for LDG, ``mem_cpi`` holds
        # the L1-hit table and ``mem_cpi_l2`` the L2/DRAM table.
        self.mem_shared = False
        self.mem_store = False
        self.mem_cpi = 0.0
        self.mem_cpi_l2 = 0.0
        if info.is_memory:
            width = inst.width
            self.mem_store = info.is_store
            if inst.opcode in ("LDS", "STS"):
                self.mem_shared = True
                table = spec.sts_cpi if info.is_store else spec.lds_cpi
                self.mem_cpi = table.cpi(width)
            elif inst.opcode == "STG":
                self.mem_cpi = spec.stg_cpi.cpi(width)
            else:  # LDG
                self.mem_cpi = spec.ldg_l1_cpi.cpi(width)
                self.mem_cpi_l2 = spec.ldg_l2_cpi.cpi(width)


@dataclass
class TimingResult:
    """Outcome of one timed SM run."""

    cycles: int
    instructions: int
    opcode_counts: dict
    pipe_busy: dict            # pipe name -> total busy cycles (all units)
    issue_stall_reasons: dict  # reason -> cycles summed over warps
    traffic: "object"          # MemorySubsystem counters
    num_schedulers: int = 4

    def cpi_of(self, opcode: str) -> float:
        count = self.opcode_counts.get(opcode, 0)
        if count == 0:
            raise ValueError(f"no {opcode} instructions were executed")
        return self.cycles / count

    def pipe_utilization(self, pipe: str) -> float:
        """Busy fraction of the named pipe class (tensor/alu/fma have one
        unit per scheduler; lsu has a single drain port)."""
        units = 1 if pipe == "lsu" else self.num_schedulers
        return self.pipe_busy.get(pipe, 0) / max(1, self.cycles * units)


class TimingSimulator:
    """Simulates *num_ctas* CTAs of one program resident on one SM."""

    def __init__(self, spec: GpuSpec, bandwidth_share: float = 1.0,
                 l1_bytes: int = 32 * 1024):
        self.spec = spec
        self.bandwidth_share = bandwidth_share
        self.l1_bytes = l1_bytes

    def run(self, program: Program, global_mem: GlobalMemory = None,
            num_ctas: int = 1, first_ctaid=(0, 0, 0),
            max_cycles: int = DEFAULT_MAX_CYCLES) -> TimingResult:
        if global_mem is None:
            global_mem = GlobalMemory(4 * 1024 * 1024)
        memsys = MemorySubsystem(self.spec, self.bandwidth_share, self.l1_bytes)

        warps = []
        cta_warps = []
        for slot in range(num_ctas):
            shared = SharedMemory(program.meta.smem_bytes)
            ctaid = (first_ctaid[0] + slot, first_ctaid[1], first_ctaid[2])
            members = [
                _TimedWarp(w, slot, ctaid, global_mem, shared)
                for w in range(program.meta.warps_per_cta)
            ]
            warps.extend(members)
            cta_warps.append(members)

        n_sched = self.spec.warp_schedulers_per_sm
        pipes = {
            **{("tensor", s): 0 for s in range(n_sched)},
            **{("alu", s): 0 for s in range(n_sched)},
            **{("fma", s): 0 for s in range(n_sched)},
        }
        mio = _MioQueue(self.spec.mio_queue_depth)
        pipe_busy_total = {"tensor": 0, "alu": 0, "fma": 0, "lsu": 0}
        stall_reasons = {"pipe": 0, "scoreboard": 0, "stall": 0, "barrier": 0}
        opcode_counts: dict = {}
        rr = [0] * n_sched  # round-robin pointers
        by_sched = [
            [w for i, w in enumerate(warps) if i % n_sched == s]
            for s in range(n_sched)
        ]
        decoded = [_DecodedInst(inst, self.spec) for inst in program]

        start_wall = time.perf_counter()
        cycle = 0
        retired = 0
        while cycle < max_cycles:
            if all(w.exited for w in warps):
                break
            issued_any = False
            # Rotate the polling order so no scheduler gets standing
            # priority on the shared memory-IO pipe (hardware arbitrates
            # fairly; a fixed order starves the last scheduler's warps and
            # makes them barrier stragglers).
            for s in range(cycle % n_sched, cycle % n_sched + n_sched):
                s %= n_sched
                issued = self._try_issue_scheduler(
                    s, by_sched[s], rr, cycle, pipes, mio, pipe_busy_total,
                    stall_reasons, opcode_counts, memsys, cta_warps, decoded,
                )
                if issued:
                    retired += 1
                    issued_any = True
            if issued_any:
                cycle += 1
                continue
            # Nothing issued: skip ahead to the next possible event.
            nxt = self._next_event(warps, pipes, mio, cycle, decoded)
            if nxt <= cycle:
                cycle += 1
            else:
                cycle = min(nxt, max_cycles)
        else:
            raise RuntimeError(
                f"timing simulation exceeded {max_cycles} cycles; "
                "kernel appears hung"
            )

        for w in warps:
            w.flush_writes()

        STATS.count("sim.runs")
        STATS.count("sim.cycles", cycle)
        STATS.count("sim.instructions", retired)
        STATS.add_time("sim.wall", time.perf_counter() - start_wall)

        return TimingResult(
            cycles=cycle,
            instructions=retired,
            opcode_counts=opcode_counts,
            pipe_busy=pipe_busy_total,
            issue_stall_reasons=stall_reasons,
            traffic=memsys.counters,
            num_schedulers=n_sched,
        )

    # ---------------------------------------------------------------- issue

    def _try_issue_scheduler(self, s, sched_warps, rr, cycle, pipes, mio,
                             pipe_busy_total, stall_reasons, opcode_counts,
                             memsys, cta_warps, decoded) -> bool:
        n = len(sched_warps)
        base = rr[s]
        for k in range(n):
            idx = (base + k) % n
            warp = sched_warps[idx]
            if warp.exited or warp.at_barrier:
                continue
            if warp.next_issue > cycle:
                stall_reasons["stall"] += 1
                continue
            if warp.pc >= len(decoded):
                raise ExecError(
                    f"warp {warp.warp_id} ran off the end of the program "
                    f"(pc={warp.pc}); missing EXIT?"
                )
            dec = decoded[warp.pc]
            if dec.wait_mask and not warp.wait_satisfied(dec.wait_mask, cycle):
                stall_reasons["scoreboard"] += 1
                continue
            if dec.is_memory:
                if not mio.can_accept(cycle):
                    stall_reasons["pipe"] += 1
                    continue
                pipe_key = None
            elif dec.pipe_class is None:
                pipe_key = None  # branch / barrier need no execution pipe
            else:
                pipe_key = (dec.pipe_class, s)
                # A pipe that frees up *during* this cycle accepts the
                # issue; the fractional busy time carries over (so CPI 4.06
                # averages to 4.06, not 5).
                if pipes[pipe_key] >= cycle + 1:
                    stall_reasons["pipe"] += 1
                    continue

            # Issue!
            self._issue(warp, dec, cycle, pipes, pipe_key, mio,
                        pipe_busy_total, memsys, cta_warps)
            opcode_counts[dec.opcode] = opcode_counts.get(dec.opcode, 0) + 1
            rr[s] = (idx + 1) % n
            return True
        return False

    def _issue(self, warp, dec, cycle, pipes, pipe_key, mio,
               pipe_busy_total, memsys, cta_warps) -> None:
        warp.apply_due_writes(cycle)
        if dec.is_tensor:
            # Intra-pipe forwarding: a tensor op chained on a prior one's
            # accumulator sees it at the issue interval.
            warp.forward_tensor_writes()
        warp._clock_now = cycle
        eff = execute(dec.inst, warp)
        warp.retired += 1

        occupancy = 0.0
        write_bar_release = None

        if dec.is_mma:
            occupancy = dec.occupancy
            self._defer_hmma_writes(warp, dec.inst, eff, cycle)
        elif dec.is_memory:
            lsu_occupancy, ready = self._price_memory(dec, eff, cycle,
                                                      memsys, mio)
            pipe_busy_total["lsu"] += lsu_occupancy
            # Drained through the MIO queue, not a pipe: occupancy stays 0.
            write_bar_release = ready
            for first_reg, values, mask in eff.reg_writes:
                warp.pending_writes.append((ready, first_reg, values, mask))
        else:
            occupancy = dec.occupancy
            due = cycle + ALU_LATENCY
            for first_reg, values, mask in eff.reg_writes:
                warp.pending_writes.append((due, first_reg, values, mask))

        # Predicates use the ALU latency as well.
        for index, values, mask in eff.pred_writes:
            # Predicate files are small; model latency by deferring through
            # the same queue using a sentinel: simplest is immediate apply
            # after ALU_LATENCY via closure-free tuple on the regs queue is
            # not possible, so apply now but require stall>=ALU_LATENCY by
            # convention (generated code always does).
            warp.preds.write(index, values, mask=None if mask.all() else mask)

        if pipe_key is not None and occupancy:
            pipes[pipe_key] = max(pipes[pipe_key], float(cycle)) + occupancy
            pipe_busy_total[pipe_key[0]] += occupancy

        if dec.write_bar != NO_BARRIER:
            release = write_bar_release
            if release is None:
                release = cycle + ALU_LATENCY
            warp.scoreboards[dec.write_bar] = max(
                warp.scoreboards[dec.write_bar], release
            )
        if dec.read_bar != NO_BARRIER:
            # Sources are consumed shortly after issue.
            warp.scoreboards[dec.read_bar] = max(
                warp.scoreboards[dec.read_bar], cycle + 2
            )

        if eff.exited:
            warp.exited = True
            warp.flush_writes()
            self._maybe_release_barrier(cta_warps[warp.cta_slot], cycle)
            return
        if eff.branch_target is not None:
            warp.pc = eff.branch_target
        else:
            warp.pc += 1
        warp.next_issue = cycle + dec.issue_stall
        if eff.barrier:
            warp.at_barrier = True
            self._maybe_release_barrier(cta_warps[warp.cta_slot], cycle)

    def _defer_hmma_writes(self, warp, inst, eff, cycle) -> None:
        """Split the D write: first half at +10, second half at +14."""
        spec = self.spec
        for first_reg, values, mask in eff.reg_writes:
            n = values.shape[0]
            first = values[: (n + 1) // 2]
            second = values[(n + 1) // 2 :]
            warp.pending_tensor_writes.append(
                (cycle + spec.hmma_latency_first_half, first_reg, first, mask)
            )
            if second.shape[0]:
                warp.pending_tensor_writes.append(
                    (
                        cycle + spec.hmma_latency_second_half,
                        first_reg + first.shape[0],
                        second,
                        mask,
                    )
                )

    def _price_memory(self, dec, eff, cycle, memsys, mio):
        """Push one memory access through the MIO queue.

        Returns ``(occupancy, ready_cycle)``: the drain-port cycles the
        access consumes, and when its result (load data / store-complete)
        is architecturally visible.
        """
        txn = eff.transaction
        if txn is None:  # fully predicated-off access
            return 0.0, cycle + 1

        if dec.mem_shared:
            mult = conflict_multiplier(txn.addresses, txn.width_bytes, txn.mask)
            occupancy = dec.mem_cpi * mult
            done = mio.push(cycle, occupancy)
            if dec.mem_store:
                return occupancy, int(done) + 1
            return occupancy, int(done) + self.spec.lds_latency_cycles

        # Global: the LSU forwards the request to L1/L2/DRAM once the MIO
        # queue drains it.
        if dec.mem_store:
            occupancy = dec.mem_cpi
            done = mio.push(cycle, occupancy)
            memsys.access(int(done), txn.addresses, txn.width_bytes,
                          txn.mask, is_store=True, bypass_l1=txn.bypass_l1)
            return occupancy, int(done) + 1
        # Loads: peek the level first (L1-hit CPIs differ from L2, Table III).
        summary = memsys.access(cycle, txn.addresses, txn.width_bytes,
                                txn.mask, is_store=False,
                                bypass_l1=txn.bypass_l1)
        occupancy = dec.mem_cpi if summary.level == "l1" else dec.mem_cpi_l2
        done = mio.push(cycle, occupancy)
        ready = max(summary.ready_cycle, int(done) + 1)
        return occupancy, ready

    @staticmethod
    def _maybe_release_barrier(members, cycle) -> None:
        live = [w for w in members if not w.exited]
        if live and all(w.at_barrier for w in live):
            for w in live:
                w.at_barrier = False
                w.next_issue = max(w.next_issue, cycle + 1)

    # ------------------------------------------------------------ skipping

    def _next_event(self, warps, pipes, mio, cycle, decoded) -> int:
        candidates = []
        horizon = cycle + 1
        for w in warps:
            if w.exited or w.at_barrier:
                continue
            t = w.next_issue
            if t <= cycle:
                dec = decoded[w.pc]
                wait_mask = dec.wait_mask
                if wait_mask and not w.wait_satisfied(wait_mask, cycle):
                    t = w.next_wait_release(wait_mask)
                elif dec.is_memory and not mio.can_accept(cycle):
                    t = math.ceil(mio.next_slot_free(cycle))
                else:
                    # Earliest cycle c at which some busy pipe satisfies
                    # free < c + 1, i.e. c = floor(free_time).
                    t = min(
                        (math.floor(v) for v in pipes.values()
                         if v >= horizon),
                        default=horizon,
                    )
            candidates.append(t)
        return min(candidates, default=horizon)
