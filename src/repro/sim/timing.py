"""Cycle-level timing simulator of one Turing SM.

Models exactly the mechanisms the paper measures and then exploits:

* **4 warp schedulers** (one per processing block), each issuing at most one
  instruction per cycle from its resident warps (loose round-robin).
* **Pipes with occupancy**: each HMMA occupies its processing block's tensor
  pipe for ``hmma_cpi`` (8) cycles; every LDG/STG/LDS/STS occupies the
  single SM-wide memory-IO pipe for its CPI (Tables III/IV), scaled by the
  measured shared-memory **bank-conflict multiplier** of its actual lane
  addresses; ALU/FMA ops occupy their scheduler's dispatch path.
* **Fixed-latency results via stall counts**: HMMA writes the first half of
  D 10 cycles after issue and the second half 14 cycles after (Table I);
  ALU results land after ``ALU_LATENCY``.  Results are *deferred register
  writes* -- an under-stalled consumer reads the stale value, which is
  precisely how the paper probes latency ("varying the stall cycles and
  check if the output result is correct").
* **Variable latency via scoreboards**: loads release their write barrier
  when data arrives (L1/L2/DRAM service times from
  :class:`~repro.sim.memory.MemorySubsystem`); instructions waiting on a
  scoreboard do not issue until it clears.

The simulator is also a full functional interpreter (it uses the same
executors), so timing experiments can verify results, and correctness
experiments can read clocks.

Engines
-------

Two interchangeable engines drive the model (``REPRO_TIMING_ENGINE`` or the
``engine=`` constructor argument):

* ``reference`` -- the seed loop: every scheduler scan evaluates each warp
  against live state and every instruction runs through the generic
  :func:`~repro.sim.exec_units.execute` adapter.
* ``event`` (the default) -- same cycle-for-cycle semantics, restructured
  for speed: per-warp *block status* caches (stall / scoreboard / MIO /
  pipe) with release-cycle expiries let idle-cycle probes and fully-blocked
  scheduler scans reuse the scan's own conclusions instead of re-deriving
  them; instructions compile once per program into slot-specialised
  closures over live register rows (with per-slot address-pattern memos for
  shared memory); straight-line runs of independent MMA ops become *issue
  plans* whose math executes as one stacked batch kernel (per-issue
  latency/CPI bookkeeping unchanged); and the MIO queue retires by
  advancing a head index over a monotone completion list.

On top of the ``event`` engine sits **steady-state fast-forward**
(``REPRO_TIMING_FF``, default on): at every loop-boundary of the watch
warp the engine snapshots a cycle-rebased digest of all timing state,
detects when the digests repeat with period ``p <= 8``, records one full
period of issue events, proves it replayable (digest / cycle-delta /
scheduler-phase equality plus the symbolic deferred-write hazard walk in
:meth:`_FastForward._hazards_ok`), and then commits whole periods through
compiled per-event closures with analytic counter extrapolation -- rolling
back to exact simulation at the last boundary the moment any guard fails.
``sim.ff_periods`` / ``sim.ff_cycles`` count the committed periods and the
cycles they skipped.

The engines are **bit-identical** on every :class:`TimingResult` field and
on final memory/register state (pinned by
``tests/sim/test_timing_differential.py`` and the per-engine goldens in
``tests/sim/test_golden_cycles.py``), so the engine is deliberately *not*
part of the result-cache key and ``SIM_VERSION`` does not change with it.
"""

from __future__ import annotations

import math
import os
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..arch.registers import PredicateFile, RegisterFile, WARP_LANES
from ..arch.turing import GpuSpec
from ..isa.control import NO_BARRIER
from ..isa.instructions import Pipe
from ..isa.operands import RZ_INDEX
from ..isa.program import Program
from ..perf.stats import STATS
from ..robust import chaos
from ..robust import guard as _guard
from .exec_units import ExecError, execute
from .memory import GlobalMemory, MemorySubsystem
from .shared import SharedMemory, conflict_multiplier
from .uop import MMA_BATCH_KERNELS, decode_uop, k_iadd3, special_value

__all__ = ["TimingSimulator", "TimingResult", "ALU_LATENCY", "ENGINES"]

#: Cycles from issue to result for short ALU/FMA operations.
ALU_LATENCY = 5

#: Simulation fuel: cycles after which we declare the kernel hung.
DEFAULT_MAX_CYCLES = 30_000_000

#: Recognised timing engines, fastest first.
ENGINES = ("event", "reference")

_INF = float("inf")
_U32 = np.dtype(np.uint32)

# Shared all-lanes-on mask for the compiled (unpredicated-only) fast paths;
# read-only so no consumer can mutate it in place.
_FULL_MASK = np.ones(WARP_LANES, dtype=bool)
_FULL_MASK.setflags(write=False)


def _default_engine() -> str:
    """Engine named by ``REPRO_TIMING_ENGINE`` (default: ``event``)."""
    engine = os.environ.get("REPRO_TIMING_ENGINE", ENGINES[0])
    if engine not in ENGINES:
        raise ValueError(
            f"REPRO_TIMING_ENGINE must be one of {ENGINES}, got {engine!r}"
        )
    return engine


class _MioQueue:
    """The SM's memory-IO instruction queue.

    Warps deposit LDS/STS/LDG/STG here and continue issuing math; the queue
    drains serially at each instruction's CPI (so a long sequence measures
    exactly the Table III/IV CPIs, the paper's methodology).  Only when the
    queue is full does the issuing warp stall -- which is precisely how an
    under-spaced STS schedule (Fig. 4's "STS2") ends up starving the tensor
    pipes."""

    def __init__(self, depth: int):
        self.depth = depth
        self.drain_free = 0.0       # when the drain port frees up
        self._done = deque()        # completion times of queued entries

    def can_accept(self, cycle: int) -> bool:
        self._retire(cycle)
        return len(self._done) < self.depth

    def next_slot_free(self, cycle: int) -> float:
        """Earliest cycle a full queue opens a slot."""
        self._retire(cycle)
        if len(self._done) < self.depth:
            return cycle
        return self._done[0]

    def push(self, cycle: int, occupancy: float) -> float:
        """Enqueue one access; returns its drain-completion time."""
        start = max(self.drain_free, float(cycle))
        done = start + occupancy
        self.drain_free = done
        self._done.append(done)
        return done

    def _retire(self, cycle: int) -> None:
        done = self._done
        while done and done[0] <= cycle:
            done.popleft()


class _VecMioQueue:
    """Flat-list MIO queue used by the event engine.

    Completion times are monotonically non-decreasing (each entry drains
    after the previous one), so retirement just advances a head index; a
    cached Python-float head completion keeps the hot ``can_accept`` check
    free of any indexing.  API- and number-identical to :class:`_MioQueue`:
    ``push`` computes the same IEEE float sequence.
    """

    __slots__ = ("depth", "drain_free", "_done", "_head", "_head_done")

    def __init__(self, depth: int):
        self.depth = depth
        self.drain_free = 0.0
        self._done = []          # drain-completion times, nondecreasing
        self._head = 0
        self._head_done = _INF   # mirror of _done[_head] (inf when empty)

    def can_accept(self, cycle: int) -> bool:
        if self._head_done <= cycle:
            self._retire(cycle)
        return len(self._done) - self._head < self.depth

    def next_slot_free(self, cycle: int):
        if self._head_done <= cycle:
            self._retire(cycle)
        if len(self._done) - self._head < self.depth:
            return cycle
        return self._head_done

    def push(self, cycle: int, occupancy: float) -> float:
        start = self.drain_free
        if cycle > start:
            start = float(cycle)
        done = start + occupancy
        self.drain_free = done
        if self._head == len(self._done):
            self._head_done = done
        self._done.append(done)
        return done

    def _retire(self, cycle: int) -> None:
        done = self._done
        head = self._head
        n = len(done)
        while head < n and done[head] <= cycle:
            head += 1
        if head >= 512:
            del done[:head]
            head = 0
            n = len(done)
        self._head = head
        self._head_done = done[head] if head < n else _INF


class _TimedWarp:
    """Per-warp microarchitectural state."""

    __slots__ = (
        "warp_id", "cta_slot", "ctaid", "lane_ids", "tid", "regs", "preds",
        "global_mem", "shared_mem", "pc", "next_issue", "exited",
        "at_barrier", "scoreboards", "pending_writes",
        "pending_tensor_writes", "retired", "_clock_now",
        "wid", "min_due", "tensor_min_due", "plan_queue", "plan_qi",
    )

    def __init__(self, warp_id, cta_slot, ctaid, global_mem, shared_mem):
        self.warp_id = warp_id
        self.cta_slot = cta_slot
        self.ctaid = ctaid
        self.lane_ids = np.arange(WARP_LANES, dtype=np.uint32)
        local = warp_id * WARP_LANES + self.lane_ids
        self.tid = local.astype(np.uint32)
        self.regs = RegisterFile()
        self.preds = PredicateFile()
        self.global_mem = global_mem
        self.shared_mem = shared_mem
        self.pc = 0
        self.next_issue = 0
        self.exited = False
        self.at_barrier = False
        self.scoreboards = [0] * 6       # release cycle per barrier index
        self.pending_writes = []         # (apply_cycle, first_reg, values, mask)
        self.pending_tensor_writes = []  # same shape; forwardable inside the pipe
        self.retired = 0
        self._clock_now = 0
        self.wid = 0                     # index into the SM-wide warp list
        self.min_due = _INF              # earliest pending_writes apply cycle
        self.tensor_min_due = _INF       # earliest pending tensor apply cycle
        self.plan_queue = None           # queued (pc, values) from an MMA plan
        self.plan_qi = 0

    def clock(self) -> int:
        return self._clock_now

    def defer_write(self, due, first_reg, values, mask) -> None:
        self.pending_writes.append((due, first_reg, values, mask))
        if due < self.min_due:
            self.min_due = due

    def defer_tensor_write(self, due, first_reg, values, mask) -> None:
        self.pending_tensor_writes.append((due, first_reg, values, mask))
        if due < self.tensor_min_due:
            self.tensor_min_due = due

    def apply_due_writes(self, cycle: int) -> None:
        if self.min_due <= cycle:
            self.pending_writes, self.min_due = self._drain_due(
                self.pending_writes, cycle
            )
        if self.tensor_min_due <= cycle:
            self.pending_tensor_writes, self.tensor_min_due = self._drain_due(
                self.pending_tensor_writes, cycle
            )

    def _drain_due(self, queue: list, cycle: int):
        remaining = []
        nxt = _INF
        data = self.regs._data
        write_group = self.regs.write_group
        for item in queue:
            due = item[0]
            if due <= cycle:
                _, first_reg, values, mask = item
                if mask is None and values.dtype == _U32:
                    # Deferred values are pre-shaped (n, lanes) uint32;
                    # skip the write_group asarray/bounds ceremony.
                    data[first_reg:first_reg + values.shape[0]] = values
                else:
                    write_group(
                        first_reg, values,
                        mask=None if mask is None or mask.all() else mask,
                    )
            else:
                remaining.append(item)
                if due < nxt:
                    nxt = due
        return remaining, nxt

    def forward_tensor_writes(self) -> None:
        """Apply not-yet-due tensor results early (intra-pipe forwarding):
        back-to-back accumulating HMMAs see each other's results at the
        8-cycle issue interval even though non-tensor consumers must wait
        the architectural 10/14 cycles."""
        self.pending_tensor_writes.sort(key=lambda item: item[0])
        for _, first_reg, values, mask in self.pending_tensor_writes:
            self.regs.write_group(
                first_reg, values,
                mask=None if mask is None or mask.all() else mask,
            )
        self.pending_tensor_writes = []
        self.tensor_min_due = _INF

    def flush_writes(self) -> None:
        combined = self.pending_writes + self.pending_tensor_writes
        combined.sort(key=lambda item: item[0])
        for _, first_reg, values, mask in combined:
            self.regs.write_group(
                first_reg, values,
                mask=None if mask is None or mask.all() else mask,
            )
        self.pending_writes = []
        self.pending_tensor_writes = []
        self.min_due = _INF
        self.tensor_min_due = _INF

    def wait_satisfied(self, wait_mask: int, cycle: int) -> bool:
        if not wait_mask:
            return True
        for b in range(6):
            if wait_mask & (1 << b) and self.scoreboards[b] > cycle:
                return False
        return True

    def next_wait_release(self, wait_mask: int) -> int:
        return max(
            (self.scoreboards[b] for b in range(6) if wait_mask & (1 << b)),
            default=0,
        )


class _DecodedInst:
    """Static per-instruction facts, predecoded once per :meth:`run`.

    The issue loop runs once per scheduler per simulated cycle; chasing
    ``inst.info.is_memory`` / ``inst.ctrl.wait_mask`` attribute chains and
    re-deriving memory CPIs there dominated simulation time.  Everything
    that does not depend on dynamic state is flattened here.
    """

    __slots__ = (
        "inst", "opcode", "pipe_class", "is_memory", "is_mma", "is_tensor",
        "occupancy", "issue_stall", "wait_mask", "write_bar", "read_bar",
        "mem_shared", "mem_store", "mem_cpi", "mem_cpi_l2",
    )

    def __init__(self, inst, spec: GpuSpec):
        info = inst.info
        ctrl = inst.ctrl
        self.inst = inst
        self.opcode = inst.opcode
        self.is_memory = info.is_memory
        self.is_mma = info.warp_wide
        self.is_tensor = info.pipe == Pipe.TENSOR
        self.wait_mask = ctrl.wait_mask
        self.write_bar = ctrl.write_bar
        self.read_bar = ctrl.read_bar
        self.issue_stall = max(1, ctrl.stall)

        # Execution-pipe class for the issue-port busy check (memory ops
        # go through the MIO queue instead; branches/barriers need none).
        if info.is_memory or info.pipe in (Pipe.BRANCH, Pipe.BARRIER):
            self.pipe_class = None
        else:
            self.pipe_class = info.pipe

        # Issue-port occupancy of non-memory instructions.
        if inst.opcode == "HMMA":
            self.occupancy = spec.hmma_cpi
        elif inst.opcode == "IMMA":
            self.occupancy = spec.imma_cpi
        elif info.pipe == Pipe.ALU:
            self.occupancy = spec.alu_cpi
        elif info.pipe == Pipe.FMA:
            self.occupancy = spec.fma_cpi
        else:
            self.occupancy = 0.0

        # MIO drain-port CPIs (Tables III/IV); for LDG, ``mem_cpi`` holds
        # the L1-hit table and ``mem_cpi_l2`` the L2/DRAM table.
        self.mem_shared = False
        self.mem_store = False
        self.mem_cpi = 0.0
        self.mem_cpi_l2 = 0.0
        if info.is_memory:
            width = inst.width
            self.mem_store = info.is_store
            if inst.opcode in ("LDS", "STS"):
                self.mem_shared = True
                table = spec.sts_cpi if info.is_store else spec.lds_cpi
                self.mem_cpi = table.cpi(width)
            elif inst.opcode == "STG":
                self.mem_cpi = spec.stg_cpi.cpi(width)
            else:  # LDG
                self.mem_cpi = spec.ldg_l1_cpi.cpi(width)
                self.mem_cpi_l2 = spec.ldg_l2_cpi.cpi(width)


@dataclass
class TimingResult:
    """Outcome of one timed SM run."""

    cycles: int
    instructions: int
    opcode_counts: dict
    pipe_busy: dict            # pipe name -> total busy cycles (all units)
    issue_stall_reasons: dict  # reason -> cycles summed over warps
    traffic: "object"          # MemorySubsystem counters
    num_schedulers: int = 4

    def cpi_of(self, opcode: str) -> float:
        count = self.opcode_counts.get(opcode, 0)
        if count == 0:
            raise ValueError(f"no {opcode} instructions were executed")
        return self.cycles / count

    def pipe_utilization(self, pipe: str) -> float:
        """Busy fraction of the named pipe class over the whole run.

        ``tensor`` / ``alu`` / ``fma`` have one unit per scheduler, so
        their busy cycles are normalised by ``cycles * num_schedulers``;
        ``lsu`` has a single SM-wide drain port and is normalised by
        ``cycles`` alone.  A pipe with no recorded busy time -- including
        names this run never touched -- reports 0.0 rather than raising.
        """
        units = 1 if pipe == "lsu" else self.num_schedulers
        return self.pipe_busy.get(pipe, 0) / max(1, self.cycles * units)


# --------------------------------------------------------------------------
# Event-engine compilation: one closure per program slot, specialised from
# the µop descriptors.  Only unpredicated instructions with fully static
# operand plumbing compile; everything else (predication, decode failures,
# control flow, RZ-group corner cases) falls back to the generic
# `exec_units.execute` adapter so error behaviour matches the reference
# engine exactly.

_K_GENERIC, _K_ALU, _K_PRED, _K_LOAD, _K_STORE, _K_MMA = range(6)

_Z32 = np.zeros(WARP_LANES, dtype=np.uint32)
_Z32.setflags(write=False)
_Z32_I32 = _Z32.view(np.int32)


def _t_reader(desc):
    """Compile one source descriptor to ``reader(warp) -> array``.

    Readers may return live register-file rows: every lane kernel is pure
    and every deferred value is either a fresh kernel output or explicitly
    copied (see `_compile_alu`), so nothing aliases mutable state.
    """
    kind = desc[0]
    if kind == "reg":
        i = desc[1]
        if i == RZ_INDEX:
            return lambda w: _Z32
        return lambda w: w.regs._data[i]
    if kind == "reg_i32":
        i = desc[1]
        if i == RZ_INDEX:
            return lambda w: _Z32_I32
        return lambda w: w.regs._data[i].view(np.int32)
    if kind == "regs":
        i, n = desc[1], desc[2]
        if i == RZ_INDEX or i + n > RZ_INDEX:
            raise ExecError("register group touches RZ")  # generic fallback
        return lambda w: w.regs._data[i:i + n]
    if kind == "imm":
        buf = np.full(WARP_LANES, desc[1], dtype=np.uint32)
        buf.setflags(write=False)
        return lambda w: buf
    if kind == "imm_i32":
        buf = np.full(WARP_LANES, desc[1], dtype=np.uint32).view(np.int32)
        buf.setflags(write=False)
        return lambda w: buf
    if kind == "pred":
        i, neg = desc[1], desc[2]
        if neg:
            return lambda w: ~w.preds._data[i]
        return lambda w: w.preds._data[i]
    name = desc[1]
    if kind == "sr_i32":
        return lambda w: special_value(w, name).view(np.int32)
    return lambda w: special_value(w, name)


def _compile_alu(kernel, readers):
    """Closure computing one ALU/MMA µop's lane math for a warp.

    Kernel-less µops (the MOV family) and single-term IADD3 return their
    input unchanged, so those copy: the result is deferred and must not
    alias a live register row.  Every real kernel produces a fresh array.
    """
    n = len(readers)
    if kernel is None or (kernel is k_iadd3 and n == 1):
        if n != 1:
            return None
        r0, = readers
        return lambda w: r0(w).copy()
    if n == 1:
        r0, = readers
        return lambda w: kernel(r0(w))
    if n == 2:
        r0, r1 = readers
        return lambda w: kernel(r0(w), r1(w))
    if n == 3:
        r0, r1, r2 = readers
        return lambda w: kernel(r0(w), r1(w), r2(w))
    return None


#: Per-slot memo capacity for address-pattern caches.  A GEMM inner loop
#: revisits a handful of patterns (double-buffered LDS offsets); the cap only
#: guards against degenerate programs with unbounded distinct patterns.
_ADDR_CACHE_CAP = 4096


def _load_fn(mem):
    """Closure returning ``(addresses, data, conflict)`` for an unpredicated
    load; ``conflict`` is the shared-bank multiplier (``None`` for global).

    The pure per-pattern work -- alignment/bounds validation, word-index
    construction, bank-conflict degree -- is memoised per address pattern, so
    the double-buffered LDS patterns a k-loop cycles through skip straight to
    the gather.  Misaligned/out-of-range patterns raise before caching, with
    the same exception the uncompiled path produces.
    """
    base, off, width = mem.base_index, mem.offset, mem.width
    if mem.space != "shared":
        # Global addresses advance every loop iteration, so a pattern memo
        # never hits -- validate and gather directly.
        def fn(w):
            if base == RZ_INDEX:
                addrs = np.full(WARP_LANES, off, dtype=np.int64)
            else:
                addrs = w.regs._data[base].astype(np.int64)
                addrs += off
            memory = w.global_mem
            idx = memory._word_indices(addrs, width, None)
            return addrs, memory._words[idx], None

        return fn

    cache = {}

    def fn(w):
        if base == RZ_INDEX:
            addrs = np.full(WARP_LANES, off, dtype=np.int64)
        else:
            addrs = w.regs._data[base].astype(np.int64)
            addrs += off
        memory = w.shared_mem
        key = addrs.tobytes()
        ent = cache.get(key)
        if ent is None:
            idx = memory._word_indices(addrs, width, None)
            mult = conflict_multiplier(addrs, width, None)
            if len(cache) >= _ADDR_CACHE_CAP:
                cache.clear()
            cache[key] = ent = (idx, mult)
        idx, mult = ent
        return addrs, memory._words[idx], mult

    return fn


def _store_fn(mem):
    """Closure performing an unpredicated store; returns ``(addresses,
    conflict)`` with the same per-pattern memoisation as :func:`_load_fn`."""
    base, off, width = mem.base_index, mem.offset, mem.width
    reg, words = mem.reg, mem.words
    if mem.space != "shared":
        def fn(w):
            if base == RZ_INDEX:
                addrs = np.full(WARP_LANES, off, dtype=np.int64)
            else:
                addrs = w.regs._data[base].astype(np.int64)
                addrs += off
            memory = w.global_mem
            idx = memory._word_indices(addrs, width, None)
            memory._words[idx] = w.regs._data[reg:reg + words]
            return addrs, None

        return fn

    cache = {}

    def fn(w):
        if base == RZ_INDEX:
            addrs = np.full(WARP_LANES, off, dtype=np.int64)
        else:
            addrs = w.regs._data[base].astype(np.int64)
            addrs += off
        memory = w.shared_mem
        key = addrs.tobytes()
        ent = cache.get(key)
        if ent is None:
            idx = memory._word_indices(addrs, width, None)
            mult = conflict_multiplier(addrs, width, None)
            if len(cache) >= _ADDR_CACHE_CAP:
                cache.clear()
            cache[key] = ent = (idx, mult)
        idx, mult = ent
        memory._words[idx] = w.regs._data[reg:reg + words]
        return addrs, mult

    return fn


def _compile_slot(dec):
    """Compile one `_DecodedInst` to ``(kind, fn, aux)``."""
    inst = dec.inst
    if inst.pred is not None:
        return _K_GENERIC, None, None
    try:
        u = decode_uop(inst)
    except ExecError:
        return _K_GENERIC, None, None
    if u.kind == "alu":
        try:
            readers = tuple(_t_reader(d) for d in u.srcs)
        except ExecError:
            return _K_GENERIC, None, None
        fn = _compile_alu(u.kernel, readers)
        if fn is None:
            return _K_GENERIC, None, None
        if u.dest[0] == "pred":
            return _K_PRED, fn, u.dest[1]
        if dec.is_mma:
            return _K_MMA, fn, u.dest[1]
        return _K_ALU, fn, u.dest[1]
    if u.kind == "load":
        m = u.mem
        return _K_LOAD, _load_fn(m), (u.dest[1], m.width, m.bypass_l1)
    if u.kind == "store":
        m = u.mem
        if m.reg == RZ_INDEX or m.reg + m.words > RZ_INDEX:
            return _K_GENERIC, None, None  # read_group raises in reference
        return _K_STORE, _store_fn(m), m.width
    return _K_GENERIC, None, None  # nop / control flow / unknown


#: Issue-plan window limits: max program slots spanned / max batched members.
_PLAN_SPAN = 96
_PLAN_MEMBERS = 32


class _Plan:
    """A static window of independent same-shape MMA ops batched as one
    kernel call at the head's issue; tail members consume queued rows."""

    __slots__ = ("members", "tail", "a_idx", "b_idx", "c_idx", "fn",
                 "read_mask", "read_lo", "read_hi")


def _build_plans(decoded, kinds):
    """Find batchable MMA windows.

    A window grows from an unpredicated batchable MMA head over straight
    line code (any control-flow µop ends it).  A later MMA joins as a
    *member* iff it has the same fuse key, no scoreboard wait, and reads
    nothing written earlier in the window (so its operands at its own issue
    equal its operands at the head's issue -- the gather moment).  All
    other slots are *interleaved*: their writes join the window write set
    but they execute normally between members.
    """
    n = len(decoded)
    plans = {}
    consumed = [False] * n
    for pc in range(n):
        if consumed[pc] or kinds[pc] != _K_MMA:
            continue
        head = decode_uop(decoded[pc].inst)
        entry = MMA_BATCH_KERNELS.get(head.fuse_key)
        if entry is None or not head.groups_ok or head.fuse_payload is None:
            continue
        batch_fn, a_words, b_words, c_words = entry
        members = [pc]
        payloads = [head.fuse_payload]
        window_writes = set(head.writes)
        member_reads = set(head.reads)
        j = pc + 1
        while j < n and j - pc < _PLAN_SPAN and len(members) < _PLAN_MEMBERS:
            try:
                uj = decode_uop(decoded[j].inst)
            except ExecError:
                break
            if uj.kind in ("bra", "exit", "bar"):
                break
            if (kinds[j] == _K_MMA and uj.fuse_key == head.fuse_key
                    and uj.groups_ok and uj.fuse_payload is not None
                    and decoded[j].wait_mask == 0
                    and not (uj.reads & window_writes)):
                members.append(j)
                payloads.append(uj.fuse_payload)
                member_reads |= uj.reads
            window_writes |= uj.writes
            j += 1
        if len(members) < 2:
            continue
        # fuse_payload is (d, a, b, c); gather index arrays over reg rows.
        def _rows(col, words):
            base = np.array([p[col] for p in payloads], dtype=np.intp)
            if words == 1:
                return base
            return base[:, None] + np.arange(words, dtype=np.intp)

        a_idx = _rows(1, a_words)
        b_idx = _rows(2, b_words)
        c_idx = _rows(3, c_words)
        read_regs = sorted(r for r in member_reads if isinstance(r, int))
        read_mask = np.zeros(256, dtype=bool)
        read_mask[read_regs] = True
        plan = _Plan()
        plan.members = tuple(members)
        plan.tail = tuple(members[1:])
        plan.a_idx = a_idx
        plan.b_idx = b_idx
        plan.c_idx = c_idx
        plan.fn = batch_fn
        plan.read_mask = read_mask
        plan.read_lo = read_regs[0]
        plan.read_hi = read_regs[-1] + 1
        plans[pc] = plan
        for m in members:
            consumed[m] = True
    return plans


def _plan_clear(warp, plan) -> bool:
    """May this plan batch *now*?  Only if no in-flight deferred write
    targets a register any member reads: operands are gathered at the head
    but consumed over later cycles, so a write landing mid-window to a
    member-read register would make the batch read stale state."""
    lo = plan.read_lo
    hi = plan.read_hi
    read_mask = plan.read_mask
    for item in warp.pending_writes:
        first = item[1]
        count = item[2].shape[0]
        if first < hi and first + count > lo \
                and read_mask[first:first + count].any():
            return False
    return True


def _compile_event(decoded):
    """Compile a predecoded program for the event engine."""
    kinds = []
    fns = []
    aux = []
    for dec in decoded:
        k, f, a = _compile_slot(dec)
        kinds.append(k)
        fns.append(f)
        aux.append(a)
    return kinds, fns, aux, _build_plans(decoded, kinds)


def _ff_enabled() -> bool:
    """Steady-state fast-forward gate (``REPRO_TIMING_FF``, default on).

    The divergence watchdog's first timing degradation rung forces it off
    process-wide (see :mod:`repro.robust.guard`)."""
    if not _guard.ff_allowed():
        return False
    return os.environ.get("REPRO_TIMING_FF", "1").lower() not in (
        "0", "off", "no", "false")


class _FastForward:
    """Steady-state fast-forward for the event engine.

    A kernel's inner loop makes the simulator trace the same schedule over
    and over.  This controller detects that steady state, replays one
    *recorded* iteration's event schedule directly (no scheduler scans, no
    deferred-write queues, no scoreboard bookkeeping), and accounts the
    skipped work analytically -- while keeping every architecturally
    visible quantity bit-identical to the plain engine.

    **Boundaries** are cycle-aligned: the first main-loop top after the
    watch warp (the first warp seen taking a backward BRA) takes that
    branch.  At each boundary a *relative snapshot* is built -- per-warp
    pc / barrier flag / next-issue and scoreboard releases relative to the
    boundary cycle (stale values clamped, they are behaviourally
    equivalent), pending-write queue shapes, MMA-plan queue positions, plus
    round-robin pointers, pipe/MIO/DRAM free-times relative to the cycle,
    and the cycle's scheduler-rotation phase (issue order depends on
    ``cycle % n_sched``, so a period must preserve it).  Two consecutive
    boundary intervals with identical snapshots, identical cycle deltas and
    identical stall/issue-counter deltas trigger **recording** of one full
    iteration; if the next boundary confirms the period, replay starts.

    **Replay** executes the recorded schedule as compiled closures: lane
    math, shared/global stores, MMA plan batching, MIO pushes, memory-
    subsystem accesses and pipe busy-time all run for real (floats evolve
    through the exact same operations), while register results apply
    immediately -- sound because an offline hazard walk over the recorded
    trace proved no event reads or overwrites a register while a deferred
    write to it would still be in flight.  Writes whose due-cycle crosses
    the iteration boundary are tracked as *survivors* so the pending queues
    can be reconstructed exactly on exit.  Every dynamic issue precondition
    is guarded per event (pipe free, MIO acceptance, memory service level
    and ready-cycle, branch direction); any mismatch rolls the current
    iteration back -- register/shared snapshots, a global-store undo log
    and the memory subsystem's LRU journal make that bit-exact -- and
    resumes the plain engine at the last committed boundary.  The loop's
    final, schedule-divergent iteration exits through exactly that path,
    so at most one iteration is ever re-simulated.

    Stall counters, per-opcode issue counts and retire counts advance by
    the verified per-iteration deltas; CS2R clock reads inside the replay
    compute from the analytic cycle, so clock witnesses stay exact.
    """

    def __init__(self, sim, warps, cta_warps, decoded, kinds, fns, aux,
                 plans, pipes, pipe_keys, mio, memsys, pipe_busy_total,
                 opcode_counts, rr, st_code, st_expiry, sched_sum, plan_stats,
                 n_sched, max_cycles):
        self.sim = sim
        self.warps = warps
        self.decoded = decoded
        self.kinds = kinds
        self.fns = fns
        self.aux = aux
        self.plans = plans
        self.pipes = pipes
        self.pipe_keys = pipe_keys
        self.mio = mio
        self.memsys = memsys
        self.pipe_busy_total = pipe_busy_total
        self.opcode_counts = opcode_counts
        self.rr = rr
        self.st_code = st_code
        self.st_expiry = st_expiry
        self.sched_sum = sched_sum
        self.plan_stats = plan_stats
        self.n_sched = n_sched
        self.max_cycles = max_cycles
        self.shared_mems = list(
            {id(w.shared_mem): w.shared_mem for w in warps}.values())

        self.watch_wid = None
        self.recording = False
        self.disabled = False
        self.periods = 0          # committed fast-forwarded iterations
        self.cycles_skipped = 0
        self._max_period = 8      # longest orbit searched, in boundaries
        self._hist = []           # (cycle, snap, stats) of recent boundaries
        self._trace = None
        self._trace_bad = False
        self._rec_base = 0
        self._rec_left = 0
        self._rec_snap = None
        self._rec_stats = None
        self._period_delta = 0
        self._period_sdelta = None
        self._fail_streak = 0
        self.surv = []            # (warp, tensor?, due, first, values, mask, old)
        self.gundo = []           # (words, idx, old) global-store undo log
        self._evs = None

    # ------------------------------------------------------------- detection

    def _snapshot(self, cycle):
        """Relative state fingerprint at a boundary.

        Values at or below ``cycle`` are clamped to sentinels: a stale
        next-issue / scoreboard / pipe-free time influences nothing once it
        has passed, so clamping keeps steady loops recognisable even when
        such leftovers carry unrelated absolute cycles.
        """
        c = cycle
        mio = self.mio
        mio._retire(c)
        memsys = self.memsys
        parts = [
            c % self.n_sched,
            tuple(self.rr),
            tuple(v - c if v > c else -1.0 for v in self.pipes.values()),
            mio.drain_free - c if mio.drain_free > c else -1.0,
            tuple(d - c for d in mio._done[mio._head:]),
            memsys._l2_free - c if memsys._l2_free > c else -1.0,
            memsys._dram_free - c if memsys._dram_free > c else -1.0,
        ]
        for w in self.warps:
            if w.exited:
                parts.append(("x",))
                continue
            parts.append((
                w.pc,
                w.at_barrier,
                w.next_issue - c if w.next_issue > c else -1,
                tuple(sb - c if sb > c else -1 for sb in w.scoreboards),
                tuple((d - c, f, v.shape[0], m is None)
                      for d, f, v, m in w.pending_writes),
                tuple((d - c, f, v.shape[0], m is None)
                      for d, f, v, m in w.pending_tensor_writes),
                None if w.plan_queue is None
                else tuple(p for p, _ in w.plan_queue[w.plan_qi:]),
            ))
        return tuple(parts)

    def _stats(self, n_stall, n_score, n_pipe, retired):
        return (n_stall, n_score, n_pipe, retired, dict(self.opcode_counts),
                tuple(w.retired for w in self.warps))

    @staticmethod
    def _stats_delta(cur, prev):
        opc = {}
        for k, v in cur[4].items():
            d = v - prev[4].get(k, 0)
            if d:
                opc[k] = d
        return (cur[0] - prev[0], cur[1] - prev[1], cur[2] - prev[2],
                cur[3] - prev[3], opc,
                tuple(a - b for a, b in zip(cur[5], prev[5])))

    def _note_failure(self):
        self._fail_streak += 1
        if self._fail_streak >= 6:
            self.disabled = True

    def at_boundary(self, cycle, n_stall, n_score, n_pipe, retired):
        """Called at the first main-loop top after a watch-warp backward
        branch.  Returns ``None`` to continue normally, or the replay
        outcome ``(new_cycle, d_stall, d_score, d_pipe, d_retired)``.

        An orbit may span several boundaries (multi-buffered loops and
        cache-state cycles repeat every few iterations), so detection looks
        for a snapshot equal to one seen ``p`` boundaries ago for the
        smallest ``p <= _max_period``; recording then spans ``p`` boundary
        intervals, and the verify at the recording's end enforces a third
        snapshot match plus cycle-delta and stats-delta equality before any
        replay happens.
        """
        if self.disabled:
            return None
        snap = self._snapshot(cycle)
        stats = self._stats(n_stall, n_score, n_pipe, retired)
        if self.recording:
            self._rec_left -= 1
            if self._rec_left > 0:
                self._hist.append((cycle, snap, stats))
                del self._hist[:-self._max_period]
                return None
            trace = self._trace
            self._trace = None
            self.recording = False
            delta = cycle - self._rec_base
            sdelta = self._stats_delta(stats, self._rec_stats)
            if (snap == self._rec_snap and delta == self._period_delta
                    and sdelta == self._period_sdelta
                    and not self._trace_bad
                    and self._compile(trace, snap, delta)):
                del self._hist[:]
                return self._replay(cycle)
            self._note_failure()
        else:
            hist = self._hist
            n = len(hist)
            for p in range(1, n + 1):
                prev_c, prev_snap, prev_stats = hist[n - p]
                if prev_snap == snap:
                    self.recording = True
                    self._trace = []
                    self._trace_bad = False
                    self._rec_base = cycle
                    self._rec_left = p
                    self._rec_snap = snap
                    self._rec_stats = stats
                    self._period_delta = cycle - prev_c
                    self._period_sdelta = self._stats_delta(stats, prev_stats)
                    break
        self._hist.append((cycle, snap, stats))
        del self._hist[:-self._max_period]
        return None

    def record(self, warp, pc, dec, kindc, cycle):
        """Trace one issued event (post-issue) during the recording pass."""
        if warp.exited or (kindc == 0 and dec.is_mma):
            # An exit ends the steady state; a generic (predicated) MMA
            # would need deferred-half semantics the replay does not model.
            self._trace_bad = True
            return
        sim = self.sim
        rel = sim._last_release
        self._trace.append((
            warp, pc, dec, kindc, cycle - self._rec_base, warp.pc,
            None if rel is None else rel - cycle,
            sim._last_level if dec.is_memory else None,
            sim._last_mask_full if dec.is_memory else None,
        ))

    # ----------------------------------------------------------- compilation

    def _hazards_ok(self, trace, delta):
        """Offline proof that immediate register apply is equivalent.

        Walks the recorded schedule twice (one period and its successor,
        seeded with the boundary's pending-queue shapes) maintaining
        symbolic per-warp deferred-write queues, and refuses fast-forward
        if any event reads or writes a register while an earlier deferred
        write to it is still in flight.  Register targets and due offsets
        are static per slot (memory dues are pinned by the per-event ready
        guards), so one verified walk covers every replayed iteration.
        """
        spec = self.sim.spec
        h2 = spec.hmma_latency_second_half
        info = []
        for (warp, pc, dec, kindc, crel, post_pc, rel, level,
             mask_full) in trace:
            op = dec.opcode
            if op in ("BRA", "BAR", "NOP"):
                info.append((warp, crel, kindc, frozenset(), frozenset(), ()))
                continue
            try:
                u = decode_uop(dec.inst)
            except ExecError:
                info.append((warp, crel, kindc, None, None, ()))
                continue
            reads = frozenset(r for r in u.reads if isinstance(r, int))
            writes = frozenset(r for r in u.writes if isinstance(r, int))
            if kindc == _K_MMA:
                defers = ((crel + h2, writes, True),)
            elif dec.is_memory:
                if dec.mem_store or rel is None:
                    defers = ()
                else:
                    defers = ((crel + rel, writes, False),)
            elif kindc == _K_PRED:
                defers = ()
            else:
                defers = ((crel + ALU_LATENCY, writes, False),)
            info.append((warp, crel, kindc, reads, writes, defers))

        # Seed with the entry boundary's in-flight writes, relative to the
        # replay entry cycle (= recording base + one period).
        entry = self._rec_base + delta
        queues = {id(w): [] for w in self.warps}
        tqueues = {id(w): [] for w in self.warps}
        for w in self.warps:
            if w.exited:
                continue
            for d, f, v, m in w.pending_writes:
                queues[id(w)].append((d - entry,
                                      frozenset(range(f, f + v.shape[0]))))
            for d, f, v, m in w.pending_tensor_writes:
                tqueues[id(w)].append((d - entry,
                                       frozenset(range(f, f + v.shape[0]))))
        for off in (0, delta):
            for warp, crel, kindc, reads, writes, defers in info:
                c = crel + off
                q = queues[id(warp)]
                tq = tqueues[id(warp)]
                if q:
                    q[:] = [e for e in q if e[0] > c]
                if kindc == _K_MMA:
                    del tq[:]
                elif tq:
                    tq[:] = [e for e in tq if e[0] > c]
                if reads is None:  # opaque generic op: be strict
                    if q or tq:
                        return False
                    continue
                for _, regs in q:
                    if not (reads.isdisjoint(regs) and writes.isdisjoint(regs)):
                        return False
                for _, regs in tq:
                    if not (reads.isdisjoint(regs) and writes.isdisjoint(regs)):
                        return False
                for due, regs, tensor in defers:
                    (tq if tensor else q).append((due + off, regs))
        return True

    def _compile(self, trace, snap, delta):
        """Build one replay closure per recorded event.  Returns False when
        the trace cannot be replayed soundly (hazard walk refusal)."""
        if not trace or not self._hazards_ok(trace, delta):
            return False
        sim = self.sim
        spec = sim.spec
        pipes = self.pipes
        mio = self.mio
        memsys = self.memsys
        pbt = self.pipe_busy_total
        plans = self.plans
        plan_stats = self.plan_stats
        surv = self.surv
        gundo = self.gundo
        lds_lat = spec.lds_latency_cycles
        h1 = spec.hmma_latency_first_half
        h2 = spec.hmma_latency_second_half

        # Shared builders for load/store events.  ``pidx`` guards a
        # predicated (generic-path) access: the recorded iteration ran with
        # a fully-active mask, so replay just verifies the predicate is
        # still fully active and then reuses the unpredicated fast path.
        def mk_load(warp, fn, dest, nw, crel, rel, shared, cpi, cpi_l2,
                    width, bypass, level, stash, pidx, pneg):
            rows = warp.regs._data
            pdata = warp.preds._data

            def ev(base):
                if pidx is not None:
                    pd = pdata[pidx]
                    if pd.any() if pneg else not pd.all():
                        return True
                c = base + crel
                if not mio.can_accept(c):
                    return True
                addrs, data, mult = fn(warp)
                if shared:
                    occ = cpi * mult
                    done = mio.push(c, occ)
                    ready = int(done) + lds_lat
                else:
                    summary = memsys.access(c, addrs, width, _FULL_MASK,
                                            is_store=False, bypass_l1=bypass)
                    if summary.level != level:
                        return True
                    occ = cpi if level == "l1" else cpi_l2
                    done = mio.push(c, occ)
                    r2 = int(done) + 1
                    ready = summary.ready_cycle \
                        if summary.ready_cycle > r2 else r2
                if ready - c != rel:
                    return True
                pbt["lsu"] += occ
                if stash:
                    surv.append((warp, 0, ready, dest, data, None,
                                 rows[dest:dest + nw].copy()))
                rows[dest:dest + nw] = data
                return False

            return ev

        def mk_store(warp, fn, crel, rel, shared, cpi, width, sbase, soff,
                     pidx, pneg):
            rows = warp.regs._data
            pdata = warp.preds._data

            def ev(base):
                if pidx is not None:
                    pd = pdata[pidx]
                    if pd.any() if pneg else not pd.all():
                        return True
                c = base + crel
                if not mio.can_accept(c):
                    return True
                if shared:
                    addrs, mult = fn(warp)
                    occ = cpi * mult
                    done = mio.push(c, occ)
                else:
                    # Shared segments are restored wholesale on abort;
                    # global words need an explicit undo entry, captured
                    # before the store closure scatters into memory.
                    if sbase == RZ_INDEX:
                        addrs0 = np.full(WARP_LANES, soff, dtype=np.int64)
                    else:
                        addrs0 = rows[sbase].astype(np.int64)
                        addrs0 += soff
                    gm = warp.global_mem
                    idx = gm._word_indices(addrs0, width, None)
                    gundo.append((gm._words, idx, gm._words[idx].copy()))
                    addrs, mult = fn(warp)
                    occ = cpi
                    done = mio.push(c, occ)
                    memsys.access(int(done), addrs, width, _FULL_MASK,
                                  is_store=True, bypass_l1=False)
                if int(done) + 1 - c != rel:
                    return True
                pbt["lsu"] += occ
                return False

            return ev

        evs = []
        # MMA plan-queue evolution is static over a verified trace: heads
        # compute a batch into a shared cell, tails index it, and the queue
        # itself never needs materializing -- provided every warp enters
        # and leaves the unit with an empty queue (refused otherwise, and
        # warps that enter mid-group fall back to the dynamic closure).
        mma_dyn = {id(w) for w in self.warps if w.plan_queue is not None}
        mma_state = {}
        for (warp, pc, dec, kindc, crel, post_pc, rel, level,
             mask_full) in trace:
            rows = warp.regs._data
            pk = None
            if dec.pipe_class is not None:
                pk = self.pipe_keys[dec.pipe_class][warp.wid % self.n_sched]
            fn = self.fns[pc]
            auxv = self.aux[pc]

            if kindc == _K_ALU:
                stash = crel + ALU_LATENCY > delta
                occ = dec.occupancy

                def ev(base, warp=warp, rows=rows, fn=fn, dest=auxv,
                       crel=crel, occ=occ, pk=pk, cls=dec.pipe_class,
                       stash=stash):
                    c = base + crel
                    if occ:
                        v = pipes[pk]
                        if v >= c + 1:
                            return True
                        pipes[pk] = (v if v > c else float(c)) + occ
                        pbt[cls] += occ
                    out = fn(warp)
                    if stash:
                        surv.append((warp, 0, c + ALU_LATENCY, dest,
                                     out[None, :], None, rows[dest].copy()[None, :]))
                    if out.dtype == _U32:
                        rows[dest] = out
                    else:
                        warp.regs.write_group(dest, out[None, :], mask=None)
                    return False

            elif kindc == _K_PRED:
                occ = dec.occupancy

                def ev(base, warp=warp, fn=fn, dest=auxv, crel=crel,
                       occ=occ, pk=pk, cls=dec.pipe_class):
                    c = base + crel
                    if occ:
                        v = pipes[pk]
                        if v >= c + 1:
                            return True
                        pipes[pk] = (v if v > c else float(c)) + occ
                        pbt[cls] += occ
                    warp.preds.write(dest, fn(warp), mask=None)
                    return False

            elif kindc == _K_MMA:
                stash1 = crel + h1 > delta
                stash2 = crel + h2 > delta
                occ = dec.occupancy
                plan = plans.get(pc)

                if id(warp) not in mma_dyn:
                    st = mma_state.setdefault(id(warp), [None, 0, None])
                    tailpcs, qi, cell = st
                    if tailpcs is not None and tailpcs[qi] == pc:
                        # Tail member: read slot qi+1 of the head's batch.
                        idx = qi + 1
                        st[1] = qi + 1
                        if st[1] == len(tailpcs):
                            st[0] = None
                            st[1] = 0
                        if stash1 or stash2:

                            def ev(base, warp=warp, rows=rows, dest=auxv,
                                   crel=crel, occ=occ, pk=pk, cell=cell,
                                   idx=idx, stash1=stash1, stash2=stash2):
                                c = base + crel
                                v = pipes[pk]
                                if v >= c + 1:
                                    return True
                                out = cell[0][idx]
                                self._mma_write(warp, rows, dest, out, c,
                                                stash1, stash2)
                                pipes[pk] = (v if v > c else float(c)) + occ
                                pbt["tensor"] += occ
                                return False

                        else:

                            def ev(base, warp=warp, rows=rows, dest=auxv,
                                   crel=crel, occ=occ, pk=pk, cell=cell,
                                   idx=idx):
                                c = base + crel
                                v = pipes[pk]
                                if v >= c + 1:
                                    return True
                                out = cell[0][idx]
                                if out.ndim == 2 and out.dtype == _U32:
                                    rows[dest:dest + out.shape[0]] = out
                                else:
                                    if out.ndim != 2:
                                        out = out[None, :]
                                    warp.regs.write_group(dest, out,
                                                          mask=None)
                                pipes[pk] = (v if v > c else float(c)) + occ
                                pbt["tensor"] += occ
                                return False

                        evs.append(ev)
                        continue
                    # Head (or queue-mismatch restart, which the dynamic
                    # engine resolves by clearing the queue first).
                    if plan is not None:
                        cell = [None]
                        st[0] = list(plan.tail)
                        st[1] = 0
                        st[2] = cell

                        def ev(base, warp=warp, rows=rows, dest=auxv,
                               crel=crel, occ=occ, pk=pk, plan=plan,
                               cell=cell, stash1=stash1, stash2=stash2):
                            c = base + crel
                            v = pipes[pk]
                            if v >= c + 1:
                                return True
                            batch = plan.fn(rows[plan.a_idx],
                                            rows[plan.b_idx],
                                            rows[plan.c_idx])
                            cell[0] = batch
                            plan_stats[0] += 1
                            plan_stats[1] += len(plan.members)
                            out = batch[0]
                            if (out.ndim == 2 and out.dtype == _U32
                                    and not stash1 and not stash2):
                                rows[dest:dest + out.shape[0]] = out
                            else:
                                self._mma_write(warp, rows, dest, out, c,
                                                stash1, stash2)
                            pipes[pk] = (v if v > c else float(c)) + occ
                            pbt["tensor"] += occ
                            return False

                    else:
                        st[0] = None
                        st[1] = 0
                        st[2] = None

                        def ev(base, warp=warp, rows=rows, fn=fn, dest=auxv,
                               crel=crel, occ=occ, pk=pk, stash1=stash1,
                               stash2=stash2):
                            c = base + crel
                            v = pipes[pk]
                            if v >= c + 1:
                                return True
                            out = fn(warp)
                            if (out.ndim == 2 and out.dtype == _U32
                                    and not stash1 and not stash2):
                                rows[dest:dest + out.shape[0]] = out
                            else:
                                self._mma_write(warp, rows, dest, out, c,
                                                stash1, stash2)
                            pipes[pk] = (v if v > c else float(c)) + occ
                            pbt["tensor"] += occ
                            return False

                    evs.append(ev)
                    continue

                def ev(base, warp=warp, rows=rows, fn=fn, dest=auxv, pc=pc,
                       crel=crel, occ=occ, pk=pk, plan=plan, stash1=stash1,
                       stash2=stash2):
                    c = base + crel
                    v = pipes[pk]
                    if v >= c + 1:
                        return True
                    out = None
                    queue = warp.plan_queue
                    if queue is not None:
                        plan_pc, values = queue[warp.plan_qi]
                        if plan_pc == pc:
                            out = values
                            warp.plan_qi += 1
                            if warp.plan_qi == len(queue):
                                warp.plan_queue = None
                                warp.plan_qi = 0
                        else:
                            warp.plan_queue = None
                            warp.plan_qi = 0
                    if out is None:
                        if plan is not None:
                            batch = plan.fn(rows[plan.a_idx], rows[plan.b_idx],
                                            rows[plan.c_idx])
                            out = batch[0]
                            warp.plan_queue = list(zip(plan.tail, batch[1:]))
                            warp.plan_qi = 0
                            plan_stats[0] += 1
                            plan_stats[1] += len(plan.members)
                        else:
                            out = fn(warp)
                    if out.ndim != 2:
                        out = out[None, :]
                    half = (out.shape[0] + 1) // 2
                    first = out[:half]
                    if stash1:
                        surv.append((warp, 1, c + h1, dest, first, None,
                                     rows[dest:dest + half].copy()))
                    if first.dtype == _U32:
                        rows[dest:dest + half] = first
                    else:
                        warp.regs.write_group(dest, first, mask=None)
                    if out.shape[0] > half:
                        second = out[half:]
                        if stash2:
                            surv.append((warp, 1, c + h2, dest + half, second,
                                         None,
                                         rows[dest + half:dest + out.shape[0]]
                                         .copy()))
                        if second.dtype == _U32:
                            rows[dest + half:dest + out.shape[0]] = second
                        else:
                            warp.regs.write_group(dest + half, second,
                                                  mask=None)
                    pipes[pk] = (v if v > c else float(c)) + occ
                    pbt["tensor"] += occ
                    return False

            elif kindc == _K_LOAD:
                dest, width, bypass = auxv
                ev = mk_load(warp, fn, dest, width // 4, crel, rel,
                             dec.mem_shared, dec.mem_cpi, dec.mem_cpi_l2,
                             width, bypass, level,
                             rel is not None and crel + rel > delta,
                             None, False)

            elif kindc == _K_STORE:
                width = auxv
                if dec.mem_shared:
                    sbase = soff_ = None
                else:
                    u = decode_uop(dec.inst)
                    sbase, soff_ = u.mem.base_index, u.mem.offset
                ev = mk_store(warp, fn, crel, rel, dec.mem_shared,
                              dec.mem_cpi, width, sbase, soff_, None, False)

            else:  # generic
                inst = dec.inst
                op = dec.opcode
                if op in ("BAR", "NOP"):
                    # No functional effect; barrier wake-ups live in the
                    # (verified) schedule and the exit fabrication.
                    continue
                is_bra = op == "BRA"
                is_mem = dec.is_memory
                occ = dec.occupancy
                stash = (crel + (rel if rel is not None else ALU_LATENCY)
                         > delta)

                # The common generic events in GEMM steady states are
                # predicated branches and predicated (but fully-active)
                # guard loads/stores -- specialize those to skip the full
                # interpreter; anything else falls through to execute().
                pred = inst.pred
                pidx = pneg = None
                if pred is not None and not pred.is_pt:
                    pidx, pneg = pred.index, pred.negated
                u = None
                try:
                    u = decode_uop(inst)
                except ExecError:
                    pass
                if is_bra and u is not None and occ == 0:
                    tgt = u.target
                    if pidx is None:
                        # Unconditional branch: the recorded target is the
                        # only outcome, so there is nothing to replay.
                        if tgt != post_pc:
                            return False
                        continue

                    def ev(base, pdata=warp.preds._data, pidx=pidx,
                           pneg=pneg, tgt=tgt, pc=pc, post_pc=post_pc):
                        pd = pdata[pidx]
                        any_set = bool(pd.any())
                        all_set = bool(pd.all())
                        if pneg:
                            taken = not all_set
                            if taken and any_set:  # divergent: abort
                                return True
                        else:
                            taken = any_set
                            if taken and not all_set:
                                return True
                        return (tgt if taken else pc + 1) != post_pc

                    evs.append(ev)
                    continue
                if (u is not None and is_mem and mask_full and pidx is not None
                        and u.kind in ("load", "store")):
                    m = u.mem
                    if u.kind == "load":
                        ev = mk_load(warp, _load_fn(m), u.dest[1],
                                     m.width // 4, crel, rel, dec.mem_shared,
                                     dec.mem_cpi, dec.mem_cpi_l2, m.width,
                                     m.bypass_l1, level,
                                     rel is not None and crel + rel > delta,
                                     pidx, pneg)
                    else:
                        ev = mk_store(warp, _store_fn(m), crel, rel,
                                      dec.mem_shared, dec.mem_cpi, m.width,
                                      m.base_index, m.offset, pidx, pneg)
                    evs.append(ev)
                    continue

                def ev(base, warp=warp, rows=rows, inst=inst, dec=dec,
                       crel=crel, rel=rel, level=level, is_bra=is_bra,
                       is_mem=is_mem, occ=occ, pk=pk, cls=dec.pipe_class,
                       target=post_pc, pc=pc, stash=stash, sim=sim):
                    c = base + crel
                    if is_mem and not mio.can_accept(c):
                        return True
                    if occ and pk is not None:
                        v = pipes[pk]
                        if v >= c + 1:
                            return True
                    warp._clock_now = c
                    eff = execute(inst, warp)
                    if eff.exited:
                        return True
                    if is_bra:
                        newpc = eff.branch_target \
                            if eff.branch_target is not None else pc + 1
                        return newpc != target
                    if is_mem:
                        sim._last_level = None
                        occ2, ready = sim._price_memory(dec, eff, c, memsys,
                                                        mio)
                        if ready - c != rel or sim._last_level != level:
                            return True
                        pbt["lsu"] += occ2
                        due = ready
                    else:
                        due = c + ALU_LATENCY
                    for first, values, mask in eff.reg_writes:
                        if stash:
                            n = values.shape[0]
                            surv.append((warp, 0, due, first, values, mask,
                                         rows[first:first + n].copy()))
                        if mask is None and values.dtype == _U32:
                            rows[first:first + values.shape[0]] = values
                        else:
                            warp.regs.write_group(
                                first, values,
                                mask=None if mask is None or mask.all()
                                else mask)
                    for index, values, mask in eff.pred_writes:
                        warp.preds.write(index, values,
                                         mask=None if mask.all() else mask)
                    if occ and pk is not None:
                        v = pipes[pk]
                        pipes[pk] = (v if v > c else float(c)) + occ
                        pbt[cls] += occ
                    return False

            evs.append(ev)
        if any(st[0] is not None for st in mma_state.values()):
            # A plan group straddles the unit boundary; the slim MMA
            # closures never materialize ``warp.plan_queue``, so refuse.
            return False
        self._evs = evs
        self._delta = delta
        return True

    def _mma_write(self, warp, rows, dest, out, c, stash1, stash2):
        """Slow-path MMA register apply: half-split with survivor stashes
        (events whose write latency crosses the unit boundary)."""
        if out.ndim != 2:
            out = out[None, :]
        spec = self.sim.spec
        h1 = spec.hmma_latency_first_half
        h2 = spec.hmma_latency_second_half
        surv = self.surv
        half = (out.shape[0] + 1) // 2
        first = out[:half]
        if stash1:
            surv.append((warp, 1, c + h1, dest, first, None,
                         rows[dest:dest + half].copy()))
        if first.dtype == _U32:
            rows[dest:dest + half] = first
        else:
            warp.regs.write_group(dest, first, mask=None)
        if out.shape[0] > half:
            second = out[half:]
            if stash2:
                surv.append((warp, 1, c + h2, dest + half, second, None,
                             rows[dest + half:dest + out.shape[0]].copy()))
            if second.dtype == _U32:
                rows[dest + half:dest + out.shape[0]] = second
            else:
                warp.regs.write_group(dest + half, second, mask=None)

    # ---------------------------------------------------------------- replay

    def _unit_checkpoint(self):
        mio = self.mio
        return (
            [(w.regs._data.copy(), w.preds._data.copy(), w.plan_queue,
              w.plan_qi) for w in self.warps],
            [sm._words.copy() for sm in self.shared_mems],
            dict(self.pipes),
            dict(self.pipe_busy_total),
            (mio.drain_free, list(mio._done), mio._head, mio._head_done),
            (self.plan_stats[0], self.plan_stats[1]),
        )

    def _unit_rollback(self, ck, glen, slen):
        wck, sck, pck, bck, mck, plck = ck
        for w, (rd, pd, pq, qi) in zip(self.warps, wck):
            w.regs._data[:] = rd
            w.preds._data[:] = pd
            w.plan_queue = pq
            w.plan_qi = qi
        for sm, words in zip(self.shared_mems, sck):
            sm._words[:] = words
        self.pipes.update(pck)
        self.pipe_busy_total.update(bck)
        mio = self.mio
        mio.drain_free, done, mio._head, mio._head_done = mck
        mio._done[:] = done
        self.plan_stats[0], self.plan_stats[1] = plck
        g = self.gundo
        for words, idx, old in reversed(g[glen:]):
            words[idx] = old
        del g[glen:]
        del self.surv[slen:]

    def _replay(self, base0):
        """Replay committed iterations from the verified boundary; returns
        ``(new_cycle, d_stall, d_score, d_pipe, d_retired)``."""
        evs = self._evs
        delta = self._delta
        memsys = self.memsys
        surv = self.surv
        gundo = self.gundo
        del surv[:]
        del gundo[:]

        # Flush in-flight writes: sound per the hazard walk (nothing reads
        # their targets before their due), tracked as survivors so the
        # queues reconstruct exactly on exit.
        for warp in self.warps:
            if warp.exited:
                continue
            entries = ([(d, f, v, m, 0) for d, f, v, m in warp.pending_writes]
                       + [(d, f, v, m, 1)
                          for d, f, v, m in warp.pending_tensor_writes])
            entries.sort(key=lambda e: e[0])
            rows = warp.regs._data
            for d, f, v, m, kindf in entries:
                n = v.shape[0]
                surv.append((warp, kindf, d, f, v, m, rows[f:f + n].copy()))
                if m is None and v.dtype == _U32:
                    rows[f:f + n] = v
                else:
                    warp.regs.write_group(
                        f, v, mask=None if m is None or m.all() else m)
            warp.pending_writes = []
            warp.pending_tensor_writes = []
            warp.min_due = _INF
            warp.tensor_min_due = _INF

        # Exit scheduling state is fabricated from these entry-time
        # relatives: every component is integer-exact and shift-invariant
        # over a verified period.
        wsnap = []
        for w in self.warps:
            if w.exited:
                wsnap.append(None)
            else:
                wsnap.append((w.pc, w.at_barrier, w.next_issue - base0,
                              tuple(sb - base0 for sb in w.scoreboards)))
        rr_snap = tuple(self.rr)

        committed = 0
        base = base0
        mio = self.mio
        while base + delta <= self.max_cycles:
            ck = self._unit_checkpoint()
            memsys.begin_journal()
            glen = len(gundo)
            slen = len(surv)
            ok = True
            for ev in evs:
                if ev(base):
                    ok = False
                    break
            if not ok:
                self._unit_rollback(ck, glen, slen)
                memsys.rollback_journal()
                break
            memsys.commit_journal()
            committed += 1
            base += delta
            del gundo[:]
            if surv:
                surv[:] = [e for e in surv if e[2] > base]
            mio._retire(base)

        self._fabricate(base, wsnap, rr_snap)
        if committed:
            self._fail_streak = 0
        else:
            self._note_failure()
        del self._hist[:]

        d = self._period_sdelta
        u = committed
        opc = self.opcode_counts
        for k, v in d[4].items():
            opc[k] = opc.get(k, 0) + v * u
        for warp, wd in zip(self.warps, d[5]):
            warp.retired += wd * u
        self.periods += u
        self.cycles_skipped += delta * u
        return (base, d[0] * u, d[1] * u, d[2] * u, d[3] * u)

    def _fabricate(self, base, wsnap, rr_snap):
        """Rebuild scheduling state at a committed boundary.  Registers,
        memories, pipes, MIO and the memory subsystem are already real."""
        st_code = self.st_code
        st_expiry = self.st_expiry
        for w, ws in zip(self.warps, wsnap):
            if ws is None:
                st_code[w.wid] = 6
                continue
            pc, bar, ni_rel, sb_rels = ws
            w.pc = pc
            w.at_barrier = bar
            w.next_issue = base + ni_rel
            w.scoreboards = [base + r for r in sb_rels]
            w.pending_writes = []
            w.pending_tensor_writes = []
            w.min_due = _INF
            w.tensor_min_due = _INF
            st_code[w.wid] = 5 if bar else 0
            st_expiry[w.wid] = 0
        surv = self.surv
        for warp, kindf, due, first, values, mask, old in reversed(surv):
            warp.regs._data[first:first + old.shape[0]] = old
        for warp, kindf, due, first, values, mask, old in surv:
            if kindf:
                warp.defer_tensor_write(due, first, values, mask)
            else:
                warp.defer_write(due, first, values, mask)
        del surv[:]
        self.rr[:] = rr_snap
        for s in range(self.n_sched):
            self.sched_sum[s] = None


class TimingSimulator:
    """Simulates *num_ctas* CTAs of one program resident on one SM."""

    def __init__(self, spec: GpuSpec, bandwidth_share: float = 1.0,
                 l1_bytes: int = 32 * 1024, engine: str = None,
                 guard: str = None):
        self.spec = spec
        self.bandwidth_share = bandwidth_share
        self.l1_bytes = l1_bytes
        self.engine = engine if engine is not None else _default_engine()
        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        # Divergence-watchdog mode (None -> REPRO_GUARD); a degraded
        # watchdog may run this simulator on the reference engine or with
        # fast-forward disabled regardless of what was requested.
        self.guard = guard
        # Last issued event's write-release cycle / memory service level /
        # mask fullness, stashed for the fast-forward recorder.
        self._last_release = None
        self._last_level = None
        self._last_mask_full = None

    def run(self, program: Program, global_mem: GlobalMemory = None,
            num_ctas: int = 1, first_ctaid=(0, 0, 0),
            max_cycles: int = DEFAULT_MAX_CYCLES) -> TimingResult:
        if global_mem is None:
            global_mem = GlobalMemory(4 * 1024 * 1024)
        mode = _guard.guard_mode(self.guard)
        engine = _guard.effective_timing_engine(self.engine)
        ctx = None
        if mode != "off" and engine != "reference":
            ctx = _guard.GuardContext("timing", engine, mode,
                                      global_mem._words)
        memsys = MemorySubsystem(self.spec, self.bandwidth_share, self.l1_bytes)

        warps = []
        cta_warps = []
        for slot in range(num_ctas):
            shared = SharedMemory(program.meta.smem_bytes)
            ctaid = (first_ctaid[0] + slot, first_ctaid[1], first_ctaid[2])
            members = [
                _TimedWarp(w, slot, ctaid, global_mem, shared)
                for w in range(program.meta.warps_per_cta)
            ]
            warps.extend(members)
            cta_warps.append(members)
        for i, w in enumerate(warps):
            w.wid = i
        decoded = [_DecodedInst(inst, self.spec) for inst in program]

        start_wall = time.perf_counter()
        if engine == "reference":
            outcome = self._run_reference(
                warps, cta_warps, decoded, memsys, max_cycles)
        else:
            outcome = self._run_event(
                warps, cta_warps, decoded, memsys, max_cycles)
        cycle, retired, opcode_counts, pipe_busy_total, stall_reasons, \
            plan_stats, ff_stats = outcome

        for w in warps:
            w.flush_writes()

        STATS.count("sim.runs")
        STATS.count("sim.cycles", cycle)
        STATS.count("sim.instructions", retired)
        if plan_stats[0]:
            STATS.count("sim.plans", plan_stats[0])
            STATS.count("sim.plan_insts", plan_stats[1])
        if ff_stats[0]:
            STATS.count("sim.ff_periods", ff_stats[0])
            STATS.count("sim.ff_cycles", ff_stats[1])
        STATS.add_time("sim.wall", time.perf_counter() - start_wall)

        result = TimingResult(
            cycles=cycle,
            instructions=retired,
            opcode_counts=opcode_counts,
            pipe_busy=pipe_busy_total,
            issue_stall_reasons=stall_reasons,
            traffic=memsys.counters,
            num_schedulers=self.spec.warp_schedulers_per_sm,
        )
        if ctx is not None:
            # Chaos flip fires only on guarded runs: a synthetic fast-engine
            # bug for the watchdog to catch, never silent corruption.
            chaos.maybe_flip_output(global_mem._words)
            result = ctx.conclude(
                global_mem._words, result,
                lambda: _guard_rerun(self.spec, self.bandwidth_share,
                                     self.l1_bytes, program, ctx.pre,
                                     num_ctas, first_ctaid, max_cycles),
                program=program,
                context={"num_ctas": num_ctas,
                         "first_ctaid": list(first_ctaid),
                         "engine": engine,
                         "bandwidth_share": self.bandwidth_share,
                         "l1_bytes": self.l1_bytes},
            )
        return result

    # ------------------------------------------------------ reference engine

    def _run_reference(self, warps, cta_warps, decoded, memsys, max_cycles):
        n_sched = self.spec.warp_schedulers_per_sm
        pipes = {
            **{("tensor", s): 0 for s in range(n_sched)},
            **{("alu", s): 0 for s in range(n_sched)},
            **{("fma", s): 0 for s in range(n_sched)},
        }
        mio = _MioQueue(self.spec.mio_queue_depth)
        pipe_busy_total = {"tensor": 0, "alu": 0, "fma": 0, "lsu": 0}
        stall_reasons = {"pipe": 0, "scoreboard": 0, "stall": 0, "barrier": 0}
        opcode_counts: dict = {}
        rr = [0] * n_sched  # round-robin pointers
        by_sched = [
            [w for i, w in enumerate(warps) if i % n_sched == s]
            for s in range(n_sched)
        ]

        cycle = 0
        retired = 0
        while cycle < max_cycles:
            if all(w.exited for w in warps):
                break
            issued_any = False
            # Rotate the polling order so no scheduler gets standing
            # priority on the shared memory-IO pipe (hardware arbitrates
            # fairly; a fixed order starves the last scheduler's warps and
            # makes them barrier stragglers).
            for s in range(cycle % n_sched, cycle % n_sched + n_sched):
                s %= n_sched
                issued = self._try_issue_scheduler(
                    s, by_sched[s], rr, cycle, pipes, mio, pipe_busy_total,
                    stall_reasons, opcode_counts, memsys, cta_warps, decoded,
                )
                if issued:
                    retired += 1
                    issued_any = True
            if issued_any:
                cycle += 1
                continue
            # Nothing issued: skip ahead to the next possible event.
            nxt = self._next_event(warps, pipes, mio, cycle, decoded)
            if nxt <= cycle:
                cycle += 1
            else:
                cycle = min(nxt, max_cycles)
        else:
            raise RuntimeError(
                f"timing simulation exceeded {max_cycles} cycles; "
                "kernel appears hung"
            )
        return (cycle, retired, opcode_counts, pipe_busy_total,
                stall_reasons, (0, 0), (0, 0))

    # ---------------------------------------------------------------- issue

    def _try_issue_scheduler(self, s, sched_warps, rr, cycle, pipes, mio,
                             pipe_busy_total, stall_reasons, opcode_counts,
                             memsys, cta_warps, decoded) -> bool:
        n = len(sched_warps)
        base = rr[s]
        for k in range(n):
            idx = (base + k) % n
            warp = sched_warps[idx]
            if warp.exited or warp.at_barrier:
                continue
            if warp.next_issue > cycle:
                stall_reasons["stall"] += 1
                continue
            if warp.pc >= len(decoded):
                raise ExecError(
                    f"warp {warp.warp_id} ran off the end of the program "
                    f"(pc={warp.pc}); missing EXIT?"
                )
            dec = decoded[warp.pc]
            if dec.wait_mask and not warp.wait_satisfied(dec.wait_mask, cycle):
                stall_reasons["scoreboard"] += 1
                continue
            if dec.is_memory:
                if not mio.can_accept(cycle):
                    stall_reasons["pipe"] += 1
                    continue
                pipe_key = None
            elif dec.pipe_class is None:
                pipe_key = None  # branch / barrier need no execution pipe
            else:
                pipe_key = (dec.pipe_class, s)
                # A pipe that frees up *during* this cycle accepts the
                # issue; the fractional busy time carries over (so CPI 4.06
                # averages to 4.06, not 5).
                if pipes[pipe_key] >= cycle + 1:
                    stall_reasons["pipe"] += 1
                    continue

            # Issue!
            self._issue(warp, dec, cycle, pipes, pipe_key, mio,
                        pipe_busy_total, memsys, cta_warps)
            opcode_counts[dec.opcode] = opcode_counts.get(dec.opcode, 0) + 1
            rr[s] = (idx + 1) % n
            return True
        return False

    def _issue(self, warp, dec, cycle, pipes, pipe_key, mio,
               pipe_busy_total, memsys, cta_warps) -> None:
        warp.apply_due_writes(cycle)
        if dec.is_tensor:
            # Intra-pipe forwarding: a tensor op chained on a prior one's
            # accumulator sees it at the issue interval.
            warp.forward_tensor_writes()
        warp._clock_now = cycle
        eff = execute(dec.inst, warp)
        warp.retired += 1

        occupancy = 0.0
        write_bar_release = None

        if dec.is_mma:
            occupancy = dec.occupancy
            self._defer_hmma_writes(warp, dec.inst, eff, cycle)
        elif dec.is_memory:
            lsu_occupancy, ready = self._price_memory(dec, eff, cycle,
                                                      memsys, mio)
            pipe_busy_total["lsu"] += lsu_occupancy
            # Drained through the MIO queue, not a pipe: occupancy stays 0.
            write_bar_release = ready
            for first_reg, values, mask in eff.reg_writes:
                warp.defer_write(ready, first_reg, values, mask)
        else:
            occupancy = dec.occupancy
            due = cycle + ALU_LATENCY
            for first_reg, values, mask in eff.reg_writes:
                warp.defer_write(due, first_reg, values, mask)
        self._last_release = write_bar_release

        # Predicates use the ALU latency as well.
        for index, values, mask in eff.pred_writes:
            # Predicate files are small; model latency by deferring through
            # the same queue using a sentinel: simplest is immediate apply
            # after ALU_LATENCY via closure-free tuple on the regs queue is
            # not possible, so apply now but require stall>=ALU_LATENCY by
            # convention (generated code always does).
            warp.preds.write(index, values, mask=None if mask.all() else mask)

        if pipe_key is not None and occupancy:
            pipes[pipe_key] = max(pipes[pipe_key], float(cycle)) + occupancy
            pipe_busy_total[pipe_key[0]] += occupancy

        if dec.write_bar != NO_BARRIER:
            release = write_bar_release
            if release is None:
                release = cycle + ALU_LATENCY
            warp.scoreboards[dec.write_bar] = max(
                warp.scoreboards[dec.write_bar], release
            )
        if dec.read_bar != NO_BARRIER:
            # Sources are consumed shortly after issue.
            warp.scoreboards[dec.read_bar] = max(
                warp.scoreboards[dec.read_bar], cycle + 2
            )

        if eff.exited:
            warp.exited = True
            warp.flush_writes()
            self._maybe_release_barrier(cta_warps[warp.cta_slot], cycle)
            return
        if eff.branch_target is not None:
            warp.pc = eff.branch_target
        else:
            warp.pc += 1
        warp.next_issue = cycle + dec.issue_stall
        if eff.barrier:
            warp.at_barrier = True
            self._maybe_release_barrier(cta_warps[warp.cta_slot], cycle)

    def _defer_hmma_writes(self, warp, inst, eff, cycle) -> None:
        """Split the D write: first half at +10, second half at +14."""
        spec = self.spec
        for first_reg, values, mask in eff.reg_writes:
            n = values.shape[0]
            first = values[: (n + 1) // 2]
            second = values[(n + 1) // 2 :]
            warp.defer_tensor_write(
                cycle + spec.hmma_latency_first_half, first_reg, first, mask
            )
            if second.shape[0]:
                warp.defer_tensor_write(
                    cycle + spec.hmma_latency_second_half,
                    first_reg + first.shape[0], second, mask,
                )

    def _price_memory(self, dec, eff, cycle, memsys, mio):
        """Push one memory access through the MIO queue.

        Returns ``(occupancy, ready_cycle)``: the drain-port cycles the
        access consumes, and when its result (load data / store-complete)
        is architecturally visible.
        """
        self._last_level = None
        self._last_mask_full = None
        txn = eff.transaction
        if txn is None:  # fully predicated-off access
            return 0.0, cycle + 1
        self._last_mask_full = txn.mask is None or bool(txn.mask.all())

        if dec.mem_shared:
            mult = conflict_multiplier(txn.addresses, txn.width_bytes, txn.mask)
            occupancy = dec.mem_cpi * mult
            done = mio.push(cycle, occupancy)
            if dec.mem_store:
                return occupancy, int(done) + 1
            return occupancy, int(done) + self.spec.lds_latency_cycles

        # Global: the LSU forwards the request to L1/L2/DRAM once the MIO
        # queue drains it.
        if dec.mem_store:
            occupancy = dec.mem_cpi
            done = mio.push(cycle, occupancy)
            memsys.access(int(done), txn.addresses, txn.width_bytes,
                          txn.mask, is_store=True, bypass_l1=txn.bypass_l1)
            return occupancy, int(done) + 1
        # Loads: peek the level first (L1-hit CPIs differ from L2, Table III).
        summary = memsys.access(cycle, txn.addresses, txn.width_bytes,
                                txn.mask, is_store=False,
                                bypass_l1=txn.bypass_l1)
        self._last_level = summary.level
        occupancy = dec.mem_cpi if summary.level == "l1" else dec.mem_cpi_l2
        done = mio.push(cycle, occupancy)
        ready = max(summary.ready_cycle, int(done) + 1)
        return occupancy, ready

    @staticmethod
    def _maybe_release_barrier(members, cycle) -> None:
        live = [w for w in members if not w.exited]
        if live and all(w.at_barrier for w in live):
            for w in live:
                w.at_barrier = False
                w.next_issue = max(w.next_issue, cycle + 1)

    # ------------------------------------------------------------ skipping

    def _next_event(self, warps, pipes, mio, cycle, decoded) -> int:
        candidates = []
        horizon = cycle + 1
        for w in warps:
            if w.exited or w.at_barrier:
                continue
            t = w.next_issue
            if t <= cycle:
                dec = decoded[w.pc]
                wait_mask = dec.wait_mask
                if wait_mask and not w.wait_satisfied(wait_mask, cycle):
                    t = w.next_wait_release(wait_mask)
                elif dec.is_memory and not mio.can_accept(cycle):
                    t = math.ceil(mio.next_slot_free(cycle))
                else:
                    # Earliest cycle c at which some busy pipe satisfies
                    # free < c + 1, i.e. c = floor(free_time).
                    t = min(
                        (math.floor(v) for v in pipes.values()
                         if v >= horizon),
                        default=horizon,
                    )
            candidates.append(t)
        return min(candidates, default=horizon)

    # ---------------------------------------------------------- event engine

    def _run_event(self, warps, cta_warps, decoded, memsys, max_cycles):
        """Event-driven issue loop: cycle-identical to `_run_reference`.

        Each warp carries a cached *block status* with a release-cycle
        expiry: 1=stall-count (expires at ``next_issue``), 2=scoreboard
        (expires at ``next_wait_release``), 3=MIO-full (expires when the
        head entry retires), 4=pipe-busy (expires at ``floor(free_time)``),
        5=at-barrier, 6=exited.  Expiry alone validates a cached status:
        codes 1/2 only move on the warp's own issue; a full MIO queue is
        frozen until its head retires (a push would need ``can_accept``);
        and a busy pipe only gets busier, so re-examination at the cached
        expiry re-derives the same reason if the window grew.  The scan
        consumes valid caches without touching warp state, and idle-cycle
        probes take the minimum over the cached expiries -- on a no-issue
        cycle every live warp was just (re)examined or provably unchanged,
        so the status arrays hold exactly the candidate set `_next_event`
        recomputes from scratch and the two engines visit identical cycles
        and count identical stall reasons.
        """
        spec = self.spec
        n_sched = spec.warp_schedulers_per_sm
        pipes = {
            **{("tensor", s): 0 for s in range(n_sched)},
            **{("alu", s): 0 for s in range(n_sched)},
            **{("fma", s): 0 for s in range(n_sched)},
        }
        pipe_keys = {
            cls: tuple((cls, s) for s in range(n_sched))
            for cls in ("tensor", "alu", "fma")
        }
        mio = _VecMioQueue(spec.mio_queue_depth)
        pipe_busy_total = {"tensor": 0, "alu": 0, "fma": 0, "lsu": 0}
        opcode_counts: dict = {}
        rr = [0] * n_sched
        by_sched = [
            [w for i, w in enumerate(warps) if i % n_sched == s]
            for s in range(n_sched)
        ]
        kinds, fns, aux, plans = _compile_event(decoded)
        plan_stats = [0, 0]

        n_warps = len(warps)
        n_slots = len(decoded)
        st_code = [0] * n_warps
        st_expiry = [0] * n_warps
        wids_by_sched = [[w.wid for w in ws] for ws in by_sched]
        # Fully-blocked scheduler summary: (stall, scoreboard, pipe counter
        # adds, valid-until cycle).  While valid it replays the scheduler's
        # per-cycle stall counts in O(1) instead of re-examining every warp;
        # the earliest member expiry or a barrier/exit wake invalidates it.
        sched_sum = [None] * n_sched
        live = n_warps
        n_stall = n_score = n_pipe = 0
        retired = 0
        floor = math.floor
        ceil = math.ceil

        ff = None
        ff_rec = False
        ff_flag = False
        self._last_release = None
        self._last_level = None
        self._last_mask_full = None
        if _ff_enabled():
            ff = _FastForward(self, warps, cta_warps, decoded, kinds, fns,
                              aux, plans, pipes, pipe_keys, mio, memsys,
                              pipe_busy_total, opcode_counts, rr, st_code,
                              st_expiry, sched_sum, plan_stats, n_sched,
                              max_cycles)

        cycle = 0
        while cycle < max_cycles:
            if ff_flag:
                ff_flag = False
                res = ff.at_boundary(cycle, n_stall, n_score, n_pipe,
                                     retired)
                ff_rec = ff.recording
                if res is not None:
                    cycle, d_st, d_sc, d_pi, d_re = res
                    n_stall += d_st
                    n_score += d_sc
                    n_pipe += d_pi
                    retired += d_re
                    ff_rec = False
            if live == 0:
                break
            issued_any = False
            base_rot = cycle % n_sched
            for soff in range(n_sched):
                s = base_rot + soff
                if s >= n_sched:
                    s -= n_sched
                sched_warps = by_sched[s]
                n = len(sched_warps)
                if not n:
                    continue
                summ = sched_sum[s]
                if summ is not None:
                    if cycle < summ[3]:
                        n_stall += summ[0]
                        n_score += summ[1]
                        n_pipe += summ[2]
                        continue
                    sched_sum[s] = None
                swids = wids_by_sched[s]
                base = rr[s]
                for k in range(n):
                    idx = base + k
                    if idx >= n:
                        idx -= n
                    wid = swids[idx]
                    code = st_code[wid]
                    if code:
                        if code >= 5:
                            continue
                        if st_expiry[wid] > cycle:
                            if code == 1:
                                n_stall += 1
                            elif code == 2:
                                n_score += 1
                            else:
                                n_pipe += 1
                            continue
                    # Cache expired: re-evaluate live state.  A blocked warp
                    # cannot issue, so its pc / next_issue / satisfied waits
                    # are frozen -- an expired MIO or pipe block only needs
                    # its own condition re-tested, not the full chain.
                    warp = sched_warps[idx]
                    if code == 3:
                        if not mio.can_accept(cycle):
                            st_expiry[wid] = ceil(mio.next_slot_free(cycle))
                            n_pipe += 1
                            continue
                        pc = warp.pc
                        dec = decoded[pc]
                        pipe_key = None
                    elif code == 4:
                        pc = warp.pc
                        dec = decoded[pc]
                        pipe_key = pipe_keys[dec.pipe_class][s]
                        v = pipes[pipe_key]
                        if v >= cycle + 1:
                            st_expiry[wid] = floor(v)
                            n_pipe += 1
                            continue
                    else:
                        if warp.next_issue > cycle:
                            st_code[wid] = 1
                            st_expiry[wid] = warp.next_issue
                            n_stall += 1
                            continue
                        pc = warp.pc
                        if pc >= n_slots:
                            raise ExecError(
                                f"warp {warp.warp_id} ran off the end of the "
                                f"program (pc={pc}); missing EXIT?"
                            )
                        dec = decoded[pc]
                        wait_mask = dec.wait_mask
                        if wait_mask and not warp.wait_satisfied(
                            wait_mask, cycle
                        ):
                            st_code[wid] = 2
                            st_expiry[wid] = warp.next_wait_release(wait_mask)
                            n_score += 1
                            continue
                        if dec.is_memory:
                            if not mio.can_accept(cycle):
                                st_code[wid] = 3
                                st_expiry[wid] = ceil(
                                    mio.next_slot_free(cycle)
                                )
                                n_pipe += 1
                                continue
                            pipe_key = None
                        elif dec.pipe_class is None:
                            pipe_key = None
                        else:
                            pipe_key = pipe_keys[dec.pipe_class][s]
                            v = pipes[pipe_key]
                            if v >= cycle + 1:
                                st_code[wid] = 4
                                st_expiry[wid] = floor(v)
                                n_pipe += 1
                                continue

                    # Issue!
                    kindc = kinds[pc]
                    if kindc:
                        self._issue_fast(
                            warp, dec, kindc, fns[pc], aux[pc], cycle,
                            pipes, pipe_key, mio, pipe_busy_total, memsys,
                            plans, plan_stats,
                        )
                        if ff_rec:
                            ff.record(warp, pc, dec, kindc, cycle)
                    else:
                        self._issue(warp, dec, cycle, pipes, pipe_key, mio,
                                    pipe_busy_total, memsys, cta_warps)
                        if ff is not None:
                            if ff_rec:
                                ff.record(warp, pc, dec, 0, cycle)
                            if dec.opcode == "BRA" and warp.pc <= pc:
                                # A taken backward branch by the watch warp
                                # marks the next loop top as a fast-forward
                                # boundary.
                                if ff.watch_wid is None:
                                    ff.watch_wid = wid
                                    ff_flag = True
                                elif ff.watch_wid == wid:
                                    ff_flag = True
                    opcode_counts[dec.opcode] = (
                        opcode_counts.get(dec.opcode, 0) + 1
                    )
                    retired += 1
                    rr[s] = idx + 1 if idx + 1 < n else 0
                    issued_any = True
                    # Re-prime this warp's cache (and CTA mates a barrier
                    # release or exit may have woken).
                    if warp.exited:
                        st_code[wid] = 6
                        live -= 1
                        for m in cta_warps[warp.cta_slot]:
                            if st_code[m.wid] == 5 and not m.at_barrier:
                                st_code[m.wid] = 1
                                st_expiry[m.wid] = m.next_issue
                                sched_sum[m.wid % n_sched] = None
                    elif warp.at_barrier:
                        st_code[wid] = 5
                    else:
                        st_code[wid] = 1
                        st_expiry[wid] = warp.next_issue
                        if dec.opcode == "BAR":
                            for m in cta_warps[warp.cta_slot]:
                                if st_code[m.wid] == 5 and not m.at_barrier:
                                    st_code[m.wid] = 1
                                    st_expiry[m.wid] = m.next_issue
                                    sched_sum[m.wid % n_sched] = None
                    break  # this scheduler issued; next scheduler
                else:
                    # All warps blocked: snapshot this scheduler's per-cycle
                    # stall counts (just added above) for O(1) replay.
                    a = b = c = 0
                    vu = _INF
                    for wid2 in swids:
                        code = st_code[wid2]
                        if code >= 5:
                            continue
                        e = st_expiry[wid2]
                        if e < vu:
                            vu = e
                        if code == 1:
                            a += 1
                        elif code == 2:
                            b += 1
                        else:
                            c += 1
                    sched_sum[s] = (a, b, c, vu)
            if issued_any:
                cycle += 1
                continue
            # Nothing issued: probe the cached block statuses for the next
            # event (the same candidate set `_next_event` would compute --
            # every live warp was just (re)examined, so caches are fresh).
            nxt = _INF
            pipe_blocked = False
            for wid2 in range(n_warps):
                c2 = st_code[wid2]
                if c2 == 4:
                    pipe_blocked = True
                elif 0 < c2 <= 3:
                    e = st_expiry[wid2]
                    if e < nxt:
                        nxt = e
            if pipe_blocked:
                horizon = cycle + 1
                t = _INF
                for v in pipes.values():
                    if v >= horizon and v < t:
                        t = v
                t = horizon if t is _INF else floor(t)
                if t < nxt:
                    nxt = t
            if nxt is _INF:
                nxt = cycle + 1
            if nxt <= cycle:
                cycle += 1
            else:
                cycle = min(nxt, max_cycles)
        else:
            raise RuntimeError(
                f"timing simulation exceeded {max_cycles} cycles; "
                "kernel appears hung"
            )
        stall_reasons = {
            "pipe": n_pipe, "scoreboard": n_score, "stall": n_stall,
            "barrier": 0,
        }
        return (cycle, retired, opcode_counts, pipe_busy_total,
                stall_reasons, plan_stats,
                (ff.periods, ff.cycles_skipped) if ff is not None else (0, 0))

    def _issue_fast(self, warp, dec, kindc, fn, aux, cycle, pipes, pipe_key,
                    mio, pipe_busy_total, memsys, plans, plan_stats) -> None:
        """Issue one compiled slot: `_issue` minus the generic adapter.

        Same state transitions in the same order; the lane math comes from
        the slot's compiled closure (or a queued MMA-plan row) instead of
        `execute`, and deferred values skip the Effects packaging.
        """
        if warp.min_due <= cycle or warp.tensor_min_due <= cycle:
            warp.apply_due_writes(cycle)
        warp._clock_now = cycle
        release = None
        if kindc == _K_MMA:
            if warp.pending_tensor_writes:
                warp.forward_tensor_writes()
            out = None
            queue = warp.plan_queue
            if queue is not None:
                plan_pc, values = queue[warp.plan_qi]
                if plan_pc == warp.pc:
                    out = values
                    warp.plan_qi += 1
                    if warp.plan_qi == len(queue):
                        warp.plan_queue = None
                        warp.plan_qi = 0
                else:  # branched off the window: abandon queued rows
                    warp.plan_queue = None
                    warp.plan_qi = 0
            if out is None:
                plan = plans.get(warp.pc)
                if plan is not None and _plan_clear(warp, plan):
                    rows = warp.regs._data
                    batch = plan.fn(rows[plan.a_idx], rows[plan.b_idx],
                                    rows[plan.c_idx])
                    out = batch[0]
                    warp.plan_queue = list(zip(plan.tail, batch[1:]))
                    warp.plan_qi = 0
                    plan_stats[0] += 1
                    plan_stats[1] += len(plan.members)
                else:
                    out = fn(warp)
            warp.retired += 1
            if out.ndim != 2:
                out = out[None, :]
            half = (out.shape[0] + 1) // 2
            spec = self.spec
            warp.defer_tensor_write(
                cycle + spec.hmma_latency_first_half, aux, out[:half], None
            )
            if out.shape[0] > half:
                warp.defer_tensor_write(
                    cycle + spec.hmma_latency_second_half, aux + half,
                    out[half:], None,
                )
            occupancy = dec.occupancy
            pipes[pipe_key] = max(pipes[pipe_key], float(cycle)) + occupancy
            pipe_busy_total[pipe_key[0]] += occupancy
        elif kindc == _K_ALU:
            out = fn(warp)
            warp.retired += 1
            warp.defer_write(cycle + ALU_LATENCY, aux, out[None, :], None)
            occupancy = dec.occupancy
            if occupancy:
                pipes[pipe_key] = (
                    max(pipes[pipe_key], float(cycle)) + occupancy
                )
                pipe_busy_total[pipe_key[0]] += occupancy
        elif kindc == _K_LOAD:
            dest, width, bypass_l1 = aux
            addrs, data, mult = fn(warp)
            warp.retired += 1
            if dec.mem_shared:
                occupancy = dec.mem_cpi * mult
                done = mio.push(cycle, occupancy)
                ready = int(done) + self.spec.lds_latency_cycles
            else:
                summary = memsys.access(cycle, addrs, width, _FULL_MASK,
                                        is_store=False, bypass_l1=bypass_l1)
                self._last_level = summary.level
                occupancy = (dec.mem_cpi if summary.level == "l1"
                             else dec.mem_cpi_l2)
                done = mio.push(cycle, occupancy)
                ready = max(summary.ready_cycle, int(done) + 1)
            pipe_busy_total["lsu"] += occupancy
            warp.defer_write(ready, dest, data, None)
            release = ready
        elif kindc == _K_STORE:
            addrs, mult = fn(warp)
            warp.retired += 1
            if dec.mem_shared:
                occupancy = dec.mem_cpi * mult
                done = mio.push(cycle, occupancy)
            else:
                occupancy = dec.mem_cpi
                done = mio.push(cycle, occupancy)
                memsys.access(int(done), addrs, aux, _FULL_MASK,
                              is_store=True, bypass_l1=False)
            pipe_busy_total["lsu"] += occupancy
            release = int(done) + 1
        else:  # _K_PRED
            out = fn(warp)
            warp.retired += 1
            warp.preds.write(aux, out, mask=None)
            occupancy = dec.occupancy
            if occupancy:
                pipes[pipe_key] = (
                    max(pipes[pipe_key], float(cycle)) + occupancy
                )
                pipe_busy_total[pipe_key[0]] += occupancy

        if dec.write_bar != NO_BARRIER:
            bar_release = release
            if bar_release is None:
                bar_release = cycle + ALU_LATENCY
            scoreboards = warp.scoreboards
            if bar_release > scoreboards[dec.write_bar]:
                scoreboards[dec.write_bar] = bar_release
        if dec.read_bar != NO_BARRIER:
            scoreboards = warp.scoreboards
            if cycle + 2 > scoreboards[dec.read_bar]:
                scoreboards[dec.read_bar] = cycle + 2
        warp.pc += 1
        warp.next_issue = cycle + dec.issue_stall
        self._last_release = release


def _guard_rerun(spec, bandwidth_share, l1_bytes, program, pre_words,
                 num_ctas, first_ctaid, max_cycles):
    """Watchdog rerun: the same launch on the reference timing engine,
    from the guarded run's memory snapshot.  Returns ``(result, words)``."""
    mem = GlobalMemory(pre_words.nbytes)
    np.copyto(mem._words, pre_words)
    sim = TimingSimulator(spec, bandwidth_share, l1_bytes,
                          engine="reference", guard="off")
    result = sim.run(program, mem, num_ctas=num_ctas,
                     first_ctaid=first_ctaid, max_cycles=max_cycles)
    return result, mem._words
