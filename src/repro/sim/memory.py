"""Global memory state and the L1/L2/DRAM service model.

Two concerns live here:

* :class:`GlobalMemory` -- the *functional* byte store backing LDG/STG, with
  vectorised warp-wide gather/scatter (32 lanes x 1/2/4 words each).

* :class:`MemorySubsystem` -- the *timing* model the SM simulator consults
  for every global access: which level serves it (L1 / L2 / DRAM), how many
  32-byte sectors move, and when the data arrives.  Capacity is modelled
  with LRU line sets; bandwidth with per-level "next free cycle" counters
  advanced by ``bytes / (bytes per cycle)``.

The bandwidth constants come from the paper's Table II *measured* values:
the simulator is the stand-in for the silicon, so its DRAM ceiling is the
380/238 GB/s the authors measured, not the 448/320 GB/s marketing peak.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..arch.turing import GpuSpec

__all__ = ["GlobalMemory", "AccessSummary", "MemorySubsystem"]


class GlobalMemory:
    """Flat global memory with warp-wide vectorised access.

    Addresses are byte addresses; every access must be aligned to its width
    (the hardware faults otherwise, and so do we -- misalignment in a
    generated kernel is a bug we want loud).
    """

    def __init__(self, size_bytes: int, buffer=None):
        if size_bytes <= 0 or size_bytes % 4:
            raise ValueError(f"size must be a positive multiple of 4, got {size_bytes}")
        self.size = size_bytes
        if buffer is None:
            self._words = np.zeros(size_bytes // 4, dtype=np.uint32)
        else:
            # External backing store (e.g. multiprocessing shared memory) so
            # several worker processes can scatter into the same device memory.
            self._words = np.frombuffer(buffer, dtype=np.uint32,
                                        count=size_bytes // 4)

    # ------------------------------------------------------------- host API

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Host-side memcpy into the device (cudaMemcpy H2D equivalent)."""
        if addr % 4 or len(data) % 4:
            raise ValueError("host writes must be 4-byte aligned")
        self._bounds_check(addr, len(data))
        self._words[addr // 4 : (addr + len(data)) // 4] = np.frombuffer(
            data, dtype=np.uint32
        )

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Host-side memcpy out of the device (cudaMemcpy D2H equivalent)."""
        if addr % 4 or size % 4:
            raise ValueError("host reads must be 4-byte aligned")
        self._bounds_check(addr, size)
        return self._words[addr // 4 : (addr + size) // 4].tobytes()

    def write_array(self, addr: int, array: np.ndarray) -> None:
        self.write_bytes(addr, np.ascontiguousarray(array).tobytes())

    def read_array(self, addr: int, dtype, count: int) -> np.ndarray:
        nbytes = np.dtype(dtype).itemsize * count
        return np.frombuffer(self.read_bytes(addr, nbytes), dtype=dtype).copy()

    # ------------------------------------------------------------- warp API

    def load_warp(self, addresses: np.ndarray, width_bytes: int,
                  mask: np.ndarray) -> np.ndarray:
        """Gather ``width_bytes`` per active lane; returns (words, 32) uint32.

        Inactive lanes return zeros.  ``mask=None`` means all lanes active.
        """
        idx = self._word_indices(addresses, width_bytes, mask)
        if mask is None:
            return self._words[idx]
        out = np.zeros((width_bytes // 4, addresses.shape[0]), dtype=np.uint32)
        out[:, mask] = self._words[idx[:, mask]]
        return out

    def store_warp(self, addresses: np.ndarray, data: np.ndarray,
                   width_bytes: int, mask: np.ndarray) -> None:
        """Scatter (words, 32) uint32 *data* to active lanes."""
        idx = self._word_indices(addresses, width_bytes, mask)
        if mask is None:
            self._words[idx] = data
            return
        self._words[idx[:, mask]] = data[:, mask]

    def load_warp_batch(self, addresses: np.ndarray, width_bytes: int) -> np.ndarray:
        """Gather for a fused run: (g, 32) addresses -> (g, words, 32) words.

        All lanes are active (fused runs are unpredicated); semantically this
        equals ``g`` sequential :meth:`load_warp` calls.
        """
        idx = self._batch_indices(addresses, width_bytes)
        return self._words[idx]

    def store_warp_batch(self, addresses: np.ndarray, data: np.ndarray,
                         width_bytes: int) -> None:
        """Scatter for a fused run of stores: (g, 32) addresses, (g, words, 32)
        data.  NumPy fancy assignment applies duplicate indices in C order, so
        later members of the run win -- exactly like sequential stores."""
        idx = self._batch_indices(addresses, width_bytes)
        self._words[idx] = data

    def _batch_indices(self, addresses: np.ndarray, width_bytes: int) -> np.ndarray:
        misaligned = addresses % width_bytes != 0
        if misaligned.any():
            bad = int(addresses[misaligned][0])
            raise ValueError(
                f"misaligned {width_bytes}-byte global access at {bad:#x}"
            )
        per_row_max = addresses.max(axis=1)
        per_row_min = addresses.min(axis=1)
        oob = (per_row_min < 0) | (per_row_max + width_bytes > self.size)
        if oob.any():
            row = int(np.argmax(oob))
            first = int(per_row_min[row])
            self._bounds_check(first, int(per_row_max[row]) + width_bytes - first)
        words = width_bytes // 4
        base = addresses // 4
        return base[:, None, :] + np.arange(words, dtype=np.int64)[None, :, None]

    def _word_indices(self, addresses: np.ndarray, width_bytes: int,
                      mask: np.ndarray) -> np.ndarray:
        active = addresses if mask is None else addresses[mask]
        if active.size:
            if np.any(active % width_bytes):
                bad = int(active[active % width_bytes != 0][0])
                raise ValueError(
                    f"misaligned {width_bytes}-byte global access at {bad:#x}"
                )
            last = int(active.max()) + width_bytes
            self._bounds_check(int(active.min()), last - int(active.min()))
        words = width_bytes // 4
        base = (addresses // 4).astype(np.int64)
        if mask is not None:
            # Clamp inactive lanes so indexing stays in range; they are masked out.
            base = np.where(mask, base, 0)
        return base[None, :] + np.arange(words, dtype=np.int64)[:, None]

    def _bounds_check(self, addr: int, size: int) -> None:
        if addr < 0 or addr + size > self.size:
            raise IndexError(
                f"global access [{addr:#x}, {addr + size:#x}) outside "
                f"memory of {self.size:#x} bytes"
            )


def _touched_units(active: np.ndarray, width_bytes: int, unit: int) -> list:
    """Sorted distinct ``unit``-byte block indices touched by width-byte
    accesses at the given (non-negative) byte addresses.

    Equivalent to ``np.unique(word_starts // unit)`` over every 4-byte word
    start: when a whole access spans at most two blocks (``width_bytes - 4
    <= unit``) only the end words matter.
    """
    if width_bytes - 4 <= unit:
        out = set((active // unit).tolist())
        if width_bytes > 4:
            out.update(((active + (width_bytes - 4)) // unit).tolist())
    else:
        out = set()
        for off in range(0, width_bytes, 4):
            out.update(((active + off) // unit).tolist())
    return sorted(out)


@dataclass
class AccessSummary:
    """Timing outcome of one warp-level global access."""

    level: str            # "l1", "l2" or "dram"
    sectors: int          # distinct 32-byte sectors touched
    ready_cycle: int      # cycle when the data is available to the warp


class _LruLineSet:
    """Fully-associative LRU set of cache lines (capacity in bytes).

    Recency lives in a per-line use stamp (a monotonic tick) plus a lazy
    min-heap of ``(stamp, line)`` pairs: eviction pops stale heap entries
    until one matches the live stamp, which names exactly the
    least-recently-used line -- the same choice an ordered-dict LRU makes.
    The stamp representation is *journalable*: every mutation touches only
    the stamp dict (stale heap entries are harmless and re-pushing old
    stamps is always safe), so a journal of ``(line, previous_stamp)``
    pairs can undo a burst of accesses bit-exactly.  The timing engine's
    fast-forward replay uses that to abandon a speculative loop iteration
    without copying the (possibly huge) L2 set.
    """

    def __init__(self, capacity_bytes: int, line_bytes: int):
        self.line_bytes = line_bytes
        self.capacity_lines = max(0, capacity_bytes // line_bytes)
        self._stamp: dict = {}
        self._heap: list = []
        self._tick = 0
        self._journal = None

    def lookup(self, line: int) -> bool:
        if line in self._stamp:
            self._touch(line)
            return True
        return False

    def insert(self, line: int) -> None:
        if self.capacity_lines == 0:
            return
        stamp = self._stamp
        was_present = line in stamp
        self._touch(line)
        if not was_present and len(stamp) > self.capacity_lines:
            heap = self._heap
            while True:
                t, victim = heapq.heappop(heap)
                if stamp.get(victim) == t:
                    if self._journal is not None:
                        self._journal.append((victim, t))
                    del stamp[victim]
                    break

    def _touch(self, line: int) -> None:
        stamp = self._stamp
        if self._journal is not None:
            self._journal.append((line, stamp.get(line)))
        self._tick += 1
        stamp[line] = self._tick
        heap = self._heap
        heapq.heappush(heap, (self._tick, line))
        # Lazy deletion lets stale entries pile up; rebuild occasionally so
        # the heap stays proportional to the live set.
        if len(heap) > 4 * len(stamp) + 64:
            self._heap = [(t, ln) for ln, t in stamp.items()]
            heapq.heapify(self._heap)

    def begin_journal(self) -> None:
        """Record every stamp mutation until rollback/commit."""
        self._journal = []
        self._journal_tick = self._tick

    def rollback_journal(self) -> None:
        """Undo all journaled mutations, restoring the exact LRU state."""
        stamp = self._stamp
        for line, old in reversed(self._journal):
            if old is None:
                del stamp[line]
            else:
                stamp[line] = old
                heapq.heappush(self._heap, (old, line))
        self._tick = self._journal_tick
        self._journal = None

    def commit_journal(self) -> None:
        self._journal = None

    def __len__(self) -> int:
        return len(self._stamp)


@dataclass
class TrafficCounters:
    """Byte counters the bandwidth benchmarks read out."""

    l1_hit_bytes: int = 0
    l2_hit_bytes: int = 0
    dram_bytes: int = 0
    store_bytes: int = 0

    @property
    def loaded_bytes(self) -> int:
        return self.l1_hit_bytes + self.l2_hit_bytes + self.dram_bytes


class MemorySubsystem:
    """Timing model of the global-memory path seen by one simulated SM.

    ``bandwidth_share`` scales the device-level L2/DRAM bandwidth down to
    this SM's fair share when the benchmark models a full-device launch
    (e.g. ``1 / num_sms`` when every SM streams concurrently).
    """

    L1_LINE = 128

    def __init__(self, spec: GpuSpec, bandwidth_share: float = 1.0,
                 l1_bytes: int = 32 * 1024):
        if not 0 < bandwidth_share <= 1.0:
            raise ValueError(f"bandwidth_share must be in (0, 1], got {bandwidth_share}")
        self.spec = spec
        self.l1 = _LruLineSet(l1_bytes, self.L1_LINE)
        self.l2 = _LruLineSet(spec.l2_bytes, spec.l2_sector_bytes)
        def bytes_per_cycle(gbps):
            # GB/s / (Gcycle/s) = bytes/cycle.
            return gbps * bandwidth_share / (spec.clock_ghz)

        self._l2_bpc = bytes_per_cycle(spec.l2_measured_gbps)
        self._dram_bpc = bytes_per_cycle(spec.dram_measured_gbps)
        self._l2_free = 0.0
        self._dram_free = 0.0
        self.counters = TrafficCounters()

    def access(self, cycle: int, addresses: np.ndarray, width_bytes: int,
               mask: np.ndarray, is_store: bool = False,
               bypass_l1: bool = False) -> AccessSummary:
        """Account one warp access and return where/when it was served."""
        active = addresses[mask]
        if active.size == 0:
            return AccessSummary(level="l1", sectors=0, ready_cycle=cycle)

        sector = self.spec.l2_sector_bytes
        sector_list = _touched_units(active, width_bytes, sector)
        nbytes = len(sector_list) * sector
        # Every touched L1 line contains a touched sector, so the line set
        # comes from the (much smaller) sector set when the sizes nest.
        if self.L1_LINE % sector == 0:
            ratio = self.L1_LINE // sector
            line_list = sorted({q // ratio for q in sector_list})
        else:
            line_list = _touched_units(active, width_bytes, self.L1_LINE)

        if is_store:
            # Write-through accounting: stores consume DRAM write bandwidth.
            self.counters.store_bytes += nbytes
            if not bypass_l1:
                for line in line_list:
                    self.l1.insert(line)
            for s in sector_list:
                self.l2.insert(s)
            ready = self._serve(cycle, nbytes, dram=True)
            return AccessSummary(level="dram", sectors=len(sector_list), ready_cycle=ready)

        if not bypass_l1 and all(self.l1.lookup(line) for line in line_list):
            self.counters.l1_hit_bytes += nbytes
            return AccessSummary(
                level="l1",
                sectors=len(sector_list),
                ready_cycle=cycle + self.spec.lds_latency_cycles,
            )

        l2_hit = all(self.l2.lookup(s) for s in sector_list)
        for s in sector_list:
            self.l2.insert(s)
        if not bypass_l1:
            for line in line_list:
                self.l1.insert(line)

        if l2_hit:
            self.counters.l2_hit_bytes += nbytes
            ready = self._serve(cycle, nbytes, dram=False)
            level = "l2"
        else:
            self.counters.dram_bytes += nbytes
            ready = self._serve(cycle, nbytes, dram=True)
            level = "dram"
        return AccessSummary(level=level, sectors=len(sector_list), ready_cycle=ready)

    def begin_journal(self) -> None:
        """Record all timing-state mutations (LRU stamps, byte counters,
        port free-cycles) until rollback or commit."""
        self.l1.begin_journal()
        self.l2.begin_journal()
        c = self.counters
        self._journal_scalars = (self._l2_free, self._dram_free,
                                 c.l1_hit_bytes, c.l2_hit_bytes,
                                 c.dram_bytes, c.store_bytes)

    def rollback_journal(self) -> None:
        """Undo every access since :meth:`begin_journal`, bit-exactly."""
        self.l1.rollback_journal()
        self.l2.rollback_journal()
        c = self.counters
        (self._l2_free, self._dram_free, c.l1_hit_bytes, c.l2_hit_bytes,
         c.dram_bytes, c.store_bytes) = self._journal_scalars

    def commit_journal(self) -> None:
        self.l1.commit_journal()
        self.l2.commit_journal()

    def _serve(self, cycle: int, nbytes: int, dram: bool) -> int:
        base_latency = self.spec.ldg_latency_cycles
        if dram:
            start = max(cycle, self._dram_free)
            self._dram_free = start + nbytes / self._dram_bpc
            return int(self._dram_free) + base_latency
        start = max(cycle, self._l2_free)
        self._l2_free = start + nbytes / self._l2_bpc
        return int(self._l2_free) + base_latency // 2
