"""Predecoded execution engine for the functional simulator.

The reference interpreter (:func:`repro.sim.exec_units.execute`) re-examines
every ``Instruction`` each time it retires: operand descriptors evaluated
afresh, fresh ``np.full`` immediates, and an ``Effects`` record that the
caller then unpacks.  For a GEMM that retires the same few hundred
instructions thousands of times, almost all of that work is loop-invariant.

:func:`predecode` moves it to launch time.  Every slot's semantics come from
the µop table (:mod:`repro.sim.uop`): ``decode_uop`` yields the operand
descriptors, lane kernel and dependence sets once, and this module merely
*compiles* them -- descriptors become bound row readers, the kernel is
called directly, and the scheduler metadata drives window fusion.  There is
no per-opcode lane math here.

Each program slot becomes one closure with its register indices, immediates,
predicate slot and kernel resolved once; executing an instruction is then a
single call that reads and writes the warp's register file directly.  A
closure returns the control signal for the interval loop in
:mod:`repro.sim.functional`:

* ``None`` -- fall through to the slot's precomputed ``next_pc``;
* an ``int >= 0`` -- branch to that slot;
* :data:`EXITED` / :data:`BARRIER` -- the warp exits / arrives at a barrier;
* :data:`DIVERGED` -- (stacked decodings only, see below) the warps of a CTA
  stopped agreeing and lockstep execution must de-stack.

``predecode(program, lanes)`` compiles for any lane count: the default 32
serves one warp, while the lockstep engine passes ``n_warps * 32`` so every
closure operates on all of a CTA's warps as one stacked array.  Stacked
closures must be warp-uniform; wherever per-warp behaviour could differ
(partial predicates, divergent branches, reference-only paths) the closure
returns :data:`DIVERGED` *before* mutating any state, and the caller falls
back to per-warp interleaving.

On top of the per-slot closures, maximal runs of consecutive independent
same-shape instructions (HMMA/IMMA, LDS/LDG, STS/STG, MOV, IADD3/IMAD --
the inner loops of the generated kernels) are fused into *batched* closures
that execute the whole run with warp-wide NumPy gathers and scatters.
Fusion is only applied when no instruction in the run reads or overwrites a
register written earlier in the run, so gather-all-then-scatter-all is
order-equivalent to sequential execution; branches into the middle of a
fused run still work because every member slot keeps its individual closure.

Bit-exactness contract: every fast path runs the same lane kernels as the
reference executor -- integer ops wrap modulo 2**32 either way, permutation
gathers reorder but never transform values, and the per-HMMA ``(16, 8) @
(8, 8)`` float32 matmuls are kept as individual 2-D products (only their
fragment gathers and the accumulate/round stages are batched) so the BLAS
dispatch and rounding sequence match the reference exactly.  The golden
tests in ``tests/sim/test_golden_functional.py`` and the differential fuzz
suite in ``tests/sim/test_uop_differential.py`` pin this equivalence.
"""

from __future__ import annotations

import weakref

import numpy as np

from ..arch.registers import WARP_LANES
from ..hmma import mma as mma_ops
from ..isa.operands import SpecialReg, PT_INDEX, RZ_INDEX
from .exec_units import ExecError, execute
from .uop import (
    MEM_GLOBAL as _MEM_GLOBAL,
    MEM_SHARED as _MEM_SHARED,
    MMA_BATCH_KERNELS,
    SOLO,
    decode_uop,
    k_iadd3,
    k_imad,
)

__all__ = ["BARRIER", "DIVERGED", "EXITED", "DecodedProgram", "predecode"]

#: Control signals returned by decoded-op closures (negative so that any
#: non-negative return value can be a branch-target slot).
EXITED = -1
BARRIER = -2
#: Stacked (multi-warp) closures return this -- before touching any state --
#: when the CTA's warps stop agreeing and must be executed per warp.
DIVERGED = -3

_MEM_TOKENS = frozenset((_MEM_GLOBAL, _MEM_SHARED))

#: Marker key for schedulable-but-not-batchable slots: they join a window as
#: single-member groups (keeping it unbroken) and run their own closure.
_SOLO = None


class DecodedProgram:
    """Slot-indexed decoded form of one :class:`~repro.isa.program.Program`.

    Parallel lists, indexed by slot (= instruction index):

    * ``run_fns`` -- the closure executing the slot;
    * ``next_pc`` -- fall-through successor (``pc + 1``, or ``pc + g`` for a
      fused run of ``g`` instructions);
    * ``lens`` -- instructions retired per execution (``g`` for fused runs);
    * ``reads_clock`` -- slot reads ``SR_CLOCKLO/HI``, so the interval loop
      must sync ``warp.retired`` before calling it;
    * ``slot_ops`` -- tuple of ``(opcode, count)`` pairs retired per
      execution (several pairs for a fused window), used by
      :meth:`accumulate` to expand per-slot execution counters into the
      per-opcode retire counts of a :class:`FunctionalResult`.

    ``lanes`` records the lane count the closures were compiled for (32 for
    one warp; ``n_warps * 32`` for a lockstep stacking).
    """

    __slots__ = ("n", "run_fns", "next_pc", "lens", "reads_clock",
                 "slot_ops", "lanes")

    def __init__(self, n, run_fns, next_pc, lens, reads_clock, slot_ops,
                 lanes=WARP_LANES):
        self.n = n
        self.run_fns = run_fns
        self.next_pc = next_pc
        self.lens = lens
        self.reads_clock = reads_clock
        self.slot_ops = slot_ops
        self.lanes = lanes

    def new_counts(self) -> list:
        """Fresh per-slot execution counters for one launch."""
        return [0] * self.n

    def accumulate(self, counts, result) -> None:
        """Fold per-slot execution *counts* into *result* (a FunctionalResult)."""
        opcode_counts = result.opcode_counts
        total = 0
        for slot, executed in enumerate(counts):
            if not executed:
                continue
            for opcode, per_exec in self.slot_ops[slot]:
                retired = executed * per_exec
                total += retired
                opcode_counts[opcode] = opcode_counts.get(opcode, 0) + retired
        result.instructions_retired += total


# ----------------------------------------------------- descriptor compilation

def _frozen(arr):
    arr.setflags(write=False)
    return arr


def _special_getter(name, lanes):
    """fn(warp) -> (lanes,) array for a special register, or None."""
    if name == "SR_TID.X":
        return lambda warp: warp.tid
    if name in ("SR_TID.Y", "SR_TID.Z", "SRZ"):
        zeros = _frozen(np.zeros(lanes, dtype=np.uint32))
        return lambda warp: zeros
    if name == "SR_CTAID.X":
        return lambda warp: np.full(lanes, warp.ctaid[0], dtype=np.uint32)
    if name == "SR_CTAID.Y":
        return lambda warp: np.full(lanes, warp.ctaid[1], dtype=np.uint32)
    if name == "SR_CTAID.Z":
        return lambda warp: np.full(lanes, warp.ctaid[2], dtype=np.uint32)
    if name == "SR_LANEID":
        return lambda warp: warp.lane_ids
    if name == "SR_CLOCKLO":
        return lambda warp: np.full(
            lanes, warp.retired & 0xFFFFFFFF, dtype=np.uint32)
    if name == "SR_CLOCKHI":
        return lambda warp: np.full(
            lanes, (warp.retired >> 32) & 0xFFFFFFFF, dtype=np.uint32)
    return None


def _make_reader(desc, lanes):
    """Compile one µop source descriptor to fn(warp) -> array, or None."""
    kind = desc[0]
    if kind == "reg":
        index = desc[1]
        if index == RZ_INDEX:
            zeros = _frozen(np.zeros(lanes, dtype=np.uint32))
            return lambda warp: zeros
        return lambda warp: warp.regs._data[index]
    if kind == "reg_i32":
        index = desc[1]
        if index == RZ_INDEX:
            zeros = _frozen(np.zeros(lanes, dtype=np.int32))
            return lambda warp: zeros
        return lambda warp: warp.regs._data[index].view(np.int32)
    if kind == "regs":
        index, count = desc[1], desc[2]
        return lambda warp: warp.regs._data[index:index + count]
    if kind == "imm":
        const = _frozen(np.full(lanes, desc[1], dtype=np.uint32))
        return lambda warp: const
    if kind == "imm_i32":
        const = np.full(lanes, desc[1], dtype=np.uint32).view(np.int32)
        const.setflags(write=False)
        return lambda warp: const
    if kind == "pred":
        index, negated = desc[1], desc[2]
        if negated:
            return lambda warp: ~warp.preds._data[index]
        return lambda warp: warp.preds._data[index]
    return _special_getter(desc[1], lanes)   # ("sr", ...) / ("sr_i32", ...)


def _compile_alu(uop, lanes):
    # Special-register sources feed lane kernels through the reference path
    # only (their getters may return non-uint32 lane indices); the identity
    # move (kernel None) assigns them directly, which casts.
    if uop.kernel is not None and any(
            d[0] in ("sr", "sr_i32") for d in uop.srcs):
        return None
    readers = []
    for desc in uop.srcs:
        reader = _make_reader(desc, lanes)
        if reader is None:
            return None
        if desc[0] == "sr_i32":
            getter = reader
            reader = (lambda warp, _g=getter: _g(warp).view(np.int32))
        readers.append(reader)
    kernel = uop.kernel
    dest = uop.dest
    if dest[0] == "pred":
        di = dest[1]
        if di == PT_INDEX:
            return lambda warp: None  # writes to PT are discarded
        r0, r1, r2 = readers

        def run(warp):
            warp.preds._data[di] = kernel(r0(warp), r1(warp), r2(warp))
        return run
    d, words = dest[1], dest[2]
    if kernel is None:
        (r0,) = readers

        def run(warp):
            warp.regs._data[d] = r0(warp)
        return run
    if words > 1:
        r0, r1, r2 = readers

        def run(warp):
            warp.regs._data[d:d + words] = kernel(r0(warp), r1(warp), r2(warp))
        return run
    if len(readers) == 2:
        r0, r1 = readers

        def run(warp):
            warp.regs._data[d] = kernel(r0(warp), r1(warp))
        return run
    if len(readers) == 3:
        r0, r1, r2 = readers

        def run(warp):
            warp.regs._data[d] = kernel(r0(warp), r1(warp), r2(warp))
        return run

    def run(warp):
        warp.regs._data[d] = kernel(*[r(warp) for r in readers])
    return run


def _compile_mem(uop, lanes):
    mem = uop.mem
    mem_attr = "global_mem" if mem.space == "global" else "shared_mem"
    width = mem.width
    words = mem.words
    offset = mem.offset
    if mem.is_store:
        si = mem.reg
        if mem.base_index == RZ_INDEX:
            const_addresses = _frozen(np.full(lanes, offset, dtype=np.int64))

            def run(warp):
                getattr(warp, mem_attr).store_warp(
                    const_addresses, warp.regs._data[si:si + words], width, None)
        else:
            bi = mem.base_index

            def run(warp):
                addresses = warp.regs._data[bi].astype(np.int64) + offset
                getattr(warp, mem_attr).store_warp(
                    addresses, warp.regs._data[si:si + words], width, None)
        return run
    dest = uop.dest[1]
    if mem.base_index == RZ_INDEX:
        const_addresses = _frozen(np.full(lanes, offset, dtype=np.int64))

        def run(warp):
            data = getattr(warp, mem_attr).load_warp(const_addresses, width, None)
            warp.regs._data[dest:dest + words] = data
    else:
        bi = mem.base_index

        def run(warp):
            addresses = warp.regs._data[bi].astype(np.int64) + offset
            data = getattr(warp, mem_attr).load_warp(addresses, width, None)
            warp.regs._data[dest:dest + words] = data
    return run


def _compile_uop(uop, lanes):
    """Fast closure for *uop* at *lanes*, or None (-> reference path)."""
    if not uop.groups_ok:
        return None
    if uop.lanes32_only and lanes != WARP_LANES:
        return None
    if uop.kind == "alu":
        return _compile_alu(uop, lanes)
    if uop.kind in ("load", "store"):
        return _compile_mem(uop, lanes)
    return None


def _reads_clock(inst) -> bool:
    return any(isinstance(op, SpecialReg) and op.name in ("SR_CLOCKLO", "SR_CLOCKHI")
               for op in inst.srcs)


# -------------------------------------------------------- control + fallback

def _build_exit(inst, lanes):
    if inst.pred is None:
        return lambda warp: EXITED
    pi, negated = inst.pred.index, inst.pred.negated
    if lanes != WARP_LANES:
        # Stacked: a partial predicate may still be warp-uniform per warp --
        # de-stack and let per-warp execution sort it out.
        if negated:
            def run(warp):
                active = warp.preds._data[pi]
                if not active.any():
                    return EXITED
                if active.all():
                    return None
                return DIVERGED
        else:
            def run(warp):
                active = warp.preds._data[pi]
                if active.all():
                    return EXITED
                if not active.any():
                    return None
                return DIVERGED
        return run
    if negated:
        def run(warp):
            return EXITED if not warp.preds._data[pi].any() else None
    else:
        def run(warp):
            return EXITED if warp.preds._data[pi].all() else None
    return run


def _build_bra(inst, lanes):
    target = inst.target_index
    if inst.pred is None:
        if target is None:
            return lambda warp: None  # unresolved target falls through
        return lambda warp: target
    pi, negated = inst.pred.index, inst.pred.negated
    if lanes != WARP_LANES:
        if negated:
            def run(warp):
                active = warp.preds._data[pi]
                if not active.any():
                    return target
                if active.all():
                    return None
                return DIVERGED
        else:
            def run(warp):
                active = warp.preds._data[pi]
                if active.all():
                    return target
                if not active.any():
                    return None
                return DIVERGED
        return run
    if negated:
        def run(warp):
            active = warp.preds._data[pi]
            if not active.any():
                return target
            if active.all():
                return None
            raise ExecError(
                "divergent branch: this subset requires warp-uniform branch "
                f"predicates ({int(WARP_LANES - active.sum())}/32 lanes taken)")
    else:
        def run(warp):
            active = warp.preds._data[pi]
            if active.all():
                return target
            if not active.any():
                return None
            raise ExecError(
                "divergent branch: this subset requires warp-uniform branch "
                f"predicates ({int(active.sum())}/32 lanes taken)")
    return run


def _build_generic(inst, lanes):
    """Exact reference semantics: evaluate through ``execute`` and apply the
    Effects the same way the reference interval loop does.  Reference
    contexts are 32-lane, so stacked decodings de-stack instead."""
    if lanes != WARP_LANES:
        return lambda warp: DIVERGED

    def run(warp):
        eff = execute(inst, warp)
        for first_reg, values, mask in eff.reg_writes:
            warp.regs.write_group(
                first_reg, values, mask=None if mask.all() else mask)
        for index, values, mask in eff.pred_writes:
            warp.preds.write(index, values, mask=None if mask.all() else mask)
        if eff.exited:
            return EXITED
        if eff.branch_target is not None:
            return eff.branch_target
        if eff.barrier:
            return BARRIER
        return None
    return run


def _guarded(fast, generic, pred):
    """Predicate wrapper: all lanes on -> fast path; all off -> retire as a
    no-op; partial -> the reference path (which owns masked semantics; on a
    stacked decoding it returns :data:`DIVERGED` instead)."""
    pi, negated = pred.index, pred.negated
    if negated:
        def run(warp):
            active = warp.preds._data[pi]
            if not active.any():
                return fast(warp)
            if active.all():
                return None
            return generic(warp)
    else:
        def run(warp):
            active = warp.preds._data[pi]
            if active.all():
                return fast(warp)
            if not active.any():
                return None
            return generic(warp)
    return run


def _decode_one(inst, lanes):
    """-> (closure, fusible): *fusible* marks an unpredicated slot whose
    closure is a pure fast path (safe as a silent member of a composite
    window, whose parts' return values are ignored)."""
    opcode = inst.opcode
    if opcode == "EXIT":
        return _build_exit(inst, lanes), False
    if opcode == "BAR":
        return (lambda warp: BARRIER), False  # arrives regardless of predication
    if opcode == "BRA":
        return _build_bra(inst, lanes), False
    if opcode == "NOP":
        return (lambda warp: None), inst.pred is None
    generic = _build_generic(inst, lanes)
    try:
        uop = decode_uop(inst)
    except Exception:
        return generic, False  # malformed: the reference path raises at exec
    fast = _compile_uop(uop, lanes)
    if fast is None:
        return generic, False
    if inst.pred is None:
        return fast, True
    return _guarded(fast, generic, inst.pred), False


# -------------------------------------------------------------- fusion layer
#
# Generated kernels software-pipeline their inner loops (LDS and HMMA
# interleave 1:1), so batching only *consecutive* same-opcode runs would fuse
# almost nothing.  Instead, predecode finds maximal straight-line *windows*
# of schedulable slots and list-schedules each one: instructions with the
# same fusion key collect into a batch, reordered across unrelated neighbours
# when the dependence check proves the reorder is observation-equivalent.
#
# Keys, payloads and dependence sets all come from the µop table; this layer
# only groups them.  Dependence sets contain GPR indices (ints), predicate
# tokens ``("p", i)`` and whole-space memory tokens (loads read / stores
# write their space -- exact aliasing is unknown statically, so a space is
# one location).  Reads of RZ batch as gathers of register-file row 255,
# which stays all-zero because writes to RZ are discarded.

def _fuse_entry(inst, fusible):
    """(key, reads, writes, payload) when *inst* can join a fused window."""
    if not fusible or inst.pred is not None:
        return None
    try:
        uop = decode_uop(inst)
    except Exception:
        return None
    if uop.reads_clock or not uop.groups_ok or uop.fuse_key is None:
        return None
    key = _SOLO if uop.fuse_key == SOLO else uop.fuse_key
    return key, uop.reads, uop.writes, uop.fuse_payload


def _build_hmma_group(key, payloads):
    if key[1] in ("f16", "f32"):
        # Turing HMMA.1688: in-place fused-window executor -- composed
        # flat-index gathers straight from the register file,
        # unique-fragment dedup, one scatter for D (see hmma_1688_window
        # for the strategy and its size-capped fallback).
        window = mma_ops.hmma_1688_window(
            [p[0] for p in payloads], [p[1] for p in payloads],
            [p[2] for p in payloads], [p[3] for p in payloads],
            f32=key[1] == "f32")

        def run(warp):
            window(warp.regs._data)
        return run
    # Other generations (HMMA.884 / HMMA.16816): generic row-gather over
    # the arch's batch kernel from the shared MMA_BATCH_KERNELS table.
    return _build_mma_group(key, payloads)


def _mma_row_index(payloads, col, words):
    base = np.array([p[col] for p in payloads], dtype=np.intp)
    if words == 1:
        return base
    return base[:, None] + np.arange(words, dtype=np.intp)


def _build_mma_group(key, payloads):
    """Generic batched MMA executor: gather operand register rows, run the
    fuse key's batch kernel, scatter D -- the shape-agnostic core every
    non-1688 tensor op (IMMA.8816, HMMA.884, HMMA.16816) compiles to."""
    batch_fn, a_words, b_words, c_words = MMA_BATCH_KERNELS[key]
    d_idx = _mma_row_index(payloads, 0, c_words)
    a_idx = _mma_row_index(payloads, 1, a_words)
    b_idx = _mma_row_index(payloads, 2, b_words)
    c_idx = _mma_row_index(payloads, 3, c_words)

    def run(warp):
        regs = warp.regs._data
        regs[d_idx] = batch_fn(regs[a_idx], regs[b_idx], regs[c_idx])
    return run


def _build_mem_group(key, payloads):
    _, opcode, width = key
    is_store = opcode in ("STS", "STG")
    mem_attr = "global_mem" if opcode in ("LDG", "STG") else "shared_mem"
    g = len(payloads)
    words = width // 4
    reg_idx = np.array([[p[0] + i for i in range(words)] for p in payloads],
                       dtype=np.intp)
    base_idx = np.array([p[1] for p in payloads], dtype=np.intp)
    offsets = np.array([p[2] for p in payloads], dtype=np.int64).reshape(g, 1)

    if is_store:
        def run(warp):
            regs = warp.regs._data
            addresses = regs[base_idx].astype(np.int64) + offsets
            getattr(warp, mem_attr).store_warp_batch(addresses, regs[reg_idx], width)
    else:
        def run(warp):
            regs = warp.regs._data
            addresses = regs[base_idx].astype(np.int64) + offsets
            regs[reg_idx] = getattr(warp, mem_attr).load_warp_batch(addresses, width)
    return run


def _build_mov_group(key, payloads):
    d_idx = np.array([p[0] for p in payloads], dtype=np.intp)
    if key[1] == "r":
        s_idx = np.array([p[1] for p in payloads], dtype=np.intp)

        def run(warp):
            regs = warp.regs._data
            regs[d_idx] = regs[s_idx]
    else:
        values = _frozen(
            np.array([p[1] for p in payloads], dtype=np.uint32).reshape(-1, 1))

        def run(warp):
            warp.regs._data[d_idx] = values
    return run


def _group_terms(key, payloads):
    """Per-source-position batched term arrays for IADD3/IMAD groups."""
    signature = key[1]
    terms = []
    for pos, kind in enumerate(signature):
        if kind == "r":
            terms.append(("r", np.array([p[1][pos] for p in payloads],
                                        dtype=np.intp)))
        else:
            col = _frozen(np.array([p[1][pos] for p in payloads],
                                   dtype=np.uint32).reshape(-1, 1))
            terms.append(("i", col))
    return terms


def _build_iadd3_group(key, payloads):
    d_idx = np.array([p[0] for p in payloads], dtype=np.intp)
    terms = _group_terms(key, payloads)

    def run(warp):
        regs = warp.regs._data
        regs[d_idx] = k_iadd3(
            *[regs[arr] if kind == "r" else arr for kind, arr in terms])
    return run


def _build_imad_group(key, payloads):
    d_idx = np.array([p[0] for p in payloads], dtype=np.intp)
    (ka, ta), (kb, tb), (kc, tc) = _group_terms(key, payloads)

    def run(warp):
        regs = warp.regs._data
        regs[d_idx] = k_imad(regs[ta] if ka == "r" else ta,
                             regs[tb] if kb == "r" else tb,
                             regs[tc] if kc == "r" else tc)
    return run


_GROUP_BUILDERS = {
    "hmma": _build_hmma_group,
    "imma": _build_mma_group,
    "load": _build_mem_group,
    "store": _build_mem_group,
    "mov": _build_mov_group,
    "iadd3": _build_iadd3_group,
    "imad": _build_imad_group,
}


# ----------------------------------------------------------- window scheduler

class _Group:
    """One batch being assembled while scheduling a window."""

    __slots__ = ("key", "reads", "writes", "payloads", "slots")

    def __init__(self, key, reads, writes, payload, slot):
        self.key = key
        self.reads = set(reads)
        self.writes = set(writes)
        self.payloads = [payload]
        self.slots = [slot]


def _schedule_window(fuse, start, end):
    """List-schedule slots [start, end) into ordered groups.

    Groups execute in first-appearance order, members in original order.
    Instruction *j* may join the open group of its key only when the move is
    observation-equivalent: *j* must not depend on -- nor be depended on by --
    any member of a group scheduled after its own (those members originally
    precede *j* but will execute after it), and within its own group *j* must
    not read or overwrite anything the group already writes (the batch
    gathers every operand before it scatters any result).  Stores batch over
    their whole-space memory token: duplicate scatter indices resolve last-
    wins in member order, matching sequential stores exactly.
    """
    groups = []
    open_group = {}  # key -> index of the newest group with that key
    for slot in range(start, end):
        key, reads, writes, payload = fuse[slot]
        placed = False
        gi = open_group.get(key) if key is not _SOLO else None
        if gi is not None:
            group = groups[gi]
            own_writes = group.writes - _MEM_TOKENS
            if not ((reads - _MEM_TOKENS) & own_writes
                    or (writes - _MEM_TOKENS) & own_writes):
                ok = True
                for later in groups[gi + 1:]:
                    if (writes & later.reads or writes & later.writes
                            or reads & later.writes):
                        ok = False
                        break
                if ok:
                    group.reads |= reads
                    group.writes |= writes
                    group.payloads.append(payload)
                    group.slots.append(slot)
                    placed = True
        if not placed:
            groups.append(_Group(key, reads, writes, payload, slot))
            if key is not _SOLO:
                open_group[key] = len(groups) - 1
    return groups


# ---------------------------------------------------------------- predecode

#: Cross-run decode cache: id(program) -> (weakref, {lanes: DecodedProgram}).
#: Held *outside* the Program object so programs stay picklable for the
#: CTA-parallel worker path, keyed by identity because Program's dataclass
#: equality makes it unhashable; the weakref callback evicts the entry when
#: the program dies, so a recycled id can never alias.  Decoded programs are
#: stateless across runs (per-run opcode counters live in the caller), so
#: reuse is safe; the paper's figure sweeps replay one kernel thousands of
#: times, which is exactly the case this amortises.
_PREDECODE_CACHE: dict = {}


def predecode(program, lanes: int = WARP_LANES) -> DecodedProgram:
    """Decode *program* once into slot-indexed closures plus fused windows.

    ``lanes`` selects the lane count the closures operate on: 32 (default)
    for per-warp execution, ``n_warps * 32`` for the lockstep engine and
    ``n_ctas * n_warps * 32`` for the grid-lockstep engine.  Results are
    memoised per (program, lanes); repeated runs of one kernel skip decode.
    """
    key = id(program)
    entry = _PREDECODE_CACHE.get(key)
    if entry is None or entry[0]() is not program:
        ref = weakref.ref(
            program, lambda _ref, _key=key: _PREDECODE_CACHE.pop(_key, None))
        entry = _PREDECODE_CACHE[key] = (ref, {})
    hit = entry[1].get(lanes)
    if hit is not None:
        return hit
    decoded = entry[1][lanes] = _predecode_uncached(program, lanes)
    return decoded


def _predecode_uncached(program, lanes: int) -> DecodedProgram:
    n = len(program)
    instructions = [program[pc] for pc in range(n)]
    run_fns = []
    fusible = []
    for inst in instructions:
        fn, fu = _decode_one(inst, lanes)
        run_fns.append(fn)
        fusible.append(fu)
    next_pc = [pc + 1 for pc in range(n)]
    lens = [1] * n
    reads_clock = [_reads_clock(inst) for inst in instructions]
    slot_ops = [((inst.opcode, 1),) for inst in instructions]
    fuse = [_fuse_entry(instructions[pc], fusible[pc]) for pc in range(n)]

    start = 0
    while start < n:
        if fuse[start] is None:
            start += 1
            continue
        end = start
        while end < n and fuse[end] is not None:
            end += 1
        _install_window(instructions, run_fns, next_pc, lens, slot_ops,
                        fuse, start, end)
        start = end

    return DecodedProgram(n, run_fns, next_pc, lens, reads_clock, slot_ops,
                          lanes)


def _install_window(instructions, run_fns, next_pc, lens, slot_ops,
                    fuse, start, end) -> None:
    """Fuse window [start, end) into one composite closure at *start*.

    Member slots keep their individual closures so branches into the middle
    of a window still execute exactly.
    """
    if end - start < 2:
        return
    groups = _schedule_window(fuse, start, end)
    if not any(g.key is not _SOLO and len(g.payloads) >= 2 for g in groups):
        return  # nothing batched; composition would only add indirection
    parts = []
    for group in groups:
        if group.key is not _SOLO and len(group.payloads) >= 2:
            parts.append(_GROUP_BUILDERS[group.key[0]](group.key, group.payloads))
        else:
            parts.extend(run_fns[slot] for slot in group.slots)

    def run(warp, _parts=tuple(parts)):
        for part in _parts:
            part(warp)

    ops = []
    for slot in range(start, end):
        opcode = instructions[slot].opcode
        if ops and ops[-1][0] == opcode:
            ops[-1] = (opcode, ops[-1][1] + 1)
        else:
            ops.append((opcode, 1))
    run_fns[start] = run
    next_pc[start] = end
    lens[start] = end - start
    slot_ops[start] = tuple(ops)
