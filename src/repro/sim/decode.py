"""Predecoded execution engine for the functional simulator.

The reference interpreter (:func:`repro.sim.exec_units.execute`) re-examines
every ``Instruction`` each time it retires: a dict dispatch on the opcode,
``isinstance`` checks on every operand, fresh ``np.full`` immediates, and an
``Effects`` record that the caller then unpacks.  For a GEMM that retires the
same few hundred instructions thousands of times, almost all of that work is
loop-invariant.

:func:`predecode` moves it to launch time.  Each program slot becomes one
closure with its register indices, immediates, predicate slot and handler
resolved once; executing an instruction is then a single call that reads and
writes the warp's register file directly.  A closure returns the control
signal for the interval loop in :mod:`repro.sim.functional`:

* ``None`` -- fall through to the slot's precomputed ``next_pc``;
* an ``int >= 0`` -- branch to that slot;
* :data:`EXITED` / :data:`BARRIER` -- the warp exits / arrives at a barrier.

On top of the per-slot closures, maximal runs of consecutive independent
same-shape instructions (HMMA, LDS/LDG, STS/STG, MOV, IADD3/IMAD -- the inner
loops of the generated kernels) are fused into *batched* closures that execute
the whole run with warp-wide NumPy gathers and scatters.  Fusion is only
applied when no instruction in the run reads or overwrites a register written
earlier in the run, so gather-all-then-scatter-all is order-equivalent to
sequential execution; branches into the middle of a fused run still work
because every member slot keeps its individual closure.

Bit-exactness contract: every fast path performs the same element-wise
arithmetic as the reference executor -- integer ops wrap modulo 2**32 either
way, permutation gathers reorder but never transform values, and the per-HMMA
``(16, 8) @ (8, 8)`` float32 matmuls are kept as individual 2-D products (only
their fragment gathers and the accumulate/round stages are batched) so the
BLAS dispatch and rounding sequence match the reference exactly.  The golden
tests in ``tests/sim/test_golden_functional.py`` pin this equivalence.
"""

from __future__ import annotations

import numpy as np

from ..arch.registers import WARP_LANES
from ..hmma import fragments as frag
from ..hmma import mma as mma_ops
from ..hmma.fp16 import pack_half2, unpack_half2
from ..hmma.int8 import imma_8816
from ..isa.operands import Imm, MemRef, Pred, Reg, SpecialReg, PT_INDEX, RZ_INDEX
from .exec_units import _CMPS, ExecError, execute

__all__ = ["BARRIER", "EXITED", "DecodedProgram", "predecode"]

#: Control signals returned by decoded-op closures (negative so that any
#: non-negative return value can be a branch-target slot).
EXITED = -1
BARRIER = -2

# Shared read-only constants; closures must never mutate reader results.
_ZEROS_U32 = np.zeros(WARP_LANES, dtype=np.uint32)
_ZEROS_U32.setflags(write=False)
_ZEROS_I32 = np.zeros(WARP_LANES, dtype=np.int32)
_ZEROS_I32.setflags(write=False)


class DecodedProgram:
    """Slot-indexed decoded form of one :class:`~repro.isa.program.Program`.

    Parallel lists, indexed by slot (= instruction index):

    * ``run_fns`` -- the closure executing the slot;
    * ``next_pc`` -- fall-through successor (``pc + 1``, or ``pc + g`` for a
      fused run of ``g`` instructions);
    * ``lens`` -- instructions retired per execution (``g`` for fused runs);
    * ``reads_clock`` -- slot reads ``SR_CLOCKLO/HI``, so the interval loop
      must sync ``warp.retired`` before calling it;
    * ``slot_ops`` -- tuple of ``(opcode, count)`` pairs retired per
      execution (several pairs for a fused window), used by
      :meth:`accumulate` to expand per-slot execution counters into the
      per-opcode retire counts of a :class:`FunctionalResult`.
    """

    __slots__ = ("n", "run_fns", "next_pc", "lens", "reads_clock", "slot_ops")

    def __init__(self, n, run_fns, next_pc, lens, reads_clock, slot_ops):
        self.n = n
        self.run_fns = run_fns
        self.next_pc = next_pc
        self.lens = lens
        self.reads_clock = reads_clock
        self.slot_ops = slot_ops

    def new_counts(self) -> list:
        """Fresh per-slot execution counters for one launch."""
        return [0] * self.n

    def accumulate(self, counts, result) -> None:
        """Fold per-slot execution *counts* into *result* (a FunctionalResult)."""
        opcode_counts = result.opcode_counts
        total = 0
        for slot, executed in enumerate(counts):
            if not executed:
                continue
            for opcode, per_exec in self.slot_ops[slot]:
                retired = executed * per_exec
                total += retired
                opcode_counts[opcode] = opcode_counts.get(opcode, 0) + retired
        result.instructions_retired += total


# ----------------------------------------------------------- operand readers

def _val_getter(operand):
    """fn(warp) -> (32,) uint32 for a Reg / Imm source, or None."""
    if isinstance(operand, Reg):
        if operand.is_rz:
            return lambda warp: _ZEROS_U32
        index = operand.index
        return lambda warp: warp.regs._data[index]
    if isinstance(operand, Imm):
        const = np.full(WARP_LANES, operand.unsigned, dtype=np.uint32)
        const.setflags(write=False)
        return lambda warp: const
    return None


def _val_getter_i32(operand):
    """Signed view of :func:`_val_getter`; int32 compares match the
    reference's sign-extended int64 compares for every 32-bit pattern."""
    if isinstance(operand, Reg):
        if operand.is_rz:
            return lambda warp: _ZEROS_I32
        index = operand.index
        return lambda warp: warp.regs._data[index].view(np.int32)
    if isinstance(operand, Imm):
        const = np.full(WARP_LANES, operand.unsigned, dtype=np.uint32).view(np.int32)
        const.setflags(write=False)
        return lambda warp: const
    return None


def _special_getter(operand):
    """fn(warp) -> (32,) uint32 for a SpecialReg source, or None."""
    name = operand.name
    if name == "SR_TID.X":
        return lambda warp: warp.tid
    if name in ("SR_TID.Y", "SR_TID.Z", "SRZ"):
        return lambda warp: _ZEROS_U32
    if name == "SR_CTAID.X":
        return lambda warp: np.full(WARP_LANES, warp.ctaid[0], dtype=np.uint32)
    if name == "SR_CTAID.Y":
        return lambda warp: np.full(WARP_LANES, warp.ctaid[1], dtype=np.uint32)
    if name == "SR_CTAID.Z":
        return lambda warp: np.full(WARP_LANES, warp.ctaid[2], dtype=np.uint32)
    if name == "SR_LANEID":
        return lambda warp: warp.lane_ids
    if name == "SR_CLOCKLO":
        return lambda warp: np.full(
            WARP_LANES, warp.retired & 0xFFFFFFFF, dtype=np.uint32)
    if name == "SR_CLOCKHI":
        return lambda warp: np.full(
            WARP_LANES, (warp.retired >> 32) & 0xFFFFFFFF, dtype=np.uint32)
    return None


def _reads_clock(inst) -> bool:
    return any(isinstance(op, SpecialReg) and op.name in ("SR_CLOCKLO", "SR_CLOCKHI")
               for op in inst.srcs)


def _gpr_dest(inst):
    """The single non-RZ Reg destination index, or None (-> generic path)."""
    if len(inst.dests) != 1:
        return None
    dest = inst.dests[0]
    if not isinstance(dest, Reg) or dest.is_rz:
        return None
    return dest.index


# ------------------------------------------------------ fast single closures

def _build_mov(inst):
    dest = _gpr_dest(inst)
    if dest is None or len(inst.srcs) != 1:
        return None
    src = inst.srcs[0]
    if isinstance(src, Reg) and not src.is_rz:
        s = src.index

        def run(warp):
            warp.regs._data[dest] = warp.regs._data[s]
        return run
    getter = _val_getter(src)
    if getter is None and isinstance(src, SpecialReg):
        getter = _special_getter(src)
    if getter is None:
        return None

    def run(warp):
        warp.regs._data[dest] = getter(warp)
    return run


def _build_iadd3(inst):
    dest = _gpr_dest(inst)
    if dest is None or not inst.srcs:
        return None
    getters = [_val_getter(s) for s in inst.srcs]
    if any(g is None for g in getters):
        return None
    if len(getters) == 3:
        g0, g1, g2 = getters

        def run(warp):
            warp.regs._data[dest] = g0(warp) + g1(warp) + g2(warp)
        return run

    def run(warp):
        acc = getters[0](warp)
        for getter in getters[1:]:
            acc = acc + getter(warp)
        warp.regs._data[dest] = acc
    return run


def _build_imad(inst):
    dest = _gpr_dest(inst)
    if dest is None or len(inst.srcs) != 3:
        return None
    getters = [_val_getter(s) for s in inst.srcs]
    if any(g is None for g in getters):
        return None
    ga, gb, gc = getters

    def run(warp):
        warp.regs._data[dest] = ga(warp) * gb(warp) + gc(warp)
    return run


def _build_shf(inst):
    dest = _gpr_dest(inst)
    if dest is None or len(inst.srcs) < 2:
        return None
    gv = _val_getter(inst.srcs[0])
    ga = _val_getter(inst.srcs[1])
    if gv is None or ga is None:
        return None
    if "L" in inst.mods:
        def run(warp):
            amount = (ga(warp) & np.uint32(31)).astype(np.uint64)
            warp.regs._data[dest] = (
                (gv(warp).astype(np.uint64) << amount) & np.uint64(0xFFFFFFFF))
        return run
    if "R" in inst.mods:
        def run(warp):
            amount = (ga(warp) & np.uint32(31)).astype(np.uint64)
            warp.regs._data[dest] = gv(warp).astype(np.uint64) >> amount
        return run
    return None  # the reference path raises the canonical error


def _build_lop3(inst):
    dest = _gpr_dest(inst)
    if dest is None or len(inst.srcs) < 2:
        return None
    ga = _val_getter(inst.srcs[0])
    gb = _val_getter(inst.srcs[1])
    if ga is None or gb is None:
        return None
    if "AND" in inst.mods:
        def run(warp):
            warp.regs._data[dest] = ga(warp) & gb(warp)
    elif "OR" in inst.mods:
        def run(warp):
            warp.regs._data[dest] = ga(warp) | gb(warp)
    elif "XOR" in inst.mods:
        def run(warp):
            warp.regs._data[dest] = ga(warp) ^ gb(warp)
    else:
        return None
    return run


def _build_isetp(inst):
    cmp_name = inst.mods[0] if inst.mods else None
    cmp = _CMPS.get(cmp_name)
    if cmp is None or len(inst.srcs) != 3 or len(inst.dests) != 1:
        return None
    combine = inst.srcs[2]
    if not isinstance(combine, Pred) or not isinstance(inst.dests[0], Pred):
        return None
    ga = _val_getter_i32(inst.srcs[0])
    gb = _val_getter_i32(inst.srcs[1])
    if ga is None or gb is None:
        return None
    dest = inst.dests[0].index
    if dest == PT_INDEX:
        return lambda warp: None  # writes to PT are discarded
    ci = combine.index
    if combine.negated:
        def run(warp):
            warp.preds._data[dest] = cmp(ga(warp), gb(warp)) & ~warp.preds._data[ci]
    else:
        def run(warp):
            warp.preds._data[dest] = cmp(ga(warp), gb(warp)) & warp.preds._data[ci]
    return run


def _build_sel(inst):
    dest = _gpr_dest(inst)
    if dest is None or len(inst.srcs) != 3 or not isinstance(inst.srcs[2], Pred):
        return None
    ga = _val_getter(inst.srcs[0])
    gb = _val_getter(inst.srcs[1])
    if ga is None or gb is None:
        return None
    pi = inst.srcs[2].index
    if inst.srcs[2].negated:
        def run(warp):
            warp.regs._data[dest] = np.where(warp.preds._data[pi], gb(warp), ga(warp))
    else:
        def run(warp):
            warp.regs._data[dest] = np.where(warp.preds._data[pi], ga(warp), gb(warp))
    return run


def _build_hfma2(inst):
    dest = _gpr_dest(inst)
    if dest is None or len(inst.srcs) != 3:
        return None
    if not all(isinstance(s, Reg) for s in inst.srcs):
        return None
    ai, bi, ci = (s.index for s in inst.srcs)

    def run(warp):
        regs = warp.regs
        a_lo, a_hi = unpack_half2(regs.read(ai))
        b_lo, b_hi = unpack_half2(regs.read(bi))
        c_lo, c_hi = unpack_half2(regs.read(ci))
        d_lo = (a_lo.astype(np.float32) * b_lo.astype(np.float32)
                + c_lo.astype(np.float32)).astype(np.float16)
        d_hi = (a_hi.astype(np.float32) * b_hi.astype(np.float32)
                + c_hi.astype(np.float32)).astype(np.float16)
        regs._data[dest] = pack_half2(d_lo, d_hi)
    return run


def _mma_operands(inst):
    """(d, a, b, c) register indices when all are general registers."""
    if len(inst.dests) != 1 or len(inst.srcs) != 3:
        return None
    ops = (inst.dests[0], *inst.srcs)
    if any(not isinstance(op, Reg) or op.is_rz for op in ops):
        return None
    return tuple(op.index for op in ops)


def _build_hmma(inst):
    ops = _mma_operands(inst)
    if ops is None:
        return None
    d, a, b, c = ops
    if "1688" in inst.mods:
        if a + 2 > RZ_INDEX:
            return None
        if "F32" in inst.mods:
            if c + 4 > RZ_INDEX or d + 4 > RZ_INDEX:
                return None

            def run(warp):
                regs = warp.regs._data
                regs[d:d + 4] = mma_ops.hmma_1688_f32(
                    regs[a:a + 2], regs[b], regs[c:c + 4])
        else:
            if c + 2 > RZ_INDEX or d + 2 > RZ_INDEX:
                return None

            def run(warp):
                regs = warp.regs._data
                regs[d:d + 2] = mma_ops.hmma_1688_f16(
                    regs[a:a + 2], regs[b], regs[c:c + 2])
        return run
    if "884" in inst.mods:
        def run(warp):
            regs = warp.regs._data
            regs[d] = mma_ops.hmma_884_f16(regs[a], regs[b], regs[c])
        return run
    return None


def _build_imma(inst):
    ops = _mma_operands(inst)
    if ops is None or "8816" not in inst.mods:
        return None
    d, a, b, c = ops
    if c + 2 > RZ_INDEX:
        return None

    def run(warp):
        regs = warp.regs._data
        result = imma_8816(regs[a], regs[b], regs[c:c + 2])
        warp.regs.write_group(d, result)
    return run


def _memref_parts(inst):
    """(base Reg, offset, width_bytes, words) for a load/store, or None."""
    memref = inst.srcs[0]
    if not isinstance(memref, MemRef) or not isinstance(memref.base, Reg):
        return None
    width = inst.width // 8
    return memref.base, memref.offset, width, width // 4


def _build_load(space):
    def build(inst):
        parts = _memref_parts(inst)
        dest = _gpr_dest(inst)
        if parts is None or dest is None:
            return None
        base, offset, width, words = parts
        if dest + words > RZ_INDEX:
            return None
        mem_attr = "global_mem" if space == "global" else "shared_mem"
        if base.is_rz:
            const_addresses = np.full(WARP_LANES, offset, dtype=np.int64)
            const_addresses.setflags(write=False)

            def run(warp):
                data = getattr(warp, mem_attr).load_warp(const_addresses, width, None)
                warp.regs._data[dest:dest + words] = data
        else:
            bi = base.index

            def run(warp):
                addresses = warp.regs._data[bi].astype(np.int64) + offset
                data = getattr(warp, mem_attr).load_warp(addresses, width, None)
                warp.regs._data[dest:dest + words] = data
        return run
    return build


def _build_store(space):
    def build(inst):
        if len(inst.srcs) != 2:
            return None
        parts = _memref_parts(inst)
        if parts is None:
            return None
        base, offset, width, words = parts
        src = inst.srcs[1]
        if not isinstance(src, Reg) or src.is_rz or src.index + words > RZ_INDEX:
            return None
        si = src.index
        mem_attr = "global_mem" if space == "global" else "shared_mem"
        if base.is_rz:
            const_addresses = np.full(WARP_LANES, offset, dtype=np.int64)
            const_addresses.setflags(write=False)

            def run(warp):
                getattr(warp, mem_attr).store_warp(
                    const_addresses, warp.regs._data[si:si + words], width, None)
        else:
            bi = base.index

            def run(warp):
                addresses = warp.regs._data[bi].astype(np.int64) + offset
                getattr(warp, mem_attr).store_warp(
                    addresses, warp.regs._data[si:si + words], width, None)
        return run
    return build


_FAST_BUILDERS = {
    "MOV": _build_mov,
    "MOV32I": _build_mov,
    "S2R": _build_mov,
    "CS2R": _build_mov,
    "IADD3": _build_iadd3,
    "IMAD": _build_imad,
    "SHF": _build_shf,
    "LOP3": _build_lop3,
    "ISETP": _build_isetp,
    "SEL": _build_sel,
    "HFMA2": _build_hfma2,
    "HMMA": _build_hmma,
    "IMMA": _build_imma,
    "LDG": _build_load("global"),
    "LDS": _build_load("shared"),
    "STG": _build_store("global"),
    "STS": _build_store("shared"),
}


# -------------------------------------------------------- control + fallback

def _build_exit(inst):
    if inst.pred is None:
        return lambda warp: EXITED
    pi, negated = inst.pred.index, inst.pred.negated
    if negated:
        def run(warp):
            return EXITED if not warp.preds._data[pi].any() else None
    else:
        def run(warp):
            return EXITED if warp.preds._data[pi].all() else None
    return run


def _build_bra(inst):
    target = inst.target_index
    if inst.pred is None:
        if target is None:
            return lambda warp: None  # unresolved target falls through
        return lambda warp: target
    pi, negated = inst.pred.index, inst.pred.negated
    if negated:
        def run(warp):
            active = warp.preds._data[pi]
            if not active.any():
                return target
            if active.all():
                return None
            raise ExecError(
                "divergent branch: this subset requires warp-uniform branch "
                f"predicates ({int(WARP_LANES - active.sum())}/32 lanes taken)")
    else:
        def run(warp):
            active = warp.preds._data[pi]
            if active.all():
                return target
            if not active.any():
                return None
            raise ExecError(
                "divergent branch: this subset requires warp-uniform branch "
                f"predicates ({int(active.sum())}/32 lanes taken)")
    return run


def _build_generic(inst):
    """Exact reference semantics: evaluate through ``execute`` and apply the
    Effects the same way the reference interval loop does."""
    def run(warp):
        eff = execute(inst, warp)
        for first_reg, values, mask in eff.reg_writes:
            warp.regs.write_group(
                first_reg, values, mask=None if mask.all() else mask)
        for index, values, mask in eff.pred_writes:
            warp.preds.write(index, values, mask=None if mask.all() else mask)
        if eff.exited:
            return EXITED
        if eff.branch_target is not None:
            return eff.branch_target
        if eff.barrier:
            return BARRIER
        return None
    return run


def _guarded(fast, generic, pred):
    """Predicate wrapper: all lanes on -> fast path; all off -> retire as a
    no-op; partial -> the reference path (which owns masked semantics)."""
    pi, negated = pred.index, pred.negated
    if negated:
        def run(warp):
            active = warp.preds._data[pi]
            if not active.any():
                return fast(warp)
            if active.all():
                return None
            return generic(warp)
    else:
        def run(warp):
            active = warp.preds._data[pi]
            if active.all():
                return fast(warp)
            if not active.any():
                return None
            return generic(warp)
    return run


def _decode_one(inst):
    opcode = inst.opcode
    if opcode == "EXIT":
        return _build_exit(inst)
    if opcode == "BAR":
        return lambda warp: BARRIER  # arrives regardless of predication
    if opcode == "BRA":
        return _build_bra(inst)
    if opcode == "NOP":
        return lambda warp: None
    generic = _build_generic(inst)
    builder = _FAST_BUILDERS.get(opcode)
    if builder is None:
        return generic
    try:
        fast = builder(inst)
    except Exception:
        fast = None  # malformed operands: let the reference path raise at exec
    if fast is None:
        return generic
    if inst.pred is None:
        return fast
    return _guarded(fast, generic, inst.pred)


# -------------------------------------------------------------- fusion layer
#
# Generated kernels software-pipeline their inner loops (LDS and HMMA
# interleave 1:1), so batching only *consecutive* same-opcode runs would fuse
# almost nothing.  Instead, predecode finds maximal straight-line *windows*
# of schedulable slots and list-schedules each one: instructions with the
# same fusion key collect into a batch, reordered across unrelated neighbours
# when the dependence check proves the reorder is observation-equivalent.
#
# Dependence sets contain GPR indices (ints), predicate tokens ``("p", i)``
# and whole-space memory tokens (loads read / stores write their space --
# exact aliasing is unknown statically, so a space is one location).  Reads
# of RZ batch as gathers of register-file row 255, which stays all-zero
# because writes to RZ are discarded.

_MEM_GLOBAL = "mem:g"
_MEM_SHARED = "mem:s"
_MEM_TOKENS = frozenset((_MEM_GLOBAL, _MEM_SHARED))

#: Marker key for schedulable-but-not-batchable slots: they join a window as
#: single-member groups (keeping it unbroken) and run their own closure.
_SOLO = None


def _solo_alu_sets(inst):
    """(reads, writes) for single-GPR-dest ALU ops, or None if irregular."""
    if len(inst.dests) != 1:
        return None
    dest = inst.dests[0]
    if isinstance(dest, Reg):
        writes = set() if dest.is_rz else {dest.index}
    elif isinstance(dest, Pred):
        writes = {("p", dest.index)} if dest.index != PT_INDEX else set()
    else:
        return None
    reads = set()
    for src in inst.srcs:
        if isinstance(src, Reg):
            if not src.is_rz:
                reads.add(src.index)
        elif isinstance(src, Pred):
            reads.add(("p", src.index))
        elif isinstance(src, (Imm, SpecialReg)):
            pass  # immediates and warp-constant special regs (clock gated out)
        else:
            return None
    return reads, writes


def _fuse_info(inst):
    """(key, reads, writes, payload) when *inst* can join a fused window.

    ``key`` identifies the batch shape (same key -> same group builder);
    ``key is _SOLO`` marks an instruction that schedules but never batches.
    """
    if inst.pred is not None or _reads_clock(inst):
        return None
    opcode = inst.opcode
    if opcode == "HMMA":
        ops = _mma_operands(inst)
        if ops is None:
            return None
        d, a, b, c = ops
        if "1688" in inst.mods:
            if a + 2 > RZ_INDEX:
                return None
            if "F32" in inst.mods:
                if c + 4 > RZ_INDEX or d + 4 > RZ_INDEX:
                    return None
                reads = {a, a + 1, b, *range(c, c + 4)}
                writes = set(range(d, d + 4))
                key = ("hmma", "f32") if frag._LITTLE_ENDIAN else _SOLO
                return key, reads, writes, (d, a, b, c)
            if c + 2 > RZ_INDEX or d + 2 > RZ_INDEX:
                return None
            key = ("hmma", "f16") if frag._LITTLE_ENDIAN else _SOLO
            return key, {a, a + 1, b, c, c + 1}, {d, d + 1}, (d, a, b, c)
        if "884" in inst.mods:
            return _SOLO, {a, b, c}, {d}, None
        return None
    if opcode == "IMMA":
        ops = _mma_operands(inst)
        if ops is None or "8816" not in inst.mods or ops[3] + 2 > RZ_INDEX:
            return None
        d, a, b, c = ops
        if d + 2 > RZ_INDEX:
            return None
        return _SOLO, {a, b, c, c + 1}, {d, d + 1}, None
    if opcode in ("LDS", "LDG"):
        parts = _memref_parts(inst)
        dest = _gpr_dest(inst)
        if parts is None or dest is None:
            return None
        base, offset, width, words = parts
        if dest + words > RZ_INDEX:
            return None
        space = _MEM_GLOBAL if opcode == "LDG" else _MEM_SHARED
        reads = {base.index, space} if not base.is_rz else {space}
        writes = set(range(dest, dest + words))
        return (("load", opcode, width), reads, writes,
                (dest, base.index, offset, words))
    if opcode in ("STS", "STG"):
        if len(inst.srcs) != 2:
            return None
        parts = _memref_parts(inst)
        if parts is None:
            return None
        base, offset, width, words = parts
        src = inst.srcs[1]
        if not isinstance(src, Reg) or src.is_rz or src.index + words > RZ_INDEX:
            return None
        space = _MEM_GLOBAL if opcode == "STG" else _MEM_SHARED
        reads = set(range(src.index, src.index + words))
        if not base.is_rz:
            reads.add(base.index)
        return (("store", opcode, width), reads, {space},
                (src.index, base.index, offset, words))
    if opcode in ("MOV", "MOV32I", "S2R", "CS2R"):
        dest = _gpr_dest(inst)
        if dest is None or len(inst.srcs) != 1:
            return None
        src = inst.srcs[0]
        if isinstance(src, Reg):
            reads = set() if src.is_rz else {src.index}
            return ("mov", "r"), reads, {dest}, (dest, src.index)
        if isinstance(src, Imm):
            return ("mov", "i"), set(), {dest}, (dest, src.unsigned)
        if isinstance(src, SpecialReg):
            return _SOLO, set(), {dest}, None
        return None
    if opcode in ("IADD3", "IMAD"):
        dest = _gpr_dest(inst)
        if dest is None or not inst.srcs:
            return None
        if opcode == "IMAD" and len(inst.srcs) != 3:
            return None
        signature = []
        terms = []
        reads = set()
        for src in inst.srcs:
            if isinstance(src, Reg):
                signature.append("r")
                terms.append(src.index)
                if not src.is_rz:
                    reads.add(src.index)
            elif isinstance(src, Imm):
                signature.append("i")
                terms.append(src.unsigned)
            else:
                return None
        return ((opcode.lower(), tuple(signature)), reads, {dest},
                (dest, tuple(terms)))
    if opcode in ("SHF", "LOP3", "ISETP", "SEL", "HFMA2"):
        sets = _solo_alu_sets(inst)
        if sets is None:
            return None
        return _SOLO, sets[0], sets[1], None
    if opcode == "NOP":
        return _SOLO, set(), set(), None
    return None


def _build_hmma_group(key, payloads):
    g = len(payloads)
    f32 = key[1] == "f32"
    c_regs = 4 if f32 else 2
    a_idx = np.array([[p[1], p[1] + 1] for p in payloads], dtype=np.intp)
    b_idx = np.array([p[2] for p in payloads], dtype=np.intp)
    c_idx = np.array([[p[3] + i for i in range(c_regs)] for p in payloads],
                     dtype=np.intp)
    d_idx = np.array([[p[0] + i for i in range(c_regs)] for p in payloads],
                     dtype=np.intp)
    gather_a = frag._GATHER_16X8            # (16, 8) half index per register pair
    gather_b = frag._PERMS[frag.COL_MAJOR][0]   # (8, 8)
    half = frag.HALF

    if f32:
        inv_f32 = frag._INV_F32             # (16, 8)
        perm_f32 = frag._PERM_F32           # (4, 32)

        def run(warp):
            regs = warp.regs._data
            a16 = regs[a_idx].view(np.uint16).reshape(g, 128)[:, gather_a].view(half)
            b16 = regs[b_idx].view(np.uint16)[:, gather_b].view(half)
            c32 = regs[c_idx].view(np.float32).reshape(g, 128)[:, inv_f32]
            a32 = a16.astype(np.float32)
            b32 = b16.astype(np.float32)
            prod = np.empty((g, 16, 8), dtype=np.float32)
            for i in range(g):
                prod[i] = a32[i] @ b32[i]
            d = prod + c32
            regs[d_idx] = d.reshape(g, 128)[:, perm_f32].view(np.uint32)
    else:
        # Full advanced index (rows x scatter) so the gathered halves come
        # back C-contiguous, as the size-changing uint32 view requires.
        scatter_rows = np.arange(g, dtype=np.intp)[:, None]
        scatter_d = frag._SCATTER_16X8[None, :]     # flat (128,) table

        def run(warp):
            regs = warp.regs._data
            a16 = regs[a_idx].view(np.uint16).reshape(g, 128)[:, gather_a].view(half)
            b16 = regs[b_idx].view(np.uint16)[:, gather_b].view(half)
            c16 = regs[c_idx].view(np.uint16).reshape(g, 128)[:, gather_a].view(half)
            a32 = a16.astype(np.float32)
            b32 = b16.astype(np.float32)
            c32 = c16.astype(np.float32)
            prod = np.empty((g, 16, 8), dtype=np.float32)
            for i in range(g):
                prod[i] = a32[i] @ b32[i]
            d16 = (prod + c32).astype(np.float16)
            regs[d_idx] = (d16.reshape(g, 128)[scatter_rows, scatter_d]
                           .view(np.uint32).reshape(g, 2, WARP_LANES))
    return run


def _build_mem_group(key, payloads):
    _, opcode, width = key
    is_store = opcode in ("STS", "STG")
    mem_attr = "global_mem" if opcode in ("LDG", "STG") else "shared_mem"
    g = len(payloads)
    words = width // 4
    reg_idx = np.array([[p[0] + i for i in range(words)] for p in payloads],
                       dtype=np.intp)
    base_idx = np.array([p[1] for p in payloads], dtype=np.intp)
    offsets = np.array([p[2] for p in payloads], dtype=np.int64).reshape(g, 1)

    if is_store:
        def run(warp):
            regs = warp.regs._data
            addresses = regs[base_idx].astype(np.int64) + offsets
            getattr(warp, mem_attr).store_warp_batch(addresses, regs[reg_idx], width)
    else:
        def run(warp):
            regs = warp.regs._data
            addresses = regs[base_idx].astype(np.int64) + offsets
            regs[reg_idx] = getattr(warp, mem_attr).load_warp_batch(addresses, width)
    return run


def _build_mov_group(key, payloads):
    d_idx = np.array([p[0] for p in payloads], dtype=np.intp)
    if key[1] == "r":
        s_idx = np.array([p[1] for p in payloads], dtype=np.intp)

        def run(warp):
            regs = warp.regs._data
            regs[d_idx] = regs[s_idx]
    else:
        values = np.array([p[1] for p in payloads], dtype=np.uint32).reshape(-1, 1)
        values.setflags(write=False)

        def run(warp):
            warp.regs._data[d_idx] = values
    return run


def _group_terms(key, payloads):
    """Per-source-position batched term arrays for IADD3/IMAD groups."""
    signature = key[1]
    terms = []
    for pos, kind in enumerate(signature):
        if kind == "r":
            terms.append(("r", np.array([p[1][pos] for p in payloads],
                                        dtype=np.intp)))
        else:
            col = np.array([p[1][pos] for p in payloads],
                           dtype=np.uint32).reshape(-1, 1)
            col.setflags(write=False)
            terms.append(("i", col))
    return terms


def _build_iadd3_group(key, payloads):
    d_idx = np.array([p[0] for p in payloads], dtype=np.intp)
    terms = _group_terms(key, payloads)

    def run(warp):
        regs = warp.regs._data
        acc = None
        for kind, arr in terms:
            value = regs[arr] if kind == "r" else arr
            acc = value if acc is None else acc + value
        regs[d_idx] = acc
    return run


def _build_imad_group(key, payloads):
    d_idx = np.array([p[0] for p in payloads], dtype=np.intp)
    (ka, ta), (kb, tb), (kc, tc) = _group_terms(key, payloads)

    def run(warp):
        regs = warp.regs._data
        a = regs[ta] if ka == "r" else ta
        b = regs[tb] if kb == "r" else tb
        c = regs[tc] if kc == "r" else tc
        regs[d_idx] = a * b + c
    return run


_GROUP_BUILDERS = {
    "hmma": _build_hmma_group,
    "load": _build_mem_group,
    "store": _build_mem_group,
    "mov": _build_mov_group,
    "iadd3": _build_iadd3_group,
    "imad": _build_imad_group,
}


# ----------------------------------------------------------- window scheduler

class _Group:
    """One batch being assembled while scheduling a window."""

    __slots__ = ("key", "reads", "writes", "payloads", "slots")

    def __init__(self, key, reads, writes, payload, slot):
        self.key = key
        self.reads = set(reads)
        self.writes = set(writes)
        self.payloads = [payload]
        self.slots = [slot]


def _schedule_window(fuse, start, end):
    """List-schedule slots [start, end) into ordered groups.

    Groups execute in first-appearance order, members in original order.
    Instruction *j* may join the open group of its key only when the move is
    observation-equivalent: *j* must not depend on -- nor be depended on by --
    any member of a group scheduled after its own (those members originally
    precede *j* but will execute after it), and within its own group *j* must
    not read or overwrite anything the group already writes (the batch
    gathers every operand before it scatters any result).  Stores batch over
    their whole-space memory token: duplicate scatter indices resolve last-
    wins in member order, matching sequential stores exactly.
    """
    groups = []
    open_group = {}  # key -> index of the newest group with that key
    for slot in range(start, end):
        key, reads, writes, payload = fuse[slot]
        placed = False
        gi = open_group.get(key) if key is not _SOLO else None
        if gi is not None:
            group = groups[gi]
            own_writes = group.writes - _MEM_TOKENS
            if not ((reads - _MEM_TOKENS) & own_writes
                    or (writes - _MEM_TOKENS) & own_writes):
                ok = True
                for later in groups[gi + 1:]:
                    if (writes & later.reads or writes & later.writes
                            or reads & later.writes):
                        ok = False
                        break
                if ok:
                    group.reads |= reads
                    group.writes |= writes
                    group.payloads.append(payload)
                    group.slots.append(slot)
                    placed = True
        if not placed:
            groups.append(_Group(key, reads, writes, payload, slot))
            if key is not _SOLO:
                open_group[key] = len(groups) - 1
    return groups


# ---------------------------------------------------------------- predecode

def predecode(program) -> DecodedProgram:
    """Decode *program* once into slot-indexed closures plus fused windows."""
    n = len(program)
    instructions = [program[pc] for pc in range(n)]
    run_fns = [_decode_one(inst) for inst in instructions]
    next_pc = [pc + 1 for pc in range(n)]
    lens = [1] * n
    reads_clock = [_reads_clock(inst) for inst in instructions]
    slot_ops = [((inst.opcode, 1),) for inst in instructions]
    fuse = [_fuse_info(inst) for inst in instructions]

    start = 0
    while start < n:
        if fuse[start] is None:
            start += 1
            continue
        end = start
        while end < n and fuse[end] is not None:
            end += 1
        _install_window(instructions, run_fns, next_pc, lens, slot_ops,
                        fuse, start, end)
        start = end

    return DecodedProgram(n, run_fns, next_pc, lens, reads_clock, slot_ops)


def _install_window(instructions, run_fns, next_pc, lens, slot_ops,
                    fuse, start, end) -> None:
    """Fuse window [start, end) into one composite closure at *start*.

    Member slots keep their individual closures so branches into the middle
    of a window still execute exactly.
    """
    if end - start < 2:
        return
    groups = _schedule_window(fuse, start, end)
    if not any(g.key is not _SOLO and len(g.payloads) >= 2 for g in groups):
        return  # nothing batched; composition would only add indirection
    parts = []
    for group in groups:
        if group.key is not _SOLO and len(group.payloads) >= 2:
            parts.append(_GROUP_BUILDERS[group.key[0]](group.key, group.payloads))
        else:
            parts.extend(run_fns[slot] for slot in group.slots)

    def run(warp, _parts=tuple(parts)):
        for part in _parts:
            part(warp)

    ops = []
    for slot in range(start, end):
        opcode = instructions[slot].opcode
        if ops and ops[-1][0] == opcode:
            ops[-1] = (opcode, ops[-1][1] + 1)
        else:
            ops.append((opcode, 1))
    run_fns[start] = run
    next_pc[start] = end
    lens[start] = end - start
    slot_ops[start] = tuple(ops)
