"""Single-source µop semantics table for the SASS subset.

Before this layer existed the codebase defined *what an instruction does*
three separate times: the reference ``Effects`` executors in
:mod:`repro.sim.exec_units`, ~1k lines of hand-written per-opcode closure
builders in :mod:`repro.sim.decode`, and the timing simulator's predecoded
hot path.  This module collapses all of that into one per-opcode table:

``SEMANTICS[opcode]`` is a decoder that turns an :class:`Instruction` into a
:class:`Uop` -- a declarative record of

* **source descriptors** -- how to read each operand
  (``("reg", i)``, ``("reg_i32", i)``, ``("regs", i, n)``, ``("imm", v)``,
  ``("imm_i32", v)``, ``("pred", i, negated)``, ``("sr", name)``,
  ``("sr_i32", name)``);
* **dest descriptor** -- ``("reg", d, n)`` or ``("pred", i)``;
* **lane kernel** -- one shape-agnostic NumPy function implementing the
  element-wise math.  The same kernel runs on (32,) reference arrays, (L,)
  decoded rows and stacked ``(g, L)`` batch arrays, so there is exactly one
  place where e.g. IADD3's wraparound or ISETP's signed compare is written;
* **memory descriptor** (:class:`MemSpec`) for loads/stores;
* **scheduler metadata** -- window-fusion key/payload plus the GPR /
  predicate / memory-space dependence sets derived from the descriptors.

Consumers:

* :func:`repro.sim.exec_units.execute` -- thin adapter that evaluates the
  descriptors against a warp context and wraps the kernel result in an
  ``Effects`` record (reference engine + timing simulator);
* :mod:`repro.sim.decode` -- compiles the same descriptors into slot
  closures and window-scheduler groups (predecoded and lockstep engines).

Kernels never mutate their inputs and return exact ``uint32`` (``bool`` for
predicate dests): integer ops wrap modulo 2**32, compares run on int32 views
(bit-identical to sign-extended int64 compares for every 32-bit pattern),
and the MMA kernels delegate to the batched fragment math in
:mod:`repro.hmma` which keeps per-product 2-D float32 matmuls so BLAS
dispatch and rounding match the scalar reference bit-for-bit.
"""

from __future__ import annotations

from collections import namedtuple
from functools import lru_cache

import numpy as np

from ..arch.registers import WARP_LANES
from ..hmma import int8 as int8_ops
from ..hmma import mma as mma_ops
from ..hmma.fp16 import pack_half2, unpack_half2
from ..isa.instructions import OPCODES
from ..isa.operands import Imm, MemRef, Pred, Reg, SpecialReg, PT_INDEX, RZ_INDEX

__all__ = [
    "ExecError",
    "MemSpec",
    "Uop",
    "SEMANTICS",
    "SOLO",
    "MMA_BATCH_KERNELS",
    "decode_uop",
    "special_value",
    "k_iadd3",
    "k_imad",
]


class ExecError(RuntimeError):
    """Raised when an instruction cannot be executed (simulated fault)."""


#: Fusion-key sentinel: the instruction may join a scheduling window but
#: never batches with neighbours (it runs its own closure inside the window).
SOLO = "solo"

#: Whole-space memory tokens used in dependence sets (exact aliasing is
#: unknown statically, so loads read / stores write their whole space).
MEM_GLOBAL = "mem:g"
MEM_SHARED = "mem:s"

#: Memory side-effect descriptor.  ``base_index`` may be ``RZ_INDEX`` (the
#: register file keeps row 255 all-zero, so reading it as a base is exact);
#: ``reg`` is the first data register (dest for loads, source for stores).
MemSpec = namedtuple(
    "MemSpec",
    ("space", "width", "words", "is_store", "bypass_l1",
     "base_index", "offset", "reg"),
)


class Uop:
    """Decoded per-instruction semantics record (see module docstring)."""

    __slots__ = (
        "opcode", "kind", "srcs", "dest", "kernel", "mem", "target",
        "warp_wide", "lanes32_only", "reads_clock", "groups_ok",
        "fuse_key", "fuse_payload", "reads", "writes",
    )


def _uop(inst, kind, *, srcs=(), dest=None, kernel=None, mem=None,
         target=None, warp_wide=False, lanes32_only=False, groups_ok=True,
         fuse_key=None, fuse_payload=None) -> Uop:
    u = Uop()
    u.opcode = inst.opcode
    u.kind = kind
    u.srcs = tuple(srcs)
    u.dest = dest
    u.kernel = kernel
    u.mem = mem
    u.target = target
    u.warp_wide = warp_wide
    u.lanes32_only = lanes32_only
    u.groups_ok = groups_ok
    u.fuse_key = fuse_key
    u.fuse_payload = fuse_payload
    u.reads_clock = any(
        d[0] in ("sr", "sr_i32") and d[1] in ("SR_CLOCKLO", "SR_CLOCKHI")
        for d in u.srcs
    )
    u.reads, u.writes = _dep_sets(u)
    return u


def _dep_sets(u: Uop):
    """Window-scheduler dependence sets, derived from the descriptors.

    GPR indices are plain ints, predicates are ``("p", i)`` tokens and
    memory spaces are :data:`MEM_GLOBAL` / :data:`MEM_SHARED`.  RZ reads and
    writes (and PT writes) are dropped: they are hardwired.
    """
    reads, writes = set(), set()
    for desc in u.srcs:
        kind = desc[0]
        if kind in ("reg", "reg_i32"):
            if desc[1] != RZ_INDEX:
                reads.add(desc[1])
        elif kind == "regs":
            reads.update(r for r in range(desc[1], desc[1] + desc[2])
                         if r != RZ_INDEX)
        elif kind == "pred":
            reads.add(("p", desc[1]))
    if u.dest is not None:
        if u.dest[0] == "reg":
            writes.update(r for r in range(u.dest[1], u.dest[1] + u.dest[2])
                          if r != RZ_INDEX)
        elif u.dest[1] != PT_INDEX:
            writes.add(("p", u.dest[1]))
    if u.mem is not None:
        token = MEM_GLOBAL if u.mem.space == "global" else MEM_SHARED
        if u.mem.base_index != RZ_INDEX:
            reads.add(u.mem.base_index)
        if u.mem.is_store:
            writes.add(token)
            reads.update(range(u.mem.reg, u.mem.reg + u.mem.words))
        else:
            reads.add(token)
    return frozenset(reads), frozenset(writes)


# ------------------------------------------------------------- lane kernels
#
# The ONLY definitions of per-opcode lane math.  Every kernel works on
# arrays of any trailing shape (32 reference lanes, L stacked lanes, or
# (g, L) window batches with (g, 1) immediate columns broadcasting).

def k_iadd3(*terms) -> np.ndarray:
    """Sum of 1-3 uint32 terms, wrapping modulo 2**32."""
    acc = terms[0]
    for term in terms[1:]:
        acc = acc + term
    return acc


def k_imad(a, b, c) -> np.ndarray:
    """uint32 ``a * b + c``, wrapping modulo 2**32 (two's complement exact)."""
    return a * b + c


def _k_shf_l(value, amount):
    shift = (amount & np.uint32(31)).astype(np.uint64)
    return ((value.astype(np.uint64) << shift)
            & np.uint64(0xFFFFFFFF)).astype(np.uint32)


def _k_shf_r(value, amount):
    shift = (amount & np.uint32(31)).astype(np.uint64)
    return (value.astype(np.uint64) >> shift).astype(np.uint32)


def _k_and(a, b):
    return a & b


def _k_or(a, b):
    return a | b


def _k_xor(a, b):
    return a ^ b


_CMPS = {
    "LT": np.less, "LE": np.less_equal, "GT": np.greater,
    "GE": np.greater_equal, "EQ": np.equal, "NE": np.not_equal,
}


def _make_isetp(cmp):
    def kernel(a, b, base):
        return cmp(a, b) & base
    return kernel


_ISETP_KERNELS = {name: _make_isetp(fn) for name, fn in _CMPS.items()}


def _k_sel(a, b, choose):
    return np.where(choose, a, b)


def _k_hfma2(a, b, c):
    a_lo, a_hi = unpack_half2(a)
    b_lo, b_hi = unpack_half2(b)
    c_lo, c_hi = unpack_half2(c)
    d_lo = (a_lo.astype(np.float32) * b_lo.astype(np.float32)
            + c_lo.astype(np.float32)).astype(np.float16)
    d_hi = (a_hi.astype(np.float32) * b_hi.astype(np.float32)
            + c_hi.astype(np.float32)).astype(np.float16)
    return pack_half2(d_lo, d_hi)


# MMA kernels: single-slot adapters over the stacked batch math in
# repro.hmma, which is also what the window group builders call -- one site.

def _k_hmma_1688_f16(a_regs, b_reg, c_regs):
    return mma_ops.hmma_1688_f16_batch(
        a_regs[None], b_reg[None], c_regs[None])[0]


def _k_hmma_1688_f32(a_regs, b_reg, c_regs):
    return mma_ops.hmma_1688_f32_batch(
        a_regs[None], b_reg[None], c_regs[None])[0]


def _k_hmma_884(a_reg, b_reg, c_reg):
    return mma_ops.hmma_884_f16_batch(
        a_reg[None], b_reg[None], c_reg[None])[0]


def _k_hmma_16816_f16(a_regs, b_regs, c_regs):
    return mma_ops.hmma_16816_f16_batch(
        a_regs[None], b_regs[None], c_regs[None])[0]


def _k_hmma_16816_f32(a_regs, b_regs, c_regs):
    return mma_ops.hmma_16816_f32_batch(
        a_regs[None], b_regs[None], c_regs[None])[0]


def _k_imma_8816(a_reg, b_reg, c_regs):
    return int8_ops.imma_8816_batch(
        a_reg[None], b_reg[None], c_regs[None])[0]


# ------------------------------------------------------- special registers

def special_value(ctx, name: str) -> np.ndarray:
    """Reference-grade (fresh-array) special register value for *ctx*."""
    if name == "SR_TID.X":
        return np.asarray(ctx.tid, dtype=np.uint64).astype(np.uint32)
    if name in ("SR_TID.Y", "SR_TID.Z", "SRZ"):
        return np.zeros(WARP_LANES, dtype=np.uint32)
    if name == "SR_CTAID.X":
        return np.full(WARP_LANES, ctx.ctaid[0], dtype=np.uint32)
    if name == "SR_CTAID.Y":
        return np.full(WARP_LANES, ctx.ctaid[1], dtype=np.uint32)
    if name == "SR_CTAID.Z":
        return np.full(WARP_LANES, ctx.ctaid[2], dtype=np.uint32)
    if name == "SR_LANEID":
        return np.asarray(ctx.lane_ids, dtype=np.uint64).astype(np.uint32)
    if name == "SR_CLOCKLO":
        return np.full(WARP_LANES, ctx.clock() & 0xFFFFFFFF, dtype=np.uint32)
    if name == "SR_CLOCKHI":
        return np.full(WARP_LANES, (ctx.clock() >> 32) & 0xFFFFFFFF,
                       dtype=np.uint32)
    raise ExecError(f"unhandled special register {name}")


# ----------------------------------------------------------------- decoders

def _value_desc(operand):
    """Source descriptor for a scalar-ish value operand."""
    if isinstance(operand, Reg):
        return ("reg", operand.index)
    if isinstance(operand, Imm):
        return ("imm", operand.unsigned)
    if isinstance(operand, SpecialReg):
        return ("sr", operand.name)
    raise ExecError(f"operand {operand!r} is not a value source")


def _value_desc_i32(operand):
    """Signed-view variant (int32 compares == sign-extended int64 compares)."""
    desc = _value_desc(operand)
    return {"reg": ("reg_i32",), "imm": ("imm_i32",),
            "sr": ("sr_i32",)}[desc[0]] + desc[1:]


def _reg_dest(inst, words: int = 1):
    """(index, fast-path-ok) for the single GPR destination."""
    dest = inst.dests[0]
    ok = isinstance(dest, Reg) and not dest.is_rz
    if ok and words > 1:
        ok = dest.index + words <= RZ_INDEX
    return dest.index, ok


def _dec_nop(inst):
    return _uop(inst, "nop", fuse_key=SOLO)


def _dec_exit(inst):
    return _uop(inst, "exit")


def _dec_bar(inst):
    return _uop(inst, "bar")


def _dec_bra(inst):
    return _uop(inst, "bra", target=inst.target_index)


def _dec_mov(inst):
    d, ok = _reg_dest(inst)
    src = _value_desc(inst.srcs[0])
    key = payload = None
    if ok and len(inst.srcs) == 1:
        if src[0] == "reg":
            key, payload = ("mov", "r"), (d, src[1])
        elif src[0] == "imm":
            key, payload = ("mov", "i"), (d, src[1])
        else:
            key = SOLO
    return _uop(inst, "alu", srcs=(src,), dest=("reg", d, 1), groups_ok=ok,
                fuse_key=key, fuse_payload=payload)


def _dec_iadd3(inst):
    d, ok = _reg_dest(inst)
    srcs = tuple(_value_desc(s) for s in inst.srcs)
    ok = ok and bool(srcs)
    key = payload = None
    if ok and all(s[0] in ("reg", "imm") for s in srcs):
        signature = tuple("r" if s[0] == "reg" else "i" for s in srcs)
        key = ("iadd3", signature)
        payload = (d, tuple(s[1] for s in srcs))
    return _uop(inst, "alu", srcs=srcs, dest=("reg", d, 1), kernel=k_iadd3,
                groups_ok=ok, fuse_key=key, fuse_payload=payload)


def _dec_imad(inst):
    d, ok = _reg_dest(inst)
    srcs = tuple(_value_desc(s) for s in inst.srcs)
    ok = ok and len(srcs) == 3
    key = payload = None
    if ok and all(s[0] in ("reg", "imm") for s in srcs):
        signature = tuple("r" if s[0] == "reg" else "i" for s in srcs)
        key = ("imad", signature)
        payload = (d, tuple(s[1] for s in srcs))
    return _uop(inst, "alu", srcs=srcs, dest=("reg", d, 1), kernel=k_imad,
                groups_ok=ok, fuse_key=key, fuse_payload=payload)


def _dec_shf(inst):
    d, ok = _reg_dest(inst)
    srcs = (_value_desc(inst.srcs[0]), _value_desc(inst.srcs[1]))
    if "L" in inst.mods:
        kernel = _k_shf_l
    elif "R" in inst.mods:
        kernel = _k_shf_r
    else:
        raise ExecError(f"SHF needs .L or .R: {inst}")
    return _uop(inst, "alu", srcs=srcs, dest=("reg", d, 1), kernel=kernel,
                groups_ok=ok, fuse_key=SOLO if ok else None)


def _dec_lop3(inst):
    d, ok = _reg_dest(inst)
    srcs = (_value_desc(inst.srcs[0]), _value_desc(inst.srcs[1]))
    if "AND" in inst.mods:
        kernel = _k_and
    elif "OR" in inst.mods:
        kernel = _k_or
    elif "XOR" in inst.mods:
        kernel = _k_xor
    else:
        raise ExecError(f"LOP3 needs .AND/.OR/.XOR: {inst}")
    return _uop(inst, "alu", srcs=srcs, dest=("reg", d, 1), kernel=kernel,
                groups_ok=ok, fuse_key=SOLO if ok else None)


def _dec_isetp(inst):
    cmp_name = inst.mods[0] if inst.mods else None
    if cmp_name not in _CMPS:
        raise ExecError(f"ISETP comparison missing or unknown: {inst}")
    a = _value_desc_i32(inst.srcs[0])
    b = _value_desc_i32(inst.srcs[1])
    combine = inst.srcs[2]
    if not isinstance(combine, Pred):
        raise ExecError(f"ISETP third source must be a predicate: {inst}")
    dest = inst.dests[0]
    ok = isinstance(dest, Pred)
    return _uop(inst, "alu",
                srcs=(a, b, ("pred", combine.index, combine.negated)),
                dest=("pred", dest.index), kernel=_ISETP_KERNELS[cmp_name],
                groups_ok=ok, fuse_key=SOLO if ok else None)


def _dec_sel(inst):
    d, ok = _reg_dest(inst)
    a = _value_desc(inst.srcs[0])
    b = _value_desc(inst.srcs[1])
    pred = inst.srcs[2]
    if not isinstance(pred, Pred):
        raise ExecError(f"SEL third source must be a predicate: {inst}")
    return _uop(inst, "alu",
                srcs=(a, b, ("pred", pred.index, pred.negated)),
                dest=("reg", d, 1), kernel=_k_sel,
                groups_ok=ok, fuse_key=SOLO if ok else None)


def _dec_hfma2(inst):
    d, ok = _reg_dest(inst)
    srcs = tuple(("reg", s.index) for s in inst.srcs[:3])
    ok = ok and len(inst.srcs) == 3 and all(
        isinstance(s, Reg) for s in inst.srcs)
    return _uop(inst, "alu", srcs=srcs, dest=("reg", d, 1), kernel=_k_hfma2,
                groups_ok=ok, fuse_key=SOLO if ok else None)


def _mma_operand_regs(inst):
    for op in (inst.dests[0], *inst.srcs):
        if not isinstance(op, Reg) or op.is_rz:
            raise ExecError(f"HMMA operands must be general registers: {inst}")
    return (inst.dests[0].index, inst.srcs[0].index,
            inst.srcs[1].index, inst.srcs[2].index)


def _dec_hmma(inst):
    d, a, b, c = _mma_operand_regs(inst)
    if "1688" in inst.mods:
        f32 = "F32" in inst.mods
        c_regs = 4 if f32 else 2
        ok = (a + 2 <= RZ_INDEX and c + c_regs <= RZ_INDEX
              and d + c_regs <= RZ_INDEX)
        key = ("hmma", "f32" if f32 else "f16") if ok else None
        return _uop(inst, "alu",
                    srcs=(("regs", a, 2), ("reg", b), ("regs", c, c_regs)),
                    dest=("reg", d, c_regs),
                    kernel=_k_hmma_1688_f32 if f32 else _k_hmma_1688_f16,
                    warp_wide=True, groups_ok=ok,
                    fuse_key=key, fuse_payload=(d, a, b, c))
    if "884" in inst.mods:
        return _uop(inst, "alu",
                    srcs=(("reg", a), ("reg", b), ("reg", c)),
                    dest=("reg", d, 1), kernel=_k_hmma_884,
                    warp_wide=True, fuse_key=("hmma", "884"),
                    fuse_payload=(d, a, b, c))
    if "16816" in inst.mods:
        f32 = "F32" in inst.mods
        c_regs = 4 if f32 else 2
        ok = (a + 4 <= RZ_INDEX and b + 2 <= RZ_INDEX
              and c + c_regs <= RZ_INDEX and d + c_regs <= RZ_INDEX)
        key = ("hmma", "16816_f32" if f32 else "16816_f16") if ok else None
        return _uop(inst, "alu",
                    srcs=(("regs", a, 4), ("regs", b, 2), ("regs", c, c_regs)),
                    dest=("reg", d, c_regs),
                    kernel=_k_hmma_16816_f32 if f32 else _k_hmma_16816_f16,
                    warp_wide=True, groups_ok=ok,
                    fuse_key=key, fuse_payload=(d, a, b, c))
    raise ExecError(f"unknown HMMA shape: {inst}")


def _dec_imma(inst):
    d, a, b, c = _mma_operand_regs(inst)
    if "8816" not in inst.mods:
        raise ExecError(f"unknown IMMA shape: {inst}")
    ok = c + 2 <= RZ_INDEX and d + 2 <= RZ_INDEX
    return _uop(inst, "alu",
                srcs=(("reg", a), ("reg", b), ("regs", c, 2)),
                dest=("reg", d, 2), kernel=_k_imma_8816,
                warp_wide=True, groups_ok=ok,
                fuse_key=("imma", "8816") if ok else None,
                fuse_payload=(d, a, b, c))


def _dec_load(space):
    def decode(inst):
        memref = inst.srcs[0]
        if not isinstance(memref, MemRef):
            raise ExecError(f"load source must be a memory reference: {inst}")
        width = inst.width // 8
        words = width // 4
        d, ok = _reg_dest(inst, words)
        mem = MemSpec(space, width, words, False, "CG" in inst.mods,
                      memref.base.index, memref.offset, d)
        return _uop(inst, "load", dest=("reg", d, words), mem=mem,
                    groups_ok=ok,
                    fuse_key=("load", inst.opcode, width) if ok else None,
                    fuse_payload=(d, memref.base.index, memref.offset, words))
    return decode


def _dec_store(space):
    def decode(inst):
        memref, src = inst.srcs
        if not isinstance(memref, MemRef) or not isinstance(src, Reg):
            raise ExecError(f"store operands must be ([mem], reg): {inst}")
        width = inst.width // 8
        words = width // 4
        ok = not src.is_rz and src.index + words <= RZ_INDEX
        mem = MemSpec(space, width, words, True, False,
                      memref.base.index, memref.offset, src.index)
        return _uop(inst, "store", mem=mem, groups_ok=ok,
                    fuse_key=("store", inst.opcode, width) if ok else None,
                    fuse_payload=(src.index, memref.base.index,
                                  memref.offset, words))
    return decode


#: The semantics table: one decoder per opcode, the only definition of
#: instruction behaviour in the simulator.
SEMANTICS = {
    "NOP": _dec_nop,
    "EXIT": _dec_exit,
    "BAR": _dec_bar,
    "BRA": _dec_bra,
    "MOV": _dec_mov,
    "MOV32I": _dec_mov,
    "S2R": _dec_mov,
    "CS2R": _dec_mov,
    "IADD3": _dec_iadd3,
    "IMAD": _dec_imad,
    "SHF": _dec_shf,
    "LOP3": _dec_lop3,
    "ISETP": _dec_isetp,
    "SEL": _dec_sel,
    "HFMA2": _dec_hfma2,
    "HMMA": _dec_hmma,
    "IMMA": _dec_imma,
    "LDG": _dec_load("global"),
    "LDS": _dec_load("shared"),
    "STG": _dec_store("global"),
    "STS": _dec_store("shared"),
}

if set(SEMANTICS) != set(OPCODES):  # pragma: no cover - import-time invariant
    raise AssertionError("SEMANTICS must cover every opcode in OPCODES")


@lru_cache(maxsize=65536)
def decode_uop(inst) -> Uop:
    """Decode *inst* to its :class:`Uop` (cached; Instruction is frozen)."""
    try:
        decoder = SEMANTICS[inst.opcode]
    except KeyError:
        raise ExecError(f"no executor for opcode {inst.opcode}") from None
    return decoder(inst)


#: Stacked batch kernels by MMA fuse key, shared by every engine that
#: groups independent MMA ops (the functional window scheduler and the
#: timing simulator's issue plans).  Each batch call over ``g`` gathered
#: operand sets is bit-identical to ``g`` sequential single-op kernel
#: calls because the kernels compute every product as an individual 2-D
#: matmul.  Values are ``(batch_fn, a_words, b_words, c_words)``: the
#: per-member register counts of the A, B and accumulator/dest operands
#: (1 means a single ``(g, lanes)`` gather instead of ``(g, words,
#: lanes)``).  Every generation's HMMA shape batches; which keys a
#: program produces depends on the device's :class:`~repro.arch.ArchSpec`.
MMA_BATCH_KERNELS = {
    ("hmma", "884"): (mma_ops.hmma_884_f16_batch, 1, 1, 1),
    ("hmma", "f16"): (mma_ops.hmma_1688_f16_batch, 2, 1, 2),
    ("hmma", "f32"): (mma_ops.hmma_1688_f32_batch, 2, 1, 4),
    ("hmma", "16816_f16"): (mma_ops.hmma_16816_f16_batch, 4, 2, 2),
    ("hmma", "16816_f32"): (mma_ops.hmma_16816_f32_batch, 4, 2, 4),
    ("imma", "8816"): (int8_ops.imma_8816_batch, 1, 1, 2),
}
