"""Device: a CUDA-runtime-flavoured front end for the simulators.

Wraps global memory management and kernel launches in the familiar
malloc / memcpy / launch vocabulary so custom SASS programs (and the
examples) don't have to juggle raw byte offsets::

    dev = Device(RTX2070)
    a = dev.malloc(4096)
    dev.memcpy_htod(a, host_array)
    dev.launch(program, grid=(4, 2))
    out = dev.memcpy_dtoh(a, np.float16, 2048)

``launch`` executes functionally over the whole grid; ``launch_timed``
runs one SM cycle-accurately (the paper's per-SM measurement harness) and
returns the :class:`~repro.sim.timing.TimingResult` plus the wall-clock
seconds implied by the device clock, the simulated analogue of the
``cudaEvent`` timing the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.turing import GpuSpec, RTX2070
from ..isa.program import Program
from .functional import FunctionalResult, FunctionalSimulator
from .memory import GlobalMemory
from .timing import TimingResult, TimingSimulator

__all__ = ["Device", "LaunchTiming"]

#: Allocation granularity (matches cudaMalloc's 256-byte alignment).
_ALIGN = 256


@dataclass(frozen=True)
class LaunchTiming:
    """Result of a timed (one-SM) launch."""

    result: TimingResult
    seconds: float

    @property
    def cycles(self) -> int:
        return self.result.cycles


class Device:
    """One simulated GPU with a flat global memory arena."""

    def __init__(self, spec: GpuSpec = RTX2070,
                 memory_bytes: int = 64 << 20):
        self.spec = spec
        self.memory = GlobalMemory(memory_bytes)
        self._bump = _ALIGN  # address 0 stays unmapped, like NULL

    # ---------------------------------------------------------- allocation

    def malloc(self, nbytes: int) -> int:
        """Reserve *nbytes* and return the device address."""
        if nbytes <= 0:
            raise ValueError(f"allocation size must be positive, got {nbytes}")
        addr = self._bump
        self._bump += (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
        if self._bump > self.memory.size:
            raise MemoryError(
                f"device out of memory: {self._bump} > {self.memory.size}"
            )
        return addr

    def malloc_array(self, array: np.ndarray) -> int:
        """Allocate for *array*, copy it in, return the address."""
        addr = self.malloc(array.nbytes)
        self.memcpy_htod(addr, array)
        return addr

    # -------------------------------------------------------------- memcpy

    def memcpy_htod(self, addr: int, array) -> None:
        self.memory.write_array(addr, np.ascontiguousarray(array))

    def memcpy_dtoh(self, addr: int, dtype, count: int) -> np.ndarray:
        return self.memory.read_array(addr, dtype, count)

    # ------------------------------------------------------------- launch

    def launch(self, program: Program, grid=(1, 1),
               max_workers: int = None, engine: str = None) -> FunctionalResult:
        """Run *program* functionally over the whole grid.

        ``max_workers`` shards CTAs over worker processes (``None``/1
        serial, 0 one per CPU); ``engine`` selects the functional
        execution engine (``None`` -> ``REPRO_FUNC_ENGINE``).  Results
        are bit-identical across workers and engines.
        """
        return FunctionalSimulator(engine=engine).run(
            program, self.memory, grid_dim=grid, max_workers=max_workers)

    def launch_timed(self, program: Program, num_ctas: int = 1,
                     bandwidth_share: float = None) -> LaunchTiming:
        """Run *num_ctas* CTAs on one simulated SM, cycle-accurately.

        ``bandwidth_share`` defaults to this SM's fair share of the device
        (1/num_sms), the right setting when modelling a full launch.
        """
        share = bandwidth_share
        if share is None:
            share = 1.0 / self.spec.num_sms
        sim = TimingSimulator(self.spec, bandwidth_share=share)
        result = sim.run(program, self.memory, num_ctas=num_ctas)
        return LaunchTiming(
            result=result,
            seconds=self.spec.cycles_to_seconds(result.cycles),
        )
