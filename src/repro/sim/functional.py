"""Functional (untimed) simulator: executes a kernel over a full grid.

This is the correctness half of the substrate: it runs the generated HGEMM
kernels CTA by CTA and produces bit-exact results that tests compare against
NumPy references.  Within a CTA, warps execute round-robin in *barrier
intervals*: each warp runs until it reaches a ``BAR.SYNC``, an ``EXIT`` or a
configurable fuel limit; the barrier releases when every live warp arrives.
This is exact for well-synchronised programs (all cross-warp communication
through shared memory must be separated by barriers -- which is also the
hardware's own correctness contract).

Four execution engines share those semantics (all compiled from the one
µop table in :mod:`repro.sim.uop`, so they cannot drift apart):

* ``"gridlock"`` -- the grid-lockstep engine: the program is decoded once
  for ``n_ctas * n_warps * 32`` stacked lanes and *the whole grid* executes
  each slot as one NumPy operation in one process.  Shared memory becomes a
  stacked :class:`~repro.sim.shared.StackedSharedMemory` (one segment per
  CTA, constant per-lane word offsets) and ``CTAID`` reads become per-chunk
  constant arrays.  Divergence de-stacks down a refusal ladder: a closure
  that cannot keep all CTAs in lockstep returns ``DIVERGED`` *before*
  mutating state (``STATS`` counter ``func.grid_destacks``), the grid
  splits into per-CTA lockstep states which can in turn de-stack to the
  per-warp interleave path (``func.destacks``).  Grids larger than
  ``_GRIDLOCK_MAX_CTAS`` run in uniform chunks; this replaces
  ``multiprocessing`` sharding for small/medium grids where fork+pickle
  dominates (``REPRO_FUNC_ENGINE=gridlock``).
* ``"lockstep"`` (the default) -- the program is decoded once for
  ``n_warps * 32`` stacked lanes and, between barriers, all warps of a CTA
  execute each slot as one warp-lockstep NumPy operation.  Wherever the
  warps could stop agreeing (cross-warp-divergent predicates or branches,
  reference-only paths) the closure returns ``DIVERGED`` *before* mutating
  state and the CTA de-stacks onto the per-warp interleave loop
  (``STATS`` counter ``func.destacks``).  Well-synchronised GEMM kernels
  never de-stack.  Select explicitly with ``REPRO_FUNC_ENGINE=lockstep``.
* ``"predecoded"`` -- programs are decoded once by
  :func:`repro.sim.decode.predecode` into 32-lane slot-indexed closures with
  fused NumPy fast paths for the hot opcode runs; warps run round-robin in
  barrier intervals (``REPRO_FUNC_ENGINE=predecoded``).
* ``"reference"`` -- the instruction-at-a-time interpreter through
  :func:`repro.sim.exec_units.execute`, kept as the semantic ground
  truth for differential tests and benchmark baselines
  (``REPRO_FUNC_ENGINE=reference``).

Because barrier intervals never cross CTAs, CTAs are architecturally
independent and a grid can run CTA-parallel: pass ``max_workers`` (or set
``REPRO_FUNC_JOBS``) and the grid is sharded over worker processes that
scatter into one ``multiprocessing.shared_memory`` block backing
:class:`GlobalMemory`, each CTA writing its own C tile.  Results (instruction
retire counts per opcode) merge deterministically, so serial and parallel
runs are bit-identical -- ``tests/sim/test_golden_functional.py`` pins this.

``CS2R SR_CLOCKLO`` returns the warp's retired-instruction count here; for
cycle-accurate clocks use :class:`repro.sim.timing.TimingSimulator`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from multiprocessing import shared_memory as _shm_mod

import numpy as np

from ..arch.registers import PredicateFile, RegisterFile, WARP_LANES
from ..isa.program import Program
from ..perf import STATS, default_workers, parallel_map
from ..robust import chaos
from ..robust import guard as _guard
from .decode import DIVERGED, EXITED, predecode
from .exec_units import ExecError, execute
from .memory import GlobalMemory
from .shared import SharedMemory, StackedSharedMemory

__all__ = ["FunctionalSimulator", "FunctionalResult", "SimLimitError"]

ENGINES = ("lockstep", "gridlock", "predecoded", "reference")

#: Largest CTA count stacked into one grid-lockstep state.  Bounds the
#: register-file footprint (256 rows x n_ctas*n_warps*32 lanes x 4 bytes,
#: ~8 MiB at the cap for 8-warp CTAs); bigger grids run in uniform chunks.
_GRIDLOCK_MAX_CTAS = 64


def _default_engine() -> str:
    engine = os.environ.get("REPRO_FUNC_ENGINE", "lockstep")
    if engine not in ENGINES:
        raise ValueError(
            f"REPRO_FUNC_ENGINE must be one of {ENGINES}, got {engine!r}")
    return engine


def _default_jobs():
    jobs = os.environ.get("REPRO_FUNC_JOBS")
    return int(jobs) if jobs else None


class SimLimitError(RuntimeError):
    """Raised when a warp exceeds its instruction fuel (runaway loop)."""


class _WarpState:
    """Execution context of one warp (duck-typed for exec_units)."""

    def __init__(self, warp_id: int, ctaid, block_dim: int,
                 global_mem: GlobalMemory, shared_mem: SharedMemory):
        self.warp_id = warp_id
        self.ctaid = ctaid
        self.lane_ids = np.arange(WARP_LANES, dtype=np.uint32)
        self.tid = (warp_id * WARP_LANES + self.lane_ids).astype(np.uint32)
        self.regs = RegisterFile()
        self.preds = PredicateFile()
        self.global_mem = global_mem
        self.shared_mem = shared_mem
        self.pc = 0
        self.retired = 0
        self.exited = False
        self.at_barrier = False

    def clock(self) -> int:
        return self.retired


class _CtaState:
    """Stacked execution context: all warps of one CTA as ``n_warps * 32``
    lanes, laid out warp-major (warp 0's lanes first).

    Duck-types the warp attributes the decoded closures touch (``regs``,
    ``preds``, ``tid``, ``lane_ids``, ``ctaid``, memories, ``retired``), so
    a closure compiled for stacked lanes runs every warp at once.
    """

    def __init__(self, n_warps: int, ctaid, block_dim: int,
                 global_mem: GlobalMemory, shared_mem: SharedMemory):
        self.n_warps = n_warps
        self.ctaid = ctaid
        self.block_dim = block_dim
        lanes = n_warps * WARP_LANES
        self.lane_ids = np.tile(
            np.arange(WARP_LANES, dtype=np.uint32), n_warps)
        self.tid = np.arange(lanes, dtype=np.uint32)
        self.regs = RegisterFile(lanes)
        self.preds = PredicateFile(lanes)
        self.global_mem = global_mem
        self.shared_mem = shared_mem
        self.retired = 0

    def split(self, pc: int, retired: int) -> list:
        """De-stack into per-warp states (column-slice copies), all resuming
        at *pc* with *retired* instructions already counted."""
        warps = []
        for w in range(self.n_warps):
            warp = _WarpState(w, self.ctaid, self.block_dim,
                              self.global_mem, self.shared_mem)
            cols = slice(w * WARP_LANES, (w + 1) * WARP_LANES)
            warp.regs._data[:] = self.regs._data[:, cols]
            warp.preds._data[:] = self.preds._data[:, cols]
            warp.pc = pc
            warp.retired = retired
            warps.append(warp)
        return warps


class _GridState:
    """Stacked execution context for a *uniform chunk of CTAs*: all warps of
    all CTAs as ``n_ctas * n_warps * 32`` lanes, laid out CTA-major then
    warp-major.

    Duck-types the same closure-facing surface as :class:`_CtaState`; the two
    deliberate differences are ``ctaid`` (a tuple of three per-lane arrays
    rather than scalars -- ``np.full`` in the decoded ``S2R SR_CTAID``
    getters broadcasts them, so the decode layer needs no grid awareness)
    and ``shared_mem`` (a :class:`StackedSharedMemory` whose per-lane word
    offsets route each lane to its own CTA's segment).
    """

    def __init__(self, ctaids, n_warps: int, block_dim: int,
                 global_mem: GlobalMemory,
                 shared_mem: StackedSharedMemory):
        self.ctaids = list(ctaids)
        self.n_ctas = len(self.ctaids)
        self.n_warps = n_warps
        self.block_dim = block_dim
        lanes_per_cta = n_warps * WARP_LANES
        lanes = self.n_ctas * lanes_per_cta
        self.lane_ids = np.tile(
            np.arange(WARP_LANES, dtype=np.uint32), n_warps * self.n_ctas)
        self.tid = np.tile(
            np.arange(lanes_per_cta, dtype=np.uint32), self.n_ctas)
        self.ctaid = tuple(
            np.repeat(
                np.array([c[axis] for c in self.ctaids], dtype=np.uint32),
                lanes_per_cta)
            for axis in range(3))
        self.regs = RegisterFile(lanes)
        self.preds = PredicateFile(lanes)
        self.global_mem = global_mem
        self.shared_mem = shared_mem
        self.retired = 0

    def split_ctas(self, pc: int, retired: int) -> list:
        """De-stack into per-CTA lockstep states (column-slice copies plus a
        private copy of each CTA's shared segment), all resuming at *pc*
        with *retired* instructions already counted per warp."""
        lanes_per_cta = self.n_warps * WARP_LANES
        ctas = []
        for c, ctaid in enumerate(self.ctaids):
            shared = SharedMemory(self.shared_mem.size)
            shared._words[:] = self.shared_mem.segment(c)
            cta = _CtaState(self.n_warps, ctaid, self.block_dim,
                            self.global_mem, shared)
            cols = slice(c * lanes_per_cta, (c + 1) * lanes_per_cta)
            cta.regs._data[:] = self.regs._data[:, cols]
            cta.preds._data[:] = self.preds._data[:, cols]
            cta.retired = retired
            ctas.append(cta)
        return ctas


@dataclass
class FunctionalResult:
    """Statistics of one functional launch."""

    instructions_retired: int = 0
    opcode_counts: dict = field(default_factory=dict)
    ctas_run: int = 0

    def _count(self, opcode: str) -> None:
        self.instructions_retired += 1
        self.opcode_counts[opcode] = self.opcode_counts.get(opcode, 0) + 1

    def _merge(self, other: "FunctionalResult") -> None:
        self.instructions_retired += other.instructions_retired
        self.ctas_run += other.ctas_run
        for opcode, count in other.opcode_counts.items():
            self.opcode_counts[opcode] = self.opcode_counts.get(opcode, 0) + count


class FunctionalSimulator:
    """Executes programs functionally over an (x, y) grid of CTAs.

    ``engine`` selects the execution engine (``None`` -> ``REPRO_FUNC_ENGINE``
    or lockstep); ``max_workers`` the CTA-parallel worker count with the
    :func:`repro.perf.parallel.parallel_map` conventions (``None``/1 serial,
    0 auto, ``REPRO_FUNC_JOBS`` supplying the default); ``guard`` the
    divergence-watchdog mode (``None`` -> ``REPRO_GUARD``, see
    :mod:`repro.robust.guard`).  A watchdog degradation may run the launch
    on a slower rung than ``engine`` requests -- never a faster one.
    """

    def __init__(self, max_instructions_per_warp: int = 5_000_000,
                 engine: str = None, max_workers: int = None,
                 guard: str = None):
        self.max_instructions_per_warp = max_instructions_per_warp
        self.engine = engine if engine is not None else _default_engine()
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        self.max_workers = max_workers
        self.guard = guard

    def run(self, program: Program, global_mem: GlobalMemory,
            grid_dim=(1, 1), max_workers: int = None) -> FunctionalResult:
        """Launch *program* over ``grid_dim`` CTAs against *global_mem*."""
        gx, gy = (grid_dim if len(grid_dim) == 2 else (*grid_dim, 1)[:2])
        ctaids = [(bx, by, 0) for by in range(gy) for bx in range(gx)]
        workers = self._resolve_workers(max_workers, len(ctaids))
        mode = _guard.guard_mode(self.guard)
        engine = _guard.effective_func_engine(self.engine)
        ctx = None
        if mode != "off" and engine != "reference":
            ctx = _guard.GuardContext("functional", engine, mode,
                                      global_mem._words)
        STATS.count("func.runs")
        STATS.count("func.workers", workers)
        with STATS.timer("func.wall"):
            if workers > 1:
                result = self._run_parallel(program, global_mem, ctaids,
                                            workers, engine)
            else:
                result = self._run_ctas(program, global_mem, ctaids, engine)
        if ctx is not None:
            # Chaos flip fires only on guarded runs: a synthetic fast-engine
            # bug for the watchdog to catch, never silent corruption.
            chaos.maybe_flip_output(global_mem._words)
            result = ctx.conclude(
                global_mem._words, result,
                lambda: _reference_rerun(program, ctx.pre, grid_dim,
                                         self.max_instructions_per_warp),
                program=program,
                context={"grid_dim": [gx, gy], "engine": engine,
                         "workers": workers},
            )
        STATS.count("func.ctas", result.ctas_run)
        STATS.count("func.instructions", result.instructions_retired)
        return result

    # ------------------------------------------------------------ internals

    def _resolve_workers(self, max_workers, n_ctas: int) -> int:
        workers = max_workers
        if workers is None:
            workers = self.max_workers
        if workers is None:
            workers = _default_jobs()
        if workers is None:
            return 1
        if workers == 0:
            workers = default_workers()
        return max(1, min(int(workers), n_ctas))

    def _run_ctas(self, program: Program, global_mem: GlobalMemory,
                  ctaids, engine: str = None) -> FunctionalResult:
        engine = engine or self.engine
        result = FunctionalResult()
        if engine == "reference":
            for ctaid in ctaids:
                self._run_cta(program, global_mem, ctaid, result)
                result.ctas_run += 1
            return result
        if engine == "predecoded":
            decoded = predecode(program)
            counts = decoded.new_counts()
            for ctaid in ctaids:
                self._run_cta_decoded(program, decoded, counts, global_mem,
                                      ctaid)
                result.ctas_run += 1
            decoded.accumulate(counts, result)
            return result
        if engine == "gridlock":
            return self._run_grid(program, global_mem, ctaids, result)
        # lockstep: one stacked decoding for the whole run, plus a lazily
        # built 32-lane decoding for CTAs that de-stack.  Each decoding
        # keeps its own counters because their window structures can differ.
        n_warps = program.meta.warps_per_cta
        decoded = predecode(program, lanes=n_warps * WARP_LANES)
        counts = decoded.new_counts()
        fallback = [None, None]  # [DecodedProgram, counts], built on demand
        for ctaid in ctaids:
            self._run_cta_lockstep(program, decoded, counts, fallback,
                                   global_mem, ctaid)
            result.ctas_run += 1
        decoded.accumulate(counts, result)
        if fallback[0] is not None:
            fallback[0].accumulate(fallback[1], result)
        return result

    def _run_parallel(self, program: Program, global_mem: GlobalMemory,
                      ctaids, workers: int,
                      engine: str = None) -> FunctionalResult:
        engine = engine or self.engine
        # Back device memory with a shared block; each worker attaches and
        # scatters its CTAs' stores straight into it.  CTAs write disjoint
        # output tiles, so in-place writes cannot race.
        chunks = [ctaids[i::workers] for i in range(workers)]
        shm = _shm_mod.SharedMemory(create=True, size=global_mem._words.nbytes)
        try:
            view = np.frombuffer(shm.buf, dtype=np.uint32)
            try:
                np.copyto(view, global_mem._words)
                partials = parallel_map(
                    _worker_run_chunk, chunks, max_workers=workers,
                    initializer=_worker_init,
                    initargs=(shm.name, global_mem.size, program, engine,
                              self.max_instructions_per_warp),
                )
                np.copyto(global_mem._words, view)
            finally:
                del view
        finally:
            shm.close()
            shm.unlink()
        result = FunctionalResult()
        for partial in partials:
            result._merge(partial)
        return result

    def _run_cta(self, program: Program, global_mem: GlobalMemory,
                 ctaid, result: FunctionalResult) -> None:
        shared = SharedMemory(program.meta.smem_bytes)
        warps = [
            _WarpState(w, ctaid, program.meta.block_dim, global_mem, shared)
            for w in range(program.meta.warps_per_cta)
        ]
        while True:
            progressed = False
            for warp in warps:
                if warp.exited or warp.at_barrier:
                    continue
                self._run_warp_interval(program, warp, result)
                progressed = True
            live = [w for w in warps if not w.exited]
            if not live:
                return
            if all(w.at_barrier for w in live):
                for w in live:  # release the barrier
                    w.at_barrier = False
                continue
            if not progressed:
                raise SimLimitError(
                    f"CTA {ctaid} deadlocked: some warps wait at a barrier "
                    "that the others never reach"
                )

    def _run_warp_interval(self, program: Program, warp: _WarpState,
                           result: FunctionalResult) -> None:
        """Run one warp until barrier / exit / fuel exhaustion."""
        while True:
            if warp.retired >= self.max_instructions_per_warp:
                raise SimLimitError(
                    f"warp {warp.warp_id} exceeded "
                    f"{self.max_instructions_per_warp} instructions"
                )
            if warp.pc >= len(program):
                raise ExecError(
                    f"warp {warp.warp_id} ran off the end of the program "
                    f"(pc={warp.pc}); missing EXIT?"
                )
            inst = program[warp.pc]
            eff = execute(inst, warp)
            warp.retired += 1
            result._count(inst.opcode)

            for first_reg, values, mask in eff.reg_writes:
                warp.regs.write_group(first_reg, values, mask=_opt_mask(mask))
            for index, values, mask in eff.pred_writes:
                warp.preds.write(index, values, mask=_opt_mask(mask))

            if eff.exited:
                warp.exited = True
                return
            if eff.branch_target is not None:
                warp.pc = eff.branch_target
            else:
                warp.pc += 1
            if eff.barrier:
                warp.at_barrier = True
                return

    # ----------------------------------------------------- predecoded engine

    def _run_cta_decoded(self, program: Program, decoded, counts,
                         global_mem: GlobalMemory, ctaid) -> None:
        shared = SharedMemory(program.meta.smem_bytes)
        warps = [
            _WarpState(w, ctaid, program.meta.block_dim, global_mem, shared)
            for w in range(program.meta.warps_per_cta)
        ]
        self._interleave_decoded(decoded, counts, warps, ctaid)

    def _interleave_decoded(self, decoded, counts, warps, ctaid) -> None:
        """Round-robin barrier-interval loop over per-warp states."""
        while True:
            progressed = False
            for warp in warps:
                if warp.exited or warp.at_barrier:
                    continue
                self._run_warp_interval_decoded(decoded, counts, warp)
                progressed = True
            live = [w for w in warps if not w.exited]
            if not live:
                return
            if all(w.at_barrier for w in live):
                for w in live:  # release the barrier
                    w.at_barrier = False
                continue
            if not progressed:
                raise SimLimitError(
                    f"CTA {ctaid} deadlocked: some warps wait at a barrier "
                    "that the others never reach"
                )

    def _run_warp_interval_decoded(self, decoded, counts, warp) -> None:
        """Decoded interval loop: dispatch closures until barrier/exit/fuel."""
        run_fns = decoded.run_fns
        next_pc = decoded.next_pc
        lens = decoded.lens
        reads_clock = decoded.reads_clock
        n = decoded.n
        limit = self.max_instructions_per_warp
        pc = warp.pc
        retired = warp.retired
        try:
            while True:
                if retired >= limit:
                    raise SimLimitError(
                        f"warp {warp.warp_id} exceeded {limit} instructions")
                if pc >= n:
                    raise ExecError(
                        f"warp {warp.warp_id} ran off the end of the program "
                        f"(pc={pc}); missing EXIT?")
                if reads_clock[pc]:
                    warp.retired = retired  # CS2R reads the pre-retire count
                signal = run_fns[pc](warp)
                counts[pc] += 1
                retired += lens[pc]
                if signal is None:
                    pc = next_pc[pc]
                elif signal >= 0:
                    pc = signal
                elif signal == EXITED:
                    warp.exited = True
                    return
                else:  # BARRIER
                    pc = next_pc[pc]
                    warp.at_barrier = True
                    return
        finally:
            warp.pc = pc
            warp.retired = retired

    # ------------------------------------------------------- lockstep engine

    def _run_cta_lockstep(self, program: Program, decoded, counts, fallback,
                          global_mem: GlobalMemory, ctaid) -> None:
        """Run one CTA with all warps stacked into a single lane dimension."""
        shared = SharedMemory(program.meta.smem_bytes)
        cta = _CtaState(program.meta.warps_per_cta, ctaid,
                        program.meta.block_dim, global_mem, shared)
        self._lockstep_loop(program, decoded, counts, fallback, cta, 0, 0)

    def _lockstep_loop(self, program: Program, decoded, counts, fallback,
                       cta: _CtaState, pc: int, retired: int) -> None:
        """Signal-dispatch loop over a stacked per-CTA state from (pc,
        retired).

        Between barriers every warp executes the same slot simultaneously,
        so barriers release instantly and the interval machinery disappears;
        the loop is a straight signal dispatch.  On ``DIVERGED`` the CTA
        de-stacks (no state was mutated) and finishes on the 32-lane
        interleave path, which owns all per-warp semantics.  Starting from a
        nonzero ``pc`` resumes a CTA the grid-lockstep engine de-stacked.
        """
        ctaid = cta.ctaid
        n_warps = cta.n_warps
        run_fns = decoded.run_fns
        next_pc = decoded.next_pc
        lens = decoded.lens
        reads_clock = decoded.reads_clock
        n = decoded.n
        limit = self.max_instructions_per_warp
        # ``retired`` is the per-warp count (identical across warps here).
        while True:
            if retired >= limit:
                raise SimLimitError(
                    f"CTA {ctaid} exceeded {limit} instructions per warp")
            if pc >= n:
                raise ExecError(
                    f"CTA {ctaid} ran off the end of the program "
                    f"(pc={pc}); missing EXIT?")
            if reads_clock[pc]:
                cta.retired = retired  # CS2R reads the pre-retire count
            signal = run_fns[pc](cta)
            if signal == DIVERGED:
                STATS.count("func.destacks")
                if fallback[0] is None:
                    fallback[0] = predecode(program)
                    fallback[1] = fallback[0].new_counts()
                warps = cta.split(pc, retired)
                self._interleave_decoded(fallback[0], fallback[1], warps,
                                         ctaid)
                return
            counts[pc] += n_warps
            retired += lens[pc]
            if signal is None:
                pc = next_pc[pc]
            elif signal >= 0:
                pc = signal
            elif signal == EXITED:
                return  # warp-uniform by construction: all warps exit
            else:  # BARRIER: every warp arrived together; release instantly
                pc = next_pc[pc]

    # ------------------------------------------------------- gridlock engine

    def _run_grid(self, program: Program, global_mem: GlobalMemory,
                  ctaids, result: FunctionalResult) -> FunctionalResult:
        """Grid-lockstep driver: stack uniform chunks of CTAs and run each
        chunk as one state.

        Each distinct chunk size needs its own stacked decoding (closures
        are lane-count-specialised), so chunks are uniform except possibly
        the last; the common case (grid <= ``_GRIDLOCK_MAX_CTAS``) decodes
        exactly once.  De-stacked CTAs share one lazily built per-CTA
        decoding, whose own fallback is the 32-lane interleave path --
        slot indices are lane-count invariant, so a (pc, retired) resume
        point means the same thing at every rung of the ladder.
        """
        n_warps = program.meta.warps_per_cta
        cta_fallback = [None, None]   # per-CTA lockstep decoding + counts
        warp_fallback = [None, None]  # 32-lane interleave decoding + counts
        decodings = {}                # chunk size -> (DecodedProgram, counts)
        for start in range(0, len(ctaids), _GRIDLOCK_MAX_CTAS):
            chunk = ctaids[start:start + _GRIDLOCK_MAX_CTAS]
            entry = decodings.get(len(chunk))
            if entry is None:
                dp = predecode(program,
                               lanes=len(chunk) * n_warps * WARP_LANES)
                entry = decodings[len(chunk)] = (dp, dp.new_counts())
            self._run_grid_chunk(program, entry[0], entry[1], cta_fallback,
                                 warp_fallback, global_mem, chunk)
            result.ctas_run += len(chunk)
        for decoded, counts in decodings.values():
            decoded.accumulate(counts, result)
        for fb in (cta_fallback, warp_fallback):
            if fb[0] is not None:
                fb[0].accumulate(fb[1], result)
        return result

    def _run_grid_chunk(self, program: Program, decoded, counts,
                        cta_fallback, warp_fallback,
                        global_mem: GlobalMemory, ctaids) -> None:
        """Run one uniform chunk of CTAs as a single grid-stacked state.

        Identical in shape to :meth:`_lockstep_loop` one level up: barriers
        release instantly (every warp of every CTA arrives together -- each
        CTA's barrier is independent, and lockstep means they all arrive in
        the same slot), ``EXITED``/branches are grid-uniform by
        construction, and ``DIVERGED`` is a pure refusal that splits the
        chunk into per-CTA lockstep states resuming at the refusal point.
        """
        n_warps = program.meta.warps_per_cta
        shared = StackedSharedMemory(program.meta.smem_bytes, len(ctaids),
                                     n_warps * WARP_LANES)
        grid = _GridState(ctaids, n_warps, program.meta.block_dim,
                          global_mem, shared)
        run_fns = decoded.run_fns
        next_pc = decoded.next_pc
        lens = decoded.lens
        reads_clock = decoded.reads_clock
        n = decoded.n
        limit = self.max_instructions_per_warp
        warps_in_chunk = len(ctaids) * n_warps
        pc = 0
        retired = 0  # per-warp count (identical across the whole chunk)
        while True:
            if retired >= limit:
                raise SimLimitError(
                    f"grid chunk {ctaids[0]}..{ctaids[-1]} exceeded "
                    f"{limit} instructions per warp")
            if pc >= n:
                raise ExecError(
                    f"grid chunk {ctaids[0]}..{ctaids[-1]} ran off the end "
                    f"of the program (pc={pc}); missing EXIT?")
            if reads_clock[pc]:
                grid.retired = retired  # CS2R reads the pre-retire count
            signal = run_fns[pc](grid)
            if signal == DIVERGED:
                STATS.count("func.grid_destacks")
                if cta_fallback[0] is None:
                    cta_fallback[0] = predecode(
                        program, lanes=n_warps * WARP_LANES)
                    cta_fallback[1] = cta_fallback[0].new_counts()
                for cta in grid.split_ctas(pc, retired):
                    self._lockstep_loop(program, cta_fallback[0],
                                        cta_fallback[1], warp_fallback,
                                        cta, pc, retired)
                return
            counts[pc] += warps_in_chunk
            retired += lens[pc]
            if signal is None:
                pc = next_pc[pc]
            elif signal >= 0:
                pc = signal
            elif signal == EXITED:
                return  # grid-uniform by construction: everything exits
            else:  # BARRIER: all warps of all CTAs arrived; release instantly
                pc = next_pc[pc]


def _opt_mask(mask: np.ndarray):
    """Treat an all-active mask as no mask (fast path + full overwrite)."""
    return None if mask.all() else mask


def _reference_rerun(program: Program, pre_words: np.ndarray, grid_dim,
                     fuel: int):
    """Watchdog rerun: the same launch on the reference engine, from the
    guarded run's memory snapshot.  Returns ``(result, memory_words)``."""
    mem = GlobalMemory(pre_words.nbytes)
    np.copyto(mem._words, pre_words)
    sim = FunctionalSimulator(max_instructions_per_warp=fuel,
                              engine="reference", max_workers=1, guard="off")
    result = sim.run(program, mem, grid_dim=grid_dim)
    return result, mem._words


# ------------------------------------------------------- worker-side plumbing

_WORKER: dict = {}


def _worker_init(shm_name: str, size_bytes: int, program: Program,
                 engine: str, max_instructions_per_warp: int) -> None:
    """Runs once per worker process: attach the shared device memory."""
    shm = _shm_mod.SharedMemory(name=shm_name)
    _WORKER["shm"] = shm
    _WORKER["mem"] = GlobalMemory(size_bytes, buffer=shm.buf)
    _WORKER["program"] = program
    _WORKER["sim"] = FunctionalSimulator(
        max_instructions_per_warp=max_instructions_per_warp, engine=engine,
        max_workers=1)


def _worker_run_chunk(ctaids) -> FunctionalResult:
    """Run one shard of CTAs against the shared memory; return its stats."""
    sim = _WORKER["sim"]
    return sim._run_ctas(_WORKER["program"], _WORKER["mem"], ctaids)
