"""Functional (untimed) simulator: executes a kernel over a full grid.

This is the correctness half of the substrate: it runs the generated HGEMM
kernels CTA by CTA and produces bit-exact results that tests compare against
NumPy references.  Within a CTA, warps execute round-robin in *barrier
intervals*: each warp runs until it reaches a ``BAR.SYNC``, an ``EXIT`` or a
configurable fuel limit; the barrier releases when every live warp arrives.
This is exact for well-synchronised programs (all cross-warp communication
through shared memory must be separated by barriers -- which is also the
hardware's own correctness contract).

``CS2R SR_CLOCKLO`` returns the warp's retired-instruction count here; for
cycle-accurate clocks use :class:`repro.sim.timing.TimingSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arch.registers import PredicateFile, RegisterFile, WARP_LANES
from ..isa.program import Program
from .exec_units import ExecError, execute
from .memory import GlobalMemory
from .shared import SharedMemory

__all__ = ["FunctionalSimulator", "FunctionalResult", "SimLimitError"]


class SimLimitError(RuntimeError):
    """Raised when a warp exceeds its instruction fuel (runaway loop)."""


class _WarpState:
    """Execution context of one warp (duck-typed for exec_units)."""

    def __init__(self, warp_id: int, ctaid, block_dim: int,
                 global_mem: GlobalMemory, shared_mem: SharedMemory):
        self.warp_id = warp_id
        self.ctaid = ctaid
        self.lane_ids = np.arange(WARP_LANES, dtype=np.uint32)
        self.tid = (warp_id * WARP_LANES + self.lane_ids).astype(np.uint32)
        self.regs = RegisterFile()
        self.preds = PredicateFile()
        self.global_mem = global_mem
        self.shared_mem = shared_mem
        self.pc = 0
        self.retired = 0
        self.exited = False
        self.at_barrier = False

    def clock(self) -> int:
        return self.retired


@dataclass
class FunctionalResult:
    """Statistics of one functional launch."""

    instructions_retired: int = 0
    opcode_counts: dict = field(default_factory=dict)
    ctas_run: int = 0

    def _count(self, opcode: str) -> None:
        self.instructions_retired += 1
        self.opcode_counts[opcode] = self.opcode_counts.get(opcode, 0) + 1


class FunctionalSimulator:
    """Executes programs functionally over an (x, y) grid of CTAs."""

    def __init__(self, max_instructions_per_warp: int = 5_000_000):
        self.max_instructions_per_warp = max_instructions_per_warp

    def run(self, program: Program, global_mem: GlobalMemory,
            grid_dim=(1, 1)) -> FunctionalResult:
        """Launch *program* over ``grid_dim`` CTAs against *global_mem*."""
        gx, gy = (grid_dim if len(grid_dim) == 2 else (*grid_dim, 1)[:2])
        result = FunctionalResult()
        for by in range(gy):
            for bx in range(gx):
                self._run_cta(program, global_mem, (bx, by, 0), result)
                result.ctas_run += 1
        return result

    # ------------------------------------------------------------ internals

    def _run_cta(self, program: Program, global_mem: GlobalMemory,
                 ctaid, result: FunctionalResult) -> None:
        shared = SharedMemory(program.meta.smem_bytes)
        warps = [
            _WarpState(w, ctaid, program.meta.block_dim, global_mem, shared)
            for w in range(program.meta.warps_per_cta)
        ]
        while True:
            progressed = False
            for warp in warps:
                if warp.exited or warp.at_barrier:
                    continue
                self._run_warp_interval(program, warp, result)
                progressed = True
            live = [w for w in warps if not w.exited]
            if not live:
                return
            if all(w.at_barrier for w in live):
                for w in live:  # release the barrier
                    w.at_barrier = False
                continue
            if not progressed:
                raise SimLimitError(
                    f"CTA {ctaid} deadlocked: some warps wait at a barrier "
                    "that the others never reach"
                )

    def _run_warp_interval(self, program: Program, warp: _WarpState,
                           result: FunctionalResult) -> None:
        """Run one warp until barrier / exit / fuel exhaustion."""
        while True:
            if warp.retired >= self.max_instructions_per_warp:
                raise SimLimitError(
                    f"warp {warp.warp_id} exceeded "
                    f"{self.max_instructions_per_warp} instructions"
                )
            if warp.pc >= len(program):
                raise ExecError(
                    f"warp {warp.warp_id} ran off the end of the program "
                    f"(pc={warp.pc}); missing EXIT?"
                )
            inst = program[warp.pc]
            eff = execute(inst, warp)
            warp.retired += 1
            result._count(inst.opcode)

            for first_reg, values, mask in eff.reg_writes:
                warp.regs.write_group(first_reg, values, mask=_opt_mask(mask))
            for index, values, mask in eff.pred_writes:
                warp.preds.write(index, values, mask=_opt_mask(mask))

            if eff.exited:
                warp.exited = True
                return
            if eff.branch_target is not None:
                warp.pc = eff.branch_target
            else:
                warp.pc += 1
            if eff.barrier:
                warp.at_barrier = True
                return


def _opt_mask(mask: np.ndarray):
    """Treat an all-active mask as no mask (fast path + full overwrite)."""
    return None if mask.all() else mask
