"""Instruction model and opcode registry for the SASS subset.

The subset covers everything the paper's kernels and microbenchmarks need:

==========  =========  ====================================================
opcode      pipe       purpose
==========  =========  ====================================================
HMMA        tensor     Tensor Core matrix multiply-accumulate (.884/.1688)
LDG/STG     lsu        global memory load/store (widths 32/64/128)
LDS/STS     lsu        shared memory load/store (widths 32/64/128)
MOV/MOV32I  alu        register moves / immediates
IADD3       alu        3-input integer add
IMAD        alu        integer multiply-add (also used as IMAD.MOV)
SHF         alu        funnel shift (used for /, % by powers of two)
LOP3        alu        3-input logic op (we use AND/OR/XOR LUTs)
ISETP       alu        integer compare into predicate
SEL         alu        predicated select
HFMA2       fma        paired FP16 fused multiply-add (the FP16 "CUDA core"
                       path the paper compares Tensor Cores against)
S2R/CS2R    alu        read special register / clock counter
BAR         barrier    CTA-wide barrier (BAR.SYNC)
BRA         branch     relative branch (predicated)
NOP/EXIT    alu        padding / kernel exit
==========  =========  ====================================================

Pipes matter: the paper's whole optimization story is that HMMA issues on the
tensor pipe while LDG/LDS/STS share the memory-IO pipe (Section VI-A: "LDG,
STS and LDS instructions all occupy memory I/O pipe"), so their CPIs add on
that pipe and must be overlapped with tensor work.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

from .control import ControlInfo
from .operands import Imm, MemRef, Pred, Reg, SpecialReg

__all__ = [
    "Pipe",
    "OpcodeInfo",
    "OPCODES",
    "Instruction",
    "memory_width",
]

Operand = Union[Reg, Pred, Imm, MemRef, SpecialReg]


class Pipe:
    """Execution pipe identifiers (string constants, not an enum, so specs
    can use them as plain dict keys)."""

    TENSOR = "tensor"
    LSU = "lsu"
    ALU = "alu"
    FMA = "fma"
    BRANCH = "branch"
    BARRIER = "barrier"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static properties of an opcode."""

    name: str
    pipe: str
    code: int
    is_memory: bool = False
    is_store: bool = False
    is_branch: bool = False
    writes_predicate: bool = False
    #: Executes as one warp-wide operation; cannot be lane-predicated.
    warp_wide: bool = False


def _build_registry() -> dict:
    table = [
        OpcodeInfo("NOP", Pipe.ALU, 0x00),
        OpcodeInfo("EXIT", Pipe.ALU, 0x01),
        OpcodeInfo("MOV", Pipe.ALU, 0x02),
        OpcodeInfo("MOV32I", Pipe.ALU, 0x03),
        OpcodeInfo("IADD3", Pipe.ALU, 0x04),
        OpcodeInfo("IMAD", Pipe.ALU, 0x05),
        OpcodeInfo("SHF", Pipe.ALU, 0x06),
        OpcodeInfo("LOP3", Pipe.ALU, 0x07),
        OpcodeInfo("ISETP", Pipe.ALU, 0x08, writes_predicate=True),
        OpcodeInfo("SEL", Pipe.ALU, 0x09),
        OpcodeInfo("S2R", Pipe.ALU, 0x0A),
        OpcodeInfo("CS2R", Pipe.ALU, 0x0B),
        OpcodeInfo("BAR", Pipe.BARRIER, 0x0C),
        OpcodeInfo("BRA", Pipe.BRANCH, 0x0D, is_branch=True),
        OpcodeInfo("HMMA", Pipe.TENSOR, 0x10, warp_wide=True),
        OpcodeInfo("HFMA2", Pipe.FMA, 0x11),
        OpcodeInfo("IMMA", Pipe.TENSOR, 0x12, warp_wide=True),
        OpcodeInfo("LDG", Pipe.LSU, 0x20, is_memory=True),
        OpcodeInfo("STG", Pipe.LSU, 0x21, is_memory=True, is_store=True),
        OpcodeInfo("LDS", Pipe.LSU, 0x22, is_memory=True),
        OpcodeInfo("STS", Pipe.LSU, 0x23, is_memory=True, is_store=True),
    ]
    return {info.name: info for info in table}


#: Registry of all supported opcodes, keyed by mnemonic root.
OPCODES = _build_registry()

_OPCODES_BY_CODE = {info.code: info for info in OPCODES.values()}


def opcode_by_code(code: int) -> OpcodeInfo:
    """Look up an opcode by its numeric encoding."""
    try:
        return _OPCODES_BY_CODE[code]
    except KeyError:
        raise ValueError(f"unknown opcode code {code:#x}") from None


_WIDTH_MODS = {"32": 32, "64": 64, "128": 128}


def memory_width(mods: tuple) -> int:
    """Access width in bits encoded in a memory opcode's modifiers.

    SASS spells ``LDG.E.128``, ``STS.64`` etc.; a missing width means 32.
    """
    for mod in mods:
        if mod in _WIDTH_MODS:
            return _WIDTH_MODS[mod]
    return 32


@dataclass(frozen=True)
class Instruction:
    """One SASS instruction: guard predicate, opcode, modifiers, operands,
    and its scheduling control info.

    ``target`` is the label name for branches; the assembler resolves it to
    an instruction index stored in ``target_index``.
    """

    opcode: str
    dests: tuple = ()
    srcs: tuple = ()
    mods: tuple = ()
    pred: Optional[Pred] = None
    ctrl: ControlInfo = field(default_factory=ControlInfo)
    target: Optional[str] = None
    target_index: Optional[int] = None

    def __post_init__(self) -> None:
        if self.opcode not in OPCODES:
            raise ValueError(f"unknown opcode: {self.opcode!r}")
        if self.info.is_branch and self.target is None and self.target_index is None:
            raise ValueError(f"{self.opcode} requires a branch target")

    @property
    def info(self) -> OpcodeInfo:
        return OPCODES[self.opcode]

    @property
    def pipe(self) -> str:
        return self.info.pipe

    @property
    def width(self) -> int:
        """Access width in bits (memory instructions only)."""
        if not self.info.is_memory:
            raise ValueError(f"{self.opcode} is not a memory instruction")
        return memory_width(self.mods)

    @property
    def num_data_regs(self) -> int:
        """Registers moved by a memory instruction (1, 2 or 4)."""
        return self.width // 32

    @property
    def mnemonic(self) -> str:
        return ".".join((self.opcode,) + self.mods)

    def with_ctrl(self, ctrl: ControlInfo) -> "Instruction":
        return replace(self, ctrl=ctrl)

    def with_target_index(self, index: int) -> "Instruction":
        return replace(self, target_index=index)

    def reads(self) -> tuple:
        """All operands whose values this instruction consumes."""
        out = list(self.srcs)
        if self.pred is not None and not self.pred.is_pt:
            out.append(self.pred)
        return tuple(out)

    def __str__(self) -> str:
        parts = []
        if self.pred is not None and not (self.pred.is_pt and not self.pred.negated):
            parts.append(f"@{self.pred}")
        parts.append(self.mnemonic)
        operands = ", ".join(str(op) for op in (*self.dests, *self.srcs))
        if self.target is not None:
            operands = f"{operands}, {self.target}" if operands else self.target
        body = " ".join(parts)
        if operands:
            body = f"{body} {operands}"
        return f"{body} {self.ctrl}"
