"""Disassembler: binary images back to assembleable SASS text.

Completes the toolchain loop: ``assemble -> encode_program`` produces the
binary; this module recovers a text listing that re-assembles to an
equivalent program.  Labels are synthesised (``L0``, ``L1``, ...) at branch
targets since the binary stores resolved indices only — the classic
disassembler experience.
"""

from __future__ import annotations

from .encoding import decode_program
from .instructions import Instruction
from .program import KernelMeta, Program

__all__ = ["disassemble", "disassemble_to_program"]


def _collect_labels(instructions) -> dict:
    """Map branch-target indices to synthetic label names, in order."""
    targets = sorted({
        inst.target_index for inst in instructions
        if inst.target_index is not None
    })
    return {index: f"L{n}" for n, index in enumerate(targets)}


def _format_instruction(inst: Instruction, labels: dict) -> str:
    parts = []
    if inst.pred is not None:
        parts.append(f"@{inst.pred}")
    parts.append(inst.mnemonic)
    operands = [str(op) for op in (*inst.dests, *inst.srcs)]
    if inst.target_index is not None:
        operands.append(labels[inst.target_index])
    body = " ".join(parts)
    if operands:
        body += " " + ", ".join(operands)
    ctrl = str(inst.ctrl)
    if ctrl != "{stall=1}":
        body += f" {ctrl}"
    return body


def disassemble(blob: bytes, meta: KernelMeta = None) -> str:
    """Disassemble a binary image to SASS text.

    The output round-trips: ``assemble(disassemble(encode_program(p)))``
    executes identically to ``p`` (labels are renamed, immediates are
    normalised to unsigned).
    """
    instructions = decode_program(blob)
    labels = _collect_labels(instructions)

    lines = []
    if meta is not None:
        lines.append(f".kernel {meta.name}")
        lines.append(f".regs {meta.num_regs}")
        lines.append(f".smem {meta.smem_bytes}")
        lines.append(f".block {meta.block_dim}")
        lines.append("")
    for index, inst in enumerate(instructions):
        if index in labels:
            lines.append(f"{labels[index]}:")
        lines.append(f"  {_format_instruction(inst, labels)}")
    # A label may point one past the end (a branch to EXIT fall-through).
    if len(instructions) in labels:
        lines.append(f"{labels[len(instructions)]}:")
    return "\n".join(lines) + "\n"


def disassemble_to_program(blob: bytes, meta: KernelMeta = None) -> Program:
    """Decode a binary image directly into an executable Program."""
    instructions = decode_program(blob)
    labels = _collect_labels(instructions)
    return Program(
        instructions=instructions,
        meta=meta or KernelMeta(),
        labels={name: index for index, name in labels.items()},
    )
