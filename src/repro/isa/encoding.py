"""Binary encoding of the SASS subset into 128-bit instruction words.

Turing encodes each instruction in one 128-bit word with the scheduling
control fields embedded in the high bits (unlike Maxwell/Pascal's separate
control words).  NVIDIA's exact bit layout is unpublished -- that opacity is
the premise of the paper -- so this module defines a *self-consistent*
Turing-style layout with the same structure: 8-bit opcode, guard predicate,
register/immediate/memory operand fields, modifier index, and the 21-bit
control block of :class:`~repro.isa.control.ControlInfo` in the top bits.

Bit layout (LSB first)::

    [0:8)     opcode code
    [8)       has guard predicate
    [9:12)    guard predicate index
    [12)      guard negated
    [13:15)   number of destinations (0-2)
    [15:23)   dest0 payload (reg index, or pred index|neg<<3)
    [23)      dest0 is a predicate
    [24:28)   dest1 predicate payload (ISETP)
    [28:31)   number of sources (0-3)
    [31:37)   source tags, 2 bits each (0=Reg 1=Pred 2=Special 3=wide)
    [37:61)   narrow source payloads, 8 bits each
    [61)      wide source is a memory reference
    [62:94)   wide payload: imm32, mem (base | offset<<8), or branch target
    [94:102)  modifier-set index (per-opcode table)
    [102:123) control info (ControlInfo.encode)
    [123:128) reserved, zero

At most one source may be "wide" (an immediate or a memory reference); the
whole subset satisfies this, as does real SASS.
"""

from __future__ import annotations

from .control import ControlInfo
from .instructions import Instruction, opcode_by_code
from .operands import Imm, MemRef, Pred, Reg, SpecialReg
from .program import Program

__all__ = [
    "EncodingError",
    "MOD_TABLES",
    "encode_instruction",
    "decode_instruction",
    "encode_program",
    "decode_program",
    "INSTRUCTION_BYTES",
]

#: Size of one encoded instruction.
INSTRUCTION_BYTES = 16


class EncodingError(ValueError):
    """Raised when an instruction cannot be represented in the binary form."""


def _isetp_mods():
    return tuple((cmp, "AND") for cmp in ("LT", "LE", "GT", "GE", "EQ", "NE"))


def _mem_mods(prefix: tuple, widths=("", "32", "64", "128"), cg=False) -> tuple:
    out = []
    cache_opts = ((), ("CG",)) if cg else ((),)
    for cache in cache_opts:
        for width in widths:
            mods = prefix + cache + ((width,) if width else ())
            out.append(mods)
    return tuple(out)


#: Canonical modifier tuples per opcode; the encoded form stores an index
#: into this table.
MOD_TABLES = {
    "NOP": ((),),
    "EXIT": ((),),
    "MOV": ((),),
    "MOV32I": ((),),
    "IADD3": ((),),
    "IMAD": ((), ("WIDE",)),
    "SHF": (("L",), ("R",)),
    "LOP3": (("AND",), ("OR",), ("XOR",)),
    "ISETP": _isetp_mods(),
    "SEL": ((),),
    "S2R": ((),),
    "CS2R": ((),),
    "BAR": (("SYNC",),),
    "BRA": ((),),
    "HMMA": (("1688", "F16"), ("1688", "F32"), ("884", "F16"),
             ("16816", "F16"), ("16816", "F32")),
    "IMMA": (("8816", "S8", "S8"),),
    "HFMA2": ((),),
    "LDG": _mem_mods(("E",), cg=True),
    "STG": _mem_mods(("E",)),
    "LDS": _mem_mods(()),
    "STS": _mem_mods(()),
}

_TAG_REG, _TAG_PRED, _TAG_NARROW, _TAG_WIDE = range(4)

#: Opcodes whose narrow-slot sources are special registers; for every
#: other opcode the narrow slot carries a small immediate (0..255).  Real
#: SASS makes the same distinction positionally; one shared tag keeps the
#: 2-bit tag budget.
_SPECIAL_SOURCE_OPS = frozenset({"S2R", "CS2R"})


def _pred_payload(pred: Pred) -> int:
    return pred.index | (int(pred.negated) << 3)


def _pred_from_payload(payload: int) -> Pred:
    return Pred(payload & 0x7, negated=bool(payload >> 3))


def encode_instruction(inst: Instruction) -> int:
    """Encode one instruction into its 128-bit integer word."""
    info = inst.info
    word = info.code

    if inst.pred is not None:
        word |= 1 << 8
        word |= inst.pred.index << 9
        word |= int(inst.pred.negated) << 12

    if len(inst.dests) > 2:
        raise EncodingError(f"too many destinations: {inst}")
    word |= len(inst.dests) << 13
    if inst.dests:
        d0 = inst.dests[0]
        if isinstance(d0, Reg):
            word |= d0.index << 15
        elif isinstance(d0, Pred):
            word |= _pred_payload(d0) << 15
            word |= 1 << 23
        else:
            raise EncodingError(f"unsupported destination {d0!r}")
    if len(inst.dests) == 2:
        d1 = inst.dests[1]
        if not isinstance(d1, Pred):
            raise EncodingError("second destination must be a predicate")
        word |= _pred_payload(d1) << 24

    if len(inst.srcs) > 3:
        raise EncodingError(f"too many sources: {inst}")
    word |= len(inst.srcs) << 28

    # One source may use the 32-bit wide field.  When several immediates
    # compete, the one that cannot fit the 8-bit narrow slot gets it (two
    # non-narrow wides are unencodable, as in real SASS).
    def _fits_narrow(op) -> bool:
        return (isinstance(op, Imm) and 0 <= op.value <= 255
                and inst.opcode not in _SPECIAL_SOURCE_OPS)

    wide_slot = None
    for slot, src in enumerate(inst.srcs):
        if isinstance(src, MemRef) or (isinstance(src, Imm)
                                       and not _fits_narrow(src)):
            if wide_slot is not None:
                raise EncodingError(f"more than one wide operand: {inst}")
            wide_slot = slot
    if wide_slot is None:  # a lone small immediate still prefers the wide slot
        for slot, src in enumerate(inst.srcs):
            if isinstance(src, Imm):
                wide_slot = slot
                break

    for slot, src in enumerate(inst.srcs):
        if isinstance(src, Reg):
            tag, payload = _TAG_REG, src.index
        elif isinstance(src, Pred):
            tag, payload = _TAG_PRED, _pred_payload(src)
        elif isinstance(src, SpecialReg):
            tag, payload = _TAG_NARROW, src.code
        elif slot == wide_slot:
            tag, payload = _TAG_WIDE, 0
            if isinstance(src, MemRef):
                word |= 1 << 61
                word |= (src.base.index | ((src.offset & 0xFFFFFF) << 8)) << 62
            else:
                word |= src.unsigned << 62
        elif isinstance(src, Imm):
            tag, payload = _TAG_NARROW, src.value
        else:
            raise EncodingError(f"unsupported source {src!r}")
        word |= tag << (31 + 2 * slot)
        word |= payload << (37 + 8 * slot)

    if info.is_branch:
        if inst.target_index is None:
            raise EncodingError("cannot encode an unresolved branch")
        if wide_slot is not None:
            raise EncodingError("branch cannot carry a wide operand")
        word |= (inst.target_index & 0xFFFFFFFF) << 62

    try:
        mod_index = MOD_TABLES[inst.opcode].index(inst.mods)
    except ValueError:
        raise EncodingError(
            f"modifiers {inst.mods!r} not encodable for {inst.opcode}"
        ) from None
    word |= mod_index << 94

    word |= inst.ctrl.encode() << 102
    return word


def decode_instruction(word: int) -> Instruction:
    """Decode a 128-bit integer word back into an :class:`Instruction`."""
    if not 0 <= word < (1 << 128):
        raise EncodingError("word does not fit in 128 bits")
    info = opcode_by_code(word & 0xFF)

    pred = None
    if (word >> 8) & 1:
        pred = Pred((word >> 9) & 0x7, negated=bool((word >> 12) & 1))

    n_dests = (word >> 13) & 0x3
    dests = []
    if n_dests >= 1:
        payload = (word >> 15) & 0xFF
        if (word >> 23) & 1:
            dests.append(_pred_from_payload(payload & 0xF))
        else:
            dests.append(Reg(payload))
    if n_dests == 2:
        dests.append(_pred_from_payload((word >> 24) & 0xF))

    n_srcs = (word >> 28) & 0x7
    srcs = []
    for slot in range(n_srcs):
        tag = (word >> (31 + 2 * slot)) & 0x3
        payload = (word >> (37 + 8 * slot)) & 0xFF
        if tag == _TAG_REG:
            srcs.append(Reg(payload))
        elif tag == _TAG_PRED:
            srcs.append(_pred_from_payload(payload & 0xF))
        elif tag == _TAG_NARROW:
            if info.name in _SPECIAL_SOURCE_OPS:
                srcs.append(SpecialReg.from_code(payload))
            else:
                srcs.append(Imm(payload))
        else:
            wide = (word >> 62) & 0xFFFFFFFF
            if (word >> 61) & 1:
                offset = (wide >> 8) & 0xFFFFFF
                if offset >= 1 << 23:  # sign-extend 24-bit offset
                    offset -= 1 << 24
                srcs.append(MemRef(Reg(wide & 0xFF), offset))
            else:
                srcs.append(Imm(wide))

    target_index = None
    if info.is_branch:
        target_index = (word >> 62) & 0xFFFFFFFF

    mods = MOD_TABLES[info.name][(word >> 94) & 0xFF]
    ctrl = ControlInfo.decode((word >> 102) & ((1 << 21) - 1))

    return Instruction(
        opcode=info.name,
        dests=tuple(dests),
        srcs=tuple(srcs),
        mods=mods,
        pred=pred,
        ctrl=ctrl,
        target_index=target_index,
    )


def encode_program(program: Program) -> bytes:
    """Encode a whole program to its little-endian binary image."""
    chunks = []
    for inst in program:
        chunks.append(encode_instruction(inst).to_bytes(INSTRUCTION_BYTES, "little"))
    return b"".join(chunks)


def decode_program(blob: bytes) -> list:
    """Decode a binary image into a list of instructions.

    Labels are not recoverable (they are assembler-level names); branch
    targets come back as resolved indices, which is everything the
    simulators need.
    """
    if len(blob) % INSTRUCTION_BYTES:
        raise EncodingError(
            f"binary image length {len(blob)} is not a multiple of "
            f"{INSTRUCTION_BYTES}"
        )
    out = []
    for pos in range(0, len(blob), INSTRUCTION_BYTES):
        word = int.from_bytes(blob[pos : pos + INSTRUCTION_BYTES], "little")
        out.append(decode_instruction(word))
    return out
