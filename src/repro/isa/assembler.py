"""Two-pass assembler: SASS-subset text to :class:`~repro.isa.program.Program`.

Source format (one instruction per line)::

    .kernel hmma_cpi     // kernel metadata directives
    .regs 64
    .smem 0
    .block 32

    LOOP:                                  // labels end with ':'
      S2R R0, SR_TID.X {stall=2, wb=0}
      MOV32I R1, 0x80
      HMMA.1688.F16 R4, R8, R10, R4 {stall=8}
      @!P0 BRA LOOP {stall=5}
      EXIT

Control fields go in braces: ``stall=N``, ``yield``, ``wb=N`` (write
barrier), ``rb=N`` (read barrier), ``wait=MASK`` (int, ``0x..`` or ``0b..``),
``reuse=MASK``.  This replaces the opaque ``--:-:-:Y:8`` column syntax used
by ``maxas``/``turingas`` with named fields, but expresses the same hardware
controls.
"""

from __future__ import annotations

import re

from .control import ControlInfo
from .instructions import OPCODES, Instruction
from .operands import (
    Imm,
    MemRef,
    Pred,
    PT_INDEX,
    Reg,
    RZ_INDEX,
    SPECIAL_REGISTERS,
    SpecialReg,
)
from .program import KernelMeta, Program

__all__ = ["AssemblyError", "assemble", "parse_operand", "parse_control"]


class AssemblyError(ValueError):
    """Raised on malformed assembly input, with line context."""

    def __init__(self, message: str, line_no: int = 0, line: str = ""):
        self.line_no = line_no
        self.line = line
        if line_no:
            message = f"line {line_no}: {message} -- {line.strip()!r}"
        super().__init__(message)


#: Operands that are destinations, per opcode (default: 1, stores/control: 0).
_DEST_COUNTS = {
    "NOP": 0,
    "EXIT": 0,
    "BAR": 0,
    "BRA": 0,
    "STG": 0,
    "STS": 0,
    "ISETP": 2,
}

_REG_RE = re.compile(r"^R(\d+)$")
_PRED_RE = re.compile(r"^(!?)P(\d+)$")
_MEM_RE = re.compile(r"^\[\s*(RZ|R\d+)\s*(?:([+-])\s*(0x[0-9a-fA-F]+|\d+)\s*)?\]$")
_LABEL_RE = re.compile(r"^([A-Za-z_][\w.$]*):$")
_INT_RE = re.compile(r"^-?(0x[0-9a-fA-F]+|0b[01]+|\d+)$")


def _parse_int(token: str) -> int:
    return int(token, 0)


def parse_operand(token: str):
    """Parse one operand token into its operand object."""
    token = token.strip()
    if token == "RZ":
        return Reg(RZ_INDEX)
    if token == "PT":
        return Pred(PT_INDEX)
    if token == "!PT":
        return Pred(PT_INDEX, negated=True)
    m = _REG_RE.match(token)
    if m:
        return Reg(int(m.group(1)))
    m = _PRED_RE.match(token)
    if m:
        return Pred(int(m.group(2)), negated=bool(m.group(1)))
    m = _MEM_RE.match(token)
    if m:
        base = Reg(RZ_INDEX) if m.group(1) == "RZ" else Reg(int(m.group(1)[1:]))
        offset = 0
        if m.group(3) is not None:
            offset = _parse_int(m.group(3))
            if m.group(2) == "-":
                offset = -offset
        return MemRef(base, offset)
    if token in SPECIAL_REGISTERS:
        return SpecialReg(token)
    if _INT_RE.match(token):
        return Imm(_parse_int(token))
    raise AssemblyError(f"cannot parse operand {token!r}")


def parse_control(text: str) -> ControlInfo:
    """Parse the brace-enclosed control field list (without the braces)."""
    kwargs: dict = {}
    for item in filter(None, (part.strip() for part in text.split(","))):
        if item == "yield":
            kwargs["yield_flag"] = True
            continue
        if "=" not in item:
            raise AssemblyError(f"bad control field {item!r}")
        key, _, value = item.partition("=")
        key = key.strip()
        try:
            ivalue = _parse_int(value.strip())
        except ValueError:
            raise AssemblyError(f"bad control value in {item!r}") from None
        field_name = {
            "stall": "stall",
            "wb": "write_bar",
            "rb": "read_bar",
            "wait": "wait_mask",
            "reuse": "reuse",
        }.get(key)
        if field_name is None:
            raise AssemblyError(f"unknown control field {key!r}")
        kwargs[field_name] = ivalue
    return ControlInfo(**kwargs)


def _strip_comment(line: str) -> str:
    for marker in ("//", "#"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _parse_instruction(body: str, line_no: int, line: str) -> Instruction:
    ctrl = ControlInfo()
    brace = body.find("{")
    if brace >= 0:
        if not body.rstrip().endswith("}"):
            raise AssemblyError("unterminated control braces", line_no, line)
        ctrl = parse_control(body[brace + 1 : body.rfind("}")])
        body = body[:brace].strip()

    pred = None
    if body.startswith("@"):
        guard, _, body = body.partition(" ")
        parsed = parse_operand(guard[1:])
        if not isinstance(parsed, Pred):
            raise AssemblyError(f"guard must be a predicate: {guard!r}", line_no, line)
        pred = parsed
        body = body.strip()

    mnemonic, _, rest = body.partition(" ")
    parts = mnemonic.split(".")
    opcode, mods = parts[0], tuple(parts[1:])
    if opcode not in OPCODES:
        raise AssemblyError(f"unknown opcode {opcode!r}", line_no, line)

    tokens = [t.strip() for t in rest.split(",")] if rest.strip() else []

    target = None
    if OPCODES[opcode].is_branch:
        if len(tokens) != 1 or not tokens[0]:
            raise AssemblyError("BRA takes exactly one label", line_no, line)
        target = tokens[0]
        tokens = []

    try:
        operands = [parse_operand(t) for t in tokens]
    except AssemblyError as exc:
        raise AssemblyError(str(exc), line_no, line) from None

    n_dest = _DEST_COUNTS.get(opcode, 1)
    if len(operands) < n_dest:
        raise AssemblyError(
            f"{opcode} needs at least {n_dest} destination operand(s)", line_no, line
        )
    return Instruction(
        opcode=opcode,
        dests=tuple(operands[:n_dest]),
        srcs=tuple(operands[n_dest:]),
        mods=mods,
        pred=pred,
        ctrl=ctrl,
        target=target,
    )


def assemble(source: str) -> Program:
    """Assemble *source* text into a :class:`Program`."""
    meta_kwargs: dict = {}
    labels: dict = {}
    instructions: list = []

    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue

        if line.startswith("."):
            key, _, value = line.partition(" ")
            value = value.strip()
            if key == ".kernel":
                meta_kwargs["name"] = value
            elif key == ".regs":
                meta_kwargs["num_regs"] = _parse_int(value)
            elif key == ".smem":
                meta_kwargs["smem_bytes"] = _parse_int(value)
            elif key == ".block":
                meta_kwargs["block_dim"] = _parse_int(value)
            else:
                raise AssemblyError(f"unknown directive {key!r}", line_no, raw)
            continue

        m = _LABEL_RE.match(line)
        if m:
            label = m.group(1)
            if label in labels:
                raise AssemblyError(f"duplicate label {label!r}", line_no, raw)
            labels[label] = len(instructions)
            continue

        instructions.append(_parse_instruction(line, line_no, raw))

    return Program(
        instructions=instructions,
        meta=KernelMeta(**meta_kwargs),
        labels=labels,
    )
