"""Turing control information attached to every SASS instruction.

Since Volta/Turing, every 128-bit instruction word embeds its own scheduling
control fields (there is no separate control word as on Maxwell/Pascal).  The
fields, as reverse-engineered by Jia et al. and used by ``turingas``:

* ``stall`` (4 bits) -- cycles the scheduler waits before issuing the *next*
  instruction from this warp.
* ``yield_flag`` (1 bit) -- hint allowing the scheduler to switch warps.
* ``write_bar`` (3 bits) -- scoreboard index (0-5) set when this variable-
  latency instruction's *result* becomes available; 7 = none.
* ``read_bar`` (3 bits) -- scoreboard index set when this instruction has
  *consumed* its source operands (so they may be overwritten); 7 = none.
* ``wait_mask`` (6 bits) -- scoreboards this instruction must wait on.
* ``reuse`` (4 bits) -- operand-reuse cache flags.  The paper observes the
  reuse flag has **no effect** on HMMA performance; the simulator honours
  that by treating reuse as a no-op for the tensor pipe.

The paper's latency methodology ("we measure the latency of HMMA by varying
the stall cycles and check if the output result is correct", Section IV-C)
requires the simulator to take these fields literally: if the programmer
stalls too few cycles and does not wait on a scoreboard, the consumer reads a
stale register -- exactly as on silicon.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["NO_BARRIER", "ControlInfo"]

#: Barrier-index value meaning "no scoreboard allocated".
NO_BARRIER = 7


@dataclass(frozen=True)
class ControlInfo:
    """Per-instruction scheduling control fields."""

    stall: int = 1
    yield_flag: bool = False
    write_bar: int = NO_BARRIER
    read_bar: int = NO_BARRIER
    wait_mask: int = 0
    reuse: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.stall <= 15:
            raise ValueError(f"stall must fit in 4 bits, got {self.stall}")
        for name, value in (("write_bar", self.write_bar), ("read_bar", self.read_bar)):
            if not (0 <= value <= 5 or value == NO_BARRIER):
                raise ValueError(f"{name} must be 0-5 or {NO_BARRIER}, got {value}")
        if not 0 <= self.wait_mask < 64:
            raise ValueError(f"wait_mask must fit in 6 bits, got {self.wait_mask}")
        if not 0 <= self.reuse < 16:
            raise ValueError(f"reuse must fit in 4 bits, got {self.reuse}")

    @property
    def sets_barrier(self) -> bool:
        return self.write_bar != NO_BARRIER or self.read_bar != NO_BARRIER

    def waits_on(self, barrier: int) -> bool:
        return bool(self.wait_mask & (1 << barrier))

    def with_stall(self, stall: int) -> "ControlInfo":
        return replace(self, stall=stall)

    def with_wait(self, *barriers: int) -> "ControlInfo":
        mask = self.wait_mask
        for b in barriers:
            if not 0 <= b <= 5:
                raise ValueError(f"barrier index must be 0-5, got {b}")
            mask |= 1 << b
        return replace(self, wait_mask=mask)

    def encode(self) -> int:
        """Pack the control fields into the 21-bit layout used on Turing."""
        word = self.stall
        word |= int(self.yield_flag) << 4
        word |= self.write_bar << 5
        word |= self.read_bar << 8
        word |= self.wait_mask << 11
        word |= self.reuse << 17
        return word

    @classmethod
    def decode(cls, word: int) -> "ControlInfo":
        """Inverse of :meth:`encode`."""
        if not 0 <= word < (1 << 21):
            raise ValueError(f"control word must fit in 21 bits, got {word:#x}")
        return cls(
            stall=word & 0xF,
            yield_flag=bool((word >> 4) & 1),
            write_bar=(word >> 5) & 0x7,
            read_bar=(word >> 8) & 0x7,
            wait_mask=(word >> 11) & 0x3F,
            reuse=(word >> 17) & 0xF,
        )

    def __str__(self) -> str:
        parts = [f"stall={self.stall}"]
        if self.yield_flag:
            parts.append("yield")
        if self.write_bar != NO_BARRIER:
            parts.append(f"wb={self.write_bar}")
        if self.read_bar != NO_BARRIER:
            parts.append(f"rb={self.read_bar}")
        if self.wait_mask:
            parts.append(f"wait={self.wait_mask:#04b}".replace("0b", "0b"))
        if self.reuse:
            parts.append(f"reuse={self.reuse:#x}")
        return "{" + ", ".join(parts) + "}"
