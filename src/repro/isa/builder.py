"""Fluent programmatic builder for SASS-subset programs.

The text assembler (:mod:`repro.isa.assembler`) is convenient for short
microbenchmark loops; generated kernels (thousands of instructions, computed
offsets, parameterized schedules) are emitted through this builder instead,
exactly as ``maxas``/``turingas`` kernels are emitted from Perl/Python
templates.
"""

from __future__ import annotations

from dataclasses import replace

from .control import ControlInfo
from .instructions import Instruction
from .operands import Imm, MemRef, Pred, PT, Reg, RZ, SpecialReg
from .program import KernelMeta, Program

__all__ = ["ProgramBuilder"]


def _reg(value) -> Reg:
    return value if isinstance(value, Reg) else Reg(value)


def _src(value):
    if isinstance(value, (Reg, Imm, MemRef, SpecialReg, Pred)):
        return value
    if isinstance(value, int):
        return Imm(value)
    raise TypeError(f"cannot interpret {value!r} as a source operand")


class ProgramBuilder:
    """Accumulates instructions and emits a finished :class:`Program`.

    All emitters accept ``ctrl=`` (a :class:`ControlInfo`) or the shorthand
    keywords ``stall``, ``wait`` (iterable of barrier indices), ``wb``,
    ``rb``, ``yield_flag`` -- mirroring the text syntax.
    """

    def __init__(
        self,
        name: str = "kernel",
        num_regs: int = 32,
        smem_bytes: int = 0,
        block_dim: int = 32,
    ):
        self.meta = KernelMeta(
            name=name, num_regs=num_regs, smem_bytes=smem_bytes, block_dim=block_dim
        )
        self._instructions: list = []
        self._labels: dict = {}

    # ------------------------------------------------------------------ core

    def label(self, name: str) -> "ProgramBuilder":
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return self

    @staticmethod
    def _make_ctrl(ctrl, stall, wait, wb, rb, yield_flag) -> ControlInfo:
        if ctrl is not None:
            return ctrl
        info = ControlInfo(stall=stall, yield_flag=yield_flag)
        if wb is not None:
            info = replace(info, write_bar=wb)
        if rb is not None:
            info = replace(info, read_bar=rb)
        if wait:
            info = info.with_wait(*wait)
        return info

    def emit(
        self,
        opcode: str,
        dests=(),
        srcs=(),
        mods=(),
        pred=None,
        target=None,
        *,
        ctrl=None,
        stall: int = 1,
        wait=(),
        wb=None,
        rb=None,
        yield_flag: bool = False,
    ) -> Instruction:
        inst = Instruction(
            opcode=opcode,
            dests=tuple(dests),
            srcs=tuple(srcs),
            mods=tuple(mods),
            pred=pred,
            ctrl=self._make_ctrl(ctrl, stall, wait, wb, rb, yield_flag),
            target=target,
        )
        self._instructions.append(inst)
        return inst

    def build(self) -> Program:
        return Program(
            instructions=list(self._instructions),
            meta=self.meta,
            labels=dict(self._labels),
        )

    def __len__(self) -> int:
        return len(self._instructions)

    # ------------------------------------------------------- ALU shorthands

    def mov(self, dst, src, **kw):
        return self.emit("MOV", [_reg(dst)], [_src(src)], **kw)

    def mov32i(self, dst, imm: int, **kw):
        return self.emit("MOV32I", [_reg(dst)], [Imm(imm)], **kw)

    def iadd3(self, dst, a, b, c=RZ, **kw):
        return self.emit("IADD3", [_reg(dst)], [_src(a), _src(b), _src(c)], **kw)

    def imad(self, dst, a, b, c=RZ, **kw):
        return self.emit("IMAD", [_reg(dst)], [_src(a), _src(b), _src(c)], **kw)

    def shf_l(self, dst, src, amount, **kw):
        return self.emit("SHF", [_reg(dst)], [_src(src), _src(amount)], mods=("L",), **kw)

    def shf_r(self, dst, src, amount, **kw):
        return self.emit("SHF", [_reg(dst)], [_src(src), _src(amount)], mods=("R",), **kw)

    def lop3_and(self, dst, a, b, **kw):
        return self.emit("LOP3", [_reg(dst)], [_src(a), _src(b)], mods=("AND",), **kw)

    def lop3_or(self, dst, a, b, **kw):
        return self.emit("LOP3", [_reg(dst)], [_src(a), _src(b)], mods=("OR",), **kw)

    def lop3_xor(self, dst, a, b, **kw):
        return self.emit("LOP3", [_reg(dst)], [_src(a), _src(b)], mods=("XOR",), **kw)

    def isetp(self, pred_dst, a, b, cmp: str = "LT", **kw):
        """``ISETP.<cmp>.AND P, PT, a, b, PT`` -- compare into a predicate."""
        return self.emit(
            "ISETP",
            [pred_dst, PT],
            [_src(a), _src(b), PT],
            mods=(cmp, "AND"),
            **kw,
        )

    def sel(self, dst, a, b, pred, **kw):
        return self.emit("SEL", [_reg(dst)], [_src(a), _src(b), pred], **kw)

    def s2r(self, dst, special: str, **kw):
        return self.emit("S2R", [_reg(dst)], [SpecialReg(special)], **kw)

    def cs2r_clock(self, dst, **kw):
        return self.emit("CS2R", [_reg(dst)], [SpecialReg("SR_CLOCKLO")], **kw)

    def hfma2(self, dst, a, b, c, **kw):
        return self.emit("HFMA2", [_reg(dst)], [_reg(a), _reg(b), _reg(c)], **kw)

    # --------------------------------------------------------- control flow

    def bra(self, target: str, pred=None, **kw):
        return self.emit("BRA", pred=pred, target=target, **kw)

    def bar_sync(self, **kw):
        return self.emit("BAR", mods=("SYNC",), **kw)

    def exit(self, **kw):
        return self.emit("EXIT", **kw)

    def nop(self, **kw):
        return self.emit("NOP", **kw)

    # --------------------------------------------------------------- memory

    @staticmethod
    def _width_mods(width: int, extra=()) -> tuple:
        if width not in (32, 64, 128):
            raise ValueError(f"memory width must be 32/64/128, got {width}")
        return tuple(extra) + ((str(width),) if width != 32 else ())

    def ldg(self, dst, base, offset: int = 0, width: int = 32, bypass_l1=False, **kw):
        """Global load.  ``bypass_l1`` adds the ``.CG`` cache hint the paper
        uses to measure L2/DRAM without L1 interference (Section V-A)."""
        extra = ("E",) + (("CG",) if bypass_l1 else ())
        return self.emit(
            "LDG",
            [_reg(dst)],
            [MemRef(_reg(base), offset)],
            mods=self._width_mods(width, extra),
            **kw,
        )

    def stg(self, base, src, offset: int = 0, width: int = 32, **kw):
        return self.emit(
            "STG",
            [],
            [MemRef(_reg(base), offset), _reg(src)],
            mods=self._width_mods(width, ("E",)),
            **kw,
        )

    def lds(self, dst, base, offset: int = 0, width: int = 32, **kw):
        return self.emit(
            "LDS",
            [_reg(dst)],
            [MemRef(_reg(base), offset)],
            mods=self._width_mods(width),
            **kw,
        )

    def sts(self, base, src, offset: int = 0, width: int = 32, **kw):
        return self.emit(
            "STS",
            [],
            [MemRef(_reg(base), offset), _reg(src)],
            mods=self._width_mods(width),
            **kw,
        )

    # ---------------------------------------------------------- tensor core

    def hmma_1688(self, d, a, b, c, f32: bool = False, **kw):
        """``HMMA.1688.F16/F32 Rd, Ra, Rb, Rc`` (register indices name the
        first register of each operand group, as in SASS)."""
        return self.emit(
            "HMMA",
            [_reg(d)],
            [_reg(a), _reg(b), _reg(c)],
            mods=("1688", "F32" if f32 else "F16"),
            **kw,
        )

    def hmma_884(self, d, a, b, c, **kw):
        return self.emit(
            "HMMA", [_reg(d)], [_reg(a), _reg(b), _reg(c)], mods=("884", "F16"), **kw
        )

    def hmma_16816(self, d, a, b, c, f32: bool = False, **kw):
        """``HMMA.16816.F16/F32 Rd, Ra, Rb, Rc`` -- Ampere's k=16 shape
        (A spans 4 registers, B spans 2)."""
        return self.emit(
            "HMMA",
            [_reg(d)],
            [_reg(a), _reg(b), _reg(c)],
            mods=("16816", "F32" if f32 else "F16"),
            **kw,
        )

    def hmma(self, arch, d, a, b, c, f32: bool = False, **kw):
        """Emit the HMMA shape native to *arch* (an :class:`ArchSpec`)."""
        if arch.hmma_mods == "884":
            if f32:
                raise ValueError("HMMA.884 has no F32 accumulate form")
            return self.hmma_884(d, a, b, c, **kw)
        if arch.hmma_mods == "1688":
            return self.hmma_1688(d, a, b, c, f32=f32, **kw)
        if arch.hmma_mods == "16816":
            return self.hmma_16816(d, a, b, c, f32=f32, **kw)
        raise ValueError(f"unknown HMMA shape {arch.hmma_mods!r}")

    def imma_8816(self, d, a, b, c, **kw):
        """``IMMA.8816.S8.S8 Rd, Ra, Rb, Rc`` -- int8 Tensor Core MMA."""
        return self.emit(
            "IMMA", [_reg(d)], [_reg(a), _reg(b), _reg(c)],
            mods=("8816", "S8", "S8"), **kw
        )
