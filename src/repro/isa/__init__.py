"""SASS-subset ISA: operands, instructions, assembler, encoder, builder.

Provides the native-assembly layer the paper's methodology depends on
(Section II-B / V-A: CPI microbenchmarks and instruction scheduling are
"only possible at SASS-level").
"""

from .assembler import AssemblyError, assemble, parse_control, parse_operand
from .builder import ProgramBuilder
from .control import NO_BARRIER, ControlInfo
from .disassembler import disassemble, disassemble_to_program
from .encoding import (
    INSTRUCTION_BYTES,
    EncodingError,
    MOD_TABLES,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)
from .instructions import (
    Instruction,
    OPCODES,
    OpcodeInfo,
    Pipe,
    memory_width,
)
from .operands import (
    Imm,
    MemRef,
    PT,
    PT_INDEX,
    Pred,
    Reg,
    RZ,
    RZ_INDEX,
    SPECIAL_REGISTERS,
    SpecialReg,
)
from .program import KernelMeta, Program

__all__ = [
    "AssemblyError",
    "assemble",
    "parse_control",
    "parse_operand",
    "ProgramBuilder",
    "NO_BARRIER",
    "ControlInfo",
    "disassemble",
    "disassemble_to_program",
    "INSTRUCTION_BYTES",
    "EncodingError",
    "MOD_TABLES",
    "decode_instruction",
    "decode_program",
    "encode_instruction",
    "encode_program",
    "Instruction",
    "OPCODES",
    "OpcodeInfo",
    "Pipe",
    "memory_width",
    "Imm",
    "MemRef",
    "PT",
    "PT_INDEX",
    "Pred",
    "Reg",
    "RZ",
    "RZ_INDEX",
    "SPECIAL_REGISTERS",
    "SpecialReg",
    "KernelMeta",
    "Program",
]
