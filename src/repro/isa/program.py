"""Program container: an ordered list of instructions plus kernel metadata.

A :class:`Program` is what the assembler emits and both simulators execute.
Kernel metadata carries the launch-relevant resource usage (registers per
thread, shared memory per CTA, threads per CTA) that the occupancy model
(paper Table VII) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .instructions import Instruction

__all__ = ["KernelMeta", "Program"]


@dataclass(frozen=True)
class KernelMeta:
    """Static resources of a kernel, as a launch configurator sees them."""

    name: str = "kernel"
    num_regs: int = 32
    smem_bytes: int = 0
    block_dim: int = 32

    def __post_init__(self) -> None:
        if not 1 <= self.num_regs <= 256:
            raise ValueError(f"registers/thread must be 1..256, got {self.num_regs}")
        if self.smem_bytes < 0:
            raise ValueError(f"negative shared memory: {self.smem_bytes}")
        if self.block_dim <= 0 or self.block_dim % 32:
            raise ValueError(
                f"block_dim must be a positive multiple of the warp size, "
                f"got {self.block_dim}"
            )

    @property
    def warps_per_cta(self) -> int:
        return self.block_dim // 32


@dataclass
class Program:
    """An assembled kernel: instructions with resolved branch targets."""

    instructions: list
    meta: KernelMeta = field(default_factory=KernelMeta)
    labels: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for label, index in self.labels.items():
            if not 0 <= index <= len(self.instructions):
                raise ValueError(f"label {label!r} points outside program: {index}")
        self._resolve_targets()

    def _resolve_targets(self) -> None:
        resolved = []
        for inst in self.instructions:
            if inst.target is not None and inst.target_index is None:
                if inst.target not in self.labels:
                    raise ValueError(f"undefined branch target: {inst.target!r}")
                inst = inst.with_target_index(self.labels[inst.target])
            resolved.append(inst)
        self.instructions = resolved

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def count_opcode(self, opcode: str) -> int:
        """Number of instructions with mnemonic root *opcode*."""
        return sum(1 for inst in self.instructions if inst.opcode == opcode)

    def listing(self) -> str:
        """Human-readable listing with labels and instruction indices."""
        by_index: dict = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines = []
        for i, inst in enumerate(self.instructions):
            for label in by_index.get(i, ()):
                lines.append(f"{label}:")
            lines.append(f"  /*{i:04d}*/ {inst}")
        for label in by_index.get(len(self.instructions), ()):
            lines.append(f"{label}:")
        return "\n".join(lines)
