"""Operand model for the SASS-subset ISA.

The subset mirrors what Turing SASS exposes: general-purpose registers
``R0..R254`` with the hardwired zero register ``RZ`` (encoded as 255),
predicate registers ``P0..P6`` with the hardwired true predicate ``PT``
(encoded as 7), 32-bit immediates, memory references ``[Rn + offset]`` and
special registers (thread/CTA indices, the clock).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "RZ_INDEX",
    "PT_INDEX",
    "Reg",
    "Pred",
    "Imm",
    "MemRef",
    "SpecialReg",
    "SPECIAL_REGISTERS",
    "RZ",
    "PT",
]

#: Encoding of the hardwired zero register RZ.
RZ_INDEX = 255
#: Encoding of the hardwired true predicate PT.
PT_INDEX = 7


@dataclass(frozen=True)
class Reg:
    """General purpose 32-bit register ``R<index>`` (``RZ`` reads as zero)."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index <= RZ_INDEX:
            raise ValueError(f"register index out of range: {self.index}")

    @property
    def is_rz(self) -> bool:
        return self.index == RZ_INDEX

    def offset(self, delta: int) -> "Reg":
        """Register ``delta`` slots above this one (for wide accesses)."""
        if self.is_rz:
            return self
        return Reg(self.index + delta)

    def __str__(self) -> str:
        return "RZ" if self.is_rz else f"R{self.index}"


@dataclass(frozen=True)
class Pred:
    """Predicate register ``P<index>`` (``PT`` is hardwired true)."""

    index: int
    negated: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.index <= PT_INDEX:
            raise ValueError(f"predicate index out of range: {self.index}")

    @property
    def is_pt(self) -> bool:
        return self.index == PT_INDEX

    def negate(self) -> "Pred":
        return Pred(self.index, not self.negated)

    def __str__(self) -> str:
        name = "PT" if self.is_pt else f"P{self.index}"
        return f"!{name}" if self.negated else name


@dataclass(frozen=True)
class Imm:
    """32-bit immediate operand (stored as a Python int, two's complement)."""

    value: int

    def __post_init__(self) -> None:
        if not -(2**31) <= self.value < 2**32:
            raise ValueError(f"immediate does not fit in 32 bits: {self.value}")

    @property
    def unsigned(self) -> int:
        return self.value & 0xFFFFFFFF

    def __str__(self) -> str:
        return f"0x{self.value & 0xFFFFFFFF:x}" if self.value >= 10 else str(self.value)


@dataclass(frozen=True)
class MemRef:
    """Memory reference ``[Rbase + offset]``.

    The simulator uses a flat 32-bit address space per memory kind (global or
    shared — the kind is determined by the opcode, as in SASS).
    """

    base: Reg
    offset: int = 0

    def __post_init__(self) -> None:
        if not -(2**23) <= self.offset < 2**23:
            raise ValueError(f"memory offset out of range: {self.offset}")

    def __str__(self) -> str:
        if self.offset == 0:
            return f"[{self.base}]"
        sign = "+" if self.offset >= 0 else "-"
        return f"[{self.base}{sign}0x{abs(self.offset):x}]"


#: Special registers readable with S2R / CS2R, with their encoding numbers.
SPECIAL_REGISTERS = {
    "SR_TID.X": 0,
    "SR_TID.Y": 1,
    "SR_TID.Z": 2,
    "SR_CTAID.X": 3,
    "SR_CTAID.Y": 4,
    "SR_CTAID.Z": 5,
    "SR_LANEID": 6,
    "SR_CLOCKLO": 7,
    "SR_CLOCKHI": 8,
    "SRZ": 9,
}

_SPECIAL_BY_CODE = {v: k for k, v in SPECIAL_REGISTERS.items()}


@dataclass(frozen=True)
class SpecialReg:
    """Special register operand, e.g. ``SR_TID.X`` or ``SR_CLOCKLO``."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in SPECIAL_REGISTERS:
            raise ValueError(f"unknown special register: {self.name}")

    @property
    def code(self) -> int:
        return SPECIAL_REGISTERS[self.name]

    @classmethod
    def from_code(cls, code: int) -> "SpecialReg":
        return cls(_SPECIAL_BY_CODE[code])

    def __str__(self) -> str:
        return self.name


#: Convenience singletons.
RZ = Reg(RZ_INDEX)
PT = Pred(PT_INDEX)
