"""Register fragment layouts for Turing Tensor Cores (paper Figs. 1 and 2).

The paper's central reverse-engineering result (Section IV) is that the basic
unit of half-precision Tensor Core programming is an 8x8 matrix, stored in the
32 lanes of a warp using **one 32-bit register per lane** ("warp register"):
32 lanes x 4 bytes = 128 bytes = 8 x 8 half-precision elements.

Two orders exist (Fig. 1):

* **row-major** -- the 8x8 matrix is tiled into 8 rows x 4 cells, each cell
  holding two horizontally adjacent elements.  The lane owning row ``r``,
  cell ``p`` is ``4*r + p``; it stores elements ``(r, 2p)`` (low half of the
  register) and ``(r, 2p + 1)`` (high half).

* **column-major** -- the matrix is tiled into 4 cell-rows x 8 columns, each
  cell holding two vertically adjacent elements.  The lane owning cell-row
  ``q``, column ``c`` is ``q + 4*c``; it stores elements ``(2q, c)`` (low)
  and ``(2q + 1, c)`` (high).

``HMMA.1688`` operands (Fig. 2): D (16x8), A (16x8) and C (16x8) are each two
row-major warp registers (top 8x8 then bottom 8x8); B (8x8) is one
column-major warp register.
"""

from __future__ import annotations

import sys

from dataclasses import dataclass

import numpy as np

from .fp16 import HALF, as_half, pack_half2, unpack_half2

__all__ = [
    "WARP_SIZE",
    "ROW_MAJOR",
    "COL_MAJOR",
    "FragmentLayout",
    "lane_of_element",
    "elements_of_lane",
    "lane_map",
    "matrix_to_fragment",
    "fragment_to_matrix",
    "matrix16x8_to_fragments",
    "fragments_to_matrix16x8",
    "matrix16x8_to_fragments_f32",
    "fragments_f32_to_matrix16x8",
    "hmma_operand_layouts",
]

#: Number of lanes cooperating on one warp register.
WARP_SIZE = 32

#: Matrix order tokens, matching the paper's terminology.
ROW_MAJOR = "row"
COL_MAJOR = "col"

_VALID_ORDERS = (ROW_MAJOR, COL_MAJOR)


def _check_order(order: str) -> None:
    if order not in _VALID_ORDERS:
        raise ValueError(f"order must be one of {_VALID_ORDERS}, got {order!r}")


@dataclass(frozen=True)
class FragmentLayout:
    """Descriptor of how one 8x8 matrix maps onto 32 lanes.

    Attributes:
        order: ``"row"`` or ``"col"``.
        lanes: 8x8 int array; ``lanes[r, c]`` is the lane holding element
            ``(r, c)``.
        halves: 8x8 int array; ``halves[r, c]`` is 0 if the element sits in
            the low 16 bits of the lane's register, 1 if in the high bits.
    """

    order: str
    lanes: np.ndarray
    halves: np.ndarray

    def __post_init__(self) -> None:
        _check_order(self.order)

    def render(self) -> str:
        """ASCII rendering of the lane ownership grid (paper Fig. 1)."""
        if self.order == ROW_MAJOR:
            cells = self.lanes[:, ::2]
        else:
            cells = self.lanes[::2, :]
        rows = ["  ".join(f"{int(v):2d}" for v in row) for row in cells]
        return "\n".join(rows)


def lane_of_element(row: int, col: int, order: str) -> tuple[int, int]:
    """Return ``(lane, half)`` owning element ``(row, col)`` of an 8x8 matrix.

    ``half`` is 0 for the low 16 bits of the lane's 32-bit register and 1 for
    the high 16 bits.
    """
    _check_order(order)
    if not (0 <= row < 8 and 0 <= col < 8):
        raise ValueError(f"element ({row}, {col}) outside the 8x8 fragment")
    if order == ROW_MAJOR:
        return 4 * row + col // 2, col % 2
    return row // 2 + 4 * col, row % 2


def elements_of_lane(lane: int, order: str) -> tuple[tuple[int, int], tuple[int, int]]:
    """Return the two ``(row, col)`` elements held by *lane* (low, high)."""
    _check_order(order)
    if not 0 <= lane < WARP_SIZE:
        raise ValueError(f"lane must be in [0, {WARP_SIZE}), got {lane}")
    if order == ROW_MAJOR:
        row, cell = divmod(lane, 4)
        return (row, 2 * cell), (row, 2 * cell + 1)
    col, cell_row = divmod(lane, 4)  # lane = cell_row + 4 * col
    return (2 * cell_row, col), (2 * cell_row + 1, col)


def lane_map(order: str) -> FragmentLayout:
    """Build the full :class:`FragmentLayout` for *order*."""
    _check_order(order)
    lanes = np.empty((8, 8), dtype=np.int64)
    halves = np.empty((8, 8), dtype=np.int64)
    for r in range(8):
        for c in range(8):
            lanes[r, c], halves[r, c] = lane_of_element(r, c, order)
    return FragmentLayout(order=order, lanes=lanes, halves=halves)


# Precomputed index tables: for each order, (rows_lo, cols_lo, rows_hi, cols_hi)
# give the matrix coordinates of each lane's low/high element, indexed by lane.
def _lane_tables(order: str):
    lo = np.empty((WARP_SIZE, 2), dtype=np.int64)
    hi = np.empty((WARP_SIZE, 2), dtype=np.int64)
    for lane in range(WARP_SIZE):
        (lo_rc, hi_rc) = elements_of_lane(lane, order)
        lo[lane] = lo_rc
        hi[lane] = hi_rc
    return lo[:, 0], lo[:, 1], hi[:, 0], hi[:, 1]


_TABLES = {order: _lane_tables(order) for order in _VALID_ORDERS}


# Flat permutation tables for the vectorised fast paths below.  On a
# little-endian host a (32,) uint32 warp register viewed as uint16 lists each
# lane's (lo, hi) halves in order, so index ``2 * lane + half`` addresses one
# half element directly; a single fancy-index gather then replaces the
# unpack / scatter / pack round trip in the conversion functions.  These are
# pure permutations, so the fast paths are bit-identical to the generic ones.
def _permutations(order: str):
    rlo, clo, rhi, chi = _TABLES[order]
    # gather[r, c] = uint16 index (within the register's 64 halves) of (r, c).
    gather = np.empty((8, 8), dtype=np.intp)
    lanes = np.arange(WARP_SIZE)
    gather[rlo, clo] = 2 * lanes
    gather[rhi, chi] = 2 * lanes + 1
    # scatter[2 * lane + half] = flat matrix index of that half element.
    scatter = np.empty(2 * WARP_SIZE, dtype=np.intp)
    scatter[0::2] = 8 * rlo + clo
    scatter[1::2] = 8 * rhi + chi
    return gather, scatter


_PERMS = {order: _permutations(order) for order in _VALID_ORDERS}

# 16x8 operands are two stacked row-major registers (rows 0..7, rows 8..15).
_GATHER_16X8 = np.concatenate(
    [_PERMS[ROW_MAJOR][0], _PERMS[ROW_MAJOR][0] + 2 * WARP_SIZE]
)
_SCATTER_16X8 = np.concatenate(
    [_PERMS[ROW_MAJOR][1], _PERMS[ROW_MAJOR][1] + 64]
)

# .F32 accumulators promote each lane's (lo, hi) pair to full registers
# (2i, 2i + 1); these permutations are endian-independent because float32
# words are reinterpreted whole, never split.
def _f32_permutation():
    rlo, clo, rhi, chi = _TABLES[ROW_MAJOR]
    perm = np.empty((4, WARP_SIZE), dtype=np.intp)
    perm[0] = 8 * rlo + clo
    perm[1] = 8 * rhi + chi
    perm[2] = perm[0] + 64
    perm[3] = perm[1] + 64
    inverse = np.empty(128, dtype=np.intp)
    inverse[perm.ravel()] = np.arange(128)
    return perm, inverse.reshape(16, 8)


_PERM_F32, _INV_F32 = _f32_permutation()

_LITTLE_ENDIAN = sys.byteorder == "little"


def matrix_to_fragment(matrix, order: str) -> np.ndarray:
    """Scatter an 8x8 half matrix into a (32,) uint32 warp register."""
    _check_order(order)
    mat = as_half(matrix)
    if mat.shape != (8, 8):
        raise ValueError(f"fragment source must be 8x8, got {mat.shape}")
    if _LITTLE_ENDIAN:
        return mat.reshape(64)[_PERMS[order][1]].view(np.uint32)
    rlo, clo, rhi, chi = _TABLES[order]
    return pack_half2(mat[rlo, clo], mat[rhi, chi])


def fragment_to_matrix(words, order: str) -> np.ndarray:
    """Gather a (32,) uint32 warp register back into an 8x8 half matrix."""
    _check_order(order)
    arr = np.ascontiguousarray(words, dtype=np.uint32)
    if arr.shape != (WARP_SIZE,):
        raise ValueError(f"warp register must have shape (32,), got {arr.shape}")
    if _LITTLE_ENDIAN:
        return arr.view(np.uint16)[_PERMS[order][0]].view(HALF)
    lo, hi = unpack_half2(arr)
    rlo, clo, rhi, chi = _TABLES[order]
    out = np.empty((8, 8), dtype=np.float16)
    out[rlo, clo] = lo
    out[rhi, chi] = hi
    return out


def matrix16x8_to_fragments(matrix) -> np.ndarray:
    """Scatter a 16x8 half matrix into two row-major warp registers.

    Returns a (2, 32) uint32 array: register 0 holds rows 0..7, register 1
    holds rows 8..15 (the layout HMMA.1688 requires for D, A and C).
    """
    mat = as_half(matrix)
    if mat.shape != (16, 8):
        raise ValueError(f"operand must be 16x8, got {mat.shape}")
    if _LITTLE_ENDIAN:
        return mat.reshape(128)[_SCATTER_16X8].view(np.uint32).reshape(2, WARP_SIZE)
    return np.stack(
        [
            matrix_to_fragment(mat[:8], ROW_MAJOR),
            matrix_to_fragment(mat[8:], ROW_MAJOR),
        ]
    )


def fragments_to_matrix16x8(words) -> np.ndarray:
    """Gather two row-major warp registers into a 16x8 half matrix."""
    arr = np.ascontiguousarray(words, dtype=np.uint32)
    if arr.shape != (2, WARP_SIZE):
        raise ValueError(f"expected shape (2, 32), got {arr.shape}")
    if _LITTLE_ENDIAN:
        return arr.view(np.uint16).reshape(128)[_GATHER_16X8].view(HALF)
    return np.concatenate(
        [
            fragment_to_matrix(arr[0], ROW_MAJOR),
            fragment_to_matrix(arr[1], ROW_MAJOR),
        ]
    )


def matrix16x8_to_fragments_f32(matrix) -> np.ndarray:
    """Scatter a 16x8 float32 matrix into four warp registers.

    For the ``.F32`` accumulator variant the paper notes D and C live in
    128-bit registers.  We model those as register *pairs*: where the
    ``.F16`` layout packs elements ``(r, 2p)`` / ``(r, 2p+1)`` into the low
    and high halves of register ``i``, the ``.F32`` layout promotes them to
    full registers ``2i`` and ``2i + 1``.
    """
    mat = np.ascontiguousarray(matrix, dtype=np.float32)
    if mat.shape != (16, 8):
        raise ValueError(f"operand must be 16x8, got {mat.shape}")
    return mat.reshape(128)[_PERM_F32].view(np.uint32)


def fragments_f32_to_matrix16x8(words) -> np.ndarray:
    """Gather four warp registers into a 16x8 float32 matrix."""
    arr = np.ascontiguousarray(words, dtype=np.uint32)
    if arr.shape != (4, WARP_SIZE):
        raise ValueError(f"expected shape (4, 32), got {arr.shape}")
    return arr.view(np.float32).reshape(128)[_INV_F32]


def hmma_operand_layouts() -> dict:
    """Operand-order summary of HMMA.1688 (paper Fig. 2).

    Returns a mapping from operand name to ``(shape, order, registers)``.
    """
    return {
        "D": ((16, 8), ROW_MAJOR, 2),
        "A": ((16, 8), ROW_MAJOR, 2),
        "B": ((8, 8), COL_MAJOR, 1),
        "C": ((16, 8), ROW_MAJOR, 2),
    }
