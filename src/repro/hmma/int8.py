"""INT8 Tensor Core semantics: the ``IMMA.8816`` instruction family.

The paper's Section VIII lists "demystifying Tensor Cores with ... integer
data type" as future work; this module does for ``IMMA`` what
:mod:`repro.hmma.fragments`/:mod:`repro.hmma.mma` do for ``HMMA``.

``IMMA.8816.S8.S8`` computes ``D[8x8,s32] = A[8x16,s8] @ B[16x8,s8] +
C[8x8,s32]``.  Operand layouts (one 32-bit register holds four int8
elements, so one warp register again holds a full operand):

* **A, row-major**: lane ``4r + p`` holds ``A[r, 4p .. 4p+3]`` -- the same
  8-rows-by-4-lane-groups grid as Fig. 1, with 4 bytes along k per lane.
* **B, column-major**: lane ``q + 4c`` holds ``B[4q .. 4q+3, c]``.
* **C/D, s32**: two registers; lane ``4r + p`` holds ``D[r, 2p]`` in the
  first and ``D[r, 2p+1]`` in the second (the ``HMMA.1688.F32``
  register-pair pattern on an 8x8 tile).

Accumulation is exact 32-bit integer arithmetic (products of two s8 values
summed in s32 cannot overflow for k = 16; long chains wrap modulo 2^32,
as on hardware).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "IMMA_8816_OPS",
    "int8_matrix_to_fragment_a",
    "fragment_a_to_int8_matrix",
    "int8_matrix_to_fragment_b",
    "fragment_b_to_int8_matrix",
    "s32_matrix_to_fragments",
    "fragments_to_s32_matrix",
    "imma_8816",
]

#: Integer operations per IMMA.8816 (2 * 8 * 8 * 16 multiply-adds).
IMMA_8816_OPS = 2 * 8 * 8 * 16

_LANES = 32


def _check(shape, arr, dtype, name):
    out = np.ascontiguousarray(arr, dtype=dtype)
    if out.shape != shape:
        raise ValueError(f"{name} must be {shape}, got {out.shape}")
    return out


def int8_matrix_to_fragment_a(matrix) -> np.ndarray:
    """Scatter an 8x16 int8 A operand into one (32,) uint32 register."""
    mat = _check((8, 16), matrix, np.int8, "A")
    lanes = mat.reshape(8, 4, 4)              # row, lane-group, 4 bytes
    return lanes.reshape(32, 4).view(np.uint8).copy().view(np.uint32).ravel()


def fragment_a_to_int8_matrix(words) -> np.ndarray:
    """Gather the A fragment back into an 8x16 int8 matrix."""
    arr = _check((_LANES,), words, np.uint32, "A fragment")
    return arr.view(np.uint8).view(np.int8).reshape(8, 16).copy()


def int8_matrix_to_fragment_b(matrix) -> np.ndarray:
    """Scatter a 16x8 int8 B operand (column-major) into one register.

    Lane ``q + 4c`` packs ``B[4q:4q+4, c]``.
    """
    mat = _check((16, 8), matrix, np.int8, "B")
    # (q, byte, col) -> transpose so lane-major order is (c, q): index
    # [c, q, byte] flattened row-major gives lane 4c + q... we need q + 4c,
    # which is the same flat index, so one transpose suffices.
    lanes = mat.reshape(4, 4, 8).transpose(2, 0, 1).reshape(32, 4)
    return lanes.view(np.uint8).copy().view(np.uint32).ravel()


def fragment_b_to_int8_matrix(words) -> np.ndarray:
    """Gather the B fragment back into a 16x8 int8 matrix."""
    arr = _check((_LANES,), words, np.uint32, "B fragment")
    lanes = arr.view(np.uint8).view(np.int8).reshape(32, 4)
    out = np.empty((16, 8), dtype=np.int8)
    for c in range(8):
        for q in range(4):
            out[4 * q : 4 * q + 4, c] = lanes[q + 4 * c]
    return out


def s32_matrix_to_fragments(matrix) -> np.ndarray:
    """Scatter an 8x8 int32 C/D operand into a (2, 32) register pair."""
    mat = _check((8, 8), matrix, np.int32, "C")
    rows = np.repeat(np.arange(8), 4)
    cells = np.tile(np.arange(4), 8)
    out = np.empty((2, _LANES), dtype=np.uint32)
    out[0] = mat[rows, 2 * cells].view(np.uint32)
    out[1] = mat[rows, 2 * cells + 1].view(np.uint32)
    return out


def fragments_to_s32_matrix(words) -> np.ndarray:
    """Gather a (2, 32) register pair back into an 8x8 int32 matrix."""
    arr = _check((2, _LANES), words, np.uint32, "C fragments")
    out = np.empty((8, 8), dtype=np.int32)
    rows = np.repeat(np.arange(8), 4)
    cells = np.tile(np.arange(4), 8)
    out[rows, 2 * cells] = arr[0].view(np.int32)
    out[rows, 2 * cells + 1] = arr[1].view(np.int32)
    return out


def imma_8816(a_reg, b_reg, c_regs) -> np.ndarray:
    """Execute ``IMMA.8816.S8.S8`` on warp registers.

    Args:
        a_reg: (32,) uint32 -- A[8x16] int8, row-major fragment.
        b_reg: (32,) uint32 -- B[16x8] int8, column-major fragment.
        c_regs: (2, 32) uint32 -- C[8x8] int32 accumulator.

    Returns:
        (2, 32) uint32 -- D in the C layout.
    """
    a = fragment_a_to_int8_matrix(a_reg).astype(np.int64)
    b = fragment_b_to_int8_matrix(b_reg).astype(np.int64)
    c = fragments_to_s32_matrix(c_regs).astype(np.int64)
    # Exact products, signed 32-bit wrap-around accumulate (hardware s32).
    d64 = (a @ b + c) & 0xFFFFFFFF
    d = d64.astype(np.uint32).view(np.int32)
    return s32_matrix_to_fragments(d)
