"""INT8 Tensor Core semantics: the ``IMMA.8816`` instruction family.

The paper's Section VIII lists "demystifying Tensor Cores with ... integer
data type" as future work; this module does for ``IMMA`` what
:mod:`repro.hmma.fragments`/:mod:`repro.hmma.mma` do for ``HMMA``.

``IMMA.8816.S8.S8`` computes ``D[8x8,s32] = A[8x16,s8] @ B[16x8,s8] +
C[8x8,s32]``.  Operand layouts (one 32-bit register holds four int8
elements, so one warp register again holds a full operand):

* **A, row-major**: lane ``4r + p`` holds ``A[r, 4p .. 4p+3]`` -- the same
  8-rows-by-4-lane-groups grid as Fig. 1, with 4 bytes along k per lane.
* **B, column-major**: lane ``q + 4c`` holds ``B[4q .. 4q+3, c]``.
* **C/D, s32**: two registers; lane ``4r + p`` holds ``D[r, 2p]`` in the
  first and ``D[r, 2p+1]`` in the second (the ``HMMA.1688.F32``
  register-pair pattern on an 8x8 tile).

Accumulation is exact 32-bit integer arithmetic (products of two s8 values
summed in s32 cannot overflow for k = 16; long chains wrap modulo 2^32,
as on hardware).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "IMMA_8816_OPS",
    "int8_matrix_to_fragment_a",
    "fragment_a_to_int8_matrix",
    "int8_matrix_to_fragment_b",
    "fragment_b_to_int8_matrix",
    "s32_matrix_to_fragments",
    "fragments_to_s32_matrix",
    "imma_8816",
    "imma_8816_batch",
]

#: Integer operations per IMMA.8816 (2 * 8 * 8 * 16 multiply-adds).
IMMA_8816_OPS = 2 * 8 * 8 * 16

_LANES = 32


def _check(shape, arr, dtype, name):
    out = np.ascontiguousarray(arr, dtype=dtype)
    if out.shape != shape:
        raise ValueError(f"{name} must be {shape}, got {out.shape}")
    return out


def int8_matrix_to_fragment_a(matrix) -> np.ndarray:
    """Scatter an 8x16 int8 A operand into one (32,) uint32 register."""
    mat = _check((8, 16), matrix, np.int8, "A")
    lanes = mat.reshape(8, 4, 4)              # row, lane-group, 4 bytes
    return lanes.reshape(32, 4).view(np.uint8).copy().view(np.uint32).ravel()


def fragment_a_to_int8_matrix(words) -> np.ndarray:
    """Gather the A fragment back into an 8x16 int8 matrix."""
    arr = _check((_LANES,), words, np.uint32, "A fragment")
    return arr.view(np.uint8).view(np.int8).reshape(8, 16).copy()


def int8_matrix_to_fragment_b(matrix) -> np.ndarray:
    """Scatter a 16x8 int8 B operand (column-major) into one register.

    Lane ``q + 4c`` packs ``B[4q:4q+4, c]``.
    """
    mat = _check((16, 8), matrix, np.int8, "B")
    # (q, byte, col) -> transpose so lane-major order is (c, q): index
    # [c, q, byte] flattened row-major gives lane 4c + q... we need q + 4c,
    # which is the same flat index, so one transpose suffices.
    lanes = mat.reshape(4, 4, 8).transpose(2, 0, 1).reshape(32, 4)
    return lanes.view(np.uint8).copy().view(np.uint32).ravel()


# Flat-byte gather tables (endian-independent: fragments address whole
# bytes, never sub-byte fields).  _B_GATHER[r, c] is the byte index within a
# B fragment's 128 bytes of element B[r, c]: lane q + 4c holds B[4q:4q+4, c],
# so with r = 4q + j the byte sits at (q + 4c) * 4 + j.
_B_ROWS = np.arange(16)[:, None]
_B_COLS = np.arange(8)[None, :]
_B_GATHER = (4 * ((_B_ROWS // 4) + 4 * _B_COLS) + _B_ROWS % 4).astype(np.intp)

# _C_GATHER[r, c] indexes the reg-major flat (2 * 32,) C pair: lane 4r + p
# holds C[r, 2p] in register 0 and C[r, 2p + 1] in register 1.
_C_ROWS = np.arange(8)[:, None]
_C_COLS = np.arange(8)[None, :]
_C_GATHER = ((_C_COLS % 2) * 32 + 4 * _C_ROWS + _C_COLS // 2).astype(np.intp)
# Inverse: _C_SCATTER[reg-major flat index] = matrix flat index.
_C_SCATTER = np.empty(64, dtype=np.intp)
_C_SCATTER[_C_GATHER.ravel()] = np.arange(64)


def fragment_b_to_int8_matrix(words) -> np.ndarray:
    """Gather the B fragment back into a 16x8 int8 matrix."""
    arr = _check((_LANES,), words, np.uint32, "B fragment")
    return arr.view(np.uint8).view(np.int8)[_B_GATHER]


def s32_matrix_to_fragments(matrix) -> np.ndarray:
    """Scatter an 8x8 int32 C/D operand into a (2, 32) register pair."""
    mat = _check((8, 8), matrix, np.int32, "C")
    rows = np.repeat(np.arange(8), 4)
    cells = np.tile(np.arange(4), 8)
    out = np.empty((2, _LANES), dtype=np.uint32)
    out[0] = mat[rows, 2 * cells].view(np.uint32)
    out[1] = mat[rows, 2 * cells + 1].view(np.uint32)
    return out


def fragments_to_s32_matrix(words) -> np.ndarray:
    """Gather a (2, 32) register pair back into an 8x8 int32 matrix."""
    arr = _check((2, _LANES), words, np.uint32, "C fragments")
    out = np.empty((8, 8), dtype=np.int32)
    rows = np.repeat(np.arange(8), 4)
    cells = np.tile(np.arange(4), 8)
    out[rows, 2 * cells] = arr[0].view(np.int32)
    out[rows, 2 * cells + 1] = arr[1].view(np.int32)
    return out


def imma_8816(a_reg, b_reg, c_regs) -> np.ndarray:
    """Execute ``IMMA.8816.S8.S8`` on warp registers.

    Args:
        a_reg: (32,) uint32 -- A[8x16] int8, row-major fragment.
        b_reg: (32,) uint32 -- B[16x8] int8, column-major fragment.
        c_regs: (2, 32) uint32 -- C[8x8] int32 accumulator.

    Returns:
        (2, 32) uint32 -- D in the C layout.
    """
    a = fragment_a_to_int8_matrix(a_reg).astype(np.int64)
    b = fragment_b_to_int8_matrix(b_reg).astype(np.int64)
    c = fragments_to_s32_matrix(c_regs).astype(np.int64)
    # Exact products, signed 32-bit wrap-around accumulate (hardware s32).
    d64 = (a @ b + c) & 0xFFFFFFFF
    d = d64.astype(np.uint32).view(np.int32)
    return s32_matrix_to_fragments(d)


def imma_8816_batch(a_regs, b_regs, c_regs) -> np.ndarray:
    """Stacked ``IMMA.8816``: *g* independent products over *w* warps.

    Args:
        a_regs: (g, L) uint32 -- A fragments, L = 32 * n_warps lanes laid
            out warp-major.
        b_regs: (g, L) uint32 -- B fragments.
        c_regs: (g, 2, L) uint32 -- C accumulator pairs.

    Returns:
        (g, 2, L) uint32 -- D pairs.

    Integer matmul is exact, so unlike the HMMA batch kernels this one can
    use a single stacked matmul; results are bit-identical to
    :func:`imma_8816` per warp slice on any host endianness.
    """
    a_regs = np.ascontiguousarray(a_regs, dtype=np.uint32)
    b_regs = np.ascontiguousarray(b_regs, dtype=np.uint32)
    c_regs = np.ascontiguousarray(c_regs, dtype=np.uint32)
    g, total = a_regs.shape
    n_warps = total // _LANES
    gw = g * n_warps
    # A's 128 fragment bytes are exactly the row-major 8x16 matrix bytes.
    a8 = a_regs.view(np.uint8).view(np.int8).reshape(gw, 8, 16)
    b8 = (b_regs.view(np.uint8).view(np.int8).reshape(gw, 128)
          .take(_B_GATHER.ravel(), axis=1).reshape(gw, 16, 8))
    c32 = (c_regs.view(np.int32).reshape(g, 2, n_warps, 32)
           .transpose(0, 2, 1, 3).reshape(gw, 64)
           .take(_C_GATHER.ravel(), axis=1).reshape(gw, 8, 8))
    d64 = (a8.astype(np.int64) @ b8.astype(np.int64)
           + c32.astype(np.int64)) & 0xFFFFFFFF
    d = d64.astype(np.uint32).reshape(gw, 64).take(_C_SCATTER, axis=1)
    return (d.reshape(g, n_warps, 2, 32).transpose(0, 2, 1, 3)
            .reshape(g, 2, total))
