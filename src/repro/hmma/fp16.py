"""Half-precision (IEEE binary16) numerics helpers.

The Tensor Core consumes and produces IEEE binary16 ("half", FP16) values.
This module centralises the FP16 conversions and bit-level packing used
throughout the simulator: register lanes hold 32-bit words, each packing two
half-precision elements (the paper, Section IV-B: "One 32-bit thread register
stores two half elements").

All routines are vectorised over NumPy arrays; nothing here allocates per
element.
"""

from __future__ import annotations

import sys

import numpy as np

__all__ = [
    "HALF",
    "as_half",
    "pack_half2",
    "unpack_half2",
    "half_bits",
    "bits_to_half",
    "ulp_distance",
    "gemm_flops",
]

#: Canonical dtype for half-precision values in this package.
HALF = np.dtype(np.float16)

#: On little-endian hosts a uint32 word viewed as two uint16s yields its
#: (lo, hi) halves in order, letting pack/unpack reinterpret memory instead
#: of shifting and masking.  Big-endian hosts take the portable arithmetic
#: path below.
_LITTLE_ENDIAN = sys.byteorder == "little"


def as_half(values) -> np.ndarray:
    """Return *values* as a contiguous float16 array.

    Values already in float16 are passed through without copying when
    possible; anything else is converted with IEEE round-to-nearest-even,
    which is what the hardware conversion units implement.
    """
    arr = np.asarray(values)
    if arr.dtype == HALF and arr.flags.c_contiguous:
        return arr
    with np.errstate(over="ignore"):  # saturate to inf, as the hardware does
        return np.ascontiguousarray(arr, dtype=HALF)


def half_bits(values) -> np.ndarray:
    """Reinterpret half-precision *values* as their raw uint16 bit patterns."""
    return as_half(values).view(np.uint16)


def bits_to_half(bits) -> np.ndarray:
    """Reinterpret uint16 *bits* as half-precision values."""
    arr = np.ascontiguousarray(bits, dtype=np.uint16)
    return arr.view(HALF)


def pack_half2(lo, hi) -> np.ndarray:
    """Pack two half arrays into uint32 words (``lo`` in bits 0..15).

    This mirrors how a 32-bit register lane stores two consecutive
    half-precision matrix elements.
    """
    lo_bits = half_bits(lo)
    hi_bits = half_bits(hi)
    if lo_bits.shape != hi_bits.shape:
        raise ValueError(
            f"pack_half2 operands must have matching shapes, got "
            f"{lo_bits.shape} and {hi_bits.shape}"
        )
    if _LITTLE_ENDIAN:
        pairs = np.empty(lo_bits.shape + (2,), dtype=np.uint16)
        pairs[..., 0] = lo_bits
        pairs[..., 1] = hi_bits
        return pairs.view(np.uint32).reshape(lo_bits.shape)
    return lo_bits.astype(np.uint32) | (hi_bits.astype(np.uint32) << np.uint32(16))


def unpack_half2(words) -> tuple[np.ndarray, np.ndarray]:
    """Split uint32 *words* into their (lo, hi) half-precision elements."""
    arr = np.ascontiguousarray(words, dtype=np.uint32)
    if _LITTLE_ENDIAN:
        pairs = arr.reshape(arr.shape + (1,)).view(np.uint16)
        return pairs[..., 0].view(HALF), pairs[..., 1].view(HALF)
    lo = bits_to_half((arr & np.uint32(0xFFFF)).astype(np.uint16))
    hi = bits_to_half((arr >> np.uint32(16)).astype(np.uint16))
    return lo, hi


def ulp_distance(a, b) -> np.ndarray:
    """Distance in half-precision ULPs between *a* and *b*.

    Used by tests to bound Tensor Core accumulation error.  The encoding
    trick maps the sign-magnitude FP16 bit patterns onto a monotone integer
    line so that adjacent representable values differ by exactly 1.
    """
    ab = half_bits(a).astype(np.int32)
    bb = half_bits(b).astype(np.int32)

    def _monotone(x: np.ndarray) -> np.ndarray:
        neg = x >= 0x8000
        out = x.copy()
        out[neg] = 0x8000 - x[neg]
        return out

    return np.abs(_monotone(ab) - _monotone(bb))


def gemm_flops(m: int, n: int, k: int) -> int:
    """Number of floating point operations for an ``m*n*k`` GEMM.

    Uses the standard 2*m*n*k convention (one multiply plus one add per
    inner-product term), which is what the paper's TFLOPS figures use.
    """
    if min(m, n, k) < 0:
        raise ValueError(f"GEMM dims must be non-negative, got {(m, n, k)}")
    return 2 * m * n * k
