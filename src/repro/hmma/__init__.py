"""Demystified Tensor Core semantics: fragment layouts and HMMA execution.

This package implements the paper's Section IV findings as executable code:
the 8x8 "warp register" fragment layouts (Figs. 1-2) and the functional
behaviour of the ``HMMA.1688`` instruction family.
"""

from .fp16 import (
    HALF,
    as_half,
    bits_to_half,
    gemm_flops,
    half_bits,
    pack_half2,
    ulp_distance,
    unpack_half2,
)
from .fragments import (
    COL_MAJOR,
    ROW_MAJOR,
    WARP_SIZE,
    FragmentLayout,
    elements_of_lane,
    fragment_to_matrix,
    fragments_f32_to_matrix16x8,
    fragments_to_matrix16x8,
    hmma_operand_layouts,
    lane_map,
    lane_of_element,
    matrix16x8_to_fragments,
    matrix16x8_to_fragments_f32,
    matrix_to_fragment,
)
from .int8 import (
    IMMA_8816_OPS,
    fragment_a_to_int8_matrix,
    fragment_b_to_int8_matrix,
    fragments_to_s32_matrix,
    imma_8816,
    int8_matrix_to_fragment_a,
    int8_matrix_to_fragment_b,
    s32_matrix_to_fragments,
)
from .mma import (
    HMMA_1688_FLOPS,
    hmma_1688_f16,
    hmma_1688_f32,
    hmma_884_f16,
    mma_16x8x8,
)

__all__ = [
    "HALF",
    "as_half",
    "bits_to_half",
    "gemm_flops",
    "half_bits",
    "pack_half2",
    "ulp_distance",
    "unpack_half2",
    "COL_MAJOR",
    "ROW_MAJOR",
    "WARP_SIZE",
    "FragmentLayout",
    "elements_of_lane",
    "fragment_to_matrix",
    "fragments_f32_to_matrix16x8",
    "fragments_to_matrix16x8",
    "hmma_operand_layouts",
    "lane_map",
    "lane_of_element",
    "matrix16x8_to_fragments",
    "matrix16x8_to_fragments_f32",
    "matrix_to_fragment",
    "IMMA_8816_OPS",
    "fragment_a_to_int8_matrix",
    "fragment_b_to_int8_matrix",
    "fragments_to_s32_matrix",
    "imma_8816",
    "int8_matrix_to_fragment_a",
    "int8_matrix_to_fragment_b",
    "s32_matrix_to_fragments",
    "HMMA_1688_FLOPS",
    "hmma_1688_f16",
    "hmma_1688_f32",
    "hmma_884_f16",
    "mma_16x8x8",
]
