"""Functional semantics of the ``HMMA.1688`` Tensor Core instruction.

One ``HMMA.1688`` computes ``D[16x8] = A[16x8] @ B[8x8] + C[16x8]`` (paper
Eq. (2)) on warp-register fragments whose layout is defined in
:mod:`repro.hmma.fragments`.

Precision model
---------------
Tensor Cores multiply FP16 operands exactly (each product of two FP16 values
is representable in FP32) and accumulate in higher precision *within* one
instruction; the accumulator register type then determines the rounding of
the result:

* ``.F16`` -- the 16x8 result is rounded to half precision once per HMMA.
* ``.F32`` -- the result stays in single precision.

This matches the paper's observation (Section I) that Tensor Core results are
*more accurate* than a chain of FP16 FMA operations, while a long K reduction
performed by many chained ``.F16`` HMMAs still accumulates FP16 rounding
error once per instruction.
"""

from __future__ import annotations

import numpy as np

from .fragments import (
    fragment_to_matrix,
    fragments_f32_to_matrix16x8,
    fragments_to_matrix16x8,
    matrix16x8_to_fragments,
    matrix16x8_to_fragments_f32,
    COL_MAJOR,
)

__all__ = [
    "mma_16x8x8",
    "hmma_1688_f16",
    "hmma_1688_f32",
    "hmma_884_f16",
    "hmma_1688_f16_batch",
    "hmma_1688_f32_batch",
    "HMMA_1688_FLOPS",
]

#: Floating point operations performed by one HMMA.1688 (2 * 16 * 8 * 8).
HMMA_1688_FLOPS = 2 * 16 * 8 * 8


def mma_16x8x8(a, b, c, accumulate_f32: bool) -> np.ndarray:
    """Matrix-level reference: ``A[16x8] @ B[8x8] + C``.

    Products and the intra-instruction reduction happen in float32; the
    result is rounded to float16 once iff ``accumulate_f32`` is false.
    """
    a32 = np.asarray(a, dtype=np.float32)
    b32 = np.asarray(b, dtype=np.float32)
    c32 = np.asarray(c, dtype=np.float32)
    if a32.shape != (16, 8) or b32.shape != (8, 8) or c32.shape != (16, 8):
        raise ValueError(
            f"mma_16x8x8 expects A(16x8), B(8x8), C(16x8); got "
            f"{a32.shape}, {b32.shape}, {c32.shape}"
        )
    d = a32 @ b32 + c32
    if accumulate_f32:
        return d
    return d.astype(np.float16)


def hmma_1688_f16(a_regs, b_reg, c_regs) -> np.ndarray:
    """Execute ``HMMA.1688.F16`` on warp registers.

    Args:
        a_regs: (2, 32) uint32 -- A in row-major fragments.
        b_reg: (32,) uint32 -- B in column-major fragments.
        c_regs: (2, 32) uint32 -- C accumulator in row-major fragments.

    Returns:
        (2, 32) uint32 -- D in row-major fragments.
    """
    a = fragments_to_matrix16x8(a_regs)
    b = fragment_to_matrix(b_reg, COL_MAJOR)
    c = fragments_to_matrix16x8(c_regs)
    d = mma_16x8x8(a, b, c, accumulate_f32=False)
    return matrix16x8_to_fragments(d)


def hmma_1688_f32(a_regs, b_reg, c_regs) -> np.ndarray:
    """Execute ``HMMA.1688.F32`` on warp registers.

    Args:
        a_regs: (2, 32) uint32 -- A in row-major half fragments.
        b_reg: (32,) uint32 -- B in column-major half fragments.
        c_regs: (4, 32) uint32 -- C accumulator, float32 fragment pairs.

    Returns:
        (4, 32) uint32 -- D as float32 fragment pairs.
    """
    a = fragments_to_matrix16x8(a_regs)
    b = fragment_to_matrix(b_reg, COL_MAJOR)
    c = fragments_f32_to_matrix16x8(c_regs)
    d = mma_16x8x8(a, b, c, accumulate_f32=True)
    return matrix16x8_to_fragments_f32(d)


def _hmma_1688_batch_fallback(a_regs, b_regs, c_regs, f32: bool) -> np.ndarray:
    """Per-(product, warp) scalar path (big-endian hosts)."""
    g, _, total = a_regs.shape
    n_warps = total // 32
    fn = hmma_1688_f32 if f32 else hmma_1688_f16
    out = np.empty_like(c_regs)
    for i in range(g):
        for w in range(n_warps):
            lanes = slice(32 * w, 32 * (w + 1))
            out[i][:, lanes] = fn(
                a_regs[i][:, lanes], b_regs[i][lanes], c_regs[i][:, lanes])
    return out


def hmma_1688_f16_batch(a_regs, b_regs, c_regs) -> np.ndarray:
    """Stacked ``HMMA.1688.F16``: *g* independent products over *w* warps.

    Args:
        a_regs: (g, 2, L) uint32 -- A fragments, L = 32 * n_warps lanes
            laid out warp-major (warp 0's 32 lanes first).
        b_regs: (g, L) uint32 -- B fragments.
        c_regs: (g, 2, L) uint32 -- C accumulators.

    Returns:
        (g, 2, L) uint32 -- D fragments.

    Each of the ``g * n_warps`` products is computed as an individual
    (16,8) @ (8,8) float32 2-D matmul, so BLAS dispatch and rounding are
    bit-identical to :func:`hmma_1688_f16` on every warp slice.
    """
    from . import fragments as frag
    from .fp16 import HALF

    a_regs = np.ascontiguousarray(a_regs, dtype=np.uint32)
    b_regs = np.ascontiguousarray(b_regs, dtype=np.uint32)
    c_regs = np.ascontiguousarray(c_regs, dtype=np.uint32)
    if not frag._LITTLE_ENDIAN:
        return _hmma_1688_batch_fallback(a_regs, b_regs, c_regs, f32=False)
    g, _, total = a_regs.shape
    n_warps = total // 32
    gw = g * n_warps
    a16 = (a_regs.view(np.uint16).reshape(g, 2, n_warps, 64)
           .transpose(0, 2, 1, 3).reshape(gw, 128)
           .take(frag._GATHER_16X8, axis=1).view(HALF))
    b16 = (b_regs.view(np.uint16).reshape(gw, 64)
           .take(frag._PERMS[COL_MAJOR][0], axis=1).view(HALF))
    c16 = (c_regs.view(np.uint16).reshape(g, 2, n_warps, 64)
           .transpose(0, 2, 1, 3).reshape(gw, 128)
           .take(frag._GATHER_16X8, axis=1).view(HALF))
    a32 = a16.astype(np.float32)
    b32 = b16.astype(np.float32)
    prod = np.empty((gw, 16, 8), dtype=np.float32)
    for i in range(gw):
        prod[i] = a32[i] @ b32[i]
    d16 = (prod + c16.astype(np.float32)).astype(np.float16)
    return (d16.reshape(gw, 128).take(frag._SCATTER_16X8, axis=1)
            .view(np.uint32).reshape(g, n_warps, 2, 32)
            .transpose(0, 2, 1, 3).reshape(g, 2, total))


def hmma_1688_f32_batch(a_regs, b_regs, c_regs) -> np.ndarray:
    """Stacked ``HMMA.1688.F32`` (see :func:`hmma_1688_f16_batch`).

    ``c_regs`` / result are (g, 4, L) uint32 float32 fragment pairs.
    """
    from . import fragments as frag
    from .fp16 import HALF

    a_regs = np.ascontiguousarray(a_regs, dtype=np.uint32)
    b_regs = np.ascontiguousarray(b_regs, dtype=np.uint32)
    c_regs = np.ascontiguousarray(c_regs, dtype=np.uint32)
    if not frag._LITTLE_ENDIAN:
        return _hmma_1688_batch_fallback(a_regs, b_regs, c_regs, f32=True)
    g, _, total = a_regs.shape
    n_warps = total // 32
    gw = g * n_warps
    a16 = (a_regs.view(np.uint16).reshape(g, 2, n_warps, 64)
           .transpose(0, 2, 1, 3).reshape(gw, 128)
           .take(frag._GATHER_16X8, axis=1).view(HALF))
    b16 = (b_regs.view(np.uint16).reshape(gw, 64)
           .take(frag._PERMS[COL_MAJOR][0], axis=1).view(HALF))
    c32 = (c_regs.view(np.float32).reshape(g, 4, n_warps, 32)
           .transpose(0, 2, 1, 3).reshape(gw, 128)
           .take(frag._INV_F32.ravel(), axis=1).reshape(gw, 16, 8))
    a32 = a16.astype(np.float32)
    b32 = b16.astype(np.float32)
    prod = np.empty((gw, 16, 8), dtype=np.float32)
    for i in range(gw):
        prod[i] = a32[i] @ b32[i]
    d = prod + c32
    return (d.reshape(gw, 128).take(frag._PERM_F32.ravel(), axis=1)
            .view(np.uint32).reshape(g, n_warps, 4, 32)
            .transpose(0, 2, 1, 3).reshape(g, 4, total))


def hmma_884_f16(a_reg, b_reg, c_reg) -> np.ndarray:
    """Execute the Volta-style ``HMMA.884`` step: ``D[8x8] = A[8x8]B[8x8]+C``.

    Provided for completeness (the paper focuses on ``.1688`` because it is
    "more succinct"); A, D and C are row-major single warp registers, B is
    column-major.
    """
    from .fragments import matrix_to_fragment, ROW_MAJOR

    a = fragment_to_matrix(a_reg, ROW_MAJOR)
    b = fragment_to_matrix(b_reg, COL_MAJOR)
    c = fragment_to_matrix(c_reg, ROW_MAJOR)
    a32 = a.astype(np.float32)
    b32 = b.astype(np.float32)
    d = (a32 @ b32 + c.astype(np.float32)).astype(np.float16)
    return matrix_to_fragment(d, ROW_MAJOR)
