"""Functional semantics of the ``HMMA.1688`` Tensor Core instruction.

One ``HMMA.1688`` computes ``D[16x8] = A[16x8] @ B[8x8] + C[16x8]`` (paper
Eq. (2)) on warp-register fragments whose layout is defined in
:mod:`repro.hmma.fragments`.

Precision model
---------------
Tensor Cores multiply FP16 operands exactly (each product of two FP16 values
is representable in FP32) and accumulate in higher precision *within* one
instruction; the accumulator register type then determines the rounding of
the result:

* ``.F16`` -- the 16x8 result is rounded to half precision once per HMMA.
* ``.F32`` -- the result stays in single precision.

This matches the paper's observation (Section I) that Tensor Core results are
*more accurate* than a chain of FP16 FMA operations, while a long K reduction
performed by many chained ``.F16`` HMMAs still accumulates FP16 rounding
error once per instruction.
"""

from __future__ import annotations

import numpy as np

from .fragments import (
    fragment_to_matrix,
    fragments_f32_to_matrix16x8,
    fragments_to_matrix16x8,
    matrix16x8_to_fragments,
    matrix16x8_to_fragments_f32,
    COL_MAJOR,
)

__all__ = [
    "mma_16x8x8",
    "mma_16x8x16",
    "hmma_1688_f16",
    "hmma_1688_f32",
    "hmma_884_f16",
    "hmma_16816_f16",
    "hmma_16816_f32",
    "hmma_1688_f16_batch",
    "hmma_1688_f32_batch",
    "hmma_884_f16_batch",
    "hmma_16816_f16_batch",
    "hmma_16816_f32_batch",
    "hmma_1688_window",
    "HMMA_1688_FLOPS",
]

#: Floating point operations performed by one HMMA.1688 (2 * 16 * 8 * 8).
HMMA_1688_FLOPS = 2 * 16 * 8 * 8


def mma_16x8x16(a, b, c, accumulate_f32: bool) -> np.ndarray:
    """Matrix-level reference for Ampere's ``HMMA.16816``:
    ``A[16x16] @ B[16x8] + C[16x8]``, one rounding per instruction."""
    a32 = np.asarray(a, dtype=np.float32)
    b32 = np.asarray(b, dtype=np.float32)
    c32 = np.asarray(c, dtype=np.float32)
    if a32.shape != (16, 16) or b32.shape != (16, 8) or c32.shape != (16, 8):
        raise ValueError(
            f"mma_16x8x16 expects A(16x16), B(16x8), C(16x8); got "
            f"{a32.shape}, {b32.shape}, {c32.shape}"
        )
    d = a32 @ b32 + c32
    if accumulate_f32:
        return d
    return d.astype(np.float16)


def mma_16x8x8(a, b, c, accumulate_f32: bool) -> np.ndarray:
    """Matrix-level reference: ``A[16x8] @ B[8x8] + C``.

    Products and the intra-instruction reduction happen in float32; the
    result is rounded to float16 once iff ``accumulate_f32`` is false.
    """
    a32 = np.asarray(a, dtype=np.float32)
    b32 = np.asarray(b, dtype=np.float32)
    c32 = np.asarray(c, dtype=np.float32)
    if a32.shape != (16, 8) or b32.shape != (8, 8) or c32.shape != (16, 8):
        raise ValueError(
            f"mma_16x8x8 expects A(16x8), B(8x8), C(16x8); got "
            f"{a32.shape}, {b32.shape}, {c32.shape}"
        )
    d = a32 @ b32 + c32
    if accumulate_f32:
        return d
    return d.astype(np.float16)


def hmma_1688_f16(a_regs, b_reg, c_regs) -> np.ndarray:
    """Execute ``HMMA.1688.F16`` on warp registers.

    Args:
        a_regs: (2, 32) uint32 -- A in row-major fragments.
        b_reg: (32,) uint32 -- B in column-major fragments.
        c_regs: (2, 32) uint32 -- C accumulator in row-major fragments.

    Returns:
        (2, 32) uint32 -- D in row-major fragments.
    """
    a = fragments_to_matrix16x8(a_regs)
    b = fragment_to_matrix(b_reg, COL_MAJOR)
    c = fragments_to_matrix16x8(c_regs)
    d = mma_16x8x8(a, b, c, accumulate_f32=False)
    return matrix16x8_to_fragments(d)


def hmma_1688_f32(a_regs, b_reg, c_regs) -> np.ndarray:
    """Execute ``HMMA.1688.F32`` on warp registers.

    Args:
        a_regs: (2, 32) uint32 -- A in row-major half fragments.
        b_reg: (32,) uint32 -- B in column-major half fragments.
        c_regs: (4, 32) uint32 -- C accumulator, float32 fragment pairs.

    Returns:
        (4, 32) uint32 -- D as float32 fragment pairs.
    """
    a = fragments_to_matrix16x8(a_regs)
    b = fragment_to_matrix(b_reg, COL_MAJOR)
    c = fragments_f32_to_matrix16x8(c_regs)
    d = mma_16x8x8(a, b, c, accumulate_f32=True)
    return matrix16x8_to_fragments_f32(d)


#: Fused gather/scatter index tables for the batch kernels, keyed by the
#: number of stacked warps.  Composing the warp-major de-interleave with the
#: fragment permutation moves each operand register-file -> matrix form in
#: ONE fancy-index gather (and the result back in one scatter) instead of a
#: transpose copy plus a take copy per operand -- the batch kernels are the
#: functional engines' hottest path, so the copies matter.
_BATCH_IDX_CACHE: dict = {}


def _batch_index_tables(n_warps: int):
    """(a_idx, b_idx, d_idx, c32_idx, d32_idx) for ``n_warps`` stacked warps.

    All tables index the flat u16 (fp16 operands) or f32 (``.F32``
    accumulators) view of a warp-major ``(g, regs, total)`` uint32 block:

    * ``a_idx``/``b_idx`` -- (nw, 16, 8) / (nw, 8, 8) gathers producing the
      A (and C, same layout) and B matrices per warp;
    * ``d_idx`` -- (nw, 128) scatter from flat D matrices back to fragment
      pairs;
    * ``c32_idx``/``d32_idx`` -- the float32-accumulator equivalents.
    """
    hit = _BATCH_IDX_CACHE.get(n_warps)
    if hit is not None:
        return hit
    from . import fragments as frag

    total = n_warps * 32
    w3 = np.arange(n_warps, dtype=np.intp).reshape(n_warps, 1, 1)
    w2 = np.arange(n_warps, dtype=np.intp).reshape(n_warps, 1)
    # fp16 16x8 operands: u16 element e of pair-register c of warp w sits at
    # flat offset c*2*total + 64*w + e of the (2, total)-u32 block.
    c, e = np.divmod(np.asarray(frag._GATHER_16X8, dtype=np.intp), 64)
    a_idx = c * (2 * total) + 64 * w3 + e
    b_idx = 64 * w2.reshape(n_warps, 1, 1) + np.asarray(
        frag._PERMS[COL_MAJOR][0], dtype=np.intp)
    # D fp16: matrix element m of warp w lands in fragment slot
    # Sinv[m] = argsort(S)[m], at the offset scheme above.
    t = np.argsort(np.asarray(frag._SCATTER_16X8, dtype=np.intp))
    c, e = np.divmod(t, 64)
    d_idx = c * (2 * total) + 64 * w2 + e
    # .F32 accumulators: f32 word q = r*32 + l of warp w sits at flat
    # offset r*total + 32*w + l of the (4, total)-u32 block.
    r, lane = np.divmod(np.asarray(frag._INV_F32, dtype=np.intp), 32)
    c32_idx = r * total + 32 * w3 + lane
    perm = np.asarray(frag._PERM_F32, dtype=np.intp).ravel()
    q_off = (np.repeat(np.arange(4, dtype=np.intp), 32) * total
             + np.tile(np.arange(32, dtype=np.intp), 4))
    d32_idx = np.empty((n_warps, 128), dtype=np.intp)
    d32_idx[:, perm] = 32 * w2 + q_off
    tables = (a_idx, b_idx, d_idx, c32_idx, d32_idx)
    _BATCH_IDX_CACHE[n_warps] = tables
    return tables


#: Per-warp column tables for :func:`hmma_1688_window`, keyed by n_warps.
_WINDOW_COL_CACHE: dict = {}

#: Ceiling on a window's flat index tables (int64 elements).  Above it the
#: window falls back to the row-gather + batch-kernel path: the tables cost
#: 8 bytes per gathered element, which stops being a good trade against a
#: few-MB register file somewhere around the grid-lockstep engine's largest
#: CTA chunks.
_WINDOW_FLAT_MAX_ELEMS = 1 << 21


def _window_col_tables(n_warps: int):
    """Column tables indexing the register file's u16/f32 views directly.

    Where :func:`_batch_index_tables` indexes an already-gathered
    ``(g, regs, total)`` operand block, these carry the *column* part of a
    composed index straight into the ``(256, lanes)`` register file: element
    (i, j) of warp *w*'s A matrix sits at row ``a_base + cA[i, j]``, u16
    column ``colA[w, i, j]``.  The caller folds in the per-payload register
    rows and flattens.
    """
    hit = _WINDOW_COL_CACHE.get(n_warps)
    if hit is not None:
        return hit
    from . import fragments as frag

    w = np.arange(n_warps, dtype=np.intp)
    # fp16 operands: warp w's u16 element e of pair-register c sits at
    # register row base+c, u16 column 64*w + e.
    cA, eA = np.divmod(np.asarray(frag._GATHER_16X8, dtype=np.intp), 64)
    colA = 64 * w[:, None, None] + eA
    colB = 64 * w[:, None, None] + np.asarray(
        frag._PERMS[COL_MAJOR][0], dtype=np.intp)
    t = np.argsort(np.asarray(frag._SCATTER_16X8, dtype=np.intp))
    cD, eD = np.divmod(t, 64)
    colD = 64 * w[:, None] + eD
    # .F32 accumulators: f32 word q = r*32 + l of warp w sits at register
    # row base+r, f32 column 32*w + l.
    r32, l32 = np.divmod(np.asarray(frag._INV_F32, dtype=np.intp), 32)
    colC32 = 32 * w[:, None, None] + l32
    perm = np.asarray(frag._PERM_F32, dtype=np.intp).ravel()
    rD32 = np.empty(128, dtype=np.intp)
    lD32 = np.empty(128, dtype=np.intp)
    rD32[perm] = np.repeat(np.arange(4, dtype=np.intp), 32)
    lD32[perm] = np.tile(np.arange(32, dtype=np.intp), 4)
    colD32 = 32 * w[:, None] + lD32
    tables = (cA, colA, colB, cD, colD, r32, colC32, rD32, colD32)
    _WINDOW_COL_CACHE[n_warps] = tables
    return tables


def hmma_1688_window(d_base, a_base, b_base, c_base, f32: bool):
    """Compile an in-place executor for a fused window of *g* HMMA.1688s.

    Returns ``run(regs)`` operating directly on the ``(256, lanes)`` uint32
    register file.  Each operand is one fancy-index gather with a fully
    materialised flat index (the window row gather fused with the fragment
    permutation of :func:`_batch_index_tables`) -- NumPy's single-index take
    beats both the two-index broadcast form and a row gather followed by a
    block gather.  GEMM windows reuse fragments (each A row block multiplies
    several B column blocks and vice versa), so A and B are gathered and
    converted per *unique* register base only, then expanded to per-product
    form with a float32 row gather -- a pure copy, so results stay
    bit-identical to the batch kernels (the uop differential suite pins this
    against the reference engine).  Windows whose tables would exceed
    ``_WINDOW_FLAT_MAX_ELEMS`` fall back to the row-gather + batch-kernel
    path, as do big-endian hosts.
    """
    from . import fragments as frag
    from .fp16 import HALF

    g = len(d_base)
    nreg = 4 if f32 else 2
    d_rows = np.asarray(d_base, dtype=np.intp)
    c_rows = np.asarray(c_base, dtype=np.intp)
    a_uniq, a_inv = np.unique(np.asarray(a_base, dtype=np.intp),
                              return_inverse=True)
    b_uniq, b_inv = np.unique(np.asarray(b_base, dtype=np.intp),
                              return_inverse=True)
    ua, ub = a_uniq.size, b_uniq.size

    a_idx2 = np.asarray(a_base, dtype=np.intp)[:, None] + np.arange(
        2, dtype=np.intp)
    b_idx1 = np.asarray(b_base, dtype=np.intp)
    c_idx2 = c_rows[:, None] + np.arange(nreg, dtype=np.intp)
    d_idx2 = d_rows[:, None] + np.arange(nreg, dtype=np.intp)
    batch = hmma_1688_f32_batch if f32 else hmma_1688_f16_batch

    def run_blocks(regs):
        regs[d_idx2] = batch(regs[a_idx2], regs[b_idx1], regs[c_idx2])

    if not frag._LITTLE_ENDIAN:
        return run_blocks

    # Flat tables depend on the lane count, known only once the first
    # register file arrives; one decoded program has exactly one lane count,
    # so this cache holds a single entry in practice.
    cache: dict = {}

    def tables(lanes):
        tab = cache.get(lanes)
        if tab is not None:
            return tab
        nw = lanes // 32
        elems = nw * (128 * ua + 64 * ub + 2 * 128 * g)
        if elems > _WINDOW_FLAT_MAX_ELEMS:
            tab = cache[lanes] = None
            return tab
        (cA, colA, colB, cD, colD,
         r32, colC32, rD32, colD32) = _window_col_tables(nw)
        s16 = 2 * lanes   # u16 row stride of the (256, lanes) u32 file
        iA = ((a_uniq[:, None, None] + cA)[:, None] * s16 + colA[None]).ravel()
        iB = (b_uniq[:, None, None, None] * s16 + colB[None]).ravel()
        if f32:
            iC = ((c_rows[:, None, None] + r32)[:, None] * lanes
                  + colC32[None]).ravel()
            iD = ((d_rows[:, None] + rD32)[:, None] * lanes
                  + colD32[None]).ravel()
        else:
            iC = ((c_rows[:, None, None] + cA)[:, None] * s16
                  + colA[None]).ravel()
            iD = ((d_rows[:, None] + cD)[:, None] * s16 + colD[None]).ravel()
        tab = cache[lanes] = (nw, iA, iB, iC, iD)
        return tab

    if f32:
        def run(regs):
            tab = tables(regs.shape[1])
            if tab is None:
                return run_blocks(regs)
            nw, iA, iB, iC, iD = tab
            gw = g * nw
            f16 = regs.view(np.uint16).reshape(-1)
            f32v = regs.view(np.float32).reshape(-1)
            a32 = (f16[iA].view(HALF).reshape(ua, nw, 16, 8)
                   .astype(np.float32)[a_inv].reshape(gw, 16, 8))
            b32 = (f16[iB].view(HALF).reshape(ub, nw, 8, 8)
                   .astype(np.float32)[b_inv].reshape(gw, 8, 8))
            c32 = f32v[iC].reshape(gw, 16, 8)
            d = np.matmul(a32, b32) + c32
            f32v[iD] = d.reshape(-1)
    else:
        def run(regs):
            tab = tables(regs.shape[1])
            if tab is None:
                return run_blocks(regs)
            nw, iA, iB, iC, iD = tab
            gw = g * nw
            f16 = regs.view(np.uint16).reshape(-1)
            a32 = (f16[iA].view(HALF).reshape(ua, nw, 16, 8)
                   .astype(np.float32)[a_inv].reshape(gw, 16, 8))
            b32 = (f16[iB].view(HALF).reshape(ub, nw, 8, 8)
                   .astype(np.float32)[b_inv].reshape(gw, 8, 8))
            c32 = f16[iC].view(HALF).reshape(gw, 16, 8).astype(np.float32)
            d16 = (np.matmul(a32, b32) + c32).astype(np.float16)
            f16[iD] = d16.view(np.uint16).reshape(-1)
    return run


def _hmma_1688_batch_fallback(a_regs, b_regs, c_regs, f32: bool) -> np.ndarray:
    """Per-(product, warp) scalar path (big-endian hosts)."""
    g, _, total = a_regs.shape
    n_warps = total // 32
    fn = hmma_1688_f32 if f32 else hmma_1688_f16
    out = np.empty_like(c_regs)
    for i in range(g):
        for w in range(n_warps):
            lanes = slice(32 * w, 32 * (w + 1))
            out[i][:, lanes] = fn(
                a_regs[i][:, lanes], b_regs[i][lanes], c_regs[i][:, lanes])
    return out


def hmma_1688_f16_batch(a_regs, b_regs, c_regs) -> np.ndarray:
    """Stacked ``HMMA.1688.F16``: *g* independent products over *w* warps.

    Args:
        a_regs: (g, 2, L) uint32 -- A fragments, L = 32 * n_warps lanes
            laid out warp-major (warp 0's 32 lanes first).
        b_regs: (g, L) uint32 -- B fragments.
        c_regs: (g, 2, L) uint32 -- C accumulators.

    Returns:
        (g, 2, L) uint32 -- D fragments.

    The ``g * n_warps`` products run as one stacked (gw,16,8) @ (gw,8,8)
    float32 matmul; NumPy applies the same per-slice BLAS kernel as the 2-D
    ``a @ b`` in :func:`hmma_1688_f16`, so rounding stays bit-identical on
    every warp slice -- the golden functional digests pin this equivalence.
    """
    from . import fragments as frag
    from .fp16 import HALF

    a_regs = np.ascontiguousarray(a_regs, dtype=np.uint32)
    b_regs = np.ascontiguousarray(b_regs, dtype=np.uint32)
    c_regs = np.ascontiguousarray(c_regs, dtype=np.uint32)
    if not frag._LITTLE_ENDIAN:
        return _hmma_1688_batch_fallback(a_regs, b_regs, c_regs, f32=False)
    g, _, total = a_regs.shape
    n_warps = total // 32
    gw = g * n_warps
    a_idx, b_idx, d_idx, _, _ = _batch_index_tables(n_warps)
    af = a_regs.view(np.uint16).reshape(g, 4 * total)
    bf = b_regs.view(np.uint16).reshape(g, 2 * total)
    cf = c_regs.view(np.uint16).reshape(g, 4 * total)
    a32 = af[:, a_idx].view(HALF).reshape(gw, 16, 8).astype(np.float32)
    b32 = bf[:, b_idx].view(HALF).reshape(gw, 8, 8).astype(np.float32)
    c32 = cf[:, a_idx].view(HALF).reshape(gw, 16, 8).astype(np.float32)
    d16 = (np.matmul(a32, b32) + c32).astype(np.float16)
    out = np.empty((g, 2, total), dtype=np.uint32)
    out.view(np.uint16).reshape(g, 4 * total)[:, d_idx] = (
        d16.view(np.uint16).reshape(g, n_warps, 128))
    return out


def hmma_1688_f32_batch(a_regs, b_regs, c_regs) -> np.ndarray:
    """Stacked ``HMMA.1688.F32`` (see :func:`hmma_1688_f16_batch`).

    ``c_regs`` / result are (g, 4, L) uint32 float32 fragment pairs.
    """
    from . import fragments as frag
    from .fp16 import HALF

    a_regs = np.ascontiguousarray(a_regs, dtype=np.uint32)
    b_regs = np.ascontiguousarray(b_regs, dtype=np.uint32)
    c_regs = np.ascontiguousarray(c_regs, dtype=np.uint32)
    if not frag._LITTLE_ENDIAN:
        return _hmma_1688_batch_fallback(a_regs, b_regs, c_regs, f32=True)
    g, _, total = a_regs.shape
    n_warps = total // 32
    gw = g * n_warps
    a_idx, b_idx, _, c32_idx, d32_idx = _batch_index_tables(n_warps)
    af = a_regs.view(np.uint16).reshape(g, 4 * total)
    bf = b_regs.view(np.uint16).reshape(g, 2 * total)
    a32 = af[:, a_idx].view(HALF).reshape(gw, 16, 8).astype(np.float32)
    b32 = bf[:, b_idx].view(HALF).reshape(gw, 8, 8).astype(np.float32)
    c32 = (c_regs.view(np.float32).reshape(g, 4 * total)[:, c32_idx]
           .reshape(gw, 16, 8))
    d = np.matmul(a32, b32) + c32
    out = np.empty((g, 4, total), dtype=np.uint32)
    out.view(np.float32).reshape(g, 4 * total)[:, d32_idx] = (
        d.reshape(g, n_warps, 128))
    return out


def hmma_884_f16(a_reg, b_reg, c_reg) -> np.ndarray:
    """Execute the Volta-style ``HMMA.884`` step: ``D[8x8] = A[8x8]B[8x8]+C``.

    The SM70 generation's native shape (the paper focuses on ``.1688``
    because it is "more succinct"); A, D and C are row-major single warp
    registers, B is column-major.
    """
    from .fragments import matrix_to_fragment, ROW_MAJOR

    a = fragment_to_matrix(a_reg, ROW_MAJOR)
    b = fragment_to_matrix(b_reg, COL_MAJOR)
    c = fragment_to_matrix(c_reg, ROW_MAJOR)
    a32 = a.astype(np.float32)
    b32 = b.astype(np.float32)
    d = (a32 @ b32 + c.astype(np.float32)).astype(np.float16)
    return matrix_to_fragment(d, ROW_MAJOR)


def _matrix16x16_from_a_fragments(a_regs) -> np.ndarray:
    """A[16x16] from 4 registers: regs 0-1 hold k 0-7 (the 1688 A layout),
    regs 2-3 hold k 8-15 in the same row-major pair layout."""
    return np.concatenate(
        [fragments_to_matrix16x8(a_regs[:2]), fragments_to_matrix16x8(a_regs[2:])],
        axis=1,
    )


def _matrix16x8_from_b_fragments(b_regs) -> np.ndarray:
    """B[16x8] from 2 column-major registers, one per k-half."""
    return np.concatenate(
        [fragment_to_matrix(b_regs[0], COL_MAJOR),
         fragment_to_matrix(b_regs[1], COL_MAJOR)],
        axis=0,
    )


def hmma_16816_f16(a_regs, b_regs, c_regs) -> np.ndarray:
    """Execute Ampere's ``HMMA.16816.F16`` on warp registers.

    Args:
        a_regs: (4, 32) uint32 -- A[16x16], row-major pairs per k-half.
        b_regs: (2, 32) uint32 -- B[16x8], column-major per k-half.
        c_regs: (2, 32) uint32 -- C accumulator in row-major pairs.

    Returns:
        (2, 32) uint32 -- D fragments.
    """
    a = _matrix16x16_from_a_fragments(a_regs)
    b = _matrix16x8_from_b_fragments(b_regs)
    c = fragments_to_matrix16x8(c_regs)
    d = mma_16x8x16(a, b, c, accumulate_f32=False)
    return matrix16x8_to_fragments(d)


def hmma_16816_f32(a_regs, b_regs, c_regs) -> np.ndarray:
    """Execute ``HMMA.16816.F32`` (C/D are (4, 32) float32 fragment pairs)."""
    a = _matrix16x16_from_a_fragments(a_regs)
    b = _matrix16x8_from_b_fragments(b_regs)
    c = fragments_f32_to_matrix16x8(c_regs)
    d = mma_16x8x16(a, b, c, accumulate_f32=True)
    return matrix16x8_to_fragments_f32(d)


#: Gather/scatter tables for the SM70/SM80 batch kernels, keyed by warps.
_BATCH_IDX_CACHE_884: dict = {}
_BATCH_IDX_CACHE_16816: dict = {}


def _batch_index_tables_884(n_warps: int):
    """(row_idx, col_idx, d_idx) for stacked ``HMMA.884`` warps.

    All tables index the flat u16 view of a ``(g, total)`` uint32 register
    row: u16 element e of warp w sits at offset ``64*w + e``.  ``row_idx``
    and ``col_idx`` are (nw, 8, 8) gathers producing the row-major (A/C)
    and column-major (B) 8x8 matrices; ``d_idx`` is the (nw, 64) scatter
    from flat D matrices back to fragments.
    """
    hit = _BATCH_IDX_CACHE_884.get(n_warps)
    if hit is not None:
        return hit
    from . import fragments as frag

    w3 = np.arange(n_warps, dtype=np.intp).reshape(n_warps, 1, 1)
    w2 = np.arange(n_warps, dtype=np.intp).reshape(n_warps, 1)
    row_idx = 64 * w3 + np.asarray(frag._PERMS[frag.ROW_MAJOR][0], dtype=np.intp)
    col_idx = 64 * w3 + np.asarray(frag._PERMS[frag.COL_MAJOR][0], dtype=np.intp)
    inv = np.argsort(np.asarray(frag._PERMS[frag.ROW_MAJOR][1], dtype=np.intp))
    d_idx = 64 * w2 + inv
    tables = (row_idx, col_idx, d_idx)
    _BATCH_IDX_CACHE_884[n_warps] = tables
    return tables


def _batch_index_tables_16816(n_warps: int):
    """(a_idx, b_idx) for stacked ``HMMA.16816`` warps.

    ``a_idx`` -- (nw, 16, 16) gather over the flat u16 view of a
    ``(g, 4, total)`` uint32 block (regs 0-1: k 0-7 via the 1688 A tables;
    regs 2-3: k 8-15); ``b_idx`` -- (nw, 16, 8) over a ``(g, 2, total)``
    block (one column-major register per k-half).  C/D reuse the 1688
    accumulator tables from :func:`_batch_index_tables`.
    """
    hit = _BATCH_IDX_CACHE_16816.get(n_warps)
    if hit is not None:
        return hit
    from . import fragments as frag

    total = n_warps * 32
    w3 = np.arange(n_warps, dtype=np.intp).reshape(n_warps, 1, 1)
    c, e = np.divmod(np.asarray(frag._GATHER_16X8, dtype=np.intp), 64)
    a_lo = c * (2 * total) + 64 * w3 + e
    a_hi = (c + 2) * (2 * total) + 64 * w3 + e
    a_idx = np.concatenate([a_lo, a_hi], axis=2)
    col = np.asarray(frag._PERMS[frag.COL_MAJOR][0], dtype=np.intp)
    b_lo = 64 * w3 + col
    b_hi = 2 * total + 64 * w3 + col
    b_idx = np.concatenate([b_lo, b_hi], axis=1)
    tables = (a_idx, b_idx)
    _BATCH_IDX_CACHE_16816[n_warps] = tables
    return tables


def hmma_884_f16_batch(a_regs, b_regs, c_regs) -> np.ndarray:
    """Stacked ``HMMA.884``: *g* independent 8x8x8 products over *w* warps.

    Args:
        a_regs: (g, L) uint32 -- A fragments (row-major), L = 32 * n_warps.
        b_regs: (g, L) uint32 -- B fragments (column-major).
        c_regs: (g, L) uint32 -- C accumulators (row-major).

    Returns:
        (g, L) uint32 -- D fragments.
    """
    from . import fragments as frag
    from .fp16 import HALF

    a_regs = np.ascontiguousarray(a_regs, dtype=np.uint32)
    b_regs = np.ascontiguousarray(b_regs, dtype=np.uint32)
    c_regs = np.ascontiguousarray(c_regs, dtype=np.uint32)
    g, total = a_regs.shape
    n_warps = total // 32
    if not frag._LITTLE_ENDIAN:
        out = np.empty_like(c_regs)
        for i in range(g):
            for w in range(n_warps):
                lanes = slice(32 * w, 32 * (w + 1))
                out[i][lanes] = hmma_884_f16(
                    a_regs[i][lanes], b_regs[i][lanes], c_regs[i][lanes])
        return out
    gw = g * n_warps
    row_idx, col_idx, d_idx = _batch_index_tables_884(n_warps)
    af = a_regs.view(np.uint16).reshape(g, 2 * total)
    bf = b_regs.view(np.uint16).reshape(g, 2 * total)
    cf = c_regs.view(np.uint16).reshape(g, 2 * total)
    a32 = af[:, row_idx].view(HALF).reshape(gw, 8, 8).astype(np.float32)
    b32 = bf[:, col_idx].view(HALF).reshape(gw, 8, 8).astype(np.float32)
    c32 = cf[:, row_idx].view(HALF).reshape(gw, 8, 8).astype(np.float32)
    d16 = (np.matmul(a32, b32) + c32).astype(np.float16)
    out = np.empty((g, total), dtype=np.uint32)
    out.view(np.uint16).reshape(g, 2 * total)[:, d_idx] = (
        d16.view(np.uint16).reshape(g, n_warps, 64))
    return out


def _hmma_16816_batch_fallback(a_regs, b_regs, c_regs, f32: bool) -> np.ndarray:
    """Per-(product, warp) scalar path (big-endian hosts)."""
    g, _, total = a_regs.shape
    n_warps = total // 32
    fn = hmma_16816_f32 if f32 else hmma_16816_f16
    out = np.empty_like(c_regs)
    for i in range(g):
        for w in range(n_warps):
            lanes = slice(32 * w, 32 * (w + 1))
            out[i][:, lanes] = fn(
                a_regs[i][:, lanes], b_regs[i][:, lanes], c_regs[i][:, lanes])
    return out


def hmma_16816_f16_batch(a_regs, b_regs, c_regs) -> np.ndarray:
    """Stacked ``HMMA.16816.F16``: *g* independent products over *w* warps.

    Args:
        a_regs: (g, 4, L) uint32 -- A[16x16] fragments, L = 32 * n_warps.
        b_regs: (g, 2, L) uint32 -- B[16x8] fragments.
        c_regs: (g, 2, L) uint32 -- C accumulators (the 1688 layout).

    Returns:
        (g, 2, L) uint32 -- D fragments.
    """
    from . import fragments as frag
    from .fp16 import HALF

    a_regs = np.ascontiguousarray(a_regs, dtype=np.uint32)
    b_regs = np.ascontiguousarray(b_regs, dtype=np.uint32)
    c_regs = np.ascontiguousarray(c_regs, dtype=np.uint32)
    if not frag._LITTLE_ENDIAN:
        return _hmma_16816_batch_fallback(a_regs, b_regs, c_regs, f32=False)
    g, _, total = a_regs.shape
    n_warps = total // 32
    gw = g * n_warps
    a_idx, b_idx = _batch_index_tables_16816(n_warps)
    cd_idx, _, d_idx, _, _ = _batch_index_tables(n_warps)
    af = a_regs.view(np.uint16).reshape(g, 8 * total)
    bf = b_regs.view(np.uint16).reshape(g, 4 * total)
    cf = c_regs.view(np.uint16).reshape(g, 4 * total)
    a32 = af[:, a_idx].view(HALF).reshape(gw, 16, 16).astype(np.float32)
    b32 = bf[:, b_idx].view(HALF).reshape(gw, 16, 8).astype(np.float32)
    c32 = cf[:, cd_idx].view(HALF).reshape(gw, 16, 8).astype(np.float32)
    d16 = (np.matmul(a32, b32) + c32).astype(np.float16)
    out = np.empty((g, 2, total), dtype=np.uint32)
    out.view(np.uint16).reshape(g, 4 * total)[:, d_idx] = (
        d16.view(np.uint16).reshape(g, n_warps, 128))
    return out


def hmma_16816_f32_batch(a_regs, b_regs, c_regs) -> np.ndarray:
    """Stacked ``HMMA.16816.F32`` (see :func:`hmma_16816_f16_batch`).

    ``c_regs`` / result are (g, 4, L) uint32 float32 fragment pairs.
    """
    from . import fragments as frag
    from .fp16 import HALF

    a_regs = np.ascontiguousarray(a_regs, dtype=np.uint32)
    b_regs = np.ascontiguousarray(b_regs, dtype=np.uint32)
    c_regs = np.ascontiguousarray(c_regs, dtype=np.uint32)
    if not frag._LITTLE_ENDIAN:
        return _hmma_16816_batch_fallback(a_regs, b_regs, c_regs, f32=True)
    g, _, total = a_regs.shape
    n_warps = total // 32
    gw = g * n_warps
    a_idx, b_idx = _batch_index_tables_16816(n_warps)
    _, _, _, c32_idx, d32_idx = _batch_index_tables(n_warps)
    af = a_regs.view(np.uint16).reshape(g, 8 * total)
    bf = b_regs.view(np.uint16).reshape(g, 4 * total)
    a32 = af[:, a_idx].view(HALF).reshape(gw, 16, 16).astype(np.float32)
    b32 = bf[:, b_idx].view(HALF).reshape(gw, 16, 8).astype(np.float32)
    c32 = (c_regs.view(np.float32).reshape(g, 4 * total)[:, c32_idx]
           .reshape(gw, 16, 8))
    d = np.matmul(a32, b32) + c32
    out = np.empty((g, 4, total), dtype=np.uint32)
    out.view(np.float32).reshape(g, 4 * total)[:, d32_idx] = (
        d.reshape(g, n_warps, 128))
    return out
