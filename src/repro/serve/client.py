"""Thin client of the simulation service.

A :class:`ServeClient` wraps one connection to a daemon socket and
exposes the protocol ops as methods.  The CLI's ``--remote`` mode and
the ``PerformanceModel`` remote backend are both built on it; so is
``repro doctor``'s service self-check.

The client is deliberately dumb: no retries, no local execution.  A
caller that wants graceful degradation checks :func:`daemon_available`
(or catches :class:`ServeUnavailable`) and falls back to in-process
execution itself -- that keeps "could not reach the daemon" and "the
daemon says the job failed" as two visibly different failures.
"""

from __future__ import annotations

import getpass
import socket

from .daemon import default_socket
from .protocol import ProtocolError, recv_frame, send_frame

__all__ = [
    "ServeClient",
    "ServeError",
    "ServeUnavailable",
    "JobFailed",
    "daemon_available",
    "default_socket",
    "default_tenant",
]


class ServeError(RuntimeError):
    """The daemon answered with ``ok: false``."""

    def __init__(self, message: str, code: str = ""):
        super().__init__(message)
        self.code = code


class ServeUnavailable(ConnectionError):
    """No daemon reachable at the socket path."""


class JobFailed(RuntimeError):
    """A waited-on job finished in the ``failed`` state."""


def default_tenant() -> str:
    """Tenant identity reported with every submission: ``user@pid-host``
    would leak across runs, so user name alone -- stable per human,
    aggregatable across their processes."""
    try:
        return getpass.getuser()
    except Exception:  # no passwd entry in minimal containers
        return "anon"


def daemon_available(socket_path: str = None, timeout: float = 1.0) -> bool:
    """True when a live daemon answers a ping (cheap, side-effect free)."""
    try:
        with ServeClient(socket_path, timeout=timeout) as client:
            client.ping()
        return True
    except (ServeUnavailable, ServeError, ProtocolError, OSError):
        return False


class ServeClient:
    """One connection to a daemon; usable as a context manager."""

    def __init__(self, socket_path: str = None, tenant: str = None,
                 timeout: float = None):
        self.socket_path = socket_path or default_socket()
        self.tenant = tenant or default_tenant()
        self.timeout = timeout
        self._sock = None

    # ---------------------------------------------------------- connection

    def connect(self) -> "ServeClient":
        if self._sock is None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            if self.timeout is not None:
                sock.settimeout(self.timeout)
            try:
                sock.connect(self.socket_path)
            except OSError as exc:
                sock.close()
                raise ServeUnavailable(
                    f"no daemon at {self.socket_path} ({exc}); start one "
                    "with 'repro serve start'") from None
            self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, op: str, **fields) -> dict:
        self.connect()
        message = {"op": op, **fields}
        try:
            send_frame(self._sock, message)
            reply = recv_frame(self._sock)
        except OSError as exc:
            self.close()
            raise ServeUnavailable(
                f"daemon at {self.socket_path} went away ({exc})") from None
        if reply is None:
            self.close()
            raise ServeUnavailable(
                f"daemon at {self.socket_path} closed the connection")
        if not reply.get("ok"):
            raise ServeError(reply.get("error", "unspecified daemon error"),
                             code=reply.get("code", ""))
        return reply

    # ----------------------------------------------------------- protocol

    def ping(self) -> dict:
        return self._request("ping")

    def submit(self, kind: str, payload: dict = None, priority: int = 0) -> dict:
        """Admit one job; returns its job view (may already be done)."""
        return self._request("submit", kind=kind, payload=payload or {},
                             priority=priority, tenant=self.tenant)

    def batch_submit(self, jobs: list) -> list:
        """Admit several jobs in one round trip.

        *jobs* is a list of ``{"kind", "payload", "priority"?}`` dicts;
        duplicates coalesce against each other (and anything already in
        flight), so a figure-sweep client submits its whole grid here.
        """
        subs = [{"kind": j["kind"], "payload": j.get("payload") or {},
                 "priority": int(j.get("priority", 0)),
                 "tenant": self.tenant} for j in jobs]
        return self._request("batch", jobs=subs)["jobs"]

    def poll(self, job_id: str) -> dict:
        return self._request("poll", job_id=job_id)

    def wait(self, job_id: str, timeout: float = None) -> dict:
        """Block until the job finishes (or *timeout*); returns its view."""
        return self._request("wait", job_id=job_id, timeout=timeout)

    def stats(self) -> dict:
        return self._request("stats")

    def shutdown(self) -> dict:
        return self._request("shutdown")

    # --------------------------------------------------------- convenience

    def run(self, kind: str, payload: dict = None, priority: int = 0,
            timeout: float = None) -> dict:
        """Submit + wait; returns the finished job view.

        Raises :class:`JobFailed` when the daemon reports the job failed
        (the daemon-side exception text is the message).
        """
        view = self.submit(kind, payload, priority=priority)
        if view["state"] not in ("done", "failed"):
            view = self.wait(view["job_id"], timeout=timeout)
        if view["state"] == "failed":
            raise JobFailed(view.get("error", "job failed"))
        if view["state"] != "done":
            raise ServeError(f"job {view['job_id']} still "
                             f"{view['state']} after wait")
        return view
