"""Wire protocol of the simulation service: length-prefixed JSON frames.

The daemon and its clients speak over a unix domain socket.  Every
message -- request or response -- is one **frame**: a 4-byte big-endian
payload length followed by that many bytes of UTF-8 JSON.  Framing keeps
the stream self-delimiting (no sentinel scanning, no partial-read
ambiguity) and JSON keeps the protocol inspectable with ``socat`` and a
hex dump.

NumPy payloads do not fit JSON natively, so :func:`encode_payload` walks
a request/response tree and replaces every ``ndarray`` (and ``bytes``)
with a tagged dict:

* small arrays travel **inline** as base64 (``{"__nd__": ...}``);
* arrays above :data:`SPOOL_LIMIT_BYTES` are **file-spooled**: written as
  ``.npy`` into a spool directory and referenced by path
  (``{"__ndfile__": ...}``).  Client and daemon share a host (unix
  socket), so a path reference is sound and keeps multi-MB operands out
  of the socket buffer.

:func:`decode_payload` reverses both.  Frames are capped at
:data:`MAX_FRAME_BYTES`; anything larger is a protocol error, which is
what pushes bulk data onto the spool path.
"""

from __future__ import annotations

import base64
import io
import json
import os
import socket
import tempfile
import uuid

import numpy as np

__all__ = [
    "MAX_FRAME_BYTES",
    "SPOOL_LIMIT_BYTES",
    "ProtocolError",
    "send_frame",
    "recv_frame",
    "encode_payload",
    "decode_payload",
]

#: Hard cap on one frame's JSON payload.  Large enough for any summary
#: the service returns, small enough that a corrupt length prefix cannot
#: make a reader allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Arrays above this many bytes are spooled to ``.npy`` files instead of
#: travelling base64-inline (base64 inflates by 4/3 and the JSON codec
#: copies; 4 MB keeps frames snappy).
SPOOL_LIMIT_BYTES = 4 * 1024 * 1024


class ProtocolError(RuntimeError):
    """A malformed, oversized or truncated frame."""


# -------------------------------------------------------------- framing

def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly *n* bytes, or b"" on a clean EOF at a frame boundary."""
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(min(65536, n - got))
        if not chunk:
            if got == 0:
                return b""
            raise ProtocolError(f"connection closed mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, message: dict) -> None:
    """Serialise *message* and write it as one length-prefixed frame."""
    data = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES} cap; "
            "spool bulk arrays instead (see encode_payload)")
    sock.sendall(len(data).to_bytes(4, "big") + data)


def recv_frame(sock: socket.socket):
    """The next message on *sock*, or ``None`` on a clean EOF."""
    header = _recv_exact(sock, 4)
    if not header:
        return None
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced a {length}-byte frame "
                            f"(cap {MAX_FRAME_BYTES})")
    data = _recv_exact(sock, length)
    if len(data) != length:
        raise ProtocolError("connection closed mid-frame")
    try:
        return json.loads(data.decode("utf-8"))
    except ValueError as exc:
        raise ProtocolError(f"unparseable frame: {exc}") from None


# ------------------------------------------------------- numpy payloads

def _spool_dir(spool_dir) -> str:
    if spool_dir is None:
        spool_dir = os.path.join(tempfile.gettempdir(), "repro-serve-spool")
    os.makedirs(spool_dir, exist_ok=True)
    return spool_dir


def _encode_array(arr: np.ndarray, spool_dir):
    if arr.nbytes > SPOOL_LIMIT_BYTES:
        path = os.path.join(_spool_dir(spool_dir),
                            f"{uuid.uuid4().hex}.npy")
        with open(path, "wb") as fh:
            np.save(fh, arr, allow_pickle=False)
        return {"__ndfile__": path}
    buf = io.BytesIO()
    np.save(buf, arr, allow_pickle=False)
    return {"__nd__": base64.b64encode(buf.getvalue()).decode("ascii")}


def encode_payload(obj, spool_dir=None):
    """Deep-copy *obj* with every ndarray/bytes replaced by a JSON form.

    ``spool_dir`` overrides where oversized arrays are spooled (the
    daemon points it inside its cache directory so ``serve stop`` can
    sweep leftovers).
    """
    if isinstance(obj, np.ndarray):
        return _encode_array(obj, spool_dir)
    if isinstance(obj, (bytes, bytearray)):
        return {"__b64__": base64.b64encode(bytes(obj)).decode("ascii")}
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, dict):
        return {key: encode_payload(value, spool_dir)
                for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [encode_payload(value, spool_dir) for value in obj]
    return obj


def decode_payload(obj, unlink_spool: bool = True):
    """Reverse :func:`encode_payload`.

    Spooled files are read once and (by default) unlinked -- they are
    one-shot hand-offs, not a cache.
    """
    if isinstance(obj, dict):
        if "__nd__" in obj and len(obj) == 1:
            raw = base64.b64decode(obj["__nd__"])
            return np.load(io.BytesIO(raw), allow_pickle=False)
        if "__ndfile__" in obj and len(obj) == 1:
            path = obj["__ndfile__"]
            with open(path, "rb") as fh:
                arr = np.load(fh, allow_pickle=False)
            if unlink_spool:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            return arr
        if "__b64__" in obj and len(obj) == 1:
            return base64.b64decode(obj["__b64__"])
        return {key: decode_payload(value, unlink_spool)
                for key, value in obj.items()}
    if isinstance(obj, list):
        return [decode_payload(value, unlink_spool) for value in obj]
    return obj
