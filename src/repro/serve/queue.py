"""Async job queue with priorities, bounded depth and request coalescing.

The queue is the daemon's core perf mechanism.  Every job carries a
**coalescing key** -- by construction the same content-addressed key the
``repro.perf`` result cache uses (:data:`~repro.perf.cache.SIM_VERSION`
included), see :func:`repro.serve.jobs.job_key` -- and the invariant is:

    **at most one job per key is in flight (queued or running) at any
    moment.**

A submission whose key matches an in-flight job *attaches* to it instead
of enqueueing a duplicate: both callers share the one future, and
``serve.coalesced`` counts the attachment (N concurrent submissions of
one key execute one simulation and count N-1).  Completion publishes the
result and the per-job stats delta atomically under the queue lock
before the waiters' event fires, so a coalesced group can never observe
a partial result.

Beyond coalescing the queue is conventional: a binary heap ordered by
(-priority, admission sequence) -- higher priority first, FIFO within a
priority -- with a bounded **queued** depth (running and finished jobs
do not count against it; the bound is back-pressure on admission, not a
memory cap).  Finished jobs are retained for polling in a bounded
ring; the oldest finished jobs are forgotten first.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from ..perf.stats import STATS

__all__ = ["Job", "JobQueue", "QueueFull", "UnknownJob"]

#: How many finished jobs stay pollable before the oldest is forgotten.
_DONE_RETENTION = 1024


class QueueFull(RuntimeError):
    """Admission refused: the queued depth hit its bound."""


class UnknownJob(KeyError):
    """Polled a job id the daemon no longer (or never) knew."""


@dataclass
class Job:
    """One admitted request and its lifecycle state."""

    id: str
    kind: str
    key: str
    payload: dict
    priority: int = 0
    tenant: str = "anon"
    #: queued -> running -> done | failed.  "done" with ``cached=True``
    #: never ran: it was answered from the shared result cache.
    state: str = "queued"
    cached: bool = False
    #: Submissions served by this job (1 + coalesced attachments).
    waiters: int = 1
    result: dict = None
    error: str = ""
    #: Scoped ``func.*``/``sim.*``/``cache.*``/``guard.*`` deltas of the
    #: one execution, shared by every waiter.
    stats: dict = field(default_factory=dict)
    submitted_at: float = field(default_factory=time.time)
    finished_at: float = None
    done: threading.Event = field(default_factory=threading.Event, repr=False)

    def public(self, with_result: bool = True) -> dict:
        """The JSON view clients see."""
        out = {
            "job_id": self.id,
            "kind": self.kind,
            "key": self.key,
            "state": self.state,
            "cached": self.cached,
            "waiters": self.waiters,
            "priority": self.priority,
        }
        if self.state == "failed":
            out["error"] = self.error
        if with_result and self.state == "done":
            out["result"] = self.result
            out["stats"] = self.stats
        return out


class JobQueue:
    """Thread-safe coalescing priority queue (see module docstring)."""

    def __init__(self, max_depth: int = 256):
        self.max_depth = max_depth
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._heap: list = []          # (-priority, seq, job)
        self._seq = itertools.count()
        self._inflight: dict = {}      # key -> queued/running Job
        self._jobs: dict = {}          # id -> every Job we still remember
        self._done_ring: deque = deque()
        self._queued = 0
        self._next_id = itertools.count(1)
        self.executed = 0              # jobs that actually ran
        self.failed = 0

    # ------------------------------------------------------------ admission

    def _new_id(self) -> str:
        return f"job-{next(self._next_id)}"

    def submit(self, kind: str, key: str, payload: dict, priority: int = 0,
               tenant: str = "anon"):
        """Admit one request; returns ``(job, outcome)``.

        *outcome* is ``"new"`` (enqueued), or ``"coalesced"`` (attached
        to an in-flight job with the same key -- the caller shares its
        future).  Raises :class:`QueueFull` when the queued depth is at
        its bound.
        """
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                existing.waiters += 1
                STATS.count("serve.coalesced")
                return existing, "coalesced"
            if self._queued >= self.max_depth:
                raise QueueFull(
                    f"queue depth {self._queued} at its bound "
                    f"({self.max_depth}); resubmit later")
            job = Job(id=self._new_id(), kind=kind, key=key,
                      payload=payload, priority=priority, tenant=tenant)
            self._inflight[key] = job
            self._jobs[job.id] = job
            heapq.heappush(self._heap, (-priority, next(self._seq), job))
            self._queued += 1
            STATS.count("serve.jobs")
            self._available.notify()
            return job, "new"

    def record_cached(self, kind: str, key: str, payload: dict,
                      result: dict, tenant: str = "anon") -> Job:
        """Admit a request already answered by the shared result cache.

        The job is born ``done`` (``cached=True``) so polling works the
        same way; it never touches the heap or the in-flight index.
        """
        with self._lock:
            job = Job(id=self._new_id(), kind=kind, key=key,
                      payload=payload, tenant=tenant, state="done",
                      cached=True, result=result)
            job.finished_at = time.time()
            job.done.set()
            self._jobs[job.id] = job
            self._retain_done(job)
            STATS.count("serve.cache_hits")
            return job

    # ------------------------------------------------------------ execution

    def next_job(self, timeout: float = None):
        """Block until a queued job is available; claim and return it.

        Returns ``None`` on timeout.  The claimed job is ``running`` and
        still in the in-flight index, so late twins keep coalescing onto
        it until :meth:`complete`/:meth:`fail`.
        """
        with self._lock:
            while not self._heap:
                if not self._available.wait(timeout):
                    return None
            _, _, job = heapq.heappop(self._heap)
            self._queued -= 1
            job.state = "running"
            return job

    def _retain_done(self, job: Job) -> None:
        self._done_ring.append(job.id)
        while len(self._done_ring) > _DONE_RETENTION:
            old = self._done_ring.popleft()
            self._jobs.pop(old, None)

    def _finish(self, job: Job, state: str) -> None:
        job.state = state
        job.finished_at = time.time()
        self._inflight.pop(job.key, None)
        self._retain_done(job)
        # The event fires only after every field above is published --
        # a coalesced group never observes a partial result.
        job.done.set()

    def complete(self, job: Job, result: dict, stats: dict = None) -> None:
        """Publish *result* (+ scoped stats delta) and wake all waiters."""
        with self._lock:
            job.result = result
            job.stats = stats or {}
            self.executed += 1
            self._finish(job, "done")

    def fail(self, job: Job, error: str, stats: dict = None) -> None:
        """Publish a failure and wake all waiters."""
        with self._lock:
            job.error = error
            job.stats = stats or {}
            self.failed += 1
            STATS.count("serve.errors")
            self._finish(job, "failed")

    # -------------------------------------------------------------- lookup

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJob(job_id) from None

    def depth(self) -> int:
        """Jobs currently queued (not yet claimed by a worker)."""
        with self._lock:
            return self._queued

    def inflight(self) -> int:
        """Jobs queued or running (the coalescing window)."""
        with self._lock:
            return len(self._inflight)
