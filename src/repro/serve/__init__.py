"""Simulation as a service: daemon, coalescing queue, thin clients.

The simulator became a pure cached function (content-addressed results,
supervised workers, guard rails); this package turns it into a shared
**service**.  One long-running daemon (``repro serve start``) owns one
worker pool and one hot cache, and any number of clients -- CLI
invocations with ``--remote``, ``PerformanceModel`` instances with a
``remote=`` socket, other hosts' sweeps -- submit jobs over a unix
domain socket.

The perf mechanism is **in-flight coalescing**: jobs are keyed by the
same content-addressed key the ``repro.perf`` cache uses, concurrent
submissions of one key attach to a single execution (``serve.coalesced``
counts the attachments), and completed results land in the shared cache
so later tenants get warm-lookup latency.  N clients autotuning the same
problem cost one fleet, not N.

Modules: :mod:`~repro.serve.protocol` (length-prefixed JSON frames,
base64/file-spooled NumPy payloads), :mod:`~repro.serve.queue`
(priorities, bounded depth, coalescing), :mod:`~repro.serve.jobs` (job
kinds and the key = cache-key invariant), :mod:`~repro.serve.daemon`
(the server), :mod:`~repro.serve.client` (the thin client).
"""

from .client import (
    JobFailed,
    ServeClient,
    ServeError,
    ServeUnavailable,
    daemon_available,
    default_tenant,
)
from .daemon import PROTOCOL_VERSION, ServeDaemon, default_socket
from .jobs import JOB_KINDS, job_key, run_job
from .queue import Job, JobQueue, QueueFull, UnknownJob

__all__ = [
    "JobFailed",
    "ServeClient",
    "ServeError",
    "ServeUnavailable",
    "daemon_available",
    "default_tenant",
    "PROTOCOL_VERSION",
    "ServeDaemon",
    "default_socket",
    "JOB_KINDS",
    "job_key",
    "run_job",
    "Job",
    "JobQueue",
    "QueueFull",
    "UnknownJob",
]
