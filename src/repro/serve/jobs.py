"""Job kinds the simulation service executes, and their cache keys.

Each kind is a pure function of its JSON payload: the daemon can run it
anywhere, coalesce concurrent twins, and cache the result.  The
**coalescing key of a job is the ``repro.perf`` cache key of the work it
performs** -- built with :func:`~repro.perf.cache.content_key` over the
canonicalised payload with :data:`~repro.perf.cache.SIM_VERSION` mixed
in, and, for ``profile`` jobs, *literally* the same ``sm-profile`` key
:meth:`~repro.analysis.perf_model.PerformanceModel.sm_profile` stores
under.  Two requests coalesce exactly when a warm cache would have
served the second one; a bumped ``SIM_VERSION`` separates the keys the
same way it invalidates the cache.

Kinds
-----
``noop``
    Diagnostic echo (optionally sleeping); never cached, so tests can
    hold a job in flight deterministically.
``profile``
    One ``PerformanceModel.sm_profile`` measurement -- the expensive
    primitive under every sweep and autotune.
``sweep``
    A figure-style size sweep of one kernel config (profile + wave-model
    estimates).
``autotune``
    Full two-stage autotune for one problem shape.
``hgemm`` / ``igemm``
    One functional GEMM launch, seed-generated operands, verified
    against the precision-model oracle daemon-side.  ``return_c`` ships
    the full result matrix back (base64) for bit-exactness audits.
``verify``
    The shape/seed verification grid of one config.
``workloads``
    One deep-learning workload-suite run (:mod:`repro.workloads`):
    every member simulated and checked bit-exactly against its oracle.
``numerics``
    One mixed-precision error-curve report (:mod:`repro.numerics`):
    FP16- vs FP32-accumulate error versus K with the Markidis verdict.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..arch.family import ArchSpec
from ..arch.turing import DEVICES, GpuSpec, MemoryCpiTable, get_device
from ..core.config import KernelConfig
from ..perf.cache import SIM_VERSION, content_key

__all__ = [
    "JobKind",
    "JOB_KINDS",
    "job_key",
    "run_job",
    "spec_to_dict",
    "spec_from_dict",
    "config_to_dict",
    "config_from_dict",
    "options_to_dict",
    "options_from_dict",
]


# ------------------------------------------------- dataclass round-trips
#
# GpuSpec / KernelConfig / PerfOptions must cross the JSON protocol and
# come back equal (their dicts feed content_key, so a lossy round-trip
# would split cache keys between client and daemon).

def spec_to_dict(spec: GpuSpec) -> dict:
    """Registry devices travel by name; custom specs as full dicts.

    The name form keeps job payloads (and hence coalescing keys) stable
    across registry recalibrations on the daemon side, and lets clients
    submit against devices they never constructed locally.
    """
    if DEVICES.get(spec.name) == spec:
        return {"device": spec.name}
    return asdict(spec)


def spec_from_dict(data: dict) -> GpuSpec:
    if "device" in data:
        name = data["device"]
        try:
            return get_device(name)
        except KeyError:
            raise ValueError(
                f"unknown device {name!r}; known devices: {sorted(DEVICES)}"
            ) from None
    fields = dict(data)
    for name, value in fields.items():
        if not isinstance(value, dict):
            continue
        if set(value) == {"cpi32", "cpi64", "cpi128"}:
            fields[name] = MemoryCpiTable(**value)
        elif name == "arch":
            fields[name] = ArchSpec(**value)
    return GpuSpec(**fields)


def config_to_dict(config: KernelConfig) -> dict:
    return asdict(config)


def config_from_dict(data: dict) -> KernelConfig:
    return KernelConfig(**data)


def options_to_dict(options) -> dict:
    return asdict(options)


def options_from_dict(data):
    from ..analysis.perf_model import PerfOptions

    fields = dict(data)
    for name in ("cliff_devices", "profile_iters"):
        if name in fields and isinstance(fields[name], list):
            fields[name] = tuple(fields[name])
    return PerfOptions(**fields)


def _model(payload):
    """(spec, options, PerformanceModel) from a job payload."""
    from ..analysis.perf_model import PerformanceModel, PerfOptions

    spec = spec_from_dict(payload["spec"])
    options = (options_from_dict(payload["options"])
               if payload.get("options") else PerfOptions())
    return spec, options, PerformanceModel(spec, options)


# ------------------------------------------------------------ executors

def _run_noop(payload: dict) -> dict:
    import time

    sleep_s = float(payload.get("sleep_s", 0.0))
    if sleep_s > 0.0:
        time.sleep(sleep_s)
    return {"value": payload.get("value")}


def _run_profile(payload: dict) -> dict:
    _, _, model = _model(payload)
    profile = model.sm_profile(config_from_dict(payload["config"]))
    return asdict(profile)


def _run_sweep(payload: dict) -> dict:
    _, _, model = _model(payload)
    config = config_from_dict(payload["config"])
    estimates = model.sweep(
        config,
        sizes=list(payload["sizes"]),
        shape=tuple(payload.get("shape", (1, 1, 1))),
        baseline_quirks=bool(payload.get("baseline_quirks", False)),
        max_workers=payload.get("jobs"),
    )
    return {"estimates": [asdict(e) for e in estimates]}


def _run_autotune(payload: dict) -> dict:
    from ..analysis.autotune import autotune

    spec, _, model = _model(payload)
    result = autotune(spec, payload["m"], payload["n"], payload["k"],
                      accum_f32=bool(payload.get("accum_f32", False)),
                      model=model, max_workers=payload.get("jobs"))
    return {
        "best": config_to_dict(result.best),
        "best_name": result.best.name,
        "best_describe": result.best.describe(),
        "best_tflops": result.best_tflops,
        "summary": result.summary(),
    }


def _gemm_result(run, exact: bool, opcode: str, payload: dict) -> dict:
    from .protocol import encode_payload

    out = {
        "describe": run.config.describe(),
        "instructions": run.stats.instructions_retired,
        "mma": run.stats.opcode_counts.get(opcode, 0),
        "ctas": run.stats.ctas_run,
        "exact": exact,
        "c_sha256": content_key(np.ascontiguousarray(run.c).tobytes()),
    }
    if payload.get("return_c"):
        out["c"] = encode_payload(np.ascontiguousarray(run.c))
    return out


def _run_hgemm(payload: dict) -> dict:
    from ..arch.turing import RTX2070
    from ..core import hgemm, hgemm_reference

    spec = (spec_from_dict(payload["spec"]) if payload.get("spec")
            else RTX2070)
    rng = np.random.default_rng(int(payload.get("seed", 0)))
    m, n, k = payload["m"], payload["n"], payload["k"]
    a = rng.uniform(-1, 1, (m, k)).astype(np.float16)
    b = rng.uniform(-1, 1, (k, n)).astype(np.float16)
    accumulate = payload.get("accumulate", "f16")
    run = hgemm(a, b, kernel=payload.get("kernel", "ours"), spec=spec,
                accumulate=accumulate, return_run=True,
                max_workers=payload.get("jobs"),
                engine=payload.get("engine"))
    exact = bool(np.array_equal(
        run.c, hgemm_reference(a, b, w_k=run.config.w_k,
                               accumulate=accumulate)))
    return _gemm_result(run, exact, "HMMA", payload)


def _run_igemm(payload: dict) -> dict:
    from ..arch.turing import RTX2070
    from ..core import igemm, igemm_reference

    spec = (spec_from_dict(payload["spec"]) if payload.get("spec")
            else RTX2070)
    rng = np.random.default_rng(int(payload.get("seed", 0)))
    m, n, k = payload["m"], payload["n"], payload["k"]
    a = rng.integers(-128, 128, (m, k), dtype=np.int8)
    b = rng.integers(-128, 128, (k, n), dtype=np.int8)
    run = igemm(a, b, return_run=True, spec=spec,
                max_workers=payload.get("jobs"),
                engine=payload.get("engine"))
    exact = bool(np.array_equal(run.c, igemm_reference(a, b)))
    return _gemm_result(run, exact, "IMMA", payload)


def _run_verify(payload: dict) -> dict:
    from ..arch.turing import RTX2070
    from ..core import verify_kernel

    spec = (spec_from_dict(payload["spec"]) if payload.get("spec")
            else RTX2070)
    config = config_from_dict(payload["config"])
    seeds = payload.get("seeds", 2)
    seeds = tuple(seeds) if isinstance(seeds, list) else tuple(range(seeds))
    report = verify_kernel(config, seeds=seeds, spec=spec,
                           max_workers=payload.get("jobs"),
                           engine=payload.get("engine"))
    return {"passed": report.passed, "summary": report.summary(),
            "cases": len(report.cases)}


def _run_workloads(payload: dict) -> dict:
    from ..arch.turing import RTX2070
    from ..workloads import run_suite

    spec = (spec_from_dict(payload["spec"]) if payload.get("spec")
            else RTX2070)
    result = run_suite(payload.get("suite", "smoke"), spec=spec,
                       scale=payload.get("scale", "sim"),
                       kernel=payload.get("kernel", "ours"),
                       seed=int(payload.get("seed", 0)),
                       max_workers=payload.get("jobs"),
                       engine=payload.get("engine"))
    return {
        "suite": result.suite,
        "device": result.device,
        "scale": result.scale,
        "passed": result.passed,
        "instructions": result.instructions,
        "summary": result.summary(),
        "results": [asdict(r) for r in result.results],
    }


def _run_numerics(payload: dict) -> dict:
    from ..arch.turing import RTX2070
    from ..numerics import (error_curve, format_curves, format_verdict,
                            markidis_verdict, supports)
    from ..numerics.harness import DEFAULT_KS

    spec = (spec_from_dict(payload["spec"]) if payload.get("spec")
            else RTX2070)
    ks = tuple(payload.get("ks") or DEFAULT_KS)
    common = dict(ks=ks, m=int(payload.get("m", 64)),
                  n=int(payload.get("n", 64)),
                  distribution=payload.get("distribution", "positive"),
                  seed=int(payload.get("seed", 0)),
                  kernel=payload.get("kernel", "ours"),
                  max_workers=payload.get("jobs"),
                  engine=payload.get("engine"))
    f16 = error_curve(spec, accumulate="f16", **common)
    f32 = (error_curve(spec, accumulate="f32", **common)
           if supports(spec, "f32") else None)
    verdict = markidis_verdict(f16, f32)
    curves = [f16] + ([f32] if f32 else [])
    return {
        "device": spec.name,
        "reproduced": verdict.reproduced,
        "f16_digest": f16.digest(),
        "f32_digest": f32.digest() if f32 else None,
        "summary": (format_curves(curves) + "\n"
                    + format_verdict(verdict)),
        "samples": [asdict(s) for c in curves for s in c.samples],
    }


# -------------------------------------------------------------- registry

@dataclass(frozen=True)
class JobKind:
    """One executable kind: its runner and caching policy."""

    name: str
    run: callable
    #: Completed results land in the shared serve cache (and later
    #: identical submissions are answered from it).  Off for diagnostics
    #: and for results carrying bulk arrays.
    cacheable: bool = True


JOB_KINDS = {
    "noop": JobKind("noop", _run_noop, cacheable=False),
    "profile": JobKind("profile", _run_profile),
    "sweep": JobKind("sweep", _run_sweep),
    "autotune": JobKind("autotune", _run_autotune),
    "hgemm": JobKind("hgemm", _run_hgemm),
    "igemm": JobKind("igemm", _run_igemm),
    "verify": JobKind("verify", _run_verify),
    "workloads": JobKind("workloads", _run_workloads),
    "numerics": JobKind("numerics", _run_numerics),
}


def kind_of(name: str) -> JobKind:
    try:
        return JOB_KINDS[name]
    except KeyError:
        raise ValueError(f"unknown job kind {name!r} "
                         f"(know: {sorted(JOB_KINDS)})") from None


def cacheable(kind: str, payload: dict) -> bool:
    """Whether this job's result may be served from / stored to cache."""
    if not kind_of(kind).cacheable:
        return False
    # Bulk-array results do not belong in the JSON result cache (and a
    # spooled file reference would dangle after its one-shot read).
    return not payload.get("return_c")


def job_key(kind: str, payload: dict) -> str:
    """The job's coalescing key == its ``repro.perf`` cache key.

    ``profile`` jobs reuse the exact ``sm-profile`` key their execution
    will store under, so a daemon profile and a local
    ``PerformanceModel.sm_profile`` of the same work share one identity.
    Every other kind hashes (kind, canonical payload) under the same
    ``SIM_VERSION``-salted scheme.
    """
    kind_of(kind)  # validate early: a bad kind must fail at submit time
    if kind == "profile":
        spec, options, model = _model(payload)
        config = config_from_dict(payload["config"])
        lo, hi = options.profile_iters
        return content_key(b"sm-profile", SIM_VERSION, spec, config,
                           (lo, hi), model.ctas_per_sm(config))
    return content_key(b"serve-job", SIM_VERSION, kind, payload)


def run_job(kind: str, payload: dict) -> dict:
    """Execute one job; pure in (kind, payload)."""
    return kind_of(kind).run(payload)
