"""The simulation-service daemon: socket front-end + worker pool.

One long-running process owns:

* the **listener** on a unix domain socket (one handler thread per
  connection, speaking :mod:`repro.serve.protocol` frames);
* the **job queue** (:class:`repro.serve.queue.JobQueue`) with in-flight
  coalescing;
* one **worker pool** -- executor threads that claim jobs and run them
  through :func:`repro.serve.jobs.run_job`.  Jobs that ask for process
  parallelism (``"jobs": N`` in their payload) fan out through the
  supervised :func:`repro.perf.parallel.parallel_map` exactly as an
  in-process run would, inheriting its timeout/retry/serial-fallback
  ladder;
* the **shared hot cache**: the process-wide ``repro.perf`` caches plus
  a ``serve/`` result store, so every completed job warms later tenants.

Every job executes under ``STATS.scoped()``: the response carries the
``func.*``/``sim.*``/``cache.*``/``guard.*``/``par.*`` deltas of exactly
that job (worker processes ship their deltas home through the
supervisor), and the daemon aggregates the same deltas per tenant for
``serve stats``.

Request ops (all frames are JSON dicts with an ``"op"`` field):

========== ===========================================================
``ping``     liveness + identity (pid, versions, uptime)
``submit``   admit one job: ``kind``, ``payload``, ``priority``,
             ``tenant`` -> job view (may be born ``done`` on cache hit)
``batch``    list of submissions, admitted atomically under one
             connection turn -> list of job views
``poll``     non-blocking job view by ``job_id``
``wait``     block (up to ``timeout`` s) for a job to finish
``stats``    daemon-wide counters, queue gauges, per-tenant totals
``shutdown`` stop accepting, fail queued jobs, finish running ones
========== ===========================================================

Error responses are ``{"ok": false, "error": ..., "code": ...}`` with
``code`` in ``{"queue_full", "unknown_job", "bad_request"}``.
"""

from __future__ import annotations

import os
import socket
import threading
import time

from ..perf.cache import ResultCache, SIM_VERSION, cache_dir
from ..perf.stats import STATS
from .jobs import cacheable, job_key, run_job
from .protocol import ProtocolError, recv_frame, send_frame
from .queue import JobQueue, QueueFull, UnknownJob

__all__ = ["ServeDaemon", "PROTOCOL_VERSION", "default_socket"]

#: Bump when the frame schema above changes incompatibly.
PROTOCOL_VERSION = 1

_ENV_SOCKET = "REPRO_SERVE_SOCKET"
_ENV_WORKERS = "REPRO_SERVE_WORKERS"
_ENV_QUEUE_MAX = "REPRO_SERVE_QUEUE_MAX"


def default_socket() -> str:
    """``REPRO_SERVE_SOCKET`` or ``<cache dir>/serve.sock``.

    Living under the cache directory ties the daemon instance to the
    cache it shares: point both at a scratch dir and you have a fully
    isolated service (exactly what the tests do).
    """
    override = os.environ.get(_ENV_SOCKET, "")
    if override:
        return override
    return str(cache_dir() / "serve.sock")


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    try:
        return int(raw) if raw else default
    except ValueError:
        return default


class ServeDaemon:
    """One service instance (embeddable: tests run it in-process)."""

    def __init__(self, socket_path: str = None, workers: int = None,
                 queue_max: int = None):
        self.socket_path = socket_path or default_socket()
        self.workers = workers or _env_int(_ENV_WORKERS, 2)
        self.queue = JobQueue(queue_max or _env_int(_ENV_QUEUE_MAX, 256))
        self.cache = ResultCache(subdir="serve")
        self.started_at = time.time()
        self._stop = threading.Event()
        self._stopped = threading.Event()  # full teardown (unlink) done
        self._listener = None
        self._threads: list = []
        self._conns: set = set()
        self._conn_lock = threading.Lock()
        self._tenants: dict = {}
        self._tenant_lock = threading.Lock()

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Bind the socket and spin up acceptor + worker threads."""
        path = self.socket_path
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        if os.path.exists(path):
            # A stale socket from a dead daemon blocks bind(); a live one
            # must not be stolen.
            if _ping_raw(path):
                raise RuntimeError(f"a daemon is already serving {path}")
            os.unlink(path)
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(path)
        self._listener.listen(64)
        # close() alone does not wake a thread already blocked in accept();
        # a short timeout bounds how long the acceptor can ignore _stop.
        self._listener.settimeout(0.2)
        self._threads = [threading.Thread(target=self._accept_loop,
                                          name="serve-accept", daemon=True)]
        for i in range(self.workers):
            self._threads.append(threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{i}",
                daemon=True))
        for thread in self._threads:
            thread.start()

    def serve_forever(self) -> None:
        """:meth:`start`, then block until :meth:`stop` (CLI foreground).

        Waits for *complete* teardown, not just the stop signal: a
        shutdown request arrives on a client thread, and exiting the
        process the moment the event is set would race that thread's
        socket unlink.
        """
        self.start()
        self._stop.wait()
        self._stopped.wait(timeout=60)

    def stop(self) -> None:
        """Stop accepting, fail queued jobs, let running jobs finish."""
        if self._stop.is_set():
            return
        self._stop.set()
        if self._listener is not None:
            for call in (lambda: self._listener.shutdown(socket.SHUT_RDWR),
                         self._listener.close):
                try:
                    call()
                except OSError:
                    pass
        # Queued-but-unclaimed jobs cannot run anymore; fail them loudly
        # rather than leaving their waiters hanging.
        while True:
            job = self.queue.next_job(timeout=0)
            if job is None:
                break
            self.queue.fail(job, "daemon stopping")
        self._join()
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        self._stopped.set()

    def _join(self) -> None:
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=30)

    # ------------------------------------------------------------- accepting

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:  # periodic _stop check
                continue
            except OSError:
                return  # listener closed by stop()
            with self._conn_lock:
                self._conns.add(conn)
            threading.Thread(target=self._client_loop, args=(conn,),
                             daemon=True).start()

    def _client_loop(self, conn: socket.socket) -> None:
        """One connection: frames in, frames out, until EOF or error.

        A client that disconnects mid-``wait`` only kills this thread;
        its job stays in flight, completes, and lands in the shared
        cache for whoever asks next.
        """
        try:
            while not self._stop.is_set():
                message = recv_frame(conn)
                if message is None:
                    return
                try:
                    response, then_stop = self._dispatch(message)
                except (QueueFull, UnknownJob, ValueError, KeyError,
                        TypeError) as exc:
                    response, then_stop = _error(exc), False
                send_frame(conn, response)
                if then_stop:
                    # Reply is flushed (sendall); now take the daemon down
                    # from a thread that is not in self._threads.
                    self.stop()
                    return
        except (ProtocolError, OSError):
            return
        finally:
            with self._conn_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------ dispatch

    def _dispatch(self, message: dict):
        op = message.get("op")
        if op == "ping":
            return {
                "ok": True, "pid": os.getpid(),
                "protocol": PROTOCOL_VERSION, "sim_version": SIM_VERSION,
                "uptime_s": round(time.time() - self.started_at, 3),
            }, False
        if op == "submit":
            return self._submit_one(message), False
        if op == "batch":
            jobs = [self._submit_one(sub) for sub in message.get("jobs", [])]
            return {"ok": True, "jobs": jobs}, False
        if op == "poll":
            job = self.queue.get(message["job_id"])
            return {"ok": True, **job.public()}, False
        if op == "wait":
            job = self.queue.get(message["job_id"])
            timeout = message.get("timeout")
            job.done.wait(timeout if timeout is None else float(timeout))
            return {"ok": True, **job.public()}, False
        if op == "stats":
            return self._stats(), False
        if op == "shutdown":
            return {"ok": True, "stopping": True}, True
        raise ValueError(f"unknown op {op!r}")

    def _submit_one(self, message: dict) -> dict:
        kind = message["kind"]
        payload = message.get("payload") or {}
        tenant = str(message.get("tenant") or "anon")
        key = job_key(kind, payload)
        if cacheable(kind, payload):
            hit = self.cache.get(key)
            if hit is not None:
                job = self.queue.record_cached(kind, key, payload,
                                               hit["result"], tenant=tenant)
                self._account(tenant, "cache_hits", {})
                return {"ok": True, "coalesced": False, **job.public()}
        job, outcome = self.queue.submit(
            kind, key, payload, priority=int(message.get("priority", 0)),
            tenant=tenant)
        self._account(tenant, "coalesced" if outcome == "coalesced"
                      else "jobs", {})
        return {"ok": True, "coalesced": outcome == "coalesced",
                **job.public(with_result=False)}

    def _stats(self) -> dict:
        with self._tenant_lock:
            tenants = {name: {"jobs": t["jobs"], "coalesced": t["coalesced"],
                              "cache_hits": t["cache_hits"],
                              "counters": dict(t["counters"])}
                       for name, t in self._tenants.items()}
        queue = self.queue
        return {
            "ok": True,
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self.started_at, 3),
            "workers": self.workers,
            "queue_depth": queue.depth(),
            "inflight": queue.inflight(),
            "executed": queue.executed,
            "failed": queue.failed,
            "coalesced": sum(t["coalesced"] for t in tenants.values()),
            "cache_hits": sum(t["cache_hits"] for t in tenants.values()),
            "cache_dir": str(cache_dir()),
            "cache_disk_entries": self.cache.disk_entries(),
            "tenants": tenants,
        }

    # ------------------------------------------------------------ execution

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.next_job(timeout=0.2)
            if job is None:
                continue
            self._execute(job)

    def _execute(self, job) -> None:
        from .protocol import decode_payload

        with STATS.scoped() as scope:
            try:
                result = run_job(job.kind, decode_payload(job.payload))
            except Exception as exc:  # noqa: BLE001 - job faults must not
                delta = scope.snapshot()  # kill the worker thread
                self.queue.fail(job, f"{type(exc).__name__}: {exc}", delta)
                self._account(job.tenant, None, delta)
                return
        delta = scope.snapshot()
        if cacheable(job.kind, job.payload):
            self.cache.put(job.key, {"result": result})
        self.queue.complete(job, result, delta)
        self._account(job.tenant, None, delta)

    def _account(self, tenant: str, event: str, delta: dict) -> None:
        """Fold one event / stats delta into the per-tenant aggregates."""
        with self._tenant_lock:
            totals = self._tenants.setdefault(
                tenant, {"jobs": 0, "coalesced": 0, "cache_hits": 0,
                         "counters": {}})
            if event:
                totals[event] += 1
            counters = totals["counters"]
            for name, amount in (delta.get("counters") or {}).items():
                counters[name] = counters.get(name, 0) + amount


# ----------------------------------------------------------------- helpers

def _error(exc: Exception) -> dict:
    code = "bad_request"
    if isinstance(exc, QueueFull):
        code = "queue_full"
    elif isinstance(exc, UnknownJob):
        code = "unknown_job"
    return {"ok": False, "code": code,
            "error": f"{type(exc).__name__}: {exc}"}


def _ping_raw(path: str, timeout: float = 1.0) -> bool:
    """True when a live daemon answers a ping on *path*."""
    try:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(path)
        try:
            send_frame(sock, {"op": "ping"})
            reply = recv_frame(sock)
        finally:
            sock.close()
        return bool(reply and reply.get("ok"))
    except (OSError, ProtocolError):
        return False
