"""Bottleneck attribution: which resource binds a launch, and by how much.

The paper's argument structure is "X is the bottleneck because its time
exceeds the others"; this module turns a :class:`LaunchEstimate` into that
argument explicitly -- per-pipe times, headroom percentages, and a one-line
verdict -- and aggregates a sweep into a bound-transition report (e.g.
"compute-bound until W=9216, DRAM-bound beyond").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import KernelConfig
from .perf_model import LaunchEstimate, PerformanceModel

__all__ = ["BoundBreakdown", "explain", "sweep_transitions"]


@dataclass(frozen=True)
class BoundBreakdown:
    """Per-iteration resource times of one launch, with the verdict."""

    estimate: LaunchEstimate
    compute_us: float
    dram_us: float
    l2_us: float

    @property
    def bound(self) -> str:
        return self.estimate.bound

    @property
    def headroom(self) -> float:
        """How far the runner-up is below the binding resource (0..1)."""
        times = sorted([self.compute_us, self.dram_us, self.l2_us])
        if times[-1] == 0:
            return 0.0
        return 1.0 - times[-2] / times[-1]

    def verdict(self) -> str:
        return (f"{self.bound}-bound: compute {self.compute_us:.2f}us, "
                f"DRAM {self.dram_us:.2f}us, L2 {self.l2_us:.2f}us per "
                f"wave-iteration ({self.headroom:.0%} headroom)")


def explain(estimate: LaunchEstimate) -> BoundBreakdown:
    """Attach the per-resource breakdown to an estimate."""
    return BoundBreakdown(
        estimate=estimate,
        compute_us=estimate.compute_time_per_iter * 1e6,
        dram_us=estimate.dram_time_per_iter * 1e6,
        l2_us=estimate.l2_time_per_iter * 1e6,
    )


def sweep_transitions(model: PerformanceModel, config: KernelConfig,
                      sizes, baseline_quirks: bool = False) -> list:
    """(size, bound, tflops) per size, collapsed into transition segments.

    Returns a list of ``(first_size, last_size, bound)`` runs -- the
    narrative form of a Fig. 6/7 curve.
    """
    segments = []
    for size in sizes:
        est = model.estimate(config, size, size, size,
                             baseline_quirks=baseline_quirks)
        if segments and segments[-1][2] == est.bound:
            first, _, bound = segments[-1]
            segments[-1] = (first, size, bound)
        else:
            segments.append((size, size, est.bound))
    return segments
