"""Suite-wide tuning: autotune/sweep every GEMM of a workload suite.

The per-problem tools (:func:`repro.analysis.autotune`,
:meth:`~repro.analysis.perf_model.PerformanceModel.sweep`) answer "what
is the best kernel for *this* shape".  A deep-learning workload is many
shapes at once -- this module runs those tools across every GEMM a
:class:`~repro.workloads.suite.WorkloadSuite` contains, sharing one
:class:`~repro.analysis.perf_model.PerformanceModel` so SM profiles are
measured once, and dedupes repeated shapes (a transformer layer uses
the same projection GEMM twice).
"""

from __future__ import annotations

from ..arch.turing import GpuSpec, RTX2070
from ..report import format_table
from .autotune import autotune
from .perf_model import PerformanceModel

__all__ = ["autotune_suite", "sweep_suite", "format_suite_tuning"]


def _unique_problems(suite, scale: str):
    from ..workloads.suite import get_suite

    seen, out = set(), []
    for problem in get_suite(suite).problems(scale):
        key = (problem.m, problem.n, problem.k)
        if key not in seen:
            seen.add(key)
            out.append(problem)
    return out


def autotune_suite(suite, spec: GpuSpec = RTX2070, scale: str = "full",
                   accum_f32: bool = False, finalists: int = 6,
                   model: PerformanceModel = None, max_workers=None,
                   remote: str = None) -> list:
    """Autotune every distinct GEMM shape of *suite* on one device.

    Returns ``[(GemmShape, TuneResult), ...]`` in suite order with
    duplicate (m, n, k) shapes collapsed.  One shared model caches the
    candidate SM profiles, so the marginal cost of each extra shape is
    analytic only.
    """
    pm = model or PerformanceModel(spec, remote=remote)
    return [(problem, autotune(spec, problem.m, problem.n, problem.k,
                               accum_f32=accum_f32, finalists=finalists,
                               model=pm, max_workers=max_workers))
            for problem in _unique_problems(suite, scale)]


def sweep_suite(suite, spec: GpuSpec = RTX2070, scale: str = "full",
                model: PerformanceModel = None, baseline: bool = True,
                max_workers=None, remote: str = None) -> list:
    """Performance-model sweep across *suite* (shape-aware tile choice).

    A thin wrapper over :func:`repro.workloads.suite.estimate_suite`
    that owns the shared model -- the analysis-side twin of
    :func:`autotune_suite` for when the kernel family is fixed and only
    the per-shape selection matters.
    """
    from ..workloads.suite import estimate_suite

    pm = model or PerformanceModel(spec, remote=remote)
    return estimate_suite(suite, spec, scale=scale, model=pm,
                          baseline=baseline, max_workers=max_workers)


def format_suite_tuning(rows, spec: GpuSpec, title: str = "") -> str:
    """Render :func:`autotune_suite` rows as a table."""
    table = [(problem.name, problem.describe(), result.best.describe(),
              round(result.best_tflops, 1), len(result.feasible))
             for problem, result in rows]
    return format_table(
        ["layer", "GEMM", "best configuration", "TFLOPS", "feasible"],
        table, title=title or f"Suite autotuning on {spec.name}")
