"""Analytical models: roofline, occupancy, and the device-level wave model."""

from .autotune import Candidate, TuneResult, autotune, candidate_space
from .bounds import BoundBreakdown, explain, sweep_transitions
from .occupancy import OccupancyReport, occupancy, table7
from .perf_model import (
    LaunchEstimate,
    PerfOptions,
    PerformanceModel,
    SmProfile,
)
from .roofline import Roofline, RooflinePoint
from .suite import autotune_suite, format_suite_tuning, sweep_suite

__all__ = [
    "Candidate",
    "TuneResult",
    "autotune",
    "candidate_space",
    "BoundBreakdown",
    "explain",
    "sweep_transitions",
    "OccupancyReport",
    "occupancy",
    "table7",
    "LaunchEstimate",
    "PerfOptions",
    "PerformanceModel",
    "SmProfile",
    "Roofline",
    "RooflinePoint",
    "autotune_suite",
    "format_suite_tuning",
    "sweep_suite",
]
