"""Occupancy analysis: CTAs/SM and warps/SM per kernel (paper Table VII).

Turing SM resources: 64K 32-bit registers, 64 KB shared memory, 32 resident
warps, 16 resident CTAs.  The winner of each ``min()`` is reported so the
Table VII comparison ("ours trades occupancy for blocking size") is
explainable, not just a number.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.turing import GpuSpec
from ..core.config import KernelConfig

__all__ = ["OccupancyReport", "occupancy", "table7"]


@dataclass(frozen=True)
class OccupancyReport:
    """Resource usage and resulting occupancy of one kernel on one SM."""

    config_name: str
    regs_per_thread: int
    smem_per_cta: int
    threads_per_cta: int
    ctas_per_sm: int
    limiting_resource: str
    limits: dict

    @property
    def warps_per_sm(self) -> int:
        return self.ctas_per_sm * (self.threads_per_cta // 32)

    @property
    def active_threads(self) -> int:
        return self.ctas_per_sm * self.threads_per_cta


def occupancy(config: KernelConfig, spec: GpuSpec,
              regs_per_thread: int = None) -> OccupancyReport:
    """Compute the occupancy of *config* on *spec*.

    ``regs_per_thread`` overrides the config's analytic estimate (e.g. to
    use the generated kernel's exact register count).
    """
    regs = regs_per_thread if regs_per_thread is not None else config.regs_per_thread
    limits = spec.occupancy_limits(
        regs_per_thread=regs,
        smem_per_cta=config.smem_bytes,
        threads_per_cta=config.threads_per_cta,
    )
    ctas = min(limits.values())
    limiting = min(limits, key=lambda k: limits[k])
    return OccupancyReport(
        config_name=config.name or "custom",
        regs_per_thread=regs,
        smem_per_cta=config.smem_bytes,
        threads_per_cta=config.threads_per_cta,
        ctas_per_sm=ctas,
        limiting_resource=limiting,
        limits=dict(limits),
    )


def table7(ours_config: KernelConfig, baseline_config: KernelConfig,
           spec: GpuSpec) -> list:
    """Regenerate Table VII: per-kernel blocking, shared memory, occupancy."""
    rows = []
    for config in (ours_config, baseline_config):
        report = occupancy(config, spec)
        rows.append({
            "kernel": config.name,
            "cta_tile": config.cta_tile,
            "warp_tile": config.warp_tile,
            "smem_per_cta_kb": config.smem_bytes / 1024,
            "ctas_per_sm": report.ctas_per_sm,
            "warps_per_sm": report.warps_per_sm,
            "limited_by": report.limiting_resource,
        })
    return rows
