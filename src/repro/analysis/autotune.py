"""Autotuner: the paper's last future-work item, "automatic tools to
simplify programming while achieving near to peak performance".

Two stages, mirroring how the paper's authors worked by hand:

1. **Analytical pruning** -- enumerate the feasible configuration space
   (CTA tiles, warp tiles, b_k, layout) and rank it with the closed-form
   pipe model (Eqs. 3-5) plus the roofline: exactly the paper's Table VI
   reasoning, in a loop.
2. **Simulation ranking** -- run the top candidates' generated kernels
   through the cycle-level simulator + wave model and pick the winner for
   the requested problem shape.

Candidates the builder cannot realise (register pressure, odd pipelines)
are skipped with their reason recorded -- infeasibility is data here, as
it is in the paper's Section VI-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.turing import GpuSpec
from ..core.blocking import min_hmma_between_sts, pipe_cycles
from ..core.builder import RegisterPlan
from ..core.config import ConfigError, KernelConfig
from .perf_model import PerformanceModel

__all__ = ["Candidate", "TuneResult", "candidate_space", "autotune"]


@dataclass
class Candidate:
    """One configuration's journey through the tuner."""

    config: KernelConfig
    analytic_score: float = 0.0      # predicted TFLOPS from stage 1
    simulated_tflops: float = None   # stage 2, for finalists only
    rejected: str = ""               # infeasibility reason, if any


@dataclass
class TuneResult:
    """Outcome of one autotuning run."""

    best: KernelConfig
    best_tflops: float
    candidates: list = field(default_factory=list)

    @property
    def feasible(self) -> list:
        return [c for c in self.candidates if not c.rejected]

    def summary(self) -> str:
        lines = [f"best: {self.best.describe()} "
                 f"-> {self.best_tflops:.1f} TFLOPS"]
        for cand in sorted(self.candidates,
                           key=lambda c: -(c.simulated_tflops
                                           or c.analytic_score)):
            tag = (f"{cand.simulated_tflops:.1f} TFLOPS (simulated)"
                   if cand.simulated_tflops is not None
                   else f"{cand.analytic_score:.1f} TFLOPS (analytic)"
                   if not cand.rejected else f"rejected: {cand.rejected}")
            lines.append(f"  {cand.config.name:<18s} {tag}")
        return "\n".join(lines)


def candidate_space(spec: GpuSpec, accum_f32: bool = False) -> list:
    """Enumerate feasible kernel configurations for *spec*.

    The warp k-step is the device generation's native HMMA k (8 on
    Volta/Turing, 16 on Ampere); the swizzled layout is only proposed
    where a k-slice is one 16-byte chunk (the swizzle's invariant).
    """
    arch = spec.arch
    sts = min_hmma_between_sts(spec)
    w_k = arch.hmma_k
    out = []
    for b_m in (64, 128, 256):
        for b_n in (64, 128, 256):
            for b_k in (32, 64):
                for w_m, w_n in ((32, 32), (64, 64), (128, 64)):
                    if b_m % w_m or b_n % w_n:
                        continue
                    slices = b_k // w_k
                    if slices < 2 or slices % 2:
                        continue
                    layouts = [dict(smem_pad_halves=8)]
                    if b_k == 64 and w_k * 2 == 16:
                        layouts.append(dict(smem_pad_halves=0,
                                            smem_swizzle=True))
                    for layout in layouts:
                        name = (f"{b_m}x{b_n}x{b_k}/{w_m}x{w_n}"
                                + ("s" if layout.get("smem_swizzle") else ""))
                        try:
                            cfg = KernelConfig(
                                b_m=b_m, b_n=b_n, b_k=b_k,
                                w_m=w_m, w_n=w_n, w_k=w_k,
                                sts_interleave=sts, accum_f32=accum_f32,
                                name=name, **layout,
                            )
                        except ConfigError:
                            continue
                        out.append(cfg)
    return out


def _check_feasible(config: KernelConfig, spec: GpuSpec) -> str:
    """Empty string if buildable on *spec*, else the rejection reason."""
    try:
        config.validate_against(spec)
        RegisterPlan.for_config(config, config.threads_per_cta, spec.arch)
    except ConfigError as exc:
        return str(exc).split(" (")[0]
    return ""


def _analytic_tflops(config: KernelConfig, spec: GpuSpec) -> float:
    """Stage-1 score: min(pipe-limited, optimistic-DRAM) TFLOPS.

    The DRAM bound is doubled relative to the raw CTA-intensity roofline:
    concurrent CTAs in a wave share operand tiles through L2, so the raw
    roofline is too pessimistic and would prune reuse-friendly finalists
    that stage 2 should judge.
    """
    cycles = pipe_cycles(config, spec)
    flops_per_iter = 2 * config.b_m * config.b_n * config.b_k
    bottleneck = max(cycles.hmma, cycles.memory_io)
    per_sm = flops_per_iter / bottleneck * spec.clock_ghz / 1e3
    compute = per_sm * spec.num_sms
    dram_roof = 2 * config.compute_intensity * spec.dram_measured_gbps / 1e3
    return min(compute, dram_roof)


def autotune(spec: GpuSpec, m: int, n: int, k: int,
             accum_f32: bool = False, finalists: int = 6,
             model: PerformanceModel = None, max_workers=None,
             remote: str = None) -> TuneResult:
    """Pick the best kernel configuration for one problem on one device.

    Pass a shared :class:`PerformanceModel` to reuse its cached SM
    profiles across autotuning calls.  ``max_workers`` (semantics of
    :func:`repro.perf.parallel.parallel_map`) profiles the stage-2
    finalists across worker processes -- the dominant cost of a cold run.
    ``remote`` (ignored when *model* is given) points the model's profile
    measurements at a ``repro serve`` daemon instead.
    """
    pm = model or PerformanceModel(spec, remote=remote)
    candidates = [Candidate(config=c)
                  for c in candidate_space(spec, accum_f32=accum_f32)]

    for cand in candidates:
        cand.rejected = _check_feasible(cand.config, spec)
        if not cand.rejected and (m % cand.config.b_m or n % cand.config.b_n
                                  or k % cand.config.b_k):
            cand.rejected = "tile does not divide the problem"
        if not cand.rejected:
            cand.analytic_score = _analytic_tflops(cand.config, spec)

    ranked = sorted((c for c in candidates if not c.rejected),
                    key=lambda c: -c.analytic_score)
    if not ranked:
        raise ValueError(f"no feasible configuration for {m}x{n}x{k}")

    if max_workers is not None and max_workers != 1:
        try:
            pm.profile_many([c.config for c in ranked[:finalists]],
                            max_workers=max_workers)
        except Exception:
            # A finalist the builder cannot realise fails the whole batch;
            # fall through and let the serial loop record it per candidate.
            pass

    best, best_tflops = None, -1.0
    for cand in ranked[:finalists]:
        try:
            est = pm.estimate(cand.config, m, n, k)
        except Exception as exc:  # builder surprises count as rejections
            cand.rejected = str(exc)
            continue
        cand.simulated_tflops = est.tflops
        if est.tflops > best_tflops:
            best, best_tflops = cand.config, est.tflops

    if best is None:
        raise ValueError("all finalists failed to build")
    return TuneResult(best=best, best_tflops=best_tflops,
                      candidates=candidates)
