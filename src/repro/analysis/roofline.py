"""Global-memory roofline model (paper Fig. 3).

Plots attainable TFLOPS against computation intensity (FLOP/byte) for the
Tensor Core and FP16-unit peaks against the *measured* DRAM bandwidth
(Table II).  The paper's reading: with FP16 units a 128x128 CTA tile
(intensity 64) already clears the roof, but Tensor Cores are 4x faster, so
the same blocking leaves HGEMM memory-bound -- the motivation for the
256x256 tile (intensity 128).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.turing import GpuSpec
from ..core.config import KernelConfig

__all__ = ["RooflinePoint", "Roofline"]


@dataclass(frozen=True)
class RooflinePoint:
    """One evaluated point on the roofline."""

    intensity: float          # FLOP / DRAM byte
    tensor_tflops: float      # attainable with Tensor Cores
    fp16_tflops: float        # attainable with FP16 units
    memory_bound_tensor: bool
    memory_bound_fp16: bool


@dataclass(frozen=True)
class Roofline:
    """Roofline of one device, built from measured DRAM bandwidth."""

    spec: GpuSpec

    @property
    def dram_gbps(self) -> float:
        return self.spec.dram_measured_gbps

    def memory_roof_tflops(self, intensity: float) -> float:
        """Bandwidth-limited TFLOPS at *intensity* FLOP/byte."""
        if intensity < 0:
            raise ValueError(f"intensity must be non-negative, got {intensity}")
        return self.dram_gbps * intensity / 1e3

    def attainable(self, intensity: float, use_tensor_cores: bool = True) -> float:
        peak = (self.spec.tensor_peak_tflops if use_tensor_cores
                else self.spec.fp16_peak_tflops)
        return min(peak, self.memory_roof_tflops(intensity))

    def ridge_intensity(self, use_tensor_cores: bool = True) -> float:
        """Intensity where the compute roof meets the memory roof."""
        peak = (self.spec.tensor_peak_tflops if use_tensor_cores
                else self.spec.fp16_peak_tflops)
        return peak * 1e3 / self.dram_gbps

    def evaluate(self, intensity: float) -> RooflinePoint:
        tensor = self.attainable(intensity, use_tensor_cores=True)
        fp16 = self.attainable(intensity, use_tensor_cores=False)
        return RooflinePoint(
            intensity=intensity,
            tensor_tflops=tensor,
            fp16_tflops=fp16,
            memory_bound_tensor=tensor < self.spec.tensor_peak_tflops,
            memory_bound_fp16=fp16 < self.spec.fp16_peak_tflops,
        )

    def evaluate_blocking(self, config: KernelConfig) -> RooflinePoint:
        """Roofline position of a CTA blocking (intensity b_m*b_n/(b_m+b_n))."""
        return self.evaluate(config.compute_intensity)

    def series(self, intensities) -> list:
        """Evaluate a sweep (the Fig. 3 curves)."""
        return [self.evaluate(x) for x in intensities]
