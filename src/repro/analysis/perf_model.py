"""Device-level performance model: per-SM cycle profiles + memory ceilings.

The paper's evaluation (Figs. 4-9) runs kernels on a whole GPU.  Simulating
4096 CTAs cycle-by-cycle is pointless -- every full wave is statistically
identical -- so the model composes:

1. **Per-SM compute profile** (measured, not modelled): the timing simulator
   runs one SM with the kernel's actual occupancy (CTAs/SM co-resident) at
   two k depths; the difference isolates the marginal cycles per k-iteration
   and the fixed prologue/epilogue cost.  Bank conflicts, STS interleave
   quality, prefetch bubbles -- everything the paper tunes -- lands in this
   number.

2. **Wave model**: the grid executes in waves of ``num_sms * ctas_per_sm``
   concurrent CTAs.  Per k-iteration each wave moves a predictable number of
   bytes; the wave's wall time is the max of the compute profile, the L2
   service time, and the DRAM service time (a roofline across three
   ceilings, paper Section VI-A).

3. **L2 reuse**: concurrent CTAs that share an A-tile row or B-tile column
   can hit in L2 instead of DRAM.  The launch order determines the window's
   shape (row-major vs supertile-swizzled); CTASs drift out of lockstep over
   long k, eroding the sharing (``drift``).

4. **Baseline quirk**: cuBLAS 10.1 on the RTX 2070 shows a sharp drop at
   n >= 12032 (paper Fig. 6: "we suspect that the L2 cache blocking
   strategy of cuBLAS fails at that size").  We reproduce it as an explicit,
   documented quirk -- when one C tile-row exceeds ~72% of L2, the
   baseline's inter-CTA reuse collapses.  The paper's T4 data (Fig. 7)
   shows no cliff, so the quirk is keyed to the device.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..arch.turing import GpuSpec
from ..core.builder import HgemmProblem, build_hgemm
from ..core.config import KernelConfig
from ..sim.memory import GlobalMemory
from ..sim.timing import TimingSimulator

__all__ = ["PerfOptions", "SmProfile", "LaunchEstimate", "PerformanceModel"]


@dataclass(frozen=True)
class PerfOptions:
    """Tunables of the wave/L2 model (defaults documented in DESIGN.md)."""

    #: Fraction of *potential* inter-CTA tile sharing served by L2 when
    #: CTAs are roughly in lockstep.
    l2_reuse_eta: float = 0.8
    #: Lockstep erosion: reuse efficiency loses up to `drift_max` as the
    #: iteration count approaches `drift_span` (long-k runs drift apart).
    drift_span: float = 4096.0
    drift_max: float = 0.3
    #: cuBLAS-10.1 quirk: reuse collapses when n*b_m*2 > fraction * L2.
    cliff_l2_fraction: float = 0.72
    cliff_devices: tuple = ("RTX2070",)
    #: Effective measurement k-depths for the SM profile.
    profile_iters: tuple = (2, 6)


@dataclass(frozen=True)
class SmProfile:
    """Measured per-SM cost of one kernel configuration."""

    marginal_cycles: float   # wall cycles per k-iteration (all resident CTAs)
    fixed_cycles: float      # prologue + pipeline fill + epilogue
    ctas_per_sm: int


@dataclass
class LaunchEstimate:
    """Predicted execution of one HGEMM launch on the whole device."""

    m: int
    n: int
    k: int
    seconds: float
    tflops: float
    bound: str                 # "compute", "dram" or "l2"
    waves: int
    concurrent_ctas: int
    wave_rows: int
    wave_cols: int
    dram_bytes_per_iter: float
    l2_bytes_per_iter: float
    compute_time_per_iter: float
    dram_time_per_iter: float
    l2_time_per_iter: float
    cliff_active: bool = False


class PerformanceModel:
    """Estimates whole-device HGEMM performance for one GPU."""

    def __init__(self, spec: GpuSpec, options: PerfOptions = None):
        self.spec = spec
        self.options = options or PerfOptions()
        self._profiles: dict = {}

    # --------------------------------------------------------- SM profiling

    def sm_profile(self, config: KernelConfig) -> SmProfile:
        """Measure (and cache) the per-SM cycle profile of *config*."""
        key = config
        if key in self._profiles:
            return self._profiles[key]
        ctas_per_sm = self.ctas_per_sm(config)
        lo, hi = self.options.profile_iters
        cycles = {}
        for iters in (lo, hi):
            problem = HgemmProblem(
                m=config.b_m, n=config.b_n, k=iters * config.b_k,
                a_addr=0, b_addr=4 << 20, c_addr=8 << 20,
            )
            program = build_hgemm(config, problem, self.spec)
            memory = GlobalMemory(16 << 20)
            sim = TimingSimulator(self.spec, bandwidth_share=1.0)
            cycles[iters] = sim.run(program, memory, num_ctas=ctas_per_sm).cycles
        marginal = (cycles[hi] - cycles[lo]) / (hi - lo)
        fixed = max(0.0, cycles[lo] - lo * marginal)
        profile = SmProfile(marginal_cycles=marginal, fixed_cycles=fixed,
                            ctas_per_sm=ctas_per_sm)
        self._profiles[key] = profile
        return profile

    def ctas_per_sm(self, config: KernelConfig) -> int:
        occ = self.spec.ctas_per_sm(
            regs_per_thread=config.regs_per_thread,
            smem_per_cta=config.smem_bytes,
            threads_per_cta=config.threads_per_cta,
        )
        if occ < 1:
            raise ValueError(
                f"config {config.name!r} cannot launch on {self.spec.name}"
            )
        return occ

    # ---------------------------------------------------------- wave model

    @staticmethod
    def wave_window(config: KernelConfig, grid_x: int, grid_y: int,
                    concurrent: int) -> tuple:
        """(rows, cols) of distinct C tiles covered by one wave.

        Row-major order fills columns first; the supertile order walks
        ``supertile_width`` columns down all rows before moving right,
        keeping the window roughly square (L2-friendlier).
        """
        total = grid_x * grid_y
        concurrent = min(concurrent, total)
        if concurrent == 0:
            return (0, 0)
        if config.cta_order == "supertile":
            width = min(config.supertile_width, grid_x)
            rows = min(grid_y, math.ceil(concurrent / width))
            cols = min(grid_x, max(width, math.ceil(concurrent / grid_y)))
        else:
            cols = min(grid_x, concurrent)
            rows = min(grid_y, math.ceil(concurrent / grid_x))
        return rows, cols

    def _reuse_efficiency(self, iters: int) -> float:
        drift = min(self.options.drift_max,
                    self.options.drift_max * iters / self.options.drift_span)
        return self.options.l2_reuse_eta * (1.0 - drift)

    def _cliff_active(self, config: KernelConfig, n: int,
                      baseline_quirks: bool) -> bool:
        if not baseline_quirks:
            return False
        if self.spec.name not in self.options.cliff_devices:
            return False
        c_row_bytes = n * config.b_m * 2
        return c_row_bytes > self.options.cliff_l2_fraction * self.spec.l2_bytes

    # ----------------------------------------------------------- estimates

    def estimate(self, config: KernelConfig, m: int, n: int, k: int,
                 baseline_quirks: bool = False) -> LaunchEstimate:
        """Predict the launch: seconds and TFLOPS for ``C[m,n] = A @ B``.

        ``baseline_quirks`` enables the cuBLAS-10.1 behavioural quirks
        (the RTX 2070 L2-blocking cliff); use it only for the baseline.
        """
        spec, opt = self.spec, self.options
        profile = self.sm_profile(config)
        grid_x, grid_y = config.grid_dim(m, n)
        total_ctas = grid_x * grid_y
        concurrent = spec.num_sms * profile.ctas_per_sm
        iters = k // config.b_k

        cliff = self._cliff_active(config, n, baseline_quirks)
        eta = 0.0 if cliff else self._reuse_efficiency(iters)

        clock = spec.clock_ghz * 1e9
        compute_iter = profile.marginal_cycles / clock
        fixed_time = profile.fixed_cycles / clock

        tile_bytes = ((config.b_m + config.b_n) * config.b_k
                      * config.ab_element_bytes)
        epilogue_bytes_per_cta = config.b_m * config.b_n * config.c_element_bytes

        def wave_time(wave_ctas: int) -> tuple:
            rows, cols = self.wave_window(config, grid_x, grid_y, wave_ctas)
            l2_bytes = wave_ctas * tile_bytes
            shared_bytes = (rows * config.b_m + cols * config.b_n) * config.b_k * 2
            dram_bytes = l2_bytes - eta * max(0.0, l2_bytes - shared_bytes)
            # C is written once per CTA; spread its DRAM traffic over k.
            dram_bytes += wave_ctas * epilogue_bytes_per_cta / max(1, iters)
            dram_t = dram_bytes / (spec.dram_measured_gbps * 1e9)
            l2_t = l2_bytes / (spec.l2_measured_gbps * 1e9)
            t = max(compute_iter, dram_t, l2_t)
            if t == compute_iter:
                bound = "compute"
            elif t == dram_t:
                bound = "dram"
            else:
                bound = "l2"
            return t, bound, rows, cols, dram_bytes, l2_bytes, dram_t, l2_t

        full_waves, remainder = divmod(total_ctas, concurrent)
        seconds = spec.kernel_launch_overhead_us * 1e-6
        t_full = bound = rows = cols = None
        dram_b = l2_b = dram_t = l2_t = 0.0
        if full_waves:
            t_full, bound, rows, cols, dram_b, l2_b, dram_t, l2_t = wave_time(concurrent)
            seconds += full_waves * (fixed_time + iters * t_full)
        if remainder:
            t_part, bound_p, rows_p, cols_p, dram_bp, l2_bp, dram_tp, l2_tp = wave_time(remainder)
            seconds += fixed_time + iters * t_part
            if t_full is None:
                bound, rows, cols = bound_p, rows_p, cols_p
                dram_b, l2_b, dram_t, l2_t = dram_bp, l2_bp, dram_tp, l2_tp
                t_full = t_part

        flops = 2 * m * n * k
        return LaunchEstimate(
            m=m, n=n, k=k,
            seconds=seconds,
            tflops=flops / seconds / 1e12,
            bound=bound,
            waves=full_waves + (1 if remainder else 0),
            concurrent_ctas=concurrent,
            wave_rows=rows, wave_cols=cols,
            dram_bytes_per_iter=dram_b,
            l2_bytes_per_iter=l2_b,
            compute_time_per_iter=compute_iter,
            dram_time_per_iter=dram_t,
            l2_time_per_iter=l2_t,
            cliff_active=cliff,
        )

    def sweep(self, config: KernelConfig, sizes, shape=(1, 1, 1),
              baseline_quirks: bool = False) -> list:
        """Estimate a size sweep; ``shape`` scales (m, n, k) from W (the
        paper's [aW x bW x cW] rectangular series)."""
        out = []
        for w in sizes:
            m, n, k = (s * w for s in shape)
            out.append(self.estimate(config, m, n, k,
                                     baseline_quirks=baseline_quirks))
        return out
