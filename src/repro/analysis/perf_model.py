"""Device-level performance model: per-SM cycle profiles + memory ceilings.

The paper's evaluation (Figs. 4-9) runs kernels on a whole GPU.  Simulating
4096 CTAs cycle-by-cycle is pointless -- every full wave is statistically
identical -- so the model composes:

1. **Per-SM compute profile** (measured, not modelled): the timing simulator
   runs one SM with the kernel's actual occupancy (CTAs/SM co-resident) at
   two k depths; the difference isolates the marginal cycles per k-iteration
   and the fixed prologue/epilogue cost.  Bank conflicts, STS interleave
   quality, prefetch bubbles -- everything the paper tunes -- lands in this
   number.

2. **Wave model**: the grid executes in waves of ``num_sms * ctas_per_sm``
   concurrent CTAs.  Per k-iteration each wave moves a predictable number of
   bytes; the wave's wall time is the max of the compute profile, the L2
   service time, and the DRAM service time (a roofline across three
   ceilings, paper Section VI-A).

3. **L2 reuse**: concurrent CTAs that share an A-tile row or B-tile column
   can hit in L2 instead of DRAM.  The launch order determines the window's
   shape (row-major vs supertile-swizzled); CTAs drift out of lockstep over
   long k, eroding the sharing (``drift``).

4. **Baseline quirk**: cuBLAS 10.1 on the RTX 2070 shows a sharp drop at
   n >= 12032 (paper Fig. 6: "we suspect that the L2 cache blocking
   strategy of cuBLAS fails at that size").  We reproduce it as an explicit,
   documented quirk -- when one C tile-row exceeds ~72% of L2, the
   baseline's inter-CTA reuse collapses.  The paper's T4 data (Fig. 7)
   shows no cliff, so the quirk is keyed to the device.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass

from ..arch.turing import GpuSpec
from ..core.builder import HgemmProblem, build_hgemm
from ..core.config import KernelConfig, adapt_for_arch
from ..isa.encoding import encode_program
from ..perf.cache import PROFILE_CACHE, SIM_VERSION, content_key
from ..perf.parallel import parallel_map
from ..sim.memory import GlobalMemory
from ..sim.timing import TimingSimulator

__all__ = ["PerfOptions", "SmProfile", "LaunchEstimate", "PerformanceModel"]

#: Global-memory footprint used for profile runs (fresh, zero-filled).
_PROFILE_MEM_BYTES = 16 << 20


@dataclass(frozen=True)
class PerfOptions:
    """Tunables of the wave/L2 model (defaults documented in DESIGN.md)."""

    #: Fraction of *potential* inter-CTA tile sharing served by L2 when
    #: CTAs are roughly in lockstep.
    l2_reuse_eta: float = 0.8
    #: Lockstep erosion: reuse efficiency loses up to `drift_max` as the
    #: iteration count approaches `drift_span` (long-k runs drift apart).
    drift_span: float = 4096.0
    drift_max: float = 0.3
    #: cuBLAS-10.1 quirk: reuse collapses when n*b_m*2 > fraction * L2.
    cliff_l2_fraction: float = 0.72
    cliff_devices: tuple = ("RTX2070",)
    #: Effective measurement k-depths for the SM profile.
    profile_iters: tuple = (2, 6)
    #: Timing engine driving the SM-profile runs ("event"/"reference");
    #: None defers to ``REPRO_TIMING_ENGINE``.  The engines are bit-identical
    #: (pinned by the differential suite), so this deliberately does not
    #: enter any profile-cache key.
    timing_engine: str = None
    #: Functional engine for launches run on the model consumer's behalf
    #: ("lockstep"/"gridlock"/"predecoded"/"reference"); None defers to
    #: ``REPRO_FUNC_ENGINE``.  The CLI plumbs ``--func-engine`` here and
    #: into :func:`repro.core.hgemm`/``igemm``/``verify_kernel``.  Engines
    #: are bit-identical, so it never enters a cache key either.
    func_engine: str = None
    #: Divergence-watchdog mode for the SM-profile runs ("off"/"sample"/
    #: "full"); None defers to ``REPRO_GUARD``.  See
    #: :mod:`repro.robust.guard`.  The guard never changes reported numbers
    #: (a divergence heals to the reference result), so it stays out of the
    #: cache key too.
    guard: str = None


@dataclass(frozen=True)
class SmProfile:
    """Measured per-SM cost of one kernel configuration."""

    marginal_cycles: float   # wall cycles per k-iteration (all resident CTAs)
    fixed_cycles: float      # prologue + pipeline fill + epilogue
    ctas_per_sm: int


@dataclass
class LaunchEstimate:
    """Predicted execution of one HGEMM launch on the whole device."""

    m: int
    n: int
    k: int
    seconds: float
    tflops: float
    bound: str                 # "compute", "dram" or "l2"
    waves: int
    concurrent_ctas: int
    wave_rows: int
    wave_cols: int
    dram_bytes_per_iter: float
    l2_bytes_per_iter: float
    compute_time_per_iter: float
    dram_time_per_iter: float
    l2_time_per_iter: float
    cliff_active: bool = False


class PerformanceModel:
    """Estimates whole-device HGEMM performance for one GPU.

    ``remote`` names a ``repro serve`` daemon socket: SM-profile
    measurements -- the only expensive primitive under :meth:`sweep` and
    the autotuner -- are then submitted as ``profile`` jobs instead of
    simulated locally, so any number of clients profiling the same
    (spec, config) coalesce into one simulation on the daemon's worker
    fleet.  If the daemon is unreachable the model logs one warning and
    degrades to in-process execution for the rest of its life.
    """

    def __init__(self, spec: GpuSpec, options: PerfOptions = None,
                 remote: str = None):
        self.spec = spec
        self.options = options or PerfOptions()
        self.remote = remote
        self._profiles: dict = {}

    # --------------------------------------------------------- SM profiling

    def sm_profile(self, config: KernelConfig) -> SmProfile:
        """Measure (and cache) the per-SM cycle profile of *config*.

        Three cache layers, cheapest first: the per-instance ``_profiles``
        dict (preserves object identity within one model), then the shared
        :data:`~repro.perf.cache.PROFILE_CACHE` keyed on the *profile*
        (spec + config + iters -- a hit skips even program construction),
        then a run-level entry keyed on the encoded program bytes.  The
        simulator is deterministic, so every layer returns exactly the
        numbers a fresh simulation would produce.

        With ``remote`` set, a cold profile is delegated to the daemon
        (whose job key is *this same* ``profile_key``) before falling
        back to local simulation.

        The config is first adapted to the device's Tensor Core
        generation (:func:`adapt_for_arch`); on Turing this is the
        identity, so existing cache keys are untouched.
        """
        config = adapt_for_arch(config, self.spec.arch)
        key = config
        if key in self._profiles:
            return self._profiles[key]
        ctas_per_sm = self.ctas_per_sm(config)
        lo, hi = self.options.profile_iters
        profile_key = content_key(b"sm-profile", SIM_VERSION, self.spec,
                                  config, (lo, hi), ctas_per_sm)
        cached = PROFILE_CACHE.get(profile_key)
        if cached is not None:
            profile = SmProfile(**cached)
            self._profiles[key] = profile
            return profile
        if self.remote is not None:
            remote_profile = self._remote_profiles([config])
            if remote_profile is not None:
                profile = SmProfile(**remote_profile[0])
                PROFILE_CACHE.put(profile_key, remote_profile[0])
                self._profiles[key] = profile
                return profile
        cycles = {iters: self._profile_leg_cycles(config, iters, ctas_per_sm)
                  for iters in (lo, hi)}
        marginal = (cycles[hi] - cycles[lo]) / (hi - lo)
        fixed = max(0.0, cycles[lo] - lo * marginal)
        profile = SmProfile(marginal_cycles=marginal, fixed_cycles=fixed,
                            ctas_per_sm=ctas_per_sm)
        PROFILE_CACHE.put(profile_key, asdict(profile))
        self._profiles[key] = profile
        return profile

    def _remote_profiles(self, configs):
        """Profile dicts for *configs* via the daemon, or None to degrade.

        One batch submission: duplicates (ours + another client's
        concurrent autotune, say) coalesce daemon-side.  Daemon-reported
        job failures propagate as exceptions (the configs would fail the
        same way locally); only an *unreachable* daemon degrades.
        """
        from ..serve.client import JobFailed, ServeClient, ServeUnavailable
        from ..serve.jobs import config_to_dict, options_to_dict, spec_to_dict

        spec_d = spec_to_dict(self.spec)
        options_d = options_to_dict(self.options)
        try:
            with ServeClient(self.remote) as client:
                views = client.batch_submit([
                    {"kind": "profile",
                     "payload": {"spec": spec_d, "options": options_d,
                                 "config": config_to_dict(config)}}
                    for config in configs])
                out = []
                for view in views:
                    if view["state"] not in ("done", "failed"):
                        view = client.wait(view["job_id"])
                    if view["state"] == "failed":
                        raise JobFailed(view.get("error", "profile failed"))
                    out.append(view["result"])
                return out
        except ServeUnavailable as exc:
            import sys

            print(f"warning: {exc}; continuing in-process", file=sys.stderr)
            self.remote = None
            return None

    def _profile_leg_cycles(self, config: KernelConfig, iters: int,
                            ctas_per_sm: int) -> int:
        """Simulated cycles of one profile leg, via the run-level cache.

        The key hashes the encoded program image itself, so any change to
        the kernel builder or the ISA encoding naturally invalidates it.
        """
        problem = HgemmProblem(
            m=config.b_m, n=config.b_n, k=iters * config.b_k,
            a_addr=0, b_addr=4 << 20, c_addr=8 << 20,
        )
        program = build_hgemm(config, problem, self.spec)
        run_key = content_key(b"timing-run", SIM_VERSION,
                              encode_program(program), self.spec,
                              ctas_per_sm, _PROFILE_MEM_BYTES, 1.0)
        cached = PROFILE_CACHE.get(run_key)
        if cached is not None:
            return cached["cycles"]
        sim = TimingSimulator(self.spec, bandwidth_share=1.0,
                              engine=self.options.timing_engine,
                              guard=self.options.guard)
        result = sim.run(program, GlobalMemory(_PROFILE_MEM_BYTES),
                         num_ctas=ctas_per_sm)
        PROFILE_CACHE.put(run_key, {"cycles": result.cycles})
        return result.cycles

    def profile_many(self, configs, max_workers=None) -> list:
        """SM profiles for several configs, optionally across processes.

        ``max_workers`` follows :func:`repro.perf.parallel.parallel_map`
        semantics (None/1 serial, 0 auto, n capped).  Worker processes
        return their profiles directly (and also populate the shared disk
        cache when it is enabled), so parallelism never re-simulates in the
        parent and works even under ``REPRO_NO_CACHE=1``.
        """
        configs = [adapt_for_arch(c, self.spec.arch) for c in configs]
        todo = [c for c in configs if c not in self._profiles]
        if todo and self.remote is not None:
            # One batch to the daemon: its workers parallelise, duplicates
            # (here or from other tenants) coalesce.  sm_profile() below
            # still resolves each config through its own cache ladder, so
            # a degraded daemon just leaves todo for the local paths.
            remote = self._remote_profiles(todo)
            if remote is not None:
                for config, profile in zip(todo, remote):
                    self._profiles[config] = SmProfile(**profile)
                todo = []
        if len(todo) > 1 and max_workers is not None and max_workers != 1:
            profiles = parallel_map(
                _profile_worker,
                [(self.spec, self.options, c) for c in todo],
                max_workers=max_workers,
            )
            for config, profile in zip(todo, profiles):
                self._profiles[config] = SmProfile(**profile)
        return [self.sm_profile(c) for c in configs]

    def ctas_per_sm(self, config: KernelConfig) -> int:
        occ = self.spec.ctas_per_sm(
            regs_per_thread=config.regs_per_thread,
            smem_per_cta=config.smem_bytes,
            threads_per_cta=config.threads_per_cta,
        )
        if occ < 1:
            raise ValueError(
                f"config {config.name!r} cannot launch on {self.spec.name}"
            )
        return occ

    # ---------------------------------------------------------- wave model

    @staticmethod
    def wave_window(config: KernelConfig, grid_x: int, grid_y: int,
                    concurrent: int) -> tuple:
        """(rows, cols) of distinct C tiles covered by one wave.

        Row-major order fills columns first; the supertile order walks
        ``supertile_width`` columns down all rows before moving right,
        keeping the window roughly square (L2-friendlier).
        """
        total = grid_x * grid_y
        concurrent = min(concurrent, total)
        if concurrent == 0:
            return (0, 0)
        if config.cta_order == "supertile":
            width = min(config.supertile_width, grid_x)
            rows = min(grid_y, math.ceil(concurrent / width))
            cols = min(grid_x, max(width, math.ceil(concurrent / grid_y)))
        else:
            cols = min(grid_x, concurrent)
            rows = min(grid_y, math.ceil(concurrent / grid_x))
        return rows, cols

    def _reuse_efficiency(self, iters: int) -> float:
        drift = min(self.options.drift_max,
                    self.options.drift_max * iters / self.options.drift_span)
        return self.options.l2_reuse_eta * (1.0 - drift)

    def _cliff_active(self, config: KernelConfig, n: int,
                      baseline_quirks: bool) -> bool:
        if not baseline_quirks:
            return False
        if self.spec.name not in self.options.cliff_devices:
            return False
        c_row_bytes = n * config.b_m * 2
        return c_row_bytes > self.options.cliff_l2_fraction * self.spec.l2_bytes

    # ----------------------------------------------------------- estimates

    def estimate(self, config: KernelConfig, m: int, n: int, k: int,
                 baseline_quirks: bool = False) -> LaunchEstimate:
        """Predict the launch: seconds and TFLOPS for ``C[m,n] = A @ B``.

        ``baseline_quirks`` enables the cuBLAS-10.1 behavioural quirks
        (the RTX 2070 L2-blocking cliff); use it only for the baseline.
        """
        spec, opt = self.spec, self.options
        config = adapt_for_arch(config, spec.arch)
        profile = self.sm_profile(config)
        grid_x, grid_y = config.grid_dim(m, n)
        total_ctas = grid_x * grid_y
        concurrent = spec.num_sms * profile.ctas_per_sm
        iters = k // config.b_k

        cliff = self._cliff_active(config, n, baseline_quirks)
        eta = 0.0 if cliff else self._reuse_efficiency(iters)

        clock = spec.clock_ghz * 1e9
        compute_iter = profile.marginal_cycles / clock
        fixed_time = profile.fixed_cycles / clock

        tile_bytes = ((config.b_m + config.b_n) * config.b_k
                      * config.ab_element_bytes)
        epilogue_bytes_per_cta = config.b_m * config.b_n * config.c_element_bytes

        def wave_time(wave_ctas: int) -> tuple:
            rows, cols = self.wave_window(config, grid_x, grid_y, wave_ctas)
            l2_bytes = wave_ctas * tile_bytes
            shared_bytes = (rows * config.b_m + cols * config.b_n) * config.b_k * 2
            dram_bytes = l2_bytes - eta * max(0.0, l2_bytes - shared_bytes)
            # C is written once per CTA; spread its DRAM traffic over k.
            dram_bytes += wave_ctas * epilogue_bytes_per_cta / max(1, iters)
            dram_t = dram_bytes / (spec.dram_measured_gbps * 1e9)
            l2_t = l2_bytes / (spec.l2_measured_gbps * 1e9)
            t = max(compute_iter, dram_t, l2_t)
            if t == compute_iter:
                bound = "compute"
            elif t == dram_t:
                bound = "dram"
            else:
                bound = "l2"
            return t, bound, rows, cols, dram_bytes, l2_bytes, dram_t, l2_t

        full_waves, remainder = divmod(total_ctas, concurrent)
        seconds = spec.kernel_launch_overhead_us * 1e-6
        t_full = bound = rows = cols = None
        dram_b = l2_b = dram_t = l2_t = 0.0
        if full_waves:
            t_full, bound, rows, cols, dram_b, l2_b, dram_t, l2_t = wave_time(concurrent)
            seconds += full_waves * (fixed_time + iters * t_full)
        if remainder:
            t_part, bound_p, rows_p, cols_p, dram_bp, l2_bp, dram_tp, l2_tp = wave_time(remainder)
            seconds += fixed_time + iters * t_part
            if t_full is None:
                bound, rows, cols = bound_p, rows_p, cols_p
                dram_b, l2_b, dram_t, l2_t = dram_bp, l2_bp, dram_tp, l2_tp
                t_full = t_part

        flops = 2 * m * n * k
        return LaunchEstimate(
            m=m, n=n, k=k,
            seconds=seconds,
            tflops=flops / seconds / 1e12,
            bound=bound,
            waves=full_waves + (1 if remainder else 0),
            concurrent_ctas=concurrent,
            wave_rows=rows, wave_cols=cols,
            dram_bytes_per_iter=dram_b,
            l2_bytes_per_iter=l2_b,
            compute_time_per_iter=compute_iter,
            dram_time_per_iter=dram_t,
            l2_time_per_iter=l2_t,
            cliff_active=cliff,
        )

    def sweep(self, config: KernelConfig, sizes, shape=(1, 1, 1),
              baseline_quirks: bool = False, max_workers=None) -> list:
        """Estimate a size sweep; ``shape`` scales (m, n, k) from W (the
        paper's [aW x bW x cW] rectangular series).

        With ``max_workers`` (see :func:`repro.perf.parallel.parallel_map`)
        the sizes are estimated across worker processes.  The SM profile is
        measured once here first and shipped to the workers, so the
        expensive simulation never runs more than once per config.
        """
        config = adapt_for_arch(config, self.spec.arch)
        sizes = list(sizes)
        if len(sizes) > 1 and max_workers is not None and max_workers != 1:
            profile = asdict(self.sm_profile(config))
            payloads = [
                (self.spec, self.options, config, profile,
                 shape[0] * w, shape[1] * w, shape[2] * w, baseline_quirks)
                for w in sizes
            ]
            return parallel_map(_estimate_worker, payloads,
                                max_workers=max_workers)
        out = []
        for w in sizes:
            m, n, k = (s * w for s in shape)
            out.append(self.estimate(config, m, n, k,
                                     baseline_quirks=baseline_quirks))
        return out


# Module-level worker functions: ``ProcessPoolExecutor`` requires picklable
# callables, and every payload element (GpuSpec, PerfOptions, KernelConfig,
# plain dicts/ints) pickles cleanly.

def _profile_worker(payload) -> dict:
    spec, options, config = payload
    return asdict(PerformanceModel(spec, options).sm_profile(config))


def _estimate_worker(payload) -> LaunchEstimate:
    spec, options, config, profile, m, n, k, baseline_quirks = payload
    model = PerformanceModel(spec, options)
    model._profiles[config] = SmProfile(**profile)
    return model.estimate(config, m, n, k, baseline_quirks=baseline_quirks)
