"""Mixed-precision accuracy measurements on the simulated device.

Every sample here is produced by the *real* functional simulator: the
generated SASS runs, each HMMA performs the generation's exact-product /
single-rounding arithmetic, and the measured error therefore carries the
true accumulation order (``w_k``-wide step rounding inside a k-loop) --
not a NumPy approximation of it.  Each point is simultaneously

* **measured** against a float64 exact product (the error the user sees),
* **cross-checked** bit-for-bit against :func:`repro.core.hgemm_reference`
  with the resolved kernel's ``w_k`` -- the same per-generation HMMA
  model the SMT formalization pins down -- so a sample is only reported
  if the simulator and the formal precision model agree exactly,
* **digested** over the raw result bytes, so generation goldens can pin
  the curve bit-for-bit, the way the timing goldens pin cycle counts.

The headline reproduction is Markidis et al.'s error-growth curve:
FP16 accumulation error grows with the contracted dimension K (each
step rounds the running sum to half precision), while FP32 accumulation
stays flat (only the input rounding to FP16 contributes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arch.turing import GpuSpec, RTX2070
from ..core.hgemm import hgemm, hgemm_reference
from ..perf.cache import content_key

__all__ = [
    "DISTRIBUTIONS", "ErrorSample", "ErrorCurve", "MarkidisVerdict",
    "measure_point", "error_curve", "markidis_verdict", "supports",
    "DEFAULT_KS",
]

#: Schema tag folded into every sample digest; bump when the measurement
#: definition (operand generation, error metric, digest layout) changes.
NUMERICS_SCHEMA = "numerics-v1"

#: Contracted dimensions for the default error curve.  Spans the range
#: where FP16 accumulation turns from benign to lossy (Markidis et al.
#: measure 2^4..2^13; these keep full-simulator runtime in CI bounds).
DEFAULT_KS = (32, 64, 128, 256, 512, 1024)

#: Operand value distributions.  Uniform in [-1, 1) shows cancellation;
#: "positive" (uniform in [0, 1)) is the adversarial case -- partial
#: sums grow monotonically, so FP16's shrinking absolute resolution
#: bites hardest; "normal" is the weight-matrix-like case.
DISTRIBUTIONS = {
    "uniform": lambda rng, shape: rng.uniform(-1, 1, shape),
    "positive": lambda rng, shape: rng.uniform(0, 1, shape),
    "normal": lambda rng, shape: rng.normal(0, 0.5, shape),
}


def supports(spec: GpuSpec, accumulate: str) -> bool:
    """Whether *spec*'s generation has this HMMA accumulator form.

    Volta's HMMA.884 has no FP32-accumulate form in this model family,
    so SM70 curves are FP16-only.
    """
    return accumulate == "f16" or spec.arch.supports_f32_accum


@dataclass(frozen=True)
class ErrorSample:
    """One measured (shape, accumulator, distribution) point."""

    m: int
    n: int
    k: int
    accumulate: str        # "f16" | "f32"
    distribution: str
    seed: int
    w_k: int               # the resolved kernel's HMMA k-step
    max_rel_err: float     # vs the float64 exact product
    mean_rel_err: float
    model_exact: bool      # simulator == hgemm_reference, bit-for-bit
    digest: str            # sha256 over the raw simulated result bytes

    def describe(self) -> str:
        return (f"{self.m}x{self.n}x{self.k} {self.accumulate}-accum "
                f"{self.distribution}: max {self.max_rel_err:.3e} "
                f"mean {self.mean_rel_err:.3e}"
                + ("" if self.model_exact else "  [MODEL MISMATCH]"))


@dataclass
class ErrorCurve:
    """Error-vs-K sweep for one accumulator mode and distribution."""

    device: str
    accumulate: str
    distribution: str
    samples: list = field(default_factory=list)

    @property
    def model_exact(self) -> bool:
        return all(s.model_exact for s in self.samples)

    @property
    def growth(self) -> float:
        """max_rel_err ratio between the largest and smallest K."""
        first, last = self.samples[0], self.samples[-1]
        if first.max_rel_err == 0:
            return float("inf") if last.max_rel_err else 1.0
        return last.max_rel_err / first.max_rel_err

    def digest(self) -> str:
        """One digest pinning every sample of the curve bit-for-bit."""
        return content_key(NUMERICS_SCHEMA, self.device, self.accumulate,
                           self.distribution,
                           [s.digest for s in self.samples])


def measure_point(spec: GpuSpec = RTX2070, m: int = 64, n: int = 64,
                  k: int = 64, accumulate: str = "f16",
                  distribution: str = "uniform", seed: int = 0,
                  kernel="ours", max_workers: int = None,
                  engine: str = None) -> ErrorSample:
    """Run one GEMM through the functional simulator and measure error.

    The float64 product of the (already FP16-rounded) operands is the
    exact reference, so the reported error is purely the accumulation
    scheme's -- input quantisation is common to both sides.
    """
    if not supports(spec, accumulate):
        raise ValueError(
            f"{spec.name} ({spec.arch.name}, SM{spec.arch.sm_version}) "
            f"HMMA has no {accumulate}-accumulate form")
    draw = DISTRIBUTIONS[distribution]
    rng = np.random.default_rng(seed)
    a = draw(rng, (m, k)).astype(np.float16)
    b = draw(rng, (k, n)).astype(np.float16)

    run = hgemm(a, b, kernel=kernel, spec=spec, accumulate=accumulate,
                return_run=True, max_workers=max_workers, engine=engine)
    oracle = hgemm_reference(a, b, w_k=run.config.w_k, accumulate=accumulate)
    model_exact = bool(np.array_equal(run.c, oracle))

    exact = a.astype(np.float64) @ b.astype(np.float64)
    denom = np.maximum(np.abs(exact), np.finfo(np.float64).tiny)
    rel = np.abs(run.c.astype(np.float64) - exact) / denom
    return ErrorSample(
        m=m, n=n, k=k, accumulate=accumulate, distribution=distribution,
        seed=seed, w_k=run.config.w_k,
        max_rel_err=float(rel.max()), mean_rel_err=float(rel.mean()),
        model_exact=model_exact,
        digest=content_key(NUMERICS_SCHEMA, m, n, k, accumulate,
                           distribution, seed,
                           np.ascontiguousarray(run.c).tobytes()),
    )


def error_curve(spec: GpuSpec = RTX2070, ks=DEFAULT_KS, m: int = 64,
                n: int = 64, accumulate: str = "f16",
                distribution: str = "uniform", seed: int = 0,
                kernel="ours", max_workers: int = None,
                engine: str = None) -> ErrorCurve:
    """Error versus the contracted dimension K, everything else fixed."""
    curve = ErrorCurve(device=spec.name, accumulate=accumulate,
                       distribution=distribution)
    for k in ks:
        curve.samples.append(measure_point(
            spec, m=m, n=n, k=k, accumulate=accumulate,
            distribution=distribution, seed=seed, kernel=kernel,
            max_workers=max_workers, engine=engine))
    return curve


@dataclass(frozen=True)
class MarkidisVerdict:
    """Did the measurement reproduce Markidis et al.'s error shape?"""

    f16_growth: float      # f16-accum error ratio, largest K / smallest K
    f32_worst: float       # f32-accum max rel err at the largest K
                           # (nan when the generation lacks the form)
    f16_grows: bool        # error grows materially with K
    f32_flat: bool         # error stays at the FP32-epsilon scale
                           # (True if unsupported)
    model_exact: bool      # every sample matched the precision model

    @property
    def reproduced(self) -> bool:
        return self.f16_grows and self.f32_flat and self.model_exact

    def describe(self) -> str:
        parts = [
            f"FP16-accumulate error grows {self.f16_growth:.1f}x across "
            f"the K sweep ({'as Markidis et al. measure' if self.f16_grows else 'EXPECTED GROWTH MISSING'})",
        ]
        if np.isnan(self.f32_worst):
            parts.append("FP32 accumulation unsupported on this "
                         "generation (Volta HMMA.884)")
        else:
            parts.append(
                f"FP32-accumulate error stays at {self.f32_worst:.1e} "
                f"({'flat, as expected' if self.f32_flat else 'UNEXPECTEDLY LARGE'})")
        parts.append("every point bit-exact vs the per-generation HMMA "
                     "model" if self.model_exact
                     else "PRECISION-MODEL MISMATCH")
        return "; ".join(parts)


def markidis_verdict(f16_curve: ErrorCurve,
                     f32_curve: ErrorCurve = None,
                     growth_threshold: float = 2.0,
                     flat_ceiling: float = 1e-5) -> MarkidisVerdict:
    """Judge a pair of curves against the expected error shape.

    FP16 growth is a ratio test (largest-K error over smallest-K error);
    FP32 flatness is an absolute ceiling at the largest K -- the curve
    sits at the FP32-epsilon scale (~1e-7) where a ratio would amplify
    noise, and "flat" means it never leaves that scale.
    ``f32_curve=None`` means the generation has no FP32-accumulate form
    (SM70); the flat condition is then vacuously true.
    """
    f32_worst = (float("nan") if f32_curve is None
                 else f32_curve.samples[-1].max_rel_err)
    model_exact = f16_curve.model_exact and (
        f32_curve is None or f32_curve.model_exact)
    return MarkidisVerdict(
        f16_growth=f16_curve.growth,
        f32_worst=f32_worst,
        f16_grows=f16_curve.growth >= growth_threshold,
        f32_flat=(f32_curve is None or f32_worst <= flat_ceiling),
        model_exact=model_exact,
    )
