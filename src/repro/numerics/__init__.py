"""Mixed-precision numerics harness: measured error of simulated HMMA.

The paper optimizes half-precision GEMM for speed and leaves accuracy to
its citation of Markidis et al.; this package closes that loop on the
simulated device.  Because the functional simulator executes the real
generated kernel with the per-generation HMMA precision model (exact
products, one accumulator rounding per ``w_k``-wide step), the error it
measures *is* the error the modelled hardware would produce -- with the
true accumulation order, not a NumPy idealisation.  Every sample is
cross-checked bit-for-bit against :func:`repro.core.hgemm_reference`
(the model the SMT formalization verifies) and digested over its raw
result bytes so per-generation goldens can pin whole error curves.

Entry points: :func:`measure_point` (one GEMM), :func:`error_curve`
(error vs K), :func:`markidis_verdict` (did FP16-accumulate error grow
with K while FP32-accumulate stayed flat?).  ``repro numerics`` runs
the standard report from the command line.
"""

from .harness import (
    DEFAULT_KS,
    DISTRIBUTIONS,
    ErrorCurve,
    ErrorSample,
    MarkidisVerdict,
    error_curve,
    markidis_verdict,
    measure_point,
    supports,
)
from .report import error_chart, format_curve, format_curves, format_verdict

__all__ = [
    "DEFAULT_KS",
    "DISTRIBUTIONS",
    "ErrorCurve",
    "ErrorSample",
    "MarkidisVerdict",
    "error_curve",
    "markidis_verdict",
    "measure_point",
    "supports",
    "error_chart",
    "format_curve",
    "format_curves",
    "format_verdict",
]
