"""Render numerics-harness measurements as report tables."""

from __future__ import annotations

import math

from ..report import ascii_chart, format_table
from .harness import ErrorCurve, MarkidisVerdict

__all__ = ["format_curve", "format_curves", "format_verdict", "error_chart"]


def _sci(x: float) -> str:
    return f"{x:.3e}"


def format_curve(curve: ErrorCurve, title: str = "") -> str:
    """One curve as an error-vs-K table."""
    rows = [(s.k, s.w_k, _sci(s.max_rel_err), _sci(s.mean_rel_err),
             "yes" if s.model_exact else "NO")
            for s in curve.samples]
    return format_table(
        ["K", "w_k", "max rel err", "mean rel err", "model-exact"],
        rows,
        title=title or f"{curve.device} {curve.accumulate}-accumulate, "
        f"{curve.distribution} operands (simulated HMMA arithmetic)")


def format_curves(curves: list, title: str = "") -> str:
    """Several curves side by side, keyed by (accumulate, distribution).

    All curves must share the same K grid (they do when produced by
    :func:`repro.numerics.error_curve` with the same ``ks``).
    """
    ks = [s.k for s in curves[0].samples]
    headers = ["K"] + [f"{c.accumulate}/{c.distribution}" for c in curves]
    rows = []
    for i, k in enumerate(ks):
        rows.append([k] + [_sci(c.samples[i].max_rel_err) for c in curves])
    return format_table(headers, rows,
                        title=title or f"max relative error vs K on "
                        f"{curves[0].device}")


def error_chart(curves: list, width: int = 68, height: int = 14) -> str:
    """log10(max rel err) vs K as an ASCII chart -- the Markidis figure.

    Errors span orders of magnitude, so the chart plots
    ``log10(err) + 8`` (zero-clamped): FP16 growth slopes up, FP32 stays
    a flat low line.
    """
    ks = [s.k for s in curves[0].samples]
    series = {}
    for c in curves:
        ys = [max(0.0, math.log10(max(s.max_rel_err, 1e-8)) + 8.0)
              for s in c.samples]
        series[f"{c.accumulate}/{c.distribution}"] = ys
    return ascii_chart(ks, series, width=width, height=height,
                       y_label="log10(err)+8")


def format_verdict(verdict: MarkidisVerdict) -> str:
    status = "REPRODUCED" if verdict.reproduced else "NOT REPRODUCED"
    return (f"Markidis et al. error shape: {status}\n"
            f"  {verdict.describe()}")
