"""repro -- reproduction of "Demystifying Tensor Cores to Optimize
Half-Precision Matrix Multiply" (Yan, Wang, Chu; IPDPS 2020).

The package is a full software substrate for the paper's methodology:

* :mod:`repro.hmma`   -- Tensor Core semantics: 8x8 fragment layouts
  (Figs. 1-2) and functional ``HMMA.1688`` execution.
* :mod:`repro.isa`    -- a SASS-subset assembler, binary encoder and
  program builder (the ``turingas`` role).
* :mod:`repro.arch`   -- Turing device descriptions (RTX 2070, T4)
  calibrated from the paper's microbenchmarks.
* :mod:`repro.sim`    -- functional + cycle-level simulators of a Turing
  SM with tensor pipes, the memory-IO queue, banked shared memory and an
  L1/L2/DRAM service model.
* :mod:`repro.core`   -- the paper's contribution: the blocked Tensor Core
  HGEMM generator, CPI-guided scheduler, shared-memory layouts, and the
  public :func:`hgemm` API.
* :mod:`repro.bench`  -- SASS-level microbenchmarks (Tables I-V).
* :mod:`repro.analysis` -- roofline, occupancy and the device-level wave
  performance model that regenerates the evaluation figures.

Quick start::

    import numpy as np
    from repro import hgemm

    A = np.random.rand(256, 128).astype(np.float16)
    B = np.random.rand(128, 512).astype(np.float16)
    C = hgemm(A, B)
"""

from .arch import DEVICES, GpuSpec, RTX2070, T4, get_device
from .core import (
    KernelConfig,
    build_hgemm,
    cublas_like,
    hgemm,
    hgemm_reference,
    ours,
)
from .analysis import PerformanceModel, Roofline

__version__ = "1.0.0"

__all__ = [
    "DEVICES",
    "GpuSpec",
    "RTX2070",
    "T4",
    "get_device",
    "KernelConfig",
    "build_hgemm",
    "cublas_like",
    "hgemm",
    "hgemm_reference",
    "ours",
    "PerformanceModel",
    "Roofline",
    "__version__",
]
