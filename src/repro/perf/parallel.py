"""Supervised process-parallel maps for simulation sweeps.

The timing simulator is CPU-bound pure Python, so threads cannot help;
worker processes can.  Workers inherit the environment, so they share the
on-disk result cache of :mod:`repro.perf.cache`: a sweep's workers
populate the cache for the parent and for every later run.

Earlier versions drove a bare ``ProcessPoolExecutor``; one OOM-killed
worker then destroyed the whole sweep.  :func:`parallel_map` is now built
around a **supervisor** that owns each worker process directly:

* every task has a **timeout** (``REPRO_TASK_TIMEOUT`` seconds, default
  600, 0 disables) -- a worker that exceeds it is terminated and its task
  retried elsewhere;
* crashes and timeouts get **bounded retries with exponential backoff**
  (``REPRO_TASK_RETRIES`` extra attempts, default 2;
  ``REPRO_RETRY_BACKOFF`` base delay, default 0.25 s, doubled per retry);
* a dead worker is **replaced** and completed results are salvaged --
  nothing already computed is re-run;
* tasks that exhaust their retries fall back to **in-process serial
  execution**, the last rung (simulation tasks are pure, so re-running a
  failed task in the parent is always sound).

Deterministic Python exceptions raised by the task function itself are
*not* retried -- they propagate to the caller exactly as a serial run
would raise them.  Retries exist for abnormal death (OOM kill, segfault,
:mod:`repro.robust.chaos` crash injection) and for hangs.

Callables passed to :func:`parallel_map` must be module-level (picklable),
and their payloads must pickle too -- ``GpuSpec``, ``KernelConfig`` and
:class:`~repro.analysis.perf_model.PerfOptions` all do.

STATS counters: ``par.tasks``, ``par.crashes``, ``par.timeouts``,
``par.retries``, ``par.pool_rebuilds``, ``par.serial_fallbacks``.
Additionally, every completed task ships its own ``STATS`` delta (the
counters and timers it incremented in the worker process) back with its
result; the supervisor folds those into the parent's ``STATS`` on the
calling thread, so scoped attribution (``STATS.scoped()``) sees the work
a sweep's workers did exactly as if it had run serially.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import time
from collections import deque

from ..robust import chaos
from .stats import STATS

__all__ = ["default_workers", "parallel_map", "WorkerTaskError"]

_ENV_TIMEOUT = "REPRO_TASK_TIMEOUT"
_ENV_RETRIES = "REPRO_TASK_RETRIES"
_ENV_BACKOFF = "REPRO_RETRY_BACKOFF"

#: Supervisor poll granularity (seconds): the latency of noticing a death
#: or deadline, traded against idle wakeups.
_TICK_S = 0.05


def default_workers() -> int:
    """Worker count for ``max_workers=0`` ("auto"): the CPU count."""
    return max(1, os.cpu_count() or 1)


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "")
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


class WorkerTaskError(RuntimeError):
    """A task died abnormally (crash/timeout) through all its retries."""


# ----------------------------------------------------------- worker process

def _dump_exc(exc: BaseException):
    """Exception as a picklable payload (falls back to its repr)."""
    try:
        pickle.dumps(exc)
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _worker_main(worker_id, task_q, result_q, fn, initializer, initargs):
    """Worker loop: init once, then run assigned (task, attempt) pairs."""
    try:
        if initializer is not None:
            initializer(*initargs)
    except BaseException as exc:  # noqa: BLE001 - must cross the process gap
        result_q.put((worker_id, None, "init_error", _dump_exc(exc)))
        return
    result_q.put((worker_id, None, "ready", None))
    while True:
        message = task_q.get()
        if message is None:
            return
        task_id, attempt, item = message
        if chaos.should_crash(task_id, attempt):
            # Die like an OOM kill -- but never while our feeder thread
            # still holds the shared result-queue write lock (it may be
            # a few instructions shy of releasing it after flushing the
            # "ready" message).  An exit mid-send would poison the queue
            # for every sibling and replacement worker; flush first.
            result_q.close()
            result_q.join_thread()
            os._exit(13)
        chaos.maybe_delay_task(task_id, attempt)
        before = STATS.snapshot()
        try:
            result = fn(item)
        except BaseException as exc:  # noqa: BLE001
            result_q.put((worker_id, task_id, "error", _dump_exc(exc)))
        else:
            # Ship the task's counter/timer delta home with the result:
            # the parent folds it into its own STATS (and any active
            # scopes), so ``sim.*``/``func.*`` attribution survives the
            # process gap.
            delta = STATS.delta(before)
            try:
                result_q.put((worker_id, task_id, "ok", (result, delta)))
            except Exception as exc:  # unpicklable result
                result_q.put((worker_id, task_id, "error", _dump_exc(exc)))


# -------------------------------------------------------------- supervisor

class _Task:
    __slots__ = ("idx", "item", "attempt", "eligible_at")

    def __init__(self, idx, item):
        self.idx = idx
        self.item = item
        self.attempt = 0
        self.eligible_at = 0.0


class _Worker:
    """Parent-side handle: the process, its private queue, its assignment."""

    __slots__ = ("proc", "task_q", "ready", "task", "deadline")

    def __init__(self, ctx, worker_id, result_q, fn, initializer, initargs):
        self.task_q = ctx.SimpleQueue()
        self.proc = ctx.Process(
            target=_worker_main,
            args=(worker_id, self.task_q, result_q, fn, initializer, initargs),
            daemon=True,
        )
        self.ready = False
        self.task = None
        self.deadline = None
        self.proc.start()


class _Supervisor:
    """Owns the worker fleet for one :func:`parallel_map` call."""

    def __init__(self, fn, initializer, initargs, workers, timeout, retries,
                 backoff):
        self.fn = fn
        self.initializer = initializer
        self.initargs = initargs
        self.n_workers = workers
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.ctx = mp.get_context()
        self.result_q = self.ctx.Queue()
        self.workers: dict = {}
        self._next_wid = 0

    # ------------------------------------------------------------- plumbing

    def _spawn(self) -> None:
        wid = self._next_wid
        self._next_wid += 1
        self.workers[wid] = _Worker(self.ctx, wid, self.result_q, self.fn,
                                    self.initializer, self.initargs)

    def _assign(self, worker: _Worker, task: _Task) -> None:
        worker.task = task
        worker.deadline = (time.monotonic() + self.timeout
                           if self.timeout else None)
        worker.task_q.put((task.idx, task.attempt, task.item))

    def _retire_worker(self, wid, terminate: bool) -> None:
        worker = self.workers.pop(wid)
        if terminate and worker.proc.is_alive():
            worker.proc.terminate()
        worker.proc.join(timeout=5)

    def _shutdown(self) -> None:
        for worker in self.workers.values():
            if worker.proc.is_alive():
                if worker.task is None:
                    worker.task_q.put(None)  # graceful: it is idle
                else:
                    worker.proc.terminate()
        for worker in self.workers.values():
            worker.proc.join(timeout=5)
        self.workers.clear()
        self.result_q.close()

    # ------------------------------------------------------------- recovery

    def _requeue(self, task: _Task, pending, failures, why: str) -> None:
        """Retry *task* with backoff, or park it for the serial last rung."""
        task.attempt += 1
        if task.attempt > self.retries:
            failures[task.idx] = WorkerTaskError(
                f"task {task.idx} {why} after {task.attempt} attempts")
        else:
            STATS.count("par.retries")
            delay = self.backoff * (2 ** (task.attempt - 1))
            task.eligible_at = time.monotonic() + delay
            pending.append(task)

    # ------------------------------------------------------------ main loop

    def run(self, items: list) -> list:
        n = len(items)
        STATS.count("par.tasks", n)
        pending = deque(_Task(i, item) for i, item in enumerate(items))
        results: dict = {}
        failures: dict = {}
        error = None
        for _ in range(self.n_workers):
            self._spawn()
        try:
            while error is None and len(results) + len(failures) < n:
                self._dispatch(pending)
                try:
                    message = self.result_q.get(timeout=_TICK_S)
                except queue_mod.Empty:
                    message = None
                if message is not None:
                    error = self._handle(message, pending, results, failures)
                self._police(pending, failures)
        finally:
            self._shutdown()
        if error is not None:
            raise error
        if failures:
            # Last rung: run what the fleet could not finish in-process.
            STATS.count("par.serial_fallbacks", len(failures))
            if self.initializer is not None:
                self.initializer(*self.initargs)
            for idx in sorted(failures):
                results[idx] = self.fn(items[idx])
        return [results[i] for i in range(n)]

    def _dispatch(self, pending) -> None:
        if not pending:
            return
        now = time.monotonic()
        for worker in self.workers.values():
            if not pending:
                return
            if worker.task is not None or not worker.ready:
                continue
            if not worker.proc.is_alive():
                continue  # _police replaces it
            task = self._next_eligible(pending, now)
            if task is None:
                return
            self._assign(worker, task)

    @staticmethod
    def _next_eligible(pending, now):
        for _ in range(len(pending)):
            task = pending.popleft()
            if task.eligible_at <= now:
                return task
            pending.append(task)
        return None

    def _handle(self, message, pending, results, failures):
        """Process one worker message; returns an exception to raise."""
        wid, task_id, kind, payload = message
        worker = self.workers.get(wid)
        if kind == "ready":
            if worker is not None:
                worker.ready = True
            return None
        if kind == "init_error":
            return payload
        if worker is not None and worker.task is not None \
                and worker.task.idx == task_id:
            worker.task = None
            worker.deadline = None
        if kind == "ok":
            result, delta = payload
            STATS.merge(delta)
            results[task_id] = result
            return None
        return payload  # deterministic task error: propagate, no retry

    def _police(self, pending, failures) -> None:
        """Detect dead and overdue workers; retry their tasks, refill."""
        now = time.monotonic()
        for wid in list(self.workers):
            worker = self.workers[wid]
            if not worker.proc.is_alive():
                task = worker.task
                self._retire_worker(wid, terminate=False)
                if task is not None:
                    STATS.count("par.crashes")
                    self._requeue(task, pending, failures, "crashed")
            elif (worker.task is not None and worker.deadline is not None
                    and now > worker.deadline):
                task = worker.task
                STATS.count("par.timeouts")
                self._retire_worker(wid, terminate=True)
                self._requeue(task, pending, failures, "timed out")
        refill = self.n_workers - len(self.workers)
        if refill > 0:
            STATS.count("par.pool_rebuilds", refill)
            for _ in range(refill):
                self._spawn()


# ---------------------------------------------------------------- public API

def parallel_map(fn, items, max_workers=None, initializer=None, initargs=(),
                 timeout=None, retries=None, backoff=None) -> list:
    """``[fn(x) for x in items]``, optionally across supervised workers.

    ``max_workers`` semantics:

    * ``None`` or ``1`` -- run serially in this process (the default: the
      caller opts in to parallelism explicitly);
    * ``0`` -- auto: one worker per CPU;
    * ``n > 1`` -- at most *n* workers.

    ``initializer(*initargs)`` runs once per worker before any item (e.g. to
    attach shared memory); on the serial path it runs once in this process.

    ``timeout`` (seconds per task, default ``REPRO_TASK_TIMEOUT`` or 600;
    0 disables), ``retries`` (extra attempts after a crash or timeout,
    default ``REPRO_TASK_RETRIES`` or 2) and ``backoff`` (base retry delay
    in seconds, default ``REPRO_RETRY_BACKOFF`` or 0.25, doubled per
    retry) tune the supervisor; see the module docstring for the recovery
    ladder.

    Order of results always matches the order of *items*.  Exceptions
    raised by *fn* propagate to the caller, as they would serially;
    abnormal worker death is retried and, as a last resort, the affected
    tasks run serially in this process.
    """
    items = list(items)
    if max_workers == 0:
        max_workers = default_workers()
    if max_workers is None or max_workers <= 1 or len(items) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in items]
    timeout = _env_float(_ENV_TIMEOUT, 600.0) if timeout is None else timeout
    retries = int(_env_float(_ENV_RETRIES, 2)) if retries is None else retries
    backoff = _env_float(_ENV_BACKOFF, 0.25) if backoff is None else backoff
    workers = min(max_workers, len(items))
    supervisor = _Supervisor(fn, initializer, initargs, workers,
                             max(0.0, timeout), max(0, retries),
                             max(0.0, backoff))
    return supervisor.run(items)
