"""Process-parallel maps for simulation sweeps.

The timing simulator is CPU-bound pure Python, so threads cannot help; a
``ProcessPoolExecutor`` can.  Workers inherit the environment, so they
share the on-disk result cache of :mod:`repro.perf.cache`: a sweep's
workers populate the cache for the parent and for every later run.

Callables passed to :func:`parallel_map` must be module-level (picklable),
and their payloads must pickle too -- ``GpuSpec``, ``KernelConfig`` and
:class:`~repro.analysis.perf_model.PerfOptions` all do.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

__all__ = ["default_workers", "parallel_map"]


def default_workers() -> int:
    """Worker count for ``max_workers=0`` ("auto"): the CPU count."""
    return max(1, os.cpu_count() or 1)


def parallel_map(fn, items, max_workers=None, initializer=None,
                 initargs=()) -> list:
    """``[fn(x) for x in items]``, optionally across worker processes.

    ``max_workers`` semantics:

    * ``None`` or ``1`` -- run serially in this process (the default: the
      caller opts in to parallelism explicitly);
    * ``0`` -- auto: one worker per CPU;
    * ``n > 1`` -- at most *n* workers.

    ``initializer(*initargs)`` runs once per worker before any item (e.g. to
    attach shared memory); on the serial path it runs once in this process.

    Order of results always matches the order of *items*.  Exceptions in
    workers propagate to the caller, as they would serially.
    """
    items = list(items)
    if max_workers == 0:
        max_workers = default_workers()
    if max_workers is None or max_workers <= 1 or len(items) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in items]
    workers = min(max_workers, len(items))
    with ProcessPoolExecutor(max_workers=workers, initializer=initializer,
                             initargs=initargs) as pool:
        return list(pool.map(fn, items))
